(* Benchmark harness: regenerates every experiment row of EXPERIMENTS.md.

   Two parts, both printed on stdout:
   1. the paper-style result tables (virtual-time metrics measured inside the
      simulator) — one table per experiment id of DESIGN.md;
   2. Bechamel wall-clock micro/macro benchmarks — one Test.make per
      experiment id, measuring how fast the reproduction itself runs.

   The sweep-shaped tables (S1, S3, BYZ) run through Thc_exec.Pool, so
   `--jobs N` fans their cells out over forked workers; results merge in
   key order and both stdout tables and BENCH_results.json stay
   byte-identical at every value.  With --jobs > 1 the S1 grid is also
   timed sequentially and a wall-clock comparison line is printed (to
   stdout, clearly marked as wall clock — it is the one non-deterministic
   line and lives outside every recorded table). *)

let fast = Thc_sim.Delay.Uniform (10L, 400L)

let keyring ~n ~seed = Thc_crypto.Keyring.create (Thc_util.Rng.create seed) ~n

let chatter pid ~rounds : Thc_rounds.Round_app.app =
  {
    first_payload = (fun _ -> Some (Printf.sprintf "r1-p%d" pid));
    on_receive = (fun _ ~round:_ ~from:_ _ -> ());
    on_round_check =
      (fun h ~round ->
        if round >= rounds then Thc_rounds.Round_app.Stop
        else
          Thc_rounds.Round_app.Advance
            (Some (Printf.sprintf "r%d-p%d" (round + 1) h.self)));
  }

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ----------------------------------------------------------------------- *)
(* Machine-readable results (BENCH_results.json)                            *)
(*                                                                          *)
(* Each deterministic table also records its headline numbers here; the     *)
(* main function serialises them as                                         *)
(*   {"schema":"thc-bench/v2","experiments":{<id>:{<metric>:<value>}}}      *)
(* v2 adds the s3.* throughput–latency curve keys produced by table_s3 and  *)
(* the byz.* attack-catalog keys produced by table_byz.                      *)
(* Every key is a virtual-time metric — identical across machines and runs  *)
(* — except the s4.* engine-throughput block, which is wall-clock by        *)
(* definition (events/sec, ops/sec).  Byte-determinism comparisons must     *)
(* therefore exclude s4; CI asserts its keys are present and positive, not  *)
(* their values.  The Bechamel numbers stay stdout-only as before.          *)
(* ----------------------------------------------------------------------- *)

module J = Thc_obsv.Json
module Pool = Thc_exec.Pool

(* Every (label, protocol) pair below goes through the one codec
   (Thc_replication.Protocol) — no hand-copied name maps. *)
let pname = Thc_replication.Protocol.to_string

let with_names ps = List.map (fun p -> (pname p, p)) ps

(* Parallelism for the sweep-shaped tables, set once from --jobs.  Tables
   read it instead of threading a parameter through every section. *)
let jobs = ref 1

(* The shared --network override: when set, the replication-harness and
   loadtest tables run under the named model instead of their legacy
   uniform clique (the S7 grid ignores it — it sweeps its own models). *)
let bench_network : Thc_network.Model.t option ref = ref None

(* Campaign size for the BENCH_results.json envelope: how many sweep cells
   the pooled tables executed.  Independent of --jobs, so the file stays
   byte-identical across parallelism (the timed comparison re-run is
   deliberately not counted twice). *)
let pool_keys_total = ref 0

let count_keys keys =
  pool_keys_total := !pool_keys_total + List.length keys;
  keys

(* Fan a table's cells out over the pool at the configured parallelism.
   Cells are pure and deterministic, so a failed job is a bug worth dying
   loudly on, not a hole to paper over. *)
let pool_run ?(jobs = 1) f keys =
  let stats st = if jobs > 1 then Format.eprintf "%a@." Pool.pp_stats st in
  List.map
    (function Ok r -> r | Error e -> failwith ("bench worker: " ^ e))
    (let rs, st = Pool.map_stats ~jobs f keys in
     stats st;
     rs)

let results : (string, (string * J.t) list ref) Hashtbl.t = Hashtbl.create 16

let record exp name v =
  let rows =
    match Hashtbl.find_opt results exp with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add results exp r;
      r
  in
  rows := (name, v) :: !rows

let record_i exp name i = record exp name (J.Int i)
let record_f exp name f = record exp name (J.Float f)
let record_b exp name b = record exp name (J.Bool b)
let record_s exp name s = record exp name (J.Str s)

let results_path = "BENCH_results.json"

let write_results () =
  let by_name (a, _) (b, _) = compare a b in
  let experiments =
    Hashtbl.fold (fun id rows acc -> (id, !rows) :: acc) results []
    |> List.sort by_name
    |> List.map (fun (id, rows) -> (id, J.Obj (List.sort by_name rows)))
  in
  let doc =
    Thc_obsv.Envelope.header ~typ:"bench" ~schema:"thc-bench/v2"
      ~jobs:!pool_keys_total
      ~git:(Thc_exec.Gitinfo.describe ())
      ~extra:[ ("experiments", J.Obj experiments) ]
      ()
  in
  let oc = open_out_bin results_path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "machine-readable results written to %s\n" results_path

(* ----------------------------------------------------------------------- *)
(* F1: hierarchy verification                                               *)
(* ----------------------------------------------------------------------- *)

let table_f1 () =
  section "F1 — Figure 1: hierarchy edges, each backed by a machine check";
  let results = Thc_classify.Hierarchy.verify Thc_classify.Hierarchy.paper in
  let t = Thc_util.Table.create [ "edge / separation"; "status"; "detail" ] in
  List.iter
    (fun (label, passed, detail) ->
      Thc_util.Table.add_row t
        [ label; (if passed then "PASS" else "FAIL"); detail ])
    results;
  Thc_util.Table.print t;
  record_i "f1" "edges_checked" (List.length results);
  record_i "f1" "edges_passed"
    (List.length (List.filter (fun (_, ok, _) -> ok) results));
  (match Thc_classify.Hierarchy.consistent Thc_classify.Hierarchy.paper with
  | Ok notes ->
    record_b "f1" "consistent" true;
    Printf.printf "hierarchy consistent; %d side-condition notes\n"
      (List.length notes)
  | Error ps ->
    record_b "f1" "consistent" false;
    Printf.printf "hierarchy INCONSISTENT (%d problems)\n" (List.length ps));
  let pairs =
    List.length
      (Thc_classify.Hierarchy.same_class_pairs Thc_classify.Hierarchy.paper)
  in
  record_i "f1" "equivalence_pairs" pairs;
  Printf.printf "equivalence classes proven: %d pairs\n" pairs

(* ----------------------------------------------------------------------- *)
(* C1: unidirectional rounds from shared memory — round latency             *)
(* ----------------------------------------------------------------------- *)

let run_driver_once ~driver ~n ~seed ~rounds =
  let keyring = keyring ~n ~seed in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let install pid =
    match driver with
    | `Swmr registers ->
      Thc_sim.Engine.set_behavior engine pid
        (Thc_rounds.Swmr_rounds.behavior ~registers
           ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
           (chatter pid ~rounds))
    | `Sticky board ->
      Thc_sim.Engine.set_behavior engine pid
        (Thc_rounds.Sticky_rounds.behavior ~board
           ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
           (chatter pid ~rounds))
    | `Peats space ->
      Thc_sim.Engine.set_behavior engine pid
        (Thc_rounds.Peats_rounds.behavior ~space ~n
           ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
           (chatter pid ~rounds))
  in
  for pid = 0 to n - 1 do
    install pid
  done;
  Thc_sim.Engine.run ~until:60_000_000L engine

let table_c1 () =
  section "C1 — shared-memory drivers: virtual round latency, uni violations";
  let t =
    Thc_util.Table.create
      [ "driver"; "n"; "rounds"; "sim us/round"; "uni-violations" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, mk) ->
          let rounds = 3 in
          let trace = run_driver_once ~driver:(mk n) ~n ~seed:7L ~rounds in
          let viol = Thc_rounds.Directionality.check_unidirectional trace in
          let us_per_round =
            Int64.to_float trace.Thc_sim.Trace.end_time /. float_of_int rounds
          in
          let key = Printf.sprintf "%s.n%d" name n in
          record_f "c1" (key ^ ".sim_us_per_round") us_per_round;
          record_i "c1" (key ^ ".uni_violations") (List.length viol);
          Thc_util.Table.add_row t
            [
              name;
              string_of_int n;
              string_of_int rounds;
              Printf.sprintf "%.0f" us_per_round;
              string_of_int (List.length viol);
            ])
        [
          ("swmr", fun n -> `Swmr (Thc_sharedmem.Swmr.log_array ~n));
          ("sticky", fun n -> `Sticky (Thc_rounds.Sticky_rounds.create_board ~n));
          ( "peats",
            fun _ ->
              `Peats
                (Thc_sharedmem.Peats.create
                   ~policy:Thc_sharedmem.Peats.owned_field_policy) );
        ])
    [ 3; 5; 9 ];
  Thc_util.Table.print t

(* ----------------------------------------------------------------------- *)
(* C2 / A2 / S2-neg: the separation scenarios                                *)
(* ----------------------------------------------------------------------- *)

let table_c2 () =
  section "C2/A2 — impossibility constructions (scenario outcomes)";
  List.iter
    (fun (key, r) ->
      record_b "c2" (key ^ ".holds") r.Thc_classify.Separations.holds;
      record_i "c2" (key ^ ".scenarios")
        (List.length r.Thc_classify.Separations.scenarios);
      Format.printf "%a@.@." Thc_classify.Separations.pp_result r)
    [
      ( "srb_no_uni",
        Thc_classify.Separations.srb_cannot_implement_unidirectionality () );
      ("rb_no_very_weak", Thc_classify.Separations.rb_cannot_solve_very_weak ());
      ( "wait_below_delta",
        Thc_classify.Separations.delta_wait_below_delta_not_unidirectional () );
    ]

(* ----------------------------------------------------------------------- *)
(* L1: SRB latency — Algorithm 1 over uni rounds vs trusted-log SRB          *)
(* ----------------------------------------------------------------------- *)

let srb_latency trace ~sender =
  let first_bcast = ref Int64.max_int in
  let last_dlv = ref 0L in
  List.iter
    (fun (time, _, obs) ->
      match (obs : Thc_sim.Obs.t) with
      | Srb_broadcast _ -> if time < !first_bcast then first_bcast := time
      | Srb_delivered { sender = s; _ } when s = sender ->
        if time > !last_dlv then last_dlv := time
      | _ -> ())
    (Thc_sim.Trace.outputs trace);
  if !last_dlv = 0L then None else Some (Int64.sub !last_dlv !first_bcast)

let run_srb_uni ~n ~faults ~seed ~msgs =
  let keyring = keyring ~n ~seed in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let srbs =
    Array.init n (fun pid ->
        Thc_broadcast.Srb_from_uni.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0 ~faults)
  in
  for i = 1 to msgs do
    Thc_broadcast.Srb_from_uni.broadcast srbs.(0) (Printf.sprintf "m%d" i)
  done;
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Swmr_rounds.behavior ~registers
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (Thc_broadcast.Srb_from_uni.app srbs.(pid)))
  done;
  Thc_sim.Engine.run ~until:5_000_000L ~max_events:10_000_000 engine

let run_srb_trinc ~n ~seed ~msgs =
  let rng = Thc_util.Rng.create seed in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    let st =
      Thc_broadcast.Srb_from_trinc.create ~world
        ~trinket:(Some (Thc_hardware.Trinc.trinket world ~owner:pid))
        ~n ~self:pid
    in
    let plan =
      if pid = 0 then
        List.init msgs (fun i ->
            (Int64.of_int (100 + (i * 50)), Printf.sprintf "m%d" (i + 1)))
      else []
    in
    Thc_sim.Engine.set_behavior engine pid
      (Thc_broadcast.Srb_from_trinc.behavior st ~broadcast_plan:plan)
  done;
  Thc_sim.Engine.run ~until:5_000_000L engine

let table_l1 () =
  section "L1/T1 — SRB implementations: virtual latency and messages";
  let t =
    Thc_util.Table.create
      [ "implementation"; "n"; "t"; "msgs"; "sim us (bcast->last dlvr)"; "net msgs"; "spec" ]
  in
  List.iter
    (fun (n, faults) ->
      let msgs = 3 in
      let spec v = if v = [] then "ok" else "VIOLATED" in
      let row impl key trace =
        let latency = srb_latency trace ~sender:0 in
        record "l1"
          (Printf.sprintf "%s.n%d.latency_us" key n)
          (match latency with Some l -> J.Int (Int64.to_int l) | None -> J.Null);
        record_i "l1"
          (Printf.sprintf "%s.n%d.net_msgs" key n)
          (Thc_sim.Trace.messages_sent trace);
        let ok = Thc_broadcast.Srb_spec.check trace ~sender:0 = [] in
        record_b "l1" (Printf.sprintf "%s.n%d.spec_ok" key n) ok;
        Thc_util.Table.add_row t
          [
            impl;
            string_of_int n;
            string_of_int faults;
            string_of_int msgs;
            (match latency with Some l -> Int64.to_string l | None -> "-");
            string_of_int (Thc_sim.Trace.messages_sent trace);
            spec (if ok then [] else [ () ]);
          ]
      in
      row "srb-from-uni (Alg. 1)" "uni" (run_srb_uni ~n ~faults ~seed:11L ~msgs);
      row "srb-from-trinc" "trinc" (run_srb_trinc ~n ~seed:11L ~msgs))
    [ (3, 1); (5, 2); (7, 3) ];
  Thc_util.Table.print t;
  print_endline
    "(shape: the trusted-log SRB is cheaper per message; Algorithm 1 pays\n\
    \ three shared-memory rounds per sequence number but needs no hardware)"

(* ----------------------------------------------------------------------- *)
(* A1/A4: agreement latencies                                                *)
(* ----------------------------------------------------------------------- *)

let table_a1 () =
  section "A1/A4 — agreement: decision latency (virtual us)";
  let t =
    Thc_util.Table.create
      [ "protocol"; "model"; "n"; "f"; "sim us to all-decided"; "spec" ]
  in
  (* Very weak agreement over swmr uni rounds. *)
  List.iter
    (fun n ->
      let keyring = keyring ~n ~seed:13L in
      let net = Thc_sim.Net.create ~n ~default:fast in
      let engine = Thc_sim.Engine.create ~seed:13L ~n ~net () in
      let registers = Thc_sharedmem.Swmr.log_array ~n in
      Array.iter
        (fun pid ->
          Thc_sim.Engine.set_behavior engine pid
            (Thc_rounds.Swmr_rounds.behavior ~registers
               ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
               (Thc_agreement.Very_weak.app
                  (Thc_agreement.Very_weak.create ~input:"v"))))
        (Array.init n (fun i -> i));
      let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
      let ok =
        Thc_agreement.Agreement_spec.check `Very_weak
          ~inputs:(Array.make n (Some "v"))
          trace
        = []
      in
      record_i "a1"
        (Printf.sprintf "very_weak.n%d.sim_us" n)
        (Int64.to_int trace.Thc_sim.Trace.end_time);
      record_b "a1" (Printf.sprintf "very_weak.n%d.spec_ok" n) ok;
      Thc_util.Table.add_row t
        [
          "very-weak";
          "unidirectional";
          string_of_int n;
          string_of_int (n - 1);
          Int64.to_string trace.Thc_sim.Trace.end_time;
          (if ok then "ok" else "VIOLATED");
        ])
    [ 3; 5; 9 ];
  (* Strong validity over bidirectional rounds: f+1 lock-step rounds. *)
  List.iter
    (fun (n, f) ->
      let keyring = keyring ~n ~seed:14L in
      let net =
        Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L))
      in
      let engine = Thc_sim.Engine.create ~seed:14L ~n ~net () in
      for pid = 0 to n - 1 do
        Thc_sim.Engine.set_behavior engine pid
          (Thc_rounds.Sync_rounds.behavior ~period:1_000L
             (Thc_agreement.Strong_validity.app
                (Thc_agreement.Strong_validity.create ~keyring
                   ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                   ~n ~f ~input:"v")))
      done;
      let trace = Thc_sim.Engine.run ~until:60_000L engine in
      let ok =
        Thc_agreement.Agreement_spec.check `Strong
          ~inputs:(Array.make n (Some "v"))
          trace
        = []
      in
      record_i "a1"
        (Printf.sprintf "strong.n%d.sim_us" n)
        ((f + 1) * 1_000);
      record_b "a1" (Printf.sprintf "strong.n%d.spec_ok" n) ok;
      Thc_util.Table.add_row t
        [
          "strong-validity";
          "bidirectional";
          string_of_int n;
          string_of_int f;
          Int64.to_string (Int64.mul (Int64.of_int (f + 1)) 1_000L);
          (if ok then "ok" else "VIOLATED");
        ])
    [ (3, 1); (5, 2); (7, 3) ];
  Thc_util.Table.print t

(* ----------------------------------------------------------------------- *)
(* A3: weak-validity agreement with n = 2f+1                                 *)
(* ----------------------------------------------------------------------- *)

let table_a3 () =
  section "A3 — weak-validity agreement on trusted counters (n = 2f+1)";
  let t =
    Thc_util.Table.create
      [ "f"; "n"; "inputs"; "scenario"; "agreement"; "validity"; "termination"; "view"; "msgs" ]
  in
  List.iter
    (fun f ->
      let n = (2 * f) + 1 in
      let common = Array.make n "v" in
      let mixed = Array.init n (fun i -> Printf.sprintf "x%d" i) in
      let row label inputs crash =
        let o =
          Thc_agreement.Weak_validity.run ~f ~inputs ~seed:31L
            ~crash_leader:crash ()
        in
        let key =
          Printf.sprintf "f%d.%s.%s" f label
            (if crash then "crash_leader" else "fault_free")
        in
        record_b "a3" (key ^ ".agreement") o.agreement;
        record_b "a3" (key ^ ".validity") o.validity;
        record_b "a3" (key ^ ".termination") o.termination;
        record_i "a3" (key ^ ".messages") o.messages;
        Thc_util.Table.add_row t
          [
            string_of_int f;
            string_of_int n;
            label;
            (if crash then "crash-leader" else "fault-free");
            string_of_bool o.agreement;
            string_of_bool o.validity;
            string_of_bool o.termination;
            string_of_int o.final_view;
            string_of_int o.messages;
          ]
      in
      row "common" common false;
      row "mixed" mixed false;
      row "mixed" mixed true)
    [ 1; 2; 3 ];
  Thc_util.Table.print t

(* ----------------------------------------------------------------------- *)
(* AB: ablation — remove the trusted hardware, keep the quorums              *)
(* ----------------------------------------------------------------------- *)

let table_ablation () =
  section "AB — ablation: identical split attack, with and without attestation";
  let t =
    Thc_util.Table.create
      [ "variant"; "f"; "safety violations"; "distinct ops at seq 1"; "verdict" ]
  in
  List.iter
    (fun f ->
      let split = Thc_replication.Ablation.equivocation_splits_unattested ~f () in
      let held = Thc_replication.Ablation.equivocation_fails_against_minbft ~f () in
      let trusted_total =
        List.fold_left (fun acc (_, c) -> acc + c) 0 held.trusted_ops
      in
      record_i "ablation"
        (Printf.sprintf "f%d.unattested.violations" f)
        (List.length split.violations);
      record_i "ablation"
        (Printf.sprintf "f%d.unattested.distinct_ops_at_seq1" f)
        split.distinct_ops_at_seq1;
      record_i "ablation"
        (Printf.sprintf "f%d.minbft.violations" f)
        (List.length held.violations);
      record_i "ablation"
        (Printf.sprintf "f%d.minbft.distinct_ops_at_seq1" f)
        held.distinct_ops_at_seq1;
      record_i "ablation"
        (Printf.sprintf "f%d.minbft.trusted_ops" f)
        trusted_total;
      Thc_util.Table.add_row t
        [
          "f+1 quorums, plain signatures";
          string_of_int f;
          string_of_int (List.length split.violations);
          string_of_int split.distinct_ops_at_seq1;
          "SPLIT";
        ];
      Thc_util.Table.add_row t
        [
          "f+1 quorums, attested links (MinBFT)";
          string_of_int f;
          string_of_int (List.length held.violations);
          string_of_int held.distinct_ops_at_seq1;
          "safe";
        ])
    [ 1; 2; 3 ];
  Thc_util.Table.print t;
  print_endline
    "(the non-equivocation layer — not the quorum arithmetic — carries the\n\
    \ safety of f+1 quorums; removing it re-creates the classic split-brain)"

(* ----------------------------------------------------------------------- *)
(* BYZ: the scripted attack catalog against both targets                     *)
(* ----------------------------------------------------------------------- *)

let table_byz () =
  section "BYZ — attack catalog: six active adversaries, attested vs not";
  let t =
    Thc_util.Table.create
      [
        "attack"; "target"; "violations"; "ops@seq1"; "hw rejections";
        "verdict";
      ]
  in
  let all_hold = ref true in
  let cells =
    count_keys
      (List.concat_map
         (fun attack ->
           List.map
             (fun target -> (attack, target))
             [ Thc_byz.Attack.Minbft; Thc_byz.Attack.Unattested ])
         Thc_byz.Attack.all)
  in
  let rows =
    pool_run ~jobs:!jobs
      (fun (attack, target) -> Thc_byz.Attack.run ~seed:1L ~target ~attack ())
      cells
  in
  List.iter2
    (fun (attack, target) r ->
      let aname = Thc_byz.Attack.name attack in
      let holds = Thc_byz.Attack.holds r in
          all_hold := !all_hold && holds;
          let tname = Thc_byz.Attack.target_name target in
          record_i "byz"
            (Printf.sprintf "%s.%s.violations" aname tname)
            r.Thc_byz.Attack.safety_violations;
          (match target with
          | Thc_byz.Attack.Minbft | Thc_byz.Attack.Ubft ->
            record_i "byz"
              (Printf.sprintf "%s.%s.rejections" aname tname)
              r.Thc_byz.Attack.rejections
          | Thc_byz.Attack.Unattested ->
            record_i "byz"
              (Printf.sprintf "%s.%s.distinct_ops_at_seq1" aname tname)
              r.Thc_byz.Attack.distinct_ops_at_seq1);
          Thc_util.Table.add_row t
            [
              aname;
              tname;
              string_of_int r.Thc_byz.Attack.safety_violations;
              string_of_int r.Thc_byz.Attack.distinct_ops_at_seq1;
              (match target with
              | Thc_byz.Attack.Minbft | Thc_byz.Attack.Ubft ->
                string_of_int r.Thc_byz.Attack.rejections
              | Thc_byz.Attack.Unattested -> "-");
              (if holds then "as predicted" else "DIVERGES");
            ])
    cells rows;
  record_b "byz" "all_hold" !all_hold;
  Thc_util.Table.print t;
  print_endline
    "(every attack bounces off the attested protocol leaving a ledger\n\
    \ entry, and forks the same message flow once attestation is removed)"

(* ----------------------------------------------------------------------- *)
(* S1: MinBFT (2f+1) vs PBFT (3f+1)                                          *)
(* ----------------------------------------------------------------------- *)

let table_s1 () =
  section "S1 — replication: MinBFT (trusted counters) vs PBFT baseline";
  let t =
    Thc_util.Table.create
      [
        "protocol"; "f"; "replicas"; "scenario"; "completed"; "msgs/op";
        "mean us"; "p99 us"; "view"; "safe"; "live";
      ]
  in
  let protocols =
    with_names [ Thc_replication.Protocol.Minbft; Thc_replication.Protocol.Pbft ]
  in
  let scenarios =
    [
      ("fault-free", Thc_replication.Harness.Fault_free);
      ("crash-leader", Thc_replication.Harness.Crash_leader 40_000L);
      ("f-silent", Thc_replication.Harness.Silent_replicas);
    ]
  in
  let cells =
    count_keys
      (List.concat_map
         (fun f ->
           List.concat_map
             (fun (pname, protocol) ->
               List.map
                 (fun (sname, scenario) -> (f, pname, protocol, sname, scenario))
                 scenarios)
             protocols)
         [ 1; 2; 3 ])
  in
  let run_cell (f, _, protocol, _, scenario) =
    Thc_replication.Harness.run
      (Thc_replication.Harness.Setup.make ~protocol ~f ~scenario ~seed:17L
         ?network:!bench_network ())
  in
  (* With --jobs > 1, time the grid both ways and report the wall-clock win.
     The comparison line goes to stdout only in parallel runs, so the default
     (sequential) bench transcript stays byte-stable. *)
  let outcomes =
    if !jobs > 1 then begin
      let t0 = Unix.gettimeofday () in
      let seq = pool_run ~jobs:1 run_cell cells in
      let t1 = Unix.gettimeofday () in
      let par = pool_run ~jobs:!jobs run_cell cells in
      let t2 = Unix.gettimeofday () in
      let seq_s = t1 -. t0 and par_s = t2 -. t1 in
      Printf.printf
        "s1 wall-clock: sequential %.3fs vs %d-worker %.3fs (%.2fx speedup)\n"
        seq_s !jobs par_s
        (if par_s > 0. then seq_s /. par_s else 0.);
      ignore seq;
      par
    end
    else pool_run ~jobs:1 run_cell cells
  in
  List.iter2
    (fun (f, pname, _, sname, _) (o : Thc_replication.Harness.outcome) ->
      let key = Printf.sprintf "%s.f%d.%s" pname f sname in
              record_i "s1" (key ^ ".completed") o.completed;
              record_i "s1" (key ^ ".commits") o.commits;
              record_f "s1" (key ^ ".msgs_per_op") o.messages_per_op;
              record_f "s1" (key ^ ".mean_us") o.latency.mean;
              record_f "s1" (key ^ ".p99_us") o.latency.p99;
              record_f "s1" (key ^ ".trusted_per_commit") o.trusted_per_commit;
              record_b "s1" (key ^ ".safe") (o.safety_violations = []);
              record_b "s1" (key ^ ".live") (o.liveness_violations = []);
              Thc_util.Table.add_row t
                [
                  pname;
                  string_of_int f;
                  string_of_int o.replicas;
                  sname;
                  Printf.sprintf "%d/25" o.completed;
                  Printf.sprintf "%.1f" o.messages_per_op;
                  Printf.sprintf "%.0f" o.latency.mean;
                  Printf.sprintf "%.0f" o.latency.p99;
                  string_of_int o.final_view;
                  (if o.safety_violations = [] then "yes" else "NO");
                  (if o.liveness_violations = [] then "yes" else "NO");
                ])
    cells outcomes;
  Thc_util.Table.print t;
  print_endline
    "(shape: MinBFT commits with 2f+1 replicas, ~1/3 the messages per op and\n\
    \ lower latency than PBFT's 3f+1, at every f — the motivation of the\n\
    \ trusted-hardware line the paper classifies)"

(* ----------------------------------------------------------------------- *)
(* S1b: delay sensitivity + message breakdown                                *)
(* ----------------------------------------------------------------------- *)

let table_s1b () =
  section "S1b — replication: link-delay sensitivity and message breakdown";
  let t =
    Thc_util.Table.create
      [ "protocol"; "link delay"; "mean us"; "p99 us"; "msgs/op"; "breakdown (top kinds)" ]
  in
  let delays =
    [
      ("50-200 us", Thc_sim.Delay.Uniform (50L, 200L));
      ("0.2-1 ms", Thc_sim.Delay.Uniform (200L, 1_000L));
      ("exp(1 ms)", Thc_sim.Delay.Exponential 1_000.0);
    ]
  in
  List.iter
    (fun (pname, protocol) ->
      List.iter
        (fun (dname, delay) ->
          let o =
            Thc_replication.Harness.run
              (Thc_replication.Harness.Setup.make ~protocol ~f:1 ~delay
                 ~seed:19L ?network:!bench_network ())
          in
          let top =
            o.breakdown
            |> List.filteri (fun i _ -> i < 3)
            |> List.map (fun (k, c) -> Printf.sprintf "%s:%d" k c)
            |> String.concat " "
          in
          let key =
            Printf.sprintf "%s.%s" pname
              (String.map (function ' ' | '(' | ')' -> '_' | c -> c) dname)
          in
          record_f "s1b" (key ^ ".mean_us") o.latency.mean;
          record_f "s1b" (key ^ ".p99_us") o.latency.p99;
          record_f "s1b" (key ^ ".msgs_per_op") o.messages_per_op;
          Thc_util.Table.add_row t
            [
              pname;
              dname;
              Printf.sprintf "%.0f" o.latency.mean;
              Printf.sprintf "%.0f" o.latency.p99;
              Printf.sprintf "%.1f" o.messages_per_op;
              top;
            ])
        delays)
    (with_names [ Thc_replication.Protocol.Minbft; Thc_replication.Protocol.Pbft ]);
  Thc_util.Table.print t;
  print_endline
    "(latency tracks the delay distribution with the same protocol-phase\n\
    \ multiplier; the breakdown shows where the message gap lives: PBFT's\n\
    \ all-to-all prepare phase)"

(* ----------------------------------------------------------------------- *)
(* S3: throughput–latency curve with request batching                        *)
(* ----------------------------------------------------------------------- *)

let table_s3 () =
  section
    "S3 — loadtest: throughput-latency curve and trusted-op amortization";
  let module W = Thc_workload.Workload in
  let module L = Thc_workload.Loadtest in
  let t =
    Thc_util.Table.create
      [
        "protocol"; "rate r/s"; "batch"; "completed"; "thru r/s"; "p50 us";
        "p99 us"; "trusted/req";
      ]
  in
  let rates = [ 400.; 1200. ] in
  let batches = [ 1; 4 ] in
  List.iter
    (fun (pname, protocol) ->
      let template =
        {
          L.protocol;
          f = 1;
          batch = 1;
          seed = 29L;
          delay = Thc_sim.Delay.Uniform (50L, 500L);
          network = !bench_network;
          spec =
            {
              W.clients = 4;
              requests_per_client = 20;
              arrival = W.Open_poisson { rate_rps = List.hd rates };
              keys = W.Keys_zipf { keys = 64; theta = 0.99 };
              mix = W.default_mix;
            };
        }
      in
      let arrivals =
        List.map (fun r -> W.Open_poisson { rate_rps = r }) rates
      in
      ignore
        (count_keys
           (List.concat_map (fun a -> List.map (fun b -> (a, b)) batches)
              arrivals));
      let stats st =
        if !jobs > 1 then Format.eprintf "%a@." Pool.pp_stats st
      in
      let results = L.sweep ~jobs:!jobs ~stats template ~arrivals ~batches in
      List.iter
        (fun (r : L.result) ->
          let rate =
            match r.L.point.L.spec.W.arrival with
            | W.Open_poisson { rate_rps } | W.Open_uniform { rate_rps } ->
              rate_rps
            | W.Closed _ -> 0.0
          in
          let key =
            Printf.sprintf "%s.rate%.0f.b%d" pname rate r.L.point.L.batch
          in
          record_i "s3" (key ^ ".completed") r.L.completed;
          record_f "s3" (key ^ ".throughput_rps") r.L.throughput_rps;
          record_f "s3" (key ^ ".p50_us") r.L.latency.Thc_util.Stats.p50;
          record_f "s3" (key ^ ".p99_us") r.L.latency.Thc_util.Stats.p99;
          record_f "s3" (key ^ ".trusted_per_req") r.L.trusted_per_request;
          Thc_util.Table.add_row t
            [
              pname;
              Printf.sprintf "%.0f" rate;
              string_of_int r.L.point.L.batch;
              Printf.sprintf "%d/%d" r.L.completed r.L.offered;
              Printf.sprintf "%.1f" r.L.throughput_rps;
              Printf.sprintf "%.0f" r.L.latency.Thc_util.Stats.p50;
              Printf.sprintf "%.0f" r.L.latency.Thc_util.Stats.p99;
              Printf.sprintf "%.3f" r.L.trusted_per_request;
            ])
        results)
    (with_names [ Thc_replication.Protocol.Minbft; Thc_replication.Protocol.Pbft ]);
  Thc_util.Table.print t;
  print_endline
    "(one trusted-counter attestation seals a whole MinBFT batch, so\n\
    \ trusted ops per committed request fall as the leader batches harder;\n\
    \ PBFT spends none either way — its cost lives in the extra replicas\n\
    \ and the all-to-all phase)"

(* ----------------------------------------------------------------------- *)
(* S2: delta-synchrony sweep                                                 *)
(* ----------------------------------------------------------------------- *)

let table_s2 () =
  section "S2 — delta-synchronous rounds: wait sweep (10 seeds each)";
  let delta = 1_000L in
  let t =
    Thc_util.Table.create
      [ "wait"; "runs with uni violation"; "runs with bi violation"; "classification" ]
  in
  List.iter
    (fun (label, wait) ->
      let uni_bad = ref 0 and bi_bad = ref 0 in
      let seeds = List.init 10 (fun i -> Int64.of_int (1000 + i)) in
      List.iter
        (fun seed ->
          let n = 4 in
          let net =
            Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, delta))
          in
          let engine = Thc_sim.Engine.create ~seed ~n ~net () in
          let rng = Thc_util.Rng.create seed in
          for pid = 0 to n - 1 do
            Thc_sim.Engine.set_behavior engine pid
              (Thc_rounds.Delta_rounds.behavior ~wait
                 ~start_offset:(Int64.of_int (Thc_util.Rng.int rng 3_000))
                 (chatter pid ~rounds:3))
          done;
          let trace = Thc_sim.Engine.run ~until:1_000_000L engine in
          if Thc_rounds.Directionality.check_unidirectional trace <> [] then
            incr uni_bad;
          if Thc_rounds.Directionality.check_bidirectional trace <> [] then
            incr bi_bad)
        seeds;
      let classification =
        if !uni_bad > 0 then "zero-directional"
        else if !bi_bad > 0 then "unidirectional (not bi)"
        else "bidirectional"
      in
      let key = Printf.sprintf "wait_%Ldus" wait in
      record_i "s2" (key ^ ".uni_violating_runs") !uni_bad;
      record_i "s2" (key ^ ".bi_violating_runs") !bi_bad;
      record_s "s2" (key ^ ".classification") classification;
      Thc_util.Table.add_row t
        [ label; Printf.sprintf "%d/10" !uni_bad; Printf.sprintf "%d/10" !bi_bad; classification ])
    [ ("0.3 * delta", 300L); ("1.0 * delta", delta); ("2.0 * delta", 2_000L) ];
  Thc_util.Table.print t;
  print_endline
    "(paper: wait < delta gives nothing beyond zero-directionality; wait >=\n\
    \ delta gives unidirectionality; no finite wait gives bidirectionality\n\
    \ without synchronized round starts)"

(* ----------------------------------------------------------------------- *)
(* Bechamel wall-clock benches: one per experiment id                        *)
(* ----------------------------------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let t_fig1 =
    Test.make ~name:"fig1/closure"
      (Staged.stage (fun () ->
           ignore (Thc_classify.Hierarchy.closure Thc_classify.Hierarchy.paper)))
  in
  let t_c1 =
    Test.make ~name:"c1/swmr-3rounds-n5"
      (Staged.stage (fun () ->
           ignore
             (run_driver_once
                ~driver:(`Swmr (Thc_sharedmem.Swmr.log_array ~n:5))
                ~n:5 ~seed:3L ~rounds:3)))
  in
  let t_c2 =
    Test.make ~name:"c2/scenarios-1-3"
      (Staged.stage (fun () ->
           ignore
             (Thc_classify.Separations.srb_cannot_implement_unidirectionality
                ())))
  in
  let t_l1 =
    Test.make ~name:"l1/srb-from-uni-n5"
      (Staged.stage (fun () -> ignore (run_srb_uni ~n:5 ~faults:2 ~seed:5L ~msgs:2)))
  in
  let t_t1 =
    let rng = Thc_util.Rng.create 5L in
    let world = Thc_hardware.Trinc.create_world rng ~n:1 in
    let trinket = Thc_hardware.Trinc.trinket world ~owner:0 in
    let counter = ref 0 in
    Test.make ~name:"t1/trinc-attest"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Thc_hardware.Trinc.attest trinket ~counter:!counter ~message:"m")))
  in
  let t_a1 =
    Test.make ~name:"a1/very-weak-n5"
      (Staged.stage (fun () ->
           let n = 5 in
           let keyring = keyring ~n ~seed:19L in
           let net = Thc_sim.Net.create ~n ~default:fast in
           let engine = Thc_sim.Engine.create ~seed:19L ~n ~net () in
           let registers = Thc_sharedmem.Swmr.log_array ~n in
           for pid = 0 to n - 1 do
             Thc_sim.Engine.set_behavior engine pid
               (Thc_rounds.Swmr_rounds.behavior ~registers
                  ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                  (Thc_agreement.Very_weak.app
                     (Thc_agreement.Very_weak.create ~input:"v")))
           done;
           ignore (Thc_sim.Engine.run ~until:5_000_000L engine)))
  in
  let smr protocol name =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (Thc_replication.Harness.run
                (Thc_replication.Harness.Setup.make ~protocol ~f:1 ~ops:10
                   ~seed:23L ?network:!bench_network ()))))
  in
  let t_sig =
    let k = keyring ~n:2 ~seed:29L in
    let ident = Thc_crypto.Keyring.secret k ~pid:0 in
    Test.make ~name:"crypto/sign+verify"
      (Staged.stage (fun () ->
           let s = Thc_crypto.Signature.sign ident "payload" in
           ignore (Thc_crypto.Signature.verify k s "payload")))
  in
  Test.make_grouped ~name:"thc"
    [
      t_fig1;
      t_c1;
      t_c2;
      t_l1;
      t_t1;
      t_a1;
      smr Thc_replication.Harness.Minbft "s1/minbft-10ops-f1";
      smr Thc_replication.Harness.Pbft "s1/pbft-10ops-f1";
      t_sig;
    ]

let run_bechamel () =
  let open Bechamel in
  section "Wall-clock benchmarks (Bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t = Thc_util.Table.create [ "benchmark"; "ns/run"; "r^2" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%.0f" est
        | Some _ | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      rows := (name, time, r2) :: !rows)
    results;
  List.iter
    (fun (name, time, r2) -> Thc_util.Table.add_row t [ name; time; r2 ])
    (List.sort compare !rows);
  Thc_util.Table.print t

let table_problems () =
  section "P — problem/model capability matrix (paper: Problems Considered)";
  print_string (Thc_classify.Problems.render ());
  let results = Thc_classify.Problems.verify () in
  let failed = List.filter (fun (_, ok, _) -> not ok) results in
  record_i "problems" "cells_checked" (List.length results);
  record_i "problems" "cells_passed" (List.length results - List.length failed);
  Printf.printf "machine-checkable cells: %d/%d PASS\n"
    (List.length results - List.length failed)
    (List.length results)

(* ----------------------------------------------------------------------- *)
(* S4: engine throughput (wall clock)                                        *)
(* ----------------------------------------------------------------------- *)

let s4_timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let s4_cell ~ops ~clients ~seed =
  Thc_replication.Harness.Setup.make ~protocol:Thc_replication.Harness.Minbft
    ~f:1 ~ops ~clients ~seed ?network:!bench_network ()

(* Throughput mode: same cluster and schedule as an S1 cell, but
   Outputs_only tracing and the lite reduction, so nearly all wall time
   is simulation.  One warm-up run, then [trials] timed runs on distinct
   seeds so no run amortizes another's caches. *)
let s4_lite_samples ~ops ~clients ~trials =
  ignore (Thc_replication.Harness.run_lite (s4_cell ~ops ~clients ~seed:17L));
  List.init trials (fun i ->
      let cell = s4_cell ~ops ~clients ~seed:(Int64.of_int (i + 1)) in
      let l, el = s4_timed (fun () -> Thc_replication.Harness.run_lite cell) in
      {
        Thc_obsv.Throughput.events = l.Thc_replication.Harness.l_events;
        ops = l.Thc_replication.Harness.l_completed;
        elapsed_s = el;
      })

(* The full pipeline (Full tracing + every metric fold) on the same cell,
   for the overhead comparison row. *)
let s4_full_samples ~ops ~clients ~trials =
  ignore (Thc_replication.Harness.run (s4_cell ~ops ~clients ~seed:17L));
  List.init trials (fun i ->
      let cell = s4_cell ~ops ~clients ~seed:(Int64.of_int (i + 1)) in
      let o, el = s4_timed (fun () -> Thc_replication.Harness.run cell) in
      {
        Thc_obsv.Throughput.events = o.Thc_replication.Harness.events;
        ops = o.Thc_replication.Harness.completed;
        elapsed_s = el;
      })

(* Raw engine ceiling: n all-to-all broadcasters on 10us timers, no
   protocol work at all — every cycle is pop, dispatch, push.  Measures
   the calendar queue + arena + pool machinery itself. *)
let s4_storm ~tracing ~n ~horizon () =
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (5L, 50L)) in
  let eng : int Thc_sim.Engine.t =
    Thc_sim.Engine.create ~seed:7L ~tracing ~n ~net ()
  in
  let behavior =
    {
      Thc_sim.Engine.init = (fun ctx -> ctx.set_timer ~delay:10L ~tag:0);
      on_message = (fun _ ~src:_ _ -> ());
      on_timer =
        (fun ctx _ ->
          ctx.others (ctx.self * 1000);
          if ctx.now () < horizon then ctx.set_timer ~delay:10L ~tag:0);
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior eng pid behavior
  done;
  ignore (Thc_sim.Engine.run ~max_events:10_000_000 eng);
  Thc_sim.Engine.events_processed eng

let s4_storm_samples ~tracing ~trials =
  let run = s4_storm ~tracing ~n:4 ~horizon:50_000L in
  ignore (run ());
  List.init trials (fun _ ->
      let events, el = s4_timed run in
      { Thc_obsv.Throughput.events; ops = 0; elapsed_s = el })

let table_s4 () =
  section "S4 — engine throughput: events/sec and ops/sec (wall clock)";
  let t = Thc_util.Table.create ("workload" :: Thc_obsv.Throughput.columns) in
  let rows =
    [
      ("s1_lite_ops25", s4_lite_samples ~ops:25 ~clients:1 ~trials:5);
      ("s1_lite_ops100x4", s4_lite_samples ~ops:100 ~clients:4 ~trials:3);
      ("s1_full_ops25", s4_full_samples ~ops:25 ~clients:1 ~trials:3);
      ("storm_full", s4_storm_samples ~tracing:Thc_sim.Engine.Full ~trials:3);
      ("storm_off", s4_storm_samples ~tracing:Thc_sim.Engine.Off ~trials:3);
    ]
  in
  List.iter
    (fun (name, samples) ->
      let s = Thc_obsv.Throughput.summarize samples in
      record "s4" name (Thc_obsv.Throughput.to_json s);
      Thc_util.Table.add_row t (name :: Thc_obsv.Throughput.cells s))
    rows;
  Thc_util.Table.print t;
  print_endline
    "(wall-clock and nondeterministic by design — the one table whose\n\
    \ numbers measure the machine, not the model.  s1_lite_* is the\n\
    \ measurement mode: the S1 schedule under Outputs_only tracing.\n\
    \ storm_* is the bare engine; min is the robust column on a noisy box.)"

(* ----------------------------------------------------------------------- *)
(* S5: request-span phase breakdown — where time and trusted ops go         *)
(* ----------------------------------------------------------------------- *)

(* The unattested rig wires pid 0 as an attacker slot; for the phase
   baseline we install a well-behaved leader in it — propose one request
   per slot to every replica and let the honest quorum machinery run. *)
let s5_honest_unattested_leader (env : Thc_replication.Ablation.Unattested.env)
    : Thc_replication.Ablation.Unattested.wire Thc_sim.Engine.behavior =
  let module U = Thc_replication.Ablation.Unattested in
  let everyone = env.U.group_a @ env.U.group_b in
  let send_all (ctx : _ Thc_sim.Engine.ctx) wire =
    List.iter (fun dst -> ctx.Thc_sim.Engine.send dst wire) everyone
  in
  {
    Thc_sim.Engine.init =
      (fun ctx ->
        ctx.set_timer ~delay:1_000L ~tag:1;
        ctx.set_timer ~delay:21_000L ~tag:2);
    on_message = (fun _ ~src:_ _ -> ());
    on_timer =
      (fun ctx tag ->
        if tag = 1 then send_all ctx (U.prepare env ~seq:1 env.U.req_a)
        else if tag = 2 then send_all ctx (U.prepare env ~seq:2 env.U.req_b));
  }

let table_s5 () =
  section "S5 — request-span phase breakdown: where time and trusted ops go";
  let t =
    Thc_util.Table.create
      [ "variant"; "phase"; "spans"; "p50 us"; "p99 us"; "mean us"; "trusted ops" ]
  in
  let add_rows vname (summary : Thc_obsv.Span.summary) =
    record_i "s5" (vname ^ ".spans_total") summary.Thc_obsv.Span.spans_total;
    record_i "s5" (vname ^ ".spans_complete")
      summary.Thc_obsv.Span.spans_complete;
    List.iter
      (fun (r : Thc_obsv.Span.phase_row) ->
        let key = Printf.sprintf "%s.%s" vname r.Thc_obsv.Span.p_name in
        record_i "s5" (key ^ ".count") r.Thc_obsv.Span.p_count;
        (match r.Thc_obsv.Span.p_p50 with
        | Some v -> record_i "s5" (key ^ ".p50_us") (Int64.to_int v)
        | None -> ());
        (match r.Thc_obsv.Span.p_p99 with
        | Some v -> record_i "s5" (key ^ ".p99_us") (Int64.to_int v)
        | None -> ());
        (match r.Thc_obsv.Span.p_mean with
        | Some m -> record_f "s5" (key ^ ".mean_us") m
        | None -> ());
        let ops =
          List.fold_left (fun acc (_, c) -> acc + c) 0 r.Thc_obsv.Span.p_ops
        in
        record_i "s5" (key ^ ".trusted_ops") ops;
        Thc_util.Table.add_row t
          [
            vname;
            r.Thc_obsv.Span.p_name;
            string_of_int r.Thc_obsv.Span.p_count;
            (match r.Thc_obsv.Span.p_p50 with
            | Some v -> Int64.to_string v
            | None -> "-");
            (match r.Thc_obsv.Span.p_p99 with
            | Some v -> Int64.to_string v
            | None -> "-");
            (match r.Thc_obsv.Span.p_mean with
            | Some m -> Printf.sprintf "%.0f" m
            | None -> "-");
            string_of_int ops;
          ])
      summary.Thc_obsv.Span.rows
  in
  let setup protocol : Thc_replication.Harness.setup =
    Thc_replication.Harness.Setup.make ~protocol ~f:1 ~clients:2 ~batch:4
      ~seed:17L ?network:!bench_network ()
  in
  List.iter
    (fun (vname, protocol) ->
      let _, views, ops = Thc_replication.Harness.run_spans (setup protocol) in
      add_rows vname (Thc_obsv.Span.summarize ~ops views))
    (with_names [ Thc_replication.Protocol.Minbft; Thc_replication.Protocol.Pbft ]);
  let spans = Thc_obsv.Span.create () in
  ignore
    (Thc_replication.Ablation.Unattested.run ~f:1 ~spans ~seed:17L
       ~attacker:s5_honest_unattested_leader
       ~detail:"honest leader over the unattested protocol (phase baseline)"
       ());
  add_rows "unattested" (Thc_obsv.Span.summarize (Thc_obsv.Span.views spans));
  Thc_util.Table.print t;
  print_endline
    "(the prepare and commit phases carry MinBFT's whole trusted-op bill —\n\
    \ one attest per sealed batch plus a check per receiving replica —\n\
    \ while PBFT spends comparable virtual time with zero trusted ops and\n\
    \ f extra replicas; the unattested rig has no client, so only its\n\
    \ prepare/commit/execute slice reports)"

(* ----------------------------------------------------------------------- *)
(* S6: the "strictly stronger" edge, measured — MinBFT vs PBFT vs uBFT-sim  *)
(* ----------------------------------------------------------------------- *)

let table_s6 () =
  section
    "S6 — Figure 1's strictly-stronger edge: trusted logs vs SWMR registers";
  let t =
    Thc_util.Table.create
      [
        "protocol"; "f"; "replicas"; "completed"; "p50 us"; "p90 us";
        "p99 us"; "msgs/op"; "trusted/req"; "safe";
      ]
  in
  let protocols =
    with_names Thc_replication.Protocol.all
  in
  let cells =
    count_keys
      (List.concat_map
         (fun f ->
           List.map (fun (pname, protocol) -> (f, pname, protocol)) protocols)
         [ 1; 2 ])
  in
  (* Same fault-free workload at equal f for all three: the measured gap is
     protocol structure alone.  MinBFT's trusted/req counts counter
     seals/verifies, uBFT's counts register reads/writes/appends — the two
     currencies of adjacent Figure 1 classes; PBFT spends neither. *)
  let run_cell (f, _, protocol) =
    Thc_replication.Harness.run
      (Thc_replication.Harness.Setup.make ~protocol ~f ~clients:2 ~seed:17L
         ?network:!bench_network ())
  in
  let outcomes = pool_run ~jobs:!jobs run_cell cells in
  let pq h q =
    match Thc_obsv.Metrics.Histogram.quantile h q with
    | Some v -> Int64.to_int v
    | None -> 0
  in
  List.iter2
    (fun (f, pname, _) (o : Thc_replication.Harness.outcome) ->
      let key = Printf.sprintf "%s.f%d" pname f in
      let p50 = pq o.lat_hist 0.50
      and p90 = pq o.lat_hist 0.90
      and p99 = pq o.lat_hist 0.99 in
      record_i "s6" (key ^ ".completed") o.completed;
      record_i "s6" (key ^ ".p50_us") p50;
      record_i "s6" (key ^ ".p90_us") p90;
      record_i "s6" (key ^ ".p99_us") p99;
      record_f "s6" (key ^ ".msgs_per_op") o.messages_per_op;
      record_f "s6" (key ^ ".trusted_per_req") o.trusted_per_request;
      record_b "s6" (key ^ ".safe") (o.safety_violations = []);
      Thc_util.Table.add_row t
        [
          pname;
          string_of_int f;
          string_of_int o.replicas;
          Printf.sprintf "%d/50" o.completed;
          string_of_int p50;
          string_of_int p90;
          string_of_int p99;
          Printf.sprintf "%.1f" o.messages_per_op;
          Printf.sprintf "%.1f" o.trusted_per_request;
          (if o.safety_violations = [] then "yes" else "NO");
        ])
    cells outcomes;
  Thc_util.Table.print t;
  print_endline
    "(the strictly-stronger edge as latency: registers let uBFT-sim answer\n\
    \ in 3 hops where MinBFT's counter discipline needs 4, so uBFT's p50\n\
    \ undercuts MinBFT's at equal f — paying more trusted ops per request\n\
    \ (register reads are trusted-memory traffic, counter seals are not)\n\
    \ and fewer messages; PBFT needs f extra replicas to buy the same\n\
    \ safety with no hardware at all)"

let table_s7 () =
  section "S7 — protocol x network grid: where the topology moves the ranking";
  let t =
    Thc_util.Table.create
      [
        "protocol"; "network"; "completed"; "p50 us"; "p99 us"; "msgs/op";
        "trusted/req"; "safe";
      ]
  in
  let protocols =
    with_names Thc_replication.Protocol.all
  in
  (* Named presets from the same parser the CLIs use, so every cell of this
     grid is reproducible as `thc ... --network <name>`. *)
  let networks =
    List.map
      (fun name ->
        match Thc_network.Model.of_string name with
        | Ok m -> (name, m)
        | Error e -> failwith ("s7: bad preset " ^ name ^ ": " ^ e))
      [ "lan"; "uniform"; "geo3"; "lossy" ]
  in
  let cells =
    count_keys
      (List.concat_map
         (fun (pname, protocol) ->
           List.map (fun (nname, m) -> (pname, protocol, nname, m)) networks)
         protocols)
  in
  (* Same fault-free workload and seed for every cell: the measured movement
     is the network model alone.  f = 1 keeps uBFT and MinBFT at 3 replicas
     vs PBFT's 4 — under geo3 the fourth replica drags PBFT's quorums
     across the WAN more often. *)
  let run_cell (_, protocol, _, m) =
    Thc_replication.Harness.run
      (Thc_replication.Harness.Setup.make ~protocol ~f:1 ~clients:2 ~seed:17L
         ~network:m ())
  in
  let outcomes = pool_run ~jobs:!jobs run_cell cells in
  let pq h q =
    match Thc_obsv.Metrics.Histogram.quantile h q with
    | Some v -> Int64.to_int v
    | None -> 0
  in
  let p50s = ref [] in
  List.iter2
    (fun (pname, _, nname, m) (o : Thc_replication.Harness.outcome) ->
      let key = Printf.sprintf "%s.%s" pname nname in
      let p50 = pq o.lat_hist 0.50 and p99 = pq o.lat_hist 0.99 in
      p50s := ((pname, nname), p50) :: !p50s;
      record_s "s7" (key ^ ".network_tag") (Thc_network.Model.tag m);
      record_i "s7" (key ^ ".completed") o.completed;
      record_i "s7" (key ^ ".p50_us") p50;
      record_i "s7" (key ^ ".p99_us") p99;
      record_f "s7" (key ^ ".msgs_per_op") o.messages_per_op;
      record_f "s7" (key ^ ".trusted_per_req") o.trusted_per_request;
      record_b "s7" (key ^ ".safe") (o.safety_violations = []);
      Thc_util.Table.add_row t
        [
          pname;
          nname;
          Printf.sprintf "%d/50" o.completed;
          string_of_int p50;
          string_of_int p99;
          Printf.sprintf "%.1f" o.messages_per_op;
          Printf.sprintf "%.1f" o.trusted_per_request;
          (if o.safety_violations = [] then "yes" else "NO");
        ])
    cells outcomes;
  Thc_util.Table.print t;
  (* The headline: uBFT's 3-hop register path beats MinBFT on a LAN, but
     every register operation is a network round under geo3's WAN mix, so
     the gap moves with the topology.  Record the ratio so the claim is a
     number, not prose. *)
  let p50 pname nname =
    float_of_int (List.assoc (pname, nname) !p50s)
  in
  let ratio nname = p50 "ubft" nname /. p50 "minbft" nname in
  record_f "s7" "headline.ubft_vs_minbft_p50_ratio_lan" (ratio "lan");
  record_f "s7" "headline.ubft_vs_minbft_p50_ratio_geo3" (ratio "geo3");
  Printf.printf
    "(headline: uBFT p50 / MinBFT p50 = %.2f on lan vs %.2f under geo3 —\n\
    \ the protocol ranking is a property of the network model, which is\n\
    \ why the grid exists; every cell reproduces as\n\
    \ `thc smr <proto> --network <name>`-style runs at seed 17)\n"
    (ratio "lan") (ratio "geo3")

(* ----------------------------------------------------------------------- *)
(* S8: durability — attested checkpoints, truncation, state transfer        *)
(* ----------------------------------------------------------------------- *)

let table_s8 () =
  section
    "S8 — durability: attested checkpoints bound the log, verified state \
     transfer survives attack";
  (* Part 1: the checkpoint-interval sweep.  The live log's high-water-mark
     must stay within Durability.bound (2 x interval); interval 0 is the
     unbounded baseline. *)
  let t =
    Thc_util.Table.create
      [
        "interval"; "completed"; "log hwm"; "bound"; "stable"; "truncations";
        "trusted/req"; "safe";
      ]
  in
  let intervals = count_keys [ 0; 2; 4; 8 ] in
  let run_interval interval =
    Thc_replication.Harness.run
      (Thc_replication.Harness.Setup.make ~ops:60
         ~checkpoint_interval:interval
         ~protocol:Thc_replication.Protocol.Minbft ~f:1 ~seed:11L ())
  in
  let outcomes = pool_run ~jobs:!jobs run_interval intervals in
  let all_bounds = ref true in
  List.iter2
    (fun interval (o : Thc_replication.Harness.outcome) ->
      let d = o.Thc_replication.Harness.durability in
      let bound =
        Thc_replication.Durability.bound ~checkpoint_interval:interval
      in
      let ok =
        Thc_replication.Durability.bound_ok ~checkpoint_interval:interval d
      in
      all_bounds := !all_bounds && ok;
      let key = Printf.sprintf "interval%d" interval in
      record_i "s8" (key ^ ".log_hwm") d.Thc_replication.Durability.hwm;
      record_i "s8" (key ^ ".stable_upto")
        d.Thc_replication.Durability.stable_upto;
      record_i "s8" (key ^ ".truncations")
        d.Thc_replication.Durability.truncations;
      record_i "s8" (key ^ ".completed") o.completed;
      record_b "s8" (key ^ ".bound_ok") ok;
      record_f "s8" (key ^ ".trusted_per_req") o.trusted_per_request;
      Thc_util.Table.add_row t
        [
          (if interval = 0 then "off" else string_of_int interval);
          Printf.sprintf "%d/60" o.completed;
          string_of_int d.Thc_replication.Durability.hwm;
          (if interval = 0 then "-" else string_of_int bound);
          string_of_int d.Thc_replication.Durability.stable_upto;
          string_of_int d.Thc_replication.Durability.truncations;
          Printf.sprintf "%.1f" o.trusted_per_request;
          (if o.safety_violations = [] then "yes" else "NO");
        ])
    intervals outcomes;
  record_b "s8" "all_bounds_hold" !all_bounds;
  Thc_util.Table.print t;
  (* Part 2: restart and recovery.  A non-leader replica loses all volatile
     state mid-workload; with checkpoints it rejoins by verified state
     transfer, without them its only donor material is the full log replay
     the truncation already threw away. *)
  let restart interval =
    Thc_replication.Harness.run
      (Thc_replication.Harness.Setup.make ~ops:30
         ~scenario:
           (Thc_replication.Harness.Restart_replica { pid = 2; at = 60_000L })
         ~checkpoint_interval:interval
         ~protocol:Thc_replication.Protocol.Minbft ~f:1 ~seed:11L ())
  in
  let r4 = restart 4 in
  record_i "s8" "restart.interval4.completed" r4.completed;
  record_i "s8" "restart.interval4.stable_upto"
    r4.Thc_replication.Harness.durability.Thc_replication.Durability.stable_upto;
  record_b "s8" "restart.interval4.safe" (r4.safety_violations = []);
  Printf.printf
    "(restart at 60ms, interval 4: %d/30 served, stable checkpoint %d, \
     safety %s)\n"
    r4.completed
    r4.Thc_replication.Harness.durability.Thc_replication.Durability.stable_upto
    (if r4.safety_violations = [] then "intact" else "VIOLATED");
  (* Part 3: the checkpoint attack family — forged certificates, stale
     replays and join-time equivocation bounce off the attested protocol
     and fork the unattested one, exactly like the live-protocol catalog. *)
  let t =
    Thc_util.Table.create
      [ "attack"; "target"; "violations"; "hw rejections"; "verdict" ]
  in
  let all_hold = ref true in
  let cells =
    count_keys
      (List.concat_map
         (fun attack ->
           List.map
             (fun target -> (attack, target))
             [ Thc_byz.Attack.Minbft; Thc_byz.Attack.Unattested ])
         Thc_byz.Attack.ckpt_all)
  in
  let rows =
    pool_run ~jobs:!jobs
      (fun (attack, target) -> Thc_byz.Attack.run ~seed:1L ~target ~attack ())
      cells
  in
  List.iter2
    (fun (attack, target) r ->
      let aname = Thc_byz.Attack.name attack in
      let tname = Thc_byz.Attack.target_name target in
      let holds = Thc_byz.Attack.holds r in
      all_hold := !all_hold && holds;
      record_i "s8"
        (Printf.sprintf "%s.%s.violations" aname tname)
        r.Thc_byz.Attack.safety_violations;
      record_i "s8"
        (Printf.sprintf "%s.%s.rejections" aname tname)
        r.Thc_byz.Attack.rejections;
      Thc_util.Table.add_row t
        [
          aname;
          tname;
          string_of_int r.Thc_byz.Attack.safety_violations;
          (match target with
          | Thc_byz.Attack.Minbft | Thc_byz.Attack.Ubft ->
            string_of_int r.Thc_byz.Attack.rejections
          | Thc_byz.Attack.Unattested -> "-");
          (if holds then "as predicted" else "DIVERGES");
        ])
    cells rows;
  record_b "s8" "ckpt_attacks_hold" !all_hold;
  Thc_util.Table.print t;
  (* Part 4: the soak headline — doubling horizons, hwm flat vs growing. *)
  let soak = Thc_workload.Soak.run ~rounds:2 ~base_ops:25 ~seed:11L () in
  record_b "s8" "soak.stabilised" soak.Thc_workload.Soak.stabilised;
  record_i "s8" "soak.baseline_growth" soak.Thc_workload.Soak.baseline_growth;
  Printf.printf
    "(soak: log hwm %s across doubling horizons under interval %d; the\n\
    \ uncheckpointed baseline grew %+d entries — the log is the memory\n\
    \ unless a quorum certifies a prefix and the replicas throw it away)\n"
    (if soak.Thc_workload.Soak.stabilised then "stabilised"
     else "DID NOT stabilise")
    soak.Thc_workload.Soak.interval soak.Thc_workload.Soak.baseline_growth

let tables =
  [
    ("f1", table_f1);
    ("problems", table_problems);
    ("c1", table_c1);
    ("c2", table_c2);
    ("l1", table_l1);
    ("a1", table_a1);
    ("a3", table_a3);
    ("s1", table_s1);
    ("s1b", table_s1b);
    ("s3", table_s3);
    ("ablation", table_ablation);
    ("byz", table_byz);
    ("s2", table_s2);
    ("s4", table_s4);
    ("s5", table_s5);
    ("s6", table_s6);
    ("s7", table_s7);
    ("s8", table_s8);
  ]

let main jobs_n only network =
  jobs := max 1 jobs_n;
  bench_network := network;
  (match
     List.filter (fun id -> not (List.mem_assoc id tables)) only
   with
  | [] -> ()
  | unknown ->
    Printf.eprintf "bench: unknown table(s): %s (known: %s)\n"
      (String.concat ", " unknown)
      (String.concat ", " (List.map fst tables));
    exit 2);
  let selected = match only with [] -> List.map fst tables | ids -> ids in
  List.iter
    (fun (id, table) -> if List.mem id selected then table ())
    tables;
  write_results ();
  if only = [] then begin
    run_bechamel ();
    print_endline "\nbench: all experiment tables regenerated"
  end
  else
    print_endline
      "\nbench: selected tables regenerated (partial run: \
       BENCH_results.json holds only the selected tables; the Bechamel \
       suite was skipped)"

let () =
  let open Cmdliner in
  let only =
    Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~docv:"TABLES"
          ~doc:
            "Comma-separated experiment table ids to run (e.g. s1,byz). A \
             partial run writes BENCH_results.json with just the selected \
             tables' keys and skips the Bechamel wall-clock suite.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc:"Regenerate the thwclass experiment tables")
      Term.(const main $ Thc_exec.Cli.jobs () $ only $ Thc_exec.Cli.network ())
  in
  exit (Cmd.eval cmd)
