(* thc — command-line front end for the trusted-hardware classification
   library: render/verify the hierarchy, run the separation scenarios, the
   round drivers, and the replication comparison. *)

open Cmdliner

(* Sweep-shaped subcommands (explore, attack, loadtest — and the bench
   binary) share their --runs/--seed/--export/--jobs flags through
   Thc_exec.Cli, so the spellings, defaults and docs cannot drift apart.
   Pool utilization goes to stderr via the obsv registry; stdout stays
   byte-identical at every --jobs value. *)
module Cli = Thc_exec.Cli
module Protocol = Thc_replication.Protocol

(* Every protocol name↔value map below derives from Protocol, the tree's
   one codec; subcommands only add their own extras (both/all). *)
let protocol_assoc = List.map (fun p -> (Protocol.to_string p, p)) Protocol.all

let protocol_label = function
  | Protocol.Minbft -> "MinBFT (2f+1, trusted counters)"
  | Protocol.Pbft -> "PBFT (3f+1 baseline)"
  | Protocol.Ubft -> "uBFT-sim (2f+1, SWMR registers)"

(* --- figure1 ------------------------------------------------------------- *)

let figure1_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of ASCII.")
  in
  let run dot =
    let h = Thc_classify.Hierarchy.paper in
    if dot then print_string (Thc_classify.Hierarchy.to_dot h)
    else print_string (Thc_classify.Hierarchy.figure1 h);
    match Thc_classify.Hierarchy.consistent h with
    | Ok notes ->
      Printf.printf "\nhierarchy consistent (%d side-condition notes)\n"
        (List.length notes)
    | Error problems ->
      Printf.printf "\nhierarchy INCONSISTENT:\n";
      List.iter (Printf.printf "  %s\n") problems;
      exit 1
  in
  Cmd.v
    (Cmd.info "figure1" ~doc:"Render the paper's summary-of-results figure.")
    Term.(const run $ dot)

(* --- verify -------------------------------------------------------------- *)

let verify_cmd =
  let run () =
    let results = Thc_classify.Hierarchy.verify Thc_classify.Hierarchy.paper in
    let failed = ref 0 in
    List.iter
      (fun (label, passed, detail) ->
        if not passed then incr failed;
        Printf.printf "[%s] %-55s %s\n"
          (if passed then "PASS" else "FAIL")
          label detail)
      results;
    Printf.printf "\n%d/%d edge/separation checks passed\n"
      (List.length results - !failed)
      (List.length results);
    if !failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Execute every witness construction and separation scenario behind \
          the hierarchy's edges.")
    Term.(const run $ const ())

(* --- scenarios ------------------------------------------------------------ *)

let scenarios_cmd =
  let run () =
    let results =
      [
        Thc_classify.Separations.srb_cannot_implement_unidirectionality ();
        Thc_classify.Separations.rb_cannot_solve_very_weak ();
        Thc_classify.Separations.delta_wait_below_delta_not_unidirectional ();
      ]
    in
    List.iter
      (fun r -> Format.printf "%a@.@." Thc_classify.Separations.pp_result r)
      results;
    if not (List.for_all (fun r -> r.Thc_classify.Separations.holds) results)
    then exit 1
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:"Run the paper's impossibility constructions end to end.")
    Term.(const run $ const ())

(* --- problems --------------------------------------------------------------- *)

let problems_cmd =
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Execute every checkable cell.")
  in
  let run verify =
    print_string (Thc_classify.Problems.render ());
    if verify then begin
      let results = Thc_classify.Problems.verify () in
      let failed = ref 0 in
      List.iter
        (fun (label, passed, detail) ->
          if not passed then incr failed;
          Printf.printf "[%s] %s — %s\n" (if passed then "PASS" else "FAIL")
            label detail)
        results;
      if !failed > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "problems"
       ~doc:"The paper's problem/model capability matrix (Problems Considered).")
    Term.(const run $ verify)

(* --- rounds --------------------------------------------------------------- *)

let rounds_cmd =
  let driver =
    Arg.(
      value
      & opt (enum
               [ ("swmr", `Swmr); ("sticky", `Sticky); ("peats", `Peats);
                 ("async", `Async); ("sync", `Sync); ("delta", `Delta);
                 ("rb1", `Rb1) ])
          `Swmr
      & info [ "driver" ] ~doc:"Round driver: swmr|sticky|peats|async|sync|delta|rb1.")
  in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Processes.") in
  let rounds_n = Arg.(value & opt int 4 & info [ "rounds" ] ~doc:"Rounds to run.") in
  let seed = Cli.seed ~default:42L () in
  let run driver n rounds seed =
    let rng = Thc_util.Rng.create seed in
    let keyring = Thc_crypto.Keyring.create rng ~n in
    let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 400L)) in
    let app pid : Thc_rounds.Round_app.app =
      {
        first_payload = (fun _ -> Some (Printf.sprintf "r1-p%d" pid));
        on_receive = (fun _ ~round:_ ~from:_ _ -> ());
        on_round_check =
          (fun h ~round ->
            if round >= rounds then Thc_rounds.Round_app.Stop
            else
              Thc_rounds.Round_app.Advance
                (Some (Printf.sprintf "r%d-p%d" (round + 1) h.self)));
      }
    in
    (* Drivers have distinct wire types, so each branch runs its own engine
       and reports through this polymorphic summary. *)
    let report (type m) (trace : m Thc_sim.Trace.t) =
      let uni = Thc_rounds.Directionality.check_unidirectional trace in
      let bi = Thc_rounds.Directionality.check_bidirectional trace in
      Printf.printf "driver ran %d processes; rounds completed per process:" n;
      for pid = 0 to n - 1 do
        Printf.printf " %d"
          (Thc_rounds.Directionality.rounds_completed trace ~pid)
      done;
      Printf.printf "\nunidirectionality violations: %d\n" (List.length uni);
      Printf.printf "bidirectionality violations:  %d\n" (List.length bi);
      Printf.printf "messages sent: %d, virtual duration: %Ld us\n"
        (Thc_sim.Trace.messages_sent trace)
        trace.Thc_sim.Trace.end_time
    in
    let install_and_run engine behavior_of =
      for pid = 0 to n - 1 do
        Thc_sim.Engine.set_behavior engine pid (behavior_of pid)
      done;
      Thc_sim.Engine.run ~until:10_000_000L engine
    in
    match driver with
    | `Async ->
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      report
        (install_and_run engine (fun pid ->
             Thc_rounds.Async_rounds.behavior ~f:((n - 1) / 2) (app pid)))
    | `Sync ->
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      report
        (install_and_run engine (fun pid ->
             Thc_rounds.Sync_rounds.behavior ~period:1_000L (app pid)))
    | `Delta ->
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      report
        (install_and_run engine (fun pid ->
             Thc_rounds.Delta_rounds.behavior ~wait:500L
               ~start_offset:(Int64.of_int (pid * 137))
               (app pid)))
    | `Rb1 ->
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      report
        (install_and_run engine (fun pid ->
             Thc_rounds.Rb_rounds_f1.behavior ~keyring
               ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
               (app pid)))
    | `Swmr ->
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      let registers = Thc_sharedmem.Swmr.log_array ~n in
      report
        (install_and_run engine (fun pid ->
             Thc_rounds.Swmr_rounds.behavior ~registers
               ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
               (app pid)))
    | `Sticky ->
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      let board = Thc_rounds.Sticky_rounds.create_board ~n in
      report
        (install_and_run engine (fun pid ->
             Thc_rounds.Sticky_rounds.behavior ~board
               ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
               (app pid)))
    | `Peats ->
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      let space =
        Thc_sharedmem.Peats.create ~policy:Thc_sharedmem.Peats.owned_field_policy
      in
      report
        (install_and_run engine (fun pid ->
             Thc_rounds.Peats_rounds.behavior ~space ~n
               ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
               (app pid)))
  in
  Cmd.v
    (Cmd.info "rounds" ~doc:"Run a round driver and report its directionality.")
    Term.(const run $ driver $ n $ rounds_n $ seed)

(* --- smr ------------------------------------------------------------------ *)

let smr_cmd =
  let protocol =
    Arg.(
      value
      & opt
          (enum
             (List.map (fun (s, p) -> (s, `One p)) protocol_assoc
             @ [ ("both", `Both); ("all", `All) ]))
          `Both
      & info [ "protocol" ]
          ~doc:"minbft|pbft|ubft|both (minbft+pbft)|all.")
  in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault bound.") in
  let ops = Arg.(value & opt int 30 & info [ "ops" ] ~doc:"Client requests.") in
  let scenario =
    Arg.(
      value
      & opt (enum
               [ ("fault-free", `Ff); ("crash-leader", `Cl); ("silent", `Si);
                 ("restart", `Restart) ])
          `Ff
      & info [ "scenario" ]
          ~doc:
            "fault-free|crash-leader|silent|restart (a non-leader replica \
             crashes mid-run, loses all volatile state and rejoins via \
             verified state transfer; minbft only — pair with \
             $(b,--checkpoint-interval)).")
  in
  let ckpt =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-interval" ]
          ~doc:
            "Attested-checkpoint cadence in executed slots (0 = off): \
             checkpoint certificates, log truncation and state transfer.")
  in
  let seed = Cli.seed ~default:11L () in
  let run protocol f ops scenario ckpt seed =
    let scenario =
      match scenario with
      | `Ff -> Thc_replication.Harness.Fault_free
      | `Cl -> Thc_replication.Harness.Crash_leader 40_000L
      | `Si -> Thc_replication.Harness.Silent_replicas
      | `Restart ->
        (* Last replica (never the view-0 leader) restarts mid-workload. *)
        Thc_replication.Harness.Restart_replica { pid = 2 * f; at = 60_000L }
    in
    let base protocol =
      Thc_replication.Harness.Setup.make ~protocol ~f ~ops ~scenario
        ~checkpoint_interval:ckpt ~seed ()
    in
    let show p =
      let o = Thc_replication.Harness.run (base p) in
      Format.printf "=== %s ===@.%a@.@." (protocol_label p)
        Thc_replication.Harness.pp_outcome o
    in
    match protocol with
    | `One p -> show p
    | `Both ->
      show Protocol.Minbft;
      show Protocol.Pbft
    | `All -> List.iter show Protocol.all
  in
  Cmd.v
    (Cmd.info "smr"
       ~doc:
         "Run the replicated-state-machine comparison (MinBFT vs PBFT vs \
          uBFT-sim).")
    Term.(const run $ protocol $ f $ ops $ scenario $ ckpt $ seed)

(* --- soak ------------------------------------------------------------------ *)

let soak_cmd =
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault bound.") in
  let interval =
    Arg.(
      value & opt int 4
      & info [ "checkpoint-interval" ]
          ~doc:"Attested-checkpoint cadence in executed slots (must be > 0).")
  in
  let rounds =
    Arg.(
      value & opt int 3
      & info [ "rounds" ] ~doc:"Doubling horizons to run (min 2).")
  in
  let base_ops =
    Arg.(
      value & opt int 50
      & info [ "base-ops" ] ~doc:"Requests in the first (shortest) round.")
  in
  let seed = Cli.seed ~default:11L () in
  let run f interval rounds base_ops seed =
    let r = Thc_workload.Soak.run ~f ~interval ~rounds ~base_ops ~seed () in
    Format.printf "%a" Thc_workload.Soak.pp_report r;
    if not r.Thc_workload.Soak.stabilised then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Long-lived-service soak: run MinBFT over doubling horizons with \
          and without attested checkpoints and verify the log \
          high-water-mark stabilises under the truncation bound while the \
          uncheckpointed baseline's grows.  Exits 1 if it does not.")
    Term.(const run $ f $ interval $ rounds $ base_ops $ seed)

(* --- loadtest -------------------------------------------------------------- *)

let loadtest_write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  Printf.printf "export written to %s\n" path

let loadtest_cmd =
  let module W = Thc_workload.Workload in
  let module L = Thc_workload.Loadtest in
  let protocol =
    Arg.(
      required
      & pos 0 (some Protocol.conv) None
      & info [] ~docv:"PROTOCOL" ~doc:"minbft|pbft|ubft.")
  in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault bound.") in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let ops =
    Arg.(value & opt int 25 & info [ "ops" ] ~doc:"Requests per client.")
  in
  let rates =
    Arg.(
      value
      & opt (list float) [ 200.; 500.; 1000. ]
      & info [ "rates" ]
          ~doc:"Aggregate offered rates (req/s) swept for open-loop arrivals.")
  in
  let batches =
    Arg.(
      value
      & opt (list int) [ 1; 4 ]
      & info [ "batches" ] ~doc:"Leader batch sizes swept at each rate.")
  in
  let arrival =
    Arg.(
      value
      & opt (enum
               [ ("poisson", `Poisson); ("uniform", `Uniform);
                 ("closed", `Closed) ])
          `Poisson
      & info [ "arrival" ]
          ~doc:
            "poisson|uniform (open loop over $(b,--rates)) or closed \
             (fixed outstanding window; ignores $(b,--rates)).")
  in
  let window =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~doc:"Outstanding requests per closed-loop client.")
  in
  let think =
    Arg.(
      value & opt int64 0L
      & info [ "think" ] ~doc:"Closed-loop think time (virtual µs).")
  in
  let keys = Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Key-space size.") in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~doc:"Zipf skew; 0 selects the uniform key picker.")
  in
  let seed = Cli.seed () in
  let export =
    Cli.export ~doc:"Write the thc-loadtest/v1 JSONL export to $(docv)." ()
  in
  let jobs = Cli.jobs () in
  let network = Cli.network () in
  let run protocol f clients ops rates batches arrival window think keys theta
      seed export jobs network =
    let key_dist =
      if theta <= 0.0 then W.Keys_uniform { keys }
      else W.Keys_zipf { keys; theta }
    in
    let arrivals =
      match arrival with
      | `Closed -> [ W.Closed { window; think_us = think } ]
      | `Poisson -> List.map (fun r -> W.Open_poisson { rate_rps = r }) rates
      | `Uniform -> List.map (fun r -> W.Open_uniform { rate_rps = r }) rates
    in
    let template =
      {
        L.protocol;
        f;
        batch = 1;
        seed;
        delay = Thc_sim.Delay.Uniform (50L, 500L);
        network;
        spec =
          {
            W.clients;
            requests_per_client = ops;
            arrival = List.hd arrivals;
            keys = key_dist;
            mix = W.default_mix;
          };
      }
    in
    let results =
      L.sweep ~jobs ~stats:(Cli.stats_reporter ~jobs) template ~arrivals
        ~batches
    in
    Printf.printf "=== loadtest: %s  f=%d  clients=%d  ops/client=%d  seed=%Ld ===\n"
      (L.protocol_name protocol) f clients ops seed;
    (* Per-phase p50 columns from the span recorder, in causal order; the
       union across results keeps every point comparable even if a phase
       went untraversed at some operating point. *)
    let phases =
      List.fold_left
        (fun acc (r : L.result) ->
          List.fold_left
            (fun acc (name, _) ->
              if List.mem name acc then acc else acc @ [ name ])
            acc r.L.phase_p50_us)
        [] results
    in
    let t =
      Thc_util.Table.create
        ([ "arrival"; "batch"; "done"; "thru(r/s)"; "p50(µs)"; "p99(µs)" ]
        @ List.map (fun p -> p ^ "(µs)") phases
        @ [ "trusted/req"; "msgs"; "safety" ])
    in
    List.iter
      (fun (r : L.result) ->
        Thc_util.Table.add_row t
          ([
             Format.asprintf "%a" W.pp_arrival r.L.point.L.spec.W.arrival;
             string_of_int r.L.point.L.batch;
             Printf.sprintf "%d/%d" r.L.completed r.L.offered;
             Printf.sprintf "%.1f" r.L.throughput_rps;
             Printf.sprintf "%.0f" r.L.latency.Thc_util.Stats.p50;
             Printf.sprintf "%.0f" r.L.latency.Thc_util.Stats.p99;
           ]
          @ List.map
              (fun p ->
                match List.assoc_opt p r.L.phase_p50_us with
                | Some v -> Printf.sprintf "%.0f" v
                | None -> "-")
              phases
          @ [
              Printf.sprintf "%.3f" r.L.trusted_per_request;
              string_of_int r.L.messages;
              string_of_int r.L.safety_violations;
            ]))
      results;
    Thc_util.Table.print t;
    Option.iter
      (fun file ->
        loadtest_write_file file (L.export ?network ~seed results))
      export;
    let safety =
      List.fold_left (fun acc (r : L.result) -> acc + r.L.safety_violations) 0
        results
    in
    if safety > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadtest"
       ~doc:
         "Sweep offered load and batch size against a replication protocol \
          and report the throughput\xe2\x80\x93latency curve plus trusted-op \
          amortization.")
    Term.(
      const run $ protocol $ f $ clients $ ops $ rates $ batches $ arrival
      $ window $ think $ keys $ theta $ seed $ export $ jobs $ network)

(* --- report ---------------------------------------------------------------- *)

(* Dashboard rendering for the named experiments.  Everything printed here
   is derived from virtual-time metrics, so identical seeds give
   byte-identical dashboards (and exports). *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  Printf.printf "export written to %s\n" path

let print_latency_table (h : Thc_obsv.Metrics.Histogram.t) =
  let cell = function None -> "-" | Some v -> Printf.sprintf "%Ld" v in
  print_endline "commit latency (virtual µs):";
  let t = Thc_util.Table.create [ "quantile"; "value" ] in
  Thc_util.Table.add_row t [ "p50"; cell (Thc_obsv.Metrics.Histogram.p50 h) ];
  Thc_util.Table.add_row t [ "p90"; cell (Thc_obsv.Metrics.Histogram.p90 h) ];
  Thc_util.Table.add_row t [ "p99"; cell (Thc_obsv.Metrics.Histogram.p99 h) ];
  Thc_util.Table.add_row t
    [ "p999"; cell (Thc_obsv.Metrics.Histogram.p999 h) ];
  Thc_util.Table.add_row t
    [
      "mean";
      (match Thc_obsv.Metrics.Histogram.mean h with
      | None -> "-"
      | Some m -> Printf.sprintf "%.1f" m);
    ];
  Thc_util.Table.add_row t [ "max"; cell (Thc_obsv.Metrics.Histogram.max h) ];
  Thc_util.Table.add_row t
    [ "samples"; string_of_int (Thc_obsv.Metrics.Histogram.count h) ];
  Thc_util.Table.print t

let print_kind_table breakdown =
  print_endline "message kinds:";
  let t = Thc_util.Table.create [ "kind"; "sent" ] in
  List.iter
    (fun (kind, c) -> Thc_util.Table.add_row t [ kind; string_of_int c ])
    breakdown;
  Thc_util.Table.print t

let print_sends_table ~replicas sends =
  print_endline "sends by process:";
  let t = Thc_util.Table.create [ "process"; "sent" ] in
  List.iter
    (fun (pid, c) ->
      let label =
        if pid < replicas then Printf.sprintf "p%d" pid
        else Printf.sprintf "p%d (client)" pid
      in
      Thc_util.Table.add_row t [ label; string_of_int c ])
    sends;
  Thc_util.Table.print t

let print_net_table (net : (string * int) list)
    (d : Thc_sim.Metrics.delivery_report) =
  print_endline "network:";
  let t = Thc_util.Table.create [ "metric"; "value" ] in
  List.iter
    (fun (k, v) -> Thc_util.Table.add_row t [ k; string_of_int v ])
    (net
    @ [
        ("undelivered at horizon", d.Thc_sim.Metrics.in_flight_at_end);
        ("held at end (trace)", d.Thc_sim.Metrics.held_at_end);
      ]);
  Thc_util.Table.print t

let print_ledger_table ~commits trusted_ops =
  print_endline "trusted-op ledger:";
  if trusted_ops = [] then
    print_endline "  (empty — no trusted component in this run)"
  else begin
    let t = Thc_util.Table.create [ "op"; "count"; "per commit" ] in
    let rate c =
      if commits <= 0 then "0.00"
      else Printf.sprintf "%.2f" (float_of_int c /. float_of_int commits)
    in
    List.iter
      (fun (op, c) -> Thc_util.Table.add_row t [ op; string_of_int c; rate c ])
      trusted_ops;
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 trusted_ops in
    Thc_util.Table.add_row t [ "total"; string_of_int total; rate total ];
    Thc_util.Table.print t
  end

let report_smr protocol ~name ~f ~ops ~seed ~export =
  let setup = Thc_replication.Harness.Setup.make ~protocol ~f ~ops ~seed () in
  let o, jsonl = Thc_replication.Harness.run_export setup in
  Printf.printf "=== %s ===\n" name;
  Printf.printf "replicas=%d (+1 client)  f=%d  seed=%Ld  ops=%d\n" o.replicas f
    seed ops;
  Printf.printf
    "completed=%d/%d  commits=%d  messages=%d (%.1f/op)  duration=%Ldµs  \
     final view=%d\n"
    o.completed ops o.commits o.messages o.messages_per_op o.duration_us
    o.final_view;
  Printf.printf "safety violations: %d   liveness violations: %d\n\n"
    (List.length o.safety_violations)
    (List.length o.liveness_violations);
  print_latency_table o.lat_hist;
  print_newline ();
  print_kind_table o.breakdown;
  print_newline ();
  print_sends_table ~replicas:o.replicas o.sends_by_replica;
  print_newline ();
  print_net_table o.net o.delivery;
  print_newline ();
  print_ledger_table ~commits:o.commits o.trusted_ops;
  Printf.printf "\ntrusted ops per committed operation: %.2f\n"
    o.trusted_per_commit;
  Option.iter (fun file -> write_file file jsonl) export;
  List.length o.safety_violations + List.length o.liveness_violations

let report_ablation ~f ~seed ~export =
  let ua = Thc_replication.Ablation.equivocation_splits_unattested ~f ~seed () in
  let mb =
    Thc_replication.Ablation.equivocation_fails_against_minbft ~f ~seed ()
  in
  Printf.printf "=== ablation: equivocation with and without trusted counters ===\n";
  Printf.printf "f=%d  seed=%Ld\n\n" f seed;
  let total ops = List.fold_left (fun acc (_, c) -> acc + c) 0 ops in
  let rate (r : Thc_replication.Ablation.result) =
    if r.commits <= 0 then 0.0
    else float_of_int (total r.trusted_ops) /. float_of_int r.commits
  in
  let t =
    Thc_util.Table.create [ "metric"; "unattested (2f+1)"; "minbft (2f+1 + trinc)" ]
  in
  let row name get = Thc_util.Table.add_row t [ name; get ua; get mb ] in
  row "safety violations" (fun (r : Thc_replication.Ablation.result) ->
      string_of_int (List.length r.violations));
  row "distinct ops at seq 1" (fun r -> string_of_int r.distinct_ops_at_seq1);
  row "commits" (fun r -> string_of_int r.commits);
  row "messages" (fun r -> string_of_int r.messages);
  row "trusted ops" (fun r -> string_of_int (total r.trusted_ops));
  row "trusted ops per commit" (fun r -> Printf.sprintf "%.2f" (rate r));
  Thc_util.Table.print t;
  print_newline ();
  print_ledger_table ~commits:mb.commits mb.trusted_ops;
  Printf.printf
    "\nthe unattested run spends 0.00 trusted ops per commit and loses \
     safety;\nminbft pays %.2f per commit and keeps it.\n" (rate mb);
  Option.iter
    (fun file ->
      let module J = Thc_obsv.Json in
      let line (name, (r : Thc_replication.Ablation.result)) =
        J.to_string
          (J.Obj
             [
               ("type", J.Str "ablation");
               ("variant", J.Str name);
               ("violations", J.Int (List.length r.violations));
               ("distinct_ops_at_seq1", J.Int r.distinct_ops_at_seq1);
               ("commits", J.Int r.commits);
               ("messages", J.Int r.messages);
               ( "trusted_ops",
                 J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.trusted_ops) );
             ])
        ^ "\n"
      in
      write_file file
        (String.concat "" (List.map line [ ("unattested", ua); ("minbft", mb) ])))
    export;
  (* The split succeeding against the unattested variant IS the expected
     outcome; only a violation on real MinBFT is a failure. *)
  List.length mb.violations

let report_srb ~n ~ops ~seed ~export =
  let rng = Thc_util.Rng.create seed in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 400L)) in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    let st =
      Thc_broadcast.Srb_from_trinc.create ~world
        ~trinket:(Some (Thc_hardware.Trinc.trinket world ~owner:pid))
        ~n ~self:pid
    in
    let plan =
      if pid = 0 then
        List.init ops (fun i ->
            (Int64.add 100L (Int64.mul (Int64.of_int i) 1_000L),
             Printf.sprintf "m%d" (i + 1)))
      else []
    in
    Thc_sim.Engine.set_behavior engine pid
      (Thc_broadcast.Srb_from_trinc.behavior st ~broadcast_plan:plan)
  done;
  let until = Int64.add 2_000_000L (Int64.mul (Int64.of_int ops) 1_000L) in
  let trace = Thc_sim.Engine.run ~until ~max_events:10_000_000 engine in
  let violations = Thc_broadcast.Srb_spec.check trace ~sender:0 in
  let delivered =
    List.fold_left
      (fun acc pid ->
        acc
        + List.length (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid))
      0
      (Thc_sim.Trace.correct_pids trace)
  in
  let delivery = Thc_sim.Metrics.delivery_report trace in
  let hist = Thc_obsv.Metrics.Histogram.create () in
  List.iter
    (fun l -> Thc_obsv.Metrics.Histogram.record hist (Int64.of_float l))
    delivery.Thc_sim.Metrics.latencies;
  let ledger_rows = Thc_obsv.Ledger.rows (Thc_hardware.Trinc.ledger world) in
  Printf.printf "=== SRB from TrInc (sequenced reliable broadcast) ===\n";
  Printf.printf "processes=%d  sender=p0  seed=%Ld  values=%d\n" n seed ops;
  Printf.printf
    "deliveries=%d (of %d expected)  messages=%d  duration=%Ldµs\n"
    delivered (ops * n)
    (Thc_sim.Trace.messages_sent trace)
    trace.Thc_sim.Trace.end_time;
  Printf.printf "SRB spec violations: %d\n\n" (List.length violations);
  print_latency_table hist;
  print_newline ();
  print_kind_table
    (Thc_sim.Metrics.kind_counts trace ~classify:(fun _ -> "attestation"));
  print_newline ();
  print_sends_table ~replicas:n (Thc_sim.Metrics.sends_by_source trace);
  print_newline ();
  print_net_table
    (Thc_obsv.Link_stats.rows (Thc_sim.Engine.stats engine))
    delivery;
  print_newline ();
  print_ledger_table ~commits:delivered ledger_rows;
  Printf.printf
    "\n(per-commit column uses total correct-process deliveries as the \
     denominator)\n";
  Option.iter
    (fun file ->
      let module J = Thc_obsv.Json in
      write_file file
        (Thc_sim.Trace.to_jsonl ~encode_msg:Thc_util.Codec.encode trace
        ^ J.to_string
            (J.Obj
               [
                 ("type", J.Str "ledger");
                 ( "ops",
                   J.Obj (List.map (fun (k, v) -> (k, J.Int v)) ledger_rows) );
                 ("deliveries", J.Int delivered);
               ])
        ^ "\n"))
    export;
  List.length violations

(* Render an exported thc-loadtest/v1 JSONL file: the throughput–latency
   curve plus the batching ablation (trusted ops per request by batch size
   at each operating point). *)
let report_loadtest ~from =
  match from with
  | None ->
    prerr_endline "report loadtest needs --from FILE (a thc loadtest --export)";
    2
  | Some file -> (
    match
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      text
    with
    | exception Sys_error e ->
      Printf.eprintf "%s\n" e;
      2
    | text ->
    match Thc_workload.Loadtest.parse text with
    | Error e ->
      Printf.printf "%s: %s\n" file e;
      1
    | Ok rows ->
      let module L = Thc_workload.Loadtest in
      Printf.printf "=== loadtest report (%d points, %s) ===\n\n"
        (List.length rows) L.schema;
      print_endline "throughput-latency curve:";
      let phases =
        List.fold_left
          (fun acc (r : L.row) ->
            List.fold_left
              (fun acc (name, _) ->
                if List.mem name acc then acc else acc @ [ name ])
              acc r.L.r_phase_p50)
          [] rows
      in
      let t =
        Thc_util.Table.create
          ([ "protocol"; "arrival"; "rate(r/s)"; "batch"; "done";
             "thru(r/s)"; "p50(µs)"; "p99(µs)" ]
          @ List.map (fun p -> p ^ "(µs)") phases
          @ [ "trusted/req"; "safety" ])
      in
      List.iter
        (fun (r : L.row) ->
          let rate =
            if r.L.r_arrival = "closed" then
              Printf.sprintf "w=%d" r.L.r_window
            else Printf.sprintf "%.0f" r.L.r_rate_rps
          in
          Thc_util.Table.add_row t
            ([
               r.L.r_protocol;
               r.L.r_arrival;
               rate;
               string_of_int r.L.r_batch;
               Printf.sprintf "%d/%d" r.L.r_completed r.L.r_offered;
               Printf.sprintf "%.1f" r.L.r_throughput_rps;
               Printf.sprintf "%.0f" r.L.r_p50_us;
               Printf.sprintf "%.0f" r.L.r_p99_us;
             ]
            @ List.map
                (fun p ->
                  match List.assoc_opt p r.L.r_phase_p50 with
                  | Some v -> Printf.sprintf "%.0f" v
                  | None -> "-")
                phases
            @ [
                Printf.sprintf "%.3f" r.L.r_trusted_per_request;
                string_of_int r.L.r_safety;
              ]))
        rows;
      Thc_util.Table.print t;
      (* Batch ablation: at each operating point, how the per-request
         trusted-op cost moves as the leader batches harder.  Only
         meaningful where trusted hardware is in the path (MinBFT). *)
      let keyed =
        List.filter_map
          (fun (r : L.row) ->
            if
              r.L.r_trusted_total > 0
              || Protocol.of_string r.L.r_protocol = Some Protocol.Minbft
            then
              Some ((r.L.r_protocol, r.L.r_arrival, r.L.r_rate_rps, r.L.r_window), r)
            else None)
          rows
      in
      let points =
        List.sort_uniq compare (List.map fst keyed)
      in
      let multi_batch =
        List.filter
          (fun k ->
            List.length (List.filter (fun (k', _) -> k' = k) keyed) > 1)
          points
      in
      if multi_batch <> [] then begin
        print_newline ();
        print_endline "batch ablation (trusted ops per committed request):";
        let t =
          Thc_util.Table.create
            [ "protocol"; "operating point"; "batch"; "trusted/req";
              "trusted/commit"; "thru(r/s)" ]
        in
        List.iter
          (fun ((proto, arrival, rate, window) as k) ->
            List.iter
              (fun (_, (r : L.row)) ->
                let point_label =
                  if arrival = "closed" then
                    Printf.sprintf "closed w=%d" window
                  else Printf.sprintf "%s %.0f r/s" arrival rate
                in
                Thc_util.Table.add_row t
                  [
                    proto;
                    point_label;
                    string_of_int r.L.r_batch;
                    Printf.sprintf "%.3f" r.L.r_trusted_per_request;
                    Printf.sprintf "%.3f" r.L.r_trusted_per_commit;
                    Printf.sprintf "%.1f" r.L.r_throughput_rps;
                  ])
              (List.sort
                 (fun (_, (a : L.row)) (_, (b : L.row)) ->
                   compare a.L.r_batch b.L.r_batch)
                 (List.filter (fun (k', _) -> k' = k) keyed)))
          multi_batch;
        Thc_util.Table.print t
      end;
      List.fold_left (fun acc (r : L.row) -> acc + r.L.r_safety) 0 rows)

let report_cmd =
  let experiment =
    Arg.(
      required
      & pos 0
          (some (enum
                   [ ("minbft", `Minbft); ("pbft", `Pbft); ("ubft", `Ubft);
                     ("ablation", `Ablation); ("srb", `Srb);
                     ("loadtest", `Loadtest) ]))
          None
      & info [] ~docv:"EXPERIMENT"
          ~doc:"minbft|pbft|ubft|ablation|srb|loadtest.")
  in
  let n =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ]
          ~doc:
            "Cluster size.  For minbft the fault bound becomes (n-1)/2, for \
             pbft (n-1)/3 (at least 1); for srb this is the process count.")
  in
  let f =
    Arg.(
      value
      & opt (some int) None
      & info [ "f" ] ~doc:"Fault bound (overrides the $(b,--n) derivation).")
  in
  let ops =
    Arg.(
      value & opt int 30
      & info [ "ops" ] ~doc:"Client requests (smr) or broadcast values (srb).")
  in
  let seed = Cli.seed () in
  let export =
    Cli.export ~doc:"Write the run's JSONL trace/metrics export to $(docv)." ()
  in
  let from =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:
            "For $(b,loadtest): render this exported JSONL file instead of \
             running an experiment.")
  in
  let run experiment n f ops seed export from =
    let fault_bound ~per_fault =
      match (f, n) with
      | Some f, _ -> f
      | None, Some n -> max 1 ((n - 1) / per_fault)
      | None, None -> 1
    in
    let problems =
      match experiment with
      | `Minbft ->
        report_smr Thc_replication.Harness.Minbft
          ~name:"MinBFT (2f+1, trusted counters)" ~f:(fault_bound ~per_fault:2)
          ~ops ~seed ~export
      | `Pbft ->
        report_smr Thc_replication.Harness.Pbft
          ~name:"PBFT (3f+1 baseline)" ~f:(fault_bound ~per_fault:3) ~ops ~seed
          ~export
      | `Ubft ->
        report_smr Thc_replication.Harness.Ubft
          ~name:"uBFT-sim (2f+1, SWMR registers)" ~f:(fault_bound ~per_fault:2)
          ~ops ~seed ~export
      | `Ablation -> report_ablation ~f:(fault_bound ~per_fault:2) ~seed ~export
      | `Srb -> report_srb ~n:(Option.value n ~default:4) ~ops ~seed ~export
      | `Loadtest -> report_loadtest ~from
    in
    if problems > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a named experiment and render its telemetry dashboard: commit \
          latency quantiles, message-kind breakdown, per-process sends, \
          network counters, and the trusted-op ledger.  The $(b,loadtest) \
          view instead renders a file exported by $(b,thc loadtest).")
    Term.(const run $ experiment $ n $ f $ ops $ seed $ export $ from)

(* --- explore --------------------------------------------------------------- *)

let protocol_arg =
  let names = Thc_check.Harness.names () in
  Arg.(
    required
    & opt (some (enum (List.map (fun n -> (n, n)) names))) None
    & info [ "protocol" ]
        ~doc:
          (Printf.sprintf "Protocol harness to drive: %s."
             (String.concat "|" names)))

let explore_cmd =
  let runs = Cli.runs ~default:100 ~doc:"Number of (seed, script) pairs." () in
  let seed = Cli.seed () in
  let jobs = Cli.jobs () in
  let crashes =
    Arg.(
      value
      & opt (some int) None
      & info [ "crashes" ] ~doc:"Override the profile's crash budget.")
  in
  let partitions =
    Arg.(
      value
      & opt (some int) None
      & info [ "partitions" ] ~doc:"Override the profile's partition budget.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report raw counterexamples.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write one repro file per failing seed into $(docv).")
  in
  let run protocol runs seed jobs crashes partitions no_shrink out network =
    let h = Option.get (Thc_check.Harness.find protocol) in
    (* Periodic progress: one line per tenth of the sweep (virtual-time
       counters only, so repeated runs print identical lines — the pool
       delivers outcomes in seed order at every --jobs value). *)
    let stride = max 1 ((runs + 9) / 10) in
    let progress ~completed ~failures =
      if completed mod stride = 0 || completed = runs then
        Format.printf "[sweep] %d/%d seeds run, %d failure(s)@." completed runs
          failures
    in
    let summary =
      Thc_check.Sweep.sweep h ?crashes ?partitions ?network ~progress ~jobs
        ~stats:(Cli.stats_reporter ~jobs) ~base_seed:seed ~runs ()
    in
    Format.printf "%a@." Thc_check.Sweep.pp_summary summary;
    Format.printf "expectation: %a@." Thc_check.Harness.pp_expectation
      h.Thc_check.Harness.expect;
    let failures = summary.Thc_check.Sweep.failures in
    let shrunk =
      List.map
        (fun (o : Thc_check.Sweep.outcome) ->
          if no_shrink then o
          else
            let last_events = ref (-1) in
            let r =
              Thc_check.Shrink.shrink h ?network
                ~on_round:(fun ~rounds ~attempts ~events ->
                  (* A line when the script actually shrank, plus a
                     heartbeat every 10 rounds of horizon-halving. *)
                  if events <> !last_events || rounds mod 10 = 0 then
                    Format.printf
                      "[shrink] seed %Ld: round %d, %d candidate runs, %d \
                       events left@."
                      o.Thc_check.Sweep.seed rounds attempts events;
                  last_events := events)
                ~seed:o.Thc_check.Sweep.seed ~script:o.Thc_check.Sweep.script
                ~report:o.Thc_check.Sweep.report ()
            in
            Format.printf "seed %Ld: shrunk %d -> %d adversary events (%d runs, %d rounds)@."
              o.Thc_check.Sweep.seed
              (List.length o.Thc_check.Sweep.script.Thc_sim.Adversary.events)
              (List.length r.Thc_check.Shrink.script.Thc_sim.Adversary.events)
              r.Thc_check.Shrink.attempts r.Thc_check.Shrink.rounds;
            {
              o with
              Thc_check.Sweep.script = r.Thc_check.Shrink.script;
              report = r.Thc_check.Shrink.report;
            })
        failures
    in
    (* Full repro sexps for the first few failures; the rest by seed only,
       so large sweeps stay readable (and two identical sweeps stay
       byte-identical). *)
    let shown, rest =
      if List.length shrunk <= 3 then (shrunk, [])
      else (List.filteri (fun i _ -> i < 3) shrunk, List.filteri (fun i _ -> i >= 3) shrunk)
    in
    List.iter
      (fun (o : Thc_check.Sweep.outcome) ->
        let repro = Thc_check.Repro.of_outcome ~protocol o in
        Format.printf "%s@." (Thc_util.Sexp.to_string_hum (Thc_check.Repro.to_sexp repro)))
      shown;
    if rest <> [] then
      Format.printf "... and %d more failing seeds:%s@." (List.length rest)
        (String.concat ""
           (List.map
              (fun (o : Thc_check.Sweep.outcome) ->
                Printf.sprintf " %Ld" o.Thc_check.Sweep.seed)
              rest));
    Option.iter
      (fun dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (o : Thc_check.Sweep.outcome) ->
            let path =
              Filename.concat dir
                (Printf.sprintf "%s-seed%Ld.sexp" protocol o.Thc_check.Sweep.seed)
            in
            Thc_check.Repro.save path (Thc_check.Repro.of_outcome ~protocol o);
            Format.printf "wrote %s@." path)
          shrunk)
      out;
    (* Failures on a Clean protocol are bugs; on Broken/Vulnerable they are
       the documented behaviour, so they don't fail the command. *)
    if failures <> [] && h.Thc_check.Harness.expect = Thc_check.Harness.Clean then
      exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sweep a protocol harness over random adversary scripts, shrink any \
          counterexamples, and print them as repro S-expressions.")
    Term.(
      const run $ protocol_arg $ runs $ seed $ jobs $ crashes $ partitions
      $ no_shrink $ out $ Cli.network ())

(* --- replay ---------------------------------------------------------------- *)

let replay_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Repro files written by $(b,thc explore).")
  in
  let run files =
    let ok = ref true in
    List.iter
      (fun file ->
        match Thc_check.Repro.load file with
        | Error msg ->
          ok := false;
          Format.printf "%s: %s@." file msg
        | Ok repro -> (
          match Thc_check.Repro.replay repro with
          | Error msg ->
            ok := false;
            Format.printf "%s: %s@." file msg
          | Ok r ->
            if not r.Thc_check.Repro.matched then ok := false;
            Format.printf "%s: %a@." file Thc_check.Repro.pp_replay r))
      files;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run persisted repro files deterministically and check each \
          reproduces its documented verdict.")
    Term.(const run $ files)

(* --- attack ---------------------------------------------------------------- *)

let attack_cmd =
  let module A = Thc_byz.Attack in
  let module M = Thc_byz.Matrix in
  let target =
    Arg.(
      value
      & pos 0
          (enum
             [
               ("minbft", `Minbft); ("unattested", `Unattested);
               ("ubft", `Ubft); ("both", `Both); ("all", `All);
             ])
          `Both
      & info [] ~docv:"TARGET"
          ~doc:
            "Protocol to attack: $(b,minbft) (trusted counters), \
             $(b,unattested) (the 2f+1 ablation), $(b,ubft) (SWMR \
             registers), $(b,both) (minbft + unattested) or $(b,all).")
  in
  let attack =
    Arg.(
      value & pos 1 string "all"
      & info [] ~docv:"ATTACK"
          ~doc:"Attack name (see $(b,--list)) or $(b,all).")
  in
  let seed = Cli.seed () in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault bound (n = 2f+1).") in
  let corrupt_at =
    Arg.(
      value & opt int64 5_000L
      & info [ "corrupt-at" ]
          ~doc:"Virtual µs at which the corruption fires (single-run mode).")
  in
  let runs =
    Cli.runs ~default:1
      ~doc:
        "Seeds to sweep.  With more than one, every attack runs across \
         seeds x corruption timings and a pass/fail matrix is printed."
      ()
  in
  let export =
    Cli.export ~doc:"Write the sweep as thc-attack/v1 JSONL to $(docv)." ()
  in
  let jobs = Cli.jobs () in
  let top =
    Cli.top ~default:4
      ~doc:
        "Stalled request spans shown per attack in single-run mode (where \
         each injected or starved request's causal trace says which phase \
         the hardware discipline stopped it at)."
      ()
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List the catalog and exit.")
  in
  (* Single-run drill-down: the causal span of every request that never
     reached its reply — the attacker's conflicting writes die mid-pipeline
     and the furthest mark names the phase that refused them. *)
  let pp_stalled ~top (c : M.cell) =
    match c.M.result.A.stalled_spans with
    | [] -> ()
    | spans ->
      Format.printf "  requests stopped mid-pipeline (%d):@."
        (List.length spans);
      List.iteri
        (fun i (v : Thc_obsv.Span.view) ->
          if i < top then
            match Thc_obsv.Span.last_mark v with
            | Some (mark, at) ->
              Format.printf "    rid %d (client %d): reached %s at %Ldµs, \
                             then nothing@."
                v.Thc_obsv.Span.v_rid v.Thc_obsv.Span.v_client mark at
            | None ->
              Format.printf
                "    rid %d: no marks — refused before any replica \
                 accepted it@."
                v.Thc_obsv.Span.v_rid)
        spans;
      if List.length spans > top then
        Format.printf "    ... and %d more@." (List.length spans - top);
      Format.printf "@."
  in
  let run target attack seed f corrupt_at runs export jobs top list_only
      network =
    if list_only then begin
      let pp_catalog header kinds =
        Format.printf "%s@." header;
        List.iter
          (fun k ->
            Format.printf "%-17s %s@.%-17s claim: %s@." (A.name k)
              (A.describe k) "" (A.paper_claim k))
          kinds
      in
      pp_catalog "trusted-log catalog (minbft / unattested):" A.all;
      pp_catalog "register catalog (ubft):" A.ubft_all;
      pp_catalog
        "checkpoint catalog (minbft / unattested; named runs only — kept \
         out of the 'all' sweep so its cell grid stays pinned):"
        A.ckpt_all
    end
    else begin
      let attacks =
        if attack = "all" then A.all @ A.ubft_all
        else
          match A.of_name attack with
          | Some k -> [ k ]
          | None ->
            Format.eprintf "unknown attack %S (try --list)@." attack;
            exit 2
      in
      let targets =
        match target with
        | `Minbft -> [ A.Minbft ]
        | `Unattested -> [ A.Unattested ]
        | `Ubft -> [ A.Ubft ]
        | `Both -> [ A.Minbft; A.Unattested ]
        | `All -> [ A.Minbft; A.Unattested; A.Ubft ]
      in
      (* Attacks outside every requested target's catalog would make an
         empty sweep read as success; reject the combination instead. *)
      let attacks =
        List.filter
          (fun a -> List.exists (fun t -> A.applies ~target:t ~attack:a) targets)
          attacks
      in
      if attacks = [] then begin
        Format.eprintf
          "attack %S applies to no requested target (try --list)@." attack;
        exit 2
      end;
      let seeds =
        List.init (max 1 runs) (fun i -> Int64.add seed (Int64.of_int i))
      in
      let timings =
        if runs > 1 then [ 2_000L; 5_000L; 20_000L ] else [ corrupt_at ]
      in
      let m =
        M.sweep ~jobs ~stats:(Cli.stats_reporter ~jobs) ~f ~seeds ~timings
          ~attacks ~targets ?network ()
      in
      if runs > 1 then Format.printf "%a@." M.pp m
      else
        List.iter
          (fun (c : M.cell) ->
            Format.printf "%a@.@." A.pp_result c.M.result;
            pp_stalled ~top c)
          m.M.cells;
      Option.iter
        (fun path ->
          M.export m path;
          Format.printf "wrote %s (%d cells, thc-attack/v1)@." path
            (List.length m.M.cells))
        export;
      if not (M.all_hold m) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Run the Byzantine attack catalog: scripted active adversaries \
          (equivocation, replay, attestation reuse, forged view-change \
          certificates, selective send, silent-then-lie) against MinBFT and \
          against the unattested 2f+1 ablation, plus a register catalog \
          (forged slots/acks, frozen reads, withheld appends) against \
          uBFT-sim.  Expected outcome, checked: the attested protocols stay \
          safe and the hardware ledger records the rejection; the \
          unattested one commits a divergent operation.")
    Term.(
      const run $ target $ attack $ seed $ f $ corrupt_at $ runs $ export
      $ jobs $ top $ list_only $ Cli.network ())

(* --- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let module PT = Thc_workload.Phase_trace in
  let module H = Thc_replication.Harness in
  let protocol =
    Arg.(
      required
      & pos 0 (some Protocol.conv) None
      & info [] ~docv:"PROTOCOL" ~doc:"minbft|pbft|ubft.")
  in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault bound.") in
  let ops =
    Arg.(value & opt int 30 & info [ "ops" ] ~doc:"Requests per client.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let batch =
    Arg.(value & opt int 4 & info [ "batch" ] ~doc:"Leader batch size.")
  in
  let interval =
    Arg.(
      value & opt int64 5_000L
      & info [ "interval" ] ~doc:"µs between each client's requests.")
  in
  let runs = Cli.runs ~default:3 ~doc:"Seeds traced (seed, seed+1, …)." () in
  let seed = Cli.seed () in
  let jobs = Cli.jobs () in
  let top = Cli.top ~doc:"Slowest requests to drill into." () in
  let export =
    Cli.export ~doc:"Write the thc-span/v1 JSONL export to $(docv)." ()
  in
  let run protocol f ops clients batch interval runs seed jobs top export
      network =
    let setup =
      H.Setup.make ~protocol ~f ~ops ~clients ~batch ~interval ~seed ?network ()
    in
    let campaign =
      {
        PT.setup;
        seeds = List.init (max 1 runs) (fun i -> Int64.add seed (Int64.of_int i));
      }
    in
    let report = PT.run ~jobs ~stats:(Cli.stats_reporter ~jobs) campaign in
    Printf.printf
      "=== trace: %s  f=%d  clients=%d  ops/client=%d  batch=%d  seeds=%d \
       (base %Ld) ===\n"
      (Protocol.to_string protocol) f clients ops batch (max 1 runs) seed;
    let completed =
      List.fold_left (fun acc rd -> acc + rd.PT.rd_completed) 0 report.PT.runs
    in
    let commits =
      List.fold_left (fun acc rd -> acc + rd.PT.rd_commits) 0 report.PT.runs
    in
    Printf.printf "completed=%d  commits=%d  spans=%d (%d complete)\n\n"
      completed commits report.PT.summary.Thc_obsv.Span.spans_total
      report.PT.summary.Thc_obsv.Span.spans_complete;
    Format.printf "%a@." (PT.pp_report ~top) report;
    Option.iter
      (fun file -> write_file file (PT.export campaign report))
      export
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace every client request through the replication pipeline \
          (submit, leader ingress, batching, prepare, commit, execute, \
          reply) in virtual time and report the per-phase latency \
          breakdown, per-phase trusted-op attribution, and the slowest \
          requests' critical paths.  Deterministic per seed; spans export \
          as thc-span/v1 JSONL.")
    Term.(
      const run $ protocol $ f $ ops $ clients $ batch $ interval $ runs
      $ seed $ jobs $ top $ export $ Cli.network ())

(* --- main ------------------------------------------------------------------ *)

let () =
  let doc = "classifying trusted hardware via unidirectional communication" in
  (* Accept the GNU-ish spellings --n/--f for the single-letter options
     (cmdliner only auto-generates the short forms). *)
  let argv =
    Array.map (function "--n" -> "-n" | "--f" -> "-f" | s -> s) Sys.argv
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group (Cmd.info "thc" ~doc)
          [ figure1_cmd; verify_cmd; scenarios_cmd; problems_cmd; rounds_cmd;
            smr_cmd; soak_cmd; loadtest_cmd; trace_cmd; report_cmd;
            attack_cmd; explore_cmd; replay_cmd ]))
