(* Partition survival: the paper's separation, felt.

   Two groups of processes are temporarily cut off from each other.  The
   same one-round protocol runs twice:

   - over zero-directional rounds (asynchronous message passing — the best
     the trusted-log/SRB class can guarantee): both sides finish their
     round having heard nothing from the other side;
   - over unidirectional rounds from SWMR shared memory: the partition is
     powerless, every pair of processes has at least one direction heard.

   Run with: dune exec examples/partition_survival.exe *)

let n = 6

let groups = ([ 0; 1; 2 ], [ 3; 4; 5 ])

let one_round_app pid : Thc_rounds.Round_app.app =
  {
    first_payload = (fun _ -> Some (Printf.sprintf "hello-from-%d" pid));
    on_receive = (fun _ ~round:_ ~from:_ _ -> ());
    on_round_check = (fun _ ~round:_ -> Thc_rounds.Round_app.Stop);
  }

let report name trace =
  let violations = Thc_rounds.Directionality.check_unidirectional trace in
  Printf.printf "%s:\n" name;
  for pid = 0 to n - 1 do
    let received =
      List.filter_map
        (fun obs ->
          match (obs : Thc_sim.Obs.t) with
          | Round_received { from; _ } -> Some from
          | _ -> None)
        (Thc_sim.Trace.outputs_of trace pid)
      |> List.sort_uniq compare
    in
    Printf.printf "  p%d heard from: %s\n" pid
      (String.concat "," (List.map string_of_int received))
  done;
  Printf.printf "  unidirectionality violations: %d\n\n"
    (List.length violations)

let () =
  let seed = 5L in
  let fast = Thc_sim.Delay.Const 20L in
  let left, right = groups in

  (* Run 1: zero-directional rounds over the partitioned network. *)
  let net = Thc_sim.Net.create ~n ~default:fast in
  Thc_sim.Net.isolate_groups net ~groups:[ left; right ] Thc_sim.Net.Block;
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Async_rounds.behavior ~f:(n / 2) (one_round_app pid))
  done;
  (* Asynchrony = the partition eventually heals, but only after everyone
     finished the round. *)
  Thc_sim.Engine.at engine 500_000L (fun () ->
      Thc_sim.Engine.heal_all engine fast);
  let async_trace = Thc_sim.Engine.run ~until:1_000_000L engine in
  report "zero-directional rounds (message passing, partitioned)" async_trace;

  (* Run 2: unidirectional rounds from SWMR registers — same groups, but
     memory has no partitions to offer. *)
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n in
  let net2 = Thc_sim.Net.create ~n ~default:fast in
  let engine2 = Thc_sim.Engine.create ~seed ~n ~net:net2 () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine2 pid
      (Thc_rounds.Swmr_rounds.behavior ~registers
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (one_round_app pid))
  done;
  let swmr_trace = Thc_sim.Engine.run ~until:1_000_000L engine2 in
  report "unidirectional rounds (SWMR shared memory)" swmr_trace;

  Printf.printf
    "The message-passing run shows the Scenario-3 effect of the paper: two \
     correct\ngroups complete a round deaf to each other — which is why \
     trusted logs (SRB,\nTrInc, A2M) cannot provide unidirectionality, \
     while shared-memory primitives can.\n"
