(* Theorem 1, step by step: building a trusted incrementer out of nothing
   but sequenced reliable broadcast.

   The paper's only theorem says the TrInc interface needs no hardware if
   SRB is available: Attest(c, m) just broadcasts (k, (c, m)) on the
   caller's SRB instance, and CheckAttestation replays deliveries through a
   monotone filter.  This walkthrough runs the construction over the ideal
   SRB functionality and narrates what each side sees — including what
   happens when the "trinket" owner misbehaves.

   Run with: dune exec examples/theorem1_walkthrough.exe *)

let show_check states ~n a ~expect ~label =
  let all_agree = ref true in
  for pid = 0 to n - 1 do
    if Thc_broadcast.Trinc_from_srb.check states.(pid) a ~id:1 <> expect then
      all_agree := false
  done;
  Printf.printf "  %-52s -> %s at every process %s\n" label
    (string_of_bool expect)
    (if !all_agree then "[as required]" else "[MISMATCH]")

let () =
  let n = 4 in
  Printf.printf "Theorem 1: implementing TrInc from SRB, %d processes\n\n" n;
  (* One SRB instance (hub) per potential sender — the assumed primitive. *)
  let hubs = Array.init n (fun sender -> Thc_broadcast.Ideal_srb.hub ~sender) in
  let states =
    Array.init n (fun self -> Thc_broadcast.Trinc_from_srb.create ~hubs ~self)
  in
  (* Process 1 attests (counter 5, "deploy=v2"). *)
  let a1, w1 = Thc_broadcast.Trinc_from_srb.attest states.(1) ~counter:5 ~message:"deploy=v2" in
  Printf.printf "p1 attests (c=5, \"deploy=v2\"): broadcast seq k=%d\n" a1.k;
  (* The wire reaches everyone (here synchronously; the engine-based tests
     exercise adversarial delivery orders). *)
  Array.iter (fun st -> ignore (Thc_broadcast.Trinc_from_srb.on_wire st w1)) states;
  show_check states ~n a1 ~expect:true ~label:"CheckAttestation(a1, p1) after delivery";

  (* Property 2: attestations nobody produced are rejected. *)
  let forged = { a1 with Thc_broadcast.Trinc_from_srb.message = "deploy=evil" } in
  show_check states ~n forged ~expect:false ~label:"forged message body";
  let replayed = { a1 with Thc_broadcast.Trinc_from_srb.k = 2 } in
  show_check states ~n replayed ~expect:false ~label:"relabeled broadcast index";

  (* The owner tries to reuse a counter: SRB delivers the second broadcast
     too (it is a new broadcast), but the monotone filter C[q] refuses to
     store it, so the attestation never checks. *)
  let a2, w2 = Thc_broadcast.Trinc_from_srb.attest states.(1) ~counter:5 ~message:"deploy=v3" in
  Printf.printf "\np1 re-attests counter 5 with a different message (k=%d)\n" a2.k;
  Array.iter (fun st -> ignore (Thc_broadcast.Trinc_from_srb.on_wire st w2)) states;
  show_check states ~n a2 ~expect:false ~label:"second attestation at counter 5";
  show_check states ~n a1 ~expect:true ~label:"the original attestation still";

  (* Counters may skip forward — only monotonicity is enforced. *)
  let a3, w3 = Thc_broadcast.Trinc_from_srb.attest states.(1) ~counter:9 ~message:"deploy=v3" in
  Array.iter (fun st -> ignore (Thc_broadcast.Trinc_from_srb.on_wire st w3)) states;
  Printf.printf "\np1 attests counter 9 (gap is fine, like real TrInc)\n";
  show_check states ~n a3 ~expect:true ~label:"attestation at counter 9";
  Printf.printf "\nC[p1] at p0 is now %d — the same at every correct process,\n"
    (Thc_broadcast.Trinc_from_srb.counter_of states.(0) ~id:1);
  Printf.printf
    "because SRB delivers p1's broadcasts to everyone in the same order.\n"
