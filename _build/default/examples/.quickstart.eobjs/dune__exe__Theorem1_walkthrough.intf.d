examples/theorem1_walkthrough.mli:
