examples/quickstart.mli:
