examples/theorem1_walkthrough.ml: Array Printf Thc_broadcast
