examples/kv_minbft.ml: Array Int64 List Printf Thc_crypto Thc_hardware Thc_replication Thc_sim Thc_util
