examples/kv_minbft.mli:
