examples/attested_log.ml: List Printf Thc_hardware Thc_util
