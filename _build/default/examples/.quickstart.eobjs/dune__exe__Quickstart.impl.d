examples/quickstart.ml: Array List Printf Thc_agreement Thc_crypto Thc_rounds Thc_sharedmem Thc_sim Thc_util
