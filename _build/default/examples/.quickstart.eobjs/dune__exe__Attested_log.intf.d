examples/attested_log.mli:
