examples/partition_survival.ml: List Printf String Thc_crypto Thc_rounds Thc_sharedmem Thc_sim Thc_util
