(* Attested audit log: a tour of the trusted-hardware substrate.

   A storage node keeps an append-only audit log of security events.  The
   node's operator is untrusted (Byzantine): we show what each hardware
   module guarantees against it — TrInc non-equivocation, A2M lookups,
   tamper-evident TrInc-backed logs, and enclave-attested execution.

   Run with: dune exec examples/attested_log.exe *)

let section title = Printf.printf "\n== %s ==\n" title

let () =
  let rng = Thc_util.Rng.create 7L in

  section "TrInc: one counter value, one message — ever";
  let trinc_world = Thc_hardware.Trinc.create_world rng ~n:2 in
  let trinket = Thc_hardware.Trinc.trinket trinc_world ~owner:0 in
  (match Thc_hardware.Trinc.attest trinket ~counter:1 ~message:"login:alice" with
  | Some a ->
    Printf.printf "attested c=1: check -> %b\n"
      (Thc_hardware.Trinc.check trinc_world a ~id:0)
  | None -> assert false);
  (* The malicious operator tries to bind a second message to counter 1. *)
  (match Thc_hardware.Trinc.attest trinket ~counter:1 ~message:"login:mallory" with
  | Some _ -> Printf.printf "BUG: equivocation succeeded\n"
  | None -> Printf.printf "equivocation at c=1 refused by the trinket\n");
  (* ... and to forge an attestation outright. *)
  let forged =
    Thc_hardware.Trinc.counterfeit ~owner:0 ~prev:1 ~counter:2
      ~message:"login:mallory" ~tag:0xDEADBEEFL
  in
  Printf.printf "forged attestation verifies? %b\n"
    (Thc_hardware.Trinc.check trinc_world forged ~id:0);

  section "A2M: attested append-only memory";
  let a2m_world = Thc_hardware.A2m.create_world rng ~n:1 in
  let device = Thc_hardware.A2m.device a2m_world ~owner:0 in
  let log = Thc_hardware.A2m.create_log device in
  List.iter
    (fun event -> ignore (Thc_hardware.A2m.append device ~log event))
    [ "boot"; "login:alice"; "sudo:alice" ];
  (match Thc_hardware.A2m.lookup device ~log ~index:2 ~z:"challenge-42" with
  | Some att ->
    Printf.printf "lookup[2] = %S, attested (verifies: %b)\n" att.value
      (Thc_hardware.A2m.check a2m_world att ~owner:0)
  | None -> assert false);
  (match Thc_hardware.A2m.end_ device ~log ~z:"challenge-43" with
  | Some att -> Printf.printf "end = %S at index %d\n" att.value att.index
  | None -> assert false);

  section "A2M from TrInc (Levin et al. reduction)";
  let trinket2 = Thc_hardware.Trinc.trinket trinc_world ~owner:1 in
  let reduced = Thc_hardware.A2m_from_trinc.create trinket2 in
  let rlog = Thc_hardware.A2m_from_trinc.create_log reduced in
  List.iter
    (fun event -> ignore (Thc_hardware.A2m_from_trinc.append reduced ~log:rlog event))
    [ "open"; "write"; "close" ];
  let chain = Thc_hardware.A2m_from_trinc.chain reduced in
  (match Thc_hardware.A2m_from_trinc.check_chain trinc_world ~owner:1 chain with
  | Some entries ->
    Printf.printf "verifier reconstructed %d entries from the dense chain\n"
      (List.length entries)
  | None -> Printf.printf "BUG: honest chain rejected\n");
  (* The operator ships a doctored history with the middle entry removed. *)
  (match chain with
  | a :: _ :: c ->
    (match
       Thc_hardware.A2m_from_trinc.check_chain trinc_world ~owner:1 (a :: c)
     with
    | Some _ -> Printf.printf "BUG: gap not detected\n"
    | None -> Printf.printf "dropped entry detected (counter gap)\n")
  | _ -> assert false);

  section "Enclave: attested execution of a rate limiter";
  let enclave_world = Thc_hardware.Enclave.create_world rng ~n:1 in
  (* Program: allow at most 2 failed logins before locking out. *)
  let step failures = function
    | `Fail -> (failures + 1, if failures + 1 > 2 then `Locked else `Retry)
    | `Success -> (0, `Granted)
  in
  let limiter =
    Thc_hardware.Enclave.enclave enclave_world ~owner:0 ~init:0 ~step
  in
  let feed = [ `Fail; `Fail; `Fail; `Success ] in
  let attestations =
    List.map
      (fun input ->
        let output, att = Thc_hardware.Enclave.invoke limiter input in
        Printf.printf "  step %d -> %s\n" att.step
          (match output with
          | `Retry -> "retry"
          | `Locked -> "locked"
          | `Granted -> "granted");
        att)
      feed
  in
  Printf.printf "full execution chain verifies: %b\n"
    (Thc_hardware.Enclave.check_chain enclave_world attestations ~id:0);
  Printf.printf "history with the lockout step removed verifies: %b\n"
    (Thc_hardware.Enclave.check_chain enclave_world
       (List.filteri (fun i _ -> i <> 2) attestations)
       ~id:0)
