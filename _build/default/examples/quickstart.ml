(* Quickstart: five processes agree (very weak agreement) over
   unidirectional rounds built from SWMR registers — the paper's
   shared-memory class in ~30 lines of user code.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let n = 5 in
  let seed = 2024L in
  (* 1. Provision the world: keys, network, engine, shared registers. *)
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (20L, 300L)) in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  (* 2. Everyone proposes the same value; one process is Byzantine-silent. *)
  let states =
    Array.init n (fun _ -> Thc_agreement.Very_weak.create ~input:"launch")
  in
  for pid = 0 to n - 1 do
    if pid = n - 1 then begin
      Thc_sim.Engine.mark_byzantine engine pid;
      Thc_sim.Engine.set_behavior engine pid Thc_sim.Engine.no_op
    end
    else
      Thc_sim.Engine.set_behavior engine pid
        (Thc_rounds.Swmr_rounds.behavior ~registers
           ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
           (Thc_agreement.Very_weak.app states.(pid)))
  done;
  (* 3. Run to quiescence and inspect the trace. *)
  let trace = Thc_sim.Engine.run engine in
  Printf.printf "decisions:\n";
  for pid = 0 to n - 2 do
    match Thc_sim.Trace.decision_of trace pid with
    | Some (Some v) -> Printf.printf "  p%d decided %S\n" pid v
    | Some None -> Printf.printf "  p%d decided ⊥\n" pid
    | None -> Printf.printf "  p%d undecided\n" pid
  done;
  let violations = Thc_rounds.Directionality.check_unidirectional trace in
  Printf.printf "unidirectionality violations: %d\n" (List.length violations);
  Printf.printf "virtual time elapsed: %Ld µs\n" trace.Thc_sim.Trace.end_time
