lib/crypto/cert.ml: Format List Signature
