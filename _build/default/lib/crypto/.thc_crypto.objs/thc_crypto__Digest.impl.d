lib/crypto/digest.ml: Char Format Int64 Printf String Thc_util
