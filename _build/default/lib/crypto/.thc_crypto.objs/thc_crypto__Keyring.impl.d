lib/crypto/keyring.ml: Array Digest Int64 Thc_util
