lib/crypto/signature.mli: Format Keyring
