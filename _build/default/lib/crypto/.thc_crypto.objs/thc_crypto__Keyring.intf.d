lib/crypto/keyring.mli: Digest Thc_util
