lib/crypto/cert.mli: Format Keyring Signature
