lib/crypto/signature.ml: Digest Format Int64 Keyring Thc_util
