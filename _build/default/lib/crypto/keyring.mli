(** Key distribution for the simulated public-key infrastructure.

    A [Keyring.t] is created once per experiment by the harness; it plays the
    role of a PKI in which every process knows every public key.  Each
    process — including Byzantine ones — is handed only its own [secret], so
    unforgeability holds by construction: producing a tag that verifies as
    process [p] requires [p]'s secret, whose entropy never leaves this
    module. *)

type t
(** The public registry: verification data for all [n] processes. *)

type secret
(** A signing capability bound to one process identity.  Also serves as the
    identity token checked by shared-memory ACLs and trusted hardware. *)

val create : Thc_util.Rng.t -> n:int -> t
(** Generate keys for processes [0 .. n-1]. *)

val n : t -> int
(** Number of registered identities. *)

val secret : t -> pid:int -> secret
(** The signing capability of [pid].  The harness calls this when wiring up
    processes; protocol code never does.  Raises [Invalid_argument] for an
    unknown pid. *)

val pid_of_secret : secret -> int
(** The identity a secret signs as. *)

val attach_tag : secret -> Digest.t -> int64
(** Compute the authentication tag of a digest under a secret.  Building
    block for {!Signature}; binding is to (identity, digest). *)

val check_tag : t -> signer:int -> digest:Digest.t -> tag:int64 -> bool
(** Registry-side verification of a tag.  False for unknown signers rather
    than raising, so attacker-supplied signer ids are handled uniformly. *)
