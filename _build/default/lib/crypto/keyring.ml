type secret = { pid : int; nonce : int64 }

type t = { nonces : int64 array }

let create rng ~n =
  if n <= 0 then invalid_arg "Keyring.create: n must be positive";
  { nonces = Array.init n (fun _ -> Thc_util.Rng.next_int64 rng) }

let n t = Array.length t.nonces

let secret t ~pid =
  if pid < 0 || pid >= Array.length t.nonces then
    invalid_arg "Keyring.secret: unknown pid";
  { pid; nonce = t.nonces.(pid) }

let pid_of_secret s = s.pid

let tag_of ~pid ~nonce digest =
  Digest.to_int64 (Digest.of_value (pid, nonce, Digest.to_int64 digest))

let attach_tag s digest = tag_of ~pid:s.pid ~nonce:s.nonce digest

let check_tag t ~signer ~digest ~tag =
  signer >= 0
  && signer < Array.length t.nonces
  && Int64.equal (tag_of ~pid:signer ~nonce:t.nonces.(signer) digest) tag
