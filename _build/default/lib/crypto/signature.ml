type t = { signer : int; tag : int64 }

let sign secret payload =
  let digest = Digest.of_string payload in
  { signer = Keyring.pid_of_secret secret; tag = Keyring.attach_tag secret digest }

let sign_value secret v = sign secret (Thc_util.Codec.encode v)

let verify keyring t payload =
  Keyring.check_tag keyring ~signer:t.signer ~digest:(Digest.of_string payload)
    ~tag:t.tag

let verify_value keyring t v = verify keyring t (Thc_util.Codec.encode v)

let counterfeit ~signer ~tag = { signer; tag }

let equal a b = a.signer = b.signer && Int64.equal a.tag b.tag

let pp ppf t = Format.fprintf ppf "sig[p%d:%Lx]" t.signer t.tag

type 'a signed = { value : 'a; signature : t }

let seal secret v = { value = v; signature = sign_value secret v }

let sealed_ok keyring s = verify_value keyring s.signature s.value

let sealed_by keyring s ~expect = s.signature.signer = expect && sealed_ok keyring s
