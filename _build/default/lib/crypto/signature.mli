(** Unforgeable transferable signatures (simulated).

    The paper's preliminaries assume "unforgeable transferable signatures":
    any process can verify any signature it receives, and signatures can be
    forwarded inside other messages without losing verifiability.  Both
    properties hold here: a signature is plain data (transferable), and
    producing a verifying tag requires the signer's {!Keyring.secret}
    (unforgeable, see {!Keyring}). *)

type t = { signer : int; tag : int64 }
(** A detached signature.  The record is exposed so signatures can be
    embedded in wire messages, serialized, and inspected by validators; the
    [tag] cannot be produced without the signer's secret. *)

val sign : Keyring.secret -> string -> t
(** Sign a byte string. *)

val sign_value : Keyring.secret -> 'a -> t
(** Sign a value's canonical serialization. *)

val verify : Keyring.t -> t -> string -> bool
(** Does [t] verify over these bytes under the registry? *)

val verify_value : Keyring.t -> t -> 'a -> bool
(** [verify] over the value's canonical serialization. *)

val counterfeit : signer:int -> tag:int64 -> t
(** Construct a signature record with an arbitrary tag — what a Byzantine
    process "forging" a signature can do.  Tests use it to demonstrate that
    verification rejects such records (except with negligible probability of
    guessing the 64-bit tag). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type 'a signed = { value : 'a; signature : t }
(** A value travelling with a signature over it. *)

val seal : Keyring.secret -> 'a -> 'a signed
(** Sign and attach. *)

val sealed_ok : Keyring.t -> 'a signed -> bool
(** Check that the attached signature covers the attached value. *)

val sealed_by : Keyring.t -> 'a signed -> expect:int -> bool
(** [sealed_ok] and the signer is [expect]. *)
