(** 64-bit message digests.

    Simulated stand-in for a cryptographic hash: FNV-1a over bytes, mixed
    through SplitMix64's finalizer.  Collision-resistance is probabilistic at
    64 bits, which is ample for simulation-scale message volumes; the
    security argument in the reproduced paper needs only that distinct
    messages are distinguishable. *)

type t
(** An immutable digest value. *)

val of_string : string -> t
(** Digest of raw bytes. *)

val of_value : 'a -> t
(** Digest of a serialized value ([Codec.encode]). *)

val combine : t -> t -> t
(** Order-sensitive combination (for chains and certificates). *)

val to_int64 : t -> int64
(** Raw 64-bit value (for embedding digests in tags and counters). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_hex : t -> string
val pp : Format.formatter -> t -> unit
