(** Quorum certificates: a value plus signatures from distinct processes.

    The L1/L2 proofs of the paper's Algorithm 1 and the commit certificates
    of the replication protocols are all "at least [threshold] distinct
    processes signed this value"; this module factors that pattern. *)

type 'a t = { value : 'a; signatures : Signature.t list }
(** Exposed for serialization inside wire messages. *)

val empty : 'a -> 'a t
(** Certificate with no signatures yet. *)

val add : 'a t -> Signature.t -> 'a t
(** Add a signature (no validation; see {!validate}).  Duplicate signers are
    kept and discounted at validation time. *)

val of_signatures : 'a -> Signature.t list -> 'a t

val signers : 'a t -> int list
(** Distinct signer ids, ascending. *)

val support : Keyring.t -> 'a t -> int
(** Number of distinct signers whose signature verifies over [value]. *)

val validate : Keyring.t -> threshold:int -> 'a t -> bool
(** [support >= threshold]. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
