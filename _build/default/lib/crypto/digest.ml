type t = int64

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let of_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  mix !h

let of_value v = of_string (Thc_util.Codec.encode v)

let combine a b = mix (Int64.add (mix a) (Int64.mul b fnv_prime))

let to_int64 d = d

let equal = Int64.equal
let compare = Int64.compare
let to_hex d = Printf.sprintf "%016Lx" d
let pp ppf d = Format.pp_print_string ppf (to_hex d)
