type 'a t = { value : 'a; signatures : Signature.t list }

let empty value = { value; signatures = [] }

let add t signature_ = { t with signatures = signature_ :: t.signatures }

let of_signatures value signatures = { value; signatures }

let signers t =
  List.map (fun (s : Signature.t) -> s.signer) t.signatures
  |> List.sort_uniq compare

let support keyring t =
  let valid =
    List.filter (fun s -> Signature.verify_value keyring s t.value) t.signatures
  in
  List.map (fun (s : Signature.t) -> s.signer) valid
  |> List.sort_uniq compare |> List.length

let validate keyring ~threshold t = support keyring t >= threshold

let pp pp_value ppf t =
  Format.fprintf ppf "@[<h>cert{%a; signers=%a}@]" pp_value t.value
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (signers t)
