type msg = { round : int; payload : string }

let pp_msg ppf m = Format.fprintf ppf "round=%d (%dB)" m.round (String.length m.payload)

let close_tag = 0

let start_tag = 1

type state = {
  wait : int64;
  app : Round_app.app;
  mutable round : int;
  mutable started : bool;
  received_in : (int * int, unit) Hashtbl.t;
  early : (int, (int * string) list) Hashtbl.t;
  mutable stopped : bool;
}

let handle_of st (ctx : msg Thc_sim.Engine.ctx) : Round_app.handle =
  {
    self = ctx.self;
    n = ctx.n;
    round = (fun () -> st.round);
    output = ctx.output;
    now = ctx.now;
    rng = ctx.rng;
  }

let note_reception st (ctx : msg Thc_sim.Engine.ctx) ~round ~from ~payload =
  if
    st.started && round = st.round
    && not (Hashtbl.mem st.received_in (round, from))
  then begin
    Hashtbl.replace st.received_in (round, from) ();
    ctx.output (Thc_sim.Obs.Round_received { round; from; payload })
  end

let start_round st (ctx : msg Thc_sim.Engine.ctx) payload =
  (match payload with
  | Some m ->
    ctx.output (Thc_sim.Obs.Round_sent { round = st.round; payload = m });
    ctx.broadcast { round = st.round; payload = m }
  | None -> ());
  (match Hashtbl.find_opt st.early st.round with
  | None -> ()
  | Some buffered ->
    Hashtbl.remove st.early st.round;
    List.iter
      (fun (from, payload) -> note_reception st ctx ~round:st.round ~from ~payload)
      (List.rev buffered));
  ctx.set_timer ~delay:st.wait ~tag:close_tag

let behavior ~wait ?(start_offset = 0L) app : msg Thc_sim.Engine.behavior =
  let st =
    {
      wait;
      app;
      round = 1;
      started = false;
      received_in = Hashtbl.create 64;
      early = Hashtbl.create 16;
      stopped = false;
    }
  in
  {
    init =
      (fun ctx ->
        if start_offset = 0L then begin
          st.started <- true;
          start_round st ctx (app.Round_app.first_payload (handle_of st ctx))
        end
        else ctx.set_timer ~delay:start_offset ~tag:start_tag);
    on_message =
      (fun ctx ~src m ->
        if not st.stopped then begin
          if st.started && m.round = st.round then
            note_reception st ctx ~round:m.round ~from:src ~payload:m.payload
          else begin
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt st.early m.round)
            in
            Hashtbl.replace st.early m.round ((src, m.payload) :: prev)
          end;
          st.app.Round_app.on_receive (handle_of st ctx) ~round:m.round ~from:src
            m.payload
        end);
    on_timer =
      (fun ctx tag ->
        if not st.stopped then
          if tag = start_tag then begin
            st.started <- true;
            start_round st ctx (app.Round_app.first_payload (handle_of st ctx))
          end
          else if tag = close_tag then begin
            match
              st.app.Round_app.on_round_check (handle_of st ctx) ~round:st.round
            with
            | Round_app.Advance payload ->
              ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
              st.round <- st.round + 1;
              start_round st ctx payload
            | Round_app.Hold -> ctx.set_timer ~delay:st.wait ~tag:close_tag
            | Round_app.Stop ->
              ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
              st.stopped <- true
          end);
  }
