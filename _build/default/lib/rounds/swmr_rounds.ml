let behavior ~registers ~ident ?scan_delay ?poll_delay app =
  let board =
    {
      Scan_rounds.publish =
        (fun ~round ~payload ->
          let self = Thc_crypto.Keyring.pid_of_secret ident in
          Thc_sharedmem.Swmr.append registers.(self) ~ident (round, payload));
      read =
        (fun j ->
          List.map
            (fun (round, payload) -> (j, round, payload))
            (Thc_sharedmem.Swmr.entries registers.(j)));
      targets = Array.length registers;
    }
  in
  Scan_rounds.behavior ~board ?scan_delay ?poll_delay app
