type msg = { round : int; payload : string option }

let pp_msg ppf m =
  Format.fprintf ppf "round=%d payload=%s" m.round
    (match m.payload with None -> "-" | Some p -> Printf.sprintf "%dB" (String.length p))

type state = {
  f : int;
  participation_marker : bool;
  app : Round_app.app;
  mutable round : int;
  senders : (int * int, unit) Hashtbl.t;  (* (round, from) seen *)
  early : (int, (int * string) list) Hashtbl.t;
      (* round -> (from, payload) for future rounds, newest first *)
  received_in : (int * int, unit) Hashtbl.t;
  mutable finished : bool;  (* mechanical round end reached, app holding *)
  mutable stopped : bool;
}

let handle_of st (ctx : msg Thc_sim.Engine.ctx) : Round_app.handle =
  {
    self = ctx.self;
    n = ctx.n;
    round = (fun () -> st.round);
    output = ctx.output;
    now = ctx.now;
    rng = ctx.rng;
  }

let note_reception st (ctx : msg Thc_sim.Engine.ctx) ~round ~from ~payload =
  if round = st.round && not (Hashtbl.mem st.received_in (round, from)) then begin
    Hashtbl.replace st.received_in (round, from) ();
    ctx.output (Thc_sim.Obs.Round_received { round; from; payload })
  end

let distinct_senders st round =
  Hashtbl.fold
    (fun (r, _) () acc -> if r = round then acc + 1 else acc)
    st.senders 0

let mechanical_end st ctx = distinct_senders st st.round >= ctx.Thc_sim.Engine.n - st.f

let rec start_round st (ctx : msg Thc_sim.Engine.ctx) payload =
  st.finished <- false;
  (match payload with
  | Some m ->
    ctx.output (Thc_sim.Obs.Round_sent { round = st.round; payload = m });
    ctx.broadcast { round = st.round; payload = Some m }
  | None ->
    if st.participation_marker then
      ctx.broadcast { round = st.round; payload = None });
  (* Future-round messages that already arrived now count. *)
  (match Hashtbl.find_opt st.early st.round with
  | None -> ()
  | Some buffered ->
    Hashtbl.remove st.early st.round;
    List.iter
      (fun (from, payload) -> note_reception st ctx ~round:st.round ~from ~payload)
      (List.rev buffered));
  maybe_finish st ctx

and maybe_finish st ctx =
  if (not st.stopped) && mechanical_end st ctx then begin
    st.finished <- true;
    match st.app.Round_app.on_round_check (handle_of st ctx) ~round:st.round with
    | Round_app.Advance payload ->
      ctx.Thc_sim.Engine.output (Thc_sim.Obs.Round_ended { round = st.round });
      st.round <- st.round + 1;
      start_round st ctx payload
    | Round_app.Hold -> ()
    | Round_app.Stop ->
      ctx.Thc_sim.Engine.output (Thc_sim.Obs.Round_ended { round = st.round });
      st.stopped <- true
  end

let behavior ~f ?(participation_marker = true) app : msg Thc_sim.Engine.behavior =
  let st =
    {
      f;
      participation_marker;
      app;
      round = 1;
      senders = Hashtbl.create 64;
      early = Hashtbl.create 16;
      received_in = Hashtbl.create 64;
      finished = false;
      stopped = false;
    }
  in
  {
    init =
      (fun ctx ->
        let payload = app.Round_app.first_payload (handle_of st ctx) in
        start_round st ctx payload);
    on_message =
      (fun ctx ~src m ->
        if not st.stopped then begin
          let fresh = not (Hashtbl.mem st.senders (m.round, src)) in
          Hashtbl.replace st.senders (m.round, src) ();
          (match m.payload with
          | Some payload ->
            if m.round = st.round then
              note_reception st ctx ~round:m.round ~from:src ~payload
            else if m.round > st.round then begin
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt st.early m.round)
              in
              Hashtbl.replace st.early m.round ((src, payload) :: prev)
            end;
            st.app.Round_app.on_receive (handle_of st ctx) ~round:m.round
              ~from:src payload
          | None -> ());
          if fresh || st.finished then maybe_finish st ctx
        end);
    on_timer = (fun _ _ -> ());
  }
