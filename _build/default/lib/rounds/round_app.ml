type handle = {
  self : int;
  n : int;
  round : unit -> int;
  output : Thc_sim.Obs.t -> unit;
  now : unit -> int64;
  rng : Thc_util.Rng.t;
}

type verdict = Advance of string option | Hold | Stop

type app = {
  first_payload : handle -> string option;
  on_receive : handle -> round:int -> from:int -> string -> unit;
  on_round_check : handle -> round:int -> verdict;
}

let silent_app =
  {
    first_payload = (fun _ -> None);
    on_receive = (fun _ ~round:_ ~from:_ _ -> ());
    on_round_check = (fun _ ~round:_ -> Advance None);
  }
