type entry = {
  origin : int;
  round : int;
  payload : string;
  signature : Thc_crypto.Signature.t;  (* over (round, payload) by origin *)
}

type msg =
  | Phase1 of entry
  | Phase2 of { round : int; batch : entry list }

let pp_msg ppf = function
  | Phase1 e -> Format.fprintf ppf "phase1(p%d,r%d)" e.origin e.round
  | Phase2 { round; batch } ->
    Format.fprintf ppf "phase2(r%d,%d entries)" round (List.length batch)

type round_state = {
  entries : (int, entry list) Hashtbl.t;
      (* origin -> distinct valid entries seen (equivocation keeps all) *)
  phase2_from : (int, unit) Hashtbl.t;
  mutable my_phase : int;  (* 0 = not entered, 1 = sent phase 1, 2 = sent phase 2 *)
}

type state = {
  keyring : Thc_crypto.Keyring.t;
  ident : Thc_crypto.Keyring.secret;
  app : Round_app.app;
  mutable round : int;
  rounds : (int, round_state) Hashtbl.t;
  received_in : (int * int, unit) Hashtbl.t;
  mutable stopped : bool;
}

let round_state st r =
  match Hashtbl.find_opt st.rounds r with
  | Some rs -> rs
  | None ->
    let rs =
      {
        entries = Hashtbl.create 8;
        phase2_from = Hashtbl.create 8;
        my_phase = 0;
      }
    in
    Hashtbl.add st.rounds r rs;
    rs

let handle_of st (ctx : msg Thc_sim.Engine.ctx) : Round_app.handle =
  {
    self = ctx.self;
    n = ctx.n;
    round = (fun () -> st.round);
    output = ctx.output;
    now = ctx.now;
    rng = ctx.rng;
  }

let note_reception st (ctx : msg Thc_sim.Engine.ctx) ~round ~from ~payload =
  if round = st.round && not (Hashtbl.mem st.received_in (round, from)) then begin
    Hashtbl.replace st.received_in (round, from) ();
    ctx.output (Thc_sim.Obs.Round_received { round; from; payload })
  end

let entry_valid st (e : entry) =
  e.signature.signer = e.origin
  && Thc_crypto.Signature.verify_value st.keyring e.signature (e.round, e.payload)

(* Store a validated entry and deliver it to the app if new. *)
let store_entry st ctx (e : entry) =
  let rs = round_state st e.round in
  let known = Option.value ~default:[] (Hashtbl.find_opt rs.entries e.origin) in
  if not (List.exists (fun k -> String.equal k.payload e.payload) known) then begin
    Hashtbl.replace rs.entries e.origin (e :: known);
    note_reception st ctx ~round:e.round ~from:e.origin ~payload:e.payload;
    st.app.Round_app.on_receive (handle_of st ctx) ~round:e.round ~from:e.origin
      e.payload
  end

let all_entries rs =
  Hashtbl.fold (fun _ entries acc -> List.rev_append entries acc) rs.entries []

let batch_valid st ~round batch =
  let origins =
    List.sort_uniq compare (List.map (fun (e : entry) -> e.origin) batch)
  in
  List.length origins >= 2
  && List.for_all (fun (e : entry) -> e.round = round && entry_valid st e) batch

(* Drive the current round's phase machine as far as the collected state
   allows; called on entry to a round and after every reception. *)
let rec progress st (ctx : msg Thc_sim.Engine.ctx) =
  if not st.stopped then begin
    let rs = round_state st st.round in
    if rs.my_phase = 1 && Hashtbl.length rs.entries >= ctx.n - 1 then begin
      rs.my_phase <- 2;
      ctx.broadcast (Phase2 { round = st.round; batch = all_entries rs })
    end;
    if rs.my_phase = 2 && Hashtbl.length rs.phase2_from >= ctx.n - 1 then begin
      match st.app.Round_app.on_round_check (handle_of st ctx) ~round:st.round with
      | Round_app.Advance payload ->
        ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
        st.round <- st.round + 1;
        start_round st ctx payload
      | Round_app.Hold -> ()
      | Round_app.Stop ->
        ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
        st.stopped <- true
    end
  end

and start_round st (ctx : msg Thc_sim.Engine.ctx) payload =
  let rs = round_state st st.round in
  rs.my_phase <- 1;
  let payload_str, traced =
    match payload with Some m -> (m, true) | None -> ("", false)
  in
  if traced then
    ctx.output (Thc_sim.Obs.Round_sent { round = st.round; payload = payload_str });
  let e =
    {
      origin = ctx.self;
      round = st.round;
      payload = payload_str;
      signature = Thc_crypto.Signature.sign_value st.ident (st.round, payload_str);
    }
  in
  (* Entries that arrived before we entered this round now count as round
     receptions. *)
  Hashtbl.iter
    (fun origin entries ->
      List.iter
        (fun (en : entry) ->
          note_reception st ctx ~round:st.round ~from:origin ~payload:en.payload)
        entries)
    rs.entries;
  ctx.broadcast (Phase1 e);
  progress st ctx

let behavior ~keyring ~ident app : msg Thc_sim.Engine.behavior =
  let st =
    {
      keyring;
      ident;
      app;
      round = 1;
      rounds = Hashtbl.create 8;
      received_in = Hashtbl.create 64;
      stopped = false;
    }
  in
  {
    init =
      (fun ctx ->
        let payload = app.Round_app.first_payload (handle_of st ctx) in
        start_round st ctx payload);
    on_message =
      (fun ctx ~src m ->
        if not st.stopped then begin
          (match m with
          | Phase1 e -> if entry_valid st e then store_entry st ctx e
          | Phase2 { round; batch } ->
            if batch_valid st ~round batch then begin
              Hashtbl.replace (round_state st round).phase2_from src ();
              List.iter (fun e -> store_entry st ctx e) batch
            end);
          progress st ctx
        end);
    on_timer = (fun _ _ -> ());
  }
