type violation = {
  round : int;
  p : int;
  q : int;
  kind : [ `Unidirectional | `Bidirectional ];
}

let pp_violation ppf v =
  Format.fprintf ppf "%s violation at round %d between p%d and p%d"
    (match v.kind with
    | `Unidirectional -> "unidirectional"
    | `Bidirectional -> "bidirectional")
    v.round v.p v.q

(* Extract, per correct process: rounds in which it sent, rounds it ended,
   and the set of (round, from) receptions. *)
type profile = {
  sent : (int, unit) Hashtbl.t;
  ended : (int, unit) Hashtbl.t;
  received : (int * int, unit) Hashtbl.t;
}

let profile_of trace pid =
  let p =
    {
      sent = Hashtbl.create 16;
      ended = Hashtbl.create 16;
      received = Hashtbl.create 64;
    }
  in
  List.iter
    (fun obs ->
      match (obs : Thc_sim.Obs.t) with
      | Round_sent { round; _ } -> Hashtbl.replace p.sent round ()
      | Round_ended { round } -> Hashtbl.replace p.ended round ()
      | Round_received { round; from; _ } ->
        Hashtbl.replace p.received (round, from) ()
      | _ -> ())
    (Thc_sim.Trace.outputs_of trace pid);
  p

let max_round profiles =
  Array.fold_left
    (fun acc p ->
      Hashtbl.fold (fun r () acc -> max r acc) p.sent acc
      |> Hashtbl.fold (fun r () acc -> max r acc) p.ended)
    0 profiles

let check ~kind trace =
  let correct = Thc_sim.Trace.correct_pids trace in
  let n = trace.Thc_sim.Trace.n in
  let profiles =
    Array.init n (fun pid ->
        if List.mem pid correct then Some (profile_of trace pid) else None)
  in
  let all_profiles =
    List.filter_map
      (fun pid ->
        match profiles.(pid) with Some p -> Some (pid, p) | None -> None)
      correct
  in
  let top =
    max_round (Array.of_list (List.map snd all_profiles))
  in
  let violations = ref [] in
  for r = 1 to top do
    List.iter
      (fun (p_pid, p_prof) ->
        List.iter
          (fun (q_pid, q_prof) ->
            if p_pid < q_pid then begin
              let both_sent =
                Hashtbl.mem p_prof.sent r && Hashtbl.mem q_prof.sent r
              in
              let both_ended =
                Hashtbl.mem p_prof.ended r && Hashtbl.mem q_prof.ended r
              in
              if both_sent && both_ended then begin
                let p_got = Hashtbl.mem p_prof.received (r, q_pid) in
                let q_got = Hashtbl.mem q_prof.received (r, p_pid) in
                let ok =
                  match kind with
                  | `Unidirectional -> p_got || q_got
                  | `Bidirectional -> p_got && q_got
                in
                if not ok then
                  violations :=
                    { round = r; p = p_pid; q = q_pid; kind } :: !violations
              end
            end)
          all_profiles)
      all_profiles
  done;
  List.rev !violations

let check_unidirectional trace = check ~kind:`Unidirectional trace

let check_bidirectional trace = check ~kind:`Bidirectional trace

let rounds_completed trace ~pid =
  List.fold_left
    (fun acc obs ->
      match (obs : Thc_sim.Obs.t) with
      | Round_ended { round } -> max acc round
      | _ -> acc)
    0
    (Thc_sim.Trace.outputs_of trace pid)
