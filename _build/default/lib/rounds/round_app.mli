(** The interface between round drivers and round-based protocols.

    The paper's definitions (bidirectional / unidirectional /
    zero-directional communication) all quantify over systems that
    "implement rounds".  A {e round driver} (one per communication
    substrate: {!Swmr_rounds}, {!Async_rounds}, {!Sync_rounds},
    {!Delta_rounds}, {!Rb_rounds_f1}) turns a substrate into rounds; a
    {e round app} is a protocol written against rounds only, so the same
    app runs unchanged over every driver — which is exactly how the paper
    transfers algorithms between models ("replace all write operations with
    send-to-all, and all read operations with receiving a message").

    Driver trace contract (what the {!Directionality} monitors consume):
    - [Obs.Round_sent {round; payload}] — emitted when the process sends its
      round-[round] message;
    - [Obs.Round_received {round; from; payload}] — emitted when the process
      obtains [from]'s round-[round] message {e while its own current round
      is still [round]} (i.e., before it advances past [round]);
    - [Obs.Round_ended {round}] — emitted when the process advances past
      round [round] (or stops).

    Messages from other rounds are still handed to the app through
    [on_receive] (protocols like the paper's Algorithm 1 need stragglers
    and proofs from any round); they are just not round-[r] receptions. *)

type handle = {
  self : int;
  n : int;
  round : unit -> int;  (** Current round number (1-based). *)
  output : Thc_sim.Obs.t -> unit;  (** Record protocol-level observations. *)
  now : unit -> int64;
  rng : Thc_util.Rng.t;
}

type verdict =
  | Advance of string option
      (** Advance to the next round, sending the given payload in it
          ([None] = participate without sending). *)
  | Hold
      (** Stay in the current round and keep collecting messages; the
          driver will call [on_round_check] again when more arrive.  This
          is the paper's "until (unidirectional round is finished and
          ...)" pattern: the mechanical round has finished but the
          protocol's condition has not been met yet. *)
  | Stop  (** Leave the round system; no further callbacks. *)

type app = {
  first_payload : handle -> string option;
      (** Payload for round 1 ([None] = participate silently). *)
  on_receive : handle -> round:int -> from:int -> string -> unit;
      (** Any message obtained from the substrate, tagged with the round
          its sender sent it in. *)
  on_round_check : handle -> round:int -> verdict;
      (** Called when the mechanical round has finished, and again after
          each subsequent reception while the app [Hold]s. *)
}

val silent_app : app
(** Participates forever, never sends, never stops.  Base for tests. *)
