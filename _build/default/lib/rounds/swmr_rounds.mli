(** Unidirectional rounds from SWMR registers (paper §3.2).

    The construction of Aguilera et al. (DISC 2019) that the paper uses to
    show shared memory implements unidirectionality:

    {v
    In round r, process p_i executes:
      to send message m, p_i appends (r, m) in object o_i
      p_i reads objects o_1 ... o_n
      p_i receives round-r message m' from p_j if it reads (r, m') in o_j
    v}

    The write happens {e before} the scan, so for any two correct processes
    that both write in round [r], whichever scans later must see the other's
    entry — the unidirectionality argument.  Scan steps take adversarially
    sampled time ([scan_delay]), so interleavings across processes are
    arbitrary; the property must (and does) hold for all of them.

    The driver delivers every register entry it discovers to the app (tagged
    with its round), deduplicated per distinct (owner, round, payload) — a
    Byzantine owner {e can} append two different payloads for one round, and
    honest readers then see both, which is how shared memory exposes
    equivocation. *)

val behavior :
  registers:(int * string) Thc_sharedmem.Swmr.log array ->
  ident:Thc_crypto.Keyring.secret ->
  ?scan_delay:Thc_sim.Delay.t ->
  ?poll_delay:Thc_sim.Delay.t ->
  Round_app.app ->
  'm Thc_sim.Engine.behavior
(** A process running rounds over the shared [registers] array (entry [i]
    owned by process [i]); [ident] must belong to the process the behavior
    is installed at.  [scan_delay] is the simulated duration of one register
    read (default uniform 1–100 µs); [poll_delay] the pause between sweeps
    while the app [Hold]s (default constant 50 µs).  The behavior sends no
    network messages, so it works under any engine message type. *)
