(** Generic write-then-scan round driver over a shared-memory board.

    The paper's §3.2 claim is deliberately broad: {e any} shared-memory
    object with a modify operation restricted to one process and a read
    operation open to all (under ACLs) supports the unidirectional round
    construction.  This module implements the construction once, against an
    abstract {!board}; {!Swmr_rounds}, {!Sticky_rounds} and {!Peats_rounds}
    instantiate it for the three object families named in the paper.

    Protocol per round [r] (identical to {!Swmr_rounds}'s docstring):
    publish [(r, m)] through the owner-restricted modify operation, then
    read all [targets] board locations in random order, one per
    [scan_delay]; entries found are receptions.  The write precedes every
    read of the same sweep, which is the entire unidirectionality
    argument. *)

type board = {
  publish : round:int -> payload:string -> unit;
      (** Owner-restricted modify operation (closes over the caller's
          identity capability; raises {!Thc_sharedmem.Acl.Violation} if the
          capability does not own the slot). *)
  read : int -> (int * int * string) list;
      (** Read location [j]: visible entries as [(owner, round, payload)]. *)
  targets : int;  (** Number of locations a sweep must read. *)
}

val behavior :
  board:board ->
  ?scan_delay:Thc_sim.Delay.t ->
  ?poll_delay:Thc_sim.Delay.t ->
  Round_app.app ->
  'm Thc_sim.Engine.behavior
(** Same timing parameters and trace contract as {!Swmr_rounds.behavior}. *)
