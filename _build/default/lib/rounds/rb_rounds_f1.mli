(** Unidirectional rounds from reliable broadcast when f = 1, n ≥ 3
    (paper, Appendix "SRB Can Implement Unidirectionality When n ≥ 3 and
    f = 1").

    The two-phase forwarding protocol of the appendix:

    {v
    Phase 1: send (v, σ_p) to all; wait for phase-1 messages with valid
             signatures from n−1 distinct processes.
    Phase 2: forward all messages received to all; wait for phase-2
             messages from n−1 distinct processes, each containing ≥ 2
             valid signatures from distinct processes.
    v}

    The unidirectionality argument: with only one faulty process, every
    other process's phase-2 batch reaches both [p] and [p']; batches carry
    [n−1] signed phase-1 values, so they necessarily relay one of the two —
    a partitioned pair still hears of each other through the rest.

    Channels here are the engine's eventually reliable links, which is what
    reliable broadcast with a correct sender provides; the primitive's
    non-equivocation is supplied by the unforgeable signatures on the
    values being relayed.  For f ≥ 2 no such protocol exists (paper §4.1,
    experiment C2); this driver is sound only in the f = 1 regime. *)

type msg

val behavior :
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  Round_app.app ->
  msg Thc_sim.Engine.behavior
(** [Hold] keeps the round open collecting further relayed values. *)

val pp_msg : Format.formatter -> msg -> unit
