type msg = { round : int; payload : string }

let pp_msg ppf m = Format.fprintf ppf "round=%d (%dB)" m.round (String.length m.payload)

let boundary_tag = 0

type state = {
  period : int64;
  app : Round_app.app;
  mutable round : int;
  received_in : (int * int, unit) Hashtbl.t;
  early : (int, (int * string) list) Hashtbl.t;
  mutable stopped : bool;
}

let handle_of st (ctx : msg Thc_sim.Engine.ctx) : Round_app.handle =
  {
    self = ctx.self;
    n = ctx.n;
    round = (fun () -> st.round);
    output = ctx.output;
    now = ctx.now;
    rng = ctx.rng;
  }

let note_reception st (ctx : msg Thc_sim.Engine.ctx) ~round ~from ~payload =
  if round = st.round && not (Hashtbl.mem st.received_in (round, from)) then begin
    Hashtbl.replace st.received_in (round, from) ();
    ctx.output (Thc_sim.Obs.Round_received { round; from; payload })
  end

let start_round st (ctx : msg Thc_sim.Engine.ctx) payload =
  (match payload with
  | Some m ->
    ctx.output (Thc_sim.Obs.Round_sent { round = st.round; payload = m });
    ctx.broadcast { round = st.round; payload = m }
  | None -> ());
  (match Hashtbl.find_opt st.early st.round with
  | None -> ()
  | Some buffered ->
    Hashtbl.remove st.early st.round;
    List.iter
      (fun (from, payload) -> note_reception st ctx ~round:st.round ~from ~payload)
      (List.rev buffered));
  ctx.set_timer ~delay:st.period ~tag:boundary_tag

let behavior ~period app : msg Thc_sim.Engine.behavior =
  let st =
    {
      period;
      app;
      round = 1;
      received_in = Hashtbl.create 64;
      early = Hashtbl.create 16;
      stopped = false;
    }
  in
  {
    init =
      (fun ctx ->
        let payload = app.Round_app.first_payload (handle_of st ctx) in
        start_round st ctx payload);
    on_message =
      (fun ctx ~src m ->
        if not st.stopped then begin
          if m.round = st.round then
            note_reception st ctx ~round:m.round ~from:src ~payload:m.payload
          else if m.round > st.round then begin
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt st.early m.round)
            in
            Hashtbl.replace st.early m.round ((src, m.payload) :: prev)
          end;
          st.app.Round_app.on_receive (handle_of st ctx) ~round:m.round ~from:src
            m.payload
        end);
    on_timer =
      (fun ctx tag ->
        if (not st.stopped) && tag = boundary_tag then begin
          let verdict =
            st.app.Round_app.on_round_check (handle_of st ctx) ~round:st.round
          in
          match verdict with
          | Round_app.Stop ->
            ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
            st.stopped <- true
          | Round_app.Advance _ | Round_app.Hold ->
            let payload =
              match verdict with
              | Round_app.Advance p -> p
              | Round_app.Hold | Round_app.Stop -> None
            in
            ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
            st.round <- st.round + 1;
            start_round st ctx payload
        end);
  }

let inject ~round ~payload = { round; payload }
