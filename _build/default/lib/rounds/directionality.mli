(** Executable forms of the paper's directionality definitions.

    These monitors consume the [Round_*] observations that round drivers
    emit (contract in {!Round_app}) and decide whether a given execution
    respected unidirectional / bidirectional communication.  They are the
    measurement instrument of experiments C1–C3 and S2: positive claims are
    validated by checking thousands of adversarially scheduled executions,
    and the separation scenarios exhibit executions these monitors reject. *)

type violation = {
  round : int;
  p : int;
  q : int;
  kind : [ `Unidirectional | `Bidirectional ];
}
(** A pair of correct processes witnessing failure of the property at a
    round both completed. *)

val pp_violation : Format.formatter -> violation -> unit

val check_unidirectional : 'm Thc_sim.Trace.t -> violation list
(** The paper's Definition (Unidirectional communication): for every pair
    of correct processes [p], [q] that {e both sent} a message in round
    [r] and both moved past round [r], at least one of them received the
    other's round-[r] message before advancing.  Returns all violating
    [(r, p, q)] triples (empty = property held). *)

val check_bidirectional : 'm Thc_sim.Trace.t -> violation list
(** The stronger property: {e each} of the two senders received the other's
    round-[r] message before advancing.  (The paper states it as: a message
    sent by correct [p] to correct [q] in round [r] arrives before [q]'s
    round [r+1]; with full-information send-to-all rounds the pairwise form
    used here is equivalent.) *)

val rounds_completed : 'm Thc_sim.Trace.t -> pid:int -> int
(** Highest round this process advanced past (0 if none). *)
