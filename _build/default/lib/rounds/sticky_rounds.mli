(** Unidirectional rounds from sticky bits (write-once registers).

    Instantiates the write-then-scan construction ({!Scan_rounds}) over a
    board of sticky registers, one per (process, round): process [i] holds
    the write ACL on cell [(i, r)] and everyone reads.  Because a sticky
    cell accepts only its first write, even a Byzantine process cannot
    publish two different round-[r] values — sticky bits give
    non-equivocation {e within} the memory itself, on top of the
    unidirectionality the scan protocol provides. *)

type board
(** The shared grid of sticky cells. *)

val create_board : n:int -> board

val cell :
  board -> owner:int -> round:int -> string Thc_sharedmem.Sticky.t
(** Direct access for tests and Byzantine behaviors (the ACL still only
    lets [owner] write). *)

val behavior :
  board:board ->
  ident:Thc_crypto.Keyring.secret ->
  ?scan_delay:Thc_sim.Delay.t ->
  ?poll_delay:Thc_sim.Delay.t ->
  Round_app.app ->
  'm Thc_sim.Engine.behavior
