(** Δ-synchronous rounds (paper, "Communication Models Providing
    Unidirectionality").

    In the Δ-synchronous model every message arrives within a known bound Δ
    of being sent, but clocks are not synchronized: processes may start
    their rounds at arbitrarily different times.  A process sends its
    round-[r] message when its round starts and closes the round [wait]
    after that, on its own clock.

    The paper's observation, which experiment S2 measures:
    - [wait < Δ]: nothing stronger than zero-directional communication;
    - [Δ ≤ wait]: unidirectional communication — if correct [p] starts no
      later than correct [q], then [p]'s message (sent at [t_p]) arrives by
      [t_p + Δ ≤ t_q + wait], inside [q]'s round;
    - no finite [wait] gives bidirectionality without synchronized round
      starts ([q] may start after [p]'s round already closed), which is why
      Δ-synchrony sits strictly between asynchrony and lock-step synchrony.

    The harness controls Δ through the network delay distributions and the
    start misalignment through [start_offset]. *)

type msg

val behavior :
  wait:int64 ->
  ?start_offset:int64 ->
  Round_app.app ->
  msg Thc_sim.Engine.behavior
(** Rounds closing [wait] µs after they start on the local clock; the first
    round starts [start_offset] (default 0) after time 0.  [Hold] extends
    the current round by another [wait]. *)

val pp_msg : Format.formatter -> msg -> unit
