(** Bidirectional rounds from lock-step synchrony.

    The classic synchronous model: execution is divided into globally
    aligned rounds of fixed duration [period]; every round-[r] message from
    a correct process reaches every correct process before the round
    boundary.  For this to hold, the harness must configure all
    correct-to-correct link delays strictly below [period] — the driver
    itself simply sends at each boundary and closes the round at the next.

    The paper: "the classic synchronous (lock-step) model ... is exactly
    the same guarantee as bidirectional communication."  Used by
    {!Thc_broadcast.Dolev_strong} and as the bidirectional reference point
    in experiment S2.

    [Round_app.Hold] is not meaningful in lock-step (time moves on); the
    driver treats it as [Advance None]. *)

type msg

val behavior : period:int64 -> Round_app.app -> msg Thc_sim.Engine.behavior
(** Rounds of fixed [period] (µs), aligned across processes: round [r]
    spans [[(r-1)·period, r·period)] in virtual time. *)

val inject : round:int -> payload:string -> msg
(** Construct a raw round message — for Byzantine behaviors in tests that
    send different payloads to different processes, something the driver's
    own [broadcast] (uniform by construction) cannot express. *)

val pp_msg : Format.formatter -> msg -> unit
