type board = {
  publish : round:int -> payload:string -> unit;
  read : int -> (int * int * string) list;
  targets : int;
}

let read_tag = 0

let poll_tag = 1

type state = {
  board : board;
  scan_delay : Thc_sim.Delay.t;
  poll_delay : Thc_sim.Delay.t;
  app : Round_app.app;
  mutable round : int;
  mutable scan_queue : int list;
  delivered : (int * int * string, unit) Hashtbl.t;
  received_in : (int * int, unit) Hashtbl.t;
  mutable stopped : bool;
}

let handle_of st (ctx : 'm Thc_sim.Engine.ctx) : Round_app.handle =
  {
    self = ctx.self;
    n = ctx.n;
    round = (fun () -> st.round);
    output = ctx.output;
    now = ctx.now;
    rng = ctx.rng;
  }

let note_reception st (ctx : 'm Thc_sim.Engine.ctx) ~round ~from ~payload =
  if round = st.round && not (Hashtbl.mem st.received_in (round, from)) then begin
    Hashtbl.replace st.received_in (round, from) ();
    ctx.output (Thc_sim.Obs.Round_received { round; from; payload })
  end

let flush_early st ctx =
  Hashtbl.iter
    (fun (owner, round, payload) () ->
      if round = st.round then note_reception st ctx ~round ~from:owner ~payload)
    st.delivered

let start_sweep st (ctx : 'm Thc_sim.Engine.ctx) =
  let order = Array.init st.board.targets (fun i -> i) in
  Thc_util.Rng.shuffle ctx.rng order;
  st.scan_queue <- Array.to_list order;
  ctx.set_timer ~delay:(Thc_sim.Delay.sample ctx.rng st.scan_delay) ~tag:read_tag

let start_round st (ctx : 'm Thc_sim.Engine.ctx) payload =
  (match payload with
  | Some m ->
    st.board.publish ~round:st.round ~payload:m;
    ctx.output (Thc_sim.Obs.Round_sent { round = st.round; payload = m })
  | None -> ());
  flush_early st ctx;
  start_sweep st ctx

let rec check st (ctx : 'm Thc_sim.Engine.ctx) =
  match st.app.Round_app.on_round_check (handle_of st ctx) ~round:st.round with
  | Round_app.Advance payload ->
    ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
    st.round <- st.round + 1;
    start_round st ctx payload
  | Round_app.Hold ->
    ctx.set_timer ~delay:(Thc_sim.Delay.sample ctx.rng st.poll_delay) ~tag:poll_tag
  | Round_app.Stop ->
    ctx.output (Thc_sim.Obs.Round_ended { round = st.round });
    st.stopped <- true

and read_next st (ctx : 'm Thc_sim.Engine.ctx) =
  match st.scan_queue with
  | [] -> check st ctx
  | j :: rest ->
    st.scan_queue <- rest;
    List.iter
      (fun (owner, round, payload) ->
        if not (Hashtbl.mem st.delivered (owner, round, payload)) then begin
          Hashtbl.replace st.delivered (owner, round, payload) ();
          note_reception st ctx ~round ~from:owner ~payload;
          st.app.Round_app.on_receive (handle_of st ctx) ~round ~from:owner
            payload
        end)
      (st.board.read j);
    if st.scan_queue = [] then check st ctx
    else
      ctx.set_timer
        ~delay:(Thc_sim.Delay.sample ctx.rng st.scan_delay)
        ~tag:read_tag

let behavior ~board ?(scan_delay = Thc_sim.Delay.Uniform (1L, 100L))
    ?(poll_delay = Thc_sim.Delay.Const 50L) app : 'm Thc_sim.Engine.behavior =
  let st =
    {
      board;
      scan_delay;
      poll_delay;
      app;
      round = 1;
      scan_queue = [];
      delivered = Hashtbl.create 64;
      received_in = Hashtbl.create 64;
      stopped = false;
    }
  in
  {
    init =
      (fun ctx ->
        let payload = app.Round_app.first_payload (handle_of st ctx) in
        start_round st ctx payload);
    on_message = (fun _ ~src:_ _ -> ());
    on_timer =
      (fun ctx tag ->
        if not st.stopped then
          if tag = read_tag then read_next st ctx
          else if tag = poll_tag then start_sweep st ctx);
  }
