type board = {
  n : int;
  cells : (int * int, string Thc_sharedmem.Sticky.t) Hashtbl.t;
  mutable max_round : int;  (* highest round any process has published *)
}

let create_board ~n = { n; cells = Hashtbl.create 64; max_round = 1 }

let cell board ~owner ~round =
  match Hashtbl.find_opt board.cells (owner, round) with
  | Some c -> c
  | None ->
    let c =
      Thc_sharedmem.Sticky.create ~write_acl:(Thc_sharedmem.Acl.only owner) ()
    in
    Hashtbl.add board.cells (owner, round) c;
    c

let behavior ~board ~ident ?scan_delay ?poll_delay app =
  let self = Thc_crypto.Keyring.pid_of_secret ident in
  let scan_board =
    {
      Scan_rounds.publish =
        (fun ~round ~payload ->
          board.max_round <- max board.max_round round;
          match
            Thc_sharedmem.Sticky.set (cell board ~owner:self ~round) ~ident
              payload
          with
          | `Set | `Already -> ());
      read =
        (fun j ->
          (* Reading "process j's object" = all of j's cells stuck so far. *)
          let entries = ref [] in
          for r = board.max_round downto 1 do
            match Hashtbl.find_opt board.cells (j, r) with
            | None -> ()
            | Some c ->
              (match Thc_sharedmem.Sticky.get c with
              | Some payload -> entries := (j, r, payload) :: !entries
              | None -> ())
          done;
          !entries);
      targets = board.n;
    }
  in
  Scan_rounds.behavior ~board:scan_board ?scan_delay ?poll_delay app
