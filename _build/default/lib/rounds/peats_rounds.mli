(** Unidirectional rounds from a policy-enforced augmented tuple space.

    Instantiates the write-then-scan construction ({!Scan_rounds}) over one
    shared PEATS instance under {!Thc_sharedmem.Peats.owned_field_policy}:
    round messages are tuples [(owner, round, payload)]; the policy lets
    process [i] insert only tuples carrying its own id in the first field
    and lets everyone read — the ACL-object setting of the paper's §3.2
    claim, realized through a state-inspecting policy rather than a static
    list. *)

val behavior :
  space:Thc_sharedmem.Peats.t ->
  n:int ->
  ident:Thc_crypto.Keyring.secret ->
  ?scan_delay:Thc_sim.Delay.t ->
  ?poll_delay:Thc_sim.Delay.t ->
  Round_app.app ->
  'm Thc_sim.Engine.behavior
(** [space] should be created with {!Thc_sharedmem.Peats.owned_field_policy}
    (or any policy at least as permissive for reads and at most one owner
    per first field for writes). *)
