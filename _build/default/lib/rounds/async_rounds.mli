(** Zero-directional rounds from plain asynchronous message passing.

    The classic asynchronous round structure: broadcast your round-[r]
    message, then wait until round-[r] messages from [n - f] distinct
    processes (yourself included) have arrived.  The paper observes this is
    the best plain asynchrony can do — "we can implement rounds in which
    n−f messages are received by every correct process, but we cannot
    guarantee successful communication between any given pair" — i.e., the
    resulting rounds are only {e zero-directional}: a pair of correct
    processes on the wrong side of the scheduler can both complete a round
    without hearing each other.

    Experiment C2 runs exactly this driver inside the paper's three-scenario
    separation argument to exhibit a unidirectionality violation. *)

type msg
(** Wire messages of the driver (round number + optional payload). *)

val behavior :
  f:int ->
  ?participation_marker:bool ->
  Round_app.app ->
  msg Thc_sim.Engine.behavior
(** Rounds tolerating [f] faults: mechanical round end when [n - f]
    distinct round-[r] messages have arrived.  When the app sends [None],
    a payload-less participation marker is still broadcast (so counting
    works) unless [participation_marker] is [false]. *)

val pp_msg : Format.formatter -> msg -> unit
