lib/rounds/async_rounds.mli: Format Round_app Thc_sim
