lib/rounds/directionality.mli: Format Thc_sim
