lib/rounds/round_app.ml: Thc_sim Thc_util
