lib/rounds/scan_rounds.ml: Array Hashtbl List Round_app Thc_sim Thc_util
