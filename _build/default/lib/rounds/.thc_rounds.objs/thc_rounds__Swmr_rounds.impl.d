lib/rounds/swmr_rounds.ml: Array List Scan_rounds Thc_crypto Thc_sharedmem
