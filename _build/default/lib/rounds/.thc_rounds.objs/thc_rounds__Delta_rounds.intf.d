lib/rounds/delta_rounds.mli: Format Round_app Thc_sim
