lib/rounds/round_app.mli: Thc_sim Thc_util
