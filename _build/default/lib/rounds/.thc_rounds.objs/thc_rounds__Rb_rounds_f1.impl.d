lib/rounds/rb_rounds_f1.ml: Format Hashtbl List Option Round_app String Thc_crypto Thc_sim
