lib/rounds/rb_rounds_f1.mli: Format Round_app Thc_crypto Thc_sim
