lib/rounds/sticky_rounds.ml: Hashtbl Scan_rounds Thc_crypto Thc_sharedmem
