lib/rounds/sticky_rounds.mli: Round_app Thc_crypto Thc_sharedmem Thc_sim
