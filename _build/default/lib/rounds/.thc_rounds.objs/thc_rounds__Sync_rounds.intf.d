lib/rounds/sync_rounds.mli: Format Round_app Thc_sim
