lib/rounds/async_rounds.ml: Format Hashtbl List Option Printf Round_app String Thc_sim
