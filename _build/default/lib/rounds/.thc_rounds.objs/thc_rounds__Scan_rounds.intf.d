lib/rounds/scan_rounds.mli: Round_app Thc_sim
