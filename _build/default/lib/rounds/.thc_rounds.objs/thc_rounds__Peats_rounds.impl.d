lib/rounds/peats_rounds.ml: List Scan_rounds Thc_crypto Thc_sharedmem
