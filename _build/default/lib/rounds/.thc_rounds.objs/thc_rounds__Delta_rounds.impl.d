lib/rounds/delta_rounds.ml: Format Hashtbl List Option Round_app String Thc_sim
