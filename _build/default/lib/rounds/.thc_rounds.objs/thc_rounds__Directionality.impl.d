lib/rounds/directionality.ml: Array Format Hashtbl List Thc_sim
