let behavior ~space ~n ~ident ?scan_delay ?poll_delay app =
  let self = Thc_crypto.Keyring.pid_of_secret ident in
  let board =
    {
      Scan_rounds.publish =
        (fun ~round ~payload ->
          Thc_sharedmem.Peats.out space ~ident
            [| string_of_int self; string_of_int round; payload |]);
      read =
        (fun j ->
          let pattern = [| Some (string_of_int j); None; None |] in
          List.filter_map
            (fun tuple ->
              match tuple with
              | [| owner; round; payload |] ->
                Some (int_of_string owner, int_of_string round, payload)
              | _ -> None)
            (Thc_sharedmem.Peats.rd_all space ~ident pattern));
      targets = n;
    }
  in
  Scan_rounds.behavior ~board ?scan_delay ?poll_delay app
