(** The paper's three agreement problems as trace monitors.

    "Problems Considered / Agreement" defines very weak, weak-validity and
    strong-validity agreement; these checkers judge a finished execution
    given each process's input.  Decisions are read from [Obs.Decided]
    observations ([None] payload = ⊥).

    Termination is judged at end-of-trace, so positive experiments must run
    to quiescence; impossibility scenarios deliberately exhibit executions
    where the conjunction of properties fails. *)

type variant = [ `Very_weak | `Weak | `Strong ]

type violation = {
  property : [ `Agreement | `Termination | `Validity ];
  info : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  variant ->
  inputs:string option array ->
  'm Thc_sim.Trace.t ->
  violation list
(** [inputs.(i)] is process [i]'s input ([None] for processes without one).
    Variant-specific clauses:

    - [`Very_weak]: agreement up to ⊥ (two correct decisions are equal or
      one is ⊥); validity if {e all} processes are correct with one common
      input.
    - [`Weak]: exact agreement; validity if all processes are correct with
      one common input.
    - [`Strong]: exact agreement; validity if all {e correct} processes
      share an input (Byzantine inputs irrelevant).

    Termination (all variants): every correct process decided. *)

val decisions : 'm Thc_sim.Trace.t -> (int * string option) list
(** First decision of each correct process that decided. *)
