lib/agreement/agreement_spec.ml: Array Format List Printf String Thc_sim
