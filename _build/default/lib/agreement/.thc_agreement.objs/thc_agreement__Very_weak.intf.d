lib/agreement/very_weak.mli: Thc_rounds
