lib/agreement/weak_validity.ml: Array Format Fun Int64 List Option String Thc_crypto Thc_hardware Thc_replication Thc_sim Thc_util
