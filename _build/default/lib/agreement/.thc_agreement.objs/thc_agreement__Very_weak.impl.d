lib/agreement/very_weak.ml: Option String Thc_rounds Thc_sim
