lib/agreement/weak_validity.mli: Format Thc_sim
