lib/agreement/strong_validity.ml: Array Hashtbl List Option Thc_broadcast Thc_crypto Thc_rounds Thc_sim Thc_util
