lib/agreement/agreement_spec.mli: Format Thc_sim
