lib/agreement/strong_validity.mli: Thc_crypto Thc_rounds
