(** Very weak Byzantine agreement from one unidirectional round (n > f).

    The paper's claim and algorithm ("Unidirectional communication can solve
    very weak Byzantine agreement with n > f"):

    {v
    process p with input v:  send v to all; wait until end of round;
    if any received value v' ≠ v then commit ⊥ else commit v
    v}

    Agreement up to ⊥ holds by unidirectionality alone: for correct [p]
    committing [v ≠ ⊥] and any correct [q], one of them received the other's
    round message, so [q] saw [v] and can commit only [v] or ⊥.  No
    signatures, no quorums, no fault bound beyond [n > f] — the sharpest
    illustration of what the round property buys.

    Conversely, reliable broadcast {e cannot} solve this problem for
    [n ≤ 2f] (paper's five-World partition argument, experiment A2) — which
    pins the separation between the two mechanism classes to an actual
    decision problem. *)

type t

val create : input:string -> t

val app : t -> Thc_rounds.Round_app.app
(** One round: send the input, commit at round end, stop.  Emits
    [Obs.Decided]. *)

val committed : t -> string option option
