type t = {
  input : string;
  mutable conflicting : bool;
  mutable committed : string option option;
}

let create ~input = { input; conflicting = false; committed = None }

let committed t = t.committed

let app t : Thc_rounds.Round_app.app =
  {
    first_payload = (fun _ -> Some t.input);
    on_receive =
      (fun h ~round ~from:_ payload ->
        (* Only messages of our single round matter; the driver may also
           surface stragglers from other rounds of other protocols. *)
        ignore h;
        if round = 1 && not (String.equal payload t.input) then
          t.conflicting <- true);
    on_round_check =
      (fun h ~round:_ ->
        t.committed <- Some (if t.conflicting then None else Some t.input);
        h.output (Thc_sim.Obs.Decided (Option.join t.committed));
        Thc_rounds.Round_app.Stop);
  }
