type t = {
  n : int;
  f : int;
  instances : Thc_broadcast.Dolev_strong.t array;  (* instance i: sender i *)
  mutable committed : string option option;
}

(* Wire payload: per-instance chain bundles. *)
type bundle = (int * Thc_broadcast.Dolev_strong.chain list) list

let create ~keyring ~ident ~n ~f ~input =
  let self = Thc_crypto.Keyring.pid_of_secret ident in
  {
    n;
    f;
    instances =
      Array.init n (fun sender ->
          Thc_broadcast.Dolev_strong.create ~keyring ~ident ~sender ~f
            ~input:(if sender = self then Some input else None));
    committed = None;
  }

let committed t = t.committed

let encode_bundle (b : bundle) = Thc_util.Codec.encode b

let majority t outcomes =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun v ->
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    outcomes;
  Hashtbl.fold
    (fun v c acc -> if c > t.n / 2 then Some v else acc)
    counts None

let app t : Thc_rounds.Round_app.app =
  {
    first_payload =
      (fun _ ->
        let bundle =
          Array.to_list
            (Array.mapi
               (fun i inst ->
                 match Thc_broadcast.Dolev_strong.initial_chain inst with
                 | Some c -> (i, [ c ])
                 | None -> (i, []))
               t.instances)
          |> List.filter (fun (_, cs) -> cs <> [])
        in
        match bundle with [] -> None | b -> Some (encode_bundle b));
    on_receive =
      (fun _ ~round ~from:_ payload ->
        match (Thc_util.Codec.decode payload : bundle) with
        | b ->
          List.iter
            (fun (i, chains) ->
              if i >= 0 && i < t.n then
                Thc_broadcast.Dolev_strong.on_chains t.instances.(i) ~round
                  chains)
            b
        | exception _ -> ());
    on_round_check =
      (fun h ~round ->
        if round >= t.f + 1 then begin
          let outcomes =
            Array.to_list t.instances
            |> List.filter_map Thc_broadcast.Dolev_strong.conclude
          in
          t.committed <- Some (majority t outcomes);
          h.output (Thc_sim.Obs.Decided (Option.join t.committed));
          Thc_rounds.Round_app.Stop
        end
        else begin
          let bundle =
            Array.to_list
              (Array.mapi
                 (fun i inst -> (i, Thc_broadcast.Dolev_strong.relay inst))
                 t.instances)
            |> List.filter (fun (_, cs) -> cs <> [])
          in
          match bundle with
          | [] -> Thc_rounds.Round_app.Advance None
          | b -> Thc_rounds.Round_app.Advance (Some (encode_bundle b))
        end);
  }
