type variant = [ `Very_weak | `Weak | `Strong ]

type violation = {
  property : [ `Agreement | `Termination | `Validity ];
  info : string;
}

let pp_violation ppf v =
  let name =
    match v.property with
    | `Agreement -> "agreement"
    | `Termination -> "termination"
    | `Validity -> "validity"
  in
  Format.fprintf ppf "%s violation: %s" name v.info

let decisions trace =
  List.filter_map
    (fun pid ->
      match Thc_sim.Trace.decision_of trace pid with
      | Some d -> Some (pid, d)
      | None -> None)
    (Thc_sim.Trace.correct_pids trace)

let common_input inputs pids =
  match pids with
  | [] -> None
  | first :: rest ->
    (match inputs.(first) with
    | None -> None
    | Some v ->
      if
        List.for_all
          (fun p ->
            match inputs.(p) with Some v' -> String.equal v v' | None -> false)
          rest
      then Some v
      else None)

let check variant ~inputs trace =
  let violations = ref [] in
  let add property info = violations := { property; info } :: !violations in
  let correct = Thc_sim.Trace.correct_pids trace in
  let ds = decisions trace in
  (* Termination. *)
  List.iter
    (fun pid ->
      if not (List.mem_assoc pid ds) then
        add `Termination (Printf.sprintf "p%d never decided" pid))
    correct;
  (* Agreement. *)
  List.iter
    (fun (p, dp) ->
      List.iter
        (fun (q, dq) ->
          if p < q then
            let ok =
              match (variant, dp, dq) with
              | `Very_weak, None, _ | `Very_weak, _, None -> true
              | `Very_weak, Some a, Some b -> String.equal a b
              | (`Weak | `Strong), a, b -> a = b
            in
            if not ok then
              add `Agreement
                (Printf.sprintf "p%d and p%d decided differently" p q))
        ds)
    ds;
  (* Validity. *)
  let all_pids = List.init trace.Thc_sim.Trace.n (fun i -> i) in
  let validity_applies, expected =
    match variant with
    | `Very_weak | `Weak ->
      (* All processes correct and share an input. *)
      if List.length correct = trace.Thc_sim.Trace.n then
        (true, common_input inputs all_pids)
      else (false, None)
    | `Strong -> (true, common_input inputs correct)
  in
  (match (validity_applies, expected) with
  | true, Some v ->
    List.iter
      (fun (pid, d) ->
        match d with
        | Some d when String.equal d v -> ()
        | Some _ | None ->
          add `Validity
            (Printf.sprintf "p%d decided off the common input" pid))
      ds
  | true, None | false, _ -> ());
  List.rev !violations
