(** Weak-validity agreement with n = 2f+1 from trusted counters
    (experiment A3).

    The paper's preliminaries: "a system with non-equivocation and
    transferable signatures can tolerate the corruptions of any minority of
    the processes when solving weak Byzantine agreement" (Clement et al.;
    Chun et al.).  This module realizes that claim by the standard systems
    route — the same one MinBFT takes: each process doubles as a client of
    a 2f+1-replica MinBFT cluster, submits its input as the operation, and
    decides the operation committed at sequence number 1.

    - {e Agreement}: MinBFT safety — all correct replicas execute the same
      operation at seq 1 (quorum-of-f+1 votes made safe by the attested
      links, i.e. by non-equivocation).
    - {e Termination}: MinBFT liveness under partial synchrony — view
      changes rotate past faulty leaders.
    - {e Weak validity}: if {e all} processes are correct with one common
      input, every submitted request carries that input, so whatever
      request wins seq 1 carries it.

    By the paper's chain (unidirectionality ⇒ SRB ⇒ TrInc) the construction
    lives in the shared-memory/unidirectional class; it is also exactly
    where the trusted-log class lands, which is why the problem does not
    separate the two (the separation needs unidirectionality itself —
    experiment C2). *)

type outcome = {
  decisions : string option array;
      (** Per process: the decided value ([None] = never decided). *)
  agreement : bool;  (** All decided values among correct processes equal. *)
  validity : bool;
      (** If all correct with common input: that input decided (vacuously
          true otherwise). *)
  termination : bool;  (** Every correct process decided. *)
  final_view : int;
  messages : int;
  duration_us : int64;
}

val run :
  f:int ->
  inputs:string array ->
  ?seed:int64 ->
  ?delay:Thc_sim.Delay.t ->
  ?crash_leader:bool ->
  unit ->
  outcome
(** Run one instance over a fresh cluster.  [inputs] must have length
    [2f+1]; with [crash_leader] the initial leader stops before proposing,
    exercising termination through a view change (its slot then counts as
    faulty for the property checks). *)

val pp_outcome : Format.formatter -> outcome -> unit
