(** Strong-validity agreement from bidirectional rounds (n ≥ 2f+1).

    The classical route the paper references for the top of the hierarchy:
    under synchrony (= bidirectional rounds) with transferable signatures,
    strong agreement is solvable with [n > 2f] (Dolev–Strong style), whereas
    no asynchronous/partially synchronous model — unidirectionality included
    — can do it with [n ≤ 3f] (Claim "Strong validity agreement cannot be
    solved with unidirectionality in a system with n ≤ 3f").  Together the
    two facts separate bidirectional from unidirectional communication.

    Construction: [n] parallel Dolev–Strong broadcast instances (one per
    process broadcasting its input) multiplexed over one lock-step driver
    for f+1 rounds; afterwards every correct process holds the same vector
    of per-sender outcomes and commits its majority value (with [n ≥ 2f+1]
    the ≥ f+1 correct processes dominate when they share an input), or ⊥
    if no majority exists. *)

type t

val create :
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  n:int ->
  f:int ->
  input:string ->
  t

val app : t -> Thc_rounds.Round_app.app
(** Run over {!Thc_rounds.Sync_rounds} with a period above the maximum
    correct-link delay.  Emits [Obs.Decided] after round f+1. *)

val committed : t -> string option option
