type attestation = { origin : int; k : int; counter : int; message : string }

type t = {
  self : int;
  hubs : Ideal_srb.hub array;
  rxs : Ideal_srb.Rx.t array;
  c : int array;  (* C[q]: highest stored counter per origin *)
  store : (int * int, int * string) Hashtbl.t;
      (* (origin, k) -> (counter, message) for stored attestations *)
}

let create ~hubs ~self =
  {
    self;
    hubs;
    rxs = Array.map Ideal_srb.Rx.create hubs;
    c = Array.make (Array.length hubs) 0;
    store = Hashtbl.create 64;
  }

let attest t ~counter ~message =
  let value = Thc_util.Codec.encode (counter, message) in
  let wire = Ideal_srb.broadcast t.hubs.(t.self) value in
  ({ origin = t.self; k = wire.seq; counter; message }, wire)

let deliver t ~origin (k, value) =
  let counter, message = (Thc_util.Codec.decode value : int * string) in
  if t.c.(origin) < counter then begin
    Hashtbl.replace t.store (origin, k) (counter, message);
    t.c.(origin) <- counter
  end

let on_wire t (w : Ideal_srb.wire) =
  if w.sender < 0 || w.sender >= Array.length t.rxs then `Drop
  else
    match Ideal_srb.Rx.receive t.rxs.(w.sender) w with
    | `Bogus | `Stale -> `Drop
    | `Fresh deliveries ->
      List.iter (deliver t ~origin:w.sender) deliveries;
      `Forward

let check t a ~id =
  a.origin = id
  &&
  match Hashtbl.find_opt t.store (id, a.k) with
  | Some (counter, message) ->
    counter = a.counter && String.equal message a.message
  | None -> false

let counter_of t ~id = t.c.(id)

type msg = Wire of Ideal_srb.wire

let decode_attestation s = (Thc_util.Codec.decode s : attestation)

let behavior t ~attest_plan : msg Thc_sim.Engine.behavior =
  let plan = Array.of_list attest_plan in
  {
    init =
      (fun ctx ->
        Array.iteri
          (fun i (delay, _, _) -> ctx.set_timer ~delay ~tag:i)
          plan);
    on_message =
      (fun ctx ~src:_ (Wire w) ->
        match on_wire t w with
        | `Forward -> ctx.broadcast (Wire w)
        | `Drop -> ());
    on_timer =
      (fun ctx tag ->
        if tag >= 0 && tag < Array.length plan then begin
          let _, counter, message = plan.(tag) in
          let a, wire = attest t ~counter ~message in
          ctx.output
            (Thc_sim.Obs.Attested
               { counter; value = Thc_util.Codec.encode a });
          ctx.broadcast (Wire wire)
        end);
  }
