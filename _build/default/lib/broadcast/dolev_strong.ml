type chain = { value : string; sigs : Thc_crypto.Signature.t list (* oldest first *) }

type t = {
  keyring : Thc_crypto.Keyring.t;
  ident : Thc_crypto.Keyring.secret;
  sender : int;
  f : int;
  input : string option;
  mutable extracted : string list;  (* distinct values, capped at 2 *)
  mutable relay : chain list;  (* to send next round *)
  mutable committed : string option option;
}

let create ~keyring ~ident ~sender ~f ~input =
  { keyring; ident; sender; f; input; extracted = []; relay = []; committed = None }

let committed t = t.committed

let self t = Thc_crypto.Keyring.pid_of_secret t.ident

let signers chain =
  List.map (fun (s : Thc_crypto.Signature.t) -> s.signer) chain.sigs

(* Signature i covers (value, ids of signers before i): standard chained
   authentication — a signer endorses both the value and its route. *)
let chain_valid t chain ~min_len =
  let ids = signers chain in
  List.length chain.sigs >= min_len
  && List.length (List.sort_uniq compare ids) = List.length ids
  && (match ids with first :: _ -> first = t.sender | [] -> false)
  &&
  let rec go prefix = function
    | [] -> true
    | (s : Thc_crypto.Signature.t) :: rest ->
      Thc_crypto.Signature.verify_value t.keyring s (chain.value, List.rev prefix)
      && go (s.signer :: prefix) rest
  in
  go [] chain.sigs

let extend t chain =
  let prefix = signers chain in
  {
    chain with
    sigs =
      chain.sigs
      @ [ Thc_crypto.Signature.sign_value t.ident (chain.value, prefix) ];
  }

let extract t chain =
  if not (List.mem chain.value t.extracted) then begin
    if List.length t.extracted < 2 then begin
      t.extracted <- chain.value :: t.extracted;
      (* Relay newly extracted values with our signature appended (unless we
         already signed this chain). *)
      if not (List.mem (self t) (signers chain)) then
        t.relay <- extend t chain :: t.relay
    end
  end

let initial_chain t =
  match t.input with
  | Some value when self t = t.sender ->
    let c =
      {
        value;
        sigs = [ Thc_crypto.Signature.sign_value t.ident (value, ([] : int list)) ];
      }
    in
    t.extracted <- [ value ];
    Some c
  | Some _ | None -> None

let on_chains t ~round chains =
  List.iter (fun c -> if chain_valid t c ~min_len:round then extract t c) chains

let relay t =
  let chains = t.relay in
  t.relay <- [];
  chains

let conclude t =
  (match t.extracted with
  | [ v ] -> t.committed <- Some (Some v)
  | [] | _ :: _ :: _ -> t.committed <- Some None);
  Option.join t.committed

let app t : Thc_rounds.Round_app.app =
  {
    first_payload =
      (fun _ ->
        match initial_chain t with
        | Some c -> Some (Thc_util.Codec.encode [ c ])
        | None -> None);
    on_receive =
      (fun _ ~round ~from:_ payload ->
        match (Thc_util.Codec.decode payload : chain list) with
        | chains -> on_chains t ~round chains
        | exception _ -> ());
    on_round_check =
      (fun h ~round ->
        if round >= t.f + 1 then begin
          let decision = conclude t in
          h.output (Thc_sim.Obs.Decided decision);
          Thc_rounds.Round_app.Stop
        end
        else begin
          let payload =
            match relay t with
            | [] -> None
            | chains -> Some (Thc_util.Codec.encode chains)
          in
          Thc_rounds.Round_app.Advance payload
        end);
  }
