(** Theorem 1: sequenced reliable broadcast implements the TrInc interface.

    The paper's only theorem, reproduced with its exact construction:

    {v
    attestation Attest(seq-num c, message m) {
        Broadcast(k, (c, m));   // k is the broadcast sequence number
        return (k, (c, m)); }

    bool CheckAttestation(attestation a, id q) {
        upon delivering a message (k, c, m) from q
            if C[q] < c { store (k, (c, m)); C[q] = c; }
        return (stored (k, (c, m)) == a from q); }
    v}

    Attestations are ordinary data (transferable).  The two properties the
    paper proves, which experiment T1 validates over adversarial schedules:

    + if [q] correctly invoked [attest] and it returned [a], then
      [check a ~id:q] eventually returns true at every correct process
      (correctly = with a sequence number above all previously used ones);
    + if [a] was not produced by [q]'s [attest], [check a ~id:q] returns
      false — SRB integrity means no such delivery ever happens.

    The SRB primitive is {!Ideal_srb}; one hub per process acts as that
    process's broadcast instance. *)

type attestation = { origin : int; k : int; counter : int; message : string }
(** [(k, (c, m))] from the construction, tagged with the trinket id. *)

type t
(** One process's state: its hub, receive views of all hubs, the [C] array
    and the store. *)

val create : hubs:Ideal_srb.hub array -> self:int -> t

val attest : t -> counter:int -> message:string -> attestation * Ideal_srb.wire
(** [Attest(c, m)]: broadcast on own hub; the caller must transmit the
    returned wire (the engine behavior below does). *)

val on_wire : t -> Ideal_srb.wire -> [ `Forward | `Drop ]
(** Feed a received wire through the SRB receive logic, updating [C]/store
    on each delivery.  [`Forward]: fresh, echo it to everyone (totality). *)

val check : t -> attestation -> id:int -> bool
(** [CheckAttestation(a, q)] against the current local store. *)

val counter_of : t -> id:int -> int
(** Current [C\[id\]]. *)

type msg = Wire of Ideal_srb.wire

val behavior :
  t -> attest_plan:(int64 * int * string) list -> msg Thc_sim.Engine.behavior
(** Canonical engine process: performs [attest] per the timed plan (emitting
    [Obs.Attested] with the serialized {!attestation}) and echoes fresh
    wires.  Harnesses keep the [t] to query {!check} after the run. *)

val decode_attestation : string -> attestation
(** Recover an attestation from an [Obs.Attested] payload. *)
