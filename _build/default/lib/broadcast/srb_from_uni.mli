(** Algorithm 1: sequenced reliable broadcast from unidirectional rounds
    (paper §4.2, Claim "SRB can be solved using unidirectional communication
    with n ≥ 2t+1").

    The Aguilera et al. construction rewritten — as the paper instructs —
    with every register write replaced by a round send and every scan by
    round receptions, so it runs over {e any} unidirectional round driver
    ({!Thc_rounds.Swmr_rounds}, {!Thc_rounds.Sticky_rounds},
    {!Thc_rounds.Peats_rounds}, {!Thc_rounds.Sync_rounds}, or
    {!Thc_rounds.Rb_rounds_f1} in its f=1 regime).

    Protocol per sender index [k], with a fixed global round schedule that
    keeps correct processes' sends for one stage in one round number (the
    pairwise unidirectionality guarantee applies only within a round):

    - round [3k-2] ({e value round}): processes hold until they adopt the
      sender-signed value for [k] (the sender adopts its own queued value);
    - round [3k-1] ({e copy round}): everyone sends a signed copy of its
      adopted value, then holds until [t+1] matching copies are in and no
      conflicting sender-signed value has been seen — a correct process
      that saw the sender equivocate {e never} compiles an L1 proof, which
      is the crux the unidirectional round guarantees;
    - round [3k] ({e L1 round}): send the signed L1 proof (t+1 copies);
      hold for [t+1] valid L1 proofs;
    - round [3k+1]: send the L2 proof (t+1 L1 proofs) and deliver.

    A process that obtains a valid L2 proof by any path delivers immediately
    (the paper's [maybeDeliver]) and forwards the proof once, then advances
    through empty rounds to catch up with the schedule — L2 proofs are
    self-contained, so delivery never depends on having adopted a value.

    Safety intuition, as in the paper: two conflicting L1 proofs would need
    two correct processes to copy different values in the same copy round
    and both miss each other's copy — impossible under unidirectionality;
    an L2 proof contains [t+1] L1 proofs, hence at least one from a correct
    process, so conflicting L2 proofs cannot exist and delivered prefixes
    agree. *)

type t

val create :
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  sender:int ->
  faults:int ->
  t
(** [faults] is the bound [t] of the paper; soundness needs [n ≥ 2t+1]. *)

val broadcast : t -> string -> unit
(** Queue a value for broadcast (meaningful at the sender; the [k]-th queued
    value becomes sequence number [k]).  [Obs.Srb_broadcast] is emitted when
    the value enters the round schedule. *)

val app : t -> Thc_rounds.Round_app.app
(** The round app to install under a unidirectional round driver.
    [Obs.Srb_delivered] is emitted at each delivery. *)

val delivered : t -> (int * string) list
(** Deliveries so far, ascending — what the trace also records. *)

val equivocation_payloads :
  ident:Thc_crypto.Keyring.secret -> k:int -> string -> string -> string * string
(** Byzantine-sender helper for the adversarial experiments: two round
    payloads, each carrying a sender-signed value plus the sender's own copy
    for one of two {e conflicting} values at index [k].  A Byzantine sender
    publishes both (e.g. appends both to its SWMR register) to attempt
    equivocation; the safety tests assert that no conflicting deliveries
    result. *)
