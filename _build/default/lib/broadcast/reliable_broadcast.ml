type msg =
  | Init of { tag : int; value : string }
  | Echo of { tag : int; value : string }
  | Ready of { tag : int; value : string }

let pp_msg ppf = function
  | Init { tag; _ } -> Format.fprintf ppf "init#%d" tag
  | Echo { tag; _ } -> Format.fprintf ppf "echo#%d" tag
  | Ready { tag; _ } -> Format.fprintf ppf "ready#%d" tag

(* Per-instance (per broadcast tag) state. *)
type instance = {
  echoes : (int, string) Hashtbl.t;  (* pid -> echoed value *)
  readies : (int, string) Hashtbl.t;
  mutable echoed : bool;
  mutable readied : bool;
  mutable delivered : bool;
}

type t = {
  n : int;
  f : int;
  self : int;
  sender : int;
  instances : (int, instance) Hashtbl.t;
}

let create ~n ~f ~self ~sender =
  if n <= 3 * f then invalid_arg "Reliable_broadcast.create: needs n > 3f";
  { n; f; self; sender; instances = Hashtbl.create 8 }

let instance t tag =
  match Hashtbl.find_opt t.instances tag with
  | Some i -> i
  | None ->
    let i =
      {
        echoes = Hashtbl.create 8;
        readies = Hashtbl.create 8;
        echoed = false;
        readied = false;
        delivered = false;
      }
    in
    Hashtbl.add t.instances tag i;
    i

let count_value tbl value =
  Hashtbl.fold
    (fun _ v acc -> if String.equal v value then acc + 1 else acc)
    tbl 0

(* ⌈(n + f + 1) / 2⌉ — any two echo quorums intersect in ≥ f+1 processes. *)
let echo_quorum t = (t.n + t.f + 2) / 2

let progress t (ctx : msg Thc_sim.Engine.ctx) tag value =
  let i = instance t tag in
  if (not i.readied) && count_value i.echoes value >= echo_quorum t then begin
    i.readied <- true;
    ctx.broadcast (Ready { tag; value })
  end;
  if (not i.readied) && count_value i.readies value >= t.f + 1 then begin
    i.readied <- true;
    ctx.broadcast (Ready { tag; value })
  end;
  if (not i.delivered) && count_value i.readies value >= (2 * t.f) + 1 then begin
    i.delivered <- true;
    ctx.output (Thc_sim.Obs.Rb_delivered { sender = t.sender; value })
  end

let behavior t ~broadcast_plan : msg Thc_sim.Engine.behavior =
  let plan = Array.of_list broadcast_plan in
  {
    init =
      (fun ctx ->
        if t.self = t.sender then
          Array.iteri (fun i (delay, _) -> ctx.set_timer ~delay ~tag:i) plan);
    on_message =
      (fun ctx ~src m ->
        match m with
        | Init { tag; value } ->
          if src = t.sender then begin
            let i = instance t tag in
            if not i.echoed then begin
              i.echoed <- true;
              ctx.broadcast (Echo { tag; value })
            end
          end
        | Echo { tag; value } ->
          let i = instance t tag in
          if not (Hashtbl.mem i.echoes src) then begin
            Hashtbl.replace i.echoes src value;
            progress t ctx tag value
          end
        | Ready { tag; value } ->
          let i = instance t tag in
          if not (Hashtbl.mem i.readies src) then begin
            Hashtbl.replace i.readies src value;
            progress t ctx tag value
          end);
    on_timer =
      (fun ctx tag ->
        if t.self = t.sender && tag >= 0 && tag < Array.length plan then begin
          let _, value = plan.(tag) in
          ctx.output (Thc_sim.Obs.Srb_broadcast { seq = tag + 1; value });
          ctx.broadcast (Init { tag; value })
        end);
  }
