type hub = { sender : int; mutable entries : string list (* newest first *) }

type wire = { sender : int; seq : int; value : string }

let hub ~sender = { sender; entries = [] }

let sender (h : hub) = h.sender

let broadcast h value =
  h.entries <- value :: h.entries;
  { sender = h.sender; seq = List.length h.entries; value }

let log h = List.mapi (fun i v -> (i + 1, v)) (List.rev h.entries)

let genuine (h : hub) (w : wire) =
  w.sender = h.sender
  &&
  let len = List.length h.entries in
  w.seq >= 1 && w.seq <= len
  && String.equal (List.nth h.entries (len - w.seq)) w.value

module Rx = struct
  type t = {
    hub : hub;
    seen : (int, string) Hashtbl.t;  (* genuine wires received, by seq *)
    mutable next : int;  (* next seq to deliver *)
  }

  let create hub = { hub; seen = Hashtbl.create 16; next = 1 }

  let receive t (w : wire) =
    if not (genuine t.hub w) then `Bogus
    else if Hashtbl.mem t.seen w.seq then `Stale
    else begin
      Hashtbl.add t.seen w.seq w.value;
      let deliveries = ref [] in
      let rec drain () =
        match Hashtbl.find_opt t.seen t.next with
        | Some v ->
          deliveries := (t.next, v) :: !deliveries;
          t.next <- t.next + 1;
          drain ()
        | None -> ()
      in
      drain ();
      `Fresh (List.rev !deliveries)
    end

  let delivered_upto t = t.next - 1
end
