type val_msg = { k : int; value : string; ssig : Thc_crypto.Signature.t }

type copy_msg = { cv : val_msg; by : Thc_crypto.Signature.t }

type l1_msg = {
  l1k : int;
  l1value : string;
  copies : copy_msg list;
  l1by : Thc_crypto.Signature.t;
}

type l2_msg = {
  l2k : int;
  l2value : string;
  proofs : l1_msg list;
  l2by : Thc_crypto.Signature.t;
}

type item = Val of val_msg | Copy of copy_msg | L1 of l1_msg | L2 of l2_msg

type phase = Await_val | Await_copies | Await_l1s

type t = {
  keyring : Thc_crypto.Keyring.t;
  ident : Thc_crypto.Keyring.secret;
  sender : int;
  faults : int;
  self : int;
  mutable next : int;  (* next sequence number to deliver (the paper's next_p) *)
  mutable phase : phase;
  mutable my_val : val_msg option;  (* adopted value for index [next] *)
  mutable conflict : bool;  (* sender equivocation witnessed for [next] *)
  copies : (int, copy_msg) Hashtbl.t;  (* by copier, matching my_val *)
  l1s : (int, l1_msg) Hashtbl.t;  (* by creator, matching my_val *)
  val_buffer : (int, val_msg) Hashtbl.t;  (* first adopted value per k *)
  conflict_k : (int, unit) Hashtbl.t;  (* ks with witnessed equivocation *)
  l2_store : (int, l2_msg) Hashtbl.t;  (* first valid L2 per k *)
  mutable outbox : item list;  (* forwards riding the next advance *)
  queue : string Queue.t;  (* sender: values not yet scheduled, FIFO *)
  mutable scheduled : int;  (* sender: number of values entered in schedule *)
  mutable deliveries : (int * string) list;  (* newest first *)
}

let create ~keyring ~ident ~sender ~faults =
  {
    keyring;
    ident;
    sender;
    faults;
    self = Thc_crypto.Keyring.pid_of_secret ident;
    next = 1;
    phase = Await_val;
    my_val = None;
    conflict = false;
    copies = Hashtbl.create 16;
    l1s = Hashtbl.create 16;
    val_buffer = Hashtbl.create 16;
    conflict_k = Hashtbl.create 4;
    l2_store = Hashtbl.create 16;
    outbox = [];
    queue = Queue.create ();
    scheduled = 0;
    deliveries = [];
  }

let broadcast t value = Queue.push value t.queue

let delivered t = List.rev t.deliveries

(* Round schedule: value round, copy round, L1 round for index k. *)
let val_round k = (3 * k) - 2

let copy_round k = (3 * k) - 1

let l1_round k = 3 * k

(* --- validation ------------------------------------------------------- *)

let val_ok t (v : val_msg) =
  v.ssig.signer = t.sender
  && Thc_crypto.Signature.verify_value t.keyring v.ssig (v.k, v.value)

let copy_ok t (c : copy_msg) =
  val_ok t c.cv
  && Thc_crypto.Signature.verify_value t.keyring c.by
       ("copy", c.cv.k, c.cv.value)

let distinct_signers sigs =
  List.sort_uniq compare (List.map (fun (s : Thc_crypto.Signature.t) -> s.signer) sigs)

let l1_ok t (p : l1_msg) =
  Thc_crypto.Signature.verify_value t.keyring p.l1by
    ("l1", p.l1k, p.l1value, Thc_crypto.Digest.of_value p.copies)
  &&
  let good =
    List.filter
      (fun (c : copy_msg) ->
        c.cv.k = p.l1k && String.equal c.cv.value p.l1value && copy_ok t c)
      p.copies
  in
  List.length (distinct_signers (List.map (fun c -> c.by) good)) >= t.faults + 1

let l2_ok t (p : l2_msg) =
  Thc_crypto.Signature.verify_value t.keyring p.l2by
    ("l2", p.l2k, p.l2value, Thc_crypto.Digest.of_value p.proofs)
  &&
  let good =
    List.filter
      (fun (q : l1_msg) ->
        q.l1k = p.l2k && String.equal q.l1value p.l2value && l1_ok t q)
      p.proofs
  in
  List.length (distinct_signers (List.map (fun q -> q.l1by) good))
  >= t.faults + 1

(* --- state updates on incoming items ----------------------------------- *)

(* Witnessing a sender-signed value for index k: adopt the first, flag any
   conflicting second. *)
let witness_val t (v : val_msg) =
  if val_ok t v then begin
    match Hashtbl.find_opt t.val_buffer v.k with
    | None -> Hashtbl.replace t.val_buffer v.k v
    | Some first ->
      if not (String.equal first.value v.value) then
        Hashtbl.replace t.conflict_k v.k ()
  end

(* Re-sync the per-index working state from the buffers (called when [next]
   or the buffers change). *)
let refresh t =
  (match t.my_val with
  | None ->
    (match Hashtbl.find_opt t.val_buffer t.next with
    | Some v -> t.my_val <- Some v
    | None -> ())
  | Some _ -> ());
  if Hashtbl.mem t.conflict_k t.next then t.conflict <- true

let matches_mine t ~k ~value =
  k = t.next
  && match t.my_val with Some v -> String.equal v.value value | None -> false

let absorb_item t (it : item) =
  match it with
  | Val v -> witness_val t v
  | Copy c ->
    if copy_ok t c then begin
      witness_val t c.cv;
      if matches_mine t ~k:c.cv.k ~value:c.cv.value then
        if not (Hashtbl.mem t.copies c.by.signer) then
          Hashtbl.replace t.copies c.by.signer c
    end
  | L1 p ->
    if l1_ok t p then begin
      List.iter (fun (c : copy_msg) -> witness_val t c.cv) p.copies;
      if matches_mine t ~k:p.l1k ~value:p.l1value then
        if not (Hashtbl.mem t.l1s p.l1by.signer) then
          Hashtbl.replace t.l1s p.l1by.signer p
    end
  | L2 p ->
    if (not (Hashtbl.mem t.l2_store p.l2k)) && l2_ok t p then
      Hashtbl.replace t.l2_store p.l2k p

(* --- delivery ----------------------------------------------------------- *)

let reset_index_state t =
  t.my_val <- None;
  t.conflict <- false;
  Hashtbl.reset t.copies;
  Hashtbl.reset t.l1s

let rec maybe_deliver t (h : Thc_rounds.Round_app.handle) =
  match Hashtbl.find_opt t.l2_store t.next with
  | None -> ()
  | Some l2 ->
    t.deliveries <- (t.next, l2.l2value) :: t.deliveries;
    h.output
      (Thc_sim.Obs.Srb_delivered
         { sender = t.sender; seq = t.next; value = l2.l2value });
    t.outbox <- L2 l2 :: t.outbox;
    t.next <- t.next + 1;
    t.phase <- Await_val;
    reset_index_state t;
    refresh t;
    maybe_deliver t h

(* --- the round app ------------------------------------------------------ *)

let encode_items items = Thc_util.Codec.encode (items : item list)

let decode_items payload =
  match (Thc_util.Codec.decode payload : item list) with
  | items -> items
  | exception _ -> []

let take_outbox t =
  let items = t.outbox in
  t.outbox <- [];
  items

(* Advance with the given role items plus any queued forwards. *)
let advance t items =
  match items @ take_outbox t with
  | [] -> Thc_rounds.Round_app.Advance None
  | payload -> Thc_rounds.Round_app.Advance (Some (encode_items payload))

let make_copy t (v : val_msg) =
  {
    cv = v;
    by = Thc_crypto.Signature.sign_value t.ident ("copy", v.k, v.value);
  }

let on_round_check t (h : Thc_rounds.Round_app.handle) ~round =
  refresh t;
  maybe_deliver t h;
  let k = t.next in
  match t.phase with
  | Await_val ->
    if round < val_round k then advance t []
    else begin
      (* Sitting in the value round of k. *)
      if t.self = t.sender && t.my_val = None && t.scheduled < k then begin
        match Queue.take_opt t.queue with
        | None -> ()
        | Some value ->
          t.scheduled <- t.scheduled + 1;
          assert (t.scheduled = k);
          let v =
            {
              k;
              value;
              ssig = Thc_crypto.Signature.sign_value t.ident (k, value);
            }
          in
          h.output (Thc_sim.Obs.Srb_broadcast { seq = k; value });
          witness_val t v;
          refresh t
      end;
      match t.my_val with
      | None -> Thc_rounds.Round_app.Hold
      | Some v ->
        (* Enter the copy round, sending (for the sender) the value itself
           and (for everyone) the signed copy. *)
        let copy = make_copy t v in
        Hashtbl.replace t.copies t.self copy;
        t.phase <- Await_copies;
        let role = if t.self = t.sender then [ Val v; Copy copy ] else [ Copy copy ] in
        advance t role
    end
  | Await_copies ->
    if round < copy_round k then advance t []
    else if t.conflict then Thc_rounds.Round_app.Hold
    else if Hashtbl.length t.copies >= t.faults + 1 then begin
      match t.my_val with
      | None -> Thc_rounds.Round_app.Hold
      | Some v ->
        let copies = Hashtbl.fold (fun _ c acc -> c :: acc) t.copies [] in
        let l1 =
          {
            l1k = k;
            l1value = v.value;
            copies;
            l1by =
              Thc_crypto.Signature.sign_value t.ident
                ("l1", k, v.value, Thc_crypto.Digest.of_value copies);
          }
        in
        Hashtbl.replace t.l1s t.self l1;
        t.phase <- Await_l1s;
        advance t [ L1 l1 ]
    end
    else Thc_rounds.Round_app.Hold
  | Await_l1s ->
    if round < l1_round k then advance t []
    else if t.conflict then Thc_rounds.Round_app.Hold
    else if Hashtbl.length t.l1s >= t.faults + 1 then begin
      match t.my_val with
      | None -> Thc_rounds.Round_app.Hold
      | Some v ->
        let proofs = Hashtbl.fold (fun _ p acc -> p :: acc) t.l1s [] in
        let l2 =
          {
            l2k = k;
            l2value = v.value;
            proofs;
            l2by =
              Thc_crypto.Signature.sign_value t.ident
                ("l2", k, v.value, Thc_crypto.Digest.of_value proofs);
          }
        in
        if not (Hashtbl.mem t.l2_store k) then Hashtbl.replace t.l2_store k l2;
        (* Delivery queues the L2 forward into the outbox, so it is sent
           exactly once on this advance. *)
        maybe_deliver t h;
        advance t []
    end
    else Thc_rounds.Round_app.Hold

let app t : Thc_rounds.Round_app.app =
  {
    first_payload = (fun _ -> None);
    on_receive =
      (fun _ ~round:_ ~from:_ payload ->
        List.iter (absorb_item t) (decode_items payload);
        refresh t);
    on_round_check = (fun h ~round -> on_round_check t h ~round);
  }

let equivocation_payloads ~ident ~k v1 v2 =
  let mk value =
    let v = { k; value; ssig = Thc_crypto.Signature.sign_value ident (k, value) } in
    encode_items [ Val v; Copy { cv = v; by = Thc_crypto.Signature.sign_value ident ("copy", k, value) } ]
  in
  (mk v1, mk v2)
