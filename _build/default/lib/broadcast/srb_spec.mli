(** Sequenced reliable broadcast: the specification as a trace monitor.

    The paper's Definition (Sequenced Reliable Broadcast) lists four
    properties of deliveries from a designated sender [p]; this module
    checks each on a finished execution trace, using the
    [Obs.Srb_broadcast] / [Obs.Srb_delivered] observations that every SRB
    implementation in the repository emits.

    "Eventually" clauses are judged at the end of the trace, so positive
    experiments must run executions to quiescence (healing any temporary
    partition first — the asynchronous model obliges eventual delivery). *)

type violation = {
  property : [ `Validity | `Totality | `Sequencing | `Integrity | `Agreement ];
  info : string;
}
(** [`Validity] — property 1: a correct sender's broadcast was not delivered
    by some correct process.
    [`Totality] — property 2: some correct process delivered [(k, m)] but
    another correct process did not.
    [`Sequencing] — property 3: a correct process delivered sequence numbers
    out of order / with gaps.
    [`Integrity] — property 4: a delivery from a correct sender that the
    sender never broadcast.
    [`Agreement] — two correct processes delivered different values at one
    sequence number (implied by totality; reported separately for sharper
    diagnostics). *)

val pp_violation : Format.formatter -> violation -> unit

val check : 'm Thc_sim.Trace.t -> sender:int -> violation list
(** All violations of the four properties (plus agreement) for deliveries
    attributed to [sender].  Empty list = the execution satisfies SRB. *)

val deliveries : 'm Thc_sim.Trace.t -> sender:int -> pid:int -> (int * string) list
(** [(seq, value)] deliveries from [sender] at [pid], in delivery order. *)

val broadcasts : 'm Thc_sim.Trace.t -> sender:int -> (int * string) list
(** [(seq, value)] the sender handed to broadcast, in order. *)
