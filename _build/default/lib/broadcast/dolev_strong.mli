(** Dolev–Strong Byzantine broadcast under bidirectional rounds (n ≥ f+1).

    The classical authenticated broadcast the paper invokes to place
    bidirectionality strictly above unidirectionality ("Using Dolev-Strong,
    we know that Byzantine broadcast can be solved with bidirectional
    communication with n ≥ f+1"): f+1 lock-step rounds of signature-chain
    relaying.

    A {e chain} on value [v] is a list of signatures from distinct
    processes, the first being the designated sender's, each signing the
    chain prefix before it.  A correct process {e extracts} [v] upon a valid
    chain of length ≥ its current round; newly extracted values are
    re-signed and relayed in the next round.  After round f+1, a process
    commits the single extracted value, or ⊥ if it extracted zero or more
    than one.

    Agreement: a value extracted by a correct process in round r ≤ f gets
    relayed with a longer chain, reaching everyone by round f+1; a chain of
    length f+1 contains a correct signer, who must have relayed it to all.
    Run as a {!Thc_rounds.Round_app} over {!Thc_rounds.Sync_rounds}
    (bidirectional); running it over a merely unidirectional driver is
    exactly what the separation experiments show to fail. *)

type t

val create :
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  sender:int ->
  f:int ->
  input:string option ->
  t

val app : t -> Thc_rounds.Round_app.app
(** Commits ([Obs.Decided]) at the end of round f+1 and stops. *)

val committed : t -> string option option

(** {2 Instance-level API}

    {!Thc_agreement.Strong_validity} multiplexes [n] broadcast instances
    (one per designated sender) over a single bidirectional round driver;
    these hooks expose one instance's per-round steps. *)

type chain
(** A signature chain in flight (serializable). *)

val initial_chain : t -> chain option
(** The sender's round-1 chain over its input (non-sender: [None]).
    Extraction of the own value is recorded. *)

val on_chains : t -> round:int -> chain list -> unit
(** Feed chains received in the given round (validated internally). *)

val relay : t -> chain list
(** Newly extracted chains to relay next round (clears the queue). *)

val conclude : t -> string option
(** Decide after round f+1: the single extracted value or [None] (⊥). *)
