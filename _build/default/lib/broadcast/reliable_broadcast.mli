(** Bracha-style reliable broadcast over plain asynchronous message passing
    (n > 3f).

    The baseline non-equivocation mechanism that needs {e no} trusted
    hardware — at the cost of the 3f+1 replication bound the whole
    trusted-hardware line of work exists to beat.  Standard three-phase
    structure: the sender sends [Init v]; processes echo; on a quorum of
    [⌈(n+f+1)/2⌉] echoes (or [f+1] readies) a process sends [Ready v]; on
    [2f+1] readies it delivers [v] (emitting [Obs.Rb_delivered]).

    Used as the reference implementation of the "reliable broadcast"
    primitive in the Worlds 1–5 separation (experiment A2) and to compare
    message complexity against the trusted-log SRB in the benches. *)

type msg

type t

val create : n:int -> f:int -> self:int -> sender:int -> t
(** Requires [n > 3 * f]. *)

val behavior :
  t -> broadcast_plan:(int64 * string) list -> msg Thc_sim.Engine.behavior
(** The planned values are broadcast only if this process is the designated
    sender; each instance value is tagged with its plan index so one
    behavior carries multiple sequential broadcasts. *)

val pp_msg : Format.formatter -> msg -> unit
