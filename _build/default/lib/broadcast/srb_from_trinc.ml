type msg = Attested of Thc_hardware.Trinc.attestation

let pp_msg ppf (Attested a) =
  Format.fprintf ppf "attested(p%d,c%d)" a.owner a.counter

type chain = {
  pending : (int, Thc_hardware.Trinc.attestation) Hashtbl.t;
      (* counter -> attestation, validated, not yet delivered *)
  mutable last_delivered : int;  (* counter of last delivered attestation *)
  mutable delivered_seq : int;  (* SRB sequence number = chain position *)
  seen : (int, unit) Hashtbl.t;  (* counters already processed (echo dedup) *)
}

type t = {
  world : Thc_hardware.Trinc.world;
  trinket : Thc_hardware.Trinc.t option;
  self : int;
  chains : chain array;
}

let create ~world ~trinket ~n ~self =
  {
    world;
    trinket;
    self;
    chains =
      Array.init n (fun _ ->
          {
            pending = Hashtbl.create 8;
            last_delivered = 0;
            delivered_seq = 0;
            seen = Hashtbl.create 8;
          });
  }

let broadcast t value =
  match t.trinket with
  | None -> invalid_arg "Srb_from_trinc.broadcast: no trinket"
  | Some trinket ->
    let counter = Thc_hardware.Trinc.last_counter trinket + 1 in
    (match Thc_hardware.Trinc.attest trinket ~counter ~message:value with
    | Some a -> Attested a
    | None -> assert false (* last_counter + 1 is always attestable *))

(* Validate an incoming attestation; if fresh, absorb it into the sender's
   chain and return the in-order deliveries it unlocks. *)
let absorb t (a : Thc_hardware.Trinc.attestation) =
  if
    a.owner < 0
    || a.owner >= Array.length t.chains
    || not (Thc_hardware.Trinc.check t.world a ~id:a.owner)
  then `Bogus
  else begin
    let chain = t.chains.(a.owner) in
    if Hashtbl.mem chain.seen a.counter then `Stale
    else begin
      Hashtbl.replace chain.seen a.counter ();
      (* Only dense-chain attestations ([prev = counter - 1]) can deliver.
         A trinket never reuses a counter, so the dense chain from 0 is
         unique: every correct receiver reconstructs the same sequence.
         Gapped attestations are Byzantine games; they are echoed (uniform
         treatment) but never delivered by anyone. *)
      if a.prev <> a.counter - 1 then `Fresh []
      else begin
        Hashtbl.replace chain.pending a.counter a;
        let deliveries = ref [] in
        let rec drain () =
          match Hashtbl.find_opt chain.pending (chain.last_delivered + 1) with
          | Some link ->
            Hashtbl.remove chain.pending link.counter;
            chain.last_delivered <- link.counter;
            chain.delivered_seq <- chain.delivered_seq + 1;
            deliveries := (chain.delivered_seq, link.message) :: !deliveries;
            drain ()
          | None -> ()
        in
        drain ();
        `Fresh (List.rev !deliveries)
      end
    end
  end

let behavior t ~broadcast_plan : msg Thc_sim.Engine.behavior =
  let plan = Array.of_list broadcast_plan in
  {
    init =
      (fun ctx ->
        Array.iteri (fun i (delay, _) -> ctx.set_timer ~delay ~tag:i) plan);
    on_message =
      (fun ctx ~src:_ (Attested a) ->
        match absorb t a with
        | `Bogus | `Stale -> ()
        | `Fresh deliveries ->
          ctx.broadcast (Attested a);
          List.iter
            (fun (seq, value) ->
              ctx.output
                (Thc_sim.Obs.Srb_delivered { sender = a.owner; seq; value }))
            deliveries);
    on_timer =
      (fun ctx tag ->
        if tag >= 0 && tag < Array.length plan then begin
          let _, value = plan.(tag) in
          let (Attested a) = broadcast t value in
          ctx.output (Thc_sim.Obs.Srb_broadcast { seq = a.counter; value });
          ctx.broadcast (Attested a)
        end);
  }

let wire_of_attestation a = Attested a
