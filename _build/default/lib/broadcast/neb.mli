(** Non-equivocating broadcast from unidirectional rounds (n ≥ f+1).

    The paper's conjecture section gives this algorithm and proof sketch:

    {v
    sender s with input v:  send (v, σ_s) to all
    process p: upon receipt of (v, s): send (v, s) to all;
               wait until end of round;
               if received (v', s) with v' ≠ v: commit ⊥ else commit v
    v}

    Agreement relies only on unidirectionality: if correct [p] commits
    [v ≠ ⊥], then any correct [q] either delivered [p]'s forwarded copy of
    [v] or [p] delivered [q]'s — either way [q] saw [v], so [q] commits [v]
    or ⊥, never a different value.  Validity: a correct sender signs one
    value only, so no conflicting signed value can exist.

    Run as a {!Thc_rounds.Round_app} in two scheduled rounds: round 1 the
    sender publishes its signed input (everyone else participates silently);
    round 2 every process that received the value forwards it; commitment
    happens when round 2 ends.  [Obs.Decided] carries the committed value
    ([None] = ⊥). *)

type t

val create :
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  sender:int ->
  input:string option ->
  t
(** [input] is the sender's value (ignored at other processes). *)

val app : t -> Thc_rounds.Round_app.app

val committed : t -> string option option
(** [None] = not committed yet; [Some None] = ⊥; [Some (Some v)]. *)

val equivocation_payloads :
  ident:Thc_crypto.Keyring.secret -> string -> string -> string * string
(** Byzantine-sender helper for tests: two round payloads, each a validly
    sender-signed value, for two conflicting values.  Publishing both lets
    the agreement-up-to-⊥ property be exercised adversarially. *)
