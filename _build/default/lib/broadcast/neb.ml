type signed_val = { value : string; ssig : Thc_crypto.Signature.t }

type t = {
  keyring : Thc_crypto.Keyring.t;
  ident : Thc_crypto.Keyring.secret;
  sender : int;
  input : string option;
  mutable seen : signed_val list;  (* distinct validly sender-signed values *)
  mutable committed : string option option;
}

let create ~keyring ~ident ~sender ~input =
  { keyring; ident; sender; input; seen = []; committed = None }

let committed t = t.committed

let valid t (sv : signed_val) =
  sv.ssig.signer = t.sender
  && Thc_crypto.Signature.verify_value t.keyring sv.ssig sv.value

let witness t sv =
  if
    valid t sv
    && not (List.exists (fun s -> String.equal s.value sv.value) t.seen)
  then t.seen <- t.seen @ [ sv ]

let self t = Thc_crypto.Keyring.pid_of_secret t.ident

let app t : Thc_rounds.Round_app.app =
  {
    first_payload =
      (fun _ ->
        match t.input with
        | Some value when self t = t.sender ->
          let sv =
            { value; ssig = Thc_crypto.Signature.sign_value t.ident value }
          in
          witness t sv;
          Some (Thc_util.Codec.encode sv)
        | Some _ | None -> None);
    on_receive =
      (fun _ ~round:_ ~from:_ payload ->
        match (Thc_util.Codec.decode payload : signed_val) with
        | sv -> witness t sv
        | exception _ -> ());
    on_round_check =
      (fun h ~round ->
        match round with
        | 1 -> (
          (* Round 2 forwards the first sender-signed value we saw. *)
          match t.seen with
          | [] -> Thc_rounds.Round_app.Hold
          | sv :: _ ->
            Thc_rounds.Round_app.Advance (Some (Thc_util.Codec.encode sv)))
        | 2 ->
          (match t.seen with
          | [ sv ] -> t.committed <- Some (Some sv.value)
          | [] | _ :: _ :: _ -> t.committed <- Some None);
          h.output (Thc_sim.Obs.Decided (Option.join t.committed));
          Thc_rounds.Round_app.Stop
        | _ -> Thc_rounds.Round_app.Stop);
  }

let equivocation_payloads ~ident v1 v2 =
  let enc value =
    Thc_util.Codec.encode
      { value; ssig = Thc_crypto.Signature.sign_value ident value }
  in
  (enc v1, enc v2)
