(** Sequenced reliable broadcast from TrInc (trusted-log ⇒ SRB direction).

    The converse of Theorem 1, standard in the trusted-hardware literature
    (A2M, TrInc, MinBFT all rest on it): a sender attests each message with
    the {e next dense} counter of its trinket and sends the attestation;
    because a trinket never re-attests a counter and every attestation
    carries [prev], the chain of attestations with [prev = counter - 1]
    starting at the trinket's origin is {e unique} — a Byzantine sender can
    fork neither values nor order.  Receivers deliver along that chain and
    echo every attestation once, so if any correct process delivers, all
    eventually do (totality under eventual delivery).

    Works for any number of faults [f < n] — the attestation is
    self-certifying, no quorums are needed — which is why trusted logs make
    such a cheap non-equivocation layer.  What they do {e not} give is
    unidirectionality: experiment C2 partitions this very protocol. *)

type msg

type t
(** Per-process protocol state (receiver chains for every sender, plus the
    trinket if this process is a sender). *)

val create :
  world:Thc_hardware.Trinc.world ->
  trinket:Thc_hardware.Trinc.t option ->
  n:int ->
  self:int ->
  t
(** [trinket] is this process's claimed trinket ([None] for a process that
    never broadcasts — e.g. when modeling receive-only replicas). *)

val broadcast : t -> string -> msg
(** Attest the next value on the local trinket and build the wire message;
    the engine behavior transmits it.  Raises [Invalid_argument] without a
    trinket. *)

val behavior :
  t -> broadcast_plan:(int64 * string) list -> msg Thc_sim.Engine.behavior
(** Canonical process: broadcasts the planned values at the planned times
    (emitting [Obs.Srb_broadcast]), validates and echoes incoming
    attestations, and emits [Obs.Srb_delivered] along each sender's dense
    chain. *)

val wire_of_attestation : Thc_hardware.Trinc.attestation -> msg
(** Wrap a raw attestation as a wire message — lets tests inject Byzantine
    traffic (gapped counters, replays) directly. *)

val pp_msg : Format.formatter -> msg -> unit
