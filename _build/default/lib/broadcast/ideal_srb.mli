(** Sequenced reliable broadcast as an assumed primitive (ideal
    functionality).

    The paper's Theorem 1 ("SRB can implement TrInc") {e assumes} an SRB
    primitive and builds on top of it, so the reproduction needs SRB-as-
    given, independent of any implementation.  This module provides it the
    way ideal functionalities are modeled: the authoritative per-sender log
    lives outside all processes (like trusted hardware), so a Byzantine
    sender physically cannot broadcast conflicting values at one sequence
    number — it can only call {!broadcast}, which appends to the one log.

    Wire delivery still travels the simulated network (the adversary keeps
    full control of timing): {!broadcast} returns a [wire] the sender's
    behavior transmits; receivers feed incoming wires to {!Rx.receive},
    which (a) rejects anything not in the authoritative log — a Byzantine
    process fabricating wires achieves nothing — and (b) buffers and
    releases deliveries in sequence order.  For the totality property,
    receivers echo every accepted wire once ({!Rx.receive} returns
    [`Fresh] so callers forward it). *)

type hub
(** The authoritative log of one sender. *)

type wire = { sender : int; seq : int; value : string }
(** A broadcast in flight.  Plain data: forwardable. *)

val hub : sender:int -> hub

val sender : hub -> int

val broadcast : hub -> string -> wire
(** Append to the authoritative log and obtain the wire to transmit.
    Sequence numbers are 1, 2, ... in call order. *)

val log : hub -> (int * string) list
(** Committed (seq, value) pairs, ascending — for monitors and tests. *)

val genuine : hub -> wire -> bool
(** Does this wire match the authoritative log? *)

module Rx : sig
  type t
  (** One receiver's view of one hub. *)

  val create : hub -> t

  val receive : t -> wire -> [ `Fresh of (int * string) list | `Stale | `Bogus ]
  (** Feed an incoming wire.  [`Bogus]: not genuine, drop.  [`Stale]: genuine
      but already seen.  [`Fresh deliveries]: newly seen; [deliveries] are
      the in-order [(seq, value)] deliveries this unlocks (possibly empty if
      a gap remains).  Callers should forward fresh wires to everyone once
      (echo) so totality holds under eventual delivery. *)

  val delivered_upto : t -> int
end
