lib/broadcast/srb_from_uni.mli: Thc_crypto Thc_rounds
