lib/broadcast/neb.ml: List Option String Thc_crypto Thc_rounds Thc_sim Thc_util
