lib/broadcast/srb_spec.mli: Format Thc_sim
