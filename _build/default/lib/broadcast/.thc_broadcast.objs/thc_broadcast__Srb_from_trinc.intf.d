lib/broadcast/srb_from_trinc.mli: Format Thc_hardware Thc_sim
