lib/broadcast/reliable_broadcast.mli: Format Thc_sim
