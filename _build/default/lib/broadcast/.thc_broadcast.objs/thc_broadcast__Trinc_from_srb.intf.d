lib/broadcast/trinc_from_srb.mli: Ideal_srb Thc_sim
