lib/broadcast/ideal_srb.ml: Hashtbl List String
