lib/broadcast/dolev_strong.ml: List Option Thc_crypto Thc_rounds Thc_sim Thc_util
