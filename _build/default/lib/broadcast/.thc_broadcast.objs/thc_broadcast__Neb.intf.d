lib/broadcast/neb.mli: Thc_crypto Thc_rounds
