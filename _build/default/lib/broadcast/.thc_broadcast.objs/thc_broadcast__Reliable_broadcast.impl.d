lib/broadcast/reliable_broadcast.ml: Array Format Hashtbl String Thc_sim
