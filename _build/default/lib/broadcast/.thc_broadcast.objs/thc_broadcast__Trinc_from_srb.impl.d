lib/broadcast/trinc_from_srb.ml: Array Hashtbl Ideal_srb List String Thc_sim Thc_util
