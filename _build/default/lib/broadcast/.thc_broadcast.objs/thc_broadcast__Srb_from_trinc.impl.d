lib/broadcast/srb_from_trinc.ml: Array Format Hashtbl List Thc_hardware Thc_sim
