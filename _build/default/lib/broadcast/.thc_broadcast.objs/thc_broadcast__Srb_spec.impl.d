lib/broadcast/srb_spec.ml: Format List Printf String Thc_sim
