lib/broadcast/ideal_srb.mli:
