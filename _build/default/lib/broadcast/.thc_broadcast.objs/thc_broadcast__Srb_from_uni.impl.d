lib/broadcast/srb_from_uni.ml: Hashtbl List Queue String Thc_crypto Thc_rounds Thc_sim Thc_util
