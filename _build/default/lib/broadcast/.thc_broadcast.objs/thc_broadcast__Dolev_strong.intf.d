lib/broadcast/dolev_strong.mli: Thc_crypto Thc_rounds
