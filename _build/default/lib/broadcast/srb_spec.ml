type violation = {
  property : [ `Validity | `Totality | `Sequencing | `Integrity | `Agreement ];
  info : string;
}

let pp_violation ppf v =
  let name =
    match v.property with
    | `Validity -> "validity"
    | `Totality -> "totality"
    | `Sequencing -> "sequencing"
    | `Integrity -> "integrity"
    | `Agreement -> "agreement"
  in
  Format.fprintf ppf "SRB %s violation: %s" name v.info

let deliveries trace ~sender ~pid =
  List.filter_map
    (fun obs ->
      match (obs : Thc_sim.Obs.t) with
      | Srb_delivered { sender = s; seq; value } when s = sender ->
        Some (seq, value)
      | _ -> None)
    (Thc_sim.Trace.outputs_of trace pid)

let broadcasts trace ~sender =
  List.filter_map
    (fun obs ->
      match (obs : Thc_sim.Obs.t) with
      | Srb_broadcast { seq; value } -> Some (seq, value)
      | _ -> None)
    (Thc_sim.Trace.outputs_of trace sender)

let check trace ~sender =
  let violations = ref [] in
  let add property info = violations := { property; info } :: !violations in
  let correct = Thc_sim.Trace.correct_pids trace in
  let sender_correct = Thc_sim.Trace.correct trace sender in
  let delivered = List.map (fun pid -> (pid, deliveries trace ~sender ~pid)) correct in
  (* Sequencing: each correct process delivers 1, 2, 3, ... in order. *)
  List.iter
    (fun (pid, ds) ->
      List.iteri
        (fun i (seq, _) ->
          if seq <> i + 1 then
            add `Sequencing
              (Printf.sprintf "p%d delivery #%d has seq %d" pid (i + 1) seq))
        ds)
    delivered;
  (* Agreement + totality: pairwise prefix consistency and equal coverage. *)
  List.iter
    (fun (p, dp) ->
      List.iter
        (fun (q, dq) ->
          if p < q then begin
            List.iter
              (fun (seq, v) ->
                match List.assoc_opt seq dq with
                | Some v' when not (String.equal v v') ->
                  add `Agreement
                    (Printf.sprintf "p%d and p%d disagree at seq %d" p q seq)
                | Some _ -> ()
                | None ->
                  add `Totality
                    (Printf.sprintf "p%d delivered seq %d but p%d did not" p seq
                       q))
              dp;
            List.iter
              (fun (seq, _) ->
                if not (List.mem_assoc seq dp) then
                  add `Totality
                    (Printf.sprintf "p%d delivered seq %d but p%d did not" q seq
                       p))
              dq
          end)
        delivered)
    delivered;
  if sender_correct then begin
    let bs = broadcasts trace ~sender in
    (* Validity: everything broadcast is delivered everywhere. *)
    List.iter
      (fun (seq, value) ->
        List.iter
          (fun (pid, ds) ->
            match List.assoc_opt seq ds with
            | Some v when String.equal v value -> ()
            | Some _ ->
              add `Validity
                (Printf.sprintf "p%d delivered a different value at seq %d" pid
                   seq)
            | None ->
              add `Validity
                (Printf.sprintf "p%d never delivered broadcast seq %d" pid seq))
          delivered)
      bs;
    (* Integrity: nothing delivered that was not broadcast. *)
    List.iter
      (fun (pid, ds) ->
        List.iter
          (fun (seq, value) ->
            match List.assoc_opt seq bs with
            | Some v when String.equal v value -> ()
            | Some _ | None ->
              add `Integrity
                (Printf.sprintf "p%d delivered (%d, ...) never broadcast by p%d"
                   pid seq sender))
          ds)
      delivered
  end;
  List.rev !violations
