let kind_counts trace ~classify =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { msg; _ } ->
        let kind = classify msg in
        Hashtbl.replace counts kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
      | _ -> ())
    trace.Trace.entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let sends_by_source trace =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { src; _ } ->
        Hashtbl.replace counts src
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts src))
      | _ -> ())
    trace.Trace.entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare

let delivery_latencies trace =
  let sent_at = Hashtbl.create 256 in
  let latencies = ref [] in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { time; seq; _ } -> Hashtbl.replace sent_at seq time
      | Trace.Delivered { time; seq; _ } ->
        (match Hashtbl.find_opt sent_at seq with
        | Some t0 ->
          latencies := Int64.to_float (Int64.sub time t0) :: !latencies
        | None -> ())
      | _ -> ())
    trace.Trace.entries;
  List.rev !latencies

let events_per_virtual_ms trace =
  let ms = Int64.to_float trace.Trace.end_time /. 1000.0 in
  if ms <= 0.0 then 0.0
  else float_of_int (List.length trace.Trace.entries) /. ms
