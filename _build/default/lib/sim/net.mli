(** Network configuration: per-directed-link delivery policy.

    The adversary of the asynchronous model is expressed as a schedule of
    reconfigurations of this structure (performed through {!Engine.at}
    scripts): a link can deliver with a sampled delay, hold messages back
    ([Block], the paper's "arbitrarily delayed"), or drop them ([Drop],
    used only on links from Byzantine processes or to model fair-loss
    experiments — correct-to-correct links must stay eventually live for
    the asynchronous model's guarantees to apply). *)

type policy =
  | Deliver of Delay.t  (** Deliver after a sampled delay. *)
  | Block
      (** Hold messages; they are queued and released when the link is later
          set back to [Deliver] (see {!Engine.set_link}). *)
  | Drop  (** Silently discard. *)

type t

val create : n:int -> default:Delay.t -> t
(** Fully connected [n]-process network; every link (including self-loops,
    which model local delivery) starts as [Deliver default]. *)

val n : t -> int

val get : t -> src:int -> dst:int -> policy

val set : t -> src:int -> dst:int -> policy -> unit

val set_from : t -> src:int -> policy -> unit
(** Set all links out of [src]. *)

val set_to : t -> dst:int -> policy -> unit
(** Set all links into [dst]. *)

val set_between : t -> group_a:int list -> group_b:int list -> policy -> unit
(** Set all links in both directions between the two groups. *)

val isolate_groups : t -> groups:int list list -> policy -> unit
(** Apply [policy] to every link whose endpoints lie in different groups.
    Processes not mentioned in any group form an implicit extra group. *)
