lib/sim/trace.ml: Format List Obs Printf String Thc_util
