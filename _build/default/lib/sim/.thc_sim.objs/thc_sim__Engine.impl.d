lib/sim/engine.ml: Array Delay Hashtbl Int64 List Net Obs Queue Thc_util Trace
