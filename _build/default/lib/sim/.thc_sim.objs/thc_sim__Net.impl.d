lib/sim/net.ml: Array Delay List
