lib/sim/adversary.ml: Array Delay Engine Format Int64 List Net String Thc_util
