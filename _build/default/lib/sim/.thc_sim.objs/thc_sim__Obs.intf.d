lib/sim/obs.mli: Format
