lib/sim/metrics.ml: Hashtbl Int64 List Option Trace
