lib/sim/engine.mli: Delay Net Obs Thc_util Trace
