lib/sim/obs.ml: Format Thc_crypto
