lib/sim/delay.ml: Float Format Int64 Thc_util
