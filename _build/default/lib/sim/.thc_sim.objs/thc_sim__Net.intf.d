lib/sim/net.mli: Delay
