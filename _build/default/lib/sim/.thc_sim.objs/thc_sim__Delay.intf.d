lib/sim/delay.mli: Format Thc_util
