lib/sim/adversary.mli: Engine Format Thc_util
