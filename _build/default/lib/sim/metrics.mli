(** Trace-level metrics for the benchmark tables.

    Message-kind breakdowns and rate summaries computed from finished
    traces; protocol libraries provide the classifier (a function from
    their wire type to a short label). *)

val kind_counts :
  'm Trace.t -> classify:('m -> string) -> (string * int) list
(** Sent messages grouped by classifier label, descending by count. *)

val sends_by_source : 'm Trace.t -> (int * int) list
(** [(pid, messages sent)] for every pid that sent anything, ascending pid. *)

val delivery_latencies : 'm Trace.t -> float list
(** Per-message µs between [Sent] and its [Delivered] (matched by engine
    sequence number); dropped/held-forever messages are excluded. *)

val events_per_virtual_ms : 'm Trace.t -> float
(** Trace entries per virtual millisecond — a load measure. *)
