type 'm entry =
  | Sent of { time : int64; src : int; dst : int; seq : int; msg : 'm }
  | Delivered of { time : int64; src : int; dst : int; seq : int; msg : 'm }
  | Held of { time : int64; src : int; dst : int; seq : int }
  | Dropped of { time : int64; src : int; dst : int; seq : int }
  | Timer_fired of { time : int64; pid : int; tag : int }
  | Crashed of { time : int64; pid : int }
  | Output of { time : int64; pid : int; obs : Obs.t }

type 'm t = {
  n : int;
  byzantine : int list;
  entries : 'm entry list;
  end_time : int64;
}

let crashed_pids t =
  List.filter_map
    (function Crashed { pid; _ } -> Some pid | _ -> None)
    t.entries

let correct t pid =
  (not (List.mem pid t.byzantine)) && not (List.mem pid (crashed_pids t))

let correct_pids t = List.filter (correct t) (List.init t.n (fun i -> i))

let outputs t =
  List.filter_map
    (function Output { time; pid; obs } -> Some (time, pid, obs) | _ -> None)
    t.entries

let outputs_of t pid =
  List.filter_map
    (function
      | Output { pid = p; obs; _ } when p = pid -> Some obs
      | _ -> None)
    t.entries

let outputs_matching t f =
  List.filter_map
    (function
      | Output { time; pid; obs } ->
        (match f pid obs with Some x -> Some (time, x) | None -> None)
      | _ -> None)
    t.entries

let decision_of t pid =
  let rec first = function
    | [] -> None
    | Obs.Decided d :: _ -> Some d
    | _ :: rest -> first rest
  in
  first (outputs_of t pid)

let reception_transcript t pid =
  List.filter_map
    (function
      | Delivered { dst; src; msg; _ } when dst = pid ->
        Some (src, Thc_util.Codec.encode msg)
      | _ -> None)
    t.entries

let full_local_view t pid =
  List.filter_map
    (function
      | Delivered { dst; src; msg; _ } when dst = pid ->
        Some (Printf.sprintf "recv:%d:%s" src (Thc_util.Codec.encode msg))
      | Timer_fired { pid = p; tag; _ } when p = pid ->
        Some (Printf.sprintf "timer:%d" tag)
      | _ -> None)
    t.entries

let count t pred = List.length (List.filter pred t.entries)

let messages_sent t = count t (function Sent _ -> true | _ -> false)

let messages_delivered t = count t (function Delivered _ -> true | _ -> false)

let pp pp_msg ppf t =
  let pp_entry ppf = function
    | Sent { time; src; dst; seq; msg } ->
      Format.fprintf ppf "%8Ld  p%d -> p%d  send#%d  %a" time src dst seq pp_msg
        msg
    | Delivered { time; src; dst; seq; msg } ->
      Format.fprintf ppf "%8Ld  p%d => p%d  dlvr#%d  %a" time src dst seq pp_msg
        msg
    | Held { time; src; dst; seq } ->
      Format.fprintf ppf "%8Ld  p%d -| p%d  held#%d" time src dst seq
    | Dropped { time; src; dst; seq } ->
      Format.fprintf ppf "%8Ld  p%d -x p%d  drop#%d" time src dst seq
    | Timer_fired { time; pid; tag } ->
      Format.fprintf ppf "%8Ld  p%d  timer %d" time pid tag
    | Crashed { time; pid } -> Format.fprintf ppf "%8Ld  p%d  CRASH" time pid
    | Output { time; pid; obs } ->
      Format.fprintf ppf "%8Ld  p%d  OUT %a" time pid Obs.pp obs
  in
  Format.fprintf ppf "@[<v>trace n=%d byz=[%s] end=%Ld@,%a@]" t.n
    (String.concat "," (List.map string_of_int t.byzantine))
    t.end_time
    (Format.pp_print_list pp_entry)
    t.entries
