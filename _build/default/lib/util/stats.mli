(** Summary statistics for experiment reporting.

    The benchmark harness reports simulated-time latencies and message
    counts; this module computes the usual aggregates over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** One-shot description of a sample set.  All fields are 0 for an empty
    sample. *)

val summarize : float list -> summary
(** Compute all aggregate fields in one pass plus a sort. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]; nearest-rank on a sorted
    array.  Raises [Invalid_argument] if the array is empty. *)

val mean : float list -> float

val stddev : float list -> float
(** Population standard deviation. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render as [n=.. mean=.. p50=.. p99=.. min=.. max=..]. *)
