type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  sorted.(idx)

let summarize xs =
  match xs with
  | [] ->
    {
      count = 0;
      mean = 0.0;
      stddev = 0.0;
      min = 0.0;
      max = 0.0;
      p50 = 0.0;
      p90 = 0.0;
      p99 = 0.0;
    }
  | _ ->
    let sorted = Array.of_list xs in
    Array.sort compare sorted;
    {
      count = Array.length sorted;
      mean = mean xs;
      stddev = stddev xs;
      min = sorted.(0);
      max = sorted.(Array.length sorted - 1);
      p50 = percentile sorted 0.5;
      p90 = percentile sorted 0.9;
      p99 = percentile sorted 0.99;
    }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f p50=%.2f p90=%.2f p99=%.2f min=%.2f max=%.2f"
    s.count s.mean s.stddev s.p50 s.p90 s.p99 s.min s.max
