type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable data : ('k * 'v) array;
  mutable size : int;
}

let create ~compare = { compare; data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.data in
  let entry = h.data.(0) in
  let data = Array.make (max 8 (2 * cap)) entry in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.compare (fst h.data.(i)) (fst h.data.(parent)) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest =
    if left < h.size && h.compare (fst h.data.(left)) (fst h.data.(i)) < 0
    then left
    else i
  in
  let smallest =
    if right < h.size
       && h.compare (fst h.data.(right)) (fst h.data.(smallest)) < 0
    then right
    else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let push h k v =
  if h.size = Array.length h.data then
    if h.size = 0 then h.data <- Array.make 8 (k, v) else grow h;
  h.data.(h.size) <- (k, v);
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let clear h =
  h.data <- [||];
  h.size <- 0

let to_sorted_list h =
  let copy =
    { compare = h.compare; data = Array.sub h.data 0 h.size; size = h.size }
  in
  (* Re-heapify not needed: [copy] shares the valid heap prefix. *)
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  drain []
