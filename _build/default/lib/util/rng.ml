type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = next_int64 g in
  create (mix64 seed)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 uniform bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let exponential g ~mean =
  let u = float g 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))
