type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  let width = List.length t.headers in
  let got = List.length row in
  if got > width then invalid_arg "Table.add_row: too many cells";
  let padded =
    if got = width then row
    else row @ List.init (width - got) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let emit_row row =
    Buffer.add_string buf "|";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf " ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ');
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  Buffer.add_string buf "|";
  Array.iter
    (fun w -> Buffer.add_string buf (String.make (w + 2) '-' ^ "|"))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)
