(** Deterministic pseudo-random number generation.

    The whole repository must be reproducible from a single seed, so every
    source of randomness goes through this module rather than [Random].  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    statistically strong, splittable generator whose determinism does not
    depend on OCaml's stdlib internals. *)

type t
(** A mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g].
    Used to give each sub-component its own stream so adding draws in one
    component does not perturb another. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (for network-delay
    sampling). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on empty arrays. *)
