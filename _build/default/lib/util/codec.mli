(** Byte-string serialization of protocol values.

    Signatures and trusted-hardware attestations bind to byte strings, so
    protocol payloads are serialized before signing and on the wire between
    layered protocols.  Uses [Marshal]; within one simulation binary this is
    deterministic and round-trips all immutable values we exchange. *)

val encode : 'a -> string
(** Serialize any value to a byte string. *)

val decode : string -> 'a
(** Deserialize.  The caller fixes the type; decoding at a wrong type on
    attacker-supplied bytes is outside the simulation's threat model (real
    systems use tagged wire formats). *)
