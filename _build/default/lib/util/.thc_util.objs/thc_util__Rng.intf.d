lib/util/rng.mli:
