lib/util/codec.mli:
