lib/util/heap.mli:
