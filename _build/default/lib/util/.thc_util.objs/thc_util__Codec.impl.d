lib/util/codec.ml: Marshal
