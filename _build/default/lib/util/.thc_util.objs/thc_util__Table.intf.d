lib/util/table.mli:
