let encode v = Marshal.to_string v []

let decode s = Marshal.from_string s 0
