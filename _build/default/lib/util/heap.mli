(** Binary min-heap priority queue.

    Backs the discrete-event simulator's event queue, so the ordering must be
    a strict total order for determinism: callers embed a tie-breaking
    sequence number in their keys. *)

type ('k, 'v) t
(** Mutable heap of values ['v] keyed by ['k]. *)

val create : compare:('k -> 'k -> int) -> ('k, 'v) t
(** [create ~compare] returns an empty heap ordered by [compare]. *)

val length : ('k, 'v) t -> int
(** Number of stored entries. *)

val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert an entry.  O(log n). *)

val peek : ('k, 'v) t -> ('k * 'v) option
(** Smallest entry without removing it. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the smallest entry.  O(log n). *)

val clear : ('k, 'v) t -> unit
(** Remove all entries. *)

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Non-destructive ascending listing (copies; O(n log n)).  For tests and
    trace dumps. *)
