(** Plain-text table rendering.

    The benchmark harness prints paper-style result tables; this renders a
    header plus rows with column-width alignment, markdown-compatible. *)

type t
(** A table under construction. *)

val create : string list -> t
(** [create headers] starts a table with the given column titles. *)

val add_row : t -> string list -> unit
(** Append a row.  Short rows are padded with empty cells; long rows raise
    [Invalid_argument]. *)

val render : t -> string
(** Render with [|]-separated aligned columns and a separator rule. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
