lib/hardware/enclave.ml: Array Int64 Thc_crypto Thc_util
