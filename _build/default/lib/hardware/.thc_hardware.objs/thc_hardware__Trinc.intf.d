lib/hardware/trinc.mli: Thc_util
