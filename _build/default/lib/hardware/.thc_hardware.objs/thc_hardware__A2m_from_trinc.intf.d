lib/hardware/a2m_from_trinc.mli: Trinc
