lib/hardware/mono_counter.mli: Thc_util
