lib/hardware/enclave.mli: Thc_util
