lib/hardware/mono_counter.ml: Array Int64 Thc_crypto Thc_util
