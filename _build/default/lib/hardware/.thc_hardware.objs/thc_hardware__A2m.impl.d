lib/hardware/a2m.ml: Array Hashtbl Int64 List Option Thc_crypto Thc_util
