lib/hardware/a2m.mli: Thc_util
