lib/hardware/a2m_from_trinc.ml: Hashtbl List Thc_util Trinc
