type problem =
  | Non_equivocating_broadcast
  | Reliable_broadcast_p
  | Byzantine_broadcast
  | Very_weak_agreement
  | Weak_validity_agreement
  | Strong_validity_agreement

type model =
  | Bidirectional_model
  | Unidirectional_model
  | Srb_model
  | Zero_model

type verdict =
  | Solvable of { resilience : string; why : Hierarchy.provenance }
  | Unsolvable of { resilience : string; why : Hierarchy.provenance }

let problem_name = function
  | Non_equivocating_broadcast -> "non-equivocating broadcast"
  | Reliable_broadcast_p -> "reliable broadcast"
  | Byzantine_broadcast -> "Byzantine broadcast"
  | Very_weak_agreement -> "very weak agreement"
  | Weak_validity_agreement -> "weak validity agreement"
  | Strong_validity_agreement -> "strong validity agreement"

let model_name = function
  | Bidirectional_model -> "bidirectional"
  | Unidirectional_model -> "unidirectional"
  | Srb_model -> "SRB / trusted logs"
  | Zero_model -> "asynchrony"

let solvable resilience why = Solvable { resilience; why }

let unsolvable resilience why = Unsolvable { resilience; why }

let matrix =
  [
    (* --- non-equivocating broadcast ------------------------------------ *)
    ( Non_equivocating_broadcast,
      Unidirectional_model,
      solvable "n >= f+1" (Witness "neb-from-uni") );
    ( Non_equivocating_broadcast,
      Bidirectional_model,
      solvable "n >= f+1" (Definition : Hierarchy.provenance) );
    ( Non_equivocating_broadcast,
      Srb_model,
      solvable "any n" (Citation "RB delivery is already non-equivocating") );
    ( Non_equivocating_broadcast,
      Zero_model,
      unsolvable "n <= 3f"
        (Citation
           "asynchronous message passing cannot prevent equivocation (paper \
            sketch; Clement et al. 2012)") );
    (* --- reliable broadcast --------------------------------------------- *)
    ( Reliable_broadcast_p,
      Srb_model,
      solvable "any n" (Definition : Hierarchy.provenance) );
    ( Reliable_broadcast_p,
      Unidirectional_model,
      solvable "n >= 2f+1" (Witness "srb-from-uni") );
    ( Reliable_broadcast_p,
      Bidirectional_model,
      solvable "n >= f+1" (Citation "Dolev-Strong gives even Byzantine broadcast") );
    ( Reliable_broadcast_p,
      Zero_model,
      solvable "n > 3f" (Witness "rb-bracha") );
    ( Reliable_broadcast_p,
      Zero_model,
      unsolvable "n <= 3f" (Citation "Bracha 1987 lower bound") );
    (* --- Byzantine broadcast --------------------------------------------- *)
    ( Byzantine_broadcast,
      Bidirectional_model,
      solvable "n >= f+1" (Witness "bb-dolev-strong") );
    ( Byzantine_broadcast,
      Unidirectional_model,
      unsolvable "n <= 3f"
        (Citation
           "termination for a silent sender forces deciding without the \
            sender; strong-agreement bound applies (Malkhi et al. 2003)") );
    ( Byzantine_broadcast,
      Srb_model,
      unsolvable "n <= 3f" (Citation "weaker than unidirectionality") );
    ( Byzantine_broadcast,
      Zero_model,
      unsolvable "any f > 0 (deterministic)" (Citation "FLP 1985") );
    (* --- very weak agreement ---------------------------------------------- *)
    ( Very_weak_agreement,
      Unidirectional_model,
      solvable "n > f" (Witness "very-weak-from-uni") );
    ( Very_weak_agreement,
      Bidirectional_model,
      solvable "n > f" (Definition : Hierarchy.provenance) );
    ( Very_weak_agreement,
      Srb_model,
      unsolvable "n <= 2f" (Witness "sep:rb-cannot-very-weak") );
    ( Very_weak_agreement,
      Zero_model,
      unsolvable "n <= 2f" (Citation "weaker than reliable broadcast") );
    (* --- weak validity agreement ------------------------------------------ *)
    ( Weak_validity_agreement,
      Srb_model,
      solvable "n >= 2f+1 (partial synchrony)" (Witness "weak-validity-minbft") );
    ( Weak_validity_agreement,
      Unidirectional_model,
      solvable "n >= 2f+1 (partial synchrony)"
        (Citation "via the uni => SRB => TrInc reductions (Algorithm 1 + Thm 1)") );
    ( Weak_validity_agreement,
      Unidirectional_model,
      unsolvable "f >= n/2" (Citation "paper Worlds 1-4 partition argument") );
    ( Weak_validity_agreement,
      Bidirectional_model,
      solvable "n >= f+1" (Citation "designated-sender Dolev-Strong") );
    ( Weak_validity_agreement,
      Zero_model,
      unsolvable "n <= 3f" (Citation "DLS 1988") );
    (* --- strong validity agreement ----------------------------------------- *)
    ( Strong_validity_agreement,
      Bidirectional_model,
      solvable "n >= 2f+1" (Witness "strong-from-bidirectional") );
    ( Strong_validity_agreement,
      Unidirectional_model,
      unsolvable "n <= 3f"
        (Citation "Malkhi et al. 2003; paper claim (read/write registers)") );
    ( Strong_validity_agreement,
      Srb_model,
      unsolvable "n <= 3f" (Citation "weaker than unidirectionality") );
    ( Strong_validity_agreement,
      Zero_model,
      unsolvable "n <= 3f" (Citation "classic bound (Dwork et al.)") );
  ]

let cell problem model =
  List.filter_map
    (fun (p, m, v) -> if p = problem && m = model then Some v else None)
    matrix

let render () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Problem capabilities per communication model (paper: Problems \
     Considered)\n\n";
  let t =
    Thc_util.Table.create [ "problem"; "model"; "verdict"; "provenance" ]
  in
  List.iter
    (fun (p, m, v) ->
      let verdict, why =
        match v with
        | Solvable { resilience; why } ->
          (Printf.sprintf "solvable, %s" resilience, why)
        | Unsolvable { resilience; why } ->
          (Printf.sprintf "UNSOLVABLE, %s" resilience, why)
      in
      let prov =
        match why with
        | Hierarchy.Witness id -> Printf.sprintf "check:%s" id
        | Hierarchy.Citation c -> Printf.sprintf "cite: %s" c
        | Hierarchy.Definition -> "by definition"
      in
      Thc_util.Table.add_row t [ problem_name p; model_name m; verdict; prov ])
    matrix;
  Buffer.add_string buf (Thc_util.Table.render t);
  Buffer.contents buf

let verify () =
  List.filter_map
    (fun (p, m, v) ->
      let label why_id =
        Printf.sprintf "%s / %s [%s]" (problem_name p) (model_name m) why_id
      in
      match v with
      | Solvable { why = Hierarchy.Witness id; _ }
      | Unsolvable { why = Hierarchy.Witness id; _ } ->
        if String.length id >= 4 && String.sub id 0 4 = "sep:" then begin
          match id with
          | "sep:rb-cannot-very-weak" ->
            let r = Separations.rb_cannot_solve_very_weak () in
            Some (label id, r.Separations.holds, r.Separations.claim)
          | "sep:srb-cannot-uni" ->
            let r = Separations.srb_cannot_implement_unidirectionality () in
            Some (label id, r.Separations.holds, r.Separations.claim)
          | _ -> Some (label id, false, "unknown separation")
        end
        else begin
          match Witnesses.by_id id with
          | Some w ->
            let passed, detail = w.Witnesses.run () in
            Some (label id, passed, detail)
          | None -> Some (label id, false, "missing witness")
        end
      | Solvable _ | Unsolvable _ -> None)
    matrix
