(** Constructive witnesses: every positive edge of Figure 1, executed.

    A witness runs the corresponding implementation in the simulator under
    adversarial scheduling and checks the target property's monitor on the
    trace.  {!Hierarchy.verify} runs them all, so "A can implement B" claims
    in the rendered figure are backed by machine-checked executions, not
    just citations. *)

type t = {
  id : string;  (** Stable identifier referenced by hierarchy edges. *)
  claim : string;  (** What the witness establishes. *)
  run : unit -> bool * string;  (** Execute; (passed, detail). *)
}

val all : t list

val by_id : string -> t option

val run_all : unit -> (t * bool * string) list
(** Execute every witness, returning outcomes in declaration order. *)
