type scenario_outcome = { label : string; ok : bool; detail : string }

type result = {
  claim : string;
  scenarios : scenario_outcome list;
  holds : bool;
}

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%s: %s@,%a@]" r.claim
    (if r.holds then "construction verified" else "FAILED")
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "  [%s] %s — %s"
           (if s.ok then "ok" else "FAIL")
           s.label s.detail))
    r.scenarios

let finish claim scenarios =
  { claim; scenarios; holds = List.for_all (fun s -> s.ok) scenarios }

(* Receive history of [pid] restricted to entries before [cutoff] — the
   window within which scenarios must be indistinguishable (healing the
   partition afterwards re-establishes eventual delivery). *)
let transcript_before (trace : 'm Thc_sim.Trace.t) ~pid ~cutoff =
  List.filter_map
    (fun entry ->
      match entry with
      | Thc_sim.Trace.Delivered { time; dst; src; msg; _ }
        when dst = pid && time < cutoff ->
        Some (src, Thc_util.Codec.encode msg)
      | _ -> None)
    trace.entries

let round_one_profile trace ~pid =
  let ended = ref false in
  let received_from = ref [] in
  List.iter
    (fun obs ->
      match (obs : Thc_sim.Obs.t) with
      | Round_ended { round = 1 } -> ended := true
      | Round_received { round = 1; from; _ } ->
        received_from := from :: !received_from
      | _ -> ())
    (Thc_sim.Trace.outputs_of trace pid);
  (!ended, !received_from)

(* One-round "send your input, then stop" app: the minimal round protocol
   the directionality definitions quantify over. *)
let one_round_app pid : Thc_rounds.Round_app.app =
  {
    first_payload = (fun _ -> Some (Printf.sprintf "input-%d" pid));
    on_receive = (fun _ ~round:_ ~from:_ _ -> ());
    on_round_check = (fun _ ~round:_ -> Thc_rounds.Round_app.Stop);
  }

let heal_time = 1_000_000L

let fast = Thc_sim.Delay.Const 10L

(* Run async (zero-directional) rounds under a link/crash configuration. *)
let run_async_rounds ~n ~f ~seed ~configure =
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Async_rounds.behavior ~f (one_round_app pid))
  done;
  configure engine;
  Thc_sim.Engine.at engine heal_time (fun () ->
      Thc_sim.Engine.heal_all engine fast);
  Thc_sim.Engine.run ~until:2_000_000L engine

let block_from engine ~sources ~targets =
  List.iter
    (fun src ->
      List.iter
        (fun dst -> Thc_sim.Engine.set_link engine ~src ~dst Thc_sim.Net.Block)
        targets)
    sources

let srb_cannot_implement_unidirectionality ?(n = 7) ?(f = 3) ?(seed = 1L) () =
  if n <= 2 * f || f <= 1 then
    invalid_arg "srb_cannot_implement_unidirectionality: needs n > 2f, f > 1";
  let c1 = [ 0 ] in
  let c2 = List.init (f - 1) (fun i -> i + 1) in
  let q = List.init (n - f) (fun i -> i + f) in
  let others_of group = List.filter (fun p -> not (List.mem p group)) (List.init n (fun i -> i)) in
  (* Scenario 1: C1 crashed; C2 -> Q delayed. *)
  let t1 =
    run_async_rounds ~n ~f ~seed ~configure:(fun engine ->
        Thc_sim.Engine.mark_byzantine engine 0;
        Thc_sim.Engine.schedule_crash engine ~pid:0 ~at:0L;
        block_from engine ~sources:c2 ~targets:q)
  in
  (* Scenario 2: C2 crashed; C1 -> Q delayed. *)
  let t2 =
    run_async_rounds ~n ~f ~seed ~configure:(fun engine ->
        List.iter
          (fun pid ->
            Thc_sim.Engine.mark_byzantine engine pid;
            Thc_sim.Engine.schedule_crash engine ~pid ~at:0L)
          c2;
        block_from engine ~sources:c1 ~targets:q)
  in
  (* Scenario 3: nobody faulty; everything out of C1 and C2 delayed. *)
  let t3 =
    run_async_rounds ~n ~f ~seed ~configure:(fun engine ->
        block_from engine ~sources:c1 ~targets:(others_of c1);
        block_from engine ~sources:c2 ~targets:(others_of c2))
  in
  let s1 =
    let ok =
      List.for_all
        (fun pid ->
          let ended, from = round_one_profile t1 ~pid in
          ended && not (List.exists (fun p -> List.mem p c1) from))
        c2
    in
    {
      label = "scenario 1";
      ok;
      detail = "C2 finishes its round without any message from C1";
    }
  in
  let s2 =
    let ok =
      List.for_all
        (fun pid ->
          let ended, from = round_one_profile t2 ~pid in
          ended && not (List.exists (fun p -> List.mem p c2) from))
        c1
    in
    {
      label = "scenario 2";
      ok;
      detail = "C1 finishes its round without any message from C2";
    }
  in
  let s3 =
    let violations = Thc_rounds.Directionality.check_unidirectional t3 in
    let cross v =
      (List.mem v.Thc_rounds.Directionality.p c1
      && List.mem v.Thc_rounds.Directionality.q c2)
      || (List.mem v.Thc_rounds.Directionality.p c2
         && List.mem v.Thc_rounds.Directionality.q c1)
    in
    {
      label = "scenario 3";
      ok = List.exists cross violations;
      detail =
        Printf.sprintf
          "no faults, yet %d unidirectionality violation(s) across C1/C2"
          (List.length (List.filter cross violations));
    }
  in
  let same group ta tb =
    List.for_all
      (fun pid ->
        transcript_before ta ~pid ~cutoff:heal_time
        = transcript_before tb ~pid ~cutoff:heal_time)
      group
  in
  let indist =
    {
      label = "indistinguishability";
      ok = same q t1 t3 && same q t2 t3 && same c1 t2 t3 && same c2 t1 t3;
      detail =
        "Q cannot tell any scenario apart; C1 matches 2≡3; C2 matches 1≡3";
    }
  in
  finish
    "SRB cannot implement unidirectionality (n > 2f, f > 1)"
    [ s1; s2; s3; indist ]

let rb_cannot_solve_very_weak ?(n = 6) ?(seed = 2L) () =
  if n mod 2 <> 0 || n < 4 then
    invalid_arg "rb_cannot_solve_very_weak: needs even n >= 4";
  let f = n / 2 in
  let p_group = List.init f (fun i -> i) in
  let q_group = List.init f (fun i -> i + f) in
  let run ~inputs ~configure =
    let net = Thc_sim.Net.create ~n ~default:fast in
    let engine = Thc_sim.Engine.create ~seed ~n ~net () in
    let states =
      Array.init n (fun pid -> Thc_agreement.Very_weak.create ~input:inputs.(pid))
    in
    Array.iteri
      (fun pid st ->
        Thc_sim.Engine.set_behavior engine pid
          (Thc_rounds.Async_rounds.behavior ~f
             (Thc_agreement.Very_weak.app st)))
      states;
    configure engine;
    Thc_sim.Engine.at engine heal_time (fun () ->
        Thc_sim.Engine.heal_all engine fast);
    Thc_sim.Engine.run ~until:2_000_000L engine
  in
  let partition engine =
    Thc_sim.Net.isolate_groups
      (Thc_sim.Engine.net engine)
      ~groups:[ p_group; q_group ] Thc_sim.Net.Block
  in
  let zeros = Array.make n "0" in
  let ones = Array.make n "1" in
  let mixed = Array.init n (fun pid -> if pid < f then "0" else "1") in
  let t2 = run ~inputs:zeros ~configure:partition in
  let t4 = run ~inputs:ones ~configure:partition in
  let t5 = run ~inputs:mixed ~configure:partition in
  let decided trace group value =
    List.for_all
      (fun pid ->
        match Thc_sim.Trace.decision_of trace pid with
        | Some (Some v) -> String.equal v value
        | Some None | None -> false)
      group
  in
  let w2 =
    {
      label = "world 2";
      ok = decided t2 p_group "0" && decided t2 q_group "0";
      detail = "all inputs 0, partitioned: everyone decides 0 (validity)";
    }
  in
  let w4 =
    {
      label = "world 4";
      ok = decided t4 p_group "1" && decided t4 q_group "1";
      detail = "all inputs 1, partitioned: everyone decides 1 (validity)";
    }
  in
  let w5 =
    let inputs = mixed in
    let violations =
      Thc_agreement.Agreement_spec.check `Very_weak
        ~inputs:(Array.map (fun v -> Some v) inputs)
        t5
    in
    let has_agreement_violation =
      List.exists
        (fun v -> v.Thc_agreement.Agreement_spec.property = `Agreement)
        violations
    in
    {
      label = "world 5";
      ok = decided t5 p_group "0" && decided t5 q_group "1" && has_agreement_violation;
      detail = "mixed inputs: P decides 0, Q decides 1 — agreement broken";
    }
  in
  let same group ta tb =
    List.for_all
      (fun pid ->
        transcript_before ta ~pid ~cutoff:heal_time
        = transcript_before tb ~pid ~cutoff:heal_time)
      group
  in
  let indist =
    {
      label = "indistinguishability";
      ok = same p_group t2 t5 && same q_group t4 t5;
      detail = "P cannot tell world 5 from world 2; Q from world 4";
    }
  in
  finish
    "reliable broadcast cannot solve very weak agreement (n <= 2f)"
    [ w2; w4; w5; indist ]

let delta_wait_below_delta_not_unidirectional ?(n = 4) ?(seed = 3L) () =
  (* Δ = 1000µs; rounds close after wait = 300µs < Δ.  Cross-pair (0, 1)
     messages take the full Δ; everything else is fast. *)
  let delta = 1_000L in
  let wait = 300L in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Const 50L) in
  Thc_sim.Net.set net ~src:0 ~dst:1 (Thc_sim.Net.Deliver (Thc_sim.Delay.Const delta));
  Thc_sim.Net.set net ~src:1 ~dst:0 (Thc_sim.Net.Deliver (Thc_sim.Delay.Const delta));
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Delta_rounds.behavior ~wait (one_round_app pid))
  done;
  let trace = Thc_sim.Engine.run ~until:1_000_000L engine in
  let violations = Thc_rounds.Directionality.check_unidirectional trace in
  let cross =
    List.filter
      (fun v ->
        (v.Thc_rounds.Directionality.p, v.Thc_rounds.Directionality.q) = (0, 1))
      violations
  in
  finish "delta-rounds with wait < delta are not unidirectional"
    [
      {
        label = "slow cross pair";
        ok = cross <> [];
        detail =
          Printf.sprintf
            "pair (0,1) with delay=Δ both closed early: %d violation(s)"
            (List.length cross);
      };
    ]
