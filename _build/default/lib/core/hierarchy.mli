(** Figure 1: the implication graph over non-equivocation mechanisms.

    Nodes are {!Mechanism.t}; a directed edge A → B means "A can implement
    B".  Every edge carries provenance: a {!Witnesses} id (machine-checked
    construction in this repository), a citation (established result the
    paper builds on), or [Definition] (immediate from the definitions).
    Separations are recorded non-edges with the side conditions under which
    they hold; {!consistent} checks that the transitive closure contradicts
    no separation, and {!verify} additionally executes every witness.

    {!figure1} renders the paper's summary-of-results figure; {!to_dot}
    emits Graphviz. *)

type provenance =
  | Witness of string  (** Id in {!Witnesses.all}. *)
  | Citation of string
  | Definition

type edge = {
  src : Mechanism.t;
  dst : Mechanism.t;
  provenance : provenance;
  condition : string option;  (** e.g. ["n >= 2t+1"] or ["f = 1, n >= 3"]. *)
}

type separation = {
  stronger : Mechanism.t;  (** The side that cannot be implemented... *)
  weaker : Mechanism.t;  (** ... from this side. *)
  why : provenance;  (** {!Separations} construction or citation. *)
  side_condition : string;
}

type t

val paper : t
(** The graph asserted by the paper (plus the reductions it relies on). *)

val edges : t -> edge list

val separations : t -> separation list

val implements : t -> Mechanism.t -> Mechanism.t -> bool
(** Reachability in the {e unconditional} edge set (conditional edges such
    as the f = 1 corner case are excluded from the closure). *)

val closure : t -> (Mechanism.t * Mechanism.t) list
(** All unconditionally derivable "A implements B" pairs, A ≠ B. *)

val consistent : t -> (string list, string list) Stdlib.result
(** [Ok notes] if no separation is contradicted by the closure and every
    witness id referenced by an edge exists; [Error problems] otherwise. *)

val verify : t -> (string * bool * string) list
(** Run every witness referenced by the graph; [(edge label, passed,
    detail)]. *)

val same_class_pairs : t -> (Mechanism.t * Mechanism.t) list
(** Pairs proven inter-reachable (equivalent power) by the closure. *)

val figure1 : t -> string
(** ASCII rendering of the summary of results. *)

val to_dot : t -> string
