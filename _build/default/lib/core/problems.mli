(** The paper's "Problems Considered" section as an executable capability
    matrix.

    The paper defines three broadcast problems (non-equivocating, reliable,
    Byzantine) and three agreement problems (very weak, weak validity,
    strong validity), and separates the communication models by which
    problems each can solve at which resilience.  This module records the
    full matrix with per-cell provenance — a {!Witnesses} id when the
    positive construction runs in this repository, a {!Separations}
    scenario when the impossibility construction runs, or a citation — and
    can execute every machine-checkable cell.

    The matrix is the problem-level face of Figure 1: e.g. very weak
    agreement is what separates unidirectionality (solvable, n > f) from
    the SRB class (unsolvable, n ≤ 2f). *)

type problem =
  | Non_equivocating_broadcast
  | Reliable_broadcast_p
  | Byzantine_broadcast
  | Very_weak_agreement
  | Weak_validity_agreement
  | Strong_validity_agreement

type model =
  | Bidirectional_model
  | Unidirectional_model
  | Srb_model  (** Trusted logs / reliable-broadcast class. *)
  | Zero_model  (** Plain asynchrony. *)

type verdict =
  | Solvable of { resilience : string; why : Hierarchy.provenance }
  | Unsolvable of { resilience : string; why : Hierarchy.provenance }

val problem_name : problem -> string
val model_name : model -> string

val matrix : (problem * model * verdict) list
(** Every (problem, model) cell the paper pins down. *)

val cell : problem -> model -> verdict list
(** All verdicts recorded for one cell (a cell may carry both a solvable
    bound and an unsolvable bound, e.g. weak validity under
    unidirectionality: solvable n ≥ 2f+1, unsolvable f ≥ n/2). *)

val render : unit -> string
(** Markdown-ish table of the full matrix. *)

val verify : unit -> (string * bool * string) list
(** Execute every witness- or scenario-backed cell. *)
