lib/core/mechanism.ml: Format List Stdlib String
