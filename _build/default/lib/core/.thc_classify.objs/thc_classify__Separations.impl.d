lib/core/separations.ml: Array Format List Printf String Thc_agreement Thc_rounds Thc_sim Thc_util
