lib/core/problems.mli: Hierarchy
