lib/core/hierarchy.ml: Buffer List Mechanism Option Printf Separations String Witnesses
