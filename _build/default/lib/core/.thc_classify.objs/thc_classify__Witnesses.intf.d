lib/core/witnesses.mli:
