lib/core/separations.mli: Format
