lib/core/witnesses.ml: Array Int64 List Printf String Thc_agreement Thc_broadcast Thc_crypto Thc_hardware Thc_replication Thc_rounds Thc_sharedmem Thc_sim Thc_util
