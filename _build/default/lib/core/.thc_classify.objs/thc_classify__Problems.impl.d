lib/core/problems.ml: Buffer Hierarchy List Printf Separations String Thc_util Witnesses
