lib/core/hierarchy.mli: Mechanism Stdlib
