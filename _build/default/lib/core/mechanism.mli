(** The taxonomy of non-equivocation mechanisms and communication models
    classified by the paper. *)

type t =
  | Lockstep_synchrony  (** Bidirectional rounds (classic synchrony). *)
  | Delta_synchrony  (** Known message bound Δ, unsynchronized clocks. *)
  | Bidirectionality  (** The round property itself. *)
  | Unidirectionality  (** The paper's new round property. *)
  | Zero_directionality  (** Plain asynchrony's round property. *)
  | Swmr_registers  (** Single-writer multi-reader registers (RDMA-style). *)
  | Sticky_bits  (** Write-once registers. *)
  | Peats  (** Policy-enforced augmented tuple spaces. *)
  | Srb  (** Sequenced reliable broadcast. *)
  | Reliable_broadcast
  | Trinc  (** Trusted incrementer. *)
  | A2m  (** Attested append-only memory. *)
  | Enclave  (** SGX/TrustZone-style attested execution. *)
  | Mono_counter  (** TPM-style attested monotonic counter. *)
  | Asynchrony  (** Bare asynchronous message passing. *)

val all : t list

type klass =
  | Synchrony_class  (** Strictly above everything else. *)
  | Shared_memory_class  (** The unidirectional class. *)
  | Trusted_log_class  (** The SRB / message-passing class. *)
  | Baseline_class  (** Plain asynchrony. *)

val klass : t -> klass
(** The paper's partition of the taxonomy. *)

val name : t -> string
val of_name : string -> t option
val describe : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
