type t =
  | Lockstep_synchrony
  | Delta_synchrony
  | Bidirectionality
  | Unidirectionality
  | Zero_directionality
  | Swmr_registers
  | Sticky_bits
  | Peats
  | Srb
  | Reliable_broadcast
  | Trinc
  | A2m
  | Enclave
  | Mono_counter
  | Asynchrony

let all =
  [
    Lockstep_synchrony;
    Delta_synchrony;
    Bidirectionality;
    Unidirectionality;
    Zero_directionality;
    Swmr_registers;
    Sticky_bits;
    Peats;
    Srb;
    Reliable_broadcast;
    Trinc;
    A2m;
    Enclave;
    Mono_counter;
    Asynchrony;
  ]

type klass =
  | Synchrony_class
  | Shared_memory_class
  | Trusted_log_class
  | Baseline_class

let klass = function
  | Lockstep_synchrony | Bidirectionality -> Synchrony_class
  | Delta_synchrony | Unidirectionality | Swmr_registers | Sticky_bits | Peats
    ->
    Shared_memory_class
  | Srb | Reliable_broadcast | Trinc | A2m | Enclave | Mono_counter ->
    Trusted_log_class
  | Zero_directionality | Asynchrony -> Baseline_class

let name = function
  | Lockstep_synchrony -> "lockstep-synchrony"
  | Delta_synchrony -> "delta-synchrony"
  | Bidirectionality -> "bidirectionality"
  | Unidirectionality -> "unidirectionality"
  | Zero_directionality -> "zero-directionality"
  | Swmr_registers -> "swmr-registers"
  | Sticky_bits -> "sticky-bits"
  | Peats -> "peats"
  | Srb -> "srb"
  | Reliable_broadcast -> "reliable-broadcast"
  | Trinc -> "trinc"
  | A2m -> "a2m"
  | Enclave -> "enclave"
  | Mono_counter -> "mono-counter"
  | Asynchrony -> "asynchrony"

let of_name s = List.find_opt (fun m -> String.equal (name m) s) all

let describe = function
  | Lockstep_synchrony -> "globally aligned rounds with in-round delivery"
  | Delta_synchrony -> "known delay bound, unsynchronized round starts"
  | Bidirectionality -> "both directions of every correct pair heard per round"
  | Unidirectionality -> "at least one direction of every correct pair heard per round"
  | Zero_directionality -> "no pairwise guarantee; only n-f messages per round"
  | Swmr_registers -> "single-writer multi-reader registers with ACLs"
  | Sticky_bits -> "write-once registers with ACLs"
  | Peats -> "policy-enforced augmented tuple spaces"
  | Srb -> "sequenced reliable broadcast"
  | Reliable_broadcast -> "reliable broadcast"
  | Trinc -> "trusted incrementer (attested monotone counter with bindings)"
  | A2m -> "attested append-only memory (trusted logs)"
  | Enclave -> "attested deterministic execution (SGX/TrustZone)"
  | Mono_counter -> "bare attested monotonic counter"
  | Asynchrony -> "plain asynchronous message passing"

let pp ppf m = Format.pp_print_string ppf (name m)

let compare a b = Stdlib.compare a b

let equal a b = a = b
