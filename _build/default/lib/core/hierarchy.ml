type provenance = Witness of string | Citation of string | Definition

type edge = {
  src : Mechanism.t;
  dst : Mechanism.t;
  provenance : provenance;
  condition : string option;
}

type separation = {
  stronger : Mechanism.t;
  weaker : Mechanism.t;
  why : provenance;
  side_condition : string;
}

type t = { edges : edge list; separations : separation list }

let edge ?condition src dst provenance = { src; dst; provenance; condition }

let paper =
  let open Mechanism in
  {
    edges =
      [
        (* Synchrony class. *)
        edge Lockstep_synchrony Bidirectionality Definition;
        edge Bidirectionality Lockstep_synchrony Definition;
        edge Bidirectionality Unidirectionality Definition;
        edge Delta_synchrony Lockstep_synchrony
          (Citation "clock synchronization (Dolev et al. 1995)")
          ~condition:"synchronized clocks";
        (* Shared-memory class: each primitive implements unidirectional
           rounds (paper section 3.2). *)
        edge Swmr_registers Unidirectionality (Witness "uni-from-swmr");
        edge Sticky_bits Unidirectionality (Witness "uni-from-sticky");
        edge Peats Unidirectionality (Witness "uni-from-peats");
        edge Delta_synchrony Unidirectionality (Witness "delta-uni");
        (* The bridge: unidirectionality implements SRB (Algorithm 1). *)
        edge Unidirectionality Srb (Witness "srb-from-uni")
          ~condition:"n >= 2t+1";
        (* Trusted-log class: all mutually reducible. *)
        edge Srb Trinc (Witness "trinc-from-srb");
        edge Trinc Srb (Witness "srb-from-trinc");
        edge Trinc A2m (Witness "a2m-from-trinc");
        edge A2m Trinc
          (Citation "Levin et al. 2009 (A2M exposes a TrInc per log)");
        edge Enclave Trinc (Witness "trinc-from-enclave");
        edge Trinc Mono_counter Definition;
        edge Mono_counter Trinc
          (Citation "dense-counter TrInc = attested monotonic counter");
        edge Srb Reliable_broadcast Definition;
        (* The corner case: RB implements unidirectionality iff f = 1. *)
        edge Reliable_broadcast Unidirectionality (Witness "uni-from-rb-f1")
          ~condition:"f = 1, n >= 3";
        (* Baseline. *)
        edge Reliable_broadcast Asynchrony Definition;
        edge Asynchrony Zero_directionality Definition;
        edge Zero_directionality Asynchrony Definition;
        edge Unidirectionality Zero_directionality Definition;
        edge Asynchrony Reliable_broadcast (Citation "Bracha 1987")
          ~condition:"n > 3f";
      ];
    separations =
      [
        {
          stronger = Unidirectionality;
          weaker = Srb;
          why = Witness "sep:srb-cannot-uni";
          side_condition = "n > 2f, f > 1";
        };
        {
          stronger = Unidirectionality;
          weaker = Reliable_broadcast;
          why = Witness "sep:rb-cannot-very-weak";
          side_condition = "n <= 2f (very weak agreement witness problem)";
        };
        {
          stronger = Bidirectionality;
          weaker = Unidirectionality;
          why =
            Citation
              "strong validity agreement unsolvable with n <= 3f under \
               unidirectionality (Malkhi et al. 2003; paper claim), yet \
               solvable with n >= 2f+1 under synchrony (Dolev-Strong)";
          side_condition = "n <= 3f";
        };
        {
          stronger = Reliable_broadcast;
          weaker = Asynchrony;
          why = Citation "Bracha 1987 lower bound";
          side_condition = "n <= 3f";
        };
      ];
  }

let edges t = t.edges

let separations t = t.separations

let reachable ~use_conditional t src dst =
  let next m =
    List.filter_map
      (fun e ->
        if
          Mechanism.equal e.src m
          && (use_conditional || Option.is_none e.condition)
        then Some e.dst
        else None)
      t.edges
  in
  let rec go visited = function
    | [] -> false
    | m :: rest ->
      if Mechanism.equal m dst then true
      else if List.exists (Mechanism.equal m) visited then go visited rest
      else go (m :: visited) (next m @ rest)
  in
  go [] [ src ]

let implements t src dst =
  (not (Mechanism.equal src dst)) && reachable ~use_conditional:false t src dst

let closure t =
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if implements t src dst then Some (src, dst) else None)
        Mechanism.all)
    Mechanism.all

let run_separation_scenario id =
  match id with
  | "sep:srb-cannot-uni" ->
    let r = Separations.srb_cannot_implement_unidirectionality () in
    (r.Separations.holds, r.Separations.claim)
  | "sep:rb-cannot-very-weak" ->
    let r = Separations.rb_cannot_solve_very_weak () in
    (r.Separations.holds, r.Separations.claim)
  | _ -> (false, Printf.sprintf "unknown separation scenario %s" id)

let known_separations = [ "sep:srb-cannot-uni"; "sep:rb-cannot-very-weak" ]

let witness_exists id =
  if String.length id >= 4 && String.sub id 0 4 = "sep:" then
    List.mem id known_separations
  else Option.is_some (Witnesses.by_id id)

let consistent t =
  let problems = ref [] in
  let notes = ref [] in
  List.iter
    (fun s ->
      (* A separation is contradicted only by an unconditional path. *)
      if reachable ~use_conditional:false t s.weaker s.stronger then
        problems :=
          Printf.sprintf "separation %s -x-> %s contradicted unconditionally"
            (Mechanism.name s.weaker) (Mechanism.name s.stronger)
          :: !problems
      else if reachable ~use_conditional:true t s.weaker s.stronger then
        notes :=
          Printf.sprintf
            "%s can reach %s only through side conditions (e.g. the f=1 \
             corner case) — consistent with the separation under %s"
            (Mechanism.name s.weaker) (Mechanism.name s.stronger)
            s.side_condition
          :: !notes)
    t.separations;
  List.iter
    (fun e ->
      match e.provenance with
      | Witness id when not (witness_exists id) ->
        problems :=
          Printf.sprintf "edge %s -> %s references unknown witness %s"
            (Mechanism.name e.src) (Mechanism.name e.dst) id
          :: !problems
      | Witness _ | Citation _ | Definition -> ())
    t.edges;
  if !problems = [] then Ok (List.rev !notes) else Error (List.rev !problems)

let verify t =
  let of_edge e =
    match e.provenance with
    | Witness id when not (String.length id >= 4 && String.sub id 0 4 = "sep:")
      -> (
      match Witnesses.by_id id with
      | Some w ->
        let passed, detail = w.Witnesses.run () in
        Some
          ( Printf.sprintf "%s -> %s [%s]" (Mechanism.name e.src)
              (Mechanism.name e.dst) id,
            passed,
            detail )
      | None ->
        Some
          ( Printf.sprintf "%s -> %s" (Mechanism.name e.src)
              (Mechanism.name e.dst),
            false,
            "missing witness " ^ id ))
    | Witness _ | Citation _ | Definition -> None
  in
  let edge_results = List.filter_map of_edge t.edges in
  let sep_results =
    List.filter_map
      (fun s ->
        match s.why with
        | Witness id when String.length id >= 4 && String.sub id 0 4 = "sep:"
          ->
          let passed, detail = run_separation_scenario id in
          Some
            ( Printf.sprintf "%s -x-> %s [%s]" (Mechanism.name s.weaker)
                (Mechanism.name s.stronger) id,
              passed,
              detail )
        | Witness _ | Citation _ | Definition -> None)
      t.separations
  in
  edge_results @ sep_results

let same_class_pairs t =
  let pairs = closure t in
  List.filter
    (fun (a, b) ->
      Mechanism.compare a b < 0 && List.mem (b, a) pairs && List.mem (a, b) pairs)
    pairs

let figure1 t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Summary of results (paper Figure 1): A --> B means A can implement B\n\
     =====================================================================\n\n\
    \           lockstep synchrony  <==>  bidirectional rounds\n\
    \                              |\n\
    \                              |  strict (strong validity agreement,\n\
    \                              v          n <= 3f)\n\
    \  SWMR registers ---\\\n\
    \  sticky bits -------+---->  UNIDIRECTIONAL ROUNDS  <--- delta-synchrony\n\
    \  PEATS ------------/         |           ^               (wait >= delta)\n\
    \                    n>=2t+1   |           |  only f = 1, n >= 3\n\
    \                              v           |  (strict otherwise:\n\
    \                              |           |   scenarios 1-3)\n\
    \        trusted logs:   SRB <==> TrInc <==> A2M, enclave, counter\n\
    \                              |\n\
    \                              |  strict (very weak agreement, n <= 2f)\n\
    \                              v\n\
    \           zero-directional rounds  <==>  asynchrony\n\n";
  Buffer.add_string buf "Edges:\n";
  List.iter
    (fun e ->
      let prov =
        match e.provenance with
        | Witness id -> Printf.sprintf "witness:%s" id
        | Citation c -> Printf.sprintf "cite: %s" c
        | Definition -> "by definition"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-20s --> %-20s %s%s\n" (Mechanism.name e.src)
           (Mechanism.name e.dst) prov
           (match e.condition with
           | Some c -> Printf.sprintf "  [%s]" c
           | None -> "")))
    t.edges;
  Buffer.add_string buf "\nSeparations (weaker -x-> stronger):\n";
  List.iter
    (fun s ->
      let prov =
        match s.why with
        | Witness id -> Printf.sprintf "scenario:%s" id
        | Citation c -> Printf.sprintf "cite: %s" c
        | Definition -> "by definition"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-20s -x-> %-20s %s  [%s]\n"
           (Mechanism.name s.weaker) (Mechanism.name s.stronger) prov
           s.side_condition))
    t.separations;
  Buffer.contents buf

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph hierarchy {\n  rankdir=BT;\n";
  List.iter
    (fun m ->
      let color =
        match Mechanism.klass m with
        | Mechanism.Synchrony_class -> "lightblue"
        | Mechanism.Shared_memory_class -> "palegreen"
        | Mechanism.Trusted_log_class -> "khaki"
        | Mechanism.Baseline_class -> "lightgray"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" [style=filled, fillcolor=%s];\n" (Mechanism.name m) color))
    Mechanism.all;
  List.iter
    (fun e ->
      let style =
        match e.condition with None -> "solid" | Some _ -> "dashed"
      in
      let label =
        match e.condition with Some c -> c | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [style=%s, label=\"%s\"];\n"
           (Mechanism.name e.src) (Mechanism.name e.dst) style label))
    t.edges;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" -> \"%s\" [color=red, style=dotted, label=\"X %s\"];\n"
           (Mechanism.name s.weaker)
           (Mechanism.name s.stronger)
           s.side_condition))
    t.separations;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
