(** Executable forms of the paper's impossibility arguments.

    An impossibility proof cannot be "run" in general — it quantifies over
    all protocols — but its {e construction} can: each function below builds
    the exact adversarial scenarios of the corresponding proof, executes
    them against the canonical protocol the argument applies to, and checks
    (a) every scenario produces the behaviour the proof claims and (b) the
    indistinguishability relations between scenarios hold on the recorded
    local transcripts.  Together these certify that the argument's engine —
    the schedule construction — is real, not merely asserted. *)

type scenario_outcome = {
  label : string;
  ok : bool;
  detail : string;
}

type result = {
  claim : string;
  scenarios : scenario_outcome list;
  holds : bool;  (** All scenario outcomes ok. *)
}

val pp_result : Format.formatter -> result -> unit

val srb_cannot_implement_unidirectionality :
  ?n:int -> ?f:int -> ?seed:int64 -> unit -> result
(** Paper §4.1 (experiment C2): Scenarios 1–3 against zero-directional
    rounds over eventually-delivering channels — the round structure
    available to any SRB-based protocol, since SRB adds non-equivocation
    but no delivery timing.  Requires [n > 2f], [f > 1] (defaults 7, 3).

    Scenario 1 ([C1] = one crashed process, [C2 → Q] delayed): the [C2]
    processes finish the round without hearing [C1].
    Scenario 2 ([C2] = f−1 crashed, [C1 → Q] delayed): [C1] finishes
    without hearing [C2].
    Scenario 3 (nobody faulty, all messages out of [C1] and [C2] delayed):
    indistinguishable to each group from the scenario where the other was
    faulty — both finish, neither hears the other: a unidirectionality
    violation between correct processes.

    Transcript checks: [Q]'s receive histories agree across all three
    scenarios; [C1]'s agree between 2 and 3; [C2]'s agree between 1 and 3. *)

val rb_cannot_solve_very_weak : ?n:int -> ?seed:int64 -> unit -> result
(** Paper appendix claim (experiment A2): reliable broadcast cannot solve
    very weak Byzantine agreement with [n ≤ 2f] — the classic partition
    argument, Worlds 2/4/5 executed with [f = n/2] ([n] even, default 6):
    half-partitions decide their own input by validity + termination
    (Worlds 2 and 4), so the mixed-input World 5 decides inconsistently.
    Transcript checks: [P] cannot tell World 5 from World 2, [Q] cannot
    tell it from World 4. *)

val delta_wait_below_delta_not_unidirectional :
  ?n:int -> ?seed:int64 -> unit -> result
(** Paper "old stuff" note (experiment S2's negative half): Δ-synchronous
    rounds closing after [wait < Δ] admit schedules violating
    unidirectionality; the scenario delays one cross pair by ~Δ and lets
    both close early. *)
