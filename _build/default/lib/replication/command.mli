(** Client requests and replies shared by both replication protocols. *)

type request = {
  client : int;  (** Client pid (also the signer). *)
  rid : int;  (** Client-local request id. *)
  op : string;  (** Encoded {!Kv_store.op}. *)
}

type signed_request = request Thc_crypto.Signature.signed

val make :
  ident:Thc_crypto.Keyring.secret -> rid:int -> Kv_store.op -> signed_request

val valid : Thc_crypto.Keyring.t -> signed_request -> bool
(** Signature verifies and the signer is the request's client. *)

val digest : request -> int64
(** Binding digest used in votes/certificates. *)

val key : request -> int * int
(** Dedup key [(client, rid)]. *)

val pp : Format.formatter -> request -> unit

type reply = { replica : int; rid : int; result : string }
(** A replica's response; clients wait for matching replies from a quorum. *)

module Collector : sig
  type t
  (** Client-side reply matching: a request is complete when [quorum]
      replicas returned the same result for its [rid]. *)

  val create : quorum:int -> t

  val add : t -> reply -> string option
  (** [Some result] the first time [rid] reaches a quorum of matching
      results; [None] otherwise. *)

  val completed : t -> rid:int -> bool
end
