lib/replication/ablation.ml: Attested_link Command Format Hashtbl Kv_store List Minbft Smr_spec Thc_crypto Thc_hardware Thc_sim Thc_util
