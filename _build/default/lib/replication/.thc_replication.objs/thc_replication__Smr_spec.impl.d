lib/replication/smr_spec.ml: Format Int64 List Printf String Thc_sim
