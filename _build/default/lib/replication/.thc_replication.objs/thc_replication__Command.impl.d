lib/replication/command.ml: Format Hashtbl Kv_store List Option String Thc_crypto
