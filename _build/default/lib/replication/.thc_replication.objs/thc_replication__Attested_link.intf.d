lib/replication/attested_link.mli: Thc_hardware
