lib/replication/kv_store.ml: Format Hashtbl Int64 Thc_crypto Thc_util
