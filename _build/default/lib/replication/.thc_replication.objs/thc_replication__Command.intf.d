lib/replication/command.mli: Format Kv_store Thc_crypto
