lib/replication/harness.mli: Format Kv_store Smr_spec Thc_sim Thc_util
