lib/replication/pbft.ml: Client_core Command Format Hashtbl Int64 Kv_store List Option Thc_crypto Thc_sim
