lib/replication/minbft.mli: Attested_link Command Format Kv_store Thc_crypto Thc_hardware Thc_sim
