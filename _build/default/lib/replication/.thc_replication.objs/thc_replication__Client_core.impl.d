lib/replication/client_core.ml: Array Command Hashtbl Int64 Thc_sim
