lib/replication/kv_store.mli: Format
