lib/replication/minbft.ml: Attested_link Client_core Command Format Hashtbl Int64 Kv_store List Thc_crypto Thc_hardware Thc_sim Thc_util
