lib/replication/harness.ml: Array Format Int64 Kv_store List Minbft Pbft Printf Smr_spec Thc_crypto Thc_hardware Thc_sim Thc_util
