lib/replication/pbft.mli: Format Kv_store Thc_crypto Thc_sim
