lib/replication/attested_link.ml: Array Hashtbl List Thc_hardware
