lib/replication/ablation.mli: Format Smr_spec
