lib/replication/smr_spec.mli: Format Thc_sim
