lib/replication/client_core.mli: Command Kv_store Thc_crypto Thc_sim
