(** Safety/liveness monitors for the replicated state machines.

    Judged on [Obs.Executed] / [Obs.Client_done] observations, uniformly for
    {!Minbft} and {!Pbft}. *)

type violation = { property : [ `Order | `Result | `Liveness ]; info : string }
(** [`Order] — two correct replicas executed different operations at one
    sequence number; [`Result] — same op, different results (state machine
    divergence); [`Liveness] — an expected client request never completed. *)

val pp_violation : Format.formatter -> violation -> unit

val check_safety : 'm Thc_sim.Trace.t -> replicas:int -> violation list
(** Pairwise execution-prefix consistency across correct replicas
    (pids [0 .. replicas-1]). *)

val check_liveness :
  'm Thc_sim.Trace.t -> clients:int list -> expected:int -> violation list
(** Every client pid in [clients] completed requests [0 .. expected-1]. *)

val client_latencies : 'm Thc_sim.Trace.t -> float list
(** All [Client_done] latencies, µs. *)

val executed_count : 'm Thc_sim.Trace.t -> pid:int -> int
