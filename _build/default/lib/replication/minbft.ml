type config = {
  n : int;
  f : int;
  request_timeout : int64;
  check_interval : int64;
}

let default_config ~f =
  {
    n = (2 * f) + 1;
    f;
    request_timeout = 30_000L;
    check_interval = 10_000L;
  }

type proto =
  | Prepare of { view : int; seq : int; request : Command.signed_request }
  | Commit of { view : int; seq : int; request : Command.signed_request }
  | Rvc of { new_view : int }
  | View_change of {
      new_view : int;
      log : Thc_hardware.Trinc.attestation list;
    }
  | New_view of {
      new_view : int;
      evidence : Thc_hardware.Trinc.attestation list;
          (* f+1 View_change attestations *)
    }

type msg =
  | Request of Command.signed_request
  | Sealed of Thc_hardware.Trinc.attestation  (* message field: encoded proto *)
  | Reply of Command.reply

let pp_msg ppf = function
  | Request sr -> Format.fprintf ppf "request(%a)" Command.pp sr.value
  | Sealed a -> Format.fprintf ppf "sealed(p%d,c%d)" a.owner a.counter
  | Reply r -> Format.fprintf ppf "reply(p%d,#%d)" r.replica r.rid

let check_timer_tag = 1_000_000

type status = Normal | Changing of int

type t = {
  config : config;
  keyring : Thc_crypto.Keyring.t;
  world : Thc_hardware.Trinc.world;
  self : int;
  out : Attested_link.Out.t;
  inbox : Attested_link.In.t;
  store : Kv_store.t;
  mutable view : int;
  mutable status : status;
  mutable next_seq : int;  (* leader: next sequence number to assign *)
  proposals : (int, Command.signed_request) Hashtbl.t;  (* seq -> accepted proposal *)
  votes : (int * int * int64, (int, unit) Hashtbl.t) Hashtbl.t;
      (* (view, seq, digest) -> voters *)
  commit_sent : (int * int, unit) Hashtbl.t;  (* (view, seq) voted already *)
  committed : (int, Command.signed_request) Hashtbl.t;
  mutable exec_upto : int;
  pending : (int * int, Command.signed_request * int64) Hashtbl.t;
      (* request key -> (request, arrival time) *)
  proposed_keys : (int * int, int) Hashtbl.t;  (* request key -> seq (leader) *)
  executed : (int * int, string) Hashtbl.t;  (* request key -> result *)
  rvc_votes : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* new_view -> supporters *)
  mutable max_rvc_sent : int;
  mutable last_rvc_at : int64;
  vc_evidence : (int, (int, Thc_hardware.Trinc.attestation) Hashtbl.t) Hashtbl.t;
      (* new_view -> owner -> View_change attestation (new leader role) *)
  mutable recovered_bound : int;
      (* after a view change: highest recovered seq; re-proposals at or
         below it must match the recovery *)
  expected : (int, int64) Hashtbl.t;  (* seq -> required request digest *)
}

let create_replica ~config ~keyring ~world ~trinket ~self =
  if config.n <> (2 * config.f) + 1 then
    invalid_arg "Minbft: config requires n = 2f + 1";
  {
    config;
    keyring;
    world;
    self;
    out = Attested_link.Out.create trinket;
    inbox = Attested_link.In.create ~world ~n:config.n;
    store = Kv_store.create ();
    view = 0;
    status = Normal;
    next_seq = 1;
    proposals = Hashtbl.create 64;
    votes = Hashtbl.create 64;
    commit_sent = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    exec_upto = 0;
    pending = Hashtbl.create 64;
    proposed_keys = Hashtbl.create 64;
    executed = Hashtbl.create 64;
    rvc_votes = Hashtbl.create 8;
    max_rvc_sent = 0;
    last_rvc_at = 0L;
    vc_evidence = Hashtbl.create 8;
    recovered_bound = 0;
    expected = Hashtbl.create 16;
  }

let view_of t = t.view

let executed_upto t = t.exec_upto

let store_digest t = Kv_store.digest t.store

let leader_of t view = view mod t.config.n

let encode_proto (p : proto) = Thc_util.Codec.encode p

let decode_proto s = (Thc_util.Codec.decode s : proto)

let seal_and_send t (ctx : msg Thc_sim.Engine.ctx) p =
  let a = Attested_link.Out.seal t.out (encode_proto p) in
  ctx.broadcast (Sealed a)

let voters t key =
  match Hashtbl.find_opt t.votes key with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add t.votes key tbl;
    tbl

let rvc_supporters t nv =
  match Hashtbl.find_opt t.rvc_votes nv with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add t.rvc_votes nv tbl;
    tbl

(* --- execution --------------------------------------------------------- *)

let rec try_execute t (ctx : msg Thc_sim.Engine.ctx) =
  match Hashtbl.find_opt t.committed (t.exec_upto + 1) with
  | None -> ()
  | Some sr ->
    let seq = t.exec_upto + 1 in
    t.exec_upto <- seq;
    let key = Command.key sr.value in
    let result =
      match Hashtbl.find_opt t.executed key with
      | Some r -> r  (* duplicate commit of one request: do not re-apply *)
      | None ->
        let r =
          Kv_store.encode_result
            (Kv_store.apply t.store (Kv_store.decode_op sr.value.op))
        in
        Hashtbl.replace t.executed key r;
        r
    in
    Hashtbl.remove t.pending key;
    ctx.output (Thc_sim.Obs.Executed { seq; op = sr.value.op; result });
    ctx.send sr.value.client
      (Reply { replica = t.self; rid = sr.value.rid; result });
    try_execute t ctx

let record_commit t ctx ~view ~seq ~(request : Command.signed_request) ~voter =
  let digest = Command.digest request.value in
  let tbl = voters t (view, seq, digest) in
  Hashtbl.replace tbl voter ();
  if
    Hashtbl.length tbl >= t.config.f + 1
    && not (Hashtbl.mem t.committed seq)
  then begin
    Hashtbl.replace t.committed seq request;
    ctx.Thc_sim.Engine.output
      (Thc_sim.Obs.Committed { view; seq; op = request.value.op });
    try_execute t ctx
  end

(* A replica votes for a proposal unless it contradicts what it committed or
   what the latest view change recovered. *)
let proposal_acceptable t ~seq ~(request : Command.signed_request) =
  (match Hashtbl.find_opt t.committed seq with
  | Some sr -> Command.digest sr.value = Command.digest request.value
  | None -> true)
  && (seq > t.recovered_bound
     ||
     match Hashtbl.find_opt t.expected seq with
     | Some d -> d = Command.digest request.value
     | None -> false)

let handle_prepare t ctx ~owner ~view ~seq ~request =
  if
    owner = leader_of t view
    && view = t.view
    && t.status = Normal
    && Command.valid t.keyring request
    && proposal_acceptable t ~seq ~request
  then begin
    Hashtbl.replace t.proposals seq request;
    Hashtbl.replace t.proposed_keys (Command.key request.value) seq;
    record_commit t ctx ~view ~seq ~request ~voter:owner;
    if t.self <> owner && not (Hashtbl.mem t.commit_sent (view, seq)) then begin
      Hashtbl.replace t.commit_sent (view, seq) ();
      seal_and_send t ctx (Commit { view; seq; request })
    end
  end

(* --- view change ------------------------------------------------------- *)

(* Deterministic recovery from view-change evidence: for every sequence
   number, adopt the request carried by the highest-view Prepare/Commit
   found in any of the validated logs. *)
let recover_from_evidence t evidence =
  let best : (int, int * Command.signed_request) Hashtbl.t = Hashtbl.create 32 in
  let consider ~view ~seq ~request =
    match Hashtbl.find_opt best seq with
    | Some (v, _) when v >= view -> ()
    | Some _ | None -> Hashtbl.replace best seq (view, request)
  in
  List.iter
    (fun (att : Thc_hardware.Trinc.attestation) ->
      match decode_proto att.message with
      | View_change { log; _ } ->
        (match Attested_link.check_log ~world:t.world ~owner:att.owner log with
        | None -> ()
        | Some payloads ->
          List.iter
            (fun payload ->
              match decode_proto payload with
              | Prepare { view; seq; request } ->
                (* A Prepare is leader evidence only from that view's leader. *)
                if att.owner = leader_of t view then consider ~view ~seq ~request
              | Commit { view; seq; request } -> consider ~view ~seq ~request
              | Rvc _ | View_change _ | New_view _ -> ()
              | exception _ -> ())
            payloads)
      | Rvc _ | Prepare _ | Commit _ | New_view _ -> ()
      | exception _ -> ())
    evidence;
  Hashtbl.fold (fun seq (_, request) acc -> (seq, request) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let evidence_valid t ~new_view evidence =
  let owners = Hashtbl.create 8 in
  List.for_all
    (fun (att : Thc_hardware.Trinc.attestation) ->
      Thc_hardware.Trinc.check t.world att ~id:att.owner
      &&
      match decode_proto att.message with
      | View_change { new_view = nv; log } ->
        nv = new_view
        && (not (Hashtbl.mem owners att.owner))
        && (Hashtbl.replace owners att.owner ();
            Attested_link.check_log ~world:t.world ~owner:att.owner log
            <> None)
      | Rvc _ | Prepare _ | Commit _ | New_view _ -> false
      | exception _ -> false)
    evidence
  && Hashtbl.length owners >= t.config.f + 1

let adopt_new_view t ctx ~new_view evidence =
  let recovered = recover_from_evidence t evidence in
  t.view <- new_view;
  t.status <- Normal;
  (* Give the new view a full timeout before anyone escalates again: the
     stuck-request clocks restart at adoption. *)
  (let now = ctx.Thc_sim.Engine.now () in
   Hashtbl.filter_map_inplace (fun _ (r, _) -> Some (r, now)) t.pending);
  Hashtbl.reset t.expected;
  t.recovered_bound <-
    List.fold_left (fun acc (seq, _) -> max acc seq) 0 recovered;
  List.iter
    (fun (seq, (request : Command.signed_request)) ->
      Hashtbl.replace t.expected seq (Command.digest request.value);
      Hashtbl.replace t.proposed_keys (Command.key request.value) seq)
    recovered;
  (* The new leader re-proposes everything recovered, then continues with
     fresh sequence numbers for still-pending requests. *)
  if t.self = leader_of t new_view then begin
    t.next_seq <- t.recovered_bound + 1;
    List.iter
      (fun (seq, request) ->
        seal_and_send t ctx (Prepare { view = new_view; seq; request }))
      recovered;
    Hashtbl.iter
      (fun key (request, _) ->
        if not (Hashtbl.mem t.proposed_keys key) then begin
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          Hashtbl.replace t.proposed_keys key seq;
          seal_and_send t ctx (Prepare { view = new_view; seq; request })
        end)
      t.pending
  end

let handle_proto t (ctx : msg Thc_sim.Engine.ctx) ~owner payload =
  match decode_proto payload with
  | Prepare { view; seq; request } -> handle_prepare t ctx ~owner ~view ~seq ~request
  | Commit { view; seq; request } ->
    if Command.valid t.keyring request then
      record_commit t ctx ~view ~seq ~request ~voter:owner
  | Rvc { new_view } ->
    if new_view > t.view then begin
      let tbl = rvc_supporters t new_view in
      Hashtbl.replace tbl owner ();
      (* Join a view-change attempt ahead of our own: keeps escalation
         targets aligned across replicas. *)
      if owner <> t.self && new_view > t.max_rvc_sent then begin
        t.max_rvc_sent <- new_view;
        seal_and_send t ctx (Rvc { new_view })
      end;
      if Hashtbl.length tbl >= t.config.f + 1 then begin
        let already_changing =
          match t.status with
          | Changing nv -> nv >= new_view
          | Normal -> false
        in
        if not already_changing then begin
          t.status <- Changing new_view;
          seal_and_send t ctx
            (View_change { new_view; log = Attested_link.Out.sent_log t.out })
        end
      end
    end
  | View_change _ -> ()  (* handled with its attestation in handle_sealed *)
  | New_view { new_view; evidence } ->
    if
      owner = leader_of t new_view
      && new_view > t.view
      && evidence_valid t ~new_view evidence
    then adopt_new_view t ctx ~new_view evidence

let handle_sealed t ctx (att : Thc_hardware.Trinc.attestation) =
  let released = Attested_link.In.accept t.inbox att in
  List.iter
    (fun (a : Thc_hardware.Trinc.attestation) ->
      (* View_change needs the attestation itself (evidence); everything
         else is handled from the payload. *)
      (match decode_proto a.message with
      | View_change { new_view; log } ->
        if
          t.self = leader_of t new_view
          && new_view > t.view
          && Attested_link.check_log ~world:t.world ~owner:a.owner log <> None
        then begin
          let tbl =
            match Hashtbl.find_opt t.vc_evidence new_view with
            | Some tbl -> tbl
            | None ->
              let tbl = Hashtbl.create 8 in
              Hashtbl.add t.vc_evidence new_view tbl;
              tbl
          in
          Hashtbl.replace tbl a.owner a;
          if Hashtbl.length tbl >= t.config.f + 1 then begin
            let evidence = Hashtbl.fold (fun _ e acc -> e :: acc) tbl [] in
            seal_and_send t ctx (New_view { new_view; evidence });
            adopt_new_view t ctx ~new_view evidence
          end
        end
      | Prepare _ | Commit _ | Rvc _ | New_view _ ->
        handle_proto t ctx ~owner:a.owner a.message
      | exception _ -> ()))
    released

let handle_request t (ctx : msg Thc_sim.Engine.ctx) sr =
  if Command.valid t.keyring sr then begin
    let key = Command.key sr.Thc_crypto.Signature.value in
    if not (Hashtbl.mem t.executed key) then begin
      if not (Hashtbl.mem t.pending key) then
        Hashtbl.replace t.pending key (sr, ctx.now ());
      if
        t.self = leader_of t t.view
        && t.status = Normal
        && not (Hashtbl.mem t.proposed_keys key)
      then begin
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        Hashtbl.replace t.proposed_keys key seq;
        seal_and_send t ctx (Prepare { view = t.view; seq; request = sr })
      end
    end
    else
      (* Already executed: re-reply (client retransmission). *)
      match Hashtbl.find_opt t.executed key with
      | Some result ->
        ctx.send sr.value.client
          (Reply { replica = t.self; rid = sr.value.rid; result })
      | None -> ()
  end

let handle_check t (ctx : msg Thc_sim.Engine.ctx) =
  let now = ctx.now () in
  let stuck =
    Hashtbl.fold
      (fun _ (_, since) acc ->
        acc || Int64.sub now since > t.config.request_timeout)
      t.pending false
  in
  (if stuck then
     (* Escalate at most once per request_timeout, so a slow view change is
        given time to complete before the target moves again. *)
     let fresh_attempt = t.max_rvc_sent <= t.view in
     let timed_out =
       Int64.sub now t.last_rvc_at > t.config.request_timeout
     in
     if fresh_attempt || timed_out then begin
       let target = max t.view t.max_rvc_sent + 1 in
       t.max_rvc_sent <- target;
       t.last_rvc_at <- now;
       seal_and_send t ctx (Rvc { new_view = target })
     end);
  ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag

let replica t : msg Thc_sim.Engine.behavior =
  {
    init =
      (fun ctx ->
        ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag);
    on_message =
      (fun ctx ~src:_ m ->
        match m with
        | Request sr -> handle_request t ctx sr
        | Sealed att -> handle_sealed t ctx att
        | Reply _ -> ());
    on_timer =
      (fun ctx tag -> if tag = check_timer_tag then handle_check t ctx);
  }

let client ~config ~keyring:_ ~ident ~plan : msg Thc_sim.Engine.behavior =
  Client_core.behavior ~n_replicas:config.n ~quorum:(config.f + 1) ~ident ~plan
    ~wrap:(fun sr -> Request sr)
    ~unwrap:(function Reply r -> Some r | Request _ | Sealed _ -> None)

let adversarial_prepare ~out ~view ~seq ~request =
  Sealed (Attested_link.Out.seal out (encode_proto (Prepare { view; seq; request })))

let classify_msg = function
  | Request _ -> "request"
  | Reply _ -> "reply"
  | Sealed a ->
    (match decode_proto a.message with
    | Prepare _ -> "prepare"
    | Commit _ -> "commit"
    | Rvc _ -> "req-view-change"
    | View_change _ -> "view-change"
    | New_view _ -> "new-view"
    | exception _ -> "garbage")

let adversarial_wire a = Sealed a
