(** Single-writer multi-reader atomic registers.

    The canonical shared-memory-with-ACL primitive of the paper (§2.1):
    every process may [read] every register; each register has a unique
    owner which is the only process allowed to [write].  Registers are
    linearizable by construction — the simulation engine executes handler
    code atomically, so each operation takes effect at one instant.

    The unidirectional-round protocol (paper §3.2) needs registers whose
    contents {e grow}: the owner "appends (r, m)".  [append] provides
    that pattern directly on a list-valued register. *)

type 'a t
(** A register holding ['a], with an owner-only write ACL. *)

val create : owner:int -> init:'a -> 'a t

val owner : 'a t -> int

val read : 'a t -> 'a
(** Readable by everyone (no identity needed — reads are unrestricted in the
    paper's setting). *)

val write : 'a t -> ident:Thc_crypto.Keyring.secret -> 'a -> unit
(** Owner-only.  @raise Acl.Violation for any other caller. *)

val write_count : 'a t -> int
(** Number of successful writes (for linearization-order assertions). *)

type 'a log = 'a list t
(** A register used append-only, newest element first. *)

val create_log : owner:int -> 'a log

val append : 'a log -> ident:Thc_crypto.Keyring.secret -> 'a -> unit
(** Owner-only append ([write] of [v :: read t]). *)

val entries : 'a log -> 'a list
(** Oldest first. *)

val array : n:int -> init:(int -> 'a) -> 'a t array
(** One register per process, [o.(i)] owned by [i] — the standard layout. *)

val log_array : n:int -> 'a log array
