(** Access control for shared-memory objects.

    The paper (after Malkhi et al.) requires that Byzantine processes cannot
    write everywhere, and expresses the restriction as access control lists:
    per object and operation, the set of processes allowed to execute it.
    Identity cannot be faked: operations take the caller's
    {!Thc_crypto.Keyring.secret} — the same capability that backs
    signatures — and the ACL checks the pid bound inside it. *)

exception Violation of string
(** Raised when a process invokes an operation its ACL does not permit.  In
    the simulated model this is the hardware refusing the memory access. *)

type t
(** A predicate over (pid, operation name). *)

val only : int -> t
(** Permit a single pid. *)

val any : t
(** Permit everyone. *)

val members : int list -> t
(** Permit a fixed set. *)

val pred : (pid:int -> op:string -> bool) -> t
(** Arbitrary policy (used by PEATS-style dynamic policies as a base). *)

val allows : t -> pid:int -> op:string -> bool

val enforce : t -> ident:Thc_crypto.Keyring.secret -> op:string -> int
(** Check the caller and return its authenticated pid.
    @raise Violation if denied. *)
