(** Sticky bits / write-once registers (Malkhi et al., "Objects shared by
    Byzantine processes").

    A sticky register accepts the first write and rejects every later one;
    its value, once set, is immutable — a direct non-equivocation object.
    The paper lists sticky bits among the shared-memory primitives that are
    "stronger than unidirectionality"; {!Thc_rounds.Sticky_rounds} builds
    unidirectional rounds from arrays of these. *)

type 'a t

val create : ?write_acl:Acl.t -> unit -> 'a t
(** By default any process may attempt the first write. *)

val set : 'a t -> ident:Thc_crypto.Keyring.secret -> 'a -> [ `Set | `Already ]
(** First-write-wins.  [`Already] if some value is already stuck (the write
    is ignored).  @raise Acl.Violation if the ACL denies the caller. *)

val get : 'a t -> 'a option
(** Readable by everyone. *)

val is_set : 'a t -> bool
