type 'a t = { write_acl : Acl.t; mutable value : 'a option }

let create ?(write_acl = Acl.any) () = { write_acl; value = None }

let set t ~ident v =
  let _pid = Acl.enforce t.write_acl ~ident ~op:"set" in
  match t.value with
  | Some _ -> `Already
  | None ->
    t.value <- Some v;
    `Set

let get t = t.value

let is_set t = Option.is_some t.value
