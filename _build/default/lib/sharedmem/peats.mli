(** PEATS — policy-enforced augmented tuple spaces (Bessani et al.,
    "Sharing memory between Byzantine processes using policy-enforced tuple
    spaces").

    A tuple space holds tuples (arrays of string fields); processes insert
    ([out]), read ([rd]) and remove ([inp]) tuples by pattern matching.
    Unlike static ACLs, access is governed by a {e policy} that may inspect
    the current contents of the space — the paper highlights exactly this:
    "policies that can take into account the state of the object at the
    time of the attempted operation".

    The classification uses PEATS with the owner-field policy
    ({!owned_field_policy}): process [i] may only insert tuples whose first
    field is ["i"], everyone may read, nobody may remove — which yields the
    "object modifiable by one process, readable by all" setting of the
    paper's unidirectionality claim. *)

type tuple = string array

type pattern = string option array
(** [None] fields are wildcards. *)

type op_view =
  | Out of tuple
  | Rd of pattern
  | Inp of pattern
      (** The operation being attempted, for policy inspection. *)

type policy = pid:int -> op:op_view -> space:tuple list -> bool
(** Decides an attempted operation given the current space contents. *)

type t

val create : policy:policy -> t

val matches : pattern -> tuple -> bool

val out : t -> ident:Thc_crypto.Keyring.secret -> tuple -> unit
(** Insert.  @raise Acl.Violation if the policy denies it. *)

val rd : t -> ident:Thc_crypto.Keyring.secret -> pattern -> tuple option
(** Non-destructive read of the oldest matching tuple.
    @raise Acl.Violation if denied. *)

val rd_all : t -> ident:Thc_crypto.Keyring.secret -> pattern -> tuple list
(** All matching tuples, oldest first.  @raise Acl.Violation if denied. *)

val inp : t -> ident:Thc_crypto.Keyring.secret -> pattern -> tuple option
(** Destructive read (remove) of the oldest match.
    @raise Acl.Violation if denied. *)

val size : t -> int

val owned_field_policy : policy
(** Everyone reads; process [i] may [out] only tuples with first field
    ["i"]; no removals.  PEATS as an "SWMR-like" object. *)

val append_once_policy : policy
(** Like {!owned_field_policy} but additionally rejects an [out] whose
    first two fields duplicate an existing tuple's — a state-dependent
    write-once rule (per owner and key), demonstrating policies that static
    ACLs cannot express. *)
