lib/sharedmem/peats.ml: Acl Array List Printf String Thc_crypto
