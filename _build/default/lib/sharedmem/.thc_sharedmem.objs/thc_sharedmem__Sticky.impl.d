lib/sharedmem/sticky.ml: Acl Option
