lib/sharedmem/acl.mli: Thc_crypto
