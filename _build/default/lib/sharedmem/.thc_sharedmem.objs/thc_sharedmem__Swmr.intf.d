lib/sharedmem/swmr.mli: Thc_crypto
