lib/sharedmem/peats.mli: Thc_crypto
