lib/sharedmem/acl.ml: List Printf Thc_crypto
