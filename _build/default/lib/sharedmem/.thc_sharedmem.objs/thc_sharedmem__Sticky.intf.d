lib/sharedmem/sticky.mli: Acl Thc_crypto
