lib/sharedmem/swmr.ml: Acl Array List
