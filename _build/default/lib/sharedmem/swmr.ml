type 'a t = {
  owner : int;
  acl : Acl.t;
  mutable value : 'a;
  mutable writes : int;
}

let create ~owner ~init =
  { owner; acl = Acl.only owner; value = init; writes = 0 }

let owner t = t.owner

let read t = t.value

let write t ~ident v =
  let _pid = Acl.enforce t.acl ~ident ~op:"write" in
  t.value <- v;
  t.writes <- t.writes + 1

let write_count t = t.writes

type 'a log = 'a list t

let create_log ~owner = create ~owner ~init:[]

let append t ~ident v = write t ~ident (v :: read t)

let entries t = List.rev (read t)

let array ~n ~init = Array.init n (fun i -> create ~owner:i ~init:(init i))

let log_array ~n = Array.init n (fun i -> create_log ~owner:i)
