exception Violation of string

type t = { allows : pid:int -> op:string -> bool }

let only owner = { allows = (fun ~pid ~op:_ -> pid = owner) }

let any = { allows = (fun ~pid:_ ~op:_ -> true) }

let members pids = { allows = (fun ~pid ~op:_ -> List.mem pid pids) }

let pred f = { allows = f }

let allows t ~pid ~op = t.allows ~pid ~op

let enforce t ~ident ~op =
  let pid = Thc_crypto.Keyring.pid_of_secret ident in
  if t.allows ~pid ~op then pid
  else raise (Violation (Printf.sprintf "p%d denied op %s" pid op))
