type tuple = string array

type pattern = string option array

type op_view = Out of tuple | Rd of pattern | Inp of pattern

type policy = pid:int -> op:op_view -> space:tuple list -> bool

type t = { policy : policy; mutable tuples : tuple list (* newest first *) }

let create ~policy = { policy; tuples = [] }

let matches pattern tuple =
  Array.length pattern = Array.length tuple
  && Array.for_all2
       (fun p f -> match p with None -> true | Some s -> String.equal s f)
       pattern tuple

let enforce t ~ident ~op =
  let pid = Thc_crypto.Keyring.pid_of_secret ident in
  if t.policy ~pid ~op ~space:t.tuples then pid
  else
    raise
      (Acl.Violation
         (Printf.sprintf "p%d denied by tuple-space policy" pid))

let out t ~ident tuple =
  let _pid = enforce t ~ident ~op:(Out tuple) in
  t.tuples <- tuple :: t.tuples

let oldest_match t pattern =
  let rec last acc = function
    | [] -> acc
    | tu :: rest -> last (if matches pattern tu then Some tu else acc) rest
  in
  last None t.tuples

let rd t ~ident pattern =
  let _pid = enforce t ~ident ~op:(Rd pattern) in
  oldest_match t pattern

let rd_all t ~ident pattern =
  let _pid = enforce t ~ident ~op:(Rd pattern) in
  List.rev (List.filter (matches pattern) t.tuples)

let inp t ~ident pattern =
  let _pid = enforce t ~ident ~op:(Inp pattern) in
  match oldest_match t pattern with
  | None -> None
  | Some found ->
    let removed = ref false in
    t.tuples <-
      List.rev
        (List.filter
           (fun tu ->
             if (not !removed) && tu == found then begin
               removed := true;
               false
             end
             else true)
           (List.rev t.tuples));
    Some found

let size t = List.length t.tuples

let owned_field_policy ~pid ~op ~space:_ =
  match op with
  | Out tuple -> Array.length tuple > 0 && String.equal tuple.(0) (string_of_int pid)
  | Rd _ -> true
  | Inp _ -> false

let append_once_policy ~pid ~op ~space =
  match op with
  | Out tuple ->
    Array.length tuple > 1
    && String.equal tuple.(0) (string_of_int pid)
    && not
         (List.exists
            (fun existing ->
              Array.length existing > 1
              && String.equal existing.(0) tuple.(0)
              && String.equal existing.(1) tuple.(1))
            space)
  | Rd _ -> true
  | Inp _ -> false
