(* Tests for the trusted-hardware modules: non-equivocation, monotonicity,
   unforgeability, claim-once capabilities, and the Levin et al. reduction. *)

let qcheck = QCheck_alcotest.to_alcotest

let fresh_trinc ?(n = 3) () =
  let rng = Thc_util.Rng.create 21L in
  Thc_hardware.Trinc.create_world rng ~n

(* --- TrInc -------------------------------------------------------------------- *)

let test_trinc_attest_and_check () =
  let world = fresh_trinc () in
  let t = Thc_hardware.Trinc.trinket world ~owner:0 in
  match Thc_hardware.Trinc.attest t ~counter:5 ~message:"m" with
  | None -> Alcotest.fail "fresh counter refused"
  | Some a ->
    Alcotest.(check int) "prev is 0" 0 a.prev;
    Alcotest.(check int) "counter" 5 a.counter;
    Alcotest.(check bool) "checks as owner" true
      (Thc_hardware.Trinc.check world a ~id:0);
    Alcotest.(check bool) "does not check as other id" false
      (Thc_hardware.Trinc.check world a ~id:1)

let test_trinc_monotone () =
  let world = fresh_trinc () in
  let t = Thc_hardware.Trinc.trinket world ~owner:0 in
  ignore (Thc_hardware.Trinc.attest t ~counter:5 ~message:"m1");
  Alcotest.(check bool) "same counter refused" true
    (Thc_hardware.Trinc.attest t ~counter:5 ~message:"m2" = None);
  Alcotest.(check bool) "lower counter refused" true
    (Thc_hardware.Trinc.attest t ~counter:3 ~message:"m3" = None);
  (match Thc_hardware.Trinc.attest t ~counter:9 ~message:"m4" with
  | Some a -> Alcotest.(check int) "prev links to last" 5 a.prev
  | None -> Alcotest.fail "higher counter refused");
  Alcotest.(check int) "last counter" 9 (Thc_hardware.Trinc.last_counter t)

let test_trinc_claim_once () =
  let world = fresh_trinc () in
  let _ = Thc_hardware.Trinc.trinket world ~owner:1 in
  Alcotest.check_raises "second claim refused"
    (Invalid_argument "Trinc.trinket: trinket already claimed") (fun () ->
      ignore (Thc_hardware.Trinc.trinket world ~owner:1))

let test_trinc_tamper_detection () =
  let world = fresh_trinc () in
  let t = Thc_hardware.Trinc.trinket world ~owner:0 in
  match Thc_hardware.Trinc.attest t ~counter:2 ~message:"real" with
  | None -> Alcotest.fail "attest failed"
  | Some a ->
    let variants =
      [
        { a with Thc_hardware.Trinc.message = "fake" };
        { a with Thc_hardware.Trinc.counter = 3 };
        { a with Thc_hardware.Trinc.prev = 1 };
        { a with Thc_hardware.Trinc.tag = Int64.add a.tag 1L };
      ]
    in
    List.iter
      (fun v ->
        if Thc_hardware.Trinc.check world v ~id:0 then
          Alcotest.fail "tampered attestation accepted")
      variants

let test_trinc_counterfeit () =
  let world = fresh_trinc () in
  let fake =
    Thc_hardware.Trinc.counterfeit ~owner:0 ~prev:0 ~counter:1 ~message:"m"
      ~tag:99L
  in
  Alcotest.(check bool) "counterfeit rejected" false
    (Thc_hardware.Trinc.check world fake ~id:0)

let prop_trinc_no_counter_reuse =
  QCheck.Test.make ~name:"a counter can never be attested twice" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_bound 20))
    (fun counters ->
      let world = fresh_trinc () in
      let t = Thc_hardware.Trinc.trinket world ~owner:0 in
      let used = Hashtbl.create 8 in
      List.for_all
        (fun c ->
          match Thc_hardware.Trinc.attest t ~counter:c ~message:"m" with
          | Some _ ->
            (* accepted: must be genuinely fresh and above all previous *)
            let fresh = not (Hashtbl.mem used c) in
            Hashtbl.replace used c ();
            fresh
          | None -> true)
        counters)

(* --- A2M ---------------------------------------------------------------------- *)

let fresh_a2m () =
  let rng = Thc_util.Rng.create 22L in
  let world = Thc_hardware.A2m.create_world rng ~n:2 in
  (world, Thc_hardware.A2m.device world ~owner:0)

let test_a2m_append_lookup () =
  let world, d = fresh_a2m () in
  let log = Thc_hardware.A2m.create_log d in
  Alcotest.(check (option int)) "append 1" (Some 1)
    (Thc_hardware.A2m.append d ~log "a");
  Alcotest.(check (option int)) "append 2" (Some 2)
    (Thc_hardware.A2m.append d ~log "b");
  (match Thc_hardware.A2m.lookup d ~log ~index:1 ~z:"z1" with
  | Some att ->
    Alcotest.(check string) "entry value" "a" att.value;
    Alcotest.(check string) "challenge bound" "z1" att.challenge;
    Alcotest.(check bool) "verifies" true
      (Thc_hardware.A2m.check world att ~owner:0)
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "out-of-range lookup" true
    (Thc_hardware.A2m.lookup d ~log ~index:3 ~z:"z" = None)

let test_a2m_end () =
  let _, d = fresh_a2m () in
  let log = Thc_hardware.A2m.create_log d in
  (match Thc_hardware.A2m.end_ d ~log ~z:"z" with
  | Some att ->
    Alcotest.(check int) "empty end index" 0 att.index;
    Alcotest.(check string) "empty end value" "" att.value
  | None -> Alcotest.fail "end on empty log failed");
  ignore (Thc_hardware.A2m.append d ~log "x");
  match Thc_hardware.A2m.end_ d ~log ~z:"z" with
  | Some att ->
    Alcotest.(check int) "end index" 1 att.index;
    Alcotest.(check string) "end value" "x" att.value
  | None -> Alcotest.fail "end failed"

let test_a2m_unknown_log () =
  let _, d = fresh_a2m () in
  Alcotest.(check (option int)) "append to unknown log" None
    (Thc_hardware.A2m.append d ~log:99 "x")

let test_a2m_tamper () =
  let world, d = fresh_a2m () in
  let log = Thc_hardware.A2m.create_log d in
  ignore (Thc_hardware.A2m.append d ~log "secret");
  match Thc_hardware.A2m.lookup d ~log ~index:1 ~z:"z" with
  | Some att ->
    let tampered = { att with Thc_hardware.A2m.value = "public" } in
    Alcotest.(check bool) "tampered rejected" false
      (Thc_hardware.A2m.check world tampered ~owner:0);
    let replayed = { att with Thc_hardware.A2m.challenge = "other-z" } in
    Alcotest.(check bool) "challenge replay rejected" false
      (Thc_hardware.A2m.check world replayed ~owner:0)
  | None -> Alcotest.fail "lookup failed"

let test_a2m_multiple_logs_independent () =
  let _, d = fresh_a2m () in
  let l1 = Thc_hardware.A2m.create_log d in
  let l2 = Thc_hardware.A2m.create_log d in
  ignore (Thc_hardware.A2m.append d ~log:l1 "a");
  Alcotest.(check (option int)) "logs grow independently" (Some 1)
    (Thc_hardware.A2m.append d ~log:l2 "b");
  Alcotest.(check (option int)) "length l1" (Some 1) (Thc_hardware.A2m.log_length d ~log:l1)

(* --- monotonic counter ------------------------------------------------------------ *)

let test_mono_counter () =
  let rng = Thc_util.Rng.create 23L in
  let world = Thc_hardware.Mono_counter.create_world rng ~n:1 in
  let c = Thc_hardware.Mono_counter.counter world ~owner:0 in
  let a1 = Thc_hardware.Mono_counter.increment c ~message:"m1" in
  let a2 = Thc_hardware.Mono_counter.increment c ~message:"m2" in
  Alcotest.(check int) "first value" 1 a1.value;
  Alcotest.(check int) "second value" 2 a2.value;
  Alcotest.(check int) "current" 2 (Thc_hardware.Mono_counter.current c);
  Alcotest.(check bool) "a1 checks" true
    (Thc_hardware.Mono_counter.check world a1 ~id:0);
  Alcotest.(check bool) "tamper rejected" false
    (Thc_hardware.Mono_counter.check world
       { a1 with Thc_hardware.Mono_counter.message = "evil" }
       ~id:0)

(* --- enclave ------------------------------------------------------------------------ *)

let counter_enclave () =
  let rng = Thc_util.Rng.create 24L in
  let world = Thc_hardware.Enclave.create_world rng ~n:1 in
  let e =
    Thc_hardware.Enclave.enclave world ~owner:0 ~init:0 ~step:(fun s x ->
        (s + x, s + x))
  in
  (world, e)

let test_enclave_invoke () =
  let world, e = counter_enclave () in
  let out1, att1 = Thc_hardware.Enclave.invoke e 5 in
  let out2, att2 = Thc_hardware.Enclave.invoke e 3 in
  Alcotest.(check int) "first output" 5 out1;
  Alcotest.(check int) "second output" 8 out2;
  Alcotest.(check int) "steps" 2 (Thc_hardware.Enclave.step_count e);
  Alcotest.(check bool) "att1 verifies" true
    (Thc_hardware.Enclave.check world att1 ~id:0);
  Alcotest.(check bool) "chain verifies" true
    (Thc_hardware.Enclave.check_chain world [ att1; att2 ] ~id:0)

let test_enclave_chain_rejects_gaps_and_reorder () =
  let world, e = counter_enclave () in
  let _, a1 = Thc_hardware.Enclave.invoke e 1 in
  let _, a2 = Thc_hardware.Enclave.invoke e 1 in
  let _, a3 = Thc_hardware.Enclave.invoke e 1 in
  Alcotest.(check bool) "gap rejected" false
    (Thc_hardware.Enclave.check_chain world [ a1; a3 ] ~id:0);
  Alcotest.(check bool) "reorder rejected" false
    (Thc_hardware.Enclave.check_chain world [ a2; a1; a3 ] ~id:0);
  Alcotest.(check bool) "prefix accepted" true
    (Thc_hardware.Enclave.check_chain world [ a1; a2 ] ~id:0)

let test_enclave_tamper () =
  let world, e = counter_enclave () in
  let _, att = Thc_hardware.Enclave.invoke e 7 in
  Alcotest.(check bool) "tampered output rejected" false
    (Thc_hardware.Enclave.check world
       { att with Thc_hardware.Enclave.output = "evil" }
       ~id:0)

(* --- A2M from TrInc --------------------------------------------------------------- *)

let test_reduction_basic () =
  let world = fresh_trinc () in
  let d = Thc_hardware.A2m_from_trinc.create (Thc_hardware.Trinc.trinket world ~owner:2) in
  let l1 = Thc_hardware.A2m_from_trinc.create_log d in
  let l2 = Thc_hardware.A2m_from_trinc.create_log d in
  Alcotest.(check (option int)) "append l1" (Some 1)
    (Thc_hardware.A2m_from_trinc.append d ~log:l1 "a");
  Alcotest.(check (option int)) "append l2" (Some 1)
    (Thc_hardware.A2m_from_trinc.append d ~log:l2 "b");
  Alcotest.(check (option int)) "append l1 again" (Some 2)
    (Thc_hardware.A2m_from_trinc.append d ~log:l1 "c");
  (match Thc_hardware.A2m_from_trinc.lookup d ~log:l1 ~index:2 with
  | Some att ->
    let log, index, value = Thc_hardware.A2m_from_trinc.entry_of_attestation att in
    Alcotest.(check (pair int (pair int string))) "entry decodes"
      (l1, (2, "c")) (log, (index, value))
  | None -> Alcotest.fail "lookup failed");
  match
    Thc_hardware.A2m_from_trinc.check_chain world ~owner:2
      (Thc_hardware.A2m_from_trinc.chain d)
  with
  | Some entries -> Alcotest.(check int) "chain reconstructs all" 3 (List.length entries)
  | None -> Alcotest.fail "honest chain rejected"

let test_reduction_rejects_doctored_chains () =
  let world = fresh_trinc () in
  let d = Thc_hardware.A2m_from_trinc.create (Thc_hardware.Trinc.trinket world ~owner:2) in
  let l = Thc_hardware.A2m_from_trinc.create_log d in
  ignore (Thc_hardware.A2m_from_trinc.append d ~log:l "a");
  ignore (Thc_hardware.A2m_from_trinc.append d ~log:l "b");
  ignore (Thc_hardware.A2m_from_trinc.append d ~log:l "c");
  let chain = Thc_hardware.A2m_from_trinc.chain d in
  (match chain with
  | [ a; b; c ] ->
    Alcotest.(check bool) "gap rejected" true
      (Thc_hardware.A2m_from_trinc.check_chain world ~owner:2 [ a; c ] = None);
    Alcotest.(check bool) "reorder rejected" true
      (Thc_hardware.A2m_from_trinc.check_chain world ~owner:2 [ b; a; c ] = None);
    Alcotest.(check bool) "wrong owner rejected" true
      (Thc_hardware.A2m_from_trinc.check_chain world ~owner:0 chain = None)
  | _ -> Alcotest.fail "unexpected chain shape");
  Alcotest.(check bool) "empty chain fine" true
    (Thc_hardware.A2m_from_trinc.check_chain world ~owner:2 [] = Some [])

let test_reduction_end_and_lookup_bounds () =
  let world = fresh_trinc () in
  let d = Thc_hardware.A2m_from_trinc.create (Thc_hardware.Trinc.trinket world ~owner:2) in
  let l = Thc_hardware.A2m_from_trinc.create_log d in
  Alcotest.(check bool) "end of empty log" true
    (Thc_hardware.A2m_from_trinc.end_ d ~log:l = None);
  Alcotest.(check bool) "lookup out of range" true
    (Thc_hardware.A2m_from_trinc.lookup d ~log:l ~index:1 = None);
  ignore (Thc_hardware.A2m_from_trinc.append d ~log:l "x");
  match Thc_hardware.A2m_from_trinc.end_ d ~log:l with
  | Some att ->
    let _, index, value = Thc_hardware.A2m_from_trinc.entry_of_attestation att in
    Alcotest.(check (pair int string)) "end entry" (1, "x") (index, value)
  | None -> Alcotest.fail "end failed"

let () =
  Alcotest.run "thc_hardware"
    [
      ( "trinc",
        [
          Alcotest.test_case "attest/check" `Quick test_trinc_attest_and_check;
          Alcotest.test_case "monotone" `Quick test_trinc_monotone;
          Alcotest.test_case "claim once" `Quick test_trinc_claim_once;
          Alcotest.test_case "tamper detection" `Quick test_trinc_tamper_detection;
          Alcotest.test_case "counterfeit" `Quick test_trinc_counterfeit;
          qcheck prop_trinc_no_counter_reuse;
        ] );
      ( "a2m",
        [
          Alcotest.test_case "append/lookup" `Quick test_a2m_append_lookup;
          Alcotest.test_case "end" `Quick test_a2m_end;
          Alcotest.test_case "unknown log" `Quick test_a2m_unknown_log;
          Alcotest.test_case "tamper" `Quick test_a2m_tamper;
          Alcotest.test_case "independent logs" `Quick test_a2m_multiple_logs_independent;
        ] );
      ("mono-counter", [ Alcotest.test_case "basics" `Quick test_mono_counter ]);
      ( "enclave",
        [
          Alcotest.test_case "invoke" `Quick test_enclave_invoke;
          Alcotest.test_case "chain audit" `Quick test_enclave_chain_rejects_gaps_and_reorder;
          Alcotest.test_case "tamper" `Quick test_enclave_tamper;
        ] );
      ( "a2m-from-trinc",
        [
          Alcotest.test_case "basic reduction" `Quick test_reduction_basic;
          Alcotest.test_case "doctored chains" `Quick test_reduction_rejects_doctored_chains;
          Alcotest.test_case "bounds" `Quick test_reduction_end_and_lookup_bounds;
        ] );
    ]
