(* Tests for the classification core: the mechanism taxonomy, the Figure-1
   hierarchy and its consistency, the separation constructions, and the
   witness registry. *)

(* --- mechanisms ------------------------------------------------------------------ *)

let test_mechanism_names_unique () =
  let names = List.map Thc_classify.Mechanism.name Thc_classify.Mechanism.all in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_mechanism_of_name_roundtrip () =
  List.iter
    (fun m ->
      match Thc_classify.Mechanism.of_name (Thc_classify.Mechanism.name m) with
      | Some m' when Thc_classify.Mechanism.equal m m' -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Thc_classify.Mechanism.name m))
    Thc_classify.Mechanism.all

let test_mechanism_of_name_unknown () =
  Alcotest.(check bool) "unknown name" true
    (Thc_classify.Mechanism.of_name "quantum-oracle" = None)

let test_mechanism_classes () =
  let open Thc_classify.Mechanism in
  Alcotest.(check bool) "swmr in shared memory class" true
    (klass Swmr_registers = Shared_memory_class);
  Alcotest.(check bool) "trinc in trusted log class" true
    (klass Trinc = Trusted_log_class);
  Alcotest.(check bool) "a2m with trinc" true (klass A2m = klass Trinc);
  Alcotest.(check bool) "sticky with swmr" true
    (klass Sticky_bits = klass Swmr_registers);
  Alcotest.(check bool) "async at the bottom" true
    (klass Asynchrony = Baseline_class)

(* --- hierarchy --------------------------------------------------------------------- *)

let h = Thc_classify.Hierarchy.paper

let test_hierarchy_consistent () =
  match Thc_classify.Hierarchy.consistent h with
  | Ok _ -> ()
  | Error problems ->
    Alcotest.failf "inconsistent: %s" (String.concat "; " problems)

let test_hierarchy_key_implications () =
  let open Thc_classify.Mechanism in
  let implements = Thc_classify.Hierarchy.implements h in
  (* The paper's class structure, unconditionally derivable: *)
  Alcotest.(check bool) "swmr -> zero-directionality" true
    (implements Swmr_registers Zero_directionality);
  Alcotest.(check bool) "trinc -> a2m" true (implements Trinc A2m);
  Alcotest.(check bool) "a2m -> trinc" true (implements A2m Trinc);
  Alcotest.(check bool) "enclave -> srb" true (implements Enclave Srb);
  Alcotest.(check bool) "bidirectionality -> unidirectionality" true
    (implements Bidirectionality Unidirectionality);
  (* The strict separations: no unconditional path. *)
  Alcotest.(check bool) "srb does NOT reach unidirectionality" false
    (implements Srb Unidirectionality);
  Alcotest.(check bool) "unidirectionality does NOT reach bidirectionality"
    false
    (implements Unidirectionality Bidirectionality);
  Alcotest.(check bool) "asynchrony does NOT reach srb" false
    (implements Asynchrony Srb)

let test_hierarchy_trusted_log_equivalences () =
  let open Thc_classify.Mechanism in
  let eq = Thc_classify.Hierarchy.same_class_pairs h in
  Alcotest.(check bool) "srb <=> trinc proven" true
    (List.mem (Srb, Trinc) eq || List.mem (Trinc, Srb) eq);
  Alcotest.(check bool) "srb <=> a2m proven" true
    (List.mem (Srb, A2m) eq || List.mem (A2m, Srb) eq)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_hierarchy_renderings () =
  let fig = Thc_classify.Hierarchy.figure1 h in
  Alcotest.(check bool) "figure mentions unidirectional" true
    (contains fig "UNIDIRECTIONAL");
  let dot = Thc_classify.Hierarchy.to_dot h in
  Alcotest.(check bool) "dot has digraph" true (contains dot "digraph");
  Alcotest.(check bool) "dot mentions trinc" true (contains dot "trinc")

(* --- separations -------------------------------------------------------------------- *)

let test_separation_srb_uni () =
  let r = Thc_classify.Separations.srb_cannot_implement_unidirectionality () in
  if not r.holds then
    Alcotest.failf "failed: %s"
      (String.concat "; "
         (List.map
            (fun s -> s.Thc_classify.Separations.label)
            (List.filter (fun s -> not s.Thc_classify.Separations.ok) r.scenarios)))

let test_separation_srb_uni_other_sizes () =
  let r =
    Thc_classify.Separations.srb_cannot_implement_unidirectionality ~n:9 ~f:4
      ~seed:5L ()
  in
  Alcotest.(check bool) "n=9 f=4 construction verified" true r.holds

let test_separation_srb_uni_rejects_bad_params () =
  Alcotest.(check bool) "f=1 rejected (corner case regime)" true
    (match
       Thc_classify.Separations.srb_cannot_implement_unidirectionality ~n:4
         ~f:1 ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_separation_rb_very_weak () =
  let r = Thc_classify.Separations.rb_cannot_solve_very_weak () in
  Alcotest.(check bool) "worlds construction verified" true r.holds

let test_separation_delta () =
  let r = Thc_classify.Separations.delta_wait_below_delta_not_unidirectional () in
  Alcotest.(check bool) "short-wait violation exhibited" true r.holds

(* --- problems matrix --------------------------------------------------------------- *)

let test_problems_matrix_covers_all_cells () =
  (* Every (problem, model) pair carries at least one verdict. *)
  let problems =
    Thc_classify.Problems.
      [
        Non_equivocating_broadcast; Reliable_broadcast_p; Byzantine_broadcast;
        Very_weak_agreement; Weak_validity_agreement; Strong_validity_agreement;
      ]
  in
  let models =
    Thc_classify.Problems.
      [ Bidirectional_model; Unidirectional_model; Srb_model; Zero_model ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun m ->
          if Thc_classify.Problems.cell p m = [] then
            Alcotest.failf "empty cell: %s / %s"
              (Thc_classify.Problems.problem_name p)
              (Thc_classify.Problems.model_name m))
        models)
    problems

let test_problems_separating_cells () =
  (* The cells that realize the class separation: very weak agreement is
     solvable under unidirectionality but unsolvable in the SRB class. *)
  let uni =
    Thc_classify.Problems.cell Thc_classify.Problems.Very_weak_agreement
      Thc_classify.Problems.Unidirectional_model
  in
  let srb =
    Thc_classify.Problems.cell Thc_classify.Problems.Very_weak_agreement
      Thc_classify.Problems.Srb_model
  in
  let is_solvable = function Thc_classify.Problems.Solvable _ -> true | _ -> false in
  Alcotest.(check bool) "uni solves very weak" true (List.exists is_solvable uni);
  Alcotest.(check bool) "srb cannot" true
    (List.exists (fun v -> not (is_solvable v)) srb)

let test_problems_render () =
  let rendered = Thc_classify.Problems.render () in
  Alcotest.(check bool) "mentions byzantine broadcast" true
    (contains rendered "Byzantine broadcast")

let test_problems_verify_slow () =
  List.iter
    (fun (label, passed, detail) ->
      if not passed then Alcotest.failf "%s failed: %s" label detail)
    (Thc_classify.Problems.verify ())

(* --- witnesses ------------------------------------------------------------------------ *)

let test_witness_ids_unique () =
  let ids = List.map (fun w -> w.Thc_classify.Witnesses.id) Thc_classify.Witnesses.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_witness_lookup () =
  Alcotest.(check bool) "known id found" true
    (Thc_classify.Witnesses.by_id "srb-from-uni" <> None);
  Alcotest.(check bool) "unknown id absent" true
    (Thc_classify.Witnesses.by_id "nope" = None)

let test_cheap_witnesses () =
  List.iter
    (fun id ->
      match Thc_classify.Witnesses.by_id id with
      | Some w ->
        let passed, detail = w.Thc_classify.Witnesses.run () in
        if not passed then Alcotest.failf "%s failed: %s" id detail
      | None -> Alcotest.failf "missing witness %s" id)
    [ "a2m-from-trinc"; "trinc-from-enclave"; "trinc-from-srb" ]

let test_all_witnesses_slow () =
  List.iter
    (fun (w, passed, detail) ->
      if not passed then
        Alcotest.failf "%s failed: %s" w.Thc_classify.Witnesses.id detail)
    (Thc_classify.Witnesses.run_all ())

let test_hierarchy_verify_slow () =
  List.iter
    (fun (label, passed, detail) ->
      if not passed then Alcotest.failf "%s failed: %s" label detail)
    (Thc_classify.Hierarchy.verify h)

let () =
  Alcotest.run "thc_classify"
    [
      ( "mechanism",
        [
          Alcotest.test_case "names unique" `Quick test_mechanism_names_unique;
          Alcotest.test_case "of_name roundtrip" `Quick test_mechanism_of_name_roundtrip;
          Alcotest.test_case "of_name unknown" `Quick test_mechanism_of_name_unknown;
          Alcotest.test_case "classes" `Quick test_mechanism_classes;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "consistent" `Quick test_hierarchy_consistent;
          Alcotest.test_case "key implications" `Quick test_hierarchy_key_implications;
          Alcotest.test_case "trusted-log equivalence" `Quick test_hierarchy_trusted_log_equivalences;
          Alcotest.test_case "renderings" `Quick test_hierarchy_renderings;
        ] );
      ( "separations",
        [
          Alcotest.test_case "srb cannot uni" `Quick test_separation_srb_uni;
          Alcotest.test_case "srb cannot uni (n=9,f=4)" `Quick test_separation_srb_uni_other_sizes;
          Alcotest.test_case "bad params rejected" `Quick test_separation_srb_uni_rejects_bad_params;
          Alcotest.test_case "rb cannot very weak" `Quick test_separation_rb_very_weak;
          Alcotest.test_case "delta short wait" `Quick test_separation_delta;
        ] );
      ( "problems",
        [
          Alcotest.test_case "full coverage" `Quick test_problems_matrix_covers_all_cells;
          Alcotest.test_case "separating cells" `Quick test_problems_separating_cells;
          Alcotest.test_case "render" `Quick test_problems_render;
          Alcotest.test_case "verify cells" `Slow test_problems_verify_slow;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "ids unique" `Quick test_witness_ids_unique;
          Alcotest.test_case "lookup" `Quick test_witness_lookup;
          Alcotest.test_case "cheap witnesses" `Quick test_cheap_witnesses;
          Alcotest.test_case "all witnesses" `Slow test_all_witnesses_slow;
          Alcotest.test_case "hierarchy verify" `Slow test_hierarchy_verify_slow;
        ] );
    ]
