(* Tests for the agreement layer: the specification monitors and the
   protocols for the paper's three agreement variants. *)

let qcheck = QCheck_alcotest.to_alcotest

let fast = Thc_sim.Delay.Uniform (10L, 400L)

let keyring ?(n = 5) ?(seed = 91L) () =
  Thc_crypto.Keyring.create (Thc_util.Rng.create seed) ~n

(* --- the spec monitors on synthetic traces -------------------------------------- *)

let scripted obs : unit Thc_sim.Engine.behavior =
  {
    init = (fun ctx -> List.iter ctx.output obs);
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

let synthetic per_pid =
  let n = List.length per_pid in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~n ~net () in
  List.iteri
    (fun pid obs -> Thc_sim.Engine.set_behavior engine pid (scripted obs))
    per_pid;
  Thc_sim.Engine.run engine

let decided v = Thc_sim.Obs.Decided v

let has prop violations =
  List.exists (fun v -> v.Thc_agreement.Agreement_spec.property = prop) violations

let inputs_of l = Array.of_list (List.map (fun v -> Some v) l)

let test_spec_termination () =
  let trace = synthetic [ [ decided (Some "v") ]; [] ] in
  Alcotest.(check bool) "missing decision flagged" true
    (has `Termination
       (Thc_agreement.Agreement_spec.check `Weak
          ~inputs:(inputs_of [ "v"; "v" ])
          trace))

let test_spec_agreement_weak () =
  let trace = synthetic [ [ decided (Some "a") ]; [ decided (Some "b") ] ] in
  Alcotest.(check bool) "weak flags disagreement" true
    (has `Agreement
       (Thc_agreement.Agreement_spec.check `Weak
          ~inputs:(inputs_of [ "a"; "b" ])
          trace))

let test_spec_agreement_very_weak_allows_bot () =
  (* Inputs differ, so the validity clause does not apply; agreement up to
     ⊥ accepts a value alongside ⊥. *)
  let trace = synthetic [ [ decided (Some "a") ]; [ decided None ] ] in
  Alcotest.(check int) "⊥ is compatible with a value" 0
    (List.length
       (Thc_agreement.Agreement_spec.check `Very_weak
          ~inputs:(inputs_of [ "a"; "b" ])
          trace))

let test_spec_very_weak_validity_needs_all_correct () =
  (* A fault present: very-weak validity imposes nothing, ⊥ everywhere ok. *)
  let n = 2 in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~n ~net () in
  Thc_sim.Engine.set_behavior engine 0 (scripted [ decided None ]);
  Thc_sim.Engine.set_behavior engine 1 (scripted []);
  Thc_sim.Engine.mark_byzantine engine 1;
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "no validity violation with a fault" 0
    (List.length
       (Thc_agreement.Agreement_spec.check `Very_weak
          ~inputs:(inputs_of [ "v"; "v" ])
          trace))

let test_spec_very_weak_validity_enforced_when_clean () =
  let trace = synthetic [ [ decided None ]; [ decided None ] ] in
  Alcotest.(check bool) "all-correct common input must be decided" true
    (has `Validity
       (Thc_agreement.Agreement_spec.check `Very_weak
          ~inputs:(inputs_of [ "v"; "v" ])
          trace))

let test_spec_strong_validity_over_correct_only () =
  (* Byzantine input differs; correct processes share "v" and decide it. *)
  let n = 3 in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~n ~net () in
  Thc_sim.Engine.set_behavior engine 0 (scripted [ decided (Some "v") ]);
  Thc_sim.Engine.set_behavior engine 1 (scripted [ decided (Some "v") ]);
  Thc_sim.Engine.set_behavior engine 2 (scripted []);
  Thc_sim.Engine.mark_byzantine engine 2;
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "strong validity satisfied" 0
    (List.length
       (Thc_agreement.Agreement_spec.check `Strong
          ~inputs:(inputs_of [ "v"; "v"; "w" ])
          trace));
  (* And violated if a correct process strays. *)
  let trace2 = synthetic [ [ decided (Some "v") ]; [ decided (Some "x") ] ] in
  Alcotest.(check bool) "stray decision flagged" true
    (has `Validity
       (Thc_agreement.Agreement_spec.check `Strong
          ~inputs:(inputs_of [ "v"; "v" ])
          trace2))

(* --- very weak agreement over unidirectional rounds ------------------------------- *)

let run_very_weak ~seed ~inputs ~byz =
  let n = Array.length inputs in
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let states =
    Array.map (fun input -> Thc_agreement.Very_weak.create ~input) inputs
  in
  Array.iteri
    (fun pid st ->
      if not (List.mem pid byz) then
        Thc_sim.Engine.set_behavior engine pid
          (Thc_rounds.Swmr_rounds.behavior ~registers
             ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
             (Thc_agreement.Very_weak.app st)))
    states;
  List.iter (fun pid -> Thc_sim.Engine.mark_byzantine engine pid) byz;
  (engine, registers, keyring, states)

let finish engine = Thc_sim.Engine.run ~until:5_000_000L engine

let test_very_weak_common_input () =
  let engine, _, _, states =
    run_very_weak ~seed:101L ~inputs:(Array.make 4 "v") ~byz:[]
  in
  let trace = finish engine in
  Alcotest.(check int) "spec satisfied" 0
    (List.length
       (Thc_agreement.Agreement_spec.check `Very_weak
          ~inputs:(Array.make 4 (Some "v"))
          trace));
  Array.iter
    (fun st ->
      match Thc_agreement.Very_weak.committed st with
      | Some (Some "v") -> ()
      | _ -> Alcotest.fail "common input not decided")
    states

let test_very_weak_mixed_inputs () =
  let inputs = [| "a"; "a"; "b"; "b" |] in
  let engine, _, _, _ = run_very_weak ~seed:102L ~inputs ~byz:[] in
  let trace = finish engine in
  Alcotest.(check int) "agreement up to ⊥ holds" 0
    (List.length
       (Thc_agreement.Agreement_spec.check `Very_weak
          ~inputs:(Array.map (fun v -> Some v) inputs)
          trace))

let test_very_weak_byzantine_equivocator () =
  (* The Byzantine process publishes two different round-1 values directly
     into its register; correct processes still satisfy the spec. *)
  let inputs = [| "v"; "v"; "v"; "v" |] in
  let engine, registers, keyring, _ =
    run_very_weak ~seed:103L ~inputs ~byz:[ 3 ]
  in
  let ident = Thc_crypto.Keyring.secret keyring ~pid:3 in
  let byz : unit Thc_sim.Engine.behavior =
    {
      init =
        (fun _ ->
          Thc_sharedmem.Swmr.append registers.(3) ~ident (1, "v");
          Thc_sharedmem.Swmr.append registers.(3) ~ident (1, "w"));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 3 byz;
  let trace = finish engine in
  Alcotest.(check int) "agreement survives equivocation" 0
    (List.length
       (Thc_agreement.Agreement_spec.check `Very_weak
          ~inputs:(Array.map (fun v -> Some v) inputs)
          trace))

let prop_very_weak_agreement_random =
  QCheck.Test.make ~name:"very weak agreement over random inputs/schedules"
    ~count:20
    QCheck.(pair int64 (list_of_size (Gen.return 4) (int_bound 1)))
    (fun (seed, ins) ->
      QCheck.assume (List.length ins = 4);
      let inputs = Array.of_list (List.map string_of_int ins) in
      let engine, _, _, _ = run_very_weak ~seed ~inputs ~byz:[] in
      let trace = finish engine in
      Thc_agreement.Agreement_spec.check `Very_weak
        ~inputs:(Array.map (fun v -> Some v) inputs)
        trace
      = [])

(* --- strong validity over bidirectional rounds ------------------------------------ *)

let run_strong ~seed ~n ~f ~inputs ~byz =
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L)) in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  Array.iteri
    (fun pid input ->
      if List.mem pid byz then begin
        Thc_sim.Engine.mark_byzantine engine pid;
        Thc_sim.Engine.set_behavior engine pid Thc_sim.Engine.no_op
      end
      else
        Thc_sim.Engine.set_behavior engine pid
          (Thc_rounds.Sync_rounds.behavior ~period:1_000L
             (Thc_agreement.Strong_validity.app
                (Thc_agreement.Strong_validity.create ~keyring
                   ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                   ~n ~f ~input))))
    inputs;
  Thc_sim.Engine.run ~until:60_000L engine

let test_strong_common_correct_input () =
  let n = 5 and f = 2 in
  let inputs = [| "c"; "c"; "c"; "x"; "y" |] in
  let trace = run_strong ~seed:111L ~n ~f ~inputs ~byz:[ 3; 4 ] in
  Alcotest.(check int) "strong validity satisfied with f silent" 0
    (List.length
       (Thc_agreement.Agreement_spec.check `Strong
          ~inputs:(Array.map (fun v -> Some v) inputs)
          trace))

let test_strong_mixed_correct_inputs_agree () =
  let n = 5 and f = 2 in
  let inputs = [| "a"; "b"; "a"; "b"; "a" |] in
  let trace = run_strong ~seed:112L ~n ~f ~inputs ~byz:[] in
  (* No common correct input: only agreement + termination are required. *)
  let violations =
    Thc_agreement.Agreement_spec.check `Strong
      ~inputs:(Array.map (fun v -> Some v) inputs)
      trace
  in
  Alcotest.(check bool) "no agreement violation" false (has `Agreement violations);
  Alcotest.(check bool) "no termination violation" false
    (has `Termination violations)

(* --- weak validity (single-shot MinBFT over trusted counters) ------------------ *)

let test_weak_validity_common_input () =
  let o = Thc_agreement.Weak_validity.run ~f:1 ~inputs:[| "v"; "v"; "v" |] () in
  Alcotest.(check bool) "agreement" true o.agreement;
  Alcotest.(check bool) "validity" true o.validity;
  Alcotest.(check bool) "termination" true o.termination;
  Array.iter
    (fun d -> Alcotest.(check (option string)) "decided v" (Some "v") d)
    o.decisions

let test_weak_validity_mixed_inputs () =
  let o = Thc_agreement.Weak_validity.run ~f:2 ~inputs:[| "a"; "b"; "c"; "d"; "e" |] () in
  Alcotest.(check bool) "agreement" true o.agreement;
  Alcotest.(check bool) "termination" true o.termination

let test_weak_validity_crash_leader () =
  let o =
    Thc_agreement.Weak_validity.run ~f:1 ~inputs:[| "a"; "b"; "c" |]
      ~crash_leader:true ()
  in
  Alcotest.(check bool) "agreement among survivors" true o.agreement;
  Alcotest.(check bool) "termination through view change" true o.termination;
  Alcotest.(check bool) "view advanced" true (o.final_view >= 1)

let test_weak_validity_input_arity () =
  Alcotest.(check bool) "wrong arity rejected" true
    (match Thc_agreement.Weak_validity.run ~f:2 ~inputs:[| "a" |] () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_weak_validity_random_seeds =
  QCheck.Test.make ~name:"weak validity across seeds" ~count:5 QCheck.int64
    (fun seed ->
      let o =
        Thc_agreement.Weak_validity.run ~f:1 ~inputs:[| "x"; "y"; "x" |] ~seed ()
      in
      o.agreement && o.termination)

let () =
  Alcotest.run "thc_agreement"
    [
      ( "spec",
        [
          Alcotest.test_case "termination" `Quick test_spec_termination;
          Alcotest.test_case "weak agreement" `Quick test_spec_agreement_weak;
          Alcotest.test_case "very weak allows ⊥" `Quick test_spec_agreement_very_weak_allows_bot;
          Alcotest.test_case "validity needs all correct" `Quick test_spec_very_weak_validity_needs_all_correct;
          Alcotest.test_case "validity enforced" `Quick test_spec_very_weak_validity_enforced_when_clean;
          Alcotest.test_case "strong over correct" `Quick test_spec_strong_validity_over_correct_only;
        ] );
      ( "very-weak",
        [
          Alcotest.test_case "common input" `Quick test_very_weak_common_input;
          Alcotest.test_case "mixed inputs" `Quick test_very_weak_mixed_inputs;
          Alcotest.test_case "byzantine equivocator" `Quick test_very_weak_byzantine_equivocator;
          qcheck prop_very_weak_agreement_random;
        ] );
      ( "strong-validity",
        [
          Alcotest.test_case "common correct input" `Quick test_strong_common_correct_input;
          Alcotest.test_case "mixed inputs agree" `Quick test_strong_mixed_correct_inputs_agree;
        ] );
      ( "weak-validity",
        [
          Alcotest.test_case "common input" `Quick test_weak_validity_common_input;
          Alcotest.test_case "mixed inputs" `Quick test_weak_validity_mixed_inputs;
          Alcotest.test_case "crash leader" `Quick test_weak_validity_crash_leader;
          Alcotest.test_case "input arity" `Quick test_weak_validity_input_arity;
          qcheck prop_weak_validity_random_seeds;
        ] );
    ]
