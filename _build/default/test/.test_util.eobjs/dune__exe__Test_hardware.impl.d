test/test_hardware.ml: Alcotest Gen Hashtbl Int64 List QCheck QCheck_alcotest Thc_hardware Thc_util
