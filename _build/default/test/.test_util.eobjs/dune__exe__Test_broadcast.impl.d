test/test_broadcast.ml: Alcotest Array Fun Int64 List Option Printf QCheck QCheck_alcotest Thc_broadcast Thc_crypto Thc_hardware Thc_rounds Thc_sharedmem Thc_sim Thc_util
