test/test_sim.ml: Alcotest Int64 List QCheck QCheck_alcotest Thc_sim Thc_util
