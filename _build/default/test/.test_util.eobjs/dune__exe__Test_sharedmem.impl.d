test/test_sharedmem.ml: Alcotest Array Gen List QCheck QCheck_alcotest String Thc_crypto Thc_sharedmem Thc_util
