test/test_agreement.ml: Alcotest Array Gen List QCheck QCheck_alcotest Thc_agreement Thc_crypto Thc_rounds Thc_sharedmem Thc_sim Thc_util
