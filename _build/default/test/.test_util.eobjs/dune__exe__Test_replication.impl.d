test/test_replication.ml: Alcotest Array Gen Int64 List QCheck QCheck_alcotest Thc_crypto Thc_hardware Thc_replication Thc_sim Thc_util
