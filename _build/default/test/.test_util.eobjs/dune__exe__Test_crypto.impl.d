test/test_crypto.ml: Alcotest QCheck QCheck_alcotest String Thc_crypto Thc_util
