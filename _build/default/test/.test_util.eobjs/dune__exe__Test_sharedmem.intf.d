test/test_sharedmem.mli:
