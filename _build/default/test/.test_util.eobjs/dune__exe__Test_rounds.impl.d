test/test_rounds.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Thc_crypto Thc_rounds Thc_sharedmem Thc_sim Thc_util
