test/test_rounds.mli:
