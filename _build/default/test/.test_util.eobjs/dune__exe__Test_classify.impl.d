test/test_classify.ml: Alcotest List String Thc_classify
