(* Tests for the round-driver layer: the directionality monitors themselves,
   and each driver's guarantee (and non-guarantee) under adversarial
   scheduling, partitions and Byzantine participants. *)

let qcheck = QCheck_alcotest.to_alcotest

let fast = Thc_sim.Delay.Uniform (10L, 400L)

let keyring ?(n = 5) ?(seed = 17L) () =
  Thc_crypto.Keyring.create (Thc_util.Rng.create seed) ~n

let chatter pid ~rounds : Thc_rounds.Round_app.app =
  {
    first_payload = (fun _ -> Some (Printf.sprintf "r1-p%d" pid));
    on_receive = (fun _ ~round:_ ~from:_ _ -> ());
    on_round_check =
      (fun h ~round ->
        if round >= rounds then Thc_rounds.Round_app.Stop
        else
          Thc_rounds.Round_app.Advance
            (Some (Printf.sprintf "r%d-p%d" (round + 1) h.self)));
  }

(* --- the monitors on synthetic traces -------------------------------------- *)

(* A behavior that emits a scripted list of observations and nothing else. *)
let scripted obs : unit Thc_sim.Engine.behavior =
  {
    init = (fun ctx -> List.iter ctx.output obs);
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

let synthetic_trace per_pid =
  let n = List.length per_pid in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~n ~net () in
  List.iteri
    (fun pid obs -> Thc_sim.Engine.set_behavior engine pid (scripted obs))
    per_pid;
  Thc_sim.Engine.run engine

let sent r = Thc_sim.Obs.Round_sent { round = r; payload = "m" }

let recv r from = Thc_sim.Obs.Round_received { round = r; from; payload = "m" }

let ended r = Thc_sim.Obs.Round_ended { round = r }

let test_monitor_detects_mutual_silence () =
  let trace =
    synthetic_trace [ [ sent 1; ended 1 ]; [ sent 1; ended 1 ] ]
  in
  Alcotest.(check int) "one uni violation" 1
    (List.length (Thc_rounds.Directionality.check_unidirectional trace))

let test_monitor_one_direction_suffices () =
  let trace =
    synthetic_trace [ [ sent 1; recv 1 1; ended 1 ]; [ sent 1; ended 1 ] ]
  in
  Alcotest.(check int) "no uni violation" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace));
  Alcotest.(check int) "but a bi violation" 1
    (List.length (Thc_rounds.Directionality.check_bidirectional trace))

let test_monitor_both_directions_bi () =
  let trace =
    synthetic_trace
      [ [ sent 1; recv 1 1; ended 1 ]; [ sent 1; recv 1 0; ended 1 ] ]
  in
  Alcotest.(check int) "bi satisfied" 0
    (List.length (Thc_rounds.Directionality.check_bidirectional trace))

let test_monitor_needs_both_senders () =
  (* p1 sent nothing: the pair is unconstrained. *)
  let trace = synthetic_trace [ [ sent 1; ended 1 ]; [ ended 1 ] ] in
  Alcotest.(check int) "non-sender pair unconstrained" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace))

let test_monitor_needs_round_end () =
  (* p1 never finished round 1: no verdict yet. *)
  let trace = synthetic_trace [ [ sent 1; ended 1 ]; [ sent 1 ] ] in
  Alcotest.(check int) "unfinished round unconstrained" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace))

let test_monitor_ignores_byzantine () =
  let n = 2 in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~n ~net () in
  Thc_sim.Engine.set_behavior engine 0 (scripted [ sent 1; ended 1 ]);
  Thc_sim.Engine.set_behavior engine 1 (scripted [ sent 1; ended 1 ]);
  Thc_sim.Engine.mark_byzantine engine 1;
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "byzantine pairs unconstrained" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace))

let test_rounds_completed () =
  let trace = synthetic_trace [ [ ended 1; ended 2; ended 3 ] ] in
  Alcotest.(check int) "counts ends" 3
    (Thc_rounds.Directionality.rounds_completed trace ~pid:0)

(* --- shared-memory drivers --------------------------------------------------- *)

let run_swmr ?(n = 5) ~seed ~rounds () =
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Swmr_rounds.behavior ~registers
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (chatter pid ~rounds))
  done;
  Thc_sim.Engine.run ~until:10_000_000L engine

let test_swmr_completes_and_uni () =
  let trace = run_swmr ~seed:5L ~rounds:4 () in
  for pid = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "p%d completed" pid)
      4
      (Thc_rounds.Directionality.rounds_completed trace ~pid)
  done;
  Alcotest.(check int) "uni holds" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace))

let prop_swmr_uni_all_seeds =
  QCheck.Test.make ~name:"swmr rounds unidirectional for all schedules"
    ~count:25 QCheck.int64
    (fun seed ->
      let trace = run_swmr ~seed ~rounds:3 () in
      Thc_rounds.Directionality.check_unidirectional trace = [])

let test_swmr_byzantine_equivocation_visible () =
  (* A Byzantine owner appends two conflicting round-1 entries; honest
     readers observe both — shared memory exposes equivocation rather than
     hiding it. *)
  let n = 3 in
  let keyring = keyring ~n () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed:9L ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let seen = ref [] in
  let observer pid : Thc_rounds.Round_app.app =
    {
      first_payload = (fun _ -> Some (Printf.sprintf "p%d" pid));
      on_receive =
        (fun _ ~round ~from payload ->
          if from = 2 then seen := (round, payload) :: !seen);
      on_round_check = (fun _ ~round:_ -> Thc_rounds.Round_app.Stop);
    }
  in
  for pid = 0 to 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Swmr_rounds.behavior ~registers
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (observer pid))
  done;
  Thc_sim.Engine.mark_byzantine engine 2;
  let byz : unit Thc_sim.Engine.behavior =
    {
      init =
        (fun _ ->
          let ident = Thc_crypto.Keyring.secret keyring ~pid:2 in
          Thc_sharedmem.Swmr.append registers.(2) ~ident (1, "white");
          Thc_sharedmem.Swmr.append registers.(2) ~ident (1, "black"));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 2 byz;
  ignore (Thc_sim.Engine.run ~until:1_000_000L engine);
  let payloads = List.sort_uniq compare (List.map snd !seen) in
  Alcotest.(check (list string)) "both conflicting values visible"
    [ "black"; "white" ] payloads

let test_sticky_driver () =
  let n = 4 in
  let keyring = keyring ~n () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed:6L ~n ~net () in
  let board = Thc_rounds.Sticky_rounds.create_board ~n in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Sticky_rounds.behavior ~board
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (chatter pid ~rounds:3))
  done;
  let trace = Thc_sim.Engine.run ~until:10_000_000L engine in
  Alcotest.(check int) "uni holds" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace));
  Alcotest.(check int) "rounds complete" 3
    (Thc_rounds.Directionality.rounds_completed trace ~pid:0)

let test_sticky_cell_acl () =
  let board = Thc_rounds.Sticky_rounds.create_board ~n:2 in
  let keyring = keyring ~n:2 () in
  let cell = Thc_rounds.Sticky_rounds.cell board ~owner:0 ~round:1 in
  match
    Thc_sharedmem.Sticky.set cell
      ~ident:(Thc_crypto.Keyring.secret keyring ~pid:1)
      "spoof"
  with
  | _ -> Alcotest.fail "foreign write accepted"
  | exception Thc_sharedmem.Acl.Violation _ -> ()

let test_peats_driver () =
  let n = 4 in
  let keyring = keyring ~n () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed:8L ~n ~net () in
  let space =
    Thc_sharedmem.Peats.create ~policy:Thc_sharedmem.Peats.owned_field_policy
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Peats_rounds.behavior ~space ~n
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (chatter pid ~rounds:3))
  done;
  let trace = Thc_sim.Engine.run ~until:10_000_000L engine in
  Alcotest.(check int) "uni holds" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace))

(* --- message-passing drivers ---------------------------------------------------- *)

let test_async_rounds_complete () =
  let n = 5 in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed:10L ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Async_rounds.behavior ~f:2 (chatter pid ~rounds:3))
  done;
  let trace = Thc_sim.Engine.run ~until:10_000_000L engine in
  for pid = 0 to n - 1 do
    Alcotest.(check int) "3 rounds" 3
      (Thc_rounds.Directionality.rounds_completed trace ~pid)
  done

let test_async_rounds_partition_violates_uni () =
  let n = 4 in
  let net = Thc_sim.Net.create ~n ~default:fast in
  Thc_sim.Net.isolate_groups net ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] Thc_sim.Net.Block;
  let engine = Thc_sim.Engine.create ~seed:11L ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Async_rounds.behavior ~f:2 (chatter pid ~rounds:1))
  done;
  Thc_sim.Engine.at engine 500_000L (fun () ->
      Thc_sim.Engine.heal_all engine fast);
  let trace = Thc_sim.Engine.run ~until:1_000_000L engine in
  Alcotest.(check bool) "zero-directionality exposed" true
    (Thc_rounds.Directionality.check_unidirectional trace <> [])

let test_sync_rounds_bidirectional () =
  let n = 4 in
  (* Delays strictly below the period: lock-step holds. *)
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L)) in
  let engine = Thc_sim.Engine.create ~seed:12L ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Sync_rounds.behavior ~period:1_000L (chatter pid ~rounds:4))
  done;
  let trace = Thc_sim.Engine.run ~until:100_000L engine in
  Alcotest.(check int) "bidirectional" 0
    (List.length (Thc_rounds.Directionality.check_bidirectional trace))

let test_sync_rounds_break_without_bound () =
  (* One link slower than the round period: the synchrony assumption is
     violated and bidirectionality falls. *)
  let n = 3 in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Const 100L) in
  Thc_sim.Net.set net ~src:0 ~dst:1 (Thc_sim.Net.Deliver (Thc_sim.Delay.Const 5_000L));
  let engine = Thc_sim.Engine.create ~seed:13L ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Sync_rounds.behavior ~period:1_000L (chatter pid ~rounds:2))
  done;
  let trace = Thc_sim.Engine.run ~until:100_000L engine in
  Alcotest.(check bool) "bi violated" true
    (Thc_rounds.Directionality.check_bidirectional trace <> [])

let test_delta_rounds_uni_with_offsets () =
  let n = 4 in
  let delta = 1_000L in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, delta)) in
  let engine = Thc_sim.Engine.create ~seed:14L ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Delta_rounds.behavior ~wait:delta
         ~start_offset:(Int64.of_int (pid * 700))
         (chatter pid ~rounds:3))
  done;
  let trace = Thc_sim.Engine.run ~until:1_000_000L engine in
  Alcotest.(check int) "uni holds at wait = delta" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace));
  (* With misaligned starts, bidirectionality genuinely fails. *)
  Alcotest.(check bool) "bi does not hold" true
    (Thc_rounds.Directionality.check_bidirectional trace <> [])

let test_rb1_partitioned_pair () =
  let n = 4 in
  let keyring = keyring ~n () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed:15L ~n ~net () in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Rb_rounds_f1.behavior ~keyring
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (chatter pid ~rounds:2))
  done;
  Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Block;
  Thc_sim.Engine.set_link engine ~src:1 ~dst:0 Thc_sim.Net.Block;
  let trace = Thc_sim.Engine.run ~until:10_000_000L engine in
  Alcotest.(check int) "uni holds through relaying" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace));
  for pid = 0 to n - 1 do
    Alcotest.(check int) "rounds complete" 2
      (Thc_rounds.Directionality.rounds_completed trace ~pid)
  done

let test_rb1_tolerates_silent_fault () =
  let n = 4 in
  let keyring = keyring ~n () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed:16L ~n ~net () in
  for pid = 0 to n - 2 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Rb_rounds_f1.behavior ~keyring
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (chatter pid ~rounds:2))
  done;
  Thc_sim.Engine.mark_byzantine engine (n - 1);
  Thc_sim.Engine.set_behavior engine (n - 1) Thc_sim.Engine.no_op;
  let trace = Thc_sim.Engine.run ~until:10_000_000L engine in
  Alcotest.(check int) "uni among correct" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace));
  for pid = 0 to n - 2 do
    Alcotest.(check int) "correct complete despite silent fault" 2
      (Thc_rounds.Directionality.rounds_completed trace ~pid)
  done

let prop_rb1_uni_under_random_partition =
  QCheck.Test.make
    ~name:"rb1 rounds stay unidirectional under a random pair partition"
    ~count:15 QCheck.int64
    (fun seed ->
      let n = 4 in
      let keyring = keyring ~n ~seed:17L () in
      let net = Thc_sim.Net.create ~n ~default:fast in
      let engine = Thc_sim.Engine.create ~seed ~n ~net () in
      for pid = 0 to n - 1 do
        Thc_sim.Engine.set_behavior engine pid
          (Thc_rounds.Rb_rounds_f1.behavior ~keyring
             ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
             (chatter pid ~rounds:2))
      done;
      (* Random fully-partitioned pair. *)
      let rng = Thc_util.Rng.create seed in
      let a = Thc_util.Rng.int rng n in
      let b = (a + 1 + Thc_util.Rng.int rng (n - 1)) mod n in
      Thc_sim.Engine.set_link engine ~src:a ~dst:b Thc_sim.Net.Block;
      Thc_sim.Engine.set_link engine ~src:b ~dst:a Thc_sim.Net.Block;
      let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
      Thc_rounds.Directionality.check_unidirectional trace = []
      && List.for_all
           (fun pid -> Thc_rounds.Directionality.rounds_completed trace ~pid >= 2)
           (List.init n (fun i -> i)))

(* --- Hold semantics ------------------------------------------------------------ *)

let test_hold_keeps_round_open () =
  (* p0 holds its round until it has heard from everyone (not just until the
     mechanical end), exercising the paper's "until round finished AND
     condition" pattern. *)
  let n = 3 in
  let keyring = keyring ~n () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed:18L ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let heard = ref [] in
  let holding_app : Thc_rounds.Round_app.app =
    {
      first_payload = (fun _ -> Some "p0");
      on_receive = (fun _ ~round:_ ~from _ -> heard := from :: !heard);
      on_round_check =
        (fun _ ~round:_ ->
          if List.length (List.sort_uniq compare !heard) >= 3 then
            Thc_rounds.Round_app.Stop
          else Thc_rounds.Round_app.Hold);
    }
  in
  Thc_sim.Engine.set_behavior engine 0
    (Thc_rounds.Swmr_rounds.behavior ~registers
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:0)
       holding_app);
  (* p1 writes immediately; p2 only after a long pause — p0 must keep
     polling across the pause. *)
  Thc_sim.Engine.set_behavior engine 1
    (Thc_rounds.Swmr_rounds.behavior ~registers
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:1)
       (chatter 1 ~rounds:1));
  let late : unit Thc_sim.Engine.behavior =
    {
      init = (fun ctx -> ctx.set_timer ~delay:50_000L ~tag:0);
      on_message = (fun _ ~src:_ _ -> ());
      on_timer =
        (fun _ _ ->
          Thc_sharedmem.Swmr.append registers.(2)
            ~ident:(Thc_crypto.Keyring.secret keyring ~pid:2)
            (1, "late"));
      }
  in
  Thc_sim.Engine.set_behavior engine 2 late;
  let trace = Thc_sim.Engine.run ~until:1_000_000L engine in
  Alcotest.(check int) "p0 eventually stopped after hearing all" 1
    (Thc_rounds.Directionality.rounds_completed trace ~pid:0);
  Alcotest.(check bool) "p0 heard the late writer" true (List.mem 2 !heard)

let () =
  Alcotest.run "thc_rounds"
    [
      ( "monitor",
        [
          Alcotest.test_case "mutual silence" `Quick test_monitor_detects_mutual_silence;
          Alcotest.test_case "one direction suffices" `Quick test_monitor_one_direction_suffices;
          Alcotest.test_case "both directions bi" `Quick test_monitor_both_directions_bi;
          Alcotest.test_case "needs both senders" `Quick test_monitor_needs_both_senders;
          Alcotest.test_case "needs round end" `Quick test_monitor_needs_round_end;
          Alcotest.test_case "ignores byzantine" `Quick test_monitor_ignores_byzantine;
          Alcotest.test_case "rounds completed" `Quick test_rounds_completed;
        ] );
      ( "swmr",
        [
          Alcotest.test_case "completes, uni" `Quick test_swmr_completes_and_uni;
          Alcotest.test_case "equivocation visible" `Quick test_swmr_byzantine_equivocation_visible;
          qcheck prop_swmr_uni_all_seeds;
        ] );
      ( "sticky/peats",
        [
          Alcotest.test_case "sticky driver" `Quick test_sticky_driver;
          Alcotest.test_case "sticky cell acl" `Quick test_sticky_cell_acl;
          Alcotest.test_case "peats driver" `Quick test_peats_driver;
        ] );
      ( "message-passing",
        [
          Alcotest.test_case "async completes" `Quick test_async_rounds_complete;
          Alcotest.test_case "async partition" `Quick test_async_rounds_partition_violates_uni;
          Alcotest.test_case "sync bidirectional" `Quick test_sync_rounds_bidirectional;
          Alcotest.test_case "sync broken bound" `Quick test_sync_rounds_break_without_bound;
          Alcotest.test_case "delta uni" `Quick test_delta_rounds_uni_with_offsets;
          Alcotest.test_case "rb1 partitioned pair" `Quick test_rb1_partitioned_pair;
          Alcotest.test_case "rb1 silent fault" `Quick test_rb1_tolerates_silent_fault;
          qcheck prop_rb1_uni_under_random_partition;
        ] );
      ("hold", [ Alcotest.test_case "keeps round open" `Quick test_hold_keeps_round_open ]);
    ]
