(* Tests for the broadcast layer: the SRB specification monitor, the ideal
   SRB functionality, Theorem 1 (TrInc from SRB), SRB from TrInc, plain
   reliable broadcast, Algorithm 1 (SRB from unidirectional rounds) with
   Byzantine senders, NEB and Dolev-Strong. *)

let qcheck = QCheck_alcotest.to_alcotest

let fast = Thc_sim.Delay.Uniform (10L, 400L)

let keyring ?(n = 5) ?(seed = 51L) () =
  Thc_crypto.Keyring.create (Thc_util.Rng.create seed) ~n

(* --- the SRB monitor on synthetic traces ---------------------------------------- *)

let scripted obs : unit Thc_sim.Engine.behavior =
  {
    init = (fun ctx -> List.iter ctx.output obs);
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

let synthetic per_pid =
  let n = List.length per_pid in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~n ~net () in
  List.iteri
    (fun pid obs -> Thc_sim.Engine.set_behavior engine pid (scripted obs))
    per_pid;
  Thc_sim.Engine.run engine

let bcast seq value = Thc_sim.Obs.Srb_broadcast { seq; value }

let dlv seq value = Thc_sim.Obs.Srb_delivered { sender = 0; seq; value }

let has prop violations =
  List.exists (fun v -> v.Thc_broadcast.Srb_spec.property = prop) violations

let test_spec_clean () =
  let trace =
    synthetic [ [ bcast 1 "a"; dlv 1 "a" ]; [ dlv 1 "a" ] ]
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0))

let test_spec_validity () =
  let trace = synthetic [ [ bcast 1 "a"; dlv 1 "a" ]; [] ] in
  Alcotest.(check bool) "missing delivery flagged" true
    (has `Validity (Thc_broadcast.Srb_spec.check trace ~sender:0))

let test_spec_totality_and_agreement () =
  let trace =
    synthetic [ [ bcast 1 "a"; bcast 2 "b"; dlv 1 "a"; dlv 2 "b" ]; [ dlv 1 "a" ] ]
  in
  Alcotest.(check bool) "partial delivery flagged" true
    (has `Totality (Thc_broadcast.Srb_spec.check trace ~sender:0));
  let trace2 = synthetic [ [ dlv 1 "a" ]; [ dlv 1 "b" ] ] in
  Alcotest.(check bool) "conflicting delivery flagged" true
    (has `Agreement (Thc_broadcast.Srb_spec.check trace2 ~sender:0))

let test_spec_sequencing () =
  let trace = synthetic [ [ dlv 2 "b" ] ] in
  Alcotest.(check bool) "gap flagged" true
    (has `Sequencing (Thc_broadcast.Srb_spec.check trace ~sender:0))

let test_spec_integrity () =
  let trace = synthetic [ [ bcast 1 "a"; dlv 1 "forged" ] ] in
  Alcotest.(check bool) "unbroadcast delivery flagged" true
    (has `Integrity (Thc_broadcast.Srb_spec.check trace ~sender:0))

(* --- ideal SRB ---------------------------------------------------------------------- *)

let test_ideal_srb_log_and_genuine () =
  let hub = Thc_broadcast.Ideal_srb.hub ~sender:3 in
  let w1 = Thc_broadcast.Ideal_srb.broadcast hub "x" in
  let w2 = Thc_broadcast.Ideal_srb.broadcast hub "y" in
  Alcotest.(check int) "seq 1" 1 w1.seq;
  Alcotest.(check int) "seq 2" 2 w2.seq;
  Alcotest.(check (list (pair int string))) "log" [ (1, "x"); (2, "y") ]
    (Thc_broadcast.Ideal_srb.log hub);
  Alcotest.(check bool) "genuine" true (Thc_broadcast.Ideal_srb.genuine hub w1);
  Alcotest.(check bool) "fabricated wire rejected" false
    (Thc_broadcast.Ideal_srb.genuine hub
       { Thc_broadcast.Ideal_srb.sender = 3; seq = 1; value = "forged" })

let test_ideal_srb_rx_order () =
  let hub = Thc_broadcast.Ideal_srb.hub ~sender:0 in
  let w1 = Thc_broadcast.Ideal_srb.broadcast hub "a" in
  let w2 = Thc_broadcast.Ideal_srb.broadcast hub "b" in
  let rx = Thc_broadcast.Ideal_srb.Rx.create hub in
  (* Out-of-order arrival: seq 2 buffered until seq 1 arrives. *)
  (match Thc_broadcast.Ideal_srb.Rx.receive rx w2 with
  | `Fresh [] -> ()
  | _ -> Alcotest.fail "expected fresh-but-held");
  (match Thc_broadcast.Ideal_srb.Rx.receive rx w1 with
  | `Fresh [ (1, "a"); (2, "b") ] -> ()
  | _ -> Alcotest.fail "expected both released in order");
  Alcotest.(check int) "delivered upto" 2
    (Thc_broadcast.Ideal_srb.Rx.delivered_upto rx);
  (match Thc_broadcast.Ideal_srb.Rx.receive rx w1 with
  | `Stale -> ()
  | _ -> Alcotest.fail "duplicate should be stale")

(* --- Theorem 1: TrInc from SRB -------------------------------------------------------- *)

let test_trinc_from_srb_direct () =
  let n = 3 in
  let hubs = Array.init n (fun sender -> Thc_broadcast.Ideal_srb.hub ~sender) in
  let states = Array.init n (fun self -> Thc_broadcast.Trinc_from_srb.create ~hubs ~self) in
  let a1, w1 = Thc_broadcast.Trinc_from_srb.attest states.(0) ~counter:4 ~message:"m" in
  (* Everyone who receives the wire can check the attestation. *)
  for pid = 1 to n - 1 do
    ignore (Thc_broadcast.Trinc_from_srb.on_wire states.(pid) w1);
    Alcotest.(check bool) "checks true after delivery" true
      (Thc_broadcast.Trinc_from_srb.check states.(pid) a1 ~id:0);
    Alcotest.(check int) "counter table updated" 4
      (Thc_broadcast.Trinc_from_srb.counter_of states.(pid) ~id:0)
  done;
  (* Non-monotone re-attest: stored nowhere. *)
  let a2, w2 = Thc_broadcast.Trinc_from_srb.attest states.(0) ~counter:2 ~message:"m2" in
  ignore (Thc_broadcast.Trinc_from_srb.on_wire states.(1) w2);
  Alcotest.(check bool) "stale counter rejected" false
    (Thc_broadcast.Trinc_from_srb.check states.(1) a2 ~id:0);
  (* Unknown attestation: false. *)
  let fake = { a1 with Thc_broadcast.Trinc_from_srb.message = "other" } in
  Alcotest.(check bool) "fabricated rejected" false
    (Thc_broadcast.Trinc_from_srb.check states.(1) fake ~id:0)

(* --- SRB from TrInc --------------------------------------------------------------------- *)

let run_srb_from_trinc ~seed ~configure =
  let n = 4 in
  let rng = Thc_util.Rng.create seed in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    let st =
      Thc_broadcast.Srb_from_trinc.create ~world
        ~trinket:(Some (Thc_hardware.Trinc.trinket world ~owner:pid))
        ~n ~self:pid
    in
    let plan = if pid = 0 then [ (100L, "a"); (150L, "b"); (200L, "c") ] else [] in
    Thc_sim.Engine.set_behavior engine pid
      (Thc_broadcast.Srb_from_trinc.behavior st ~broadcast_plan:plan)
  done;
  configure engine;
  Thc_sim.Engine.run ~until:5_000_000L engine

let test_srb_from_trinc_clean () =
  let trace = run_srb_from_trinc ~seed:31L ~configure:(fun _ -> ()) in
  Alcotest.(check int) "no violations" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0))

let test_srb_from_trinc_echo_covers_partition () =
  (* Sender cannot reach p3 directly, but echoes get there: totality. *)
  let trace =
    run_srb_from_trinc ~seed:32L ~configure:(fun engine ->
        Thc_sim.Engine.set_link engine ~src:0 ~dst:3 Thc_sim.Net.Drop)
  in
  Alcotest.(check int) "no violations despite dead direct link" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0));
  Alcotest.(check int) "p3 got all three" 3
    (List.length (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid:3))

let test_srb_from_trinc_gap () =
  (* Simpler gap check at the state-machine level. *)
  let n = 3 in
  let rng = Thc_util.Rng.create 34L in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let trinket = Thc_hardware.Trinc.trinket world ~owner:0 in
  let rx = Thc_broadcast.Srb_from_trinc.create ~world ~trinket:None ~n ~self:1 in
  ignore rx;
  (* Build attestations with a gap: counter 1, then counter 3. *)
  let a1 = Option.get (Thc_hardware.Trinc.attest trinket ~counter:1 ~message:"a") in
  let _skipped = Option.get (Thc_hardware.Trinc.attest trinket ~counter:2 ~message:"b") in
  let a3 = Option.get (Thc_hardware.Trinc.attest trinket ~counter:3 ~message:"c") in
  ignore (a1, a3);
  (* Receivers require prev = counter - 1 and contiguous release; feeding
     a1 then a3 (withholding a2) delivers only seq 1. *)
  let n' = 2 in
  let net = Thc_sim.Net.create ~n:n' ~default:(Thc_sim.Delay.Const 5L) in
  let engine = Thc_sim.Engine.create ~n:n' ~net () in
  let st = Thc_broadcast.Srb_from_trinc.create ~world ~trinket:None ~n ~self:1 in
  Thc_sim.Engine.set_behavior engine 1
    (Thc_broadcast.Srb_from_trinc.behavior st ~broadcast_plan:[]);
  let injector : Thc_broadcast.Srb_from_trinc.msg Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          ctx.send 1 (Thc_broadcast.Srb_from_trinc.wire_of_attestation a1);
          ctx.send 1 (Thc_broadcast.Srb_from_trinc.wire_of_attestation a3));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 0 injector;
  Thc_sim.Engine.mark_byzantine engine 0;
  let trace = Thc_sim.Engine.run ~until:100_000L engine in
  Alcotest.(check (list (pair int string))) "only the prefix delivers"
    [ (1, "a") ]
    (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid:1)

let test_srb_from_trinc_concurrent_senders () =
  (* Every process broadcasts on its own trusted log concurrently; each
     sender's stream must satisfy SRB independently. *)
  let n = 4 in
  let seed = 35L in
  let rng = Thc_util.Rng.create seed in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    let st =
      Thc_broadcast.Srb_from_trinc.create ~world
        ~trinket:(Some (Thc_hardware.Trinc.trinket world ~owner:pid))
        ~n ~self:pid
    in
    let plan =
      List.init 3 (fun i ->
          ( Int64.of_int (100 + (i * 70) + (pid * 13)),
            Printf.sprintf "p%d-m%d" pid (i + 1) ))
    in
    Thc_sim.Engine.set_behavior engine pid
      (Thc_broadcast.Srb_from_trinc.behavior st ~broadcast_plan:plan)
  done;
  let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
  for sender = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "sender %d spec clean" sender)
      0
      (List.length (Thc_broadcast.Srb_spec.check trace ~sender));
    for pid = 0 to n - 1 do
      Alcotest.(check int) "3 deliveries per stream" 3
        (List.length (Thc_broadcast.Srb_spec.deliveries trace ~sender ~pid))
    done
  done

(* --- reliable broadcast ------------------------------------------------------------------ *)

let run_rb ~seed ~n ~f ~configure =
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    let st = Thc_broadcast.Reliable_broadcast.create ~n ~f ~self:pid ~sender:0 in
    Thc_sim.Engine.set_behavior engine pid
      (Thc_broadcast.Reliable_broadcast.behavior st
         ~broadcast_plan:[ (50L, "value") ])
  done;
  configure engine;
  Thc_sim.Engine.run ~until:5_000_000L engine

let rb_deliveries trace pid =
  List.filter_map
    (fun obs ->
      match (obs : Thc_sim.Obs.t) with
      | Rb_delivered { value; _ } -> Some value
      | _ -> None)
    (Thc_sim.Trace.outputs_of trace pid)

let test_rb_delivers_everywhere () =
  let trace = run_rb ~seed:41L ~n:4 ~f:1 ~configure:(fun _ -> ()) in
  for pid = 0 to 3 do
    Alcotest.(check (list string)) "delivered" [ "value" ] (rb_deliveries trace pid)
  done

let test_rb_requires_n_gt_3f () =
  Alcotest.check_raises "n = 3f rejected"
    (Invalid_argument "Reliable_broadcast.create: needs n > 3f") (fun () ->
      ignore (Thc_broadcast.Reliable_broadcast.create ~n:3 ~f:1 ~self:0 ~sender:0))

let test_rb_tolerates_silent_fault () =
  let trace =
    run_rb ~seed:42L ~n:4 ~f:1 ~configure:(fun engine ->
        Thc_sim.Engine.mark_byzantine engine 3;
        Thc_sim.Engine.schedule_crash engine ~pid:3 ~at:0L)
  in
  for pid = 0 to 2 do
    Alcotest.(check (list string)) "correct deliver" [ "value" ]
      (rb_deliveries trace pid)
  done

(* --- Algorithm 1: SRB from unidirectional rounds ------------------------------------------- *)

let run_srb_from_uni ~seed ~values ~configure_byz =
  let n = 5 and faults = 2 in
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let srbs =
    Array.init n (fun pid ->
        Thc_broadcast.Srb_from_uni.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0 ~faults)
  in
  List.iter (Thc_broadcast.Srb_from_uni.broadcast srbs.(0)) values;
  let byz = configure_byz ~keyring ~registers ~engine in
  for pid = 0 to n - 1 do
    if not (List.mem pid byz) then
      Thc_sim.Engine.set_behavior engine pid
        (Thc_rounds.Swmr_rounds.behavior ~registers
           ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
           (Thc_broadcast.Srb_from_uni.app srbs.(pid)))
  done;
  (Thc_sim.Engine.run ~until:2_000_000L ~max_events:10_000_000 engine, srbs)

let no_byz ~keyring:_ ~registers:_ ~engine:_ = []

let test_srb_uni_happy_path () =
  let trace, srbs =
    run_srb_from_uni ~seed:61L ~values:[ "a"; "b"; "c" ] ~configure_byz:no_byz
  in
  Alcotest.(check int) "spec clean" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0));
  Alcotest.(check (list (pair int string))) "delivered in order at p3"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (Thc_broadcast.Srb_from_uni.delivered srbs.(3));
  Alcotest.(check int) "rounds stayed unidirectional" 0
    (List.length (Thc_rounds.Directionality.check_unidirectional trace))

let test_srb_uni_no_sender () =
  let trace, _ =
    run_srb_from_uni ~seed:62L ~values:[] ~configure_byz:no_byz
  in
  Alcotest.(check int) "nothing delivered, nothing violated" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0));
  Alcotest.(check int) "no deliveries" 0
    (List.length (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid:1))

let equivocating_sender ~keyring ~registers ~engine =
  Thc_sim.Engine.mark_byzantine engine 0;
  let ident = Thc_crypto.Keyring.secret keyring ~pid:0 in
  let p1, p2 =
    Thc_broadcast.Srb_from_uni.equivocation_payloads ~ident ~k:1 "white" "black"
  in
  let byz : unit Thc_sim.Engine.behavior =
    {
      init =
        (fun _ ->
          (* Publish both conflicting payloads into the copy round (2). *)
          Thc_sharedmem.Swmr.append registers.(0) ~ident (2, p1);
          Thc_sharedmem.Swmr.append registers.(0) ~ident (2, p2));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 0 byz;
  [ 0 ]

let test_srb_uni_equivocation_safe () =
  let trace, srbs =
    run_srb_from_uni ~seed:63L ~values:[] ~configure_byz:equivocating_sender
  in
  (* Safety: no two correct processes deliver different values; in fact with
     a detected conflict nobody should assemble an L2 proof at all. *)
  Alcotest.(check int) "no SRB violations" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0));
  let all_deliveries =
    List.concat_map
      (fun pid -> Thc_broadcast.Srb_from_uni.delivered srbs.(pid))
      [ 1; 2; 3; 4 ]
  in
  let distinct_values =
    List.sort_uniq compare (List.map snd all_deliveries)
  in
  Alcotest.(check bool) "at most one value delivered" true
    (List.length distinct_values <= 1)

let prop_srb_uni_schedules =
  QCheck.Test.make ~name:"Algorithm 1 satisfies SRB across schedules" ~count:10
    QCheck.int64
    (fun seed ->
      let trace, _ =
        run_srb_from_uni ~seed ~values:[ "x"; "y" ] ~configure_byz:no_byz
      in
      Thc_broadcast.Srb_spec.check trace ~sender:0 = []
      && List.length (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid:2) = 2)

let test_srb_uni_over_sticky_driver () =
  (* Algorithm 1 is driver-generic: same app over sticky-bit rounds. *)
  let n = 5 and faults = 2 in
  let seed = 64L in
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let board = Thc_rounds.Sticky_rounds.create_board ~n in
  let srbs =
    Array.init n (fun pid ->
        Thc_broadcast.Srb_from_uni.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0 ~faults)
  in
  List.iter (Thc_broadcast.Srb_from_uni.broadcast srbs.(0)) [ "x"; "y" ];
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Sticky_rounds.behavior ~board
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (Thc_broadcast.Srb_from_uni.app srbs.(pid)))
  done;
  let trace = Thc_sim.Engine.run ~until:2_000_000L ~max_events:10_000_000 engine in
  Alcotest.(check int) "spec clean over sticky rounds" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0));
  Alcotest.(check int) "both delivered at p4" 2
    (List.length (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid:4))

let test_srb_uni_over_lockstep_driver () =
  (* Bidirectional rounds are in particular unidirectional: Algorithm 1 must
     run unchanged over the lock-step driver. *)
  let n = 5 and faults = 2 in
  let seed = 65L in
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L)) in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let srbs =
    Array.init n (fun pid ->
        Thc_broadcast.Srb_from_uni.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0 ~faults)
  in
  List.iter (Thc_broadcast.Srb_from_uni.broadcast srbs.(0)) [ "x"; "y" ];
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Sync_rounds.behavior ~period:1_000L
         (Thc_broadcast.Srb_from_uni.app srbs.(pid)))
  done;
  let trace = Thc_sim.Engine.run ~until:100_000L ~max_events:10_000_000 engine in
  Alcotest.(check int) "spec clean over lock-step rounds" 0
    (List.length (Thc_broadcast.Srb_spec.check trace ~sender:0));
  Alcotest.(check int) "both delivered at p2" 2
    (List.length (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid:2))

(* --- NEB -------------------------------------------------------------------------------- *)

let run_neb ~seed ~sender_input ~byz_equivocator =
  let n = 4 in
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let states =
    Array.init n (fun pid ->
        Thc_broadcast.Neb.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0
          ~input:(if pid = 0 then sender_input else None))
  in
  let first = if byz_equivocator then 1 else 0 in
  for pid = first to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Swmr_rounds.behavior ~registers
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (Thc_broadcast.Neb.app states.(pid)))
  done;
  if byz_equivocator then begin
    Thc_sim.Engine.mark_byzantine engine 0;
    let ident = Thc_crypto.Keyring.secret keyring ~pid:0 in
    let p1, p2 = Thc_broadcast.Neb.equivocation_payloads ~ident "yes" "no" in
    let byz : unit Thc_sim.Engine.behavior =
      {
        init =
          (fun _ ->
            Thc_sharedmem.Swmr.append registers.(0) ~ident (1, p1);
            Thc_sharedmem.Swmr.append registers.(0) ~ident (1, p2));
        on_message = (fun _ ~src:_ _ -> ());
        on_timer = (fun _ _ -> ());
      }
    in
    Thc_sim.Engine.set_behavior engine 0 byz
  end;
  let trace = Thc_sim.Engine.run ~until:10_000_000L engine in
  (trace, states)

let test_neb_correct_sender () =
  let _, states = run_neb ~seed:71L ~sender_input:(Some "go") ~byz_equivocator:false in
  for pid = 0 to 3 do
    match Thc_broadcast.Neb.committed states.(pid) with
    | Some (Some "go") -> ()
    | _ -> Alcotest.failf "p%d did not commit the sender's value" pid
  done

let test_neb_equivocating_sender () =
  let _, states = run_neb ~seed:72L ~sender_input:None ~byz_equivocator:true in
  (* Correct processes commit the same value or ⊥; never two different
     non-⊥ values. *)
  let decisions =
    List.filter_map
      (fun pid ->
        match Thc_broadcast.Neb.committed states.(pid) with
        | Some d -> Some d
        | None -> None)
      [ 1; 2; 3 ]
  in
  let non_bot = List.sort_uniq compare (List.filter_map Fun.id decisions) in
  Alcotest.(check bool) "agreement up to bot" true (List.length non_bot <= 1)

(* --- Dolev-Strong ------------------------------------------------------------------------- *)

let run_ds ~seed ~n ~f ~sender_behavior =
  let keyring = keyring ~n ~seed () in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L)) in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let states =
    Array.init n (fun pid ->
        Thc_broadcast.Dolev_strong.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0 ~f
          ~input:(if pid = 0 then Some "v" else None))
  in
  for pid = 0 to n - 1 do
    match sender_behavior with
    | Some b when pid = 0 ->
      Thc_sim.Engine.mark_byzantine engine 0;
      Thc_sim.Engine.set_behavior engine 0 b
    | _ ->
      Thc_sim.Engine.set_behavior engine pid
        (Thc_rounds.Sync_rounds.behavior ~period:1_000L
           (Thc_broadcast.Dolev_strong.app states.(pid)))
  done;
  (Thc_sim.Engine.run ~until:60_000L engine, states)

let test_ds_correct_sender () =
  let trace, _ = run_ds ~seed:81L ~n:4 ~f:1 ~sender_behavior:None in
  List.iter
    (fun pid ->
      match Thc_sim.Trace.decision_of trace pid with
      | Some (Some "v") -> ()
      | _ -> Alcotest.failf "p%d did not commit v" pid)
    [ 0; 1; 2; 3 ]

let test_ds_silent_sender () =
  let silent : Thc_rounds.Sync_rounds.msg Thc_sim.Engine.behavior =
    Thc_sim.Engine.no_op
  in
  let trace, _ = run_ds ~seed:82L ~n:4 ~f:1 ~sender_behavior:(Some silent) in
  List.iter
    (fun pid ->
      match Thc_sim.Trace.decision_of trace pid with
      | Some None -> ()
      | _ -> Alcotest.failf "p%d should commit ⊥ for a silent sender" pid)
    [ 1; 2; 3 ]

let test_ds_equivocating_sender () =
  (* The Byzantine sender signs two values and sends each chain to one half
     of the cluster in round 1.  Signature-chain relaying over the remaining
     f rounds must still produce agreement: everyone extracts both values
     and commits ⊥, or everyone commits the same single value. *)
  let n = 4 and f = 1 in
  let keyring = keyring ~n ~seed:83L () in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L)) in
  let engine = Thc_sim.Engine.create ~seed:83L ~n ~net () in
  let states =
    Array.init n (fun pid ->
        Thc_broadcast.Dolev_strong.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0 ~f ~input:None)
  in
  for pid = 1 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Sync_rounds.behavior ~period:1_000L
         (Thc_broadcast.Dolev_strong.app states.(pid)))
  done;
  Thc_sim.Engine.mark_byzantine engine 0;
  let ident0 = Thc_crypto.Keyring.secret keyring ~pid:0 in
  (* Build the two conflicting initial chains through the honest code path:
     two Dolev_strong instances sharing the sender identity. *)
  let mk value =
    let st =
      Thc_broadcast.Dolev_strong.create ~keyring ~ident:ident0 ~sender:0 ~f
        ~input:(Some value)
    in
    match Thc_broadcast.Dolev_strong.initial_chain st with
    | Some c -> Thc_util.Codec.encode [ c ]
    | None -> assert false
  in
  let payload_a = mk "A" and payload_b = mk "B" in
  let byz : Thc_rounds.Sync_rounds.msg Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          ctx.send 1 (Thc_rounds.Sync_rounds.inject ~round:1 ~payload:payload_a);
          ctx.send 2 (Thc_rounds.Sync_rounds.inject ~round:1 ~payload:payload_a);
          ctx.send 3 (Thc_rounds.Sync_rounds.inject ~round:1 ~payload:payload_b));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 0 byz;
  let trace = Thc_sim.Engine.run ~until:60_000L engine in
  let decisions =
    List.filter_map (fun pid -> Thc_sim.Trace.decision_of trace pid) [ 1; 2; 3 ]
  in
  Alcotest.(check int) "everyone decided" 3 (List.length decisions);
  (match List.sort_uniq compare decisions with
  | [ _ ] -> ()
  | ds -> Alcotest.failf "agreement broken: %d distinct decisions" (List.length ds))

let () =
  Alcotest.run "thc_broadcast"
    [
      ( "srb-spec",
        [
          Alcotest.test_case "clean" `Quick test_spec_clean;
          Alcotest.test_case "validity" `Quick test_spec_validity;
          Alcotest.test_case "totality/agreement" `Quick test_spec_totality_and_agreement;
          Alcotest.test_case "sequencing" `Quick test_spec_sequencing;
          Alcotest.test_case "integrity" `Quick test_spec_integrity;
        ] );
      ( "ideal-srb",
        [
          Alcotest.test_case "log/genuine" `Quick test_ideal_srb_log_and_genuine;
          Alcotest.test_case "rx ordering" `Quick test_ideal_srb_rx_order;
        ] );
      ( "trinc-from-srb",
        [ Alcotest.test_case "theorem 1 direct" `Quick test_trinc_from_srb_direct ] );
      ( "srb-from-trinc",
        [
          Alcotest.test_case "clean" `Quick test_srb_from_trinc_clean;
          Alcotest.test_case "echo covers dead link" `Quick test_srb_from_trinc_echo_covers_partition;
          Alcotest.test_case "gap never delivers" `Quick test_srb_from_trinc_gap;
          Alcotest.test_case "concurrent senders" `Quick test_srb_from_trinc_concurrent_senders;
        ] );
      ( "reliable-broadcast",
        [
          Alcotest.test_case "delivers" `Quick test_rb_delivers_everywhere;
          Alcotest.test_case "bound enforced" `Quick test_rb_requires_n_gt_3f;
          Alcotest.test_case "silent fault" `Quick test_rb_tolerates_silent_fault;
        ] );
      ( "srb-from-uni",
        [
          Alcotest.test_case "happy path" `Quick test_srb_uni_happy_path;
          Alcotest.test_case "no sender" `Quick test_srb_uni_no_sender;
          Alcotest.test_case "equivocation safe" `Quick test_srb_uni_equivocation_safe;
          Alcotest.test_case "over sticky driver" `Quick test_srb_uni_over_sticky_driver;
          Alcotest.test_case "over lock-step driver" `Quick test_srb_uni_over_lockstep_driver;
          qcheck prop_srb_uni_schedules;
        ] );
      ( "neb",
        [
          Alcotest.test_case "correct sender" `Quick test_neb_correct_sender;
          Alcotest.test_case "equivocating sender" `Quick test_neb_equivocating_sender;
        ] );
      ( "dolev-strong",
        [
          Alcotest.test_case "correct sender" `Quick test_ds_correct_sender;
          Alcotest.test_case "silent sender" `Quick test_ds_silent_sender;
          Alcotest.test_case "equivocating sender" `Quick test_ds_equivocating_sender;
        ] );
    ]
