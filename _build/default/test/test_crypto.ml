(* Tests for the simulated cryptographic substrate: digests, keyring,
   signatures, quorum certificates — including the forgery attempts the
   paper's unforgeability assumption rules out. *)

let qcheck = QCheck_alcotest.to_alcotest

let rng () = Thc_util.Rng.create 99L

let keyring ?(n = 4) () = Thc_crypto.Keyring.create (rng ()) ~n

(* --- digests ---------------------------------------------------------------- *)

let test_digest_deterministic () =
  Alcotest.(check bool) "equal inputs equal digests" true
    (Thc_crypto.Digest.equal
       (Thc_crypto.Digest.of_string "hello")
       (Thc_crypto.Digest.of_string "hello"))

let test_digest_distinct () =
  Alcotest.(check bool) "distinct inputs distinct digests" false
    (Thc_crypto.Digest.equal
       (Thc_crypto.Digest.of_string "hello")
       (Thc_crypto.Digest.of_string "hellp"))

let test_digest_combine_order () =
  let a = Thc_crypto.Digest.of_string "a" in
  let b = Thc_crypto.Digest.of_string "b" in
  Alcotest.(check bool) "combine is order-sensitive" false
    (Thc_crypto.Digest.equal
       (Thc_crypto.Digest.combine a b)
       (Thc_crypto.Digest.combine b a))

let test_digest_hex () =
  Alcotest.(check int) "hex width" 16
    (String.length (Thc_crypto.Digest.to_hex (Thc_crypto.Digest.of_string "x")))

let prop_digest_injective_on_sample =
  QCheck.Test.make ~name:"no collisions on random pairs" ~count:500
    QCheck.(pair string string)
    (fun (a, b) ->
      String.equal a b
      || not
           (Thc_crypto.Digest.equal
              (Thc_crypto.Digest.of_string a)
              (Thc_crypto.Digest.of_string b)))

(* --- keyring ----------------------------------------------------------------- *)

let test_keyring_size () = Alcotest.(check int) "n" 4 (Thc_crypto.Keyring.n (keyring ()))

let test_keyring_secret_pid () =
  let k = keyring () in
  Alcotest.(check int) "pid bound in secret" 2
    (Thc_crypto.Keyring.pid_of_secret (Thc_crypto.Keyring.secret k ~pid:2))

let test_keyring_unknown_pid () =
  let k = keyring () in
  Alcotest.check_raises "bad pid" (Invalid_argument "Keyring.secret: unknown pid")
    (fun () -> ignore (Thc_crypto.Keyring.secret k ~pid:7))

let test_keyring_tags_differ_by_signer () =
  let k = keyring () in
  let d = Thc_crypto.Digest.of_string "m" in
  let t0 = Thc_crypto.Keyring.attach_tag (Thc_crypto.Keyring.secret k ~pid:0) d in
  let t1 = Thc_crypto.Keyring.attach_tag (Thc_crypto.Keyring.secret k ~pid:1) d in
  Alcotest.(check bool) "tags differ across signers" true (t0 <> t1)

(* --- signatures ---------------------------------------------------------------- *)

let test_sign_verify () =
  let k = keyring () in
  let s = Thc_crypto.Signature.sign (Thc_crypto.Keyring.secret k ~pid:1) "msg" in
  Alcotest.(check bool) "verifies" true (Thc_crypto.Signature.verify k s "msg");
  Alcotest.(check int) "signer recorded" 1 s.signer

let test_sign_wrong_message () =
  let k = keyring () in
  let s = Thc_crypto.Signature.sign (Thc_crypto.Keyring.secret k ~pid:1) "msg" in
  Alcotest.(check bool) "rejects other message" false
    (Thc_crypto.Signature.verify k s "other")

let test_sign_wrong_claimed_signer () =
  let k = keyring () in
  let s = Thc_crypto.Signature.sign (Thc_crypto.Keyring.secret k ~pid:1) "msg" in
  let relabeled = { s with Thc_crypto.Signature.signer = 2 } in
  Alcotest.(check bool) "relabeling breaks verification" false
    (Thc_crypto.Signature.verify k relabeled "msg")

let test_counterfeit_rejected () =
  let k = keyring () in
  let forged = Thc_crypto.Signature.counterfeit ~signer:0 ~tag:123456789L in
  Alcotest.(check bool) "forgery rejected" false
    (Thc_crypto.Signature.verify k forged "msg")

let test_signature_transferable () =
  (* A signature survives serialization inside another message. *)
  let k = keyring () in
  let s = Thc_crypto.Signature.sign_value (Thc_crypto.Keyring.secret k ~pid:3) (42, "v") in
  let shipped : Thc_crypto.Signature.t =
    Thc_util.Codec.decode (Thc_util.Codec.encode s)
  in
  Alcotest.(check bool) "still verifies after transfer" true
    (Thc_crypto.Signature.verify_value k shipped (42, "v"))

let test_sealed () =
  let k = keyring () in
  let sealed = Thc_crypto.Signature.seal (Thc_crypto.Keyring.secret k ~pid:2) "payload" in
  Alcotest.(check bool) "sealed ok" true (Thc_crypto.Signature.sealed_ok k sealed);
  Alcotest.(check bool) "sealed by 2" true
    (Thc_crypto.Signature.sealed_by k sealed ~expect:2);
  Alcotest.(check bool) "not sealed by 1" false
    (Thc_crypto.Signature.sealed_by k sealed ~expect:1);
  let tampered = { sealed with Thc_crypto.Signature.value = "other" } in
  Alcotest.(check bool) "tampered payload rejected" false
    (Thc_crypto.Signature.sealed_ok k tampered)

let prop_sign_verify_roundtrip =
  QCheck.Test.make ~name:"every signed payload verifies" ~count:300
    QCheck.(pair (int_bound 3) string)
    (fun (pid, payload) ->
      let k = keyring () in
      let s = Thc_crypto.Signature.sign (Thc_crypto.Keyring.secret k ~pid) payload in
      Thc_crypto.Signature.verify k s payload)

let prop_random_tags_rejected =
  QCheck.Test.make ~name:"random tags never verify" ~count:300
    QCheck.(pair (int_bound 3) int64)
    (fun (signer, tag) ->
      let k = keyring () in
      not
        (Thc_crypto.Signature.verify k
           (Thc_crypto.Signature.counterfeit ~signer ~tag)
           "payload"))

(* --- certificates ----------------------------------------------------------------- *)

let sig_on k pid v = Thc_crypto.Signature.sign_value (Thc_crypto.Keyring.secret k ~pid) v

let test_cert_support () =
  let k = keyring () in
  let v = "decision" in
  let c =
    Thc_crypto.Cert.of_signatures v [ sig_on k 0 v; sig_on k 1 v; sig_on k 2 v ]
  in
  Alcotest.(check int) "support counts distinct valid signers" 3
    (Thc_crypto.Cert.support k c);
  Alcotest.(check bool) "meets threshold 3" true
    (Thc_crypto.Cert.validate k ~threshold:3 c);
  Alcotest.(check bool) "misses threshold 4" false
    (Thc_crypto.Cert.validate k ~threshold:4 c)

let test_cert_duplicates_discounted () =
  let k = keyring () in
  let v = "decision" in
  let s0 = sig_on k 0 v in
  let c = Thc_crypto.Cert.of_signatures v [ s0; s0; s0 ] in
  Alcotest.(check int) "duplicates count once" 1 (Thc_crypto.Cert.support k c)

let test_cert_invalid_excluded () =
  let k = keyring () in
  let v = "decision" in
  let wrong = sig_on k 1 "other-value" in
  let c = Thc_crypto.Cert.of_signatures v [ sig_on k 0 v; wrong ] in
  Alcotest.(check int) "wrong-value signature excluded" 1
    (Thc_crypto.Cert.support k c)

let test_cert_signers_sorted () =
  let k = keyring () in
  let v = "v" in
  let c = Thc_crypto.Cert.of_signatures v [ sig_on k 2 v; sig_on k 0 v ] in
  Alcotest.(check (list int)) "signers ascending" [ 0; 2 ] (Thc_crypto.Cert.signers c)

let test_cert_add () =
  let k = keyring () in
  let v = "v" in
  let c = Thc_crypto.Cert.add (Thc_crypto.Cert.empty v) (sig_on k 1 v) in
  Alcotest.(check int) "added signature counted" 1 (Thc_crypto.Cert.support k c)

let () =
  Alcotest.run "thc_crypto"
    [
      ( "digest",
        [
          Alcotest.test_case "deterministic" `Quick test_digest_deterministic;
          Alcotest.test_case "distinct" `Quick test_digest_distinct;
          Alcotest.test_case "combine order" `Quick test_digest_combine_order;
          Alcotest.test_case "hex" `Quick test_digest_hex;
          qcheck prop_digest_injective_on_sample;
        ] );
      ( "keyring",
        [
          Alcotest.test_case "size" `Quick test_keyring_size;
          Alcotest.test_case "secret pid" `Quick test_keyring_secret_pid;
          Alcotest.test_case "unknown pid" `Quick test_keyring_unknown_pid;
          Alcotest.test_case "tags per signer" `Quick test_keyring_tags_differ_by_signer;
        ] );
      ( "signature",
        [
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "wrong message" `Quick test_sign_wrong_message;
          Alcotest.test_case "relabeled signer" `Quick test_sign_wrong_claimed_signer;
          Alcotest.test_case "counterfeit" `Quick test_counterfeit_rejected;
          Alcotest.test_case "transferable" `Quick test_signature_transferable;
          Alcotest.test_case "sealed values" `Quick test_sealed;
          qcheck prop_sign_verify_roundtrip;
          qcheck prop_random_tags_rejected;
        ] );
      ( "cert",
        [
          Alcotest.test_case "support" `Quick test_cert_support;
          Alcotest.test_case "duplicates" `Quick test_cert_duplicates_discounted;
          Alcotest.test_case "invalid excluded" `Quick test_cert_invalid_excluded;
          Alcotest.test_case "signers sorted" `Quick test_cert_signers_sorted;
          Alcotest.test_case "add" `Quick test_cert_add;
        ] );
    ]
