(* A replicated key-value store on MinBFT (n = 2f+1, trusted counters),
   surviving a leader crash mid-workload — the application that motivates
   the trusted-log class of the classification.

   Run with: dune exec examples/kv_minbft.exe *)

let () =
  let f = 1 in
  let ops =
    [
      Thc_replication.Kv_store.Put ("user:1", "alice");
      Thc_replication.Kv_store.Put ("user:2", "bob");
      Thc_replication.Kv_store.Incr "visits";
      Thc_replication.Kv_store.Incr "visits";
      Thc_replication.Kv_store.Get "user:1";
      Thc_replication.Kv_store.Delete "user:2";
      Thc_replication.Kv_store.Get "user:2";
      Thc_replication.Kv_store.Incr "visits";
    ]
  in
  let config = Thc_replication.Minbft.default_config ~f in
  let n = config.Thc_replication.Minbft.n in
  let client_pid = n in
  let seed = 77L in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:(n + 1) in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net =
    Thc_sim.Net.create ~n:(n + 1) ~default:(Thc_sim.Delay.Uniform (50L, 400L))
  in
  let engine = Thc_sim.Engine.create ~seed ~n:(n + 1) ~net () in
  let replicas =
    Array.init n (fun self ->
        Thc_replication.Minbft.create_replica ~config ~keyring ~world
          ~trinket:(Thc_hardware.Trinc.trinket world ~owner:self)
          ~self)
  in
  Array.iteri
    (fun pid st ->
      Thc_sim.Engine.set_behavior engine pid (Thc_replication.Minbft.replica st))
    replicas;
  let plan =
    List.mapi (fun i op -> (Int64.of_int ((i + 1) * 4_000), op)) ops
  in
  Thc_sim.Engine.set_behavior engine client_pid
    (Thc_replication.Minbft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:client_pid)
       ~plan);
  (* Crash the initial leader while requests are in flight. *)
  Thc_sim.Engine.schedule_crash engine ~pid:0 ~at:10_000L;
  Printf.printf "cluster: %d replicas (f = %d), leader p0 crashes at 10 ms\n\n"
    n f;
  let trace = Thc_sim.Engine.run ~until:2_000_000L engine in
  Printf.printf "client-observed completions:\n";
  List.iter
    (fun (time, pid, obs) ->
      match obs with
      | Thc_sim.Obs.Client_done { rid; latency_us } when pid = client_pid ->
        Printf.printf "  request #%d done at %6Ld µs (latency %5Ld µs)\n" rid
          time latency_us
      | _ -> ())
    (Thc_sim.Trace.outputs trace);
  Printf.printf "\nreplica state after the run:\n";
  Array.iteri
    (fun i st ->
      Printf.printf "  p%d: view=%d executed=%d store-digest=%016Lx\n" i
        (Thc_replication.Minbft.view_of st)
        (Thc_replication.Minbft.executed_upto st)
        (Thc_replication.Minbft.store_digest st))
    replicas;
  let safety =
    Thc_replication.Smr_spec.check_safety trace ~replicas:n
  in
  Printf.printf "\nsafety violations: %d\n" (List.length safety)
