type outcome = {
  decisions : string option array;
  agreement : bool;
  validity : bool;
  termination : bool;
  final_view : int;
  messages : int;
  duration_us : int64;
}

(* Process i's input travels as the operation [Put ("decision", input)]; the
   value decided is the input carried by whatever request commits at seq 1. *)
let op_of_input input = Thc_replication.Kv_store.Put ("decision", input)

let input_of_op op =
  match Thc_replication.Kv_store.decode_op op with
  | Thc_replication.Kv_store.Put ("decision", input) -> Some input
  | _ -> None

let first_decision trace ~pid =
  let rec go = function
    | [] -> None
    | obs :: rest ->
      (match (obs : Thc_sim.Obs.t) with
      | Executed { seq = 1; op; _ } -> input_of_op op
      | _ -> go rest)
  in
  go (Thc_sim.Trace.outputs_of trace pid)

let run ~f ~inputs ?(seed = 1L) ?(delay = Thc_sim.Delay.Uniform (50L, 500L))
    ?(crash_leader = false) () =
  let n = (2 * f) + 1 in
  if Array.length inputs <> n then
    invalid_arg "Weak_validity.run: inputs must have length 2f+1";
  let config = Thc_replication.Minbft.default_config ~f in
  (* pids 0..n-1: replicas; pids n..2n-1: the same processes' client halves
     (process i = replica i + client n+i, sharing fate). *)
  let total = 2 * n in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n:total ~default:delay in
  let engine = Thc_sim.Engine.create ~seed ~n:total ~net () in
  let replicas =
    Array.init n (fun self ->
        Thc_replication.Minbft.create_replica ~config ~keyring ~world
          ~trinket:(Thc_hardware.Trinc.trinket world ~owner:self)
          ~self)
  in
  Array.iteri
    (fun pid st ->
      Thc_sim.Engine.set_behavior engine pid (Thc_replication.Minbft.replica st))
    replicas;
  Array.iteri
    (fun i input ->
      Thc_sim.Engine.set_behavior engine (n + i)
        (Thc_replication.Minbft.client ~rid_base:0 ~config ~keyring
           ~ident:(Thc_crypto.Keyring.secret keyring ~pid:(n + i))
           ~plan:[ (Int64.of_int (100 + (i * 37)), op_of_input input) ]))
    inputs;
  if crash_leader then begin
    Thc_sim.Engine.schedule_crash engine ~pid:0 ~at:50L;
    Thc_sim.Engine.schedule_crash engine ~pid:n ~at:50L
  end;
  let trace = Thc_sim.Engine.run ~until:2_000_000L ~max_events:20_000_000 engine in
  let correct i = (not crash_leader) || i > 0 in
  let decisions = Array.init n (fun pid -> first_decision trace ~pid) in
  let correct_decisions =
    List.filter_map
      (fun i -> if correct i then Some decisions.(i) else None)
      (List.init n (fun i -> i))
  in
  let termination = List.for_all Option.is_some correct_decisions in
  let agreement =
    match List.filter_map Fun.id correct_decisions with
    | [] -> true
    | first :: rest -> List.for_all (String.equal first) rest
  in
  let validity =
    if crash_leader then true
    else
      match inputs.(0) with
      | common when Array.for_all (String.equal common) inputs ->
        List.for_all
          (function Some d -> String.equal d common | None -> false)
          correct_decisions
      | _ -> true
  in
  {
    decisions;
    agreement;
    validity;
    termination;
    final_view =
      Array.fold_left
        (fun acc st -> max acc (Thc_replication.Minbft.view_of st))
        0 replicas;
    messages = Thc_sim.Trace.messages_sent trace;
    duration_us = trace.Thc_sim.Trace.end_time;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>decisions: %s@,agreement=%b validity=%b termination=%b view=%d \
     msgs=%d dur=%Ldus@]"
    (String.concat ", "
       (Array.to_list
          (Array.map (function Some d -> d | None -> "-") o.decisions)))
    o.agreement o.validity o.termination o.final_view o.messages o.duration_us
