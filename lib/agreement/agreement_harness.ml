type report = {
  violations : Agreement_spec.violation list;
  decided : int;
  messages : int;
  duration_us : int64;
}

(* Hold a behavior back until virtual time [by]: its [init] runs off a
   one-shot timer instead of at time 0, and anything arriving before then is
   dropped.  All processes share the same [by], so nobody's round messages
   can outrun a peer's start. *)
let start_tag = -0x535441 (* outside Sync_rounds' tag space *)

let delayed_start ~by (inner : 'm Thc_sim.Engine.behavior) :
    'm Thc_sim.Engine.behavior =
  if by = 0L then inner
  else
    let started = ref false in
    {
      init = (fun ctx -> ctx.set_timer ~delay:by ~tag:start_tag);
      on_message =
        (fun ctx ~src m -> if !started then inner.on_message ctx ~src m);
      on_timer =
        (fun ctx tag ->
          if tag = start_tag then begin
            if not !started then begin
              started := true;
              inner.init ctx
            end
          end
          else if !started then inner.on_timer ctx tag);
    }

let run ?network ~seed ~(script : Thc_sim.Adversary.t) ?(n = 5) ?(f = 2) ?(period = 1_000L)
    ?(start = 0L) ~inputs () =
  if Array.length inputs <> n then invalid_arg "Agreement_harness.run: inputs size";
  let keyring = Thc_crypto.Keyring.create (Thc_util.Rng.create seed) ~n in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 400L)) in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  Array.iteri
    (fun pid input ->
      Thc_sim.Engine.set_behavior engine pid
        (delayed_start ~by:start
           (Thc_rounds.Sync_rounds.behavior ~period
              (Strong_validity.app
                 (Strong_validity.create ~keyring
                    ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                    ~n ~f ~input)))))
    inputs;
  Thc_sim.Adversary.install script engine;
  Option.iter
    (fun m -> Thc_network.Model.install m engine ~replicas:n ~script ())
    network;
  let until = max 60_000L (Int64.add script.horizon 30_000L) in
  let trace = Thc_sim.Engine.run ~until ~max_events:10_000_000 engine in
  let decided =
    List.length
      (List.filter
         (fun pid -> Thc_sim.Trace.decision_of trace pid <> None)
         (Thc_sim.Trace.correct_pids trace))
  in
  {
    violations =
      Agreement_spec.check `Strong ~inputs:(Array.map (fun v -> Some v) inputs) trace;
    decided;
    messages = Thc_sim.Trace.messages_sent trace;
    duration_us = trace.Thc_sim.Trace.end_time;
  }
