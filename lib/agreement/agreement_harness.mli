(** Scripted-fault adapter for strong-validity agreement — the agreement
    layer's entry point into the {!Thc_check} fault explorer.

    Runs the Dolev–Strong-based {!Strong_validity} protocol over the
    lock-step round driver, installs an {!Thc_sim.Adversary} script and
    judges {!Agreement_spec.check} [`Strong] at the end of the run.

    The protocol's safety argument {e assumes synchrony} (every round
    message arrives within the driver's period).  Crash-only scripts stay
    inside that assumption — the expected verdict is clean for up to [f]
    crashes.  Partition scripts deliberately step outside it: a partition
    held across the decision rounds delays round messages past the period,
    and the explorer finds agreement/validity counterexamples — the
    executable form of the paper's point that strong validity separates
    bidirectional (synchronous) rounds from everything below. *)

type report = {
  violations : Agreement_spec.violation list;
  decided : int;  (** Correct processes that decided. *)
  messages : int;
  duration_us : int64;
}

val run :
  ?network:Thc_network.Model.t ->
  seed:int64 ->
  script:Thc_sim.Adversary.t ->
  ?n:int ->
  ?f:int ->
  ?period:int64 ->
  ?start:int64 ->
  inputs:string array ->
  unit ->
  report
(** Defaults [n] = 5, [f] = 2 (needs [n >= 2f+1]), [period] = 1000 µs with
    link delays uniform in [10, 400] µs — comfortably synchronous until the
    script says otherwise.  [inputs] must have length [n].

    [start] (default 0) delays every process's first round by that much
    virtual time.  At [start = 0] the first round's messages leave before
    any script event can fire, and messages already in flight are immune to
    link blocking — so no admissible script can touch round 1.  A mid-run
    [start] puts the protocol inside the adversary's window, which is what
    the partition profile needs. *)
