(** The long-lived-service soak: does memory actually stop growing?

    Checkpoint certificates and log truncation ({!Thc_replication.Durability})
    only earn their complexity if a service that runs forever holds bounded
    state.  This workload runs the same MinBFT cluster over doubling
    horizons, twice — checkpointing on and off — and compares the log
    high-water-marks: with truncation the hwm must {e stabilise} (equal
    across the last two doublings and within {!Thc_replication.Durability.bound});
    without it the hwm grows with the horizon, because the log is the
    memory.  Deterministic per seed; driven by [thc soak] and the smoke
    check in CI. *)

type sample = {
  s_ops : int;  (** Requests offered this round. *)
  s_completed : int;
  s_commits : int;
  s_duration_us : int64;  (** Virtual time to quiescence. *)
  s_log_live : int;  (** Live log entries at the end (worst replica). *)
  s_log_hwm : int;  (** Log high-water-mark over the run (worst replica). *)
  s_stable_upto : int;  (** Lowest stable checkpoint across replicas. *)
  s_truncations : int;  (** Total compactions across replicas. *)
  s_safety : int;  (** Safety violations (must stay 0). *)
}

type report = {
  interval : int;  (** Checkpoint cadence the soak ran with. *)
  bound : int;  (** [Durability.bound ~checkpoint_interval:interval]. *)
  samples : sample list;  (** Checkpointed runs, doubling ops. *)
  baseline : sample list;  (** Same runs with checkpointing disabled. *)
  stabilised : bool;
      (** Bound held at every horizon {e and} the hwm was identical across
          the last two doublings — the soak's pass verdict. *)
  bound_held : bool;  (** Every checkpointed round within {!bound}, safe. *)
  baseline_growth : int;
      (** Baseline hwm at the longest horizon minus at the shortest —
          expected positive (the contrast that makes [stabilised]
          meaningful). *)
}

val run :
  ?f:int ->
  ?interval:int ->
  ?rounds:int ->
  ?base_ops:int ->
  seed:int64 ->
  unit ->
  report
(** Defaults: [f = 1], checkpoint [interval = 4], [rounds = 3] doubling
    horizons starting at [base_ops = 50] requests.  Runs [2 * rounds]
    harness runs ({!Thc_replication.Harness.run}, MinBFT, otherwise-default
    setup) and reduces them to the report.  Raises [Invalid_argument] on a
    non-positive interval or fewer than two rounds. *)

val pp_report : Format.formatter -> report -> unit
