(** Deterministic, seeded traffic generation for the replication stack.

    A {!spec} describes the offered load of a whole experiment point: how
    many concurrent clients, how each client paces its requests (open loop
    with uniform or Poisson inter-arrivals, or a closed loop with a fixed
    outstanding window), which keys it touches (uniform or Zipf-skewed) and
    the read/write mix.  Every derived stream is a pure function of
    [(spec, seed, client)] — the same triple always produces byte-identical
    schedules, which is what makes loadtest sweeps reproducible. *)

type arrival =
  | Open_uniform of { rate_rps : float }
      (** Open loop, fixed inter-arrival gaps; [rate_rps] is the aggregate
          offered rate across all clients. *)
  | Open_poisson of { rate_rps : float }
      (** Open loop, exponential inter-arrival gaps (memoryless arrivals at
          the same aggregate rate). *)
  | Closed of { window : int; think_us : int64 }
      (** Closed loop: each client keeps [window] requests outstanding and
          issues the next one [think_us] after a completion. *)

type key_dist =
  | Keys_uniform of { keys : int }
  | Keys_zipf of { keys : int; theta : float }  (** See {!Zipf}. *)

type mix = { gets : int; puts : int; incrs : int }
(** Relative weights (need not sum to 100). *)

val default_mix : mix
(** 50% gets / 40% puts / 10% incrs. *)

type spec = {
  clients : int;
  requests_per_client : int;
  arrival : arrival;
  keys : key_dist;
  mix : mix;
}

val total_requests : spec -> int

val validate : spec -> unit
(** Raises [Invalid_argument] on non-positive counts/rates/windows or an
    all-zero mix. *)

val ops :
  spec -> seed:int64 -> client:int -> Thc_replication.Kv_store.op list
(** Client [client]'s operation stream ([requests_per_client] long). *)

val arrival_times : spec -> seed:int64 -> client:int -> int64 list option
(** Send times (µs, ascending) for open-loop specs; [None] for closed
    loops, whose timing is reactive. *)

val plan :
  spec ->
  seed:int64 ->
  client:int ->
  (int64 * Thc_replication.Kv_store.op) list option
(** [arrival_times] zipped with [ops] — directly feedable to
    {!Thc_replication.Client_core.behavior}.  [None] for closed loops
    (use {!Traffic.closed_loop}). *)

val horizon_us : spec -> int64
(** A virtual-time budget generous enough for the schedule to complete and
    drain. *)

val mean_gap_us : spec -> rate_rps:float -> float
(** Mean per-client inter-arrival gap implied by an aggregate rate. *)

val pp_arrival : Format.formatter -> arrival -> unit
