(** Multi-seed request-span campaigns — the engine behind [thc trace].

    One campaign runs the same {!Thc_replication.Harness.setup} at several
    seeds with a live {!Thc_obsv.Span} recorder
    ({!Thc_replication.Harness.run_spans}), then merges the per-request
    causal views into one per-phase latency breakdown with trusted-op
    attribution.  Runs fan out over the exec pool in the repository-wide
    {!Thc_exec.Runner} shape: outcomes merge in seed order, so the report
    — and its export — is byte-identical at every [--jobs] value. *)

type campaign = {
  setup : Thc_replication.Harness.setup;
      (** Template configuration; its [seed] field is replaced per run
          (and only names the export envelope's seed). *)
  seeds : int64 list;  (** One full simulation per seed. *)
}

type run_data = {
  rd_seed : int64;
  rd_views : Thc_obsv.Span.view list;  (** Ascending rid. *)
  rd_ops : (string * (string * int) list) list;
      (** {!Thc_obsv.Span.ops_rows} — per-phase trusted-op attribution. *)
  rd_completed : int;
  rd_commits : int;
}
(** One seed's results, as plain data (Marshal-safe across workers). *)

type report = {
  runs : run_data list;  (** Seed order. *)
  summary : Thc_obsv.Span.summary;
      (** Merged over every run's views and attribution rows. *)
}

val runner :
  campaign -> (int64, run_data, report) Thc_exec.Runner.t
(** The campaign as the repository-wide runner shape: keys are the seeds,
    [run_one] is one traced simulation. *)

val run :
  ?jobs:int -> ?stats:(Thc_exec.Pool.stats -> unit) -> campaign -> report
(** Run every seed (fanned out over [jobs] workers) and merge.  Raises
    [Invalid_argument] on an empty seed list. *)

val slowest :
  ?top:int -> report -> (int64 * Thc_obsv.Span.view) list
(** The [top] (default 5) completed requests across the whole campaign by
    total latency, slowest first, as [(seed, view)].  Ties break toward
    the lower (seed, rid), so the list is deterministic at any [--jobs]. *)

(** {1 JSONL export} *)

val schema : string
(** ["thc-span/v1"]. *)

val export : campaign -> report -> string
(** Envelope header ({!Thc_obsv.Envelope}: type ["spans"], schema, seed,
    jobs = seed count, git revision, protocol, seeds, spans), then one
    [span] line per request (seed order, ascending rid, each with its
    run's [seed] field), then the merged [phase] rows.  Byte-deterministic
    within a checkout and across [--jobs] values. *)

val parse :
  string -> ((int64 * Thc_obsv.Span.view) list, string) Stdlib.result
(** Read back an {!export}ed document's span lines as [(seed, view)].
    Rejects missing or mismatched schema headers; skips [phase] rows and
    unknown line types; a malformed line is an [Error] naming the line. *)

val pp_report : ?top:int -> Format.formatter -> report -> unit
(** The phase-breakdown table ({!Thc_obsv.Span.pp_summary}) followed by
    the [top] (default 3) slowest requests with their critical paths. *)
