module R = Thc_replication

type sample = {
  s_ops : int;
  s_completed : int;
  s_commits : int;
  s_duration_us : int64;
  s_log_live : int;
  s_log_hwm : int;
  s_stable_upto : int;
  s_truncations : int;
  s_safety : int;
}

type report = {
  interval : int;
  bound : int;
  samples : sample list;
  baseline : sample list;
  stabilised : bool;
  bound_held : bool;
  baseline_growth : int;
}

let sample_of_outcome ~ops (o : R.Harness.outcome) =
  {
    s_ops = ops;
    s_completed = o.R.Harness.completed;
    s_commits = o.R.Harness.commits;
    s_duration_us = o.R.Harness.duration_us;
    s_log_live = o.R.Harness.durability.R.Durability.live;
    s_log_hwm = o.R.Harness.durability.R.Durability.hwm;
    s_stable_upto = o.R.Harness.durability.R.Durability.stable_upto;
    s_truncations = o.R.Harness.durability.R.Durability.truncations;
    s_safety = List.length o.R.Harness.safety_violations;
  }

let round ~interval ~f ~seed ~ops =
  let setup =
    R.Harness.Setup.make ~ops ~checkpoint_interval:interval
      ~protocol:R.Protocol.Minbft ~f ~seed ()
  in
  sample_of_outcome ~ops (R.Harness.run setup)

(* Doubling horizons make stabilisation a fact, not a trend-reading: if the
   high-water-mark is genuinely bounded by the truncation discipline it is
   {e equal} across the last two doublings, while the uncheckpointed
   baseline's grows with the horizon (it holds the whole log). *)
let run ?(f = 1) ?(interval = 4) ?(rounds = 3) ?(base_ops = 50) ~seed () =
  if interval <= 0 then invalid_arg "Soak.run: interval must be positive";
  if rounds < 2 then invalid_arg "Soak.run: need at least two rounds";
  let horizons = List.init rounds (fun i -> base_ops * (1 lsl i)) in
  let samples = List.map (fun ops -> round ~interval ~f ~seed ~ops) horizons in
  let baseline = List.map (fun ops -> round ~interval:0 ~f ~seed ~ops) horizons in
  let bound = R.Durability.bound ~checkpoint_interval:interval in
  let bound_held =
    List.for_all (fun s -> s.s_log_hwm <= bound && s.s_safety = 0) samples
  in
  let rec last2 = function
    | [ a; b ] -> (a, b)
    | _ :: tl -> last2 tl
    | [] -> assert false
  in
  let penultimate, final = last2 samples in
  let b0 = List.hd baseline and bn = snd (last2 baseline) in
  let baseline_growth = bn.s_log_hwm - b0.s_log_hwm in
  {
    interval;
    bound;
    samples;
    baseline;
    stabilised = bound_held && final.s_log_hwm = penultimate.s_log_hwm;
    bound_held;
    baseline_growth;
  }

let pp_sample ppf s =
  Format.fprintf ppf
    "ops %5d  completed %5d  commits %5d  log live %4d  hwm %4d  stable \
     %5d  truncations %4d  %Ldµs"
    s.s_ops s.s_completed s.s_commits s.s_log_live s.s_log_hwm s.s_stable_upto
    s.s_truncations s.s_duration_us

let pp_report ppf r =
  Format.fprintf ppf
    "soak: MinBFT, checkpoint interval %d (truncation bound %d entries)@."
    r.interval r.bound;
  List.iter (fun s -> Format.fprintf ppf "  ckpt     %a@." pp_sample s) r.samples;
  List.iter
    (fun s -> Format.fprintf ppf "  no-ckpt  %a@." pp_sample s)
    r.baseline;
  Format.fprintf ppf
    "  log hwm %s across doublings (bound %s); uncheckpointed baseline grew \
     %+d entries@."
    (if r.stabilised then "stabilised" else "DID NOT stabilise")
    (if r.bound_held then "held" else "VIOLATED")
    r.baseline_growth
