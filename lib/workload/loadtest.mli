(** Throughput–latency sweeps over the replication protocols.

    A {!point} pins one experiment configuration (protocol, fault bound,
    workload spec, batch size, seed, link delays); {!run_point} assembles
    the cluster in the deterministic simulator, drives the workload's
    clients against it, and reduces the trace to one {!result} of
    throughput, latency quantiles and trusted-operation rates.  {!sweep}
    runs the (arrival × batch) grid that backs the paper-style
    throughput–latency curves and the batching ablation (one trusted
    attestation per {e batch} in MinBFT, so trusted ops per committed
    request fall as batches grow).

    Results export to a JSONL document ([{!schema}] header line plus one
    [point] object per result) that {!parse} reads back for the
    [thc report loadtest] view. *)

type protocol = Thc_replication.Protocol.t = Minbft | Pbft | Ubft
(** Re-export of {!Thc_replication.Protocol.t} — one protocol identity
    tree-wide. *)

val protocol_name : protocol -> string
(** [= Thc_replication.Protocol.to_string]. *)

type point = {
  protocol : protocol;
  f : int;
  spec : Workload.spec;
  batch : int;  (** Leader batch size (clamped to ≥ 1). *)
  seed : int64;
  delay : Thc_sim.Delay.t;
  network : Thc_network.Model.t option;
      (** Named network model compiled onto the links after the cluster is
          wired ({!Thc_network.Model.install}); rational client strategies
          wrap the workload's client behaviors.  [None] keeps the legacy
          uniform clique built from [delay] — pre-S7 points stay
          byte-identical. *)
}

type result = {
  point : point;
  replicas : int;
  offered : int;  (** Requests the workload generated. *)
  completed : int;  (** Requests that reached a client quorum. *)
  commits : int;  (** Consensus slots (batches) committed. *)
  duration_us : int64;  (** Trace end time (includes idle drain). *)
  makespan_us : int64;  (** Time of the last client completion. *)
  throughput_rps : float;  (** [completed / makespan]. *)
  latency : Thc_util.Stats.summary;  (** End-to-end request latencies, µs. *)
  trusted_total : int;
  trusted_per_commit : float;
  trusted_per_request : float;
  messages : int;
  safety_violations : int;
  phase_p50_us : (string * float) list;
      (** Per-phase p50 latencies from the run's request-span recorder
          ([(phase, µs)], causal order, traversed phases only) — where
          time went inside the pipeline at this operating point.  See
          {!Thc_obsv.Span}. *)
}

val run_point : point -> result
(** Deterministic: a given point always yields the same result.  Raises
    [Invalid_argument] on a malformed workload spec. *)

val run_point_export : point -> result * string
(** Like {!run_point}, additionally returning the run's full engine trace
    as JSONL ({!Thc_sim.Trace.to_jsonl} with {!Thc_util.Codec.encode}d
    messages).  Byte-deterministic per point — the loadtest driver's
    contribution to the golden-trace equivalence corpus. *)

val runner :
  point ->
  arrivals:Workload.arrival list ->
  batches:int list ->
  (Workload.arrival * int, result, result list) Thc_exec.Runner.t
(** The sweep as the repository-wide runner shape: keys are the
    (arrival × batch) grid, arrival-major; [run_one] is one
    {!run_point}. *)

val sweep :
  ?jobs:int ->
  ?stats:(Thc_exec.Pool.stats -> unit) ->
  point ->
  arrivals:Workload.arrival list ->
  batches:int list ->
  result list
(** [run_point] over the full (arrival × batch) grid, arrival-major, with
    every other field taken from the template point.  [jobs] fans points
    out over worker processes; results merge in grid order, so the list —
    and its export — is byte-identical at every value. *)

(** {1 JSONL export} *)

val schema : string
(** ["thc-loadtest/v1"]. *)

val export :
  ?network:Thc_network.Model.t -> seed:int64 -> result list -> string
(** Envelope header line ({!Thc_obsv.Envelope}: type, schema, seed, jobs =
    point count, git revision, points, and — when [network] is given — the
    model's {!Thc_network.Model.tag}) then one canonical-JSON [point]
    line per result.  Byte-deterministic within a checkout; omitting
    [network] reproduces pre-S7 exports exactly. *)

type row = {
  r_protocol : string;
  r_arrival : string;
  r_rate_rps : float;
  r_window : int;
  r_batch : int;
  r_clients : int;
  r_offered : int;
  r_completed : int;
  r_commits : int;
  r_throughput_rps : float;
  r_mean_us : float;
  r_p50_us : float;
  r_p99_us : float;
  r_trusted_total : int;
  r_trusted_per_commit : float;
  r_trusted_per_request : float;
  r_messages : int;
  r_safety : int;
  r_phase_p50 : (string * float) list;
      (** Parsed [phase_p50_us] object; [[]] for pre-span exports. *)
}
(** One parsed [point] line — what the report view renders. *)

val parse : string -> (row list, string) Stdlib.result
(** Read an {!export}ed document back; rejects missing or mismatched
    schema headers and skips unknown line types.  A headerless document
    whose first line is a [point] row (pre-envelope v1 streams) is
    accepted and read as all rows.  A line that fails to
    parse — e.g. a write truncated mid-file — is an [Error] naming the
    line number, so a report over a partial export fails loudly instead
    of silently under-counting points. *)

val result_to_json : result -> Thc_obsv.Json.t
