(** Zipf(theta) sampler over ranks [0 .. n-1].

    Rank [i] is drawn with probability proportional to [1 / (i+1)^theta]:
    rank 0 is the hottest key, and popularity decays polynomially — the
    standard skewed-access model for KV workloads (YCSB uses the same
    family).  [theta = 0] degenerates to the uniform distribution.

    The sampler precomputes the CDF once ([O(n)]) and draws by binary
    search ([O(log n)]); sampling is deterministic given the
    {!Thc_util.Rng.t} stream. *)

type t

val create : n:int -> theta:float -> t
(** Raises [Invalid_argument] if [n <= 0] or [theta < 0]. *)

val size : t -> int

val sample : t -> Thc_util.Rng.t -> int
(** A rank in [0 .. n-1]; rank 0 most popular. *)
