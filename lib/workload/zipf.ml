type t = { cdf : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be non-negative";
  let weights =
    Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  (* Guard against float round-off leaving the last bucket slightly under
     1.0: a draw of 0.999999... must still land inside the table. *)
  cdf.(n - 1) <- 1.0;
  { cdf }

let size t = Array.length t.cdf

let sample t rng =
  let u = Thc_util.Rng.float rng 1.0 in
  (* First index whose cumulative weight covers u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
