module Span = Thc_obsv.Span
module Harness = Thc_replication.Harness
module J = Thc_obsv.Json

let schema = "thc-span/v1"

type campaign = {
  setup : Harness.setup;  (** Template; its [seed] is replaced per run. *)
  seeds : int64 list;
}

type run_data = {
  rd_seed : int64;
  rd_views : Span.view list;
  rd_ops : (string * (string * int) list) list;
  rd_completed : int;
  rd_commits : int;
}

type report = {
  runs : run_data list;  (** Seed order (= key order). *)
  summary : Span.summary;  (** Merged over every run's views and ops. *)
}

let run_seed setup seed =
  let outcome, views, ops = Harness.run_spans { setup with Harness.seed } in
  {
    rd_seed = seed;
    rd_views = views;
    rd_ops = ops;
    rd_completed = outcome.Harness.completed;
    rd_commits = outcome.Harness.commits;
  }

let merge runs =
  {
    runs;
    summary =
      Span.summarize
        ~ops:(Span.merge_ops (List.map (fun rd -> rd.rd_ops) runs))
        (List.concat_map (fun rd -> rd.rd_views) runs);
  }

let runner campaign =
  {
    Thc_exec.Runner.name = "trace";
    keys = campaign.seeds;
    run_one = run_seed campaign.setup;
    summarize = merge;
  }

let run ?jobs ?stats campaign =
  if campaign.seeds = [] then invalid_arg "Phase_trace.run: no seeds";
  Thc_exec.Runner.run ?jobs ?stats (runner campaign)

(* Slowest requests across the whole campaign, as (seed, view) so the
   drill-down can name the run a span came from.  Ties break toward the
   lower (seed, rid) — fully deterministic, any [--jobs]. *)
let slowest ?(top = 5) report =
  let keyed =
    List.concat_map
      (fun rd ->
        List.filter_map
          (fun v ->
            Option.map (fun l -> (l, rd.rd_seed, v)) (Span.total_latency v))
          rd.rd_views)
      report.runs
  in
  let sorted =
    List.sort
      (fun (l1, s1, (v1 : Span.view)) (l2, s2, (v2 : Span.view)) ->
        match Int64.compare l2 l1 with
        | 0 -> (
          match Int64.compare s1 s2 with
          | 0 -> compare v1.Span.v_rid v2.Span.v_rid
          | c -> c)
        | c -> c)
      keyed
  in
  List.filteri (fun i _ -> i < top) sorted
  |> List.map (fun (_, s, v) -> (s, v))

(* --- JSONL export / parse ---------------------------------------------- *)

(* One span line per request with its run's seed spliced in right after
   the type tag, then the merged per-phase rows.  Byte-deterministic per
   (campaign, checkout), independent of [--jobs]. *)
let span_line ~seed v =
  match Span.view_to_json v with
  | J.Obj (("type", t) :: rest) ->
    J.Obj (("type", t) :: ("seed", J.Int (Int64.to_int seed)) :: rest)
  | j -> j

let export campaign report =
  let b = Buffer.create 8192 in
  let line j =
    Buffer.add_string b (J.to_string j);
    Buffer.add_char b '\n'
  in
  line
    (Thc_obsv.Envelope.header ~typ:"spans" ~schema
       ~seed:campaign.setup.Harness.seed
       ~jobs:(List.length campaign.seeds)
       ~git:(Thc_exec.Gitinfo.describe ())
       ~extra:
         ([
            ( "protocol",
              J.Str
                (Thc_replication.Protocol.to_string
                   campaign.setup.Harness.protocol) );
            ("seeds", J.Int (List.length campaign.seeds));
            ("spans", J.Int report.summary.Span.spans_total);
          ]
         (* Network tag only when a model is set: pre-S7 exports keep
            their exact bytes. *)
         @
         match campaign.setup.Harness.network with
         | None -> []
         | Some m -> [ ("network", J.Str (Thc_network.Model.tag m)) ])
       ());
  List.iter
    (fun rd ->
      List.iter (fun v -> line (span_line ~seed:rd.rd_seed v)) rd.rd_views)
    report.runs;
  List.iter
    (fun row -> line (Span.phase_row_to_json row))
    report.summary.Span.rows;
  Buffer.contents b

let parse text =
  let lines =
    List.filter
      (fun (_, l) -> String.trim l <> "")
      (List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' text))
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (lineno, l) :: rest -> (
      match J.parse l with
      | Error e ->
        Error
          (Printf.sprintf "line %d: malformed or truncated JSONL (%s)" lineno e)
      | Ok j -> (
        match Option.bind (J.member "type" j) J.to_str with
        | Some "span" -> (
          match Span.view_of_json j with
          | Some v ->
            let seed =
              Int64.of_int
                (Option.value ~default:0
                   (Option.bind (J.member "seed" j) J.to_int))
            in
            collect ((seed, v) :: acc) rest
          | None ->
            Error (Printf.sprintf "line %d: span row missing marks" lineno))
        | _ -> collect acc rest (* phase rows and unknown types: skipped *)))
  in
  match lines with
  | [] -> Error "empty span export"
  | (_, header) :: rest -> (
    match J.parse header with
    | Error e -> Error (Printf.sprintf "bad header: %s" e)
    | Ok h -> (
      match
        ( Option.bind (J.member "type" h) J.to_str,
          Option.bind (J.member "schema" h) J.to_str )
      with
      | Some "spans", Some s when s = schema -> collect [] rest
      | Some "spans", Some s ->
        Error (Printf.sprintf "schema mismatch: got %s, want %s" s schema)
      | _ -> Error "not a span export (missing type/schema header)"))

let pp_report ?(top = 3) ppf report =
  Span.pp_summary ppf report.summary;
  match slowest ~top report with
  | [] -> ()
  | worst ->
    Format.fprintf ppf "@,@[<v>slowest requests:@,";
    List.iter
      (fun (seed, v) ->
        Format.fprintf ppf "@[<v 2>seed %Ld rid %d (client %d):@,%a@]@," seed
          v.Span.v_rid v.Span.v_client Span.pp_critical_path v)
      worst;
    Format.fprintf ppf "@]"
