module W = Workload
module Minbft = Thc_replication.Minbft
module Pbft = Thc_replication.Pbft
module Ubft = Thc_replication.Ubft
module Smr_spec = Thc_replication.Smr_spec
module J = Thc_obsv.Json

let schema = "thc-loadtest/v1"

type protocol = Thc_replication.Protocol.t = Minbft | Pbft | Ubft

let protocol_name = Thc_replication.Protocol.to_string

type point = {
  protocol : protocol;
  f : int;
  spec : W.spec;
  batch : int;
  seed : int64;
  delay : Thc_sim.Delay.t;
  network : Thc_network.Model.t option;
}

type result = {
  point : point;
  replicas : int;
  offered : int;
  completed : int;
  commits : int;
  duration_us : int64;
  makespan_us : int64;
  throughput_rps : float;
  latency : Thc_util.Stats.summary;
  trusted_total : int;
  trusted_per_commit : float;
  trusted_per_request : float;
  messages : int;
  safety_violations : int;
  phase_p50_us : (string * float) list;
}

(* Same layout as Harness: replicas at pids 0..n-1, clients at n..; client c
   owns the contiguous rid block starting at [c * requests_per_client]. *)
let client_behaviors (type m) p ~n ~keyring
    ~(open_client :
       rid_base:int ->
       ident:Thc_crypto.Keyring.secret ->
       plan:(int64 * Thc_replication.Kv_store.op) list ->
       m Thc_sim.Engine.behavior)
    ~(wrap : Thc_replication.Command.signed_request -> m)
    ~(unwrap : m -> Thc_replication.Command.reply option) =
  List.init p.spec.W.clients (fun c ->
      let pid = n + c in
      let ident = Thc_crypto.Keyring.secret keyring ~pid in
      let rid_base = c * p.spec.W.requests_per_client in
      let behavior =
        match W.plan p.spec ~seed:p.seed ~client:c with
        | Some plan -> open_client ~rid_base ~ident ~plan
        | None ->
          let window, think_us =
            match p.spec.W.arrival with
            | W.Closed { window; think_us } -> (window, think_us)
            | W.Open_uniform _ | W.Open_poisson _ -> assert false
          in
          Traffic.closed_loop ~rid_base ~n_replicas:n ~quorum:(p.f + 1) ~ident
            ~window ~think_us
            ~ops:(W.ops p.spec ~seed:p.seed ~client:c)
            ~wrap ~unwrap
      in
      let behavior =
        match p.network with
        | None -> behavior
        | Some m ->
          Thc_network.Model.wrap_client m ~replicas:n ~f:p.f
            ~clients:p.spec.W.clients ~client_index:c ~pid behavior
      in
      (pid, behavior))

(* Per-phase p50s from the run's span recorder: [(phase, µs)] in causal
   order, traversed phases only.  Plain data so results stay Marshal-safe
   across sweep workers. *)
let phase_p50s spans =
  List.filter_map
    (fun (r : Thc_obsv.Span.phase_row) ->
      Option.map (fun p50 -> (r.p_name, Int64.to_float p50)) r.p_p50)
    (Thc_obsv.Span.summarize (Thc_obsv.Span.views spans)).rows

let finish (type m) p ~(trace : m Thc_sim.Trace.t) ~replicas ~hw ~phase_p50_us =
  let latencies = Smr_spec.client_latencies trace in
  let completed = List.length latencies in
  let offered = W.total_requests p.spec in
  let commits = Smr_spec.commits trace ~replicas in
  (* Throughput over the makespan (time of the last completion), not the
     trace end: replicas keep timeout-scan timers ticking until the horizon,
     which would otherwise dilute the rate by idle drain time. *)
  let makespan_us =
    List.fold_left
      (fun acc (t, ()) -> if Int64.compare t acc > 0 then t else acc)
      0L
      (Thc_sim.Trace.outputs_matching trace (fun _pid obs ->
           match obs with Thc_sim.Obs.Client_done _ -> Some () | _ -> None))
  in
  let throughput_rps =
    if completed = 0 || Int64.compare makespan_us 0L <= 0 then 0.0
    else float_of_int completed /. (Int64.to_float makespan_us /. 1e6)
  in
  let trusted_total = Thc_obsv.Ledger.total hw in
  {
    point = p;
    replicas;
    offered;
    completed;
    commits;
    duration_us = trace.Thc_sim.Trace.end_time;
    makespan_us;
    throughput_rps;
    latency = Thc_util.Stats.summarize latencies;
    trusted_total;
    trusted_per_commit =
      (if commits = 0 then 0.0
       else float_of_int trusted_total /. float_of_int commits);
    trusted_per_request =
      (if completed = 0 then 0.0
       else float_of_int trusted_total /. float_of_int completed);
    messages = Thc_sim.Trace.messages_sent trace;
    safety_violations =
      List.length
        (Smr_spec.check_safety trace ~replicas
        @ Smr_spec.check_state_determinism trace ~replicas);
    phase_p50_us;
  }

(* Each run_* returns the reduced result plus a thunk for the raw engine
   trace as JSONL, so the sweep path never pays for serialisation and the
   golden-trace corpus can still capture the loadtest driver byte-for-byte. *)
let run_minbft p =
  let config =
    { (Minbft.default_config ~f:p.f) with batch_size = max 1 p.batch }
  in
  let n = config.n in
  let total = n + p.spec.W.clients in
  let rng = Thc_util.Rng.create p.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n:total ~default:p.delay in
  let spans = Thc_obsv.Span.create () in
  Thc_obsv.Ledger.set_observer
    (Thc_hardware.Trinc.ledger world)
    (Thc_obsv.Span.attribute spans);
  let engine = Thc_sim.Engine.create ~seed:p.seed ~spans ~n:total ~net () in
  for self = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine self
      (Minbft.replica
         (Minbft.create_replica ~config ~keyring ~world
            ~trinket:(Thc_hardware.Trinc.trinket world ~owner:self)
            ~self))
  done;
  List.iter
    (fun (pid, b) -> Thc_sim.Engine.set_behavior engine pid b)
    (client_behaviors p ~n ~keyring
       ~open_client:(fun ~rid_base ~ident ~plan ->
         Minbft.client ~rid_base ~config ~keyring ~ident ~plan)
       ~wrap:Minbft.wrap_request ~unwrap:Minbft.unwrap_reply);
  Option.iter
    (fun m -> Thc_network.Model.install m engine ~replicas:n ())
    p.network;
  let trace =
    Thc_sim.Engine.run ~until:(W.horizon_us p.spec) ~max_events:20_000_000
      engine
  in
  ( finish p ~trace ~replicas:n
      ~hw:(Thc_hardware.Trinc.ledger world)
      ~phase_p50_us:(phase_p50s spans),
    fun () -> Thc_sim.Trace.to_jsonl ~encode_msg:Thc_util.Codec.encode trace )

let run_pbft p =
  let config =
    { (Pbft.default_config ~f:p.f) with batch_size = max 1 p.batch }
  in
  let n = config.n in
  let total = n + p.spec.W.clients in
  let rng = Thc_util.Rng.create p.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let net = Thc_sim.Net.create ~n:total ~default:p.delay in
  let spans = Thc_obsv.Span.create () in
  let engine = Thc_sim.Engine.create ~seed:p.seed ~spans ~n:total ~net () in
  for self = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine self
      (Pbft.replica
         (Pbft.create_replica ~config ~keyring
            ~ident:(Thc_crypto.Keyring.secret keyring ~pid:self)
            ~self))
  done;
  List.iter
    (fun (pid, b) -> Thc_sim.Engine.set_behavior engine pid b)
    (client_behaviors p ~n ~keyring
       ~open_client:(fun ~rid_base ~ident ~plan ->
         Pbft.client ~rid_base ~config ~keyring ~ident ~plan)
       ~wrap:Pbft.wrap_request ~unwrap:Pbft.unwrap_reply);
  Option.iter
    (fun m -> Thc_network.Model.install m engine ~replicas:n ())
    p.network;
  let trace =
    Thc_sim.Engine.run ~until:(W.horizon_us p.spec) ~max_events:20_000_000
      engine
  in
  (* PBFT spends no trusted ops; an empty ledger keeps its rates at 0. *)
  ( finish p ~trace ~replicas:n
      ~hw:(Thc_obsv.Ledger.create ())
      ~phase_p50_us:(phase_p50s spans),
    fun () -> Thc_sim.Trace.to_jsonl ~encode_msg:Thc_util.Codec.encode trace )

(* uBFT's trusted hardware is the register array itself: a fresh ledger
   attached to every register plays the role the trinket ledger plays in
   the MinBFT runs, so trusted_per_request counts register ops. *)
let run_ubft p =
  let config =
    { (Ubft.default_config ~f:p.f) with batch_size = max 1 p.batch }
  in
  let n = config.n in
  let total = n + p.spec.W.clients in
  let rng = Thc_util.Rng.create p.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let net = Thc_sim.Net.create ~n:total ~default:p.delay in
  let spans = Thc_obsv.Span.create () in
  let registers : Ubft.registers = Thc_sharedmem.Swmr.log_array ~n in
  let hw = Thc_obsv.Ledger.create () in
  Thc_sharedmem.Swmr.attach_ledger_all registers hw;
  Thc_obsv.Ledger.set_observer hw (Thc_obsv.Span.attribute spans);
  let engine = Thc_sim.Engine.create ~seed:p.seed ~spans ~n:total ~net () in
  for self = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine self
      (Ubft.replica
         (Ubft.create_replica ~config ~keyring ~registers
            ~ident:(Thc_crypto.Keyring.secret keyring ~pid:self)
            ~self))
  done;
  List.iter
    (fun (pid, b) -> Thc_sim.Engine.set_behavior engine pid b)
    (client_behaviors p ~n ~keyring
       ~open_client:(fun ~rid_base ~ident ~plan ->
         Ubft.client ~rid_base ~config ~keyring ~ident ~plan)
       ~wrap:Ubft.wrap_request ~unwrap:Ubft.unwrap_reply);
  Option.iter
    (fun m -> Thc_network.Model.install m engine ~replicas:n ())
    p.network;
  let trace =
    Thc_sim.Engine.run ~until:(W.horizon_us p.spec) ~max_events:20_000_000
      engine
  in
  ( finish p ~trace ~replicas:n ~hw ~phase_p50_us:(phase_p50s spans),
    fun () -> Thc_sim.Trace.to_jsonl ~encode_msg:Thc_util.Codec.encode trace )

let run_point_export p =
  W.validate p.spec;
  let result, export =
    match p.protocol with
    | Minbft -> run_minbft p
    | Pbft -> run_pbft p
    | Ubft -> run_ubft p
  in
  (result, export ())

let run_point p =
  W.validate p.spec;
  let result, _ =
    match p.protocol with
    | Minbft -> run_minbft p
    | Pbft -> run_pbft p
    | Ubft -> run_ubft p
  in
  result

let runner p ~arrivals ~batches =
  {
    Thc_exec.Runner.name = "loadtest";
    keys =
      List.concat_map
        (fun arrival -> List.map (fun batch -> (arrival, batch)) batches)
        arrivals;
    run_one =
      (fun (arrival, batch) ->
        run_point { p with batch; spec = { p.spec with W.arrival } });
    summarize = Fun.id;
  }

let sweep ?jobs ?stats p ~arrivals ~batches =
  Thc_exec.Runner.run ?jobs ?stats (runner p ~arrivals ~batches)

(* --- JSONL export / parse ---------------------------------------------- *)

let arrival_fields = function
  | W.Open_uniform { rate_rps } -> ("open-uniform", rate_rps, 0, 0L)
  | W.Open_poisson { rate_rps } -> ("open-poisson", rate_rps, 0, 0L)
  | W.Closed { window; think_us } -> ("closed", 0.0, window, think_us)

let result_to_json r =
  let kind, rate_rps, window, think_us = arrival_fields r.point.spec.W.arrival in
  J.Obj
    [
      ("type", J.Str "point");
      ("protocol", J.Str (protocol_name r.point.protocol));
      ("f", J.Int r.point.f);
      ("arrival", J.Str kind);
      ("rate_rps", J.Float rate_rps);
      ("window", J.Int window);
      ("think_us", J.Int (Int64.to_int think_us));
      ("batch", J.Int r.point.batch);
      ("clients", J.Int r.point.spec.W.clients);
      ("requests_per_client", J.Int r.point.spec.W.requests_per_client);
      ("offered", J.Int r.offered);
      ("completed", J.Int r.completed);
      ("commits", J.Int r.commits);
      ("duration_us", J.Int (Int64.to_int r.duration_us));
      ("makespan_us", J.Int (Int64.to_int r.makespan_us));
      ("throughput_rps", J.Float r.throughput_rps);
      ("latency_mean_us", J.Float r.latency.Thc_util.Stats.mean);
      ("latency_p50_us", J.Float r.latency.Thc_util.Stats.p50);
      ("latency_p90_us", J.Float r.latency.Thc_util.Stats.p90);
      ("latency_p99_us", J.Float r.latency.Thc_util.Stats.p99);
      ("trusted_total", J.Int r.trusted_total);
      ("trusted_per_commit", J.Float r.trusted_per_commit);
      ("trusted_per_request", J.Float r.trusted_per_request);
      ("messages", J.Int r.messages);
      ("safety_violations", J.Int r.safety_violations);
      ( "phase_p50_us",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) r.phase_p50_us) );
    ]

let export ?network ~seed results =
  let b = Buffer.create 4096 in
  let line j =
    Buffer.add_string b (J.to_string j);
    Buffer.add_char b '\n'
  in
  line
    (Thc_obsv.Envelope.header ~typ:"loadtest" ~schema ~seed
       ~jobs:(List.length results)
       ~git:(Thc_exec.Gitinfo.describe ())
       ~extra:
         (("points", J.Int (List.length results))
         ::
         (* Only emitted when a model is set, so pre-S7 exports keep
            their exact bytes; readers treat it as optional. *)
         (match network with
         | None -> []
         | Some m -> [ ("network", J.Str (Thc_network.Model.tag m)) ]))
       ());
  List.iter (fun r -> line (result_to_json r)) results;
  Buffer.contents b

type row = {
  r_protocol : string;
  r_arrival : string;
  r_rate_rps : float;
  r_window : int;
  r_batch : int;
  r_clients : int;
  r_offered : int;
  r_completed : int;
  r_commits : int;
  r_throughput_rps : float;
  r_mean_us : float;
  r_p50_us : float;
  r_p99_us : float;
  r_trusted_total : int;
  r_trusted_per_commit : float;
  r_trusted_per_request : float;
  r_messages : int;
  r_safety : int;
  r_phase_p50 : (string * float) list;
}

let row_of_json j =
  let str k = Option.bind (J.member k j) J.to_str in
  let int k = Option.value ~default:0 (Option.bind (J.member k j) J.to_int) in
  let flt k =
    Option.value ~default:0.0 (Option.bind (J.member k j) J.to_float)
  in
  match (str "protocol", str "arrival") with
  | Some r_protocol, Some r_arrival ->
    Some
      {
        r_protocol;
        r_arrival;
        r_rate_rps = flt "rate_rps";
        r_window = int "window";
        r_batch = int "batch";
        r_clients = int "clients";
        r_offered = int "offered";
        r_completed = int "completed";
        r_commits = int "commits";
        r_throughput_rps = flt "throughput_rps";
        r_mean_us = flt "latency_mean_us";
        r_p50_us = flt "latency_p50_us";
        r_p99_us = flt "latency_p99_us";
        r_trusted_total = int "trusted_total";
        r_trusted_per_commit = flt "trusted_per_commit";
        r_trusted_per_request = flt "trusted_per_request";
        r_messages = int "messages";
        r_safety = int "safety_violations";
        r_phase_p50 =
          (match J.member "phase_p50_us" j with
          | Some (J.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun f -> (k, f)) (J.to_float v))
              kvs
          | Some _ | None -> [] (* pre-span exports: no per-phase columns *));
      }
  | _ -> None

let parse text =
  let lines =
    List.filter
      (fun (_, l) -> String.trim l <> "")
      (List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' text))
  in
  (* A line that does not parse — truncated writes included — is a
     hard error naming the line, not a silent drop: a report over a
     partial export must say so rather than under-count. *)
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (lineno, l) :: rest -> (
      match J.parse l with
      | Error e ->
        Error
          (Printf.sprintf "line %d: malformed or truncated JSONL (%s)" lineno
             e)
      | Ok j -> (
        match Option.bind (J.member "type" j) J.to_str with
        | Some "point" -> (
          match row_of_json j with
          | Some r -> collect (r :: acc) rest
          | None ->
            Error
              (Printf.sprintf "line %d: point row missing protocol/arrival"
                 lineno))
        | _ -> collect acc rest))
  in
  match lines with
  | [] -> Error "empty loadtest export"
  | ((_, header) :: rest) as all -> (
    match J.parse header with
    | Error e -> Error (Printf.sprintf "bad header: %s" e)
    | Ok h -> (
      match
        (Option.bind (J.member "type" h) J.to_str,
         Option.bind (J.member "schema" h) J.to_str)
      with
      | Some "loadtest", Some s when s = schema -> collect [] rest
      | Some "loadtest", Some s ->
        Error (Printf.sprintf "schema mismatch: got %s, want %s" s schema)
      | Some "point", _ ->
        (* Headerless v1 stream: every line is a point row.  Pre-envelope
           tooling concatenated or tailed exports without the header; keep
           reading them. *)
        collect [] all
      | _ -> Error "not a loadtest export (missing type/schema header)"))
