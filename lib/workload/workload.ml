type arrival =
  | Open_uniform of { rate_rps : float }
  | Open_poisson of { rate_rps : float }
  | Closed of { window : int; think_us : int64 }

type key_dist =
  | Keys_uniform of { keys : int }
  | Keys_zipf of { keys : int; theta : float }

type mix = { gets : int; puts : int; incrs : int }

let default_mix = { gets = 50; puts = 40; incrs = 10 }

type spec = {
  clients : int;
  requests_per_client : int;
  arrival : arrival;
  keys : key_dist;
  mix : mix;
}

let total_requests spec = spec.clients * spec.requests_per_client

let pp_arrival ppf = function
  | Open_uniform { rate_rps } ->
    Format.fprintf ppf "open-uniform(%.0f req/s)" rate_rps
  | Open_poisson { rate_rps } ->
    Format.fprintf ppf "open-poisson(%.0f req/s)" rate_rps
  | Closed { window; think_us } ->
    Format.fprintf ppf "closed(window=%d,think=%Ldµs)" window think_us

(* Every stream below hangs off one per-(seed, client) generator, split per
   concern, so arrival times, key picks and op kinds are independent draws
   yet the whole schedule is a pure function of (spec, seed, client). *)
let client_rng ~seed ~client =
  let rng = Thc_util.Rng.create seed in
  let per_client = ref rng in
  for _ = 0 to client do
    per_client := Thc_util.Rng.split rng
  done;
  !per_client

let validate spec =
  if spec.clients <= 0 then invalid_arg "Workload: clients must be positive";
  if spec.requests_per_client <= 0 then
    invalid_arg "Workload: requests_per_client must be positive";
  (match spec.keys with
  | Keys_uniform { keys } | Keys_zipf { keys; _ } ->
    if keys <= 0 then invalid_arg "Workload: keys must be positive");
  let { gets; puts; incrs } = spec.mix in
  if gets < 0 || puts < 0 || incrs < 0 || gets + puts + incrs <= 0 then
    invalid_arg "Workload: mix weights must be non-negative and sum > 0";
  match spec.arrival with
  | Open_uniform { rate_rps } | Open_poisson { rate_rps } ->
    if rate_rps <= 0.0 then invalid_arg "Workload: rate must be positive"
  | Closed { window; think_us } ->
    if window <= 0 then invalid_arg "Workload: window must be positive";
    if Int64.compare think_us 0L < 0 then
      invalid_arg "Workload: think time must be non-negative"

(* The offered rate is aggregate across clients: each of the [c] clients
   generates at rate/c, so per-client inter-arrival gaps average
   [c * 1e6 / rate] µs. *)
let mean_gap_us spec ~rate_rps = float_of_int spec.clients *. 1e6 /. rate_rps

let ops spec ~seed ~client =
  validate spec;
  let rng = client_rng ~seed ~client in
  let key_rng = Thc_util.Rng.split rng in
  let mix_rng = Thc_util.Rng.split rng in
  let pick_key =
    match spec.keys with
    | Keys_uniform { keys } -> fun () -> Thc_util.Rng.int key_rng keys
    | Keys_zipf { keys; theta } ->
      let z = Zipf.create ~n:keys ~theta in
      fun () -> Zipf.sample z key_rng
  in
  let { gets; puts; incrs } = spec.mix in
  let total = gets + puts + incrs in
  List.init spec.requests_per_client (fun i ->
      let key = Printf.sprintf "k%d" (pick_key ()) in
      let roll = Thc_util.Rng.int mix_rng total in
      if roll < gets then Thc_replication.Kv_store.Get key
      else if roll < gets + puts then
        Thc_replication.Kv_store.Put (key, Printf.sprintf "c%d-%d" client i)
      else Thc_replication.Kv_store.Incr key)

let arrival_times spec ~seed ~client =
  validate spec;
  let rng = client_rng ~seed ~client in
  (* Mirror [ops]' split order so both streams come from the same
     generator without perturbing each other. *)
  let _key_rng = Thc_util.Rng.split rng in
  let _mix_rng = Thc_util.Rng.split rng in
  let gap_rng = Thc_util.Rng.split rng in
  match spec.arrival with
  | Closed _ -> None
  | Open_uniform { rate_rps } ->
    let gap = mean_gap_us spec ~rate_rps in
    Some
      (List.init spec.requests_per_client (fun i ->
           Int64.of_float (gap *. float_of_int (i + 1))))
  | Open_poisson { rate_rps } ->
    let mean = mean_gap_us spec ~rate_rps in
    let t = ref 0.0 in
    Some
      (List.init spec.requests_per_client (fun _ ->
           t := !t +. Float.max 1.0 (Thc_util.Rng.exponential gap_rng ~mean);
           Int64.of_float !t))

let plan spec ~seed ~client =
  match arrival_times spec ~seed ~client with
  | None -> None
  | Some times -> Some (List.combine times (ops spec ~seed ~client))

let horizon_us spec =
  match spec.arrival with
  | Open_uniform { rate_rps } | Open_poisson { rate_rps } ->
    (* Last scheduled arrival plus generous drain time: Poisson tails can
       overshoot the nominal schedule, and commits lag arrivals. *)
    let nominal =
      mean_gap_us spec ~rate_rps *. float_of_int (spec.requests_per_client + 2)
    in
    Int64.add (Int64.of_float (3.0 *. nominal)) 2_000_000L
  | Closed { think_us; _ } ->
    (* Closed loops self-pace; bound the run by a pessimistic per-request
       round trip. *)
    Int64.add
      (Int64.mul
         (Int64.of_int spec.requests_per_client)
         (Int64.add think_us 50_000L))
      2_000_000L
