module Command = Thc_replication.Command

let closed_loop ~rid_base ~n_replicas ~quorum ~ident ~window ~think_us ~ops
    ~wrap ~unwrap : 'm Thc_sim.Engine.behavior =
  if window <= 0 then invalid_arg "Traffic.closed_loop: window must be positive";
  let ops = Array.of_list ops in
  let collector = Command.Collector.create ~quorum in
  let sent_at : (int, int64) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let send_next (ctx : 'm Thc_sim.Engine.ctx) =
    if !next < Array.length ops then begin
      let i = !next in
      incr next;
      let rid = rid_base + i in
      let sr = Command.make ~ident ~rid ops.(i) in
      Hashtbl.replace sent_at rid (ctx.now ());
      if Thc_obsv.Span.enabled ctx.spans then
        Thc_obsv.Span.mark ctx.spans ~client:ctx.self ~rid Thc_obsv.Span.Submit
          ~at:(ctx.now ());
      for replica = 0 to n_replicas - 1 do
        ctx.send replica (wrap sr)
      done
    end
  in
  {
    Thc_sim.Engine.init =
      (fun ctx ->
        (* Prime the window; afterwards completions pull in the rest, so the
           number outstanding never exceeds [window]. *)
        for _ = 1 to min window (Array.length ops) do
          send_next ctx
        done);
    on_message =
      (fun ctx ~src:_ m ->
        match unwrap m with
        | None -> ()
        | Some (reply : Command.reply) ->
          (match Command.Collector.add collector reply with
          | None -> ()
          | Some _result ->
            (match Hashtbl.find_opt sent_at reply.rid with
            | Some t0 ->
              if Thc_obsv.Span.enabled ctx.spans then
                Thc_obsv.Span.mark ctx.spans ~client:ctx.self ~rid:reply.rid
                  Thc_obsv.Span.Reply_done ~at:(ctx.now ());
              ctx.output
                (Thc_sim.Obs.Client_done
                   { rid = reply.rid; latency_us = Int64.sub (ctx.now ()) t0 })
            | None -> ());
            if Int64.compare think_us 0L > 0 then
              ctx.set_timer ~delay:think_us ~tag:0
            else send_next ctx));
    on_timer = (fun ctx _tag -> send_next ctx);
  }
