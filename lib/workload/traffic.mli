(** Closed-loop client behavior.

    Where {!Thc_replication.Client_core.behavior} replays a fixed
    time-stamped plan (open loop — arrivals ignore the system's state), a
    closed-loop client keeps a fixed number of requests outstanding and
    issues the next one only when a previous one completes, optionally
    after a think time.  Closed loops self-clock: they measure the system
    at its natural saturation point instead of at a chosen offered rate. *)

val closed_loop :
  rid_base:int ->
  n_replicas:int ->
  quorum:int ->
  ident:Thc_crypto.Keyring.secret ->
  window:int ->
  think_us:int64 ->
  ops:Thc_replication.Kv_store.op list ->
  wrap:(Thc_replication.Command.signed_request -> 'm) ->
  unwrap:('m -> Thc_replication.Command.reply option) ->
  'm Thc_sim.Engine.behavior
(** Sends the first [min window (length ops)] requests at time 0; each
    quorum-confirmed completion emits [Obs.Client_done] and (after
    [think_us]) releases the next request.  Request ids are
    [rid_base + index], matching the open-loop convention so per-client
    rid ranges stay disjoint.  Raises [Invalid_argument] on a
    non-positive [window]. *)
