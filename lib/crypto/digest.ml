type t = int64

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* FNV-1a, four bytes folded per iteration inside one fused expression:
   without flambda the compiler only unboxes int64 intermediates within
   a single expression tree, so the fused form allocates one box per
   four bytes instead of several per byte.  Same arithmetic, same
   digest, ~4x faster on the sign/verify hot path. *)
let of_string s =
  let n = String.length s in
  let h = ref fnv_offset in
  let i = ref 0 in
  while !i + 4 <= n do
    let j = !i in
    h :=
      Int64.mul
        (Int64.logxor
           (Int64.mul
              (Int64.logxor
                 (Int64.mul
                    (Int64.logxor
                       (Int64.mul
                          (Int64.logxor !h
                             (Int64.of_int
                                (Char.code (String.unsafe_get s j))))
                          fnv_prime)
                       (Int64.of_int (Char.code (String.unsafe_get s (j + 1)))))
                    fnv_prime)
                 (Int64.of_int (Char.code (String.unsafe_get s (j + 2)))))
              fnv_prime)
           (Int64.of_int (Char.code (String.unsafe_get s (j + 3)))))
        fnv_prime;
    i := j + 4
  done;
  while !i < n do
    h :=
      Int64.mul
        (Int64.logxor !h
           (Int64.of_int (Char.code (String.unsafe_get s !i))))
        fnv_prime;
    incr i
  done;
  mix !h

let of_value v = of_string (Thc_util.Codec.encode v)

let combine a b = mix (Int64.add (mix a) (Int64.mul b fnv_prime))

let to_int64 d = d

let equal = Int64.equal
let compare = Int64.compare
let to_hex d = Printf.sprintf "%016Lx" d
let pp ppf d = Format.pp_print_string ppf (to_hex d)
