module Sexp = Thc_util.Sexp
module Delay = Thc_sim.Delay
module Net = Thc_sim.Net
module Engine = Thc_sim.Engine

type t =
  | Clique of { delay : Delay.t; links : ((int * int) * Delay.t) list }
  | Geo_regions of { regions : int; lan : Delay.t; wan : Delay.t }
  | Asymmetric of { fast : Delay.t; slow : Delay.t }
  | Lossy of { base : Delay.t; drop : float; heal_at : int64; seed : int64 }

(* --- tags and descriptions ---------------------------------------------- *)

let float_str f =
  (* %.12g round-trips every value we print in practice and never emits
     the locale-hostile "1e+06.5" shapes [string_of_float] can. *)
  Printf.sprintf "%.12g" f

let delay_tag = function
  | Delay.Const d -> Printf.sprintf "c%Ld" d
  | Delay.Uniform (lo, hi) -> Printf.sprintf "u%Ld-%Ld" lo hi
  | Delay.Exponential m -> Printf.sprintf "e%s" (float_str m)

let tag = function
  | Clique { delay; links = [] } -> "clique:" ^ delay_tag delay
  | Clique { delay; links } ->
    Printf.sprintf "clique:%s+%dl" (delay_tag delay) (List.length links)
  | Geo_regions { regions; _ } -> "geo" ^ string_of_int regions
  | Asymmetric _ -> "asym"
  | Lossy { drop; _ } ->
    Printf.sprintf "lossy%d" (int_of_float ((drop *. 100.) +. 0.5))

let describe = function
  | Clique { delay; links = [] } ->
    Format.asprintf "full mesh, every link %a" Delay.pp delay
  | Clique { delay; links } ->
    Format.asprintf "full mesh, %a with %d per-link overrides" Delay.pp delay
      (List.length links)
  | Geo_regions { regions; lan; wan } ->
    Format.asprintf
      "%d geo regions (pid mod %d): intra-region %a, cross-region %a" regions
      regions Delay.pp lan Delay.pp wan
  | Asymmetric { fast; slow } ->
    Format.asprintf "per-direction skew: low→high pid %a, high→low %a"
      Delay.pp fast Delay.pp slow
  | Lossy { base; drop; heal_at; seed } ->
    Format.asprintf
      "seeded loss (seed %Ld): each link dropped/held with p=%s until \
       %Ldµs, then %a"
      seed (float_str drop) heal_at Delay.pp base

(* --- sexp codec --------------------------------------------------------- *)

let delay_to_sexp = function
  | Delay.Const d -> Sexp.list [ Sexp.atom "const"; Sexp.int64_atom d ]
  | Delay.Uniform (lo, hi) ->
    Sexp.list [ Sexp.atom "uniform"; Sexp.int64_atom lo; Sexp.int64_atom hi ]
  | Delay.Exponential m ->
    Sexp.list [ Sexp.atom "exp"; Sexp.atom (float_str m) ]

let delay_of_sexp = function
  | Sexp.List [ Sexp.Atom "const"; d ] -> Delay.Const (Sexp.to_int64 d)
  | Sexp.List [ Sexp.Atom "uniform"; lo; hi ] ->
    Delay.Uniform (Sexp.to_int64 lo, Sexp.to_int64 hi)
  | Sexp.List [ Sexp.Atom "exp"; m ] ->
    Delay.Exponential (float_of_string (Sexp.to_atom m))
  | s -> failwith ("Topology: bad delay sexp: " ^ Sexp.to_string s)

let field name value = Sexp.list [ Sexp.atom name; value ]

let to_sexp = function
  | Clique { delay; links } ->
    Sexp.list
      (Sexp.atom "clique"
       :: field "delay" (delay_to_sexp delay)
       ::
       (if links = [] then []
        else
          [
            Sexp.list
              (Sexp.atom "links"
              :: List.map
                   (fun ((src, dst), d) ->
                     Sexp.list
                       [ Sexp.int_atom src; Sexp.int_atom dst; delay_to_sexp d ])
                   links);
          ]))
  | Geo_regions { regions; lan; wan } ->
    Sexp.list
      [
        Sexp.atom "geo";
        field "regions" (Sexp.int_atom regions);
        field "lan" (delay_to_sexp lan);
        field "wan" (delay_to_sexp wan);
      ]
  | Asymmetric { fast; slow } ->
    Sexp.list
      [
        Sexp.atom "asym";
        field "fast" (delay_to_sexp fast);
        field "slow" (delay_to_sexp slow);
      ]
  | Lossy { base; drop; heal_at; seed } ->
    Sexp.list
      [
        Sexp.atom "lossy";
        field "base" (delay_to_sexp base);
        field "drop" (Sexp.atom (float_str drop));
        field "heal" (Sexp.int64_atom heal_at);
        field "seed" (Sexp.int64_atom seed);
      ]

let find_field fields name =
  let rec go = function
    | [] -> failwith ("Topology: missing field " ^ name)
    | Sexp.List [ Sexp.Atom n; v ] :: _ when n = name -> v
    | _ :: rest -> go rest
  in
  go fields

let find_links fields =
  let rec go = function
    | [] -> []
    | Sexp.List (Sexp.Atom "links" :: rows) :: _ ->
      List.map
        (function
          | Sexp.List [ src; dst; d ] ->
            ((Sexp.to_int src, Sexp.to_int dst), delay_of_sexp d)
          | s -> failwith ("Topology: bad link row: " ^ Sexp.to_string s))
        rows
    | _ :: rest -> go rest
  in
  go fields

let of_sexp = function
  | Sexp.List (Sexp.Atom "clique" :: fields) ->
    Clique
      {
        delay = delay_of_sexp (find_field fields "delay");
        links = find_links fields;
      }
  | Sexp.List (Sexp.Atom "geo" :: fields) ->
    Geo_regions
      {
        regions = Sexp.to_int (find_field fields "regions");
        lan = delay_of_sexp (find_field fields "lan");
        wan = delay_of_sexp (find_field fields "wan");
      }
  | Sexp.List (Sexp.Atom "asym" :: fields) ->
    Asymmetric
      {
        fast = delay_of_sexp (find_field fields "fast");
        slow = delay_of_sexp (find_field fields "slow");
      }
  | Sexp.List (Sexp.Atom "lossy" :: fields) ->
    Lossy
      {
        base = delay_of_sexp (find_field fields "base");
        drop = float_of_string (Sexp.to_atom (find_field fields "drop"));
        heal_at = Sexp.to_int64 (find_field fields "heal");
        seed = Sexp.to_int64 (find_field fields "seed");
      }
  | s -> failwith ("Topology: unknown topology sexp: " ^ Sexp.to_string s)

(* --- the named zoo ------------------------------------------------------ *)

let legacy = Thc_sim.Delay.Uniform (50L, 500L)
let lan_delay = Thc_sim.Delay.Uniform (5L, 50L)
let wan_delay = Thc_sim.Delay.Uniform (2_000L, 10_000L)

let presets =
  [
    ("uniform", Clique { delay = legacy; links = [] });
    ("lan", Clique { delay = lan_delay; links = [] });
    ("wan", Clique { delay = wan_delay; links = [] });
    ("geo2", Geo_regions { regions = 2; lan = lan_delay; wan = wan_delay });
    ("geo3", Geo_regions { regions = 3; lan = lan_delay; wan = wan_delay });
    ( "asym",
      Asymmetric { fast = legacy; slow = Thc_sim.Delay.Uniform (2_000L, 8_000L) }
    );
    ( "lossy",
      Lossy { base = legacy; drop = 0.2; heal_at = 300_000L; seed = 7L } );
  ]

let of_string s =
  let s = String.trim s in
  match List.assoc_opt s presets with
  | Some t -> Ok t
  | None ->
    if String.length s > 0 && s.[0] = '(' then
      match Sexp.of_string s with
      | Error e -> Error e
      | Ok sexp -> (
        match of_sexp sexp with
        | t -> Ok t
        | exception Failure msg -> Error msg)
    else
      Error
        (Printf.sprintf
           "unknown network %S (expected one of %s, or a (clique|geo|asym|lossy …) sexp)"
           s
           (String.concat "/" (List.map fst presets)))

(* --- the compiler ------------------------------------------------------- *)

let delay_between t ~src ~dst =
  match t with
  | Clique { delay; links } ->
    Option.value (List.assoc_opt (src, dst) links) ~default:delay
  | Geo_regions { regions; lan; wan } ->
    if src mod regions = dst mod regions then lan else wan
  | Asymmetric { fast; slow } -> if src > dst then slow else fast
  | Lossy { base; _ } -> base

(* The initial policy of every directed link, self-links included (a
   broadcast delivers to self through the table like anyone else).  For
   [Lossy] the afflicted set is a pure function of the topology's own
   seed: one SplitMix64 stream, links visited in fixed (src, dst) order,
   one float draw per non-self link. *)
let lowered t ~n =
  let table = Array.make_matrix n n (Net.Deliver legacy) in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      table.(src).(dst) <- Net.Deliver (delay_between t ~src ~dst)
    done
  done;
  (match t with
  | Lossy { drop; seed; _ } ->
    let rng = Thc_util.Rng.create seed in
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then begin
          let u = Thc_util.Rng.float rng 1.0 in
          if u < drop /. 2. then table.(src).(dst) <- Net.Drop
          else if u < drop then table.(src).(dst) <- Net.Block
        end
      done
    done
  | Clique _ | Geo_regions _ | Asymmetric _ -> ());
  table

let healed_table t ~n =
  let table = Array.make_matrix n n (Net.Deliver legacy) in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      table.(src).(dst) <- Net.Deliver (delay_between t ~src ~dst)
    done
  done;
  table

(* Mid-run reconfiguration goes through [Engine.set_link] so a held
   queue behind a [Block]ed link is released the moment the model says
   the link delivers again. *)
let set_table engine table =
  Array.iteri
    (fun src row ->
      Array.iteri (fun dst policy -> Engine.set_link engine ~src ~dst policy) row)
    table

let apply t engine =
  let n = Net.n (Engine.net engine) in
  set_table engine (lowered t ~n);
  match t with
  | Lossy { heal_at; _ } ->
    Engine.at engine heal_at (fun () -> set_table engine (healed_table t ~n))
  | Clique _ | Geo_regions _ | Asymmetric _ -> ()

let reapply t engine ~at =
  let n = Net.n (Engine.net engine) in
  let table =
    match t with
    | Lossy { heal_at; _ } when at >= heal_at -> healed_table t ~n
    | _ -> lowered t ~n
  in
  Engine.at engine at (fun () -> set_table engine table)
