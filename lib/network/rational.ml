module Sexp = Thc_util.Sexp
module Delay = Thc_sim.Delay
module Net = Thc_sim.Net
module Engine = Thc_sim.Engine

type t =
  | Racing_client of { alpha : float }
  | Lazy_replica of { alpha : float; slack_us : int64 }

let clamp01 a = Float.max 0.0 (Float.min 1.0 a)

(* ceil (alpha * count), never exceeding count. *)
let deviators ~alpha count =
  min count (int_of_float (Float.ceil (clamp01 alpha *. float_of_int count)))

let float_str f = Printf.sprintf "%.12g" f

let tag = function
  | Racing_client { alpha } -> Printf.sprintf "race:%s" (float_str alpha)
  | Lazy_replica { alpha; slack_us } ->
    Printf.sprintf "lazy:%s,%Ld" (float_str alpha) slack_us

let describe = function
  | Racing_client { alpha } ->
    Printf.sprintf
      "racing client (alpha=%s): duplicate each submission to the f+1 \
       fastest replicas"
      (float_str alpha)
  | Lazy_replica { alpha; slack_us } ->
    Printf.sprintf
      "lazy replica (alpha=%s): +%Ldµs on non-critical-path \
       replica→replica sends"
      (float_str alpha) slack_us

let to_sexp = function
  | Racing_client { alpha } ->
    Sexp.list [ Sexp.atom "race"; Sexp.atom (float_str alpha) ]
  | Lazy_replica { alpha; slack_us } ->
    Sexp.list
      [ Sexp.atom "lazy"; Sexp.atom (float_str alpha); Sexp.int64_atom slack_us ]

let of_sexp = function
  | Sexp.List [ Sexp.Atom "race"; a ] ->
    Racing_client { alpha = float_of_string (Sexp.to_atom a) }
  | Sexp.List [ Sexp.Atom "lazy"; a; s ] ->
    Lazy_replica
      { alpha = float_of_string (Sexp.to_atom a); slack_us = Sexp.to_int64 s }
  | s -> failwith ("Rational: bad strategy sexp: " ^ Sexp.to_string s)

let of_term s =
  let parse_alpha a =
    match float_of_string_opt a with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | Some _ -> Error (Printf.sprintf "alpha %S out of [0, 1]" a)
    | None -> Error (Printf.sprintf "bad alpha %S" a)
  in
  match String.index_opt s ':' with
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "race" ->
      Result.map (fun alpha -> Racing_client { alpha }) (parse_alpha rest)
    | "lazy" -> (
      let alpha_s, slack_s =
        match String.index_opt rest ',' with
        | Some j ->
          ( String.sub rest 0 j,
            Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
        | None -> (rest, None)
      in
      Result.bind (parse_alpha alpha_s) (fun alpha ->
          match slack_s with
          | None -> Ok (Lazy_replica { alpha; slack_us = 2_000L })
          | Some sl -> (
            match Int64.of_string_opt sl with
            | Some slack_us when slack_us >= 0L ->
              Ok (Lazy_replica { alpha; slack_us })
            | _ -> Error (Printf.sprintf "bad lazy slack %S (µs)" sl))))
    | k -> Error (Printf.sprintf "unknown rational strategy %S" k))
  | None ->
    Error
      (Printf.sprintf
         "bad rational term %S (expected race:<alpha> or lazy:<alpha>[,<slack_us>])"
         s)

let racing_quorum t ~topology ~client ~replicas ~f =
  match t with
  | Lazy_replica _ -> []
  | Racing_client _ ->
    let ranked =
      List.sort
        (fun (m1, r1) (m2, r2) ->
          match compare (m1 : float) m2 with 0 -> compare r1 r2 | c -> c)
        (List.init replicas (fun r ->
             ( Delay.mean_us (Topology.delay_between topology ~src:client ~dst:r),
               r )))
    in
    List.filteri (fun i _ -> i <= f) ranked |> List.map snd

let wrap_client t ~topology ~replicas ~f ~clients ~client_index ~pid
    (inner : 'm Engine.behavior) : 'm Engine.behavior =
  match t with
  | Lazy_replica _ -> inner
  | Racing_client { alpha } ->
    if client_index >= deviators ~alpha clients then inner
    else begin
      let fast = racing_quorum t ~topology ~client:pid ~replicas ~f in
      (* Wrap-style ctx interception: the duplicate is a second ordinary
         send, so it samples its own link delay — the race is real. *)
      let hedged (ctx : 'm Engine.ctx) =
        {
          ctx with
          Engine.send =
            (fun dst msg ->
              ctx.Engine.send dst msg;
              if dst < replicas && List.mem dst fast then
                ctx.Engine.send dst msg);
        }
      in
      {
        Engine.init = (fun ctx -> inner.Engine.init (hedged ctx));
        on_message =
          (fun ctx ~src msg -> inner.Engine.on_message (hedged ctx) ~src msg);
        on_timer = (fun ctx tag -> inner.Engine.on_timer (hedged ctx) tag);
      }
    end

let apply_links t ~replicas engine =
  match t with
  | Racing_client _ -> ()
  | Lazy_replica { alpha; slack_us } ->
    let net = Engine.net engine in
    let lazy_count = deviators ~alpha (max 0 (replicas - 1)) in
    (* Highest pids first; pid 0 (the view-0 leader) never free-rides —
       a lazy leader is a liveness attack, not a rational deviation. *)
    for i = 0 to lazy_count - 1 do
      let src = replicas - 1 - i in
      if src > 0 then
        for dst = 0 to replicas - 1 do
          if dst <> src then
            match Net.get net ~src ~dst with
            | Net.Deliver d ->
              Net.set net ~src ~dst (Net.Deliver (Delay.shift d slack_us))
            | Net.Block | Net.Drop -> ()
        done
    done
