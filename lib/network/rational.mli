(** Rational (selfish, not Byzantine) participant strategies.

    Game-theoretic BFT work (see PAPERS.md) distinguishes Byzantine
    behavior — arbitrary, possibly sacrificing the attacker's own
    utility — from {e rational} deviation: a participant that follows the
    protocol's interface but optimizes its own latency or cost.  The two
    strategies here are expressed the same way {!Thc_byz.Wrap} expresses
    corruptions — by intercepting a behavior's {!Thc_sim.Engine.ctx}
    sends or rewriting its outbound link policies — and both carry an
    [alpha] participation knob (the deviating fraction of the
    population), so a sweep can trace the cost of selfishness from 0 to
    everyone.

    Neither strategy forges, equivocates or violates any hardware
    discipline; protocols must stay safe under them by construction, and
    the interesting output is the latency / message-overhead curve. *)

type t =
  | Racing_client of { alpha : float }
      (** A latency-minimizing client hedges: every submission it sends
          to one of the [f + 1] fastest replicas (ranked by the
          topology's mean link delay from this client, ties to the lower
          pid) is sent {e twice}, racing two independent delay samples —
          the earlier arrival wins.  The first [ceil (alpha × clients)]
          clients deviate.  Duplicates are absorbed by the protocols'
          request dedup, so the cost is pure message overhead. *)
  | Lazy_replica of { alpha : float; slack_us : int64 }
      (** A free-riding replica delays its non-critical-path sends: the
          [ceil (alpha × (replicas − 1))] highest-pid replicas (never
          the view-0 leader) add [slack_us] to every replica→replica
          link they originate — relying on the prompt majority to form
          quorums — while their client-facing replies stay prompt (the
          deviator still wants credit for answering). *)

val tag : t -> string
(** Stable short identifier: [race:<alpha>] / [lazy:<alpha>,<slack>]. *)

val describe : t -> string

val to_sexp : t -> Thc_util.Sexp.t

val of_sexp : Thc_util.Sexp.t -> t
(** Raises [Failure] on malformed input. *)

val of_term : string -> (t, string) result
(** One [+]-joined component of a [--network] term: [race:0.5] or
    [lazy:0.5] / [lazy:0.5,2000] (slack in µs, default 2000). *)

val racing_quorum :
  t -> topology:Topology.t -> client:int -> replicas:int -> f:int -> int list
(** The [f + 1] replicas a [Racing_client] at pid [client] races —
    ascending mean delay of [client → r] under [topology], ties broken
    toward the lower pid.  [[]] for [Lazy_replica]. *)

val wrap_client :
  t ->
  topology:Topology.t ->
  replicas:int ->
  f:int ->
  clients:int ->
  client_index:int ->
  pid:int ->
  'm Thc_sim.Engine.behavior ->
  'm Thc_sim.Engine.behavior
(** Apply a [Racing_client] deviation to the client behavior at
    [pid] (the [client_index]-th of [clients]): its ctx's [send] is
    wrapped to duplicate sends whose destination is in
    {!racing_quorum}.  Identity for non-deviating clients and for
    [Lazy_replica]. *)

val apply_links : t -> replicas:int -> 'm Thc_sim.Engine.t -> unit
(** Apply a [Lazy_replica] deviation to the engine's link table:
    shift ({!Thc_sim.Delay.shift}) the deviators' outbound
    replica→replica [Deliver] policies by [slack_us].  Call after the
    topology has been lowered.  No-op for [Racing_client]. *)
