(** A complete network model: one {!Topology} plus any number of
    {!Rational} strategies — the value of a [--network] argument.

    The textual form is what every driver accepts and what export
    envelopes record: a topology (preset name or sexp) optionally
    followed by [+]-joined rational terms, e.g. [geo3],
    [lan+race:0.5], [lossy+lazy:0.3,2000].  {!install} is the one
    entry point harnesses call: it compiles the topology, applies the
    lazy-replica link rewrites, and — when an adversary script is in
    play — schedules re-lowerings after every scripted heal (a heal
    resets all links to the script's fixed fast policy, which must not
    silently discard the configured model for the rest of the run). *)

type t = { topology : Topology.t; rational : Rational.t list }

val make : ?rational:Rational.t list -> Topology.t -> t

val tag : t -> string
(** [<topology tag>] with [+<rational tag>] per strategy — stable, and
    the exact string recorded in the [network] field of export envelope
    headers. *)

val describe : t -> string

val to_sexp : t -> Thc_util.Sexp.t
(** [(model <topology> (rational <strategy>…))]. *)

val of_sexp : Thc_util.Sexp.t -> t
(** Raises [Failure] on malformed input. *)

val of_string : string -> (t, string) result
(** Parse a [--network] term: [<topology>[+<rational>…]] where the
    topology is a {!Topology.presets} name or a sexp, and each rational
    term is [race:<alpha>] or [lazy:<alpha>[,<slack_us>]]. *)

val install :
  t ->
  'm Thc_sim.Engine.t ->
  replicas:int ->
  ?script:Thc_sim.Adversary.t ->
  unit ->
  unit
(** Compile the model onto the engine: {!Topology.apply}, then
    {!Rational.apply_links} for each strategy, then — if [script] is
    given — schedule a re-lowering ({!Topology.reapply} + lazy links)
    after every scripted [Heal] (and after the auto-heal
    {!Thc_sim.Adversary.install} appends at the horizon when the script
    does not end healed).  Call {e after} {!Thc_sim.Adversary.install}
    so the same-time tie-break runs the re-lowering after the heal. *)

val wrap_client :
  t ->
  replicas:int ->
  f:int ->
  clients:int ->
  client_index:int ->
  pid:int ->
  'm Thc_sim.Engine.behavior ->
  'm Thc_sim.Engine.behavior
(** Fold {!Rational.wrap_client} over the model's strategies — the hook
    harnesses apply to each client behavior they install. *)
