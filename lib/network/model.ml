module Sexp = Thc_util.Sexp
module Engine = Thc_sim.Engine
module Adversary = Thc_sim.Adversary

type t = { topology : Topology.t; rational : Rational.t list }

let make ?(rational = []) topology = { topology; rational }

let tag t =
  String.concat "+" (Topology.tag t.topology :: List.map Rational.tag t.rational)

let describe t =
  String.concat "; "
    (Topology.describe t.topology :: List.map Rational.describe t.rational)

let to_sexp t =
  Sexp.list
    (Sexp.atom "model" :: Topology.to_sexp t.topology
    ::
    (if t.rational = [] then []
     else
       [
         Sexp.list
           (Sexp.atom "rational" :: List.map Rational.to_sexp t.rational);
       ]))

let of_sexp = function
  | Sexp.List (Sexp.Atom "model" :: topo :: rest) ->
    let rational =
      match rest with
      | [] -> []
      | [ Sexp.List (Sexp.Atom "rational" :: rs) ] ->
        List.map Rational.of_sexp rs
      | s ->
        failwith
          ("Model: bad rational clause: "
          ^ String.concat " " (List.map Sexp.to_string s))
    in
    { topology = Topology.of_sexp topo; rational }
  | s -> failwith ("Model: bad model sexp: " ^ Sexp.to_string s)

let of_string s =
  let s = String.trim s in
  if String.length s > 0 && s.[0] = '(' then
    (* A sexp can be a bare topology or a full (model …) form. *)
    match Sexp.of_string s with
    | Error e -> Error e
    | Ok (Sexp.List (Sexp.Atom "model" :: _) as sexp) -> (
      match of_sexp sexp with
      | t -> Ok t
      | exception Failure msg -> Error msg)
    | Ok sexp -> (
      match Topology.of_sexp sexp with
      | topo -> Ok (make topo)
      | exception Failure msg -> Error msg)
  else
    match String.split_on_char '+' s with
    | [] -> Error "empty network term"
    | topo :: rats ->
      Result.bind (Topology.of_string topo) (fun topology ->
          let rec parse acc = function
            | [] -> Ok (List.rev acc)
            | r :: rest ->
              Result.bind (Rational.of_term r) (fun strat ->
                  parse (strat :: acc) rest)
          in
          Result.map
            (fun rational -> { topology; rational })
            (parse [] rats))

let lower t engine ~replicas =
  Topology.apply t.topology engine;
  List.iter (fun r -> Rational.apply_links r ~replicas engine) t.rational

(* The times at which a scripted adversary resets every link to its own
   fast policy: each scripted Heal, plus the auto-heal Adversary.install
   appends at the horizon when the script does not end healed. *)
let heal_times (script : Adversary.t) =
  let heals =
    List.filter_map
      (fun (e : Adversary.event) ->
        match e.action with
        | Adversary.Heal -> Some e.at
        | Adversary.Crash _ | Adversary.Block_groups _ | Adversary.Block_link _
        | Adversary.Corrupt _ ->
          None)
      script.events
  in
  if Adversary.ends_healed script then heals else heals @ [ script.horizon ]

let install t engine ~replicas ?script () =
  lower t engine ~replicas;
  Option.iter
    (fun script ->
      List.iter
        (fun at ->
          Topology.reapply t.topology engine ~at;
          Engine.at engine at (fun () ->
              List.iter
                (fun r -> Rational.apply_links r ~replicas engine)
                t.rational))
        (heal_times script))
    script

let wrap_client t ~replicas ~f ~clients ~client_index ~pid behavior =
  List.fold_left
    (fun b r ->
      Rational.wrap_client r ~topology:t.topology ~replicas ~f ~clients
        ~client_index ~pid b)
    behavior t.rational
