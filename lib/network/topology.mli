(** Named network models and their compiler onto the {!Thc_sim.Net}
    policy table.

    Every simulated run so far wired its links by hand (one default
    {!Thc_sim.Delay.t} for the whole clique); this module makes the
    network a first-class, nameable value — the CPR-style model zoo of
    ROADMAP item 3 — so a protocol × network × scenario grid can be swept
    the same way protocols and adversary scripts already are.  A topology
    is plain data with a stable {!tag}, a human {!describe} line and an
    S-expression codec, and {!apply} lowers it onto an engine's existing
    per-link policy table.

    Lowering is deterministic: [Lossy] draws its per-link drop pattern
    from its own seed (never the engine's RNG streams), so a run remains
    a pure function of [(seed, topology, script)] and exports stay
    byte-identical at every [--jobs] value. *)

type t =
  | Clique of { delay : Thc_sim.Delay.t; links : ((int * int) * Thc_sim.Delay.t) list }
      (** Uniform full mesh: every directed link delivers with [delay];
          [links] lists per-link overrides [((src, dst), d)] applied on
          top (out-of-range pairs are ignored, so one topology value
          serves clusters of any size). *)
  | Geo_regions of { regions : int; lan : Thc_sim.Delay.t; wan : Thc_sim.Delay.t }
      (** Geo-replicated mix: process [p] lives in region [p mod regions];
          intra-region links deliver with [lan], cross-region links with
          [wan] — the WAN regime under which uBFT-style microsecond
          claims (made on a LAN/RDMA network) visibly erode. *)
  | Asymmetric of { fast : Thc_sim.Delay.t; slow : Thc_sim.Delay.t }
      (** Per-direction skew: links from lower to higher pid deliver with
          [fast], the reverse direction with [slow] (self-links are
          [fast]) — upload/download asymmetry, not a partition. *)
  | Lossy of { base : Thc_sim.Delay.t; drop : float; heal_at : int64; seed : int64 }
      (** Seeded random loss, distinct from Byzantine omission: each
          non-self directed link independently starts [Drop]ped (messages
          lost) with probability [drop /. 2.], or [Block]ed (messages
          held) with probability [drop /. 2.], else delivers with [base].
          All afflicted links heal to [base] at virtual time [heal_at]
          (held messages are then released), restoring the asynchronous
          model's eventual-delivery obligation.  The pattern is a pure
          function of [seed]. *)

val tag : t -> string
(** Stable short identifier, parameter-bearing ([clique:u50-500],
    [geo3], [asym], [lossy20], …) — the token used in bench S7 keys and
    recorded in export envelope headers.  Parseable back by
    {!of_string} only when it names a {!presets} entry; arbitrary
    topologies round-trip through the sexp codec instead. *)

val describe : t -> string
(** One-line human description for [--list] style output and docs. *)

val to_sexp : t -> Thc_util.Sexp.t
(** Canonical persistence form, e.g.
    [(geo (regions 3) (lan (uniform 5 50)) (wan (uniform 2000 10000)))]. *)

val of_sexp : Thc_util.Sexp.t -> t
(** Inverse of {!to_sexp}; raises [Failure] on malformed input. *)

val presets : (string * t) list
(** The named zoo, in display order: [uniform] (the legacy default
    clique), [lan], [wan], [geo2], [geo3], [asym], [lossy]. *)

val of_string : string -> (t, string) result
(** A preset name from {!presets}, or a full sexp form (anything
    starting with ['(']) parsed via {!of_sexp}. *)

val delay_between : t -> src:int -> dst:int -> Thc_sim.Delay.t
(** The delivery distribution {!apply} gives the directed link
    [src → dst] (for [Lossy], the post-heal [base]).  Exposed for tests
    (geo intra < inter spot checks) and for mean-delay rankings like the
    racing client's fastest-quorum choice. *)

val apply : t -> 'm Thc_sim.Engine.t -> unit
(** Compile the topology onto the engine's {!Thc_sim.Net} table: set
    every directed link's policy, and for [Lossy] additionally schedule
    the heal at [heal_at] via {!Thc_sim.Engine.at}.  Call after the
    engine is created and before {!Thc_sim.Engine.run}. *)

val reapply : t -> 'm Thc_sim.Engine.t -> at:int64 -> unit
(** Schedule a re-lowering of the topology at virtual time [at] —
    installed {e after} any already-scheduled action at the same time,
    so a scripted adversary heal ({!Thc_sim.Adversary.install} resets
    every link to its fixed fast policy) is immediately overridden by
    the configured model again.  For [Lossy], a re-lowering at or past
    [heal_at] applies the healed table rather than the initial drop
    pattern. *)
