type t = {
  trinket : Trinc.t;
  mutable next_log : int;
  logs : (int, Trinc.attestation list ref) Hashtbl.t;  (* newest first *)
  mutable all : Trinc.attestation list;  (* newest first *)
}

let create trinket = { trinket; next_log = 1; logs = Hashtbl.create 4; all = [] }

let ledger t = Trinc.ledger_of t.trinket

let create_log t =
  let id = t.next_log in
  t.next_log <- id + 1;
  Hashtbl.add t.logs id (ref []);
  id

let append t ~log value =
  match Hashtbl.find_opt t.logs log with
  | None -> None
  | Some entries ->
    let index = List.length !entries + 1 in
    let message = Thc_util.Codec.encode (log, index, value) in
    (match
       Trinc.attest t.trinket ~counter:(Trinc.last_counter t.trinket + 1)
         ~message
     with
    | None -> None  (* unreachable: last+1 is always fresh *)
    | Some a ->
      entries := a :: !entries;
      t.all <- a :: t.all;
      Some index)

let lookup t ~log ~index =
  match Hashtbl.find_opt t.logs log with
  | None -> None
  | Some entries ->
    let len = List.length !entries in
    if index < 1 || index > len then None
    else Some (List.nth !entries (len - index))

let end_ t ~log =
  match Hashtbl.find_opt t.logs log with
  | None | Some { contents = [] } -> None
  | Some { contents = a :: _ } -> Some a

let chain t = List.rev t.all

let entry_of_attestation (a : Trinc.attestation) =
  (Thc_util.Codec.decode a.message : int * int * string)

let check_chain world ~owner chain =
  let rec go expected_counter lengths acc = function
    | [] -> Some (List.rev acc)
    | (a : Trinc.attestation) :: rest ->
      if a.counter <> expected_counter || a.prev <> expected_counter - 1 then
        None
      else if not (Trinc.check world a ~id:owner) then None
      else begin
        let log, index, value = entry_of_attestation a in
        let expected_index =
          1 + (try List.assoc log lengths with Not_found -> 0)
        in
        if index <> expected_index then None
        else
          let lengths = (log, index) :: List.remove_assoc log lengths in
          go (expected_counter + 1) lengths ((log, index, value) :: acc) rest
      end
  in
  go 1 [] [] chain
