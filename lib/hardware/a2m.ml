type attestation = {
  owner : int;
  kind : [ `Lookup | `End ];
  log : int;
  index : int;
  value : string;
  challenge : string;
  tag : int64;
}

type world = {
  nonces : int64 array;
  claimed : bool array;
  ops : Thc_obsv.Ledger.t;
}

type device = {
  owner : int;
  nonce : int64;
  mutable next_log : int;
  logs : (int, string list ref) Hashtbl.t;  (* log id -> entries, reversed *)
  ops : Thc_obsv.Ledger.t;
}

let create_world rng ~n =
  if n <= 0 then invalid_arg "A2m.create_world: n must be positive";
  {
    nonces = Array.init n (fun _ -> Thc_util.Rng.next_int64 rng);
    claimed = Array.make n false;
    ops = Thc_obsv.Ledger.create ();
  }

let ledger (world : world) = world.ops

let device world ~owner =
  if owner < 0 || owner >= Array.length world.nonces then
    invalid_arg "A2m.device: unknown owner";
  if world.claimed.(owner) then invalid_arg "A2m.device: device already claimed";
  world.claimed.(owner) <- true;
  {
    owner;
    nonce = world.nonces.(owner);
    next_log = 1;
    logs = Hashtbl.create 4;
    ops = world.ops;
  }

let create_log d =
  let id = d.next_log in
  d.next_log <- id + 1;
  Hashtbl.add d.logs id (ref []);
  id

let append d ~log x =
  match Hashtbl.find_opt d.logs log with
  | None -> None
  | Some entries ->
    Thc_obsv.Ledger.bump d.ops "a2m.append";
    entries := x :: !entries;
    Some (List.length !entries)

let log_length d ~log =
  Option.map (fun entries -> List.length !entries) (Hashtbl.find_opt d.logs log)

let tag_of ~nonce ~owner ~kind ~log ~index ~value ~challenge =
  let kind_code = match kind with `Lookup -> 0 | `End -> 1 in
  Thc_crypto.Digest.to_int64
    (Thc_crypto.Digest.of_value
       (nonce, owner, kind_code, log, index, value, challenge))

let make d ~kind ~log ~index ~value ~challenge =
  {
    owner = d.owner;
    kind;
    log;
    index;
    value;
    challenge;
    tag =
      tag_of ~nonce:d.nonce ~owner:d.owner ~kind ~log ~index ~value ~challenge;
  }

let lookup d ~log ~index ~z =
  match Hashtbl.find_opt d.logs log with
  | None -> None
  | Some entries ->
    let len = List.length !entries in
    if index < 1 || index > len then None
    else begin
      Thc_obsv.Ledger.bump d.ops "a2m.lookup";
      let value = List.nth !entries (len - index) in
      Some (make d ~kind:`Lookup ~log ~index ~value ~challenge:z)
    end

let end_ d ~log ~z =
  match Hashtbl.find_opt d.logs log with
  | None -> None
  | Some entries ->
    Thc_obsv.Ledger.bump d.ops "a2m.end";
    let len = List.length !entries in
    let value = match !entries with [] -> "" | v :: _ -> v in
    Some (make d ~kind:`End ~log ~index:len ~value ~challenge:z)

let check (world : world) (a : attestation) ~owner =
  Thc_obsv.Ledger.bump world.ops "a2m.check";
  let ok =
    a.owner = owner
    && owner >= 0
    && owner < Array.length world.nonces
    && Int64.equal a.tag
         (tag_of ~nonce:world.nonces.(owner) ~owner:a.owner ~kind:a.kind
            ~log:a.log ~index:a.index ~value:a.value ~challenge:a.challenge)
  in
  if not ok then Thc_obsv.Ledger.bump world.ops "a2m.check_fail";
  ok
