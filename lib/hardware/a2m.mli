(** A2M — attested append-only memory (Chun et al., SOSP 2007).

    The trusted-log primitive of the paper's Section 2.1: a device holds a
    set of logs; any holder of the device capability can [append] values and
    obtain signed attestations of log contents via [lookup] (a given index)
    and [end_] (the current tail).  Past entries can never be modified, so a
    process cannot attest two different values at the same (log, index) —
    the non-equivocation guarantee.

    Matches the paper's (commented) "Trusted Hardware Functionality"
    interface: CreateLog / Append / Lookup / End, with attestations bound to
    a caller-chosen challenge [z] for freshness. *)

type world
(** Verification side for all devices. *)

type device
(** One process's A2M device capability (claimed once, like {!Trinc.t}). *)

type attestation = {
  owner : int;
  kind : [ `Lookup | `End ];
  log : int;  (** Log id within the owner's device. *)
  index : int;  (** Position attested (1-based; 0 for an empty log's end). *)
  value : string;  (** Entry content ("" for an empty log's end). *)
  challenge : string;  (** The caller's freshness nonce [z]. *)
  tag : int64;
}

val create_world : Thc_util.Rng.t -> n:int -> world

val ledger : world -> Thc_obsv.Ledger.t
(** Trusted-op accounting: ["a2m.append"], ["a2m.lookup"], ["a2m.end"],
    ["a2m.check"], ["a2m.check_fail"]. *)

val device : world -> owner:int -> device
(** Claim the device of [owner]; second claim raises [Invalid_argument]. *)

val create_log : device -> int
(** The paper's [CreateLog()]: new empty log, returns its id (1, 2, ...). *)

val append : device -> log:int -> string -> int option
(** The paper's [Append(id, x)]: appends and returns the new entry's index,
    or [None] if the log id is unknown. *)

val log_length : device -> log:int -> int option

val lookup : device -> log:int -> index:int -> z:string -> attestation option
(** The paper's [Lookup(id, s, z)]: attestation of entry [s], if present. *)

val end_ : device -> log:int -> z:string -> attestation option
(** The paper's [End(id, z)]: attestation of the current tail. *)

val check : world -> attestation -> owner:int -> bool
(** Verify an attestation against device [owner]'s key. *)
