type attestation = {
  owner : int;
  step : int;
  input : string;
  output : string;
  state_digest : int64;
  tag : int64;
}

type world = {
  nonces : int64 array;
  claimed : bool array;
  ops : Thc_obsv.Ledger.t;
}

type ('s, 'i, 'o) t = {
  owner : int;
  nonce : int64;
  step_fn : 's -> 'i -> 's * 'o;
  mutable state : 's;
  mutable steps : int;
  ops : Thc_obsv.Ledger.t;
}

let create_world rng ~n =
  if n <= 0 then invalid_arg "Enclave.create_world: n must be positive";
  {
    nonces = Array.init n (fun _ -> Thc_util.Rng.next_int64 rng);
    claimed = Array.make n false;
    ops = Thc_obsv.Ledger.create ();
  }

let ledger (world : world) = world.ops

let enclave world ~owner ~init ~step =
  if owner < 0 || owner >= Array.length world.nonces then
    invalid_arg "Enclave.enclave: unknown owner";
  if world.claimed.(owner) then invalid_arg "Enclave.enclave: already claimed";
  world.claimed.(owner) <- true;
  {
    owner;
    nonce = world.nonces.(owner);
    step_fn = step;
    state = init;
    steps = 0;
    ops = world.ops;
  }

let tag_of ~nonce ~owner ~step ~input ~output ~state_digest =
  Thc_crypto.Digest.to_int64
    (Thc_crypto.Digest.of_value (nonce, owner, step, input, output, state_digest))

let invoke t input =
  Thc_obsv.Ledger.bump t.ops "enclave.invoke";
  let state', output = t.step_fn t.state input in
  t.state <- state';
  t.steps <- t.steps + 1;
  let input_bytes = Thc_util.Codec.encode input in
  let output_bytes = Thc_util.Codec.encode output in
  let state_digest =
    Thc_crypto.Digest.to_int64 (Thc_crypto.Digest.of_value state')
  in
  ( output,
    {
      owner = t.owner;
      step = t.steps;
      input = input_bytes;
      output = output_bytes;
      state_digest;
      tag =
        tag_of ~nonce:t.nonce ~owner:t.owner ~step:t.steps ~input:input_bytes
          ~output:output_bytes ~state_digest;
    } )

let step_count t = t.steps

let check (world : world) (a : attestation) ~id =
  Thc_obsv.Ledger.bump world.ops "enclave.check";
  let ok =
    a.owner = id
    && id >= 0
    && id < Array.length world.nonces
    && Int64.equal a.tag
         (tag_of ~nonce:world.nonces.(id) ~owner:a.owner ~step:a.step
            ~input:a.input ~output:a.output ~state_digest:a.state_digest)
  in
  if not ok then Thc_obsv.Ledger.bump world.ops "enclave.check_fail";
  ok

let check_chain world chain ~id =
  let rec go expected = function
    | [] -> true
    | a :: rest -> a.step = expected && check world a ~id && go (expected + 1) rest
  in
  go 1 chain
