(** SGX/TrustZone-style attested execution.

    The paper notes that Intel SGX and ARM TrustZone provide the same
    non-equivocation guarantees as A2M/TrInc while "allowing for more
    expressive computations".  This module captures that: a deterministic
    state machine runs inside the trusted boundary and every step is
    attested — (step index, input, output, resulting state digest) — so a
    host cannot replay, reorder, fork, or fabricate executions.

    Any trusted-log primitive is an instance: see {!Trinc_from_a2m} for
    log-shaped programs.  The classification places enclaves in the same
    (message-passing) class as TrInc/A2M, because expressiveness does not
    add unidirectionality. *)

type world

type ('s, 'i, 'o) t
(** An enclave with hidden state ['s], inputs ['i], outputs ['o]. *)

type attestation = {
  owner : int;
  step : int;  (** Execution step index (1-based, contiguous). *)
  input : string;  (** Canonical bytes of the input. *)
  output : string;  (** Canonical bytes of the output. *)
  state_digest : int64;  (** Digest of the post-state. *)
  tag : int64;
}

val create_world : Thc_util.Rng.t -> n:int -> world

val ledger : world -> Thc_obsv.Ledger.t
(** Trusted-op accounting: ["enclave.invoke"], ["enclave.check"],
    ["enclave.check_fail"]. *)

val enclave :
  world -> owner:int -> init:'s -> step:('s -> 'i -> 's * 'o) ->
  ('s, 'i, 'o) t
(** Provision [owner]'s enclave with a program.  Single claim enforced:
    one enclave per owner per world. *)

val invoke : ('s, 'i, 'o) t -> 'i -> 'o * attestation
(** Run one step inside the trusted boundary and attest it. *)

val step_count : ('s, 'i, 'o) t -> int

val check : world -> attestation -> id:int -> bool

val check_chain : world -> attestation list -> id:int -> bool
(** Validate a contiguous execution prefix: steps [1..k] in order, all
    attested by [id].  Rejects gaps, reordering, and forks (two different
    attestations for the same step cannot both verify because a fork would
    require rewinding the hidden state, which {!invoke} never does). *)
