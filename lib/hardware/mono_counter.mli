(** TPM-style attested monotonic counter.

    The minimal trusted-log mechanism: a counter that can only move forward,
    whose increments are attested together with a caller-supplied message.
    Equivalent in power to {!Trinc} restricted to [counter = last + 1];
    provided separately because several systems (and the TPM spec) expose
    exactly this shape, and the classification treats it as a member of the
    trusted-log class. *)

type world
type t

type attestation = {
  owner : int;
  value : int;  (** Counter value after the increment (1, 2, ...). *)
  message : string;
  tag : int64;
}

val create_world : Thc_util.Rng.t -> n:int -> world

val ledger : world -> Thc_obsv.Ledger.t
(** Trusted-op accounting: ["counter.increment"], ["counter.check"],
    ["counter.check_fail"]. *)

val counter : world -> owner:int -> t
(** Claim [owner]'s counter; single claim enforced. *)

val increment : t -> message:string -> attestation
(** Advance the counter and attest [(value, message)].  Never fails: the
    counter always has a next value. *)

val current : t -> int

val check : world -> attestation -> id:int -> bool
