type attestation = {
  owner : int;
  prev : int;
  counter : int;
  message : string;
  tag : int64;
}

type world = {
  nonces : int64 array;
  claimed : bool array;
  ops : Thc_obsv.Ledger.t;
}

type t = {
  owner : int;
  nonce : int64;
  mutable last : int;
  ops : Thc_obsv.Ledger.t;
}

let create_world rng ~n =
  if n <= 0 then invalid_arg "Trinc.create_world: n must be positive";
  {
    nonces = Array.init n (fun _ -> Thc_util.Rng.next_int64 rng);
    claimed = Array.make n false;
    ops = Thc_obsv.Ledger.create ();
  }

let ledger (world : world) = world.ops

let ledger_of (t : t) = t.ops

let trinket world ~owner =
  if owner < 0 || owner >= Array.length world.nonces then
    invalid_arg "Trinc.trinket: unknown owner";
  if world.claimed.(owner) then
    invalid_arg "Trinc.trinket: trinket already claimed";
  world.claimed.(owner) <- true;
  { owner; nonce = world.nonces.(owner); last = 0; ops = world.ops }

let tag_of ~nonce ~owner ~prev ~counter ~message =
  Thc_crypto.Digest.to_int64
    (Thc_crypto.Digest.of_value (nonce, owner, prev, counter, message))

let attest t ~counter ~message =
  if counter <= t.last then begin
    Thc_obsv.Ledger.bump t.ops "trinc.attest_denied";
    None
  end
  else begin
    Thc_obsv.Ledger.bump t.ops "trinc.attest";
    let prev = t.last in
    t.last <- counter;
    Some
      {
        owner = t.owner;
        prev;
        counter;
        message;
        tag = tag_of ~nonce:t.nonce ~owner:t.owner ~prev ~counter ~message;
      }
  end

let check (world : world) (a : attestation) ~id =
  Thc_obsv.Ledger.bump world.ops "trinc.check";
  let ok =
    a.owner = id
    && id >= 0
    && id < Array.length world.nonces
    && Int64.equal a.tag
         (tag_of ~nonce:world.nonces.(id) ~owner:a.owner ~prev:a.prev
            ~counter:a.counter ~message:a.message)
  in
  if not ok then Thc_obsv.Ledger.bump world.ops "trinc.check_fail";
  ok

let last_counter t = t.last

let counterfeit ~owner ~prev ~counter ~message ~tag =
  { owner; prev; counter; message; tag }
