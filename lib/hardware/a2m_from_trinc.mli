(** A2M implemented from TrInc (Levin et al., NSDI 2009, §"TrInc can
    implement A2M").

    The paper's Section 2.1 relies on this reduction: to place both trusted
    logs in the same power class it suffices to reason about TrInc.  The
    construction keeps log contents in untrusted storage and uses the
    trinket's single monotone counter to make the storage tamper-evident:

    - every [append] consumes the next {e dense} counter value
      ([counter = prev + 1]) and attests the message [(log, index, value)];
    - a verifier accepts a log only with a {e contiguous} attestation chain
      starting at counter 1: density means no attestation can be hidden, so
      a device that ever attested two values for the same (log, index) is
      caught — equivocation on log positions is detectable, which is all
      A2M guarantees.

    [lookup]/[end_] therefore return the stored attestation for the entry
    plus nothing else; {!check_chain} is where the trust is re-established
    on the verifier side. *)

type t

val create : Trinc.t -> t
(** Wrap a claimed trinket as an A2M-style device. *)

val ledger : t -> Thc_obsv.Ledger.t
(** The underlying trinket's trusted-op ledger: the reduction spends one
    ["trinc.attest"] per append, making its trusted-op cost directly
    comparable to a native {!A2m} device's. *)

val create_log : t -> int

val append : t -> log:int -> string -> int option
(** Append; [None] for an unknown log.  Returns the new entry index. *)

val lookup : t -> log:int -> index:int -> Trinc.attestation option
(** Stored attestation of entry [index]. *)

val end_ : t -> log:int -> Trinc.attestation option
(** Stored attestation of the last entry ([None] for an empty log). *)

val chain : t -> Trinc.attestation list
(** The device's full attestation chain, counter-ascending — what an honest
    host ships to a verifier. *)

val entry_of_attestation : Trinc.attestation -> int * int * string
(** Decode [(log, index, value)] from an append attestation's message. *)

val check_chain :
  Trinc.world -> owner:int -> Trinc.attestation list ->
  (int * int * string) list option
(** Verify a counter-dense chain from device [owner] and reconstruct the
    appended entries in order; [None] if any tag fails, the chain has gaps,
    starts past 1, or contains two values for one (log, index). *)
