type attestation = { owner : int; value : int; message : string; tag : int64 }

type world = {
  nonces : int64 array;
  claimed : bool array;
  ops : Thc_obsv.Ledger.t;
}

type t = {
  owner : int;
  nonce : int64;
  mutable value : int;
  ops : Thc_obsv.Ledger.t;
}

let create_world rng ~n =
  if n <= 0 then invalid_arg "Mono_counter.create_world: n must be positive";
  {
    nonces = Array.init n (fun _ -> Thc_util.Rng.next_int64 rng);
    claimed = Array.make n false;
    ops = Thc_obsv.Ledger.create ();
  }

let ledger (world : world) = world.ops

let counter world ~owner =
  if owner < 0 || owner >= Array.length world.nonces then
    invalid_arg "Mono_counter.counter: unknown owner";
  if world.claimed.(owner) then
    invalid_arg "Mono_counter.counter: already claimed";
  world.claimed.(owner) <- true;
  { owner; nonce = world.nonces.(owner); value = 0; ops = world.ops }

let tag_of ~nonce ~owner ~value ~message =
  Thc_crypto.Digest.to_int64
    (Thc_crypto.Digest.of_value (nonce, owner, value, message))

let increment t ~message =
  Thc_obsv.Ledger.bump t.ops "counter.increment";
  t.value <- t.value + 1;
  {
    owner = t.owner;
    value = t.value;
    message;
    tag = tag_of ~nonce:t.nonce ~owner:t.owner ~value:t.value ~message;
  }

let current t = t.value

let check (world : world) (a : attestation) ~id =
  Thc_obsv.Ledger.bump world.ops "counter.check";
  let ok =
    a.owner = id
    && id >= 0
    && id < Array.length world.nonces
    && Int64.equal a.tag
         (tag_of ~nonce:world.nonces.(id) ~owner:a.owner ~value:a.value
            ~message:a.message)
  in
  if not ok then Thc_obsv.Ledger.bump world.ops "counter.check_fail";
  ok
