(** TrInc — trusted incrementer (Levin et al., NSDI 2009).

    Faithful to the interface in the paper's Figure "TrInc Interface": each
    process owns a {e trinket} with a monotonically consumed sequence-number
    space.  [attest ~counter ~message] returns an attestation binding
    [(prev, counter, message)] — where [prev] is the previously attested
    sequence number — if and only if [counter] is strictly higher than every
    sequence number attested so far; otherwise it returns [None].  Hence no
    two distinct messages can ever carry the same (owner, counter) pair:
    equivocation on a sequence number is impossible.

    Trust model: the trinket's attestation key lives inside the abstract
    {!world}; a process (Byzantine included) holds only its own {!t}
    capability, obtained exactly once via {!trinket}, so it can neither
    forge other trinkets' attestations nor rewind its own counter. *)

type world
(** The manufacturer/verification side: attestation keys for all trinkets
    plus public checking data.  Created once per experiment. *)

type t
(** A trinket capability bound to one owner process. *)

type attestation = {
  owner : int;  (** Which trinket produced it. *)
  prev : int;  (** Sequence number of the previous attestation (0 at start). *)
  counter : int;  (** The attested sequence number. *)
  message : string;  (** The attested message bytes. *)
  tag : int64;  (** Unforgeable binding over all fields. *)
}

val create_world : Thc_util.Rng.t -> n:int -> world
(** Provision trinkets for processes [0 .. n-1]. *)

val ledger : world -> Thc_obsv.Ledger.t
(** Trusted-op accounting shared by the world and every trinket claimed
    from it: ["trinc.attest"], ["trinc.attest_denied"] (stale counter),
    ["trinc.check"], ["trinc.check_fail"]. *)

val ledger_of : t -> Thc_obsv.Ledger.t
(** The claiming world's ledger (for wrappers built over a bare trinket,
    e.g. {!A2m_from_trinc}). *)

val trinket : world -> owner:int -> t
(** Claim the trinket of [owner].  Callable exactly once per owner (the
    harness wires it to the process); a second call raises [Invalid_argument]
    — this is what stops Byzantine code from obtaining a victim's trinket. *)

val attest : t -> counter:int -> message:string -> attestation option
(** The paper's [Attest(c, m)]: [Some a] iff [counter] is strictly greater
    than any previously attested sequence number on this trinket. *)

val check : world -> attestation -> id:int -> bool
(** The paper's [CheckAttestation(a, q)]: true iff [a] was produced by
    trinket [id] (owner matches and the tag verifies). *)

val last_counter : t -> int
(** Highest sequence number attested so far (0 if none). *)

val counterfeit :
  owner:int -> prev:int -> counter:int -> message:string -> tag:int64 ->
  attestation
(** Build an attestation record with arbitrary fields — the forgery a
    Byzantine process can attempt.  Tests confirm {!check} rejects it. *)
