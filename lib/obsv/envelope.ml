let header ~typ ~schema ?seed ?jobs ?git ?(extra = []) () =
  let opt name = function Some v -> [ (name, v) ] | None -> [] in
  Json.Obj
    ([ ("type", Json.Str typ); ("schema", Json.Str schema) ]
    @ opt "seed" (Option.map (fun s -> Json.Int (Int64.to_int s)) seed)
    @ opt "jobs" (Option.map (fun j -> Json.Int j) jobs)
    @ opt "git" (Option.map (fun g -> Json.Str g) git)
    @ extra)
