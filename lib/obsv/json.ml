type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when c >= ' ' && c < '\x7f' -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)))
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips through the parser. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_into buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v =
      match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
      | Some v -> v
      | None -> fail "malformed \\u escape (non-hex digits)"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\x0c'; advance ()
        | Some 'u' ->
          advance ();
          let v = hex4 () in
          if v > 0xff then fail "\\u escape above 00ff (not a byte)";
          Buffer.add_char buf (Char.chr v)
        | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < len && number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let equal (a : t) (b : t) = a = b
