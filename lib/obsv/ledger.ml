type t = {
  counts : (string, int ref) Hashtbl.t;
  mutable observer : (string -> int -> unit) option;
}

let create () = { counts = Hashtbl.create 16; observer = None }

let set_observer t f = t.observer <- Some f

let clear_observer t = t.observer <- None

let bump_by t label n =
  (match Hashtbl.find_opt t.counts label with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counts label (ref n));
  match t.observer with None -> () | Some f -> f label n

let bump t label = bump_by t label 1

let count t label =
  match Hashtbl.find_opt t.counts label with Some r -> !r | None -> 0

let rows t =
  Hashtbl.fold (fun label r acc -> (label, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t.counts 0

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let rejections t =
  Hashtbl.fold
    (fun label r acc ->
      if
        contains_sub ~sub:"denied" label
        || contains_sub ~sub:"fail" label
        || contains_sub ~sub:"reject" label
      then acc + !r
      else acc)
    t.counts 0

let is_empty t = Hashtbl.length t.counts = 0

let per_commit t ~commits =
  List.map
    (fun (label, c) ->
      ( label,
        if commits <= 0 then 0.0
        else float_of_int c /. float_of_int commits ))
    (rows t)

let to_json t =
  Json.Obj (List.map (fun (label, c) -> (label, Json.Int c)) (rows t))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (label, c) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-24s %d" label c)
    (rows t);
  Format.fprintf ppf "@]"
