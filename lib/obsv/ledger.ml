type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let bump_by t label n =
  match Hashtbl.find_opt t label with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t label (ref n)

let bump t label = bump_by t label 1

let count t label =
  match Hashtbl.find_opt t label with Some r -> !r | None -> 0

let rows t =
  Hashtbl.fold (fun label r acc -> (label, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let rejections t =
  Hashtbl.fold
    (fun label r acc ->
      if
        contains_sub ~sub:"denied" label
        || contains_sub ~sub:"fail" label
        || contains_sub ~sub:"reject" label
      then acc + !r
      else acc)
    t 0

let is_empty t = Hashtbl.length t = 0

let per_commit t ~commits =
  List.map
    (fun (label, c) ->
      ( label,
        if commits <= 0 then 0.0
        else float_of_int c /. float_of_int commits ))
    (rows t)

let to_json t =
  Json.Obj (List.map (fun (label, c) -> (label, Json.Int c)) (rows t))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (label, c) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-24s %d" label c)
    (rows t);
  Format.fprintf ppf "@]"
