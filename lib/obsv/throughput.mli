(** Wall-clock throughput as a first-class metric.

    The simulator's other metrics are virtual-time and deterministic;
    throughput is the one observable that is {e about} the wall clock:
    engine events dispatched per second and application operations
    (committed requests) per second.  A {!sample} is one timed run;
    {!summarize} reduces repeated runs benchmark-harness style into
    min/mean/max rate columns, where min is the robust statistic on a
    noisy machine and mean is pooled (total events over total seconds).

    Values are nondeterministic by nature, so exports carrying them are
    excluded from byte-determinism comparisons — CI asserts presence and
    positivity, not values. *)

type sample = { events : int; ops : int; elapsed_s : float }

type summary = {
  samples : int;
  events : int;  (** Total events across samples. *)
  ops : int;  (** Total operations across samples. *)
  elapsed_s : float;  (** Total wall time across samples. *)
  ev_s_min : float;
  ev_s_mean : float;  (** Pooled: [events / elapsed_s]. *)
  ev_s_max : float;
  ops_s_min : float;
  ops_s_mean : float;
  ops_s_max : float;
}

val min_elapsed_s : float
(** Denominator floor (1 µs).  Sub-millisecond lite runs can report
    elapsed times at or below the clock's resolution; every rate clamps
    its denominator to this floor, so rates stay finite — and positive
    whenever any events were counted — instead of dividing by ~0 into
    [inf] (or a flat 0 at exactly 0 s). *)

val summarize : sample list -> summary
(** Raises [Invalid_argument] on an empty list.  Per-sample and pooled
    denominators are clamped to {!min_elapsed_s}. *)

val rate_string : float -> string
(** Humanized rate: ["6.29M"], ["517k"], ["842"]. *)

val columns : string list
(** Table headers matching {!cells}. *)

val cells : summary -> string list
(** One table row: runs, events, ev/s min/mean/max, ops/s. *)

val to_json : summary -> Json.t
