module Histogram = struct
  type t = {
    bounds : int64 array;  (* strictly increasing upper bounds *)
    counts : int array;  (* length bounds + 1; last is overflow *)
    mutable count : int;
    mutable sum : int64;
    mutable min_v : int64;
    mutable max_v : int64;
  }

  (* 1-2-5 ladder: 10 µs .. 10 s of virtual time. *)
  let default_buckets =
    [|
      10L; 20L; 50L; 100L; 200L; 500L; 1_000L; 2_000L; 5_000L; 10_000L;
      20_000L; 50_000L; 100_000L; 200_000L; 500_000L; 1_000_000L; 2_000_000L;
      5_000_000L; 10_000_000L;
    |]

  let create ?(buckets = default_buckets) () =
    if Array.length buckets = 0 then
      invalid_arg "Histogram.create: no buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && Int64.compare buckets.(i - 1) b >= 0 then
          invalid_arg "Histogram.create: bounds must be strictly increasing")
      buckets;
    {
      bounds = Array.copy buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      count = 0;
      sum = 0L;
      min_v = 0L;
      max_v = 0L;
    }

  let bucket_of t v =
    let n = Array.length t.bounds in
    let rec go i = if i >= n || Int64.compare v t.bounds.(i) <= 0 then i else go (i + 1) in
    go 0

  let record t v =
    let b = bucket_of t v in
    t.counts.(b) <- t.counts.(b) + 1;
    if t.count = 0 || Int64.compare v t.min_v < 0 then t.min_v <- v;
    if t.count = 0 || Int64.compare v t.max_v > 0 then t.max_v <- v;
    t.count <- t.count + 1;
    t.sum <- Int64.add t.sum v

  let count t = t.count

  let sum t = t.sum

  let min t = if t.count = 0 then None else Some t.min_v

  let max t = if t.count = 0 then None else Some t.max_v

  let quantile t q =
    if t.count = 0 then None
    else begin
      let rank =
        Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.count)))
      in
      let n = Array.length t.bounds in
      let rec go i cum =
        let cum = cum + t.counts.(i) in
        if cum >= rank then
          (* Clamp to the recorded max so a sparsely filled top bucket never
             reports a quantile above the largest sample. *)
          if i >= n then t.max_v else Stdlib.min t.bounds.(i) t.max_v
        else go (i + 1) cum
      in
      Some (go 0 0)
    end

  let p50 t = quantile t 0.5

  let p90 t = quantile t 0.9

  let p99 t = quantile t 0.99

  let p999 t = quantile t 0.999

  let mean t =
    if t.count = 0 then None
    else Some (Int64.to_float t.sum /. float_of_int t.count)
end

type counter = int ref

type gauge = { mutable last : int; mutable hwm : int }

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_hist of Histogram.t

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 32

let wrong_kind name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a different kind" name)

let counter t name =
  match Hashtbl.find_opt t name with
  | Some (M_counter c) -> c
  | Some _ -> wrong_kind name
  | None ->
    let c = ref 0 in
    Hashtbl.add t name (M_counter c);
    c

let incr c = Stdlib.incr c

let add c n = c := !c + n

let counter_value c = !c

let gauge t name =
  match Hashtbl.find_opt t name with
  | Some (M_gauge g) -> g
  | Some _ -> wrong_kind name
  | None ->
    let g = { last = 0; hwm = 0 } in
    Hashtbl.add t name (M_gauge g);
    g

let set_gauge g v =
  g.last <- v;
  if v > g.hwm then g.hwm <- v

let gauge_value g = g.last

let gauge_hwm g = g.hwm

let histogram ?buckets t name =
  match Hashtbl.find_opt t name with
  | Some (M_hist h) -> h
  | Some _ -> wrong_kind name
  | None ->
    let h = Histogram.create ?buckets () in
    Hashtbl.add t name (M_hist h);
    h

type value =
  | Count of int
  | Level of { last : int; hwm : int }
  | Summary of {
      count : int;
      sum : int64;
      p50 : int64 option;
      p90 : int64 option;
      p99 : int64 option;
      max : int64 option;
    }

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | M_counter c -> Count !c
        | M_gauge g -> Level { last = g.last; hwm = g.hwm }
        | M_hist h ->
          Summary
            {
              count = Histogram.count h;
              sum = Histogram.sum h;
              p50 = Histogram.p50 h;
              p90 = Histogram.p90 h;
              p99 = Histogram.p99 h;
              max = Histogram.max h;
            }
      in
      (name, v) :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let opt_int64 = function
  | None -> Json.Null
  | Some v -> Json.Int (Int64.to_int v)

let value_to_json = function
  | Count c -> Json.Obj [ ("kind", Json.Str "counter"); ("value", Json.Int c) ]
  | Level { last; hwm } ->
    Json.Obj
      [ ("kind", Json.Str "gauge"); ("last", Json.Int last);
        ("hwm", Json.Int hwm) ]
  | Summary { count; sum; p50; p90; p99; max } ->
    Json.Obj
      [
        ("kind", Json.Str "histogram");
        ("count", Json.Int count);
        ("sum", Json.Int (Int64.to_int sum));
        ("p50", opt_int64 p50);
        ("p90", opt_int64 p90);
        ("p99", opt_int64 p99);
        ("max", opt_int64 max);
      ]

let snapshot_to_json s =
  Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) s)

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      match v with
      | Count c -> Format.fprintf ppf "%-32s %d" name c
      | Level { last; hwm } -> Format.fprintf ppf "%-32s %d (hwm %d)" name last hwm
      | Summary { count; p50; p90; p99; max; _ } ->
        let f = function None -> "-" | Some v -> Int64.to_string v in
        Format.fprintf ppf "%-32s n=%d p50=%s p90=%s p99=%s max=%s" name count
          (f p50) (f p90) (f p99) (f max))
    s;
  Format.fprintf ppf "@]"
