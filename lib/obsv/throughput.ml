type sample = { events : int; ops : int; elapsed_s : float }

type summary = {
  samples : int;
  events : int;
  ops : int;
  elapsed_s : float;
  ev_s_min : float;
  ev_s_mean : float;
  ev_s_max : float;
  ops_s_min : float;
  ops_s_mean : float;
  ops_s_max : float;
}

(* Sub-millisecond lite runs can land at or below the wall clock's
   resolution; rating against a raw ~0 denominator explodes to [inf] (or,
   at exactly 0, used to report a flat 0 ev/s for real work).  Clamp every
   denominator to one microsecond so rates stay finite and positive
   whenever any events were counted. *)
let min_elapsed_s = 1e-6

let rate count elapsed =
  if count = 0 then 0.0
  else float_of_int count /. Stdlib.max elapsed min_elapsed_s

let summarize (samples : sample list) =
  match samples with
  | [] -> invalid_arg "Throughput.summarize: no samples"
  | _ ->
    let events = List.fold_left (fun a (s : sample) -> a + s.events) 0 samples in
    let ops = List.fold_left (fun a (s : sample) -> a + s.ops) 0 samples in
    let elapsed_s =
      List.fold_left (fun a (s : sample) -> a +. s.elapsed_s) 0.0 samples
    in
    let fold f init sel =
      List.fold_left
        (fun a (s : sample) -> f a (rate (sel s) s.elapsed_s))
        init samples
    in
    {
      samples = List.length samples;
      events;
      ops;
      elapsed_s;
      (* min/max are per-sample rates (min is the robust statistic on a
         noisy machine); mean is the pooled total-over-total rate, not
         the mean of per-sample rates, so long samples weigh more. *)
      ev_s_min = fold min infinity (fun s -> s.events);
      ev_s_mean = rate events elapsed_s;
      ev_s_max = fold max 0.0 (fun s -> s.events);
      ops_s_min = fold min infinity (fun s -> s.ops);
      ops_s_mean = rate ops elapsed_s;
      ops_s_max = fold max 0.0 (fun s -> s.ops);
    }

(* Compact humanized rate: 6.29M, 517k, 842. *)
let pp_rate ppf r =
  if r >= 1e6 then Format.fprintf ppf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Format.fprintf ppf "%.0fk" (r /. 1e3)
  else Format.fprintf ppf "%.0f" r

let rate_string r = Format.asprintf "%a" pp_rate r

let columns = [ "runs"; "events"; "ev/s min"; "ev/s mean"; "ev/s max"; "ops/s" ]

let cells t =
  [
    string_of_int t.samples;
    string_of_int t.events;
    rate_string t.ev_s_min;
    rate_string t.ev_s_mean;
    rate_string t.ev_s_max;
    rate_string t.ops_s_mean;
  ]

let to_json t =
  Json.Obj
    [
      ("samples", Json.Int t.samples);
      ("events", Json.Int t.events);
      ("ops", Json.Int t.ops);
      ("elapsed_s", Json.Float t.elapsed_s);
      ("ev_per_s_min", Json.Float t.ev_s_min);
      ("ev_per_s_mean", Json.Float t.ev_s_mean);
      ("ev_per_s_max", Json.Float t.ev_s_max);
      ("ops_per_s_min", Json.Float t.ops_s_min);
      ("ops_per_s_mean", Json.Float t.ops_s_mean);
      ("ops_per_s_max", Json.Float t.ops_s_max);
    ]
