(** Request-span tracing: causal phase breakdown per client request.

    Each request (identified by its globally unique [rid]) becomes a root
    span whose life is a fixed sequence of virtual-time {e marks}:

    {v submit → ingress → propose → commit_send → committed → executed → done v}

    The six {e phases} are the gaps between consecutive marks (submit,
    batching, prepare, commit, execute, reply).  Marks are stamped with the
    engine's virtual clock, so span data is deterministic per seed and
    byte-identical at any [--jobs] value.  A recorder travels on the engine
    context ({!Thc_sim.Engine.ctx} — but this module has no sim dependency);
    every entry point is guarded by {!enabled}, and the {!nop} recorder
    makes the whole layer one boolean test on the hot path. *)

type mark =
  | Submit  (** Client handed the request to the network. *)
  | Ingress  (** Leader accepted it into the pending queue. *)
  | Propose  (** Leader sealed it into a batch (Prepare / Pre-prepare). *)
  | Commit_send  (** A replica's commit vote for its slot went out. *)
  | Committed  (** Commit quorum reached. *)
  | Executed  (** Applied to the state machine. *)
  | Reply_done  (** Client collected its reply quorum. *)

type phase =
  | Submit_phase  (** submit → ingress *)
  | Batching_phase  (** ingress → propose *)
  | Prepare_phase  (** propose → commit_send *)
  | Commit_phase  (** commit_send → committed *)
  | Execute_phase  (** committed → executed *)
  | Reply_phase  (** executed → done *)
  | Other_phase  (** Attribution-only: trusted ops outside any request. *)

val phase_name : phase -> string

type t
(** A mutable span recorder. *)

val create : unit -> t
(** A live recorder. *)

val nop : t
(** The disabled singleton: every operation is a no-op ([enabled nop] is
    [false]).  Engines created with tracing [Off] force this recorder. *)

val enabled : t -> bool

val mark : t -> ?client:int -> ?seq:int -> rid:int -> mark -> at:int64 -> unit
(** Stamp a mark on request [rid] at virtual time [at].  First write wins —
    re-deliveries and duplicate quorums never move a mark.  [client]/[seq]
    are recorded once known (first write wins there too). *)

val mark_all : t -> ?seq:int -> rids:int list -> mark -> at:int64 -> unit
(** {!mark} for every request of a batch. *)

val in_phase : t -> phase -> rids:int list -> (unit -> 'a) -> 'a
(** [in_phase t p ~rids f] runs [f] with trusted-op attribution scoped to
    phase [p] on behalf of [rids]: any {!attribute} call during [f] charges
    [p] (aggregate) and each rid in scope (per-span).  Scopes nest; the
    outer scope is restored on exit, exceptions included.  Identity when
    disabled. *)

val attribute : t -> string -> int -> unit
(** Ledger-observer hook ({!Ledger.set_observer}): charge [n] ops labelled
    [label] to the ambient phase (or [Other_phase] when outside any
    {!in_phase} scope). *)

(** {1 Frozen views} *)

type view = {
  v_rid : int;
  v_client : int;  (** -1 when never learned. *)
  v_seq : int;  (** -1 when the protocol never assigned a slot. *)
  v_marks : int64 array;  (** Per mark, virtual µs; -1 = never reached. *)
  v_ops : int array;  (** Per phase, trusted ops charged to this span. *)
}
(** Plain immutable snapshot — no closures, safe to [Marshal] across the
    exec pool and merge in key order. *)

val views : t -> view list
(** All spans, ascending rid. *)

val total_latency : view -> int64 option
(** [done - submit]; [None] for spans that never completed (e.g. requests
    a Byzantine replica injected that correct replicas refused). *)

val complete : view -> bool

val last_mark : view -> (string * int64) option
(** The furthest mark the request reached, as [(mark name, µs)]; [None]
    for a span that never recorded any mark.  For an incomplete span this
    names the phase where the pipeline stopped — e.g. an attacker-injected
    request whose prepare every correct replica refused dies at
    ["propose"]. *)

val critical_path : view -> (string * int64 * float) list
(** Per-phase durations of one span, largest first, as
    [(phase, µs, share-of-total)]. *)

val slowest : ?top:int -> view list -> view list
(** The [top] (default 5) completed spans by total latency, slowest first;
    ties break toward the lower rid. *)

(** {1 Aggregates} *)

val ops_rows : t -> (string * (string * int) list) list
(** [(phase name, [(ledger label, count)])] for phases that charged trusted
    ops, causal phase order, labels sorted.  Plain data, mergeable. *)

val merge_ops :
  (string * (string * int) list) list list ->
  (string * (string * int) list) list
(** Pointwise sum of {!ops_rows} from several runs; deterministic order. *)

type phase_row = {
  p_name : string;
  p_count : int;
  p_p50 : int64 option;
  p_p99 : int64 option;
  p_p999 : int64 option;
  p_mean : float option;
  p_max : int64 option;
  p_ops : (string * int) list;
}

type summary = {
  spans_total : int;
  spans_complete : int;
  rows : phase_row list;  (** Causal order; untraversed phases omitted. *)
  other_ops : (string * int) list;
}

val summarize : ?ops:(string * (string * int) list) list -> view list -> summary
(** Per-phase latency histograms ({!Metrics.Histogram}) over the given
    views, with aggregate trusted-op rows ([ops], typically {!merge_ops}
    output) attached per phase. *)

(** {1 JSON (thc-span/v1 lines)} *)

val view_to_json : view -> Json.t
(** [{"type":"span","rid":..,"client":..,"seq":..,"marks":{..},"ops":{..},
    "total_us":..}] — unset marks and zero op phases are omitted. *)

val view_of_json : Json.t -> view option
(** Inverse of {!view_to_json} (derived fields ignored):
    [view_of_json (view_to_json v) = Some v]. *)

val phase_row_to_json : phase_row -> Json.t
(** [{"type":"phase","phase":..,"count":..,"p50_us":..,...,"ops":{..}}]. *)

(** {1 Rendering} *)

val pp_summary : Format.formatter -> summary -> unit
val pp_critical_path : Format.formatter -> view -> unit
