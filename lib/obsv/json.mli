(** Minimal JSON values: enough for the telemetry exports (JSONL traces,
    metrics snapshots, BENCH_results.json) without an external dependency.

    The printer is canonical — a given value always renders to the same
    bytes — so identical runs produce byte-identical export files.  Strings
    are treated as byte strings: bytes outside printable ASCII are escaped
    as [\u00XX] and the parser folds such escapes back to single bytes,
    which makes [parse (to_string (Str s)) = Ok (Str s)] hold for arbitrary
    bytes (e.g. {!Thc_util.Codec} payloads). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** Fields kept in the order given. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — JSONL-safe). *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  Numbers
    without [.]/[e] become [Int]; [\u] escapes above [00FF] are rejected
    (the printer never emits them). *)

val member : string -> t -> t option
(** Field lookup in an [Obj] (None on other constructors). *)

val to_int : t -> int option
val to_float : t -> float option
(** [Int] widens to float. *)

val to_str : t -> string option

val equal : t -> t -> bool
(** Structural equality; [Obj] fields must be in the same order. *)
