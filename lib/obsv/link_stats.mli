(** Network instrumentation for the simulation engine.

    Tracks, per engine: messages sent / delivered / dropped, the number of
    messages currently in flight (enqueued for delivery but not yet
    dispatched) with its high-water mark, and the per-link queues of
    messages held on blocked links — current depth, deepest single-link
    queue ever, and the total ever held.  The engine drives the [on_*]
    transitions; everything here is passive bookkeeping, so enabling it
    never perturbs a run. *)

type t

val create : n:int -> t

(** {2 Transitions (called by {!Thc_sim.Engine})} *)

val on_send : t -> unit

val on_enqueue : t -> unit
(** Message scheduled for delivery. *)

val on_dequeue : t -> unit
(** Delivery event dispatched (leaves the in-flight set even when the
    destination has crashed). *)

val on_deliver : t -> unit
(** Message actually handed to a live destination. *)

val on_held : t -> src:int -> dst:int -> unit

val on_release : t -> src:int -> dst:int -> unit
(** One message leaves the link's held queue (re-routed or dropped). *)

val on_drop : t -> unit

(** {2 Queries} *)

val sends : t -> int

val delivered : t -> int

val dropped : t -> int

val in_flight : t -> int

val in_flight_hwm : t -> int

val held_now : t -> int
(** Messages currently held across all links. *)

val held_total : t -> int
(** Messages ever held. *)

val held_hwm : t -> int
(** Deepest single-link held queue ever seen. *)

val held_depth : t -> src:int -> dst:int -> int

val rows : t -> (string * int) list
(** Summary as [(metric, value)] rows, fixed order. *)

val to_json : t -> Json.t
