(* Request-span tracing: each client request is a root span whose life is
   a fixed set of causal marks (submitted, ingested by the leader, proposed
   in a batch, commit-vote sent, committed, executed, replied).  Marks are
   virtual-time stamps, so span data is deterministic per seed and
   byte-identical across worker counts.  The recorder is a plain mutable
   store keyed by request id — rids are globally unique across clients in
   every driver — and every entry point is guarded by [enabled], so a
   disabled recorder (the [nop] singleton) costs one boolean test on the
   engine hot path and allocates nothing. *)

type mark =
  | Submit
  | Ingress
  | Propose
  | Commit_send
  | Committed
  | Executed
  | Reply_done

let mark_count = 7

let mark_index = function
  | Submit -> 0
  | Ingress -> 1
  | Propose -> 2
  | Commit_send -> 3
  | Committed -> 4
  | Executed -> 5
  | Reply_done -> 6

let mark_names =
  [| "submit"; "ingress"; "propose"; "commit_send"; "committed"; "executed";
     "done" |]

(* The six latency phases are the gaps between consecutive marks; [Other]
   exists only for trusted-op attribution (view changes, probes, anything
   charged outside a request's critical path). *)
type phase =
  | Submit_phase
  | Batching_phase
  | Prepare_phase
  | Commit_phase
  | Execute_phase
  | Reply_phase
  | Other_phase

let phase_count = 7

let latency_phase_count = 6

let phase_index = function
  | Submit_phase -> 0
  | Batching_phase -> 1
  | Prepare_phase -> 2
  | Commit_phase -> 3
  | Execute_phase -> 4
  | Reply_phase -> 5
  | Other_phase -> 6

let phase_names =
  [| "submit"; "batching"; "prepare"; "commit"; "execute"; "reply"; "other" |]

let phase_name p = phase_names.(phase_index p)

(* Phase i of the first six spans marks (i, i+1). *)
let phase_bounds i = (i, i + 1)

type span = {
  s_rid : int;
  mutable s_client : int;  (* -1 until a mark supplies it *)
  mutable s_seq : int;  (* -1 until the protocol assigns a slot *)
  s_marks : int64 array;  (* [mark_count]; -1L = unset; first write wins *)
  s_ops : int array;  (* [phase_count]; trusted ops charged per phase *)
}

type t = {
  enabled : bool;
  spans : (int, span) Hashtbl.t;
  mutable cur_phase : int;  (* phase index; -1 = outside any phase *)
  mutable cur_rids : int list;  (* rids the current phase is serving *)
  phase_label_ops : (string, int ref) Hashtbl.t array;  (* per phase index *)
}

let create () =
  {
    enabled = true;
    spans = Hashtbl.create 256;
    cur_phase = -1;
    cur_rids = [];
    phase_label_ops = Array.init phase_count (fun _ -> Hashtbl.create 8);
  }

let nop =
  {
    enabled = false;
    spans = Hashtbl.create 1;
    cur_phase = -1;
    cur_rids = [];
    phase_label_ops = [||];
  }

let enabled t = t.enabled

let span_of t rid =
  match Hashtbl.find_opt t.spans rid with
  | Some s -> s
  | None ->
    let s =
      {
        s_rid = rid;
        s_client = -1;
        s_seq = -1;
        s_marks = Array.make mark_count (-1L);
        s_ops = Array.make phase_count 0;
      }
    in
    Hashtbl.add t.spans rid s;
    s

let mark t ?client ?seq ~rid kind ~at =
  if t.enabled then begin
    let s = span_of t rid in
    (match client with
    | Some c when s.s_client < 0 -> s.s_client <- c
    | _ -> ());
    (match seq with Some q when s.s_seq < 0 -> s.s_seq <- q | _ -> ());
    let i = mark_index kind in
    if s.s_marks.(i) < 0L then s.s_marks.(i) <- at
  end

let mark_all t ?seq ~rids kind ~at =
  if t.enabled then List.iter (fun rid -> mark t ?seq ~rid kind ~at) rids

(* Ambient attribution scope: trusted ops charged while [f] runs are
   credited to [phase] (and to each rid the phase is serving).  Nesting
   restores the outer scope on exit, exceptions included. *)
let in_phase t phase ~rids f =
  if not t.enabled then f ()
  else begin
    let saved_phase = t.cur_phase and saved_rids = t.cur_rids in
    t.cur_phase <- phase_index phase;
    t.cur_rids <- rids;
    Fun.protect
      ~finally:(fun () ->
        t.cur_phase <- saved_phase;
        t.cur_rids <- saved_rids)
      f
  end

(* Ledger-observer hook ({!Ledger.set_observer}): one aggregate charge per
   phase+label, plus the full charge on every rid in scope — a batch of b
   requests each "paid" the attestation its batch needed, which is exactly
   the amortization view the batching tables measure. *)
let attribute t label n =
  if t.enabled then begin
    let p = if t.cur_phase < 0 then phase_index Other_phase else t.cur_phase in
    let tbl = t.phase_label_ops.(p) in
    (match Hashtbl.find_opt tbl label with
    | Some r -> r := !r + n
    | None -> Hashtbl.add tbl label (ref n));
    List.iter
      (fun rid ->
        let s = span_of t rid in
        s.s_ops.(p) <- s.s_ops.(p) + n)
      t.cur_rids
  end

(* --- frozen views -------------------------------------------------------- *)

(* Plain immutable snapshots: no functions, no custom blocks, safe to
   Marshal across the exec pool and merge in key order. *)
type view = {
  v_rid : int;
  v_client : int;
  v_seq : int;
  v_marks : int64 array;
  v_ops : int array;
}

let views t =
  Hashtbl.fold
    (fun _ s acc ->
      {
        v_rid = s.s_rid;
        v_client = s.s_client;
        v_seq = s.s_seq;
        v_marks = Array.copy s.s_marks;
        v_ops = Array.copy s.s_ops;
      }
      :: acc)
    t.spans []
  |> List.sort (fun a b -> compare a.v_rid b.v_rid)

let phase_duration v i =
  let a, b = phase_bounds i in
  let ta = v.v_marks.(a) and tb = v.v_marks.(b) in
  if ta >= 0L && tb >= ta then Some (Int64.sub tb ta) else None

let total_latency v =
  let s = v.v_marks.(mark_index Submit)
  and d = v.v_marks.(mark_index Reply_done) in
  if s >= 0L && d >= s then Some (Int64.sub d s) else None

let complete v = total_latency v <> None

(* Marks are causally ordered, so the highest set index is how far the
   request got before the pipeline stopped (or finished). *)
let last_mark v =
  let best = ref None in
  Array.iteri
    (fun i t -> if t >= 0L then best := Some (mark_names.(i), t))
    v.v_marks;
  !best

(* Per-phase durations of one span, largest first, with each phase's share
   of the span's accounted time — the critical path of that request. *)
let critical_path v =
  let segs =
    List.filter_map
      (fun i ->
        match phase_duration v i with
        | Some d when d > 0L -> Some (phase_names.(i), d)
        | _ -> None)
      (List.init latency_phase_count Fun.id)
  in
  let total =
    List.fold_left (fun acc (_, d) -> Int64.add acc d) 0L segs
  in
  List.stable_sort (fun (_, a) (_, b) -> compare b a) segs
  |> List.map (fun (name, d) ->
         let share =
           if total = 0L then 0.0 else Int64.to_float d /. Int64.to_float total
         in
         (name, d, share))

let slowest ?(top = 5) vs =
  List.filter_map (fun v -> Option.map (fun l -> (l, v)) (total_latency v)) vs
  |> List.stable_sort (fun (a, va) (b, vb) ->
         match compare b a with 0 -> compare va.v_rid vb.v_rid | c -> c)
  |> List.filteri (fun i _ -> i < top)
  |> List.map snd

(* --- aggregate trusted-op rows ------------------------------------------- *)

(* [(phase name, [(label, count)])] for phases that charged anything, in
   causal phase order with labels sorted — a plain value, so multi-seed
   campaigns can ship it across the pool and merge deterministically. *)
let ops_rows t =
  if not t.enabled then []
  else
    List.filter_map
      (fun i ->
        let rows =
          Hashtbl.fold
            (fun label r acc -> (label, !r) :: acc)
            t.phase_label_ops.(i) []
          |> List.sort compare
        in
        if rows = [] then None else Some (phase_names.(i), rows))
      (List.init phase_count Fun.id)

let merge_ops op_rows =
  let merged = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (phase, rows) ->
         List.iter
           (fun (label, n) ->
             let key = (phase, label) in
             match Hashtbl.find_opt merged key with
             | Some r -> r := !r + n
             | None -> Hashtbl.add merged key (ref n))
           rows))
    op_rows;
  List.filter_map
    (fun i ->
      let phase = phase_names.(i) in
      let rows =
        Hashtbl.fold
          (fun (p, label) r acc -> if p = phase then (label, !r) :: acc else acc)
          merged []
        |> List.sort compare
      in
      if rows = [] then None else Some (phase, rows))
    (List.init phase_count Fun.id)

(* --- summaries ----------------------------------------------------------- *)

type phase_row = {
  p_name : string;
  p_count : int;  (* spans that traversed this phase *)
  p_p50 : int64 option;
  p_p99 : int64 option;
  p_p999 : int64 option;
  p_mean : float option;
  p_max : int64 option;
  p_ops : (string * int) list;  (* aggregate trusted ops charged here *)
}

type summary = {
  spans_total : int;
  spans_complete : int;
  rows : phase_row list;  (* causal order; phases no span traversed omitted *)
  other_ops : (string * int) list;  (* charged outside any request phase *)
}

let summarize ?(ops = []) vs =
  let hists = Array.init latency_phase_count (fun _ -> Metrics.Histogram.create ()) in
  List.iter
    (fun v ->
      for i = 0 to latency_phase_count - 1 do
        match phase_duration v i with
        | Some d -> Metrics.Histogram.record hists.(i) d
        | None -> ()
      done)
    vs;
  let rows =
    List.filter_map
      (fun i ->
        let h = hists.(i) in
        if Metrics.Histogram.count h = 0 then None
        else
          Some
            {
              p_name = phase_names.(i);
              p_count = Metrics.Histogram.count h;
              p_p50 = Metrics.Histogram.p50 h;
              p_p99 = Metrics.Histogram.p99 h;
              p_p999 = Metrics.Histogram.p999 h;
              p_mean = Metrics.Histogram.mean h;
              p_max = Metrics.Histogram.max h;
              p_ops = (match List.assoc_opt phase_names.(i) ops with
                       | Some rows -> rows
                       | None -> []);
            })
      (List.init latency_phase_count Fun.id)
  in
  {
    spans_total = List.length vs;
    spans_complete = List.length (List.filter complete vs);
    rows;
    other_ops =
      (match List.assoc_opt phase_names.(phase_index Other_phase) ops with
      | Some rows -> rows
      | None -> []);
  }

(* --- JSON ---------------------------------------------------------------- *)

let view_to_json v =
  let marks =
    List.filter_map
      (fun i ->
        if v.v_marks.(i) >= 0L then
          Some (mark_names.(i), Json.Int (Int64.to_int v.v_marks.(i)))
        else None)
      (List.init mark_count Fun.id)
  in
  let ops =
    List.filter_map
      (fun i ->
        if v.v_ops.(i) > 0 then Some (phase_names.(i), Json.Int v.v_ops.(i))
        else None)
      (List.init phase_count Fun.id)
  in
  Json.Obj
    ([ ("type", Json.Str "span"); ("rid", Json.Int v.v_rid) ]
    @ (if v.v_client >= 0 then [ ("client", Json.Int v.v_client) ] else [])
    @ (if v.v_seq >= 0 then [ ("seq", Json.Int v.v_seq) ] else [])
    @ [ ("marks", Json.Obj marks); ("ops", Json.Obj ops) ]
    @
    match total_latency v with
    | Some l -> [ ("total_us", Json.Int (Int64.to_int l)) ]
    | None -> [ ("total_us", Json.Null) ])

let index_of_name names name =
  let rec go i =
    if i >= Array.length names then None
    else if names.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let view_of_json j =
  let ( let* ) = Option.bind in
  let int_member k = Option.bind (Json.member k j) Json.to_int in
  let* rid = int_member "rid" in
  let marks = Array.make mark_count (-1L) in
  let ops = Array.make phase_count 0 in
  let* () =
    match Json.member "marks" j with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          match (index_of_name mark_names name, Json.to_int v) with
          | Some i, Some t -> marks.(i) <- Int64.of_int t
          | _ -> ())
        fields;
      Some ()
    | _ -> None
  in
  (match Json.member "ops" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, v) ->
        match (index_of_name phase_names name, Json.to_int v) with
        | Some i, Some n -> ops.(i) <- n
        | _ -> ())
      fields
  | _ -> ());
  Some
    {
      v_rid = rid;
      v_client = Option.value (int_member "client") ~default:(-1);
      v_seq = Option.value (int_member "seq") ~default:(-1);
      v_marks = marks;
      v_ops = ops;
    }

let ops_to_json rows = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) rows)

let phase_row_to_json r =
  let opt_i64 = function
    | Some v -> Json.Int (Int64.to_int v)
    | None -> Json.Null
  in
  Json.Obj
    [
      ("type", Json.Str "phase");
      ("phase", Json.Str r.p_name);
      ("count", Json.Int r.p_count);
      ("p50_us", opt_i64 r.p_p50);
      ("p99_us", opt_i64 r.p_p99);
      ("p999_us", opt_i64 r.p_p999);
      ( "mean_us",
        match r.p_mean with Some m -> Json.Float m | None -> Json.Null );
      ("max_us", opt_i64 r.p_max);
      ("ops", ops_to_json r.p_ops);
    ]

(* --- rendering ----------------------------------------------------------- *)

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>%d span(s), %d complete@," s.spans_total
    s.spans_complete;
  Format.fprintf ppf
    "| %-8s | %5s | %8s | %8s | %8s | %8s | %8s | %11s |@," "phase" "count"
    "p50 µs" "p99 µs" "p999 µs" "mean µs" "max µs" "trusted ops";
  Format.fprintf ppf
    "|----------|-------|----------|----------|----------|----------|----------|-------------|@,";
  let cell = function Some v -> Int64.to_string v | None -> "-" in
  List.iter
    (fun r ->
      Format.fprintf ppf
        "| %-8s | %5d | %8s | %8s | %8s | %8s | %8s | %11d |@," r.p_name
        r.p_count (cell r.p_p50) (cell r.p_p99) (cell r.p_p999)
        (match r.p_mean with
        | Some m -> Printf.sprintf "%.1f" m
        | None -> "-")
        (cell r.p_max)
        (List.fold_left (fun acc (_, n) -> acc + n) 0 r.p_ops))
    s.rows;
  let attributed =
    List.filter (fun r -> r.p_ops <> []) s.rows
  in
  if attributed <> [] || s.other_ops <> [] then begin
    Format.fprintf ppf "@,trusted-op attribution by phase:@,";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-8s %s@," r.p_name
          (String.concat ", "
             (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) r.p_ops)))
      attributed;
    if s.other_ops <> [] then
      Format.fprintf ppf "  %-8s %s@," "other"
        (String.concat ", "
           (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) s.other_ops))
  end;
  Format.fprintf ppf "@]"

let pp_critical_path ppf v =
  Format.fprintf ppf "@[<v>rid %d" v.v_rid;
  if v.v_client >= 0 then Format.fprintf ppf " (client %d" v.v_client
  else Format.fprintf ppf " (client ?";
  if v.v_seq >= 0 then Format.fprintf ppf ", seq %d)" v.v_seq
  else Format.fprintf ppf ")";
  (match total_latency v with
  | Some l -> Format.fprintf ppf " — total %Ld µs@," l
  | None -> Format.fprintf ppf " — incomplete (no reply)@,");
  List.iter
    (fun (name, d, share) ->
      Format.fprintf ppf "  %-12s %8Ld µs  %5.1f%%@," name d (100.0 *. share))
    (critical_path v);
  Format.fprintf ppf "@]"
