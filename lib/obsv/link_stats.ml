type t = {
  n : int;
  mutable sends : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable in_flight : int;
  mutable in_flight_hwm : int;
  mutable held_now : int;
  mutable held_total : int;
  mutable held_hwm : int;
  depth : int array;  (* per-link held queue depth, row-major src*n+dst *)
}

let create ~n =
  if n <= 0 then invalid_arg "Link_stats.create: n must be positive";
  {
    n;
    sends = 0;
    delivered = 0;
    dropped = 0;
    in_flight = 0;
    in_flight_hwm = 0;
    held_now = 0;
    held_total = 0;
    held_hwm = 0;
    depth = Array.make (n * n) 0;
  }

let slot t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Link_stats: bad pid";
  (src * t.n) + dst

let on_send t = t.sends <- t.sends + 1

let on_enqueue t =
  t.in_flight <- t.in_flight + 1;
  if t.in_flight > t.in_flight_hwm then t.in_flight_hwm <- t.in_flight

let on_dequeue t = t.in_flight <- t.in_flight - 1

let on_deliver t = t.delivered <- t.delivered + 1

let on_held t ~src ~dst =
  let i = slot t ~src ~dst in
  t.depth.(i) <- t.depth.(i) + 1;
  if t.depth.(i) > t.held_hwm then t.held_hwm <- t.depth.(i);
  t.held_now <- t.held_now + 1;
  t.held_total <- t.held_total + 1

let on_release t ~src ~dst =
  let i = slot t ~src ~dst in
  t.depth.(i) <- t.depth.(i) - 1;
  t.held_now <- t.held_now - 1

let on_drop t = t.dropped <- t.dropped + 1

let sends t = t.sends

let delivered t = t.delivered

let dropped t = t.dropped

let in_flight t = t.in_flight

let in_flight_hwm t = t.in_flight_hwm

let held_now t = t.held_now

let held_total t = t.held_total

let held_hwm t = t.held_hwm

let held_depth t ~src ~dst = t.depth.(slot t ~src ~dst)

let rows t =
  [
    ("sent", t.sends);
    ("delivered", t.delivered);
    ("dropped", t.dropped);
    ("in-flight at end", t.in_flight);
    ("in-flight high-water", t.in_flight_hwm);
    ("held at end", t.held_now);
    ("held total", t.held_total);
    ("held queue high-water", t.held_hwm);
  ]

let to_json t =
  Json.Obj
    [
      ("sent", Json.Int t.sends);
      ("delivered", Json.Int t.delivered);
      ("dropped", Json.Int t.dropped);
      ("in_flight", Json.Int t.in_flight);
      ("in_flight_hwm", Json.Int t.in_flight_hwm);
      ("held_now", Json.Int t.held_now);
      ("held_total", Json.Int t.held_total);
      ("held_hwm", Json.Int t.held_hwm);
    ]
