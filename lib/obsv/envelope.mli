(** The common JSONL export header.

    Every machine-readable export in the repository (thc-bench/v2,
    thc-attack/v1, thc-loadtest/v1) opens with one header object built
    here, so the envelope fields spell and order identically everywhere:

    [{"type":T, "schema":S, "seed":…, "jobs":…, "git":…, <extra>…}]

    [jobs] is the {e campaign size} — how many units of work (seeds,
    cells, points, tables) the export covers — never the worker count:
    recording parallelism would break the invariant that [--jobs N]
    exports are byte-identical to sequential ones.  [git] is the source
    revision ([git describe --always --dirty], cached per process by the
    exec library); it varies across commits but not
    across runs of one build, which is what export-determinism checks
    compare.  Readers must treat all envelope fields beyond [type] and
    [schema] as optional: v1 parsers predate them. *)

val header :
  typ:string ->
  schema:string ->
  ?seed:int64 ->
  ?jobs:int ->
  ?git:string ->
  ?extra:(string * Json.t) list ->
  unit ->
  Json.t
(** Fields in fixed order: [type], [schema], then [seed]/[jobs]/[git] when
    given, then [extra] in the order supplied (canonical rendering keeps
    the export byte-deterministic). *)
