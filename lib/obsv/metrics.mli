(** Metrics registry: named counters, gauges and fixed-bucket latency
    histograms over virtual-time samples.

    All state is plain mutable OCaml updated synchronously from simulator
    code, so metrics are as deterministic as the runs they observe: the
    same seed yields the same snapshot, byte for byte.  Quantiles come
    from fixed bucket bounds (no sample retention), which keeps recording
    O(#buckets) and snapshots stable regardless of run length. *)

module Histogram : sig
  type t

  val default_buckets : int64 array
  (** Exponential 1–2–5 ladder from 10 µs to 10 s of virtual time. *)

  val create : ?buckets:int64 array -> unit -> t
  (** [buckets] are strictly increasing upper bounds; samples above the
      last bound land in an implicit overflow bucket.  Raises
      [Invalid_argument] on an empty or non-increasing array. *)

  val record : t -> int64 -> unit
  val count : t -> int
  val sum : t -> int64
  val min : t -> int64 option
  val max : t -> int64 option

  val quantile : t -> float -> int64 option
  (** [quantile h q] (0 < q <= 1) is [None] on an empty histogram.
      Otherwise it is the upper bound of the bucket holding the sample of
      rank [ceil (q * count)] — an overestimate by at most one bucket
      width — clamped to the recorded maximum; ranks falling in the
      overflow bucket also report the exact recorded maximum. *)

  val p50 : t -> int64 option
  val p90 : t -> int64 option
  val p99 : t -> int64 option

  val p999 : t -> int64 option
  (** Tail quantile for the latency tables; same clamping as {!quantile}. *)

  val mean : t -> float option
  (** [sum / count] as a float; [None] on an empty histogram.  Exact (the
      sum tracks raw samples), unlike the bucketed quantiles. *)
end

type t
(** A registry: a namespace of metrics queried by name.  Asking for an
    existing name returns the existing metric; asking for a name already
    registered as a different kind raises [Invalid_argument]. *)

type counter
type gauge

val create : unit -> t

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Gauges remember both the last set value and the high-water mark. *)

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_hwm : gauge -> int

val histogram : ?buckets:int64 array -> t -> string -> Histogram.t

(** {2 Snapshots} *)

type value =
  | Count of int
  | Level of { last : int; hwm : int }
  | Summary of {
      count : int;
      sum : int64;
      p50 : int64 option;
      p90 : int64 option;
      p99 : int64 option;
      max : int64 option;
    }

type snapshot = (string * value) list

val snapshot : t -> snapshot
(** All metrics, sorted by name (deterministic). *)

val value_to_json : value -> Json.t
val snapshot_to_json : snapshot -> Json.t
val pp_snapshot : Format.formatter -> snapshot -> unit
