(** Trusted-operation ledger.

    Every trusted-hardware module charges its operations here (attest,
    check, append, lookup, invoke, ...), so a run can report the paper's
    cost axis: how many trusted-component invocations each mechanism class
    spends per committed operation.  One ledger is owned by each hardware
    [world] and shared by every device claimed from it. *)

type t

val create : unit -> t

val bump : t -> string -> unit
(** Charge one operation under the given label (e.g. ["trinc.attest"]). *)

val bump_by : t -> string -> int -> unit

val set_observer : t -> (string -> int -> unit) -> unit
(** Install a charge observer: every {!bump}/{!bump_by} also calls
    [f label n] after updating the count.  At most one observer; the span
    layer uses this to attribute trusted ops to protocol phases
    ({!Span.attribute}) without the hardware modules knowing about spans.
    The observer must not charge the same ledger (no re-entrancy). *)

val clear_observer : t -> unit

val count : t -> string -> int
(** 0 for labels never charged. *)

val rows : t -> (string * int) list
(** All charged labels with counts, sorted by label (deterministic). *)

val total : t -> int
(** Sum over all labels — total trusted-op invocations. *)

val rejections : t -> int
(** Sum over the labels that record the hardware turning something away —
    any label containing ["denied"], ["fail"] or ["reject"] (e.g.
    ["trinc.attest_denied"], ["trinc.check_fail"], ["link.reject_replay"]).
    Nonzero iff the run charged at least one refused operation; the attack
    harness uses it to certify that an attack was actually stopped by the
    hardware rather than never attempted. *)

val is_empty : t -> bool

val per_commit : t -> commits:int -> (string * float) list
(** [rows] divided by the commit count ([commits <= 0] yields 0. rates —
    an unattested/hardware-free run charges nothing and reports 0). *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
