type t =
  | Decided of string option
  | Srb_broadcast of { seq : int; value : string }
  | Srb_delivered of { sender : int; seq : int; value : string }
  | Rb_delivered of { sender : int; value : string }
  | Round_sent of { round : int; payload : string }
  | Round_received of { round : int; from : int; payload : string }
  | Round_ended of { round : int }
  | Committed of { view : int; seq : int; op : string }
  | Executed of { seq : int; op : string; result : string }
  | Attested of { counter : int; value : string }
  | Checked of { ok : bool; info : string }
  | Client_done of { rid : int; latency_us : int64 }
  | Note of string
  | Recovered of { upto : int; exec_count : int }

let equal (a : t) (b : t) = a = b

let pp_bytes ppf s =
  Format.fprintf ppf "#%s" (Thc_crypto.Digest.to_hex (Thc_crypto.Digest.of_string s))

let pp ppf = function
  | Decided None -> Format.pp_print_string ppf "decided(⊥)"
  | Decided (Some v) -> Format.fprintf ppf "decided(%a)" pp_bytes v
  | Srb_broadcast { seq; value } ->
    Format.fprintf ppf "srb-bcast(%d,%a)" seq pp_bytes value
  | Srb_delivered { sender; seq; value } ->
    Format.fprintf ppf "srb-deliver(p%d,%d,%a)" sender seq pp_bytes value
  | Rb_delivered { sender; value } ->
    Format.fprintf ppf "rb-deliver(p%d,%a)" sender pp_bytes value
  | Round_sent { round; payload } ->
    Format.fprintf ppf "round-sent(r%d,%a)" round pp_bytes payload
  | Round_received { round; from; payload } ->
    Format.fprintf ppf "round-recv(r%d,p%d,%a)" round from pp_bytes payload
  | Round_ended { round } -> Format.fprintf ppf "round-end(r%d)" round
  | Committed { view; seq; op } ->
    Format.fprintf ppf "committed(v%d,s%d,%a)" view seq pp_bytes op
  | Executed { seq; op; result } ->
    Format.fprintf ppf "executed(s%d,%a,%a)" seq pp_bytes op pp_bytes result
  | Attested { counter; value } ->
    Format.fprintf ppf "attested(c%d,%a)" counter pp_bytes value
  | Checked { ok; info } -> Format.fprintf ppf "checked(%b,%s)" ok info
  | Client_done { rid; latency_us } ->
    Format.fprintf ppf "client-done(r%d,%Ldµs)" rid latency_us
  | Note s -> Format.fprintf ppf "note(%s)" s
  | Recovered { upto; exec_count } ->
    Format.fprintf ppf "recovered(s%d,x%d)" upto exec_count
