type action =
  | Crash of int
  | Block_groups of int list list
  | Block_link of int * int
  | Heal
  | Corrupt of { pid : int; attack : string }

type event = { at : int64; action : action }

type t = { events : event list; horizon : int64 }

let fast = Delay.Const 20L

let pp_action ppf = function
  | Crash pid -> Format.fprintf ppf "crash p%d" pid
  | Block_groups groups ->
    Format.fprintf ppf "partition %s"
      (String.concat "|"
         (List.map
            (fun g -> String.concat "," (List.map string_of_int g))
            groups))
  | Block_link (src, dst) -> Format.fprintf ppf "block p%d->p%d" src dst
  | Heal -> Format.pp_print_string ppf "heal"
  | Corrupt { pid; attack } -> Format.fprintf ppf "corrupt p%d (%s)" pid attack

let pp ppf t =
  Format.fprintf ppf "@[<v>adversary (horizon %Ld):@,%a@]" t.horizon
    (Format.pp_print_list (fun ppf e ->
         Format.fprintf ppf "  %8Ld %a" e.at pp_action e.action))
    t.events

(* Hand-built and shrunk scripts need not list events in time order, but
   installation order decides same-timestamp tie-breaking in the engine, so
   everything below works on a time-sorted view (stable, so same-time events
   keep their list order). *)
let by_time events =
  List.stable_sort (fun a b -> Int64.compare a.at b.at) events

let ends_healed t =
  let rec last_state healed = function
    | [] -> healed
    | { action = Heal; _ } :: rest -> last_state true rest
    | { action = Crash _ | Corrupt _; _ } :: rest -> last_state healed rest
    | { action = Block_groups _ | Block_link _; _ } :: rest ->
      last_state false rest
  in
  last_state true (by_time t.events)

let install t (engine : 'm Engine.t) =
  List.iter
    (fun e ->
      match e.action with
      | Crash pid -> Engine.schedule_crash engine ~pid ~at:e.at
      | Block_groups groups ->
        Engine.at engine e.at (fun () ->
            Net.isolate_groups (Engine.net engine) ~groups Net.Block)
      | Block_link (src, dst) ->
        Engine.at engine e.at (fun () ->
            Engine.set_link engine ~src ~dst Net.Block)
      | Heal -> Engine.at engine e.at (fun () -> Engine.heal_all engine fast)
      | Corrupt { pid; attack } ->
        Engine.at engine e.at (fun () -> Engine.corrupt engine ~pid ~attack))
    (by_time t.events);
  (* Pushed after every scripted event, so when the last block event sits at
     exactly [horizon] the engine's same-time tie-break still runs this heal
     after it — liveness is judged on a healed network. *)
  if not (ends_healed t) then
    Engine.at engine t.horizon (fun () -> Engine.heal_all engine fast)

(* --- S-expression codec -------------------------------------------------- *)

module Sexp = Thc_util.Sexp

let action_to_sexp = function
  | Crash pid -> Sexp.list [ Sexp.atom "crash"; Sexp.int_atom pid ]
  | Block_groups groups ->
    Sexp.list
      (Sexp.atom "partition"
      :: List.map (fun g -> Sexp.list (List.map Sexp.int_atom g)) groups)
  | Block_link (src, dst) ->
    Sexp.list [ Sexp.atom "block-link"; Sexp.int_atom src; Sexp.int_atom dst ]
  | Heal -> Sexp.list [ Sexp.atom "heal" ]
  | Corrupt { pid; attack } ->
    Sexp.list [ Sexp.atom "corrupt"; Sexp.int_atom pid; Sexp.atom attack ]

let action_of_sexp = function
  | Sexp.List [ Sexp.Atom "crash"; pid ] -> Crash (Sexp.to_int pid)
  | Sexp.List (Sexp.Atom "partition" :: groups) ->
    Block_groups
      (List.map
         (function
           | Sexp.List pids -> List.map Sexp.to_int pids
           | Sexp.Atom _ -> failwith "Adversary.of_sexp: partition group must be a list")
         groups)
  | Sexp.List [ Sexp.Atom "block-link"; src; dst ] ->
    Block_link (Sexp.to_int src, Sexp.to_int dst)
  | Sexp.List [ Sexp.Atom "heal" ] -> Heal
  | Sexp.List [ Sexp.Atom "corrupt"; pid; Sexp.Atom attack ] ->
    Corrupt { pid = Sexp.to_int pid; attack }
  | s -> failwith ("Adversary.of_sexp: bad action " ^ Sexp.to_string s)

let to_sexp t =
  Sexp.list
    [
      Sexp.atom "adversary";
      Sexp.list [ Sexp.atom "horizon"; Sexp.int64_atom t.horizon ];
      Sexp.list
        (Sexp.atom "events"
        :: List.map
             (fun e -> Sexp.list [ Sexp.int64_atom e.at; action_to_sexp e.action ])
             t.events);
    ]

let of_sexp = function
  | Sexp.List
      [
        Sexp.Atom "adversary";
        Sexp.List [ Sexp.Atom "horizon"; horizon ];
        Sexp.List (Sexp.Atom "events" :: events);
      ] ->
    {
      horizon = Sexp.to_int64 horizon;
      events =
        List.map
          (function
            | Sexp.List [ at; action ] ->
              { at = Sexp.to_int64 at; action = action_of_sexp action }
            | s -> failwith ("Adversary.of_sexp: bad event " ^ Sexp.to_string s))
          events;
    }
  | s -> failwith ("Adversary.of_sexp: bad script " ^ Sexp.to_string s)

let equal a b = a.horizon = b.horizon && a.events = b.events

let crashed t =
  List.filter_map
    (fun e -> match e.action with Crash pid -> Some pid | _ -> None)
    t.events

let corrupted t =
  List.filter_map
    (fun e ->
      match e.action with
      | Corrupt { pid; attack } -> Some (pid, attack)
      | _ -> None)
    t.events

let admissible t ~n ?(crash_budget = 0) ?(corrupt_budget = 0) () =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let pid_ok p = p >= 0 && p < n in
  let distinct l = List.sort_uniq compare l in
  let bad_time = List.find_opt (fun e -> e.at < 0L || e.at > t.horizon) t.events in
  let bad_pid =
    List.find_opt
      (fun e ->
        match e.action with
        | Crash pid | Corrupt { pid; _ } -> not (pid_ok pid)
        | Block_link (src, dst) -> not (pid_ok src && pid_ok dst)
        | Block_groups groups ->
          List.exists (fun g -> List.exists (fun p -> not (pid_ok p)) g) groups
        | Heal -> false)
      t.events
  in
  match (bad_time, bad_pid) with
  | Some e, _ -> err "event at %Ld outside horizon %Ld" e.at t.horizon
  | None, Some e -> err "pid out of range 0..%d in %a" (n - 1) pp_action e.action
  | None, None ->
    let crashes = distinct (crashed t) in
    let corrupts = distinct (List.map fst (corrupted t)) in
    if List.length crashes > crash_budget then
      err "%d crash victims exceed crash budget %d" (List.length crashes)
        crash_budget
    else if List.length corrupts > corrupt_budget then
      err "%d corrupted processes exceed corruption budget %d"
        (List.length corrupts) corrupt_budget
    else if List.exists (fun p -> List.mem p crashes) corrupts then
      err "a process is both crashed and corrupted"
    else if
      List.length (corrupted t) > List.length corrupts
    then err "a process is corrupted twice"
    else Ok ()

let random rng ~n ~horizon ?(crash_budget = 0) ?(partition_budget = 2) () =
  let events = ref [] in
  let time_in lo hi =
    Int64.add lo (Int64.of_int (Thc_util.Rng.int rng (Int64.to_int (Int64.sub hi lo))))
  in
  (* Crashes: distinct victims, any time in the first 3/4 of the run. *)
  let victims = Array.init n (fun i -> i) in
  Thc_util.Rng.shuffle rng victims;
  let crashes = min crash_budget n in
  for i = 0 to crashes - 1 do
    events :=
      { at = time_in 0L (Int64.div (Int64.mul horizon 3L) 4L);
        action = Crash victims.(i) }
      :: !events
  done;
  (* Partition episodes: disjoint windows, each healed before the next. *)
  let episodes = Thc_util.Rng.int rng (partition_budget + 1) in
  let slot = Int64.div horizon (Int64.of_int (max 1 (2 * episodes))) in
  for e = 0 to episodes - 1 do
    let window_start = Int64.mul (Int64.of_int (2 * e)) slot in
    let start = time_in window_start (Int64.add window_start (Int64.div slot 2L)) in
    let stop = time_in (Int64.add start 1L) (Int64.add window_start slot) in
    (* Random two-group split. *)
    let members = Array.init n (fun i -> i) in
    Thc_util.Rng.shuffle rng members;
    let cut = 1 + Thc_util.Rng.int rng (n - 1) in
    let left = Array.to_list (Array.sub members 0 cut) in
    let right = Array.to_list (Array.sub members cut (n - cut)) in
    events := { at = start; action = Block_groups [ left; right ] } :: !events;
    events := { at = stop; action = Heal } :: !events
  done;
  let events =
    List.sort (fun a b -> compare (a.at, a.action) (b.at, b.action)) !events
  in
  { events; horizon }
