let kind_counts trace ~classify =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { msg; _ } ->
        let kind = classify msg in
        Hashtbl.replace counts kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
      | _ -> ())
    trace.Trace.entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let sends_by_source trace =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { src; _ } ->
        Hashtbl.replace counts src
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts src))
      | _ -> ())
    trace.Trace.entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare

type delivery_report = {
  latencies : float list;
  delivered : int;
  held_at_end : int;
  dropped : int;
  in_flight_at_end : int;
}

let delivery_report trace =
  let sent_at = Hashtbl.create 256 in
  (* Per-seq lifecycle: a held message can later be delivered (link healed)
     or dropped (link degraded); only seqs whose *last* state is Held are
     still queued when the trace ends. *)
  let delivered = Hashtbl.create 256 in
  let dropped = Hashtbl.create 16 in
  let held = Hashtbl.create 16 in
  let latencies = ref [] in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { time; seq; _ } -> Hashtbl.replace sent_at seq time
      | Trace.Delivered { time; seq; _ } ->
        Hashtbl.replace delivered seq ();
        (match Hashtbl.find_opt sent_at seq with
        | Some t0 ->
          latencies := Int64.to_float (Int64.sub time t0) :: !latencies
        | None -> ())
      | Trace.Dropped { seq; _ } -> Hashtbl.replace dropped seq ()
      | Trace.Held { seq; _ } -> Hashtbl.replace held seq ()
      | Trace.Timer_fired _ | Trace.Crashed _ | Trace.Output _ -> ())
    trace.Trace.entries;
  let held_at_end =
    Hashtbl.fold
      (fun seq () acc ->
        if Hashtbl.mem delivered seq || Hashtbl.mem dropped seq then acc
        else acc + 1)
      held 0
  in
  let matched = Hashtbl.length delivered in
  {
    latencies = List.rev !latencies;
    delivered = matched;
    held_at_end;
    dropped = Hashtbl.length dropped;
    in_flight_at_end =
      Hashtbl.length sent_at - matched - Hashtbl.length dropped - held_at_end;
  }

let delivery_latencies trace = (delivery_report trace).latencies

let events_per_virtual_ms trace =
  let ms = Int64.to_float trace.Trace.end_time /. 1000.0 in
  if ms <= 0.0 then 0.0
  else float_of_int (List.length trace.Trace.entries) /. ms
