type policy = Deliver of Delay.t | Block | Drop

(* Recycled message buffers for held (blocked-link) traffic.  A buffer
   is a flat growable vector; releasing it back to the pool clears the
   value slots to the pool's null sentinel (so parked messages are not
   pinned against the GC) and keeps the capacity for the next partition
   episode — steady-state partitions allocate nothing. *)
module Pool = struct
  type 'a buf = { mutable data : 'a array; mutable len : int; null : 'a }

  type 'a t = { null : 'a; mutable spare : 'a buf list }

  let create ~null () = { null; spare = [] }

  let acquire t =
    match t.spare with
    | buf :: rest ->
      t.spare <- rest;
      buf
    | [] -> { data = [||]; len = 0; null = t.null }

  let release t buf =
    Array.fill buf.data 0 buf.len buf.null;
    buf.len <- 0;
    t.spare <- buf :: t.spare

  let push buf v =
    let cap = Array.length buf.data in
    if buf.len = cap then begin
      let data = Array.make (if cap = 0 then 8 else cap * 2) buf.null in
      Array.blit buf.data 0 data 0 buf.len;
      buf.data <- data
    end;
    buf.data.(buf.len) <- v;
    buf.len <- buf.len + 1

  let length buf = buf.len

  let get buf i =
    if i < 0 || i >= buf.len then invalid_arg "Net.Pool.get: out of bounds";
    buf.data.(i)
end

type t = { links : policy array array }

let create ~n ~default =
  if n <= 0 then invalid_arg "Net.create: n must be positive";
  { links = Array.init n (fun _ -> Array.make n (Deliver default)) }

let n t = Array.length t.links

let check t pid name =
  if pid < 0 || pid >= n t then invalid_arg ("Net." ^ name ^ ": bad pid")

let get t ~src ~dst =
  check t src "get";
  check t dst "get";
  t.links.(src).(dst)

let set t ~src ~dst policy =
  check t src "set";
  check t dst "set";
  t.links.(src).(dst) <- policy

let set_from t ~src policy =
  check t src "set_from";
  for dst = 0 to n t - 1 do
    t.links.(src).(dst) <- policy
  done

let set_to t ~dst policy =
  check t dst "set_to";
  for src = 0 to n t - 1 do
    t.links.(src).(dst) <- policy
  done

let set_between t ~group_a ~group_b policy =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          set t ~src:a ~dst:b policy;
          set t ~src:b ~dst:a policy)
        group_b)
    group_a

let isolate_groups t ~groups policy =
  let group_of = Array.make (n t) (-1) in
  List.iteri
    (fun gi members -> List.iter (fun p -> group_of.(p) <- gi) members)
    groups;
  (* Unmentioned processes together form one implicit extra group (id -1). *)
  for src = 0 to n t - 1 do
    for dst = 0 to n t - 1 do
      if src <> dst && group_of.(src) <> group_of.(dst) then
        t.links.(src).(dst) <- policy
    done
  done
