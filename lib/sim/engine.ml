type 'm ctx = {
  self : int;
  n : int;
  now : unit -> int64;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;
  others : 'm -> unit;
  set_timer : delay:int64 -> tag:int -> unit;
  output : Obs.t -> unit;
  rng : Thc_util.Rng.t;
  spans : Thc_obsv.Span.t;
}

type 'm behavior = {
  init : 'm ctx -> unit;
  on_message : 'm ctx -> src:int -> 'm -> unit;
  on_timer : 'm ctx -> int -> unit;
}

let no_op =
  {
    init = (fun _ -> ());
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

type tracing = Full | Outputs_only | Off

(* Flat reusable event record.  One mutable record shape covers every
   event kind: the int fields are overloaded per kind and the two option
   fields carry the payload only where the kind needs one.  Records are
   arena-recycled through a free list (unless [recycle] is off), so the
   steady-state hot path allocates no event cells at all. *)
type 'm ev = {
  mutable kind : int;
  mutable a : int;  (* Start/Fire/Crash: pid; Deliver: src *)
  mutable b : int;  (* Deliver: dst *)
  mutable c : int;  (* Deliver: seq; Fire: tag *)
  mutable msg : 'm option;  (* Deliver payload *)
  mutable script : (unit -> unit) option;  (* Script payload *)
}

let k_start = 0

let k_deliver = 1

let k_fire = 2

let k_crash = 3

let k_script = 4

type 'm t = {
  n : int;
  net : Net.t;
  rng : Thc_util.Rng.t;
  proc_rngs : Thc_util.Rng.t array;
  q : 'm ev Thc_util.Calendar_queue.t;
  mutable clock : int64;  (* boxed once per event, shared by trace records *)
  mutable clock_i : int;  (* same instant as an immediate int; all
                             scheduling arithmetic uses this *)
  mutable tie : int;
  behaviors : 'm behavior array;
  crashed : bool array;
  byzantine : bool array;
  tracing : tracing;
  trace_full : bool;  (* tracing = Full, pre-split so hot-path guards
                         are one load and entry records are never even
                         constructed in the lighter modes *)
  trace_key : bool;  (* tracing <> Off *)
  mutable entries : 'm Trace.entry list;  (* reverse order *)
  held : 'm ev Net.Pool.buf option array;  (* src * n + dst *)
  held_pool : 'm ev Net.Pool.t;
  mutable send_seq : int;
  ctxs : 'm ctx option array;
  spans : Thc_obsv.Span.t;
  stats : Thc_obsv.Link_stats.t;
  corrupt_handlers : (int, string -> unit) Hashtbl.t;
  recycle : bool;
  (* Event arena: a flat stack of recycled records. *)
  mutable free : 'm ev array;
  mutable nfree : int;
  mutable events : int;
}

let fresh_ev () =
  { kind = -1; a = 0; b = 0; c = 0; msg = None; script = None }

let create ?(seed = 1L) ?(tracing = Full) ?(recycle = true)
    ?(spans = Thc_obsv.Span.nop) ~n ~net () =
  if Net.n net <> n then invalid_arg "Engine.create: net size mismatch";
  let rng = Thc_util.Rng.create seed in
  (* Span recording rides the tracing dial: [Off] is the promise that the
     hot path pays nothing beyond the simulation itself, so it forces the
     nop recorder no matter what the caller handed in. *)
  let spans = if tracing = Off then Thc_obsv.Span.nop else spans in
  {
    n;
    net;
    rng;
    proc_rngs = Array.init n (fun _ -> Thc_util.Rng.split rng);
    (* Width 8 µs × 1024 buckets = an 8 ms year: protocol messages
       (delays of tens to hundreds of µs) spread across many slices
       while client-interval timers still land inside the year.  The
       null sentinel keeps vacated queue slots from pinning popped
       events; it is never dispatched. *)
    q = Thc_util.Calendar_queue.create ~nbuckets:1024 ~width:8
          ~null:(fresh_ev ()) ();
    clock = 0L;
    clock_i = 0;
    tie = 0;
    behaviors = Array.make n no_op;
    crashed = Array.make n false;
    byzantine = Array.make n false;
    tracing;
    trace_full = tracing = Full;
    trace_key = tracing <> Off;
    entries = [];
    held = Array.make (n * n) None;
    held_pool = Net.Pool.create ~null:(fresh_ev ()) ();
    send_seq = 0;
    ctxs = Array.make n None;
    spans;
    stats = Thc_obsv.Link_stats.create ~n;
    corrupt_handlers = Hashtbl.create 4;
    recycle;
    free = [||];
    nfree = 0;
    events = 0;
  }

let net t = t.net

let stats t = t.stats

let events_processed t = t.events

(* ---------- event arena ---------- *)

let alloc t =
  if t.recycle && t.nfree > 0 then begin
    t.nfree <- t.nfree - 1;
    t.free.(t.nfree)
  end
  else fresh_ev ()

let release t ev =
  if t.recycle then begin
    (* Clear payload fields so a recycled record cannot bleed a stale
       message or closure into its next life (or pin it for the GC). *)
    ev.msg <- None;
    ev.script <- None;
    let cap = Array.length t.free in
    if t.nfree = cap then begin
      let free = Array.make (if cap = 0 then 64 else cap * 2) ev in
      Array.blit t.free 0 free 0 t.nfree;
      t.free <- free
    end;
    t.free.(t.nfree) <- ev;
    t.nfree <- t.nfree + 1
  end

(* ---------- queue ---------- *)

let push t time ev =
  let time = if time < t.clock_i then t.clock_i else time in
  t.tie <- t.tie + 1;
  Thc_util.Calendar_queue.push t.q ~time ~tie:t.tie ev

(* Tracing: fine-grained entries (Sent/Delivered/Held/Dropped/
   Timer_fired) exist only under [Full]; Output and Crashed survive
   [Outputs_only] because the SMR monitors' commit/latency reductions
   are defined over them.  Call sites test [trace_full]/[trace_key]
   inline so the lighter modes never even construct the entry record. *)

let set_behavior t pid behavior = t.behaviors.(pid) <- behavior

let mark_byzantine t pid = t.byzantine.(pid) <- true

let on_corrupt t ~pid handler = Hashtbl.replace t.corrupt_handlers pid handler

let corrupt t ~pid ~attack =
  t.byzantine.(pid) <- true;
  match Hashtbl.find_opt t.corrupt_handlers pid with
  | Some handler -> handler attack
  | None -> ()

let schedule_crash t ~pid ~at =
  let ev = alloc t in
  ev.kind <- k_crash;
  ev.a <- pid;
  push t (Int64.to_int at) ev

let at t time script =
  let ev = alloc t in
  ev.kind <- k_script;
  ev.script <- Some script;
  push t (Int64.to_int time) ev

let now t = t.clock

let route t ~src ~dst ~seq msg =
  match Net.get t.net ~src ~dst with
  | Net.Deliver dist ->
    let delay = Delay.sample_us t.rng dist in
    Thc_obsv.Link_stats.on_enqueue t.stats;
    let ev = alloc t in
    ev.kind <- k_deliver;
    ev.a <- src;
    ev.b <- dst;
    ev.c <- seq;
    ev.msg <- Some msg;
    push t (t.clock_i + delay) ev
  | Net.Block ->
    if t.trace_full then
      t.entries <- Trace.Held { time = t.clock; src; dst; seq } :: t.entries;
    Thc_obsv.Link_stats.on_held t.stats ~src ~dst;
    let slot = (src * t.n) + dst in
    let buf =
      match t.held.(slot) with
      | Some buf -> buf
      | None ->
        let buf = Net.Pool.acquire t.held_pool in
        t.held.(slot) <- Some buf;
        buf
    in
    let ev = alloc t in
    ev.kind <- k_deliver;
    ev.a <- src;
    ev.b <- dst;
    ev.c <- seq;
    ev.msg <- Some msg;
    Net.Pool.push buf ev
  | Net.Drop ->
    Thc_obsv.Link_stats.on_drop t.stats;
    if t.trace_full then
      t.entries <- Trace.Dropped { time = t.clock; src; dst; seq } :: t.entries

let do_send t ~src ~dst msg =
  if not t.crashed.(src) then begin
    let seq = t.send_seq in
    t.send_seq <- seq + 1;
    Thc_obsv.Link_stats.on_send t.stats;
    if t.trace_full then
      t.entries <-
        Trace.Sent { time = t.clock; src; dst; seq; msg } :: t.entries;
    route t ~src ~dst ~seq msg
  end

let release_held t ~src ~dst =
  let slot = (src * t.n) + dst in
  match t.held.(slot) with
  | None -> ()
  | Some buf ->
    t.held.(slot) <- None;
    for i = 0 to Net.Pool.length buf - 1 do
      let ev = Net.Pool.get buf i in
      Thc_obsv.Link_stats.on_release t.stats ~src ~dst;
      match Net.get t.net ~src ~dst with
      | Net.Deliver dist ->
        let delay = Delay.sample_us t.rng dist in
        Thc_obsv.Link_stats.on_enqueue t.stats;
        (* The held record goes straight back into the queue. *)
        push t (t.clock_i + delay) ev
      | Net.Block | Net.Drop ->
        Thc_obsv.Link_stats.on_drop t.stats;
        if t.trace_full then
          t.entries <-
            Trace.Dropped { time = t.clock; src; dst; seq = ev.c } :: t.entries;
        release t ev
    done;
    Net.Pool.release t.held_pool buf

let set_link t ~src ~dst policy =
  Net.set t.net ~src ~dst policy;
  match policy with
  | Net.Deliver _ -> release_held t ~src ~dst
  | Net.Block | Net.Drop -> ()

let heal_all t dist =
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      set_link t ~src ~dst (Net.Deliver dist)
    done
  done

let ctx_of t pid =
  match t.ctxs.(pid) with
  | Some c -> c
  | None ->
    let c =
      {
        self = pid;
        n = t.n;
        now = (fun () -> t.clock);
        send = (fun dst msg -> do_send t ~src:pid ~dst msg);
        broadcast =
          (fun msg ->
            for dst = 0 to t.n - 1 do
              do_send t ~src:pid ~dst msg
            done);
        others =
          (fun msg ->
            for dst = 0 to t.n - 1 do
              if dst <> pid then do_send t ~src:pid ~dst msg
            done);
        set_timer =
          (fun ~delay ~tag ->
            let ev = alloc t in
            ev.kind <- k_fire;
            ev.a <- pid;
            ev.c <- tag;
            push t (t.clock_i + Int64.to_int delay) ev);
        output =
          (fun obs ->
            if t.trace_key then
              t.entries <- Trace.Output { time = t.clock; pid; obs } :: t.entries);
        rng = t.proc_rngs.(pid);
        spans = t.spans;
      }
    in
    t.ctxs.(pid) <- Some c;
    c

(* Copy the fields out, return the record to the arena, then act: by the
   time a behavior runs (and pushes fresh events) the record is already
   reusable. *)
let dispatch t ev =
  let kind = ev.kind and a = ev.a and b = ev.b and c = ev.c in
  let msg = ev.msg and script = ev.script in
  release t ev;
  if kind = k_deliver then begin
    Thc_obsv.Link_stats.on_dequeue t.stats;
    if not t.crashed.(b) then begin
      let m = match msg with Some m -> m | None -> assert false in
      Thc_obsv.Link_stats.on_deliver t.stats;
      if t.trace_full then
        t.entries <-
          Trace.Delivered { time = t.clock; src = a; dst = b; seq = c; msg = m }
          :: t.entries;
      t.behaviors.(b).on_message (ctx_of t b) ~src:a m
    end
  end
  else if kind = k_fire then begin
    if not t.crashed.(a) then begin
      if t.trace_full then
        t.entries <-
          Trace.Timer_fired { time = t.clock; pid = a; tag = c } :: t.entries;
      t.behaviors.(a).on_timer (ctx_of t a) c
    end
  end
  else if kind = k_start then begin
    if not t.crashed.(a) then t.behaviors.(a).init (ctx_of t a)
  end
  else if kind = k_crash then begin
    if not t.crashed.(a) then begin
      t.crashed.(a) <- true;
      if t.trace_key then
        t.entries <- Trace.Crashed { time = t.clock; pid = a } :: t.entries
    end
  end
  else begin
    match script with Some f -> f () | None -> assert false
  end

let to_trace t =
  let byzantine =
    List.filter (fun p -> t.byzantine.(p)) (List.init t.n (fun i -> i))
  in
  {
    Trace.n = t.n;
    byzantine;
    entries = List.rev t.entries;
    end_time = t.clock;
  }

let run ?(max_events = 2_000_000) ?until t =
  for pid = 0 to t.n - 1 do
    let ev = alloc t in
    ev.kind <- k_start;
    ev.a <- pid;
    push t 0 ev
  done;
  let until_i =
    match until with None -> max_int | Some limit -> Int64.to_int limit
  in
  let processed = ref 0 in
  let continue = ref true in
  while !continue do
    match Thc_util.Calendar_queue.pop t.q with
    | None -> continue := false
    | Some (time, _, ev) ->
      if time > until_i then
        (* Engines are single-shot: events past [until] stay
           unprocessed, and the popped one is simply not dispatched. *)
        continue := false
      else begin
        t.clock_i <- time;
        t.clock <- Int64.of_int time;
        dispatch t ev;
        incr processed;
        t.events <- t.events + 1;
        if !processed > max_events then
          failwith "Engine.run: event limit exceeded (livelocked protocol?)"
      end
  done;
  to_trace t
