type 'm ctx = {
  self : int;
  n : int;
  now : unit -> int64;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;
  others : 'm -> unit;
  set_timer : delay:int64 -> tag:int -> unit;
  output : Obs.t -> unit;
  rng : Thc_util.Rng.t;
}

type 'm behavior = {
  init : 'm ctx -> unit;
  on_message : 'm ctx -> src:int -> 'm -> unit;
  on_timer : 'm ctx -> int -> unit;
}

let no_op =
  {
    init = (fun _ -> ());
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

type 'm todo =
  | Start of int
  | Deliver of { src : int; dst : int; seq : int; msg : 'm }
  | Fire of { pid : int; tag : int }
  | Crash of int
  | Script of (unit -> unit)

type 'm t = {
  n : int;
  net : Net.t;
  rng : Thc_util.Rng.t;
  proc_rngs : Thc_util.Rng.t array;
  heap : (int64 * int, 'm todo) Thc_util.Heap.t;
  mutable clock : int64;
  mutable tie : int;
  behaviors : 'm behavior array;
  crashed : bool array;
  byzantine : bool array;
  mutable entries : 'm Trace.entry list;  (* reverse order *)
  held : (int * int, ('m * int) Queue.t) Hashtbl.t;
  mutable send_seq : int;
  ctxs : 'm ctx option array;
  stats : Thc_obsv.Link_stats.t;
  corrupt_handlers : (int, string -> unit) Hashtbl.t;
}

let compare_key (t1, s1) (t2, s2) =
  match Int64.compare t1 t2 with 0 -> compare s1 s2 | c -> c

let create ?(seed = 1L) ~n ~net () =
  if Net.n net <> n then invalid_arg "Engine.create: net size mismatch";
  let rng = Thc_util.Rng.create seed in
  {
    n;
    net;
    rng;
    proc_rngs = Array.init n (fun _ -> Thc_util.Rng.split rng);
    heap = Thc_util.Heap.create ~compare:compare_key;
    clock = 0L;
    tie = 0;
    behaviors = Array.make n no_op;
    crashed = Array.make n false;
    byzantine = Array.make n false;
    entries = [];
    held = Hashtbl.create 16;
    send_seq = 0;
    ctxs = Array.make n None;
    stats = Thc_obsv.Link_stats.create ~n;
    corrupt_handlers = Hashtbl.create 4;
  }

let net t = t.net

let stats t = t.stats

let push t time todo =
  let time = if time < t.clock then t.clock else time in
  t.tie <- t.tie + 1;
  Thc_util.Heap.push t.heap (time, t.tie) todo

let record t entry = t.entries <- entry :: t.entries

let set_behavior t pid behavior = t.behaviors.(pid) <- behavior

let mark_byzantine t pid = t.byzantine.(pid) <- true

let on_corrupt t ~pid handler = Hashtbl.replace t.corrupt_handlers pid handler

let corrupt t ~pid ~attack =
  t.byzantine.(pid) <- true;
  match Hashtbl.find_opt t.corrupt_handlers pid with
  | Some handler -> handler attack
  | None -> ()

let schedule_crash t ~pid ~at = push t at (Crash pid)

let at t time script = push t time (Script script)

let now t = t.clock

let route t ~src ~dst ~seq msg =
  match Net.get t.net ~src ~dst with
  | Net.Deliver dist ->
    let delay = Delay.sample t.rng dist in
    Thc_obsv.Link_stats.on_enqueue t.stats;
    push t (Int64.add t.clock delay) (Deliver { src; dst; seq; msg })
  | Net.Block ->
    record t (Trace.Held { time = t.clock; src; dst; seq });
    Thc_obsv.Link_stats.on_held t.stats ~src ~dst;
    let q =
      match Hashtbl.find_opt t.held (src, dst) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.held (src, dst) q;
        q
    in
    Queue.push (msg, seq) q
  | Net.Drop ->
    Thc_obsv.Link_stats.on_drop t.stats;
    record t (Trace.Dropped { time = t.clock; src; dst; seq })

let do_send t ~src ~dst msg =
  if not t.crashed.(src) then begin
    let seq = t.send_seq in
    t.send_seq <- seq + 1;
    Thc_obsv.Link_stats.on_send t.stats;
    record t (Trace.Sent { time = t.clock; src; dst; seq; msg });
    route t ~src ~dst ~seq msg
  end

let release_held t ~src ~dst =
  match Hashtbl.find_opt t.held (src, dst) with
  | None -> ()
  | Some q ->
    Hashtbl.remove t.held (src, dst);
    Queue.iter
      (fun (msg, seq) ->
        Thc_obsv.Link_stats.on_release t.stats ~src ~dst;
        match Net.get t.net ~src ~dst with
        | Net.Deliver dist ->
          let delay = Delay.sample t.rng dist in
          Thc_obsv.Link_stats.on_enqueue t.stats;
          push t (Int64.add t.clock delay) (Deliver { src; dst; seq; msg })
        | Net.Block | Net.Drop ->
          Thc_obsv.Link_stats.on_drop t.stats;
          record t (Trace.Dropped { time = t.clock; src; dst; seq }))
      q

let set_link t ~src ~dst policy =
  Net.set t.net ~src ~dst policy;
  match policy with
  | Net.Deliver _ -> release_held t ~src ~dst
  | Net.Block | Net.Drop -> ()

let heal_all t dist =
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      set_link t ~src ~dst (Net.Deliver dist)
    done
  done

let ctx_of t pid =
  match t.ctxs.(pid) with
  | Some c -> c
  | None ->
    let c =
      {
        self = pid;
        n = t.n;
        now = (fun () -> t.clock);
        send = (fun dst msg -> do_send t ~src:pid ~dst msg);
        broadcast =
          (fun msg ->
            for dst = 0 to t.n - 1 do
              do_send t ~src:pid ~dst msg
            done);
        others =
          (fun msg ->
            for dst = 0 to t.n - 1 do
              if dst <> pid then do_send t ~src:pid ~dst msg
            done);
        set_timer =
          (fun ~delay ~tag ->
            push t (Int64.add t.clock delay) (Fire { pid; tag }));
        output =
          (fun obs -> record t (Trace.Output { time = t.clock; pid; obs }));
        rng = t.proc_rngs.(pid);
      }
    in
    t.ctxs.(pid) <- Some c;
    c

let dispatch t todo =
  match todo with
  | Start pid ->
    if not t.crashed.(pid) then t.behaviors.(pid).init (ctx_of t pid)
  | Deliver { src; dst; seq; msg } ->
    Thc_obsv.Link_stats.on_dequeue t.stats;
    if not t.crashed.(dst) then begin
      Thc_obsv.Link_stats.on_deliver t.stats;
      record t (Trace.Delivered { time = t.clock; src; dst; seq; msg });
      t.behaviors.(dst).on_message (ctx_of t dst) ~src msg
    end
  | Fire { pid; tag } ->
    if not t.crashed.(pid) then begin
      record t (Trace.Timer_fired { time = t.clock; pid; tag });
      t.behaviors.(pid).on_timer (ctx_of t pid) tag
    end
  | Crash pid ->
    if not t.crashed.(pid) then begin
      t.crashed.(pid) <- true;
      record t (Trace.Crashed { time = t.clock; pid })
    end
  | Script f -> f ()

let to_trace t =
  let byzantine =
    List.filter (fun p -> t.byzantine.(p)) (List.init t.n (fun i -> i))
  in
  {
    Trace.n = t.n;
    byzantine;
    entries = List.rev t.entries;
    end_time = t.clock;
  }

let run ?(max_events = 2_000_000) ?until t =
  for pid = 0 to t.n - 1 do
    push t 0L (Start pid)
  done;
  let processed = ref 0 in
  let continue = ref true in
  while !continue do
    match Thc_util.Heap.peek t.heap with
    | None -> continue := false
    | Some ((time, _), _) ->
      (match until with
      | Some limit when time > limit -> continue := false
      | Some _ | None ->
        (match Thc_util.Heap.pop t.heap with
        | None -> continue := false
        | Some ((time, _), todo) ->
          t.clock <- time;
          dispatch t todo;
          incr processed;
          if !processed > max_events then
            failwith "Engine.run: event limit exceeded (livelocked protocol?)"))
  done;
  to_trace t
