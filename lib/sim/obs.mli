(** Observable outputs of simulated processes.

    Every protocol in the repository reports its externally meaningful
    actions (decisions, deliveries, round boundaries, commits) as [Obs.t]
    values recorded in the trace.  Property monitors — the executable
    versions of the paper's definitions — are written entirely against
    these observations, independent of each protocol's wire message type.

    Values carried inside observations are canonical byte strings
    ([Thc_util.Codec.encode] of the protocol-level value) so that equality
    of observations coincides with equality of values. *)

type t =
  | Decided of string option
      (** Agreement protocols: committed value, [None] encodes ⊥. *)
  | Srb_broadcast of { seq : int; value : string }
      (** A sender handed [value] with sequence number [seq] to broadcast. *)
  | Srb_delivered of { sender : int; seq : int; value : string }
      (** Sequenced-reliable-broadcast delivery event. *)
  | Rb_delivered of { sender : int; value : string }
      (** Plain reliable-broadcast delivery event. *)
  | Round_sent of { round : int; payload : string }
      (** The process sent its round-[round] message. *)
  | Round_received of { round : int; from : int; payload : string }
      (** The process received [from]'s round-[round] message (before the
          end of its own round [round]; later receptions are not round
          receptions). *)
  | Round_ended of { round : int }
      (** The process finished round [round] and may begin the next. *)
  | Committed of { view : int; seq : int; op : string }
      (** Replication: operation committed at sequence number [seq]. *)
  | Executed of { seq : int; op : string; result : string }
      (** Replication: state machine executed [op]. *)
  | Attested of { counter : int; value : string }
      (** Trusted hardware produced an attestation. *)
  | Checked of { ok : bool; info : string }
      (** Result of an attestation/proof check. *)
  | Client_done of { rid : int; latency_us : int64 }
      (** Replication client: request [rid] completed end-to-end. *)
  | Note of string  (** Free-form annotation for debugging and demos. *)
  | Recovered of { upto : int; exec_count : int }
      (** Replication: the replica installed a verified state-transfer
          snapshot covering slots 1..[upto]; its dense execution index
          resumes at [exec_count + 1].  Appended last so existing encoded
          observations keep their bytes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
