(** Network configuration: per-directed-link delivery policy.

    The adversary of the asynchronous model is expressed as a schedule of
    reconfigurations of this structure (performed through {!Engine.at}
    scripts): a link can deliver with a sampled delay, hold messages back
    ([Block], the paper's "arbitrarily delayed"), or drop them ([Drop],
    used only on links from Byzantine processes or to model fair-loss
    experiments — correct-to-correct links must stay eventually live for
    the asynchronous model's guarantees to apply).

    Hand-setting links is the low-level interface; the intended
    high-level entry point is the topology compiler
    ([Thc_network.Topology.apply]), which lowers a named network model —
    clique, geo regions, asymmetric skew, seeded loss — onto this policy
    table in one call and schedules any heals it needs. *)

type policy =
  | Deliver of Delay.t  (** Deliver after a sampled delay. *)
  | Block
      (** Hold messages; they are queued and released when the link is later
          set back to [Deliver] (see {!Engine.set_link}). *)
  | Drop  (** Silently discard. *)

(** Recycled flat buffers for held (blocked-link) traffic.  The engine
    parks messages for a blocked link in one [buf] per directed link and
    returns it to the pool when the link heals, so repeated partition
    episodes reuse the same backing arrays instead of allocating queue
    cells per message. *)
module Pool : sig
  type 'a buf
  (** Growable vector of parked values, FIFO by insertion index. *)

  type 'a t

  val create : null:'a -> unit -> 'a t
  (** [null] is the sentinel written into vacated slots on {!release} so
      a pooled buffer never pins its previous contents. *)

  val acquire : 'a t -> 'a buf
  (** An empty buffer — a recycled one when available. *)

  val release : 'a t -> 'a buf -> unit
  (** Clear [buf] (slots overwritten with the null sentinel) and return
      it to the pool for the next {!acquire}. *)

  val push : 'a buf -> 'a -> unit

  val length : 'a buf -> int

  val get : 'a buf -> int -> 'a
  (** [get buf i] is the [i]-th pushed value; raises [Invalid_argument]
      out of bounds. *)
end

type t

val create : n:int -> default:Delay.t -> t
(** Fully connected [n]-process network; every link (including self-loops,
    which model local delivery) starts as [Deliver default]. *)

val n : t -> int

val get : t -> src:int -> dst:int -> policy

val set : t -> src:int -> dst:int -> policy -> unit

val set_from : t -> src:int -> policy -> unit
(** Set all links out of [src]. *)

val set_to : t -> dst:int -> policy -> unit
(** Set all links into [dst]. *)

val set_between : t -> group_a:int list -> group_b:int list -> policy -> unit
(** Set all links in both directions between the two groups. *)

val isolate_groups : t -> groups:int list list -> policy -> unit
(** Apply [policy] to every link whose endpoints lie in different groups.
    Processes not mentioned in any group form an implicit extra group. *)
