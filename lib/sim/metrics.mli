(** Trace-level metrics for the benchmark tables.

    Message-kind breakdowns and rate summaries computed from finished
    traces; protocol libraries provide the classifier (a function from
    their wire type to a short label). *)

val kind_counts :
  'm Trace.t -> classify:('m -> string) -> (string * int) list
(** Sent messages grouped by classifier label, descending by count. *)

val sends_by_source : 'm Trace.t -> (int * int) list
(** [(pid, messages sent)] for every pid that sent anything, ascending pid. *)

type delivery_report = {
  latencies : float list;
      (** Per-message µs between [Sent] and its [Delivered] (matched by
          engine sequence number), in delivery order. *)
  delivered : int;  (** Sends that were eventually delivered. *)
  held_at_end : int;
      (** Sends still sitting in a blocked link's queue when the trace
          ended — previously silently excluded from every metric. *)
  dropped : int;  (** Sends dropped by link policy. *)
  in_flight_at_end : int;
      (** Sends scheduled for delivery that the run's horizon cut off. *)
}

val delivery_report : 'm Trace.t -> delivery_report
(** Full delivery accounting: every [Sent] is attributed to exactly one of
    [delivered] / [dropped] / [held_at_end] / [in_flight_at_end]. *)

val delivery_latencies : 'm Trace.t -> float list
(** [(delivery_report trace).latencies] — kept for existing callers. *)

val events_per_virtual_ms : 'm Trace.t -> float
(** Trace entries per virtual millisecond — a load measure. *)
