(** Message-delay distributions for network links.

    Virtual time is in integer microseconds.  Asynchrony in the simulator is
    the combination of sampled delays and adversarial link reconfiguration
    (blocking/healing, see {!Net}); the distributions here cover the
    well-behaved part. *)

type t =
  | Const of int64  (** Fixed delay. *)
  | Uniform of int64 * int64  (** Uniform in [\[lo, hi\]]. *)
  | Exponential of float
      (** Exponential with the given mean (µs), truncated to ≥ 1 µs — the
          standard heavy-ish tail model for asynchronous networks. *)

val sample : Thc_util.Rng.t -> t -> int64
(** Draw one delay; always ≥ 0. *)

val sample_us : Thc_util.Rng.t -> t -> int
(** Exactly {!sample} — same RNG consumption, same value — returned as
    an immediate [int] so the scheduler's arithmetic stays unboxed. *)

val pp : Format.formatter -> t -> unit
