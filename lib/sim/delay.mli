(** Message-delay distributions for network links.

    Virtual time is in integer microseconds.  Asynchrony in the simulator is
    the combination of sampled delays and adversarial link reconfiguration
    (blocking/healing, see {!Net}); the distributions here cover the
    well-behaved part.

    Callers rarely assign distributions link by link: the intended
    high-level entry point is the topology compiler
    ([Thc_network.Topology.apply]), which lowers a named network model
    (clique, geo regions, asymmetric, lossy) onto a whole {!Net} policy
    table built from these distributions. *)

type t =
  | Const of int64  (** Fixed delay. *)
  | Uniform of int64 * int64  (** Uniform in [\[lo, hi\]]. *)
  | Exponential of float
      (** Exponential with the given mean (µs), truncated to ≥ 1 µs — the
          standard heavy-ish tail model for asynchronous networks. *)

val sample : Thc_util.Rng.t -> t -> int64
(** Draw one delay; always ≥ 0. *)

val sample_us : Thc_util.Rng.t -> t -> int
(** Exactly {!sample} — same RNG consumption, same value — returned as
    an immediate [int] so the scheduler's arithmetic stays unboxed. *)

val shift : t -> int64 -> t
(** Add a constant offset (µs, clamped to ≥ 0) while preserving the
    constructor — [Const d] stays [Const], [Uniform (lo, hi)] shifts both
    bounds, [Exponential m] shifts the mean — so a shifted distribution
    consumes exactly the same RNG draws as the original.  Used by the
    lazy-replica rational strategy to slow a link without perturbing any
    other link's samples. *)

val mean_us : t -> float
(** Expected delay in µs ([Const d] → d; [Uniform (lo, hi)] → midpoint;
    [Exponential m] → m).  The ranking key for "fastest replica" style
    decisions (e.g. the racing-client strategy), never used for
    sampling. *)

val pp : Format.formatter -> t -> unit
