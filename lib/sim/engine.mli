(** Deterministic discrete-event simulation engine.

    Processes are event handlers over a protocol-specific message type ['m];
    the engine owns virtual time, the event queue, the network configuration
    and all randomness, so a run is a pure function of the seed, the wiring,
    and the adversary script.  The asynchronous adversary is expressed as
    scheduled reconfigurations ({!at}, {!set_link}, {!schedule_crash}) plus
    the delay distributions of {!Net}.

    Byzantine processes are ordinary behaviors registered with
    {!mark_byzantine}; nothing restricts their code — restrictions come only
    from capabilities (signing secrets, trusted-hardware handles, ACLs),
    exactly as in the paper's model. *)

type 'm t

type 'm ctx = {
  self : int;
  n : int;
  now : unit -> int64;
  send : int -> 'm -> unit;  (** Point-to-point send (recorded). *)
  broadcast : 'm -> unit;  (** Send to every process, including self. *)
  others : 'm -> unit;  (** Send to every process except self. *)
  set_timer : delay:int64 -> tag:int -> unit;
      (** One-shot timer; [on_timer] fires with [tag] after [delay]. *)
  output : Obs.t -> unit;  (** Record an observation in the trace. *)
  rng : Thc_util.Rng.t;  (** Per-process deterministic stream. *)
  spans : Thc_obsv.Span.t;
      (** Request-span recorder shared by every process of the engine
          ({!Thc_obsv.Span.nop} unless one was passed to {!create}).
          Protocol code stamps causal marks on it in virtual time; when
          disabled every call is one boolean test.  Recording never
          perturbs scheduling, RNG draws or the trace. *)
}
(** Capabilities handed to a behavior.  All interaction with the world goes
    through this record. *)

type 'm behavior = {
  init : 'm ctx -> unit;  (** Called once at virtual time 0. *)
  on_message : 'm ctx -> src:int -> 'm -> unit;
  on_timer : 'm ctx -> int -> unit;
}

val no_op : 'm behavior
(** Behavior that does nothing (a silent/crashed-from-start process). *)

type tracing =
  | Full
      (** Record every entry (sends, deliveries, holds, drops, timers,
          outputs, crashes) — the golden-trace/export fidelity mode, and
          the default. *)
  | Outputs_only
      (** Record only [Output] and [Crashed] entries — enough for the
          SMR monitors' commit and latency reductions
          ({!Thc_replication.Smr_spec}-style folds over outputs), at a
          fraction of the allocation.  The throughput-measurement mode. *)
  | Off  (** Record nothing; {!run}'s trace has an empty entry list. *)

val create :
  ?seed:int64 -> ?tracing:tracing -> ?recycle:bool ->
  ?spans:Thc_obsv.Span.t -> n:int -> net:Net.t -> unit -> 'm t
(** Fresh engine over [n] processes.  [net] must have the same [n].

    [tracing] (default [Full]) selects how much of the run is recorded;
    it changes {e only} what {!run}'s trace contains — scheduling, RNG
    consumption and behavior execution are bit-identical across modes.

    [spans] (default {!Thc_obsv.Span.nop}) is the request-span recorder
    handed to every behavior via [ctx.spans].  [tracing = Off] forces the
    nop recorder — the arena/recycling fast path keeps its pay-nothing
    promise — and span recording is itself virtual-time-only, so traces
    and exports are byte-identical whether or not spans are collected.

    [recycle] (default [true]) arena-recycles the engine's internal
    event records through a free list; [false] allocates every event
    fresh.  Observable behavior is identical — the flag exists so tests
    can prove it. *)

val net : 'm t -> Net.t

val stats : 'm t -> Thc_obsv.Link_stats.t
(** Live network instrumentation: sends/deliveries/drops, in-flight
    high-water mark, held-queue depths.  Updated as the engine routes;
    read it after {!run} for the whole-run totals. *)

val set_behavior : 'm t -> int -> 'm behavior -> unit
(** Install a process.  Pids without behaviors act as crashed from start. *)

val mark_byzantine : 'm t -> int -> unit
(** Tag a pid as faulty for the monitors; does not change its execution. *)

val on_corrupt : 'm t -> pid:int -> (string -> unit) -> unit
(** Register a corruption handler for [pid].  When an adversary script
    corrupts the process ({!corrupt}, or an [Adversary] [Corrupt] event),
    the handler receives the attack name and may switch the installed
    behavior into its Byzantine mode.  At most one handler per pid; a later
    registration replaces the earlier one. *)

val corrupt : 'm t -> pid:int -> attack:string -> unit
(** Mark [pid] Byzantine for the monitors and invoke its {!on_corrupt}
    handler (a no-op if none is registered).  Typically called from a
    scheduled script action, so corruption happens at a chosen virtual
    time mid-run. *)

val schedule_crash : 'm t -> pid:int -> at:int64 -> unit
(** Stop delivering messages/timers to [pid] from time [at] on. *)

val at : 'm t -> int64 -> (unit -> unit) -> unit
(** Run an adversary script action at the given virtual time (network
    reconfiguration, assertions over intermediate state, ...). *)

val set_link : 'm t -> src:int -> dst:int -> Net.policy -> unit
(** Reconfigure a link now.  Switching a [Block]ed link to [Deliver]
    releases its held messages with freshly sampled delays. *)

val heal_all : 'm t -> Delay.t -> unit
(** Set every link to [Deliver] and release everything held — used to
    restore the "every message is eventually delivered" obligation after a
    temporary partition. *)

val now : 'm t -> int64

val events_processed : 'm t -> int
(** Events the run loop has dispatched so far — the numerator of the
    events/sec throughput metric.  Counts every popped event (including
    deliveries to crashed processes), not trace entries. *)

val run : ?max_events:int -> ?until:int64 -> 'm t -> 'm Trace.t
(** Process events in time order until quiescence, [until] (events after it
    stay unprocessed), or [max_events] (default 2_000_000; exceeding it
    raises [Failure] — a protocol bug, not a legitimate outcome).  Call at
    most once per engine: it enqueues the [init] events, so engines are
    single-shot. *)
