type t = Const of int64 | Uniform of int64 * int64 | Exponential of float

let sample rng = function
  | Const d -> if d < 0L then 0L else d
  | Uniform (lo, hi) ->
    if hi < lo then invalid_arg "Delay.sample: empty range";
    let span = Int64.to_int (Int64.sub hi lo) in
    Int64.add lo (Int64.of_int (Thc_util.Rng.int rng (span + 1)))
  | Exponential mean ->
    let d = Thc_util.Rng.exponential rng ~mean in
    Int64.of_float (Float.max 1.0 d)

(* Unboxed twin of [sample] for the engine's hot path: same RNG draw
   sequence, same value, but as an immediate int (virtual-time µs fit a
   63-bit int) so scheduling arithmetic allocates nothing. *)
let sample_us rng = function
  | Const d -> if d < 0L then 0 else Int64.to_int d
  | Uniform (lo, hi) ->
    if hi < lo then invalid_arg "Delay.sample: empty range";
    let span = Int64.to_int (Int64.sub hi lo) in
    Int64.to_int lo + Thc_util.Rng.int rng (span + 1)
  | Exponential mean ->
    let d = Thc_util.Rng.exponential rng ~mean in
    int_of_float (Float.max 1.0 d)

let shift t off =
  let off = if off < 0L then 0L else off in
  match t with
  | Const d -> Const (Int64.add d off)
  | Uniform (lo, hi) -> Uniform (Int64.add lo off, Int64.add hi off)
  | Exponential m -> Exponential (m +. Int64.to_float off)

let mean_us = function
  | Const d -> Int64.to_float d
  | Uniform (lo, hi) -> (Int64.to_float lo +. Int64.to_float hi) /. 2.0
  | Exponential m -> m

let pp ppf = function
  | Const d -> Format.fprintf ppf "const(%Ldµs)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%Ld,%Ldµs)" lo hi
  | Exponential m -> Format.fprintf ppf "exp(%.1fµs)" m
