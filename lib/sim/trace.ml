type 'm entry =
  | Sent of { time : int64; src : int; dst : int; seq : int; msg : 'm }
  | Delivered of { time : int64; src : int; dst : int; seq : int; msg : 'm }
  | Held of { time : int64; src : int; dst : int; seq : int }
  | Dropped of { time : int64; src : int; dst : int; seq : int }
  | Timer_fired of { time : int64; pid : int; tag : int }
  | Crashed of { time : int64; pid : int }
  | Output of { time : int64; pid : int; obs : Obs.t }

type 'm t = {
  n : int;
  byzantine : int list;
  entries : 'm entry list;
  end_time : int64;
}

let crashed_pids t =
  List.filter_map
    (function Crashed { pid; _ } -> Some pid | _ -> None)
    t.entries

let correct t pid =
  (not (List.mem pid t.byzantine)) && not (List.mem pid (crashed_pids t))

let correct_pids t = List.filter (correct t) (List.init t.n (fun i -> i))

let outputs t =
  List.filter_map
    (function Output { time; pid; obs } -> Some (time, pid, obs) | _ -> None)
    t.entries

let outputs_of t pid =
  List.filter_map
    (function
      | Output { pid = p; obs; _ } when p = pid -> Some obs
      | _ -> None)
    t.entries

let outputs_matching t f =
  List.filter_map
    (function
      | Output { time; pid; obs } ->
        (match f pid obs with Some x -> Some (time, x) | None -> None)
      | _ -> None)
    t.entries

let decision_of t pid =
  let rec first = function
    | [] -> None
    | Obs.Decided d :: _ -> Some d
    | _ :: rest -> first rest
  in
  first (outputs_of t pid)

let reception_transcript t pid =
  List.filter_map
    (function
      | Delivered { dst; src; msg; _ } when dst = pid ->
        Some (src, Thc_util.Codec.encode msg)
      | _ -> None)
    t.entries

let full_local_view t pid =
  List.filter_map
    (function
      | Delivered { dst; src; msg; _ } when dst = pid ->
        Some (Printf.sprintf "recv:%d:%s" src (Thc_util.Codec.encode msg))
      | Timer_fired { pid = p; tag; _ } when p = pid ->
        Some (Printf.sprintf "timer:%d" tag)
      | _ -> None)
    t.entries

let count t pred = List.length (List.filter pred t.entries)

let messages_sent t = count t (function Sent _ -> true | _ -> false)

let messages_delivered t = count t (function Delivered _ -> true | _ -> false)

let map_msg f t =
  {
    n = t.n;
    byzantine = t.byzantine;
    end_time = t.end_time;
    entries =
      List.map
        (function
          | Sent { time; src; dst; seq; msg } ->
            Sent { time; src; dst; seq; msg = f msg }
          | Delivered { time; src; dst; seq; msg } ->
            Delivered { time; src; dst; seq; msg = f msg }
          | Held h -> Held h
          | Dropped d -> Dropped d
          | Timer_fired tf -> Timer_fired tf
          | Crashed c -> Crashed c
          | Output o -> Output o)
        t.entries;
  }

(* --- JSONL export ------------------------------------------------------- *)

module J = Thc_obsv.Json

let int64 v = J.Int (Int64.to_int v)

let entry_to_json ~encode_msg entry =
  let wire kind time src dst seq msg =
    J.Obj
      ([ ("type", J.Str kind); ("time", int64 time); ("src", J.Int src);
         ("dst", J.Int dst); ("seq", J.Int seq) ]
      @ match msg with None -> [] | Some m -> [ ("msg", J.Str (encode_msg m)) ])
  in
  match entry with
  | Sent { time; src; dst; seq; msg } -> wire "sent" time src dst seq (Some msg)
  | Delivered { time; src; dst; seq; msg } ->
    wire "delivered" time src dst seq (Some msg)
  | Held { time; src; dst; seq } -> wire "held" time src dst seq None
  | Dropped { time; src; dst; seq } -> wire "dropped" time src dst seq None
  | Timer_fired { time; pid; tag } ->
    J.Obj
      [ ("type", J.Str "timer"); ("time", int64 time); ("pid", J.Int pid);
        ("tag", J.Int tag) ]
  | Crashed { time; pid } ->
    J.Obj [ ("type", J.Str "crashed"); ("time", int64 time); ("pid", J.Int pid) ]
  | Output { time; pid; obs } ->
    J.Obj
      [
        ("type", J.Str "output");
        ("time", int64 time);
        ("pid", J.Int pid);
        (* Codec bytes round-trip exactly; "show" is for human readers. *)
        ("obs", J.Str (Thc_util.Codec.encode obs));
        ("show", J.Str (Format.asprintf "%a" Obs.pp obs));
      ]

let to_jsonl ~encode_msg t =
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (J.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (J.Obj
       [
         ("type", J.Str "trace");
         ("n", J.Int t.n);
         ("byzantine", J.List (List.map (fun p -> J.Int p) t.byzantine));
         ("end_time", int64 t.end_time);
       ]);
  List.iter (fun e -> line (entry_to_json ~encode_msg e)) t.entries;
  Buffer.contents buf

let of_jsonl s =
  let ( let* ) = Result.bind in
  let field name conv j =
    match Option.bind (J.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let time j = Result.map Int64.of_int (field "time" J.to_int j) in
  let entry_of_json j =
    let* kind = field "type" J.to_str j in
    let wire () =
      let* time = time j in
      let* src = field "src" J.to_int j in
      let* dst = field "dst" J.to_int j in
      let* seq = field "seq" J.to_int j in
      Ok (time, src, dst, seq)
    in
    match kind with
    | "sent" ->
      let* time, src, dst, seq = wire () in
      let* msg = field "msg" J.to_str j in
      Ok (Some (Sent { time; src; dst; seq; msg }))
    | "delivered" ->
      let* time, src, dst, seq = wire () in
      let* msg = field "msg" J.to_str j in
      Ok (Some (Delivered { time; src; dst; seq; msg }))
    | "held" ->
      let* time, src, dst, seq = wire () in
      Ok (Some (Held { time; src; dst; seq }))
    | "dropped" ->
      let* time, src, dst, seq = wire () in
      Ok (Some (Dropped { time; src; dst; seq }))
    | "timer" ->
      let* time = time j in
      let* pid = field "pid" J.to_int j in
      let* tag = field "tag" J.to_int j in
      Ok (Some (Timer_fired { time; pid; tag }))
    | "crashed" ->
      let* time = time j in
      let* pid = field "pid" J.to_int j in
      Ok (Some (Crashed { time; pid }))
    | "output" ->
      let* time = time j in
      let* pid = field "pid" J.to_int j in
      let* obs = field "obs" J.to_str j in
      Ok (Some (Output { time; pid; obs = (Thc_util.Codec.decode obs : Obs.t) }))
    | _ -> Ok None (* foreign line (metrics snapshot, ledger, ...) — skip *)
  in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rest ->
    let* h = J.parse header in
    let* kind = field "type" J.to_str h in
    if kind <> "trace" then Error "first line is not a trace header"
    else
      let* n = field "n" J.to_int h in
      let* end_time = Result.map Int64.of_int (field "end_time" J.to_int h) in
      let* byzantine =
        match J.member "byzantine" h with
        | Some (J.List pids) ->
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              match J.to_int p with
              | Some p -> Ok (p :: acc)
              | None -> Error "ill-typed byzantine pid")
            (Ok []) pids
          |> Result.map List.rev
        | _ -> Error "missing byzantine list"
      in
      let* entries =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* j = J.parse line in
            let* entry = entry_of_json j in
            match entry with Some e -> Ok (e :: acc) | None -> Ok acc)
          (Ok []) rest
        |> Result.map List.rev
      in
      Ok { n; byzantine; end_time; entries }

let pp pp_msg ppf t =
  let pp_entry ppf = function
    | Sent { time; src; dst; seq; msg } ->
      Format.fprintf ppf "%8Ld  p%d -> p%d  send#%d  %a" time src dst seq pp_msg
        msg
    | Delivered { time; src; dst; seq; msg } ->
      Format.fprintf ppf "%8Ld  p%d => p%d  dlvr#%d  %a" time src dst seq pp_msg
        msg
    | Held { time; src; dst; seq } ->
      Format.fprintf ppf "%8Ld  p%d -| p%d  held#%d" time src dst seq
    | Dropped { time; src; dst; seq } ->
      Format.fprintf ppf "%8Ld  p%d -x p%d  drop#%d" time src dst seq
    | Timer_fired { time; pid; tag } ->
      Format.fprintf ppf "%8Ld  p%d  timer %d" time pid tag
    | Crashed { time; pid } -> Format.fprintf ppf "%8Ld  p%d  CRASH" time pid
    | Output { time; pid; obs } ->
      Format.fprintf ppf "%8Ld  p%d  OUT %a" time pid Obs.pp obs
  in
  Format.fprintf ppf "@[<v>trace n=%d byz=[%s] end=%Ld@,%a@]" t.n
    (String.concat "," (List.map string_of_int t.byzantine))
    t.end_time
    (Format.pp_print_list pp_entry)
    t.entries
