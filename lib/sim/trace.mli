(** Execution traces.

    The engine records every externally meaningful event; property monitors
    (the executable forms of the paper's definitions) and the
    indistinguishability checks of the separation arguments are all queries
    over these traces. *)

type 'm entry =
  | Sent of { time : int64; src : int; dst : int; seq : int; msg : 'm }
  | Delivered of { time : int64; src : int; dst : int; seq : int; msg : 'm }
  | Held of { time : int64; src : int; dst : int; seq : int }
      (** Message queued on a blocked link. *)
  | Dropped of { time : int64; src : int; dst : int; seq : int }
  | Timer_fired of { time : int64; pid : int; tag : int }
  | Crashed of { time : int64; pid : int }
  | Output of { time : int64; pid : int; obs : Obs.t }

type 'm t = {
  n : int;
  byzantine : int list;  (** Processes marked faulty by the harness. *)
  entries : 'm entry list;  (** In execution order. *)
  end_time : int64;
}

val correct : 'm t -> int -> bool
(** Not marked Byzantine and never crashed. *)

val correct_pids : 'm t -> int list

val outputs : 'm t -> (int64 * int * Obs.t) list
(** All [(time, pid, obs)] outputs in order. *)

val outputs_of : 'm t -> int -> Obs.t list
(** Outputs of one process, in order. *)

val outputs_matching : 'm t -> (int -> Obs.t -> 'a option) -> (int64 * 'a) list
(** Project outputs through a partial function (pid, obs). *)

val decision_of : 'm t -> int -> string option option
(** First [Decided] output of a process: [None] if it never decided,
    [Some d] with [d] the (possibly ⊥ = [None]) decision. *)

val reception_transcript : 'm t -> int -> (int * string) list
(** The local receive history of a process: [(src, canonical msg bytes)] in
    delivery order.  Two runs are indistinguishable to [pid] up to a point
    iff their transcripts (plus timer firings — see
    {!full_local_view}) coincide; the separation scenarios compare these. *)

val full_local_view : 'm t -> int -> string list
(** Receive history interleaved with timer firings, canonical strings. *)

val count : 'm t -> ('m entry -> bool) -> int

val messages_sent : 'm t -> int
(** Total [Sent] entries (message-complexity metric). *)

val messages_delivered : 'm t -> int

val pp : (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
(** Full dump (for debugging small runs). *)

val map_msg : ('m -> 'n) -> 'm t -> 'n t
(** Rewrite the message payloads (e.g. encode for export). *)

val entry_to_json : encode_msg:('m -> string) -> 'm entry -> Thc_obsv.Json.t

val to_jsonl : encode_msg:('m -> string) -> 'm t -> string
(** One-line header (n, byzantine pids, end time) followed by one JSON
    object per entry, in execution order.  [encode_msg] may return
    arbitrary bytes ({!Thc_util.Codec.encode} included): the JSON layer
    escapes them losslessly.  Deterministic — identical traces export to
    identical bytes. *)

val of_jsonl : string -> (string t, string) result
(** Parse a {!to_jsonl} export back into a trace whose messages are the
    encoded strings; lines of unknown [type] (metrics snapshots appended
    to the same file) are skipped.  Round trip:
    [of_jsonl (to_jsonl ~encode_msg t) = Ok (map_msg encode_msg t)]. *)
