(* Calendar queue with a binary-heap fallback for sparse horizons.

   The structure is a classic discrete-event calendar: the near future
   (one "year" = nbuckets * width time units) is divided into
   fixed-width bucket slices, and an event lands in the bucket of its
   slice in O(1).  Events beyond the current year go to an overflow
   binary heap; when the calendar drains, the year re-anchors at the
   overflow minimum and every overflow event inside the new year
   migrates into the buckets.  Both sides are structs-of-arrays (parallel
   int arrays for times and ties, a value array alongside) so the hot
   path touches flat unboxed memory instead of boxed tuple keys.

   Ordering invariants (the simulator depends on all three):

   - bucketed events always precede overflow events: an event is only
     bucketed while its time < year_end, and every overflow event has
     time >= year_end;
   - within the current year, the cursor bucket's events all precede
     later buckets' events: past-time pushes are clamped into the cursor
     bucket, and a bucket strictly before the cursor is necessarily
     empty (the cursor only advances over drained buckets);
   - two co-resident events with equal time are always in the same
     bucket, and [pop] selects the bucket minimum by (time, tie), so the
     caller's tie counter is a total insertion order at equal times. *)

type 'v bucket = {
  mutable bt : int array;  (* times *)
  mutable bs : int array;  (* ties *)
  mutable bv : 'v array;  (* values *)
  mutable blen : int;
}

type 'v t = {
  null : 'v;  (* sentinel written into vacated value slots *)
  nbuckets : int;
  width : int;
  buckets : 'v bucket array;
  mutable year_start : int;  (* inclusive, a multiple of width *)
  mutable ys_slice : int;  (* year_start / width, cached for push *)
  mutable year_end : int;  (* year_start + nbuckets * width *)
  mutable cursor : int;  (* bucket currently being drained *)
  mutable bucketed : int;  (* physical entries across all buckets *)
  (* Overflow min-heap on (time, tie), struct-of-arrays. *)
  mutable ht : int array;
  mutable hs : int array;
  mutable hv : 'v array;
  mutable hlen : int;
  cancelled : (int, unit) Hashtbl.t;  (* ties cancelled, not yet purged *)
  mutable live : int;  (* pushed - popped - cancelled *)
}

let create ?(nbuckets = 256) ?(width = 32) ~null () =
  if nbuckets < 1 then invalid_arg "Calendar_queue.create: nbuckets < 1";
  if width < 1 then invalid_arg "Calendar_queue.create: width < 1";
  {
    null;
    nbuckets;
    width;
    buckets =
      Array.init nbuckets (fun _ ->
          { bt = [||]; bs = [||]; bv = [||]; blen = 0 });
    year_start = 0;
    ys_slice = 0;
    year_end = nbuckets * width;
    cursor = 0;
    bucketed = 0;
    ht = [||];
    hs = [||];
    hv = [||];
    hlen = 0;
    cancelled = Hashtbl.create 16;
    live = 0;
  }

let length t = t.live

let is_empty t = t.live = 0

(* ---------- bucket vectors ---------- *)

let bucket_push t b time tie v =
  let cap = Array.length b.bt in
  if b.blen = cap then begin
    let cap' = if cap = 0 then 8 else cap * 2 in
    let bt = Array.make cap' 0 and bs = Array.make cap' 0 in
    let bv = Array.make cap' t.null in
    Array.blit b.bt 0 bt 0 b.blen;
    Array.blit b.bs 0 bs 0 b.blen;
    Array.blit b.bv 0 bv 0 b.blen;
    b.bt <- bt;
    b.bs <- bs;
    b.bv <- bv
  end;
  b.bt.(b.blen) <- time;
  b.bs.(b.blen) <- tie;
  b.bv.(b.blen) <- v;
  b.blen <- b.blen + 1

(* Swap-remove slot [i]; order within a bucket is irrelevant (pop scans
   for the minimum). *)
let bucket_remove t b i =
  let last = b.blen - 1 in
  b.bt.(i) <- b.bt.(last);
  b.bs.(i) <- b.bs.(last);
  b.bv.(i) <- b.bv.(last);
  b.bv.(last) <- t.null;
  b.blen <- last

(* ---------- overflow heap ---------- *)

let heap_less t i j =
  t.ht.(i) < t.ht.(j) || (t.ht.(i) = t.ht.(j) && t.hs.(i) < t.hs.(j))

let heap_swap t i j =
  let tt = t.ht.(i) and ss = t.hs.(i) and vv = t.hv.(i) in
  t.ht.(i) <- t.ht.(j);
  t.hs.(i) <- t.hs.(j);
  t.hv.(i) <- t.hv.(j);
  t.ht.(j) <- tt;
  t.hs.(j) <- ss;
  t.hv.(j) <- vv

let heap_push t time tie v =
  let cap = Array.length t.ht in
  if t.hlen = cap then begin
    let cap' = if cap = 0 then 8 else cap * 2 in
    let ht = Array.make cap' 0 and hs = Array.make cap' 0 in
    let hv = Array.make cap' t.null in
    Array.blit t.ht 0 ht 0 t.hlen;
    Array.blit t.hs 0 hs 0 t.hlen;
    Array.blit t.hv 0 hv 0 t.hlen;
    t.ht <- ht;
    t.hs <- hs;
    t.hv <- hv
  end;
  t.ht.(t.hlen) <- time;
  t.hs.(t.hlen) <- tie;
  t.hv.(t.hlen) <- v;
  t.hlen <- t.hlen + 1;
  let i = ref (t.hlen - 1) in
  while !i > 0 && heap_less t !i ((!i - 1) / 2) do
    heap_swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(* Remove the heap minimum, returning (time, tie, v). *)
let heap_pop_min t =
  let time = t.ht.(0) and tie = t.hs.(0) and v = t.hv.(0) in
  let last = t.hlen - 1 in
  t.ht.(0) <- t.ht.(last);
  t.hs.(0) <- t.hs.(last);
  t.hv.(0) <- t.hv.(last);
  t.hv.(last) <- t.null;
  t.hlen <- last;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < t.hlen && heap_less t l !m then m := l;
    if r < t.hlen && heap_less t r !m then m := r;
    if !m = !i then continue := false
    else begin
      heap_swap t !i !m;
      i := !m
    end
  done;
  (time, tie, v)

(* ---------- push ---------- *)

let push t ~time ~tie v =
  if time < 0 then invalid_arg "Calendar_queue.push: negative time";
  t.live <- t.live + 1;
  if time >= t.year_end then heap_push t time tie v
  else begin
    (* Slice index relative to the year; anything at or before the
       cursor's slice (including past times) drains via the cursor
       bucket, which pop scans for its (time, tie) minimum anyway. *)
    let rel = (time / t.width) - t.ys_slice in
    let idx = if rel <= t.cursor then t.cursor else rel in
    bucket_push t t.buckets.(idx) time tie v;
    t.bucketed <- t.bucketed + 1
  end

(* ---------- cancel ---------- *)

let cancel t ~tie =
  Hashtbl.replace t.cancelled tie ();
  t.live <- t.live - 1

(* ---------- pop / peek ---------- *)

(* Drop every cancelled entry from bucket [b]. *)
let purge_bucket t b =
  let i = ref 0 in
  while !i < b.blen do
    if Hashtbl.mem t.cancelled b.bs.(!i) then begin
      Hashtbl.remove t.cancelled b.bs.(!i);
      bucket_remove t b !i;
      t.bucketed <- t.bucketed - 1
    end
    else incr i
  done

(* Re-anchor the year at the overflow minimum and migrate every overflow
   event now inside the year into the buckets.  Requires hlen > 0. *)
let re_anchor t =
  let min_time = t.ht.(0) in
  t.ys_slice <- min_time / t.width;
  t.year_start <- t.ys_slice * t.width;
  t.year_end <- t.year_start + (t.nbuckets * t.width);
  t.cursor <- 0;
  while t.hlen > 0 && t.ht.(0) < t.year_end do
    let time, tie, v = heap_pop_min t in
    (* Cancelled entries were already subtracted from [live]; dropping
       them here is the purge. *)
    if Hashtbl.mem t.cancelled tie then Hashtbl.remove t.cancelled tie
    else begin
      let rel = (time / t.width) - t.ys_slice in
      bucket_push t t.buckets.(rel) time tie v;
      t.bucketed <- t.bucketed + 1
    end
  done

(* Advance to the first nonempty, non-cancelled bucket entry and return
   the index of its bucket; the caller then scans it for the minimum.
   Returns -1 when the queue is logically empty. *)
let rec locate t =
  if t.live = 0 then -1
  else if t.bucketed > 0 then begin
    while t.buckets.(t.cursor).blen = 0 do
      t.cursor <- t.cursor + 1
      (* t.bucketed > 0 guarantees a nonempty bucket at or after the
         cursor (buckets before it are drained), so no bounds check. *)
    done;
    let b = t.buckets.(t.cursor) in
    (* The common case has no pending cancellations at all; skip the
       purge scan entirely then. *)
    if Hashtbl.length t.cancelled > 0 then purge_bucket t b;
    if b.blen = 0 then locate t else t.cursor
  end
  else begin
    (* All live entries sit in the overflow heap: shed cancelled heap
       minima, then re-anchor the year there. *)
    while t.hlen > 0 && Hashtbl.mem t.cancelled t.hs.(0) do
      let _, tie, _ = heap_pop_min t in
      Hashtbl.remove t.cancelled tie
    done;
    if t.hlen = 0 then locate t
    else begin
      re_anchor t;
      locate t
    end
  end

(* Index of the (time, tie)-minimum entry of bucket [b]. *)
let bucket_min b =
  let m = ref 0 in
  for i = 1 to b.blen - 1 do
    if
      b.bt.(i) < b.bt.(!m)
      || (b.bt.(i) = b.bt.(!m) && b.bs.(i) < b.bs.(!m))
    then m := i
  done;
  !m

let peek t =
  let idx = locate t in
  if idx < 0 then None
  else
    let b = t.buckets.(idx) in
    let i = bucket_min b in
    Some (b.bt.(i), b.bs.(i), b.bv.(i))

let pop t =
  let idx = locate t in
  if idx < 0 then None
  else begin
    let b = t.buckets.(idx) in
    let i = bucket_min b in
    let time = b.bt.(i) and tie = b.bs.(i) and v = b.bv.(i) in
    bucket_remove t b i;
    t.bucketed <- t.bucketed - 1;
    t.live <- t.live - 1;
    Some (time, tie, v)
  end

let clear t =
  Array.iter
    (fun b ->
      Array.fill b.bv 0 (Array.length b.bv) t.null;
      b.blen <- 0)
    t.buckets;
  Array.fill t.hv 0 (Array.length t.hv) t.null;
  t.hlen <- 0;
  t.bucketed <- 0;
  t.cursor <- 0;
  t.year_start <- 0;
  t.ys_slice <- 0;
  t.year_end <- t.nbuckets * t.width;
  Hashtbl.reset t.cancelled;
  t.live <- 0
