(** Minimal S-expressions: the persistence format for adversary scripts and
    counterexample repro files.

    [Marshal] (see {!Codec}) is compact but neither human-readable nor
    stable across compiler versions, so artifacts that outlive one binary —
    shrunk fault scripts checked into [test/corpus/], {e explore} output a
    developer pastes into a bug report — use this textual form instead.
    The printer is canonical (one space between siblings, no trailing
    whitespace), so equal values render to equal strings and repro files
    diff cleanly. *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t

val int_atom : int -> t
val int64_atom : int64 -> t

val to_int : t -> int
(** Raises [Failure] if the sexp is not an atom that parses as an int. *)

val to_int64 : t -> int64

val to_atom : t -> string
(** Raises [Failure] on a list. *)

val to_string : t -> string
(** Canonical single-line rendering.  Atoms containing whitespace, parens,
    quotes, backslashes or semicolons (or empty atoms) are double-quoted
    with backslash escapes for quote, backslash, newline and tab. *)

val to_string_hum : t -> string
(** Indented multi-line rendering for files meant to be read and edited by
    people (corpus entries).  Parses back to the same value. *)

val of_string : string -> (t, string) result
(** Parse exactly one S-expression.  Whitespace and [;]-to-end-of-line
    comments are ignored around and inside it; anything else before or
    after is an error.  [Error msg] carries a position. *)

val of_string_exn : string -> t
(** Raises [Failure] instead of returning [Error]. *)

val pp : Format.formatter -> t -> unit
