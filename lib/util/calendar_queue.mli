(** Int-keyed calendar queue with a binary-heap fallback.

    The discrete-event simulator's event queue: entries are keyed by an
    integer [time] plus an integer [tie] that the caller keeps strictly
    monotone, so pop order — ascending [(time, tie)] — is a total order
    equal to insertion order at equal times.

    The near future (one "year" of [nbuckets * width] time units) is an
    array of fixed-width bucket slices giving O(1) insertion and
    near-O(1) extraction for the dense in-flight window a simulation
    generates; events past the year fall back to a binary min-heap and
    migrate into the calendar when it re-anchors, so sparse horizons
    (e.g. a lone timer far beyond the in-flight traffic) cost O(log n)
    instead of a walk over empty buckets.  Both sides store keys in flat
    parallel [int] arrays rather than boxed tuples.

    Not thread-safe; all operations are single-domain, like the engine
    that owns it. *)

type 'v t

val create : ?nbuckets:int -> ?width:int -> null:'v -> unit -> 'v t
(** Empty queue.  [width] is the bucket slice in time units (default 32),
    [nbuckets] the slices per year (default 256).  [null] is a sentinel
    value written into vacated slots so the queue never pins a popped
    value against the GC.  Raises [Invalid_argument] if either parameter
    is < 1. *)

val length : 'v t -> int
(** Live entries (pushed, not yet popped or cancelled). *)

val is_empty : 'v t -> bool

val push : 'v t -> time:int -> tie:int -> 'v -> unit
(** Insert an entry.  [time] must be non-negative ([Invalid_argument]
    otherwise); [tie] values must be unique across the queue's lifetime
    — the engine's per-push counter.  A [time] earlier than the current
    extraction point is admitted (it lands in the cursor bucket and is
    still popped in correct [(time, tie)] order); the simulator clamps
    such pushes to [now] before they get here. *)

val peek : 'v t -> (int * int * 'v) option
(** Minimum entry as [(time, tie, v)] without removing it.  May advance
    internal cursors and purge cancelled entries. *)

val pop : 'v t -> (int * int * 'v) option
(** Remove and return the minimum entry. *)

val cancel : 'v t -> tie:int -> unit
(** Cancel the pending entry pushed with [tie].  The entry is dropped
    lazily on a later [pop]/[peek] sweep; [length] reflects the
    cancellation immediately.  The tie {e must} identify an entry
    currently in the queue (pushed, not yet popped or cancelled) —
    cancelling anything else corrupts the length accounting. *)

val clear : 'v t -> unit
(** Drop every entry and reset the year to time 0. *)
