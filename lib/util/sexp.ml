type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l
let int_atom i = Atom (string_of_int i)
let int64_atom i = Atom (Int64.to_string i)

let to_atom = function
  | Atom s -> s
  | List _ -> failwith "Sexp.to_atom: expected atom, got list"

let to_int t =
  let s = to_atom t in
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Sexp.to_int: %S is not an int" s)

let to_int64 t =
  let s = to_atom t in
  match Int64.of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Sexp.to_int64: %S is not an int64" s)

(* --- printing ----------------------------------------------------------- *)

let needs_quoting s =
  String.length s = 0
  || String.exists
       (function
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_string s = if needs_quoting s then quote s else s

let rec to_string = function
  | Atom s -> atom_string s
  | List l -> "(" ^ String.concat " " (List.map to_string l) ^ ")"

(* Human layout: a list whose rendering fits in one modest line stays flat;
   otherwise the head stays on the opening line and each remaining child is
   indented one level. *)
let to_string_hum t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    let flat = to_string t in
    if String.length flat + indent <= 72 then Buffer.add_string buf flat
    else
      match t with
      | Atom _ -> Buffer.add_string buf flat
      | List [] -> Buffer.add_string buf "()"
      | List (hd :: tl) ->
        Buffer.add_char buf '(';
        go (indent + 1) hd;
        List.iter
          (fun child ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (indent + 2) ' ');
            go (indent + 2) child)
          tl;
        Buffer.add_char buf ')'
  in
  go 0 t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_blank ()
    | Some ';' ->
      while !pos < n && input.[!pos] <> '\n' do
        advance ()
      done;
      skip_blank ()
    | _ -> ()
  in
  let parse_quoted () =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some c -> error (Printf.sprintf "bad escape '\\%c'" c)
        | None -> error "unterminated escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None ->
        stop := true
      | Some _ -> advance ()
    done;
    if !pos = start then error "expected atom";
    Atom (String.sub input start (!pos - start))
  in
  let rec parse_one () =
    skip_blank ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '(' ->
      advance ();
      let children = ref [] in
      let rec loop () =
        skip_blank ();
        match peek () with
        | None -> error "unterminated list"
        | Some ')' -> advance ()
        | Some _ ->
          children := parse_one () :: !children;
          loop ()
      in
      loop ();
      List (List.rev !children)
    | Some ')' -> error "unexpected ')'"
    | Some '"' -> parse_quoted ()
    | Some _ -> parse_bare ()
  in
  match
    let t = parse_one () in
    skip_blank ();
    if !pos <> n then error "trailing input";
    t
  with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> failwith ("Sexp.of_string: " ^ msg)
