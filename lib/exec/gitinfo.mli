(** The source revision baked into export headers.

    [git describe --always --dirty] of the working tree, computed once per
    process and cached, ["unknown"] when git or the repository is absent.
    Stable within a checkout, so back-to-back runs of the same build still
    produce byte-identical exports. *)

val describe : unit -> string
