(** The one sweep shape every fan-out driver in this repository reduces
    to: a list of keys, a pure [run_one : key -> outcome], and a
    [summarize : outcome list -> summary] over the outcomes {e in key
    order}.  {!Check.Sweep}, {!Byz.Matrix}, {!Workload.Loadtest} and the
    bench tables all instantiate this signature, which is what lets one
    {!Pool} give them all the same [--jobs N] semantics: identical keys +
    identical [run_one] ⇒ identical summary, at any parallelism. *)

type ('k, 'o, 's) t = {
  name : string;  (** For metrics names and failure messages. *)
  keys : 'k list;
  run_one : 'k -> 'o;  (** Pure: forked workers run it on heap copies. *)
  summarize : 'o list -> 's;  (** Receives outcomes in key order. *)
}

exception
  Job_failed of {
    runner : string;
    index : int;
    reason : string;
  }
(** Raised by {!run} when a job raised or its worker died.  Sweep jobs are
    deterministic pure functions, so a failure is a bug (or a killed
    worker), never load-dependent — surfacing it beats folding a hole into
    the summary. *)

val outcomes :
  ?jobs:int ->
  ?on_outcome:(int -> 'o -> unit) ->
  ?stats:(Pool.stats -> unit) ->
  ('k, 'o, 's) t ->
  'o list
(** The raw outcome list, in key order.  [on_outcome] fires once per key
    in ascending key order (so progress output is byte-identical at every
    [jobs] value).  [stats] receives the pool's wall-clock/utilization
    accounting.  Raises {!Job_failed} on the first (lowest-key) failed
    job. *)

val run :
  ?jobs:int ->
  ?on_outcome:(int -> 'o -> unit) ->
  ?stats:(Pool.stats -> unit) ->
  ('k, 'o, 's) t ->
  's
(** [summarize] applied to {!outcomes}. *)
