type ('k, 'o, 's) t = {
  name : string;
  keys : 'k list;
  run_one : 'k -> 'o;
  summarize : 'o list -> 's;
}

exception
  Job_failed of {
    runner : string;
    index : int;
    reason : string;
  }

let () =
  Printexc.register_printer (function
    | Job_failed { runner; index; reason } ->
      Some (Printf.sprintf "Job_failed(%s: key %d: %s)" runner index reason)
    | _ -> None)

let outcomes ?jobs ?on_outcome ?stats r =
  let on_result =
    Option.map
      (fun g i -> function Ok o -> g i o | Error _ -> ())
      on_outcome
  in
  let results, st = Pool.map_stats ?jobs ?on_result r.run_one r.keys in
  Option.iter (fun f -> f st) stats;
  List.mapi
    (fun index -> function
      | Ok o -> o
      | Error reason -> raise (Job_failed { runner = r.name; index; reason }))
    results

let run ?jobs ?on_outcome ?stats r =
  r.summarize (outcomes ?jobs ?on_outcome ?stats r)
