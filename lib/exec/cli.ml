open Cmdliner

let runs ?(default = 1) ~doc () =
  Arg.(value & opt int default & info [ "runs" ] ~docv:"N" ~doc)

let seed ?(default = 1L) () =
  Arg.(
    value & opt int64 default
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Base RNG seed; sweeps use $(docv), $(docv)+1, ….")

let export ~doc () =
  Arg.(value & opt (some string) None & info [ "export" ] ~docv:"FILE" ~doc)

let top ?(default = 5) ~doc () =
  Arg.(value & opt int default & info [ "top" ] ~docv:"N" ~doc)

let jobs () =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker processes for the sweep; 1 runs sequentially.  Results \
           are merged in key order, so summaries and exports are \
           byte-identical at every value.")

let stats_reporter ~jobs st =
  if jobs > 1 then begin
    let registry = Thc_obsv.Metrics.create () in
    Pool.record registry ~name:"exec" st;
    Format.eprintf "%a@.%a@." Pool.pp_stats st Thc_obsv.Metrics.pp_snapshot
      (Thc_obsv.Metrics.snapshot registry)
  end
