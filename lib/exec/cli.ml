open Cmdliner

let runs ?(default = 1) ~doc () =
  Arg.(value & opt int default & info [ "runs" ] ~docv:"N" ~doc)

let seed ?(default = 1L) () =
  Arg.(
    value & opt int64 default
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Base RNG seed; sweeps use $(docv), $(docv)+1, ….")

let export ~doc () =
  Arg.(value & opt (some string) None & info [ "export" ] ~docv:"FILE" ~doc)

let top ?(default = 5) ~doc () =
  Arg.(value & opt int default & info [ "top" ] ~docv:"N" ~doc)

let jobs () =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker processes for the sweep; 1 runs sequentially.  Results \
           are merged in key order, so summaries and exports are \
           byte-identical at every value.")

let network_conv =
  let parse s =
    match Thc_network.Model.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg (Printf.sprintf "bad network term %S: %s" s e))
  in
  let print ppf m = Format.pp_print_string ppf (Thc_network.Model.tag m) in
  Arg.conv (parse, print)

let network () =
  Arg.(
    value
    & opt (some network_conv) None
    & info [ "network" ] ~docv:"MODEL"
        ~doc:
          "Network model: a preset (uniform, lan, wan, geo2, geo3, asym, \
           lossy), a topology s-expression, or either followed by rational \
           strategies ($(b,+race:ALPHA), $(b,+lazy:ALPHA,SLACK)).  Omitted, \
           the command's legacy uniform clique is kept and output is \
           byte-identical to earlier releases.  See NETWORKS.md.")

let stats_reporter ~jobs st =
  if jobs > 1 then begin
    let registry = Thc_obsv.Metrics.create () in
    Pool.record registry ~name:"exec" st;
    Format.eprintf "%a@.%a@." Pool.pp_stats st Thc_obsv.Metrics.pp_snapshot
      (Thc_obsv.Metrics.snapshot registry)
  end
