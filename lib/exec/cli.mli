(** The shared sweep flags, spelled once.

    Every sweep-shaped command ([thc explore], [thc attack],
    [thc loadtest], the bench binary) takes the same four knobs; this
    module is the single definition of their names, defaults and
    documentation so the surfaces cannot drift apart again:

    - [--runs N] — campaign size (seeds swept from the base seed),
    - [--seed S] — base RNG seed, default 1,
    - [--export FILE] — write the run's JSONL export,
    - [--jobs N] — worker processes, default 1; output is byte-identical
      at every value. *)

val runs : ?default:int -> doc:string -> unit -> int Cmdliner.Term.t

val seed : ?default:int64 -> unit -> int64 Cmdliner.Term.t
(** [--seed] with the repository-wide default of [1L]. *)

val export : doc:string -> unit -> string option Cmdliner.Term.t
(** [--export FILE]. *)

val top : ?default:int -> doc:string -> unit -> int Cmdliner.Term.t
(** [--top N] — how many worst-case items a drill-down shows (slowest
    requests in [thc trace], stalled spans in [thc attack]). *)

val jobs : unit -> int Cmdliner.Term.t
(** [--jobs N], default 1 (sequential).  Values above 1 fork worker
    processes; summaries and exports stay byte-identical. *)

val network : unit -> Thc_network.Model.t option Cmdliner.Term.t
(** [--network MODEL] — the shared network-model flag: a preset name
    (uniform, lan, wan, geo2, geo3, asym, lossy), a
    {!Thc_network.Topology} s-expression, or either followed by
    [+race:ALPHA] / [+lazy:ALPHA,SLACK] rational-strategy terms
    ({!Thc_network.Model.of_string}).  [None] (the default) keeps each
    command's legacy uniform clique, byte-identical to pre-S7 output.
    Documented per-model in NETWORKS.md. *)

val stats_reporter : jobs:int -> Pool.stats -> unit
(** The standard way a CLI surfaces pool accounting: when [jobs > 1],
    record the run into a fresh {!Thc_obsv.Metrics} registry and print
    the one-line summary plus the registry snapshot to {e stderr} (never
    stdout — wall-clock numbers must not contaminate deterministic
    output). *)
