let cached = ref None

let compute () =
  match
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    (line, status)
  with
  | line, Unix.WEXITED 0 when String.trim line <> "" -> String.trim line
  | _ | (exception _) -> "unknown"

let describe () =
  match !cached with
  | Some v -> v
  | None ->
    let v = compute () in
    cached := Some v;
    v
