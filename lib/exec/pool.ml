let can_fork = not Sys.win32

type stats = {
  requested_jobs : int;
  workers : int;
  keys : int;
  failed : int;
  wall_us : int64;
  busy_us : int64 array;
  keys_per_worker : int array;
}

let now_us () = Int64.of_float (Unix.gettimeofday () *. 1e6)

let utilization s =
  if s.workers = 0 || Int64.compare s.wall_us 0L <= 0 then 0.0
  else
    let busy = Array.fold_left Int64.add 0L s.busy_us in
    Int64.to_float busy /. (float_of_int s.workers *. Int64.to_float s.wall_us)

let pp_stats ppf s =
  if s.workers = 0 then
    Format.fprintf ppf "[exec] %d key(s) sequentially in %.2fs wall" s.keys
      (Int64.to_float s.wall_us /. 1e6)
  else
    Format.fprintf ppf
      "[exec] %d key(s) over %d worker(s) in %.2fs wall, %.0f%% utilization%s"
      s.keys s.workers
      (Int64.to_float s.wall_us /. 1e6)
      (100.0 *. utilization s)
      (if s.failed > 0 then Printf.sprintf ", %d FAILED" s.failed else "")

let record registry ~name s =
  let open Thc_obsv.Metrics in
  let c k v = add (counter registry (name ^ "." ^ k)) v in
  let g k v = set_gauge (gauge registry (name ^ "." ^ k)) v in
  c "keys" s.keys;
  c "failed" s.failed;
  g "workers" s.workers;
  g "wall_us" (Int64.to_int s.wall_us);
  g "utilization_pct" (int_of_float (100.0 *. utilization s));
  Array.iteri
    (fun w busy ->
      g (Printf.sprintf "worker%d.busy_us" w) (Int64.to_int busy);
      c (Printf.sprintf "worker%d.keys" w) s.keys_per_worker.(w))
    s.busy_us

(* --- sequential fallback ------------------------------------------------- *)

let run_job f k =
  match f k with
  | r -> Ok r
  | exception e -> Error (Printexc.to_string e)

let map_sequential ~requested_jobs ?on_result f keys =
  let t0 = now_us () in
  let failed = ref 0 in
  let results =
    List.mapi
      (fun i k ->
        let r = run_job f k in
        (match r with Error _ -> incr failed | Ok _ -> ());
        Option.iter (fun g -> g i r) on_result;
        r)
      keys
  in
  ( results,
    {
      requested_jobs;
      workers = 0;
      keys = List.length keys;
      failed = !failed;
      wall_us = Int64.sub (now_us ()) t0;
      busy_us = [||];
      keys_per_worker = [||];
    } )

(* --- pipe framing --------------------------------------------------------- *)

(* A worker streams one frame per completed key:
     4-byte big-endian payload length, then Marshal of
     (key index, job result, busy_us for that job).
   Marshalling happens in the same executable image on both ends, so the
   representation is trivially compatible. *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd bytes !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let frame payload =
  let body = Marshal.to_bytes payload [] in
  let len = Bytes.length body in
  let out = Bytes.create (4 + len) in
  Bytes.set_int32_be out 0 (Int32.of_int len);
  Bytes.blit body 0 out 4 len;
  out

(* --- worker --------------------------------------------------------------- *)

let worker_main fd f assigned =
  List.iter
    (fun (i, k) ->
      let t0 = now_us () in
      let r = run_job f k in
      let busy = Int64.sub (now_us ()) t0 in
      (* An outcome that cannot be marshalled (a closure smuggled into the
         result type) degrades to a failed job, not a crashed worker. *)
      let payload =
        match frame (i, r, busy) with
        | fr -> fr
        | exception e ->
          frame (i, (Error (Printexc.to_string e) : (_, string) result), busy)
      in
      write_all fd payload)
    assigned

(* --- parent read loop ------------------------------------------------------ *)

type channel = {
  fd : Unix.file_descr;
  pid : int;
  worker : int;
  assigned : int list;  (** Key indices this worker owns. *)
  mutable pending : Bytes.t;  (** Unparsed tail of the stream. *)
  mutable open_ : bool;
}

let status_string = function
  | Unix.WEXITED 0 -> "exited before finishing its keys"
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let drain_frames ch ~deliver =
  let buf = ch.pending in
  let len = Bytes.length buf in
  let off = ref 0 in
  let continue = ref true in
  while !continue do
    if len - !off >= 4 then begin
      let flen = Int32.to_int (Bytes.get_int32_be buf !off) in
      if len - !off - 4 >= flen then begin
        let (i, r, busy) : int * ('r, string) result * int64 =
          Marshal.from_bytes buf (!off + 4)
        in
        deliver ch.worker i r busy;
        off := !off + 4 + flen
      end
      else continue := false
    end
    else continue := false
  done;
  if !off > 0 then ch.pending <- Bytes.sub buf !off (len - !off)

let map_forked ~jobs ?on_result f keys =
  let t0 = now_us () in
  let key_arr = Array.of_list keys in
  let n = Array.length key_arr in
  let workers = max 1 (min jobs n) in
  let results : ('r, string) result option array = Array.make n None in
  let busy_us = Array.make workers 0L in
  let keys_per_worker = Array.make workers 0 in
  (* Deliver on_result strictly in key order: fire for the contiguous
     prefix of filled slots each time the prefix grows. *)
  let next_to_report = ref 0 in
  let advance () =
    while !next_to_report < n && results.(!next_to_report) <> None do
      (match (on_result, results.(!next_to_report)) with
      | Some g, Some r -> g !next_to_report r
      | _ -> ());
      incr next_to_report
    done
  in
  (* Forking with unflushed channel buffers would let a dying child replay
     buffered parent output; flush first, and children exit via [_exit]. *)
  flush stdout;
  flush stderr;
  let channels =
    List.init workers (fun w ->
        let assigned = ref [] in
        for i = n - 1 downto 0 do
          if i mod workers = w then assigned := i :: !assigned
        done;
        let rd, wr = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 ->
          Unix.close rd;
          (match
             worker_main wr f
               (List.map (fun i -> (i, key_arr.(i))) !assigned)
           with
          | () -> ()
          | exception _ -> ());
          (try Unix.close wr with Unix.Unix_error _ -> ());
          Unix._exit 0
        | pid ->
          Unix.close wr;
          { fd = rd; pid; worker = w; assigned = !assigned;
            pending = Bytes.create 0; open_ = true })
  in
  let deliver w i r busy =
    if results.(i) = None then begin
      results.(i) <- Some r;
      busy_us.(w) <- Int64.add busy_us.(w) busy;
      keys_per_worker.(w) <- keys_per_worker.(w) + 1
    end
  in
  let chunk = Bytes.create 65536 in
  let live () = List.filter (fun ch -> ch.open_) channels in
  let close_channel ch =
    ch.open_ <- false;
    (try Unix.close ch.fd with Unix.Unix_error _ -> ());
    let _, status = Unix.waitpid [] ch.pid in
    (* Whatever the worker never reported is a failed job, attributed to
       how the process died — the pool never hangs on a killed child. *)
    List.iter
      (fun i ->
        if results.(i) = None then
          results.(i) <-
            Some (Error (Printf.sprintf "worker %d %s" ch.worker
                           (status_string status))))
      ch.assigned
  in
  while live () <> [] do
    let fds = List.map (fun ch -> ch.fd) (live ()) in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun ch ->
          if ch.open_ && List.mem ch.fd ready then
            match Unix.read ch.fd chunk 0 (Bytes.length chunk) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | 0 -> close_channel ch
            | got ->
              ch.pending <-
                Bytes.cat ch.pending (Bytes.sub chunk 0 got);
              drain_frames ch ~deliver)
        channels;
      advance ()
  done;
  advance ();
  let results =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> Error "worker lost the key")
         results)
  in
  let failed =
    List.length (List.filter (function Error _ -> true | Ok _ -> false) results)
  in
  ( results,
    {
      requested_jobs = jobs;
      workers;
      keys = n;
      failed;
      wall_us = Int64.sub (now_us ()) t0;
      busy_us;
      keys_per_worker;
    } )

let map_stats ?(jobs = 1) ?on_result f keys =
  let jobs = max 1 jobs in
  if jobs <= 1 || List.length keys <= 1 || not can_fork then
    map_sequential ~requested_jobs:jobs ?on_result f keys
  else map_forked ~jobs ?on_result f keys

let map ?jobs ?on_result f keys = fst (map_stats ?jobs ?on_result f keys)
