(** Process-pool parallel execution over [Unix.fork].

    A pool maps a pure job function over a list of keys, fanning the work
    out to forked worker processes that stream results back over pipes.
    The merge is {e deterministic}: results come back in key order no
    matter which worker finishes first, and the optional [on_result] hook
    fires in key order too, so a caller that prints progress or counts
    failures produces byte-identical output at every [jobs] value.  That
    property is what lets the sweep drivers expose [--jobs N] without
    giving up the repository's reproducibility invariant.

    Jobs must be pure functions of their key (every sweep driver in this
    repository already is): a forked child sees a copy-on-write snapshot
    of the parent heap, and nothing it mutates is visible back in the
    parent except the marshalled outcome.

    Failure is data, not a hang: a job that raises reports
    [Error (Printexc.to_string exn)], and a worker that dies outright
    (killed, segfault, [exit]) turns every one of its unfinished keys into
    an [Error] naming the exit status.  The pool always returns one result
    per key. *)

val can_fork : bool
(** Whether this platform supports [Unix.fork] (false on Windows).  When
    false every map runs sequentially whatever [jobs] says. *)

type stats = {
  requested_jobs : int;  (** The [jobs] argument, clamped to ≥ 1. *)
  workers : int;  (** Forked workers; 0 when the map ran sequentially. *)
  keys : int;
  failed : int;  (** Keys whose result is [Error _]. *)
  wall_us : int64;  (** Real (not virtual) elapsed time for the map. *)
  busy_us : int64 array;  (** Per-worker time spent inside jobs. *)
  keys_per_worker : int array;  (** Per-worker completed-key counts. *)
}

val utilization : stats -> float
(** Aggregate worker busy time over [workers * wall] (0 when
    sequential) — how well the fan-out kept its workers fed. *)

val pp_stats : Format.formatter -> stats -> unit
(** One human line: keys, workers, wall clock, utilization.  Wall-clock
    values are real time — print this to stderr, never into an export. *)

val record : Thc_obsv.Metrics.t -> name:string -> stats -> unit
(** Report the run into a metrics registry under [name]: counters
    [<name>.keys] / [<name>.failed], gauges [<name>.workers] /
    [<name>.wall_us] / [<name>.utilization_pct], and per-worker
    [<name>.worker<i>.keys] / [<name>.worker<i>.busy_us]. *)

val map :
  ?jobs:int ->
  ?on_result:(int -> ('r, string) result -> unit) ->
  ('k -> 'r) ->
  'k list ->
  ('r, string) result list
(** [map ~jobs f keys] is [f] applied to every key, in key order.  With
    [jobs <= 1], an empty or singleton key list, or no fork support, it
    runs in-process; otherwise [min jobs (length keys)] workers are forked
    and keys are striped across them.  [on_result i r] is invoked exactly
    once per key, in ascending key order (result [i] is delivered only
    after results [0..i-1]), whatever order workers finish in. *)

val map_stats :
  ?jobs:int ->
  ?on_result:(int -> ('r, string) result -> unit) ->
  ('k -> 'r) ->
  'k list ->
  ('r, string) result list * stats
(** [map] plus the wall-clock/utilization accounting of the run. *)
