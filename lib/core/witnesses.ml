type t = {
  id : string;
  claim : string;
  run : unit -> bool * string;
}

(* --- shared scaffolding -------------------------------------------------- *)

let seeds = [ 1L; 7L; 42L; 1337L; 99991L ]

let fast = Thc_sim.Delay.Uniform (10L, 400L)

(* A small round application exercising three rounds of chatter. *)
let chatter_app pid ~rounds : Thc_rounds.Round_app.app =
  {
    first_payload = (fun _ -> Some (Printf.sprintf "r1-p%d" pid));
    on_receive = (fun _ ~round:_ ~from:_ _ -> ());
    on_round_check =
      (fun h ~round ->
        if round >= rounds then Thc_rounds.Round_app.Stop
        else
          Thc_rounds.Round_app.Advance
            (Some (Printf.sprintf "r%d-p%d" (round + 1) h.self)));
  }

let uni_driver_witness ~id ~claim ~driver_of =
  let run () =
    let n = 5 in
    let failures = ref [] in
    List.iter
      (fun seed ->
        let rng = Thc_util.Rng.create seed in
        let keyring = Thc_crypto.Keyring.create rng ~n in
        let net = Thc_sim.Net.create ~n ~default:fast in
        let engine = Thc_sim.Engine.create ~seed ~n ~net () in
        let install = driver_of ~n ~keyring in
        for pid = 0 to n - 1 do
          Thc_sim.Engine.set_behavior engine pid
            (install ~pid (chatter_app pid ~rounds:3))
        done;
        let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
        let violations = Thc_rounds.Directionality.check_unidirectional trace in
        let all_done =
          List.for_all
            (fun pid ->
              Thc_rounds.Directionality.rounds_completed trace ~pid >= 3)
            (List.init n (fun i -> i))
        in
        if violations <> [] || not all_done then
          failures := seed :: !failures)
      seeds;
    match !failures with
    | [] ->
      (true, Printf.sprintf "%d seeds, 3 rounds, no violations" (List.length seeds))
    | bad -> (false, Printf.sprintf "%d failing seed(s)" (List.length bad))
  in
  { id; claim; run }

(* --- the witnesses -------------------------------------------------------- *)

let uni_from_swmr =
  uni_driver_witness ~id:"uni-from-swmr"
    ~claim:"SWMR registers implement unidirectional rounds (paper 3.2)"
    ~driver_of:(fun ~n ~keyring ->
      let registers = Thc_sharedmem.Swmr.log_array ~n in
      fun ~pid app ->
        Thc_rounds.Swmr_rounds.behavior ~registers
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          app)

let uni_from_sticky =
  uni_driver_witness ~id:"uni-from-sticky"
    ~claim:"sticky bits implement unidirectional rounds (paper 3.2)"
    ~driver_of:(fun ~n ~keyring ->
      let board = Thc_rounds.Sticky_rounds.create_board ~n in
      fun ~pid app ->
        Thc_rounds.Sticky_rounds.behavior ~board
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          app)

let uni_from_peats =
  uni_driver_witness ~id:"uni-from-peats"
    ~claim:"PEATS implements unidirectional rounds (paper 3.2)"
    ~driver_of:(fun ~n ~keyring ->
      let space =
        Thc_sharedmem.Peats.create
          ~policy:Thc_sharedmem.Peats.owned_field_policy
      in
      fun ~pid app ->
        Thc_rounds.Peats_rounds.behavior ~space ~n
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          app)

let uni_from_rb_f1 =
  {
    id = "uni-from-rb-f1";
    claim =
      "reliable broadcast implements unidirectional rounds when f=1, n>=3 \
       (paper appendix)";
    run =
      (fun () ->
        let n = 4 in
        let ok = ref true in
        List.iter
          (fun seed ->
            let rng = Thc_util.Rng.create seed in
            let keyring = Thc_crypto.Keyring.create rng ~n in
            let net = Thc_sim.Net.create ~n ~default:fast in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            for pid = 0 to n - 1 do
              Thc_sim.Engine.set_behavior engine pid
                (Thc_rounds.Rb_rounds_f1.behavior ~keyring
                   ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                   (chatter_app pid ~rounds:2))
            done;
            (* Total partition between 0 and 1: the protocol must relay
               their values through the rest. *)
            Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Block;
            Thc_sim.Engine.set_link engine ~src:1 ~dst:0 Thc_sim.Net.Block;
            let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
            if Thc_rounds.Directionality.check_unidirectional trace <> [] then
              ok := false;
            if
              not
                (List.for_all
                   (fun pid ->
                     Thc_rounds.Directionality.rounds_completed trace ~pid >= 2)
                   [ 0; 1; 2; 3 ])
            then ok := false)
          seeds;
        (!ok, "partitioned pair relayed through Q across seeds"))
  }

let srb_from_uni =
  {
    id = "srb-from-uni";
    claim =
      "unidirectional rounds implement SRB with n >= 2t+1 (paper Algorithm 1)";
    run =
      (fun () ->
        let n = 5 and faults = 2 in
        let ok = ref true in
        let detail = ref "" in
        List.iter
          (fun seed ->
            let rng = Thc_util.Rng.create seed in
            let keyring = Thc_crypto.Keyring.create rng ~n in
            let net = Thc_sim.Net.create ~n ~default:fast in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            let registers = Thc_sharedmem.Swmr.log_array ~n in
            let srbs =
              Array.init n (fun pid ->
                  Thc_broadcast.Srb_from_uni.create ~keyring
                    ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                    ~sender:0 ~faults)
            in
            List.iter
              (Thc_broadcast.Srb_from_uni.broadcast srbs.(0))
              [ "alpha"; "beta"; "gamma" ];
            for pid = 0 to n - 1 do
              Thc_sim.Engine.set_behavior engine pid
                (Thc_rounds.Swmr_rounds.behavior ~registers
                   ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                   (Thc_broadcast.Srb_from_uni.app srbs.(pid)))
            done;
            let trace =
              Thc_sim.Engine.run ~until:20_000_000L ~max_events:10_000_000
                engine
            in
            let violations = Thc_broadcast.Srb_spec.check trace ~sender:0 in
            let complete =
              List.for_all
                (fun pid ->
                  List.length
                    (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid)
                  = 3)
                (List.init n (fun i -> i))
            in
            if violations <> [] || not complete then begin
              ok := false;
              detail := Printf.sprintf "seed %Ld failed" seed
            end)
          seeds;
        ((!ok), if !ok then "all four SRB properties hold, 3 msgs delivered" else !detail))
  }

let trinc_from_srb =
  {
    id = "trinc-from-srb";
    claim = "SRB implements the TrInc interface (paper Theorem 1)";
    run =
      (fun () ->
        let n = 4 in
        let ok = ref true in
        List.iter
          (fun seed ->
            let hubs = Array.init n (fun sender -> Thc_broadcast.Ideal_srb.hub ~sender) in
            let states =
              Array.init n (fun self ->
                  Thc_broadcast.Trinc_from_srb.create ~hubs ~self)
            in
            let net = Thc_sim.Net.create ~n ~default:fast in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            for pid = 0 to n - 1 do
              let attest_plan =
                if pid = 1 then
                  [ (100L, 5, "m1"); (200L, 9, "m2"); (300L, 9, "rejected") ]
                else []
              in
              Thc_sim.Engine.set_behavior engine pid
                (Thc_broadcast.Trinc_from_srb.behavior states.(pid) ~attest_plan)
            done;
            let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
            (* Recover the attestations p1 produced. *)
            let attestations =
              List.filter_map
                (fun obs ->
                  match (obs : Thc_sim.Obs.t) with
                  | Attested { value; _ } ->
                    Some (Thc_broadcast.Trinc_from_srb.decode_attestation value)
                  | _ -> None)
                (Thc_sim.Trace.outputs_of trace 1)
            in
            (match attestations with
            | [ a1; a2; a3 ] ->
              for pid = 0 to n - 1 do
                (* Property 1: correctly attested values check true. *)
                if not (Thc_broadcast.Trinc_from_srb.check states.(pid) a1 ~id:1)
                then ok := false;
                if not (Thc_broadcast.Trinc_from_srb.check states.(pid) a2 ~id:1)
                then ok := false;
                (* The non-monotone third attest (counter 9 again) is
                   rejected by every checker. *)
                if Thc_broadcast.Trinc_from_srb.check states.(pid) a3 ~id:1 then
                  ok := false;
                (* Property 2: fabricated attestations check false. *)
                let forged =
                  { a1 with Thc_broadcast.Trinc_from_srb.message = "forged" }
                in
                if Thc_broadcast.Trinc_from_srb.check states.(pid) forged ~id:1
                then ok := false
              done
            | _ -> ok := false))
          seeds;
        (!ok, "attest/check round-trips; duplicates and forgeries rejected"))
  }

let srb_from_trinc =
  {
    id = "srb-from-trinc";
    claim = "TrInc implements SRB (trusted-log direction)";
    run =
      (fun () ->
        let n = 4 in
        let ok = ref true in
        List.iter
          (fun seed ->
            let rng = Thc_util.Rng.create seed in
            let world = Thc_hardware.Trinc.create_world rng ~n in
            let net = Thc_sim.Net.create ~n ~default:fast in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            for pid = 0 to n - 1 do
              let trinket = Some (Thc_hardware.Trinc.trinket world ~owner:pid) in
              let st =
                Thc_broadcast.Srb_from_trinc.create ~world ~trinket ~n ~self:pid
              in
              let broadcast_plan =
                if pid = 0 then [ (100L, "x"); (150L, "y"); (200L, "z") ]
                else []
              in
              Thc_sim.Engine.set_behavior engine pid
                (Thc_broadcast.Srb_from_trinc.behavior st ~broadcast_plan)
            done;
            let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
            if Thc_broadcast.Srb_spec.check trace ~sender:0 <> [] then
              ok := false;
            if
              not
                (List.for_all
                   (fun pid ->
                     List.length
                       (Thc_broadcast.Srb_spec.deliveries trace ~sender:0 ~pid)
                     = 3)
                   (List.init n (fun i -> i)))
            then ok := false)
          seeds;
        (!ok, "dense attested chains deliver in order at all processes"))
  }

let a2m_from_trinc =
  {
    id = "a2m-from-trinc";
    claim = "TrInc implements the A2M interface (Levin et al. reduction)";
    run =
      (fun () ->
        let rng = Thc_util.Rng.create 5L in
        let world = Thc_hardware.Trinc.create_world rng ~n:2 in
        let device =
          Thc_hardware.A2m_from_trinc.create
            (Thc_hardware.Trinc.trinket world ~owner:0)
        in
        let log1 = Thc_hardware.A2m_from_trinc.create_log device in
        let log2 = Thc_hardware.A2m_from_trinc.create_log device in
        let ok = ref true in
        if Thc_hardware.A2m_from_trinc.append device ~log:log1 "a" <> Some 1 then
          ok := false;
        if Thc_hardware.A2m_from_trinc.append device ~log:log2 "b" <> Some 1 then
          ok := false;
        if Thc_hardware.A2m_from_trinc.append device ~log:log1 "c" <> Some 2 then
          ok := false;
        let chain = Thc_hardware.A2m_from_trinc.chain device in
        (match
           Thc_hardware.A2m_from_trinc.check_chain world ~owner:0 chain
         with
        | Some [ (l1, 1, "a"); (l2, 1, "b"); (l1', 2, "c") ]
          when l1 = log1 && l2 = log2 && l1' = log1 ->
          ()
        | Some _ | None -> ok := false);
        (* Tampering with the chain is detected. *)
        (match chain with
        | first :: rest ->
          if
            Thc_hardware.A2m_from_trinc.check_chain world ~owner:0 rest <> None
          then ok := false;
          if
            Thc_hardware.A2m_from_trinc.check_chain world ~owner:0
              (first :: first :: rest)
            <> None
          then ok := false
        | [] -> ok := false);
        (!ok, "logs reconstruct from the dense chain; tampering detected"))
  }

let trinc_from_enclave =
  {
    id = "trinc-from-enclave";
    claim = "an attested enclave implements TrInc (expressiveness subsumes)";
    run =
      (fun () ->
        let rng = Thc_util.Rng.create 6L in
        let world = Thc_hardware.Enclave.create_world rng ~n:1 in
        (* The enclave program IS the trinket: state = last counter. *)
        let step last (counter, message) =
          if counter > last then (counter, `Attested (last, counter, message))
          else (last, `Rejected)
        in
        let enclave =
          Thc_hardware.Enclave.enclave world ~owner:0 ~init:0 ~step
        in
        let out1, att1 = Thc_hardware.Enclave.invoke enclave (3, "m1") in
        let out2, att2 = Thc_hardware.Enclave.invoke enclave (2, "late") in
        let out3, att3 = Thc_hardware.Enclave.invoke enclave (7, "m2") in
        let ok =
          out1 = `Attested (0, 3, "m1")
          && out2 = `Rejected
          && out3 = `Attested (3, 7, "m2")
          && Thc_hardware.Enclave.check world att1 ~id:0
          && Thc_hardware.Enclave.check world att2 ~id:0
          && Thc_hardware.Enclave.check world att3 ~id:0
          && Thc_hardware.Enclave.check_chain world [ att1; att2; att3 ] ~id:0
          && not (Thc_hardware.Enclave.check_chain world [ att1; att3 ] ~id:0)
        in
        (ok, "monotone-counter program runs attested; replays detected"))
  }

let very_weak_from_uni =
  {
    id = "very-weak-from-uni";
    claim = "unidirectional rounds solve very weak agreement with n > f";
    run =
      (fun () ->
        let n = 4 in
        let ok = ref true in
        List.iter
          (fun seed ->
            (* Common-input run: everyone must decide the input. *)
            let run inputs =
              let rng = Thc_util.Rng.create seed in
              let keyring = Thc_crypto.Keyring.create rng ~n in
              let net = Thc_sim.Net.create ~n ~default:fast in
              let engine = Thc_sim.Engine.create ~seed ~n ~net () in
              let registers = Thc_sharedmem.Swmr.log_array ~n in
              Array.iteri
                (fun pid input ->
                  Thc_sim.Engine.set_behavior engine pid
                    (Thc_rounds.Swmr_rounds.behavior ~registers
                       ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                       (Thc_agreement.Very_weak.app
                          (Thc_agreement.Very_weak.create ~input))))
                inputs;
              Thc_sim.Engine.run ~until:5_000_000L engine
            in
            let common = run (Array.make n "v") in
            let inputs_common = Array.make n (Some "v") in
            if
              Thc_agreement.Agreement_spec.check `Very_weak
                ~inputs:inputs_common common
              <> []
            then ok := false;
            let mixed_inputs = Array.init n (fun i -> Printf.sprintf "v%d" (i mod 2)) in
            let mixed = run mixed_inputs in
            if
              Thc_agreement.Agreement_spec.check `Very_weak
                ~inputs:(Array.map (fun v -> Some v) mixed_inputs)
                mixed
              <> []
            then ok := false)
          seeds;
        (!ok, "common input decides it; mixed inputs stay ⊥-consistent"))
  }

let strong_from_bidirectional =
  {
    id = "strong-from-bidirectional";
    claim =
      "bidirectional rounds solve strong validity agreement with n >= 2f+1 \
       (Dolev-Strong style)";
    run =
      (fun () ->
        let n = 5 and f = 2 in
        let ok = ref true in
        List.iter
          (fun seed ->
            let rng = Thc_util.Rng.create seed in
            let keyring = Thc_crypto.Keyring.create rng ~n in
            let net =
              Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L))
            in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            (* f Byzantine processes stay silent; correct share input "c". *)
            let inputs = Array.init n (fun pid -> if pid < n - f then Some "c" else None) in
            Array.iteri
              (fun pid input ->
                match input with
                | Some input ->
                  Thc_sim.Engine.set_behavior engine pid
                    (Thc_rounds.Sync_rounds.behavior ~period:1_000L
                       (Thc_agreement.Strong_validity.app
                          (Thc_agreement.Strong_validity.create ~keyring
                             ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                             ~n ~f ~input)))
                | None ->
                  Thc_sim.Engine.mark_byzantine engine pid;
                  Thc_sim.Engine.set_behavior engine pid Thc_sim.Engine.no_op)
              inputs;
            let trace = Thc_sim.Engine.run ~until:60_000L engine in
            if
              Thc_agreement.Agreement_spec.check `Strong
                ~inputs:(Array.map (fun i -> i) inputs)
                trace
              <> []
            then ok := false)
          seeds;
        (!ok, "f silent Byzantine; correct processes all decide common input"))
  }

let byzantine_broadcast_dolev_strong =
  {
    id = "bb-dolev-strong";
    claim = "bidirectional rounds solve Byzantine broadcast with f+1 rounds";
    run =
      (fun () ->
        let n = 4 and f = 1 in
        let ok = ref true in
        List.iter
          (fun seed ->
            let rng = Thc_util.Rng.create seed in
            let keyring = Thc_crypto.Keyring.create rng ~n in
            let net =
              Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, 900L))
            in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            let states =
              Array.init n (fun pid ->
                  Thc_broadcast.Dolev_strong.create ~keyring
                    ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                    ~sender:0 ~f
                    ~input:(if pid = 0 then Some "payload" else None))
            in
            Array.iteri
              (fun pid st ->
                Thc_sim.Engine.set_behavior engine pid
                  (Thc_rounds.Sync_rounds.behavior ~period:1_000L
                     (Thc_broadcast.Dolev_strong.app st)))
              states;
            let trace = Thc_sim.Engine.run ~until:30_000L engine in
            List.iter
              (fun pid ->
                match Thc_sim.Trace.decision_of trace pid with
                | Some (Some "payload") -> ()
                | Some _ | None -> ok := false)
              (List.init n (fun i -> i)))
          seeds;
        (!ok, "correct sender's value committed everywhere"))
  }

let minbft_smr =
  {
    id = "minbft-smr";
    claim =
      "trusted counters support BFT replication with n = 2f+1 (MinBFT)";
    run =
      (fun () ->
        let base scenario seed =
          Thc_replication.Harness.Setup.make
            ~protocol:Thc_replication.Harness.Minbft ~f:1 ~ops:12 ~scenario
            ~seed ()
        in
        let healthy o =
          o.Thc_replication.Harness.safety_violations = []
          && o.Thc_replication.Harness.liveness_violations = []
          && o.Thc_replication.Harness.completed = 12
        in
        let ok =
          List.for_all
            (fun seed ->
              healthy
                (Thc_replication.Harness.run
                   (base Thc_replication.Harness.Fault_free seed))
              && healthy
                   (Thc_replication.Harness.run
                      (base (Thc_replication.Harness.Crash_leader 30_000L) seed))
              && healthy
                   (Thc_replication.Harness.run
                      (base Thc_replication.Harness.Silent_replicas seed)))
            [ 3L; 11L ]
        in
        (ok, "fault-free, crash-leader and f-silent runs all safe and live"))
  }

let neb_from_uni =
  {
    id = "neb-from-uni";
    claim =
      "unidirectional rounds solve non-equivocating broadcast with n >= f+1 \
       (paper conjecture section, proof included)";
    run =
      (fun () ->
        let n = 4 in
        let ok = ref true in
        List.iter
          (fun seed ->
            let rng = Thc_util.Rng.create seed in
            let keyring = Thc_crypto.Keyring.create rng ~n in
            let net = Thc_sim.Net.create ~n ~default:fast in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            let registers = Thc_sharedmem.Swmr.log_array ~n in
            let states =
              Array.init n (fun pid ->
                  Thc_broadcast.Neb.create ~keyring
                    ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                    ~sender:0
                    ~input:(if pid = 0 then Some "payload" else None))
            in
            Array.iteri
              (fun pid st ->
                Thc_sim.Engine.set_behavior engine pid
                  (Thc_rounds.Swmr_rounds.behavior ~registers
                     ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
                     (Thc_broadcast.Neb.app st)))
              states;
            let _ = Thc_sim.Engine.run ~until:5_000_000L engine in
            Array.iter
              (fun st ->
                match Thc_broadcast.Neb.committed st with
                | Some (Some "payload") -> ()
                | _ -> ok := false)
              states)
          seeds;
        (!ok, "correct sender's value committed by everyone across seeds"))
  }

let rb_bracha =
  {
    id = "rb-bracha";
    claim = "asynchrony solves reliable broadcast with n > 3f (Bracha)";
    run =
      (fun () ->
        let n = 4 and f = 1 in
        let ok = ref true in
        List.iter
          (fun seed ->
            let net = Thc_sim.Net.create ~n ~default:fast in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            for pid = 0 to n - 1 do
              let st =
                Thc_broadcast.Reliable_broadcast.create ~n ~f ~self:pid
                  ~sender:0
              in
              Thc_sim.Engine.set_behavior engine pid
                (Thc_broadcast.Reliable_broadcast.behavior st
                   ~broadcast_plan:[ (50L, "value") ])
            done;
            (* One silent fault: delivery must still complete. *)
            Thc_sim.Engine.mark_byzantine engine (n - 1);
            Thc_sim.Engine.schedule_crash engine ~pid:(n - 1) ~at:0L;
            let trace = Thc_sim.Engine.run ~until:5_000_000L engine in
            for pid = 0 to n - 2 do
              let delivered =
                List.exists
                  (fun obs ->
                    match (obs : Thc_sim.Obs.t) with
                    | Rb_delivered { value = "value"; _ } -> true
                    | _ -> false)
                  (Thc_sim.Trace.outputs_of trace pid)
              in
              if not delivered then ok := false
            done)
          seeds;
        (!ok, "echo/ready quorums deliver despite a silent fault"))
  }

let weak_validity_minbft =
  {
    id = "weak-validity-minbft";
    claim =
      "non-equivocation + signatures solve weak-validity agreement with \
       n = 2f+1 (Clement et al. route, single-shot MinBFT)";
    run =
      (fun () ->
        let ok = ref true in
        List.iter
          (fun seed ->
            let common =
              Thc_agreement.Weak_validity.run ~f:1 ~inputs:[| "v"; "v"; "v" |]
                ~seed ()
            in
            if
              not
                (common.agreement && common.validity && common.termination)
            then ok := false;
            let crash =
              Thc_agreement.Weak_validity.run ~f:1 ~inputs:[| "a"; "b"; "c" |]
                ~seed ~crash_leader:true ()
            in
            if not (crash.agreement && crash.termination) then ok := false)
          [ 3L; 11L; 29L ];
        (!ok, "common-input and crash-leader instances decide consistently"))
  }

let minbft_needs_hardware =
  {
    id = "minbft-needs-hardware";
    claim =
      "ablation: the same split attack breaks f+1 quorums without attested \
       links and fails against them";
    run =
      (fun () ->
        let ok = ref true in
        List.iter
          (fun f ->
            let split =
              Thc_replication.Ablation.equivocation_splits_unattested ~f ()
            in
            if
              split.Thc_replication.Ablation.violations = []
              || split.distinct_ops_at_seq1 < 2
            then ok := false;
            let held =
              Thc_replication.Ablation.equivocation_fails_against_minbft ~f ()
            in
            if
              held.Thc_replication.Ablation.violations <> []
              || held.distinct_ops_at_seq1 > 1
            then ok := false)
          [ 1; 2 ];
        (!ok, "unattested variant splits; attested links hold the line"))
  }

let delta_wait_above_delta_uni =
  {
    id = "delta-uni";
    claim = "delta-synchronous rounds with wait >= delta are unidirectional";
    run =
      (fun () ->
        let n = 4 in
        let delta = 1_000L in
        let ok = ref true in
        List.iter
          (fun seed ->
            let net =
              Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Uniform (10L, delta))
            in
            let engine = Thc_sim.Engine.create ~seed ~n ~net () in
            let rng = Thc_util.Rng.create seed in
            for pid = 0 to n - 1 do
              let start_offset =
                Int64.of_int (Thc_util.Rng.int rng 5_000)
              in
              Thc_sim.Engine.set_behavior engine pid
                (Thc_rounds.Delta_rounds.behavior ~wait:delta ~start_offset
                   (chatter_app pid ~rounds:3))
            done;
            let trace = Thc_sim.Engine.run ~until:1_000_000L engine in
            if Thc_rounds.Directionality.check_unidirectional trace <> [] then
              ok := false)
          seeds;
        (!ok, "random start offsets, delays <= delta: no violations"))
  }

let all =
  [
    uni_from_swmr;
    uni_from_sticky;
    uni_from_peats;
    uni_from_rb_f1;
    srb_from_uni;
    trinc_from_srb;
    srb_from_trinc;
    a2m_from_trinc;
    trinc_from_enclave;
    very_weak_from_uni;
    strong_from_bidirectional;
    byzantine_broadcast_dolev_strong;
    minbft_smr;
    neb_from_uni;
    rb_bracha;
    weak_validity_minbft;
    minbft_needs_hardware;
    delta_wait_above_delta_uni;
  ]

let by_id id = List.find_opt (fun w -> String.equal w.id id) all

let run_all () =
  List.map
    (fun w ->
      let passed, detail = w.run () in
      (w, passed, detail))
    all
