(** Counterexample shrinking: reduce a failing adversary script to a local
    minimum while preserving the failure.

    Classic greedy delta-debugging over the script structure.  Candidate
    transformations, tried in a fixed order each round:

    - drop a contiguous half of the events (coarse first),
    - drop any single event,
    - thin a partition: drop a whole group, or drop one member,
    - halve the horizon (clamped above the last event time).

    A candidate is accepted iff re-running the harness {e deterministically}
    — same seed, candidate script — still fails the original verdict's
    primary monitor ({!Monitor.reproduces}).  Rounds repeat until no
    candidate is accepted, so the result is a fixpoint: shrinking an
    already-minimal script returns it unchanged (idempotence, pinned by the
    property tests). *)

type result = {
  script : Thc_sim.Adversary.t;  (** The minimized script. *)
  report : Harness.report;  (** Its (still failing) report. *)
  attempts : int;  (** Candidate runs executed. *)
  rounds : int;  (** Full passes over the transformation list. *)
}

val shrink :
  Harness.t -> ?on_round:(rounds:int -> attempts:int -> events:int -> unit) ->
  ?network:Thc_network.Model.t ->
  seed:int64 -> script:Thc_sim.Adversary.t -> report:Harness.report -> unit ->
  result
(** [report] must be the failing report of [script] under [seed] (raises
    [Invalid_argument] on a passing report).  [on_round] fires after each
    round with the cumulative candidate count and the current script's
    event count — progress reporting only, never part of the result. *)
