(** Uniform invariant-monitor verdicts.

    Every protocol family in the repository has its own violation type
    ({!Thc_replication.Smr_spec}, {!Thc_broadcast.Srb_spec},
    {!Thc_agreement.Agreement_spec}); the fault explorer needs one currency
    to sweep, compare and shrink against.  A {!violation} is a named monitor
    plus a human-readable detail; a run's verdict is [Pass] or the full
    list of violations.

    Monitor names are stable identifiers — they are persisted in repro
    files and matched on replay — so renaming one invalidates the corpus. *)

type violation = { monitor : string; info : string }

type verdict = Pass | Fail of violation list
(** [Fail] carries at least one violation, in the order the monitors
    reported them. *)

val verdict : violation list -> verdict
(** [Pass] on the empty list. *)

val failed : verdict -> bool

val monitors_of : verdict -> string list
(** Distinct failing monitor names, in first-occurrence order ([] for
    [Pass]).  The head is the {e primary} monitor — the shrinker's notion
    of "the same failure". *)

val primary : verdict -> string option

val reproduces : reference:verdict -> verdict -> bool
(** Does a candidate run exhibit the same failure as the reference?  True
    iff the reference's primary monitor is among the candidate's failing
    monitors.  (Weaker failures that drop secondary monitors still count —
    greedy shrinking keeps the bug, not the noise.) *)

val of_smr : Thc_replication.Smr_spec.violation list -> violation list
(** Monitor names [smr-safety] (order/result forks), [smr-replay]
    (sequential KV re-execution mismatch), [smr-liveness]. *)

val of_srb : Thc_broadcast.Srb_spec.violation list -> violation list
(** Monitor names [srb-validity], [srb-totality], [srb-sequencing],
    [srb-integrity], [srb-agreement]. *)

val of_agreement : Thc_agreement.Agreement_spec.violation list -> violation list
(** Monitor names [agreement], [termination], [validity]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_verdict : Format.formatter -> verdict -> unit
