module Sexp = Thc_util.Sexp

type t = {
  protocol : string;
  seed : int64;
  expect : [ `Pass | `Fail of string list ];
  script : Thc_sim.Adversary.t;
}

let of_outcome ~protocol (o : Sweep.outcome) =
  let expect =
    match Monitor.monitors_of o.Sweep.report.Harness.verdict with
    | [] -> `Pass
    | monitors -> `Fail monitors
  in
  { protocol; seed = o.Sweep.seed; expect; script = o.Sweep.script }

let to_sexp r =
  let expect =
    match r.expect with
    | `Pass -> Sexp.list [ Sexp.atom "pass" ]
    | `Fail monitors ->
      Sexp.list (Sexp.atom "fail" :: List.map Sexp.atom monitors)
  in
  Sexp.list
    [
      Sexp.atom "repro";
      Sexp.list [ Sexp.atom "protocol"; Sexp.atom r.protocol ];
      Sexp.list [ Sexp.atom "seed"; Sexp.int64_atom r.seed ];
      Sexp.list [ Sexp.atom "expect"; expect ];
      Sexp.list [ Sexp.atom "script"; Thc_sim.Adversary.to_sexp r.script ];
    ]

let of_sexp sexp =
  match sexp with
  | Sexp.List
      (Sexp.Atom "repro" :: fields) ->
    let one name conv =
      match
        List.find_map
          (function
            | Sexp.List [ Sexp.Atom tag; v ] when tag = name -> Some v
            | _ -> None)
          fields
      with
      | Some v -> conv v
      | None -> failwith (Printf.sprintf "repro: missing (%s ...)" name)
    in
    let expect =
      one "expect" (function
        | Sexp.List [ Sexp.Atom "pass" ] -> `Pass
        | Sexp.List (Sexp.Atom "fail" :: monitors) when monitors <> [] ->
          `Fail (List.map Sexp.to_atom monitors)
        | s -> failwith ("repro: bad expect: " ^ Sexp.to_string s))
    in
    {
      protocol = one "protocol" Sexp.to_atom;
      seed = one "seed" Sexp.to_int64;
      expect;
      script = one "script" Thc_sim.Adversary.of_sexp;
    }
  | s -> failwith ("repro: expected (repro ...), got " ^ Sexp.to_string s)

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sexp.to_string_hum (to_sexp r));
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Sexp.of_string contents with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok sexp -> (
      match of_sexp sexp with
      | r -> Ok r
      | exception Failure msg -> Error (Printf.sprintf "%s: %s" path msg)))

type replay = {
  repro : t;
  report : Harness.report;
  matched : bool;
}

let matches expect (verdict : Monitor.verdict) =
  match (expect, verdict) with
  | `Pass, Monitor.Pass -> true
  | `Pass, Monitor.Fail _ -> false
  | `Fail [], _ -> false
  | `Fail (primary :: _), v -> List.mem primary (Monitor.monitors_of v)

let replay r =
  match Harness.find r.protocol with
  | None -> Error (Printf.sprintf "unknown protocol %S" r.protocol)
  | Some h ->
    let report = h.Harness.run ~seed:r.seed ~script:r.script () in
    Ok { repro = r; report; matched = matches r.expect report.Harness.verdict }

let pp_replay ppf { repro; report; matched } =
  let pp_expect ppf = function
    | `Pass -> Format.pp_print_string ppf "pass"
    | `Fail monitors ->
      Format.fprintf ppf "fail %s" (String.concat " " monitors)
  in
  Format.fprintf ppf "@[<v>%s seed %Ld: expected [%a], got %a — %s@]"
    repro.protocol repro.seed pp_expect repro.expect Monitor.pp_verdict
    report.Harness.verdict
    (if matched then "MATCH" else "MISMATCH")
