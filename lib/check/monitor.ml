type violation = { monitor : string; info : string }

type verdict = Pass | Fail of violation list

let verdict = function [] -> Pass | vs -> Fail vs

let failed = function Pass -> false | Fail _ -> true

let monitors_of = function
  | Pass -> []
  | Fail vs ->
    List.rev
      (List.fold_left
         (fun acc v -> if List.mem v.monitor acc then acc else v.monitor :: acc)
         [] vs)

let primary v = match monitors_of v with [] -> None | m :: _ -> Some m

let reproduces ~reference candidate =
  match primary reference with
  | None -> not (failed candidate)
  | Some m -> List.mem m (monitors_of candidate)

let of_smr vs =
  List.map
    (fun (v : Thc_replication.Smr_spec.violation) ->
      let monitor =
        match v.property with
        | `Order | `Result -> "smr-safety"
        | `Replay -> "smr-replay"
        | `Liveness -> "smr-liveness"
      in
      { monitor; info = v.info })
    vs

let of_srb vs =
  List.map
    (fun (v : Thc_broadcast.Srb_spec.violation) ->
      let monitor =
        match v.property with
        | `Validity -> "srb-validity"
        | `Totality -> "srb-totality"
        | `Sequencing -> "srb-sequencing"
        | `Integrity -> "srb-integrity"
        | `Agreement -> "srb-agreement"
      in
      { monitor; info = v.info })
    vs

let of_agreement vs =
  List.map
    (fun (v : Thc_agreement.Agreement_spec.violation) ->
      let monitor =
        match v.property with
        | `Agreement -> "agreement"
        | `Termination -> "termination"
        | `Validity -> "validity"
      in
      { monitor; info = v.info })
    vs

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.monitor v.info

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Fail vs ->
    Format.fprintf ppf "FAIL %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_violation)
      vs
