(** Persistent repro files: the minimal [(protocol, seed, script)] triple
    plus the documented verdict, as an S-expression on disk.

    Format (see [test/corpus/] for live examples):
    {v
    (repro
      (protocol minbft-unattested)
      (seed 3)
      (expect (fail smr-safety))      ; or (pass)
      (script (adversary ...)))
    v}

    A repro {e matches} on replay when a passing expectation replays to
    [Pass], and a failing expectation replays to a failure whose monitors
    include the first expected monitor — the same rule the shrinker uses
    ({!Monitor.reproduces}), so shrunk counterexamples stay replayable. *)

type t = {
  protocol : string;  (** A {!Harness.all} registry name. *)
  seed : int64;
  expect : [ `Pass | `Fail of string list ];
      (** Failing monitor names, primary first. *)
  script : Thc_sim.Adversary.t;
}

val of_outcome : protocol:string -> Sweep.outcome -> t
(** Capture a sweep outcome (typically post-shrink) verbatim. *)

val to_sexp : t -> Thc_util.Sexp.t
val of_sexp : Thc_util.Sexp.t -> t
(** Raises [Failure] on malformed input. *)

val save : string -> t -> unit
(** Write the repro to a file, human-indented, trailing newline. *)

val load : string -> (t, string) result
(** Parse a repro file; [Error] carries a description including the path. *)

type replay = {
  repro : t;
  report : Harness.report;
  matched : bool;  (** Did the replay reproduce the documented verdict? *)
}

val replay : t -> (replay, string) result
(** Re-run the repro deterministically against the registry harness.
    [Error] only for an unknown protocol name; a verdict mismatch is
    [Ok { matched = false; _ }]. *)

val pp_replay : Format.formatter -> replay -> unit
