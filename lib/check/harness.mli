(** The protocol registry: every protocol stack the fault explorer can
    drive, behind one [(seed, script) -> report] interface.

    A harness bundles a deterministic runner (build the cluster, install
    the adversary script, run past the horizon, judge the invariant
    monitors) with the {e script profile} the sweep driver should draw from
    (how many processes the adversary may target, its crash/partition
    budgets, the horizon) and the documented expectation, so sweep output
    can distinguish "found a bug" from "confirmed the known weakness". *)

type report = {
  verdict : Monitor.verdict;
  messages : int;  (** Messages sent during the run (per-run metric). *)
  duration_us : int64;  (** Virtual end time (per-run metric). *)
}

type profile = {
  n : int;  (** Processes the adversary may crash or partition. *)
  crash_budget : int;
  partition_budget : int;
  horizon : int64;  (** Script horizon; runs extend beyond it to drain. *)
}

type expectation =
  | Clean  (** Every admissible script must pass — failures are bugs. *)
  | Broken  (** Known-bad (ablated): fails under (almost) any schedule. *)
  | Vulnerable
      (** The profile steps outside the protocol's model assumptions;
          counterexamples are expected to exist but not on every seed. *)

type t = {
  name : string;
  summary : string;
  profile : profile;
  expect : expectation;
  run :
    ?network:Thc_network.Model.t ->
    seed:int64 ->
    script:Thc_sim.Adversary.t ->
    unit ->
    report;
      (** Deterministic in [(network, seed, script)].  [network] lowers a
          named {!Thc_network.Model} onto the run's links (re-lowered
          after every scripted heal); omitted, the harness's legacy
          uniform clique is kept and runs are byte-identical to pre-S7
          sweeps. *)
}

val all : t list
(** [minbft], [pbft] (scripted faults against the replicated KV, SMR
    safety + KV replay + liveness-by-horizon monitors); [minbft-unattested]
    (the ablated protocol of {!Thc_replication.Ablation} — non-equivocation
    disabled, equivocating leader baked in, expected to fork);
    [srb-trinc] and [srb-uni] (both SRB implementations under the full
    four-property spec); [agreement] (strong validity, crash-only profile)
    and [agreement-partition] (same protocol with partitions that violate
    its synchrony assumption — the explorer finds the separation).

    The Byzantine attack catalog ({!Thc_byz.Attack}) contributes one
    harness per (attack, target) cell: [minbft-<attack>] ([Clean] — safety
    holds and the hardware ledger records a refused operation under every
    admissible script, monitors [byz-safety] / [byz-rejection]) and
    [unattested-<attack>] ([Broken] — the same behavior forks the 2f+1
    ablation, monitor [byz-divergence]) for each of [equivocation],
    [replay], [reuse], [mismatched-vc], [selective-send],
    [silent-then-lie]. *)

val find : string -> t option
val names : unit -> string list

val pp_expectation : Format.formatter -> expectation -> unit
