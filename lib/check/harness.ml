type report = {
  verdict : Monitor.verdict;
  messages : int;
  duration_us : int64;
}

type profile = {
  n : int;
  crash_budget : int;
  partition_budget : int;
  horizon : int64;
}

type expectation = Clean | Broken | Vulnerable

type t = {
  name : string;
  summary : string;
  profile : profile;
  expect : expectation;
  run :
    ?network:Thc_network.Model.t ->
    seed:int64 ->
    script:Thc_sim.Adversary.t ->
    unit ->
    report;
}

let pp_expectation ppf e =
  Format.pp_print_string ppf
    (match e with
    | Clean -> "clean"
    | Broken -> "known-bad"
    | Vulnerable -> "outside-model")

(* --- replication -------------------------------------------------------- *)

let smr_run protocol ?network ~seed ~script () =
  let outcome =
    Thc_replication.Harness.run
      (Thc_replication.Harness.Setup.make ~protocol ~f:1 ~ops:6
         ~scenario:(Thc_replication.Harness.Scripted script) ~seed ?network ())
  in
  {
    verdict =
      Monitor.verdict
        (Monitor.of_smr
           (outcome.Thc_replication.Harness.safety_violations
           @ outcome.Thc_replication.Harness.liveness_violations));
    messages = outcome.Thc_replication.Harness.messages;
    duration_us = outcome.Thc_replication.Harness.duration_us;
  }

let unattested_run ?network ~seed ~script () =
  let result =
    Thc_replication.Ablation.unattested_under_script ?network ~seed ~script ()
  in
  {
    verdict = Monitor.verdict (Monitor.of_smr result.Thc_replication.Ablation.violations);
    messages = result.Thc_replication.Ablation.messages;
    duration_us = result.Thc_replication.Ablation.duration_us;
  }

(* --- broadcast ---------------------------------------------------------- *)

let srb_report (r : Thc_broadcast.Srb_harness.report) =
  {
    verdict = Monitor.verdict (Monitor.of_srb r.violations);
    messages = r.messages;
    duration_us = r.duration_us;
  }

(* --- agreement ---------------------------------------------------------- *)

(* Inputs are part of the explored state space: half the seeds give all
   correct processes one common input (arming the validity clause), the
   rest mix two values (arming agreement). *)
let agreement_inputs ~seed ~n =
  let rng = Thc_util.Rng.create (Int64.lognot seed) in
  if Thc_util.Rng.bool rng then Array.make n "c"
  else Array.init n (fun _ -> if Thc_util.Rng.bool rng then "a" else "b")

(* The protocol starts mid-horizon (horizon/8) rather than at time 0: round
   messages already in flight are immune to blocking, so a time-0 start
   would put round 1 — the only round that matters against non-Byzantine
   senders — beyond the reach of any admissible script. *)
let agreement_run ~start ?network ~seed ~script () =
  let n = 5 in
  let r =
    Thc_agreement.Agreement_harness.run ?network ~seed ~script ~n ~f:2 ~start
      ~inputs:(agreement_inputs ~seed ~n) ()
  in
  {
    verdict = Monitor.verdict (Monitor.of_agreement r.violations);
    messages = r.messages;
    duration_us = r.duration_us;
  }

(* --- byzantine attack catalog ------------------------------------------- *)

(* The twelve (attack x target) cells from lib/byz, each under the same
   adversary-script exploration as every other harness.  The MinBFT side is
   [Clean]: whatever the network does on top of the corruption, safety must
   hold and the hardware ledger must record at least one refused operation.
   The unattested side is [Broken]: the same behavior forks it. *)

let byz_violations (r : Thc_byz.Attack.result) =
  match r.Thc_byz.Attack.target with
  | Thc_byz.Attack.Minbft | Thc_byz.Attack.Ubft ->
    (if r.Thc_byz.Attack.safety_violations > 0 then
       [
         {
           Monitor.monitor = "byz-safety";
           info =
             Printf.sprintf "%d safety violations among correct replicas"
               r.Thc_byz.Attack.safety_violations;
         };
       ]
     else [])
    @
    (if r.Thc_byz.Attack.rejections = 0 then
       [
         {
           Monitor.monitor = "byz-rejection";
           info = "attack left no refused operation in the hardware ledger";
         };
       ]
     else [])
  | Thc_byz.Attack.Unattested ->
    if r.Thc_byz.Attack.safety_violations > 0 then
      [ { Monitor.monitor = "byz-divergence"; info = r.Thc_byz.Attack.detail } ]
    else []

let attack_run ~target attack ?network ~seed ~script () =
  let r = Thc_byz.Attack.run ~seed ~script ?network ~target ~attack () in
  {
    verdict = Monitor.verdict (byz_violations r);
    messages = r.Thc_byz.Attack.messages;
    duration_us = r.Thc_byz.Attack.duration_us;
  }

(* Crash budget stays 0: a crashed replica on top of the Byzantine one
   exceeds f = 1, which is outside the model the catalog argues about.
   Partitions are fair game — they only delay attested traffic. *)
let byz_profile =
  { n = 3; crash_budget = 0; partition_budget = 1; horizon = 200_000L }

let byz_harnesses =
  List.concat_map
    (fun attack ->
      let aname = Thc_byz.Attack.name attack in
      [
        {
          name = "minbft-" ^ aname;
          summary =
            Printf.sprintf "MinBFT under %s: %s" aname
              (Thc_byz.Attack.describe attack);
          profile = byz_profile;
          expect = Clean;
          run = attack_run ~target:Thc_byz.Attack.Minbft attack;
        };
        {
          name = "unattested-" ^ aname;
          summary =
            Printf.sprintf "unattested 2f+1 under %s: %s" aname
              (Thc_byz.Attack.describe attack);
          profile = byz_profile;
          expect = Broken;
          run = attack_run ~target:Thc_byz.Attack.Unattested attack;
        };
      ])
    Thc_byz.Attack.all
  @ List.map
      (fun attack ->
        let aname = Thc_byz.Attack.name attack in
        {
          name = "ubft-" ^ aname;
          summary =
            Printf.sprintf "uBFT-sim (SWMR registers) under %s: %s" aname
              (Thc_byz.Attack.describe attack);
          profile = byz_profile;
          expect = Clean;
          run = attack_run ~target:Thc_byz.Attack.Ubft attack;
        })
      Thc_byz.Attack.ubft_all

(* The durability/state-transfer cells, same Clean/Broken split.  A separate
   list (like [ckpt_all] itself) so nothing pinned to the size of
   [Attack.all]'s grid moves. *)
let ckpt_harnesses =
  List.concat_map
    (fun attack ->
      let aname = Thc_byz.Attack.name attack in
      [
        {
          name = "minbft-" ^ aname;
          summary =
            Printf.sprintf "MinBFT durability under %s: %s" aname
              (Thc_byz.Attack.describe attack);
          profile = byz_profile;
          expect = Clean;
          run = attack_run ~target:Thc_byz.Attack.Minbft attack;
        };
        {
          name = "unattested-" ^ aname;
          summary =
            Printf.sprintf "unattested state transfer under %s: %s" aname
              (Thc_byz.Attack.describe attack);
          profile = byz_profile;
          expect = Broken;
          run = attack_run ~target:Thc_byz.Attack.Unattested attack;
        };
      ])
    Thc_byz.Attack.ckpt_all

(* --- registry ----------------------------------------------------------- *)

let all =
  [
    {
      name = "minbft";
      summary = "MinBFT (2f+1, trusted counters) replicated KV, f = 1";
      profile = { n = 3; crash_budget = 1; partition_budget = 1; horizon = 200_000L };
      expect = Clean;
      run = smr_run Thc_replication.Harness.Minbft;
    };
    {
      name = "pbft";
      summary = "PBFT (3f+1 baseline) replicated KV, f = 1";
      profile = { n = 4; crash_budget = 1; partition_budget = 1; horizon = 200_000L };
      expect = Clean;
      run = smr_run Thc_replication.Harness.Pbft;
    };
    {
      name = "ubft";
      summary = "uBFT-sim (2f+1, SWMR registers) replicated KV, f = 1";
      profile = { n = 3; crash_budget = 1; partition_budget = 1; horizon = 200_000L };
      expect = Clean;
      run = smr_run Thc_replication.Harness.Ubft;
    };
    {
      name = "minbft-unattested";
      summary =
        "ablation: MinBFT message flow without trusted counters, \
         equivocating leader";
      profile = { n = 3; crash_budget = 1; partition_budget = 1; horizon = 200_000L };
      expect = Broken;
      run = unattested_run;
    };
    {
      name = "srb-trinc";
      summary = "sequenced reliable broadcast from TrInc trusted logs, n = 4";
      profile = { n = 4; crash_budget = 1; partition_budget = 2; horizon = 400_000L };
      expect = Clean;
      run =
        (fun ?network ~seed ~script () ->
          srb_report
            (Thc_broadcast.Srb_harness.run_trinc ?network ~seed ~script ()));
    };
    {
      name = "srb-uni";
      summary = "Algorithm 1: SRB from unidirectional SWMR rounds, n = 5, t = 2";
      profile = { n = 5; crash_budget = 2; partition_budget = 0; horizon = 100_000L };
      expect = Clean;
      run =
        (fun ?network ~seed ~script () ->
          srb_report
            (Thc_broadcast.Srb_harness.run_uni ?network ~seed ~script ()));
    };
    {
      name = "agreement";
      summary = "strong-validity agreement over lock-step rounds, n = 5, f = 2";
      profile = { n = 5; crash_budget = 2; partition_budget = 0; horizon = 20_000L };
      expect = Clean;
      run = agreement_run ~start:2_500L;
    };
    {
      name = "agreement-partition";
      summary =
        "strong-validity agreement with partitions breaking its synchrony \
         assumption";
      profile = { n = 5; crash_budget = 0; partition_budget = 2; horizon = 20_000L };
      expect = Vulnerable;
      run = agreement_run ~start:2_500L;
    };
  ]

let all = all @ byz_harnesses @ ckpt_harnesses

let find name = List.find_opt (fun h -> h.name = name) all

let names () = List.map (fun h -> h.name) all
