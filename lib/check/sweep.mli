(** Seed-sweep driver: run a protocol harness against thousands of
    [(seed, Adversary.random script)] pairs and tabulate the verdicts.

    Everything is a pure function of [(harness, base seed, run count,
    budget overrides)] — two sweeps with equal arguments produce equal
    summaries, byte for byte once rendered, which is what makes a sweep
    failure a one-line repro. *)

type outcome = {
  seed : int64;
  script : Thc_sim.Adversary.t;
  report : Harness.report;
}

type summary = {
  protocol : string;
  runs : int;
  passes : int;
  failures : outcome list;  (** Failing runs, ascending seed. *)
  by_monitor : (string * int) list;
      (** Failing runs per monitor name, descending count then name. *)
  total_messages : int;
  total_events : int;  (** Adversary events drawn across all scripts. *)
}

val script_for :
  Harness.t -> ?crashes:int -> ?partitions:int -> seed:int64 -> unit ->
  Thc_sim.Adversary.t
(** The admissible random script this sweep pairs with [seed]: drawn by
    {!Thc_sim.Adversary.random} from the harness profile (with optional
    budget overrides) using a generator derived from [seed] alone. *)

val run_one :
  Harness.t ->
  ?crashes:int -> ?partitions:int -> ?network:Thc_network.Model.t ->
  seed:int64 -> unit -> outcome

val summarize : Harness.t -> runs:int -> outcome list -> summary
(** Tally a seed-ordered outcome list (exactly what {!sweep} returns). *)

val runner :
  Harness.t -> ?crashes:int -> ?partitions:int ->
  ?network:Thc_network.Model.t ->
  base_seed:int64 -> runs:int -> unit ->
  (int64, outcome, summary) Thc_exec.Runner.t
(** The sweep as the repository-wide runner shape: keys are the seeds
    [base_seed .. base_seed + runs - 1], [run_one] is {!run_one}, and
    [summarize] is {!summarize}. *)

val sweep :
  Harness.t -> ?crashes:int -> ?partitions:int ->
  ?network:Thc_network.Model.t ->
  ?progress:(completed:int -> failures:int -> unit) ->
  ?jobs:int -> ?stats:(Thc_exec.Pool.stats -> unit) ->
  base_seed:int64 -> runs:int -> unit -> summary
(** Seeds [base_seed, base_seed + 1, ..., base_seed + runs - 1].
    [progress] is invoked after every run with the number of seeds finished
    and failures seen so far — callers decide how often to surface it; it
    never affects the summary.  [jobs] fans the runs out over that many
    worker processes ({!Thc_exec.Pool}); outcomes are merged in seed order,
    so the summary — and the [progress] call sequence — is identical at
    every [jobs] value.  [stats] receives the pool's wall-clock
    accounting. *)

val pp_summary : Format.formatter -> summary -> unit
