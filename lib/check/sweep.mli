(** Seed-sweep driver: run a protocol harness against thousands of
    [(seed, Adversary.random script)] pairs and tabulate the verdicts.

    Everything is a pure function of [(harness, base seed, run count,
    budget overrides)] — two sweeps with equal arguments produce equal
    summaries, byte for byte once rendered, which is what makes a sweep
    failure a one-line repro. *)

type outcome = {
  seed : int64;
  script : Thc_sim.Adversary.t;
  report : Harness.report;
}

type summary = {
  protocol : string;
  runs : int;
  passes : int;
  failures : outcome list;  (** Failing runs, ascending seed. *)
  by_monitor : (string * int) list;
      (** Failing runs per monitor name, descending count then name. *)
  total_messages : int;
  total_events : int;  (** Adversary events drawn across all scripts. *)
}

val script_for :
  Harness.t -> ?crashes:int -> ?partitions:int -> seed:int64 -> unit ->
  Thc_sim.Adversary.t
(** The admissible random script this sweep pairs with [seed]: drawn by
    {!Thc_sim.Adversary.random} from the harness profile (with optional
    budget overrides) using a generator derived from [seed] alone. *)

val run_one :
  Harness.t -> ?crashes:int -> ?partitions:int -> seed:int64 -> unit -> outcome

val sweep :
  Harness.t -> ?crashes:int -> ?partitions:int ->
  ?progress:(completed:int -> failures:int -> unit) ->
  base_seed:int64 -> runs:int -> unit -> summary
(** Seeds [base_seed, base_seed + 1, ..., base_seed + runs - 1].
    [progress] is invoked after every run with the number of seeds finished
    and failures seen so far — callers decide how often to surface it; it
    never affects the summary. *)

val pp_summary : Format.formatter -> summary -> unit
