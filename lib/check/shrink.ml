type result = {
  script : Thc_sim.Adversary.t;
  report : Harness.report;
  attempts : int;
  rounds : int;
}

let drop_index events i = List.filteri (fun j _ -> j <> i) events

let drop_range events lo hi =
  List.filteri (fun j _ -> j < lo || j >= hi) events

(* Thinner partitions for one Block_groups event: drop a whole group, or
   drop a single member of a multi-member group.  (Processes left out of
   every group join the implicit rest-group, so both stay meaningful
   partitions; the empty-partition degenerate case is the same as dropping
   the event, which the single-drop candidates already cover.) *)
let thin_partition (e : Thc_sim.Adversary.event) =
  match e.action with
  | Thc_sim.Adversary.Block_groups groups when List.length groups > 1 ->
    let without_group =
      List.mapi
        (fun g _ ->
          { e with
            action =
              Thc_sim.Adversary.Block_groups
                (List.filteri (fun j _ -> j <> g) groups) })
        groups
    in
    let without_member =
      List.concat
        (List.mapi
           (fun g members ->
             if List.length members < 2 then []
             else
               List.mapi
                 (fun m _ ->
                   { e with
                     action =
                       Thc_sim.Adversary.Block_groups
                         (List.mapi
                            (fun j ms ->
                              if j = g then drop_index ms m else ms)
                            groups) })
                 members)
           groups)
    in
    without_group @ without_member
  | _ -> []

let candidates (s : Thc_sim.Adversary.t) =
  let events = s.Thc_sim.Adversary.events in
  let len = List.length events in
  let with_events evs = { s with Thc_sim.Adversary.events = evs } in
  let halves =
    if len >= 2 then
      [ with_events (drop_range events 0 (len / 2));
        with_events (drop_range events (len / 2) len) ]
    else []
  in
  let singles = List.init len (fun i -> with_events (drop_index events i)) in
  let thinned =
    List.concat
      (List.mapi
         (fun i e ->
           List.map
             (fun e' -> with_events (List.mapi (fun j x -> if j = i then e' else x) events))
             (thin_partition e))
         events)
  in
  let shorter_horizon =
    let last_at =
      List.fold_left (fun acc e -> max acc e.Thc_sim.Adversary.at) 1L events
    in
    let h = max last_at (Int64.div s.Thc_sim.Adversary.horizon 2L) in
    if h < s.Thc_sim.Adversary.horizon then [ { s with Thc_sim.Adversary.horizon = h } ]
    else []
  in
  halves @ singles @ thinned @ shorter_horizon

let shrink (h : Harness.t) ?on_round ?network ~seed ~script
    ~(report : Harness.report) () =
  if not (Monitor.failed report.verdict) then
    invalid_arg "Shrink.shrink: report must be failing";
  let reference = report.verdict in
  let current = ref script in
  let current_report = ref report in
  let attempts = ref 0 in
  let rounds = ref 0 in
  let improved = ref true in
  (* Greedy to a fixpoint: first accepted candidate wins the round and the
     next round restarts from it.  Every acceptance strictly shrinks
     (event count, then partition membership, then horizon), so this
     terminates; a minimal script accepts nothing and is returned as-is. *)
  while !improved do
    incr rounds;
    improved := false;
    let rec attempt = function
      | [] -> ()
      | cand :: rest ->
        incr attempts;
        let r = h.run ?network ~seed ~script:cand () in
        if Monitor.reproduces ~reference r.Harness.verdict then begin
          current := cand;
          current_report := r;
          improved := true
        end
        else attempt rest
    in
    attempt (candidates !current);
    Option.iter
      (fun f ->
        f ~rounds:!rounds ~attempts:!attempts
          ~events:(List.length !current.Thc_sim.Adversary.events))
      on_round
  done;
  { script = !current; report = !current_report; attempts = !attempts; rounds = !rounds }
