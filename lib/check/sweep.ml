type outcome = {
  seed : int64;
  script : Thc_sim.Adversary.t;
  report : Harness.report;
}

type summary = {
  protocol : string;
  runs : int;
  passes : int;
  failures : outcome list;
  by_monitor : (string * int) list;
  total_messages : int;
  total_events : int;
}

let script_for (h : Harness.t) ?crashes ?partitions ~seed () =
  let p = h.profile in
  let crash_budget = Option.value crashes ~default:p.crash_budget in
  let partition_budget = Option.value partitions ~default:p.partition_budget in
  (* The script stream is derived from the seed but distinct from the
     engine's, so the same seed can drive both without correlation. *)
  let rng = Thc_util.Rng.create (Int64.add 0x5cf1a7_0000L seed) in
  Thc_sim.Adversary.random rng ~n:p.n ~horizon:p.horizon ~crash_budget
    ~partition_budget ()

let run_one (h : Harness.t) ?crashes ?partitions ?network ~seed () =
  let script = script_for h ?crashes ?partitions ~seed () in
  { seed; script; report = h.run ?network ~seed ~script () }

let summarize (h : Harness.t) ~runs outcomes =
  let failures =
    List.filter (fun o -> Monitor.failed o.report.Harness.verdict) outcomes
  in
  let by_monitor =
    let tally = ref [] in
    List.iter
      (fun o ->
        List.iter
          (fun m ->
            tally :=
              (m, 1 + Option.value (List.assoc_opt m !tally) ~default:0)
              :: List.remove_assoc m !tally)
          (Monitor.monitors_of o.report.Harness.verdict))
      failures;
    List.sort
      (fun (m1, c1) (m2, c2) ->
        match compare c2 c1 with 0 -> compare m1 m2 | c -> c)
      !tally
  in
  {
    protocol = h.name;
    runs;
    passes = List.length outcomes - List.length failures;
    failures;
    by_monitor;
    total_messages =
      List.fold_left (fun acc o -> acc + o.report.Harness.messages) 0 outcomes;
    total_events =
      List.fold_left
        (fun acc o -> acc + List.length o.script.Thc_sim.Adversary.events)
        0 outcomes;
  }

let runner (h : Harness.t) ?crashes ?partitions ?network ~base_seed ~runs () =
  {
    Thc_exec.Runner.name = "sweep:" ^ h.name;
    keys =
      List.init (max 0 runs) (fun i ->
          Int64.add base_seed (Int64.of_int i));
    run_one = (fun seed -> run_one h ?crashes ?partitions ?network ~seed ());
    summarize = summarize h ~runs;
  }

let sweep (h : Harness.t) ?crashes ?partitions ?network ?progress ?jobs ?stats
    ~base_seed ~runs () =
  (* Failure counting rides the in-order outcome stream, so the progress
     lines are byte-identical at every [jobs] value. *)
  let failed_so_far = ref 0 in
  let on_outcome i o =
    if Monitor.failed o.report.Harness.verdict then incr failed_so_far;
    Option.iter
      (fun f -> f ~completed:(i + 1) ~failures:!failed_so_far)
      progress
  in
  Thc_exec.Runner.run ?jobs ~on_outcome ?stats
    (runner h ?crashes ?partitions ?network ~base_seed ~runs ())

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>%s: %d runs, %d pass, %d fail" s.protocol s.runs
    s.passes
    (List.length s.failures);
  if s.by_monitor <> [] then begin
    Format.fprintf ppf "@,failing monitors:";
    List.iter
      (fun (m, c) -> Format.fprintf ppf "@,  %-16s %d" m c)
      s.by_monitor
  end;
  Format.fprintf ppf "@,%d adversary events injected, %d messages simulated@]"
    s.total_events s.total_messages
