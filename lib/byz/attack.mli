(** The Byzantine attack catalog.

    Two attack families over three targets.  The original six scripted
    active-adversary behaviors run against real MinBFT on trusted
    counters ([Minbft]) and the unattested 2f+1 ablation ([Unattested]);
    together they turn the paper's central claim — non-equivocation is
    what the trusted-log class buys — from an asserted ablation into a
    demonstrated one: every attack that merely bounces off the attested
    protocol (safety intact, the hardware ledger recording the rejected
    operation) forks the unattested protocol into a concrete divergent
    commit.

    The register catalog ([ubft_all]) targets [Ubft], the SWMR-register
    protocol one level {e up} Figure 1's order: equivocation there is not
    detected-and-rejected by a counter discipline, it has no interface at
    all — writing into another replica's history is an ACL violation
    before it touches memory.  Its attacks are therefore forgery probes
    (refused, landing in the ledger as [swmr.append_denied]) paired with
    the omission behaviors that {e are} in the adversary's power
    (freezing reads, withholding appends), which cost availability until
    a view change, never safety.

    Against MinBFT and uBFT-sim the attacker corrupts a running honest
    replica in place (via {!Wrap} and an adversary-script [Corrupt]
    event), inheriting its state, its signing secret and its claimed
    trinket or register — everything except the ability to make the
    hardware lie. *)

type kind =
  | Equivocate  (** Two proposals, one slot, different audiences. *)
  | Replay_stale  (** Re-send an old attested message (counter rewind). *)
  | Reuse_attestation  (** Relabel one slot's attestation for another. *)
  | Mismatched_vc  (** Fabricated sent-log in a view-change certificate. *)
  | Selective_send  (** Serve a bare quorum, starve the last replica. *)
  | Silent_then_lie  (** Crash-silent phase, then stale-view equivocation. *)
  | Register_forge
      (** Append conflicting forged slots into the leader's register. *)
  | Ack_forge
      (** Plant a forged ack in a peer's register, then lie about coverage. *)
  | Stale_read
      (** Freeze a follower: stop reading the leader's register (mute). *)
  | Withheld_append
      (** A leader that stops appending — starving every follower's read. *)
  | Forged_checkpoint
      (** Serve a joiner a snapshot under a counterfeit checkpoint
          certificate. *)
  | Stale_transfer
      (** Replay a superseded stable checkpoint (genuine certificate) to
          roll a joiner behind its NVRAM floor. *)
  | Join_equivocation
      (** Genuine certificate, lying committed suffix — tell the joiner a
          different history than the one the honest donors vouch for. *)

val all : kind list
(** The trusted-log catalog (the original six), in order — what runs
    against [Minbft] and [Unattested].  Stable: sweep cell counts in the
    thc-attack/v1 export depend on its length. *)

val ubft_all : kind list
(** The register catalog — what runs against [Ubft]. *)

val ckpt_all : kind list
(** The checkpoint/state-transfer catalog — what the durability rigs run
    against [Minbft] and [Unattested].  Kept separate from {!all} so the
    sweep cell counts pinned to its length stay valid. *)

val name : kind -> string
(** Stable CLI/JSONL identifier (e.g. ["equivocation"], ["mismatched-vc"]).
    Persisted in thc-attack/v1 exports — do not rename. *)

val of_name : string -> kind option

val describe : kind -> string
(** One-sentence threat model, for [--list] and the docs. *)

val paper_claim : kind -> string
(** Which claim of the paper the attack exercises. *)

type target = Minbft | Unattested | Ubft

val target_name : target -> string

val target_of_name : string -> target option

val applies : target:target -> attack:kind -> bool
(** Whether the attack belongs to the target's catalog ({!all} for
    [Minbft]/[Unattested], {!ubft_all} for [Ubft]).  {!Matrix} sweeps
    filter their cell grid through this. *)

type result = {
  attack : kind;
  target : target;
  seed : int64;
  corrupt_at : int64;  (** Virtual µs at which the corruption fired. *)
  safety_violations : int;
      (** {!Thc_replication.Smr_spec.check_safety} violations among correct
          replicas. *)
  distinct_ops_at_seq1 : int;
      (** > 1 is the divergent commit made concrete. *)
  commits : int;
  rejections : int;
      (** {!Thc_obsv.Ledger.rejections} of the run's hardware ledger —
          refused attest/check/link operations under [Minbft], refused
          register writes/appends ([swmr.append_denied]) under [Ubft];
          0 for unattested runs, which have no hardware to refuse
          anything. *)
  trusted_ops : (string * int) list;  (** Full ledger rows. *)
  messages : int;
  duration_us : int64;  (** Virtual end time of the run. *)
  client_finished : bool;
      (** Did the honest client get all its replies (MinBFT runs only)? *)
  detail : string;  (** What mechanically happened, for the report. *)
  stalled_spans : Thc_obsv.Span.view list;
      (** Request spans that never reached their reply (MinBFT runs only;
          [[]] for unattested) — the attacker's injected conflicting
          writes and any honest request the attack starved.  Each view's
          last mark names the phase where the hardware discipline stopped
          the request; rendered by [thc attack]'s span drill-down.  Not
          part of the JSONL export, whose bytes are unchanged. *)
}

val holds : result -> bool
(** The paper's prediction for this (attack, target) pair: under [Minbft],
    no safety violation {e and} a nonzero hardware-rejection count; under
    [Unattested], a safety violation; under [Ubft], no safety violation
    {e and} nonzero register-op rejections ([swmr.append_denied] from the
    forgery probe), with the honest client additionally finishing for the
    omission kinds ([Stale_read]/[Withheld_append] — availability
    recovered by quorum slack or view change). *)

val run :
  ?f:int ->
  ?seed:int64 ->
  ?corrupt_at:int64 ->
  ?script:Thc_sim.Adversary.t ->
  ?network:Thc_network.Model.t ->
  target:target ->
  attack:kind ->
  unit ->
  result
(** One attack run, deterministic in [(f, seed, corrupt_at, script)].
    Defaults: [f = 1], [seed = 1], [corrupt_at = 5000]µs.  [script]
    composes an additional network-fault schedule (crashes, partitions —
    e.g. drawn by {!Thc_sim.Adversary.random}) on top of the corruption;
    the run horizon is extended past the script's horizon so held traffic
    drains before verdicts are read.  [network] lowers a named topology
    onto the rig's links ({!Thc_network.Model.install}; re-lowered after
    every scripted heal); rational client strategies are ignored — the
    rigs' scripted clients are attack fixtures, not a workload. *)

val run_export :
  ?f:int ->
  ?seed:int64 ->
  ?corrupt_at:int64 ->
  ?script:Thc_sim.Adversary.t ->
  ?network:Thc_network.Model.t ->
  attack:kind ->
  unit ->
  result * string
(** Like {!run} against the [Minbft] target, additionally returning the
    run's full engine trace as JSONL ({!Thc_sim.Trace.to_jsonl} with
    {!Thc_util.Codec.encode}d messages).  Byte-deterministic per
    [(f, seed, corrupt_at, script)] — the attack driver's contribution to
    the golden-trace equivalence corpus. *)

val pp_result : Format.formatter -> result -> unit
