module E = Thc_sim.Engine
module Trinc = Thc_hardware.Trinc
module R = Thc_replication
module Swmr = Thc_sharedmem.Swmr

type kind =
  | Equivocate
  | Replay_stale
  | Reuse_attestation
  | Mismatched_vc
  | Selective_send
  | Silent_then_lie
  | Register_forge
  | Ack_forge
  | Stale_read
  | Withheld_append
  | Forged_checkpoint
  | Stale_transfer
  | Join_equivocation

let all =
  [
    Equivocate;
    Replay_stale;
    Reuse_attestation;
    Mismatched_vc;
    Selective_send;
    Silent_then_lie;
  ]

let ubft_all = [ Register_forge; Ack_forge; Stale_read; Withheld_append ]

(* The durability catalog: state-transfer attacks at a restarting replica.
   Kept separate from [all] — the thc-attack/v1 sweep cell counts depend on
   that list's length — and run by dedicated rigs with a scripted restart. *)
let ckpt_all = [ Forged_checkpoint; Stale_transfer; Join_equivocation ]

let name = function
  | Equivocate -> "equivocation"
  | Replay_stale -> "replay"
  | Reuse_attestation -> "reuse"
  | Mismatched_vc -> "mismatched-vc"
  | Selective_send -> "selective-send"
  | Silent_then_lie -> "silent-then-lie"
  | Register_forge -> "register-forge"
  | Ack_forge -> "ack-forge"
  | Stale_read -> "stale-read"
  | Withheld_append -> "withheld-append"
  | Forged_checkpoint -> "forged-checkpoint"
  | Stale_transfer -> "stale-transfer"
  | Join_equivocation -> "join-equivocation"

let of_name = function
  | "equivocation" -> Some Equivocate
  | "replay" -> Some Replay_stale
  | "reuse" -> Some Reuse_attestation
  | "mismatched-vc" -> Some Mismatched_vc
  | "selective-send" -> Some Selective_send
  | "silent-then-lie" -> Some Silent_then_lie
  | "register-forge" -> Some Register_forge
  | "ack-forge" -> Some Ack_forge
  | "stale-read" -> Some Stale_read
  | "withheld-append" -> Some Withheld_append
  | "forged-checkpoint" -> Some Forged_checkpoint
  | "stale-transfer" -> Some Stale_transfer
  | "join-equivocation" -> Some Join_equivocation
  | _ -> None

let describe = function
  | Equivocate ->
    "the leader proposes two different operations for the same slot, each \
     shown to a different replica"
  | Replay_stale ->
    "a corrupted replica re-sends an old attested message, trying to run \
     the same counter value past its peers twice"
  | Reuse_attestation ->
    "an attestation produced for one slot is re-labelled as evidence for a \
     different slot (fields copied, message swapped)"
  | Mismatched_vc ->
    "a replica joins a view change carrying a fabricated sent-log instead \
     of its real attested history"
  | Selective_send ->
    "the leader keeps serving a bare quorum and silently starves one \
     replica, hiding part of its message stream"
  | Silent_then_lie ->
    "a two-phase attacker: first fully silent (indistinguishable from a \
     crash), then it comes back and equivocates from its stale view"
  | Register_forge ->
    "a corrupted follower tries to plant a conflicting Slot directly in \
     the leader's register, then rings doorbells for the slot it could \
     not write"
  | Ack_forge ->
    "a corrupted follower tries to append a coverage Ack into a peer's \
     register, then sends the leader a lying Ack_note doorbell"
  | Stale_read ->
    "a corrupted follower freezes on a stale register snapshot: it stops \
     reading, acking and replying (after one parting forgery attempt)"
  | Withheld_append ->
    "the corrupted leader withholds all further register appends, \
     leaving its doorbells ringing over an empty log"
  | Forged_checkpoint ->
    "a Byzantine donor answers a restarting replica's state-transfer \
     request with a snapshot under a counterfeit checkpoint certificate"
  | Stale_transfer ->
    "a Byzantine donor replays a superseded — but genuinely certified — \
     checkpoint at a restarting replica, trying to roll the service back"
  | Join_equivocation ->
    "a Byzantine donor rides a genuine certificate but lies about the \
     committed suffix above it, telling the joiner a history no correct \
     replica has"

let paper_claim = function
  | Equivocate | Replay_stale | Reuse_attestation ->
    "trusted-log mechanisms (TrInc class) make each replica's outbound \
     stream a sequenced reliable broadcast: one counter, one message, ever"
  | Mismatched_vc ->
    "view-change evidence is audited against the dense attested log, so a \
     Byzantine member cannot present an alternative history"
  | Selective_send ->
    "hiding sent messages only creates counter gaps that receivers refuse \
     to step over — selective delivery cannot split a quorum"
  | Silent_then_lie ->
    "silence is a crash fault the 2f+1 protocol already tolerates; the \
     late lie is ordinary equivocation and dies on the counter discipline"
  | Register_forge | Ack_forge ->
    "SWMR registers sit strictly above trusted logs in Figure 1: where a \
     TrInc attacker gets to ask and be refused per message, the register \
     ACL makes writing another's history impossible outright"
  | Stale_read ->
    "withholding reads is self-harm: the register's append order is the \
     one history, so a frozen reader is just a crash the 2f+1 protocol \
     absorbs"
  | Withheld_append ->
    "withholding appends starves the one place followers read from; the \
     register-vote view change replaces the writer and recovers its \
     published prefix"
  | Forged_checkpoint | Stale_transfer ->
    "a checkpoint certificate is f+1 trusted-counter attestations, and the \
     certified floor survives a crash in NVRAM: forged certificates fail \
     CheckAttestation, genuine-but-superseded ones fall below the floor"
  | Join_equivocation ->
    "the certificate covers the checkpoint, not the suffix a donor attaches \
     to it; demanding f+1 distinct donors per suffix slot puts a correct \
     replica behind every installed claim, and the next certified \
     checkpoint jumps whatever stays contested"

type target = Minbft | Unattested | Ubft

(* Target names ride the one protocol codec; "unattested" is the ablation's
   own label (deliberately not a Protocol.t — it is MinBFT minus the
   hardware, not a protocol the harness runs). *)
let target_name = function
  | Minbft -> R.Protocol.to_string R.Protocol.Minbft
  | Unattested -> "unattested"
  | Ubft -> R.Protocol.to_string R.Protocol.Ubft

let target_of_name s =
  if String.equal s "unattested" then Some Unattested
  else
    match R.Protocol.of_string s with
    | Some R.Protocol.Minbft -> Some Minbft
    | Some R.Protocol.Ubft -> Some Ubft
    | Some R.Protocol.Pbft | None -> None

let applies ~target ~attack =
  match target with
  | Minbft | Unattested -> List.mem attack all || List.mem attack ckpt_all
  | Ubft -> List.mem attack ubft_all

type result = {
  attack : kind;
  target : target;
  seed : int64;
  corrupt_at : int64;
  safety_violations : int;
  distinct_ops_at_seq1 : int;
  commits : int;
  rejections : int;
  trusted_ops : (string * int) list;
  messages : int;
  duration_us : int64;
  client_finished : bool;
  detail : string;
  stalled_spans : Thc_obsv.Span.view list;
}

let holds r =
  match r.target with
  | Minbft -> r.safety_violations = 0 && r.rejections > 0
  | Unattested -> r.safety_violations > 0
  | Ubft -> (
    r.safety_violations = 0 && r.rejections > 0
    &&
    (* The forge attempts bounce off the ACL without disturbing the run;
       the availability attacks must additionally leave the cluster able
       to finish serving the honest client (crash-tolerance, possibly
       through a view change). *)
    match r.attack with
    | Stale_read | Withheld_append -> r.client_finished
    | _ -> true)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s vs %s (seed %Ld, corrupt at %Ld):@,\
    \  safety violations : %d@,\
    \  ops at seq 1      : %d distinct@,\
    \  commits           : %d@,\
    \  hw rejections     : %d@,\
    \  messages          : %d@,\
    \  client served     : %b@,\
    \  verdict           : %s@,\
    \  %s@]"
    (name r.attack) (target_name r.target) r.seed r.corrupt_at
    r.safety_violations r.distinct_ops_at_seq1 r.commits r.rejections
    r.messages r.client_finished
    (if holds r then "as the paper predicts" else "UNEXPECTED")
    r.detail

(* --- shared helpers ----------------------------------------------------- *)

let distinct_ops_at_seq1 trace ~replicas =
  List.filter_map
    (fun pid ->
      List.find_map
        (fun obs ->
          match (obs : Thc_sim.Obs.t) with
          | Executed { seq = 1; op; _ } -> Some op
          | _ -> None)
        (Thc_sim.Trace.outputs_of trace pid))
    (List.filter (fun p -> p < replicas) (Thc_sim.Trace.correct_pids trace))
  |> List.sort_uniq compare |> List.length

let client_finished trace ~pid ~expected =
  let done_count =
    List.length
      (List.filter
         (function Thc_sim.Obs.Client_done _ -> true | _ -> false)
         (Thc_sim.Trace.outputs_of trace pid))
  in
  done_count >= expected

(* --- the MinBFT side ----------------------------------------------------- *)

(* Every corruption starts with the same probe: the attacker asks its own
   trinket to re-attest at an already-consumed counter value.  The trinket
   refuses (charging [trinc.attest_denied]), which is the direct form of the
   non-equivocation guarantee; the rest of each attack is the attacker's
   fallback once the rewind is denied. *)
let rewind_probe trinket =
  ignore
    (Trinc.attest trinket
       ~counter:(Trinc.last_counter trinket)
       ~message:"rewind probe")

let minbft_inject ~attack ~engine ~wrap ~trinket ~replica ~attacker_ident ~n ()
    =
  let ctx = Wrap.raw_ctx wrap in
  let out = R.Minbft.attack_out replica in
  let conflicting () =
    ( R.Command.make ~ident:attacker_ident ~rid:9_000 (R.Kv_store.Put ("byz", "A")),
      R.Command.make ~ident:attacker_ident ~rid:9_001 (R.Kv_store.Put ("byz", "B"))
    )
  in
  (* The slot the honest leader would assign next: one past the prepares the
     wrapped behavior has sealed so far. *)
  let next_slot () =
    1
    + List.length
        (List.filter
           (fun (_, m) -> R.Minbft.classify_msg m = "prepare")
           (Wrap.sent wrap))
  in
  let first_sealed () =
    List.find_map (fun (_, m) -> R.Minbft.attestation_of m) (Wrap.sent wrap)
  in
  let equivocate_now () =
    let req_a, req_b = conflicting () in
    let view = R.Minbft.view_of replica in
    let seq = next_slot () in
    ctx.E.send 1 (R.Minbft.adversarial_prepare ~out ~view ~seq ~request:req_a);
    ctx.E.send (n - 1)
      (R.Minbft.adversarial_prepare ~out ~view ~seq ~request:req_b)
  in
  match attack with
  | Equivocate ->
    rewind_probe trinket;
    equivocate_now ()
  | Replay_stale -> (
    rewind_probe trinket;
    match first_sealed () with
    | Some a -> ctx.E.broadcast (R.Minbft.adversarial_wire a)
    | None -> ())
  | Reuse_attestation -> (
    rewind_probe trinket;
    match first_sealed () with
    | Some a ->
      let forged =
        Trinc.counterfeit ~owner:a.owner ~prev:a.prev ~counter:a.counter
          ~message:"reused in a different slot" ~tag:a.tag
      in
      ctx.E.broadcast (R.Minbft.adversarial_wire forged)
    | None -> ())
  | Mismatched_vc ->
    rewind_probe trinket;
    let new_view = R.Minbft.view_of replica + 1 in
    let fabricated =
      Trinc.counterfeit ~owner:ctx.E.self ~prev:0 ~counter:1
        ~message:"fabricated history" ~tag:0L
    in
    ctx.E.broadcast
      (R.Minbft.adversarial_view_change ~out ~new_view ~log:[ fabricated ])
  | Selective_send ->
    rewind_probe trinket;
    Wrap.drop_to wrap (n - 1)
  | Silent_then_lie ->
    Wrap.mute wrap;
    E.at engine
      (Int64.add (ctx.E.now ()) 60_000L)
      (fun () ->
        rewind_probe trinket;
        equivocate_now ())
  | Register_forge | Ack_forge | Stale_read | Withheld_append
  | Forged_checkpoint | Stale_transfer | Join_equivocation ->
    (* Register- and durability-catalog kinds never reach this rig:
       [applies] filters the former, [run] routes the latter to the
       checkpoint rig. *)
    ()

let minbft_detail = function
  | Equivocate ->
    "both equivocating prepares seal onto the one counter chain; the \
     second hides behind a gap, the audited view change carries whichever \
     one a correct replica committed"
  | Replay_stale ->
    "every inbox is already past the replayed counter; each receiver \
     charges link.reject_replay and drops it"
  | Reuse_attestation ->
    "the tag binds owner, counters and message, so the relabelled \
     attestation fails CheckAttestation at every receiver \
     (link.reject_forged)"
  | Mismatched_vc ->
    "the fabricated log fails the dense-chain audit at the would-be new \
     leader (trinc.check_fail); the view change proceeds on honest \
     evidence only"
  | Selective_send ->
    "the starved replica sees a counter gap instead of a fork; its \
     timeout drives an audited view change and the cluster converges"
  | Silent_then_lie ->
    "the silent phase is handled as a leader crash (view change); the \
     late equivocation is stale-view traffic stuck behind its own \
     counter gap"
  | Register_forge | Ack_forge | Stale_read | Withheld_append ->
    "not part of the trusted-log catalog"
  | Forged_checkpoint ->
    "the counterfeit certificate dies on CheckAttestation at the joiner \
     (trinc.check_fail, ckpt.reject_forged); recovery completes from an \
     honest donor's certified snapshot once the links open"
  | Stale_transfer ->
    "the joiner's NVRAM floor outlives its crash: the replayed certificate \
     is genuine but below the floor (ckpt.reject_stale), so the rollback \
     never installs"
  | Join_equivocation ->
    "the lying suffix rides a genuine certificate but a suffix slot needs \
     f+1 distinct donors (ckpt.reject_suffix_equivocation); the contested \
     slot stays out until the next certified checkpoint jumps it"

(* Lower the optional network model onto a rig's engine.  Installed after
   every [Adversary.install] so the re-lowering scheduled at each heal time
   runs after the heal itself (the engine breaks same-time ties by
   installation order).  Rational client strategies are skipped: the rigs'
   scripted clients are part of the attack fixture, not a workload. *)
let install_network network engine ~replicas ~script =
  Option.iter
    (fun m -> Thc_network.Model.install m engine ~replicas ?script ())
    network

let run_minbft ?network ~attack ~f ~seed ~corrupt_at ~script ~until () =
  let config = R.Minbft.default_config ~f in
  let n = config.R.Minbft.n in
  (* pids: replicas 0..n-1, honest client n, attacker's client identity n+1
     (a colluding client whose signing key the corrupted replica holds). *)
  let total = n + 2 in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let world = Trinc.create_world rng ~n in
  let net =
    Thc_sim.Net.create ~n:total ~default:(Thc_sim.Delay.Uniform (50L, 500L))
  in
  let spans = Thc_obsv.Span.create () in
  let engine = E.create ~seed ~spans ~n:total ~net () in
  let byz_pid = match attack with Mismatched_vc -> n - 1 | _ -> 0 in
  let trinkets = Array.init n (fun owner -> Trinc.trinket world ~owner) in
  let replicas =
    Array.init n (fun pid ->
        R.Minbft.create_replica ~config ~keyring ~world ~trinket:trinkets.(pid)
          ~self:pid)
  in
  let wrap = Wrap.create () in
  for pid = 0 to n - 1 do
    let honest = R.Minbft.replica replicas.(pid) in
    E.set_behavior engine pid
      (if pid = byz_pid then Wrap.behavior wrap honest else honest)
  done;
  let plan =
    [
      (0L, R.Kv_store.Put ("x", "1"));
      (10_000L, R.Kv_store.Put ("y", "2"));
      (40_000L, R.Kv_store.Put ("x", "3"));
      (90_000L, R.Kv_store.Get "x");
    ]
  in
  E.set_behavior engine n
    (R.Minbft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:n)
       ~plan);
  let attacker_ident = Thc_crypto.Keyring.secret keyring ~pid:(n + 1) in
  E.on_corrupt engine ~pid:byz_pid (fun _ ->
      minbft_inject ~attack ~engine ~wrap ~trinket:trinkets.(byz_pid)
        ~replica:replicas.(byz_pid) ~attacker_ident ~n ());
  (* Corruption rides the ordinary adversary machinery: a [Corrupt] event
     marks the pid Byzantine and fires the handler above at [corrupt_at]. *)
  Thc_sim.Adversary.install
    {
      Thc_sim.Adversary.events =
        [
          {
            Thc_sim.Adversary.at = corrupt_at;
            action =
              Thc_sim.Adversary.Corrupt { pid = byz_pid; attack = name attack };
          };
        ];
      horizon = corrupt_at;
    }
    engine;
  Option.iter (fun s -> Thc_sim.Adversary.install s engine) script;
  install_network network engine ~replicas:n ~script;
  Thc_obsv.Ledger.set_observer (Trinc.ledger world)
    (Thc_obsv.Span.attribute spans);
  let trace = E.run ~until engine in
  let ledger = Trinc.ledger world in
  ( {
    attack;
    target = Minbft;
    seed;
    corrupt_at;
    safety_violations = List.length (R.Smr_spec.check_safety trace ~replicas:n);
    distinct_ops_at_seq1 = distinct_ops_at_seq1 trace ~replicas:n;
    commits = R.Smr_spec.commits trace ~replicas:n;
    rejections = Thc_obsv.Ledger.rejections ledger;
    trusted_ops = Thc_obsv.Ledger.rows ledger;
    messages = Thc_sim.Trace.messages_sent trace;
    duration_us = trace.Thc_sim.Trace.end_time;
    client_finished = client_finished trace ~pid:n ~expected:(List.length plan);
    detail = minbft_detail attack;
    (* Requests that never reached their reply — the injected conflicting
       writes (rids 9000/9001) and any honest request the attack starved.
       Their span views show exactly which phase the pipeline stopped at. *)
    stalled_spans =
      List.filter
        (fun v -> not (Thc_obsv.Span.complete v))
        (Thc_obsv.Span.views spans);
  },
    trace )

(* --- the unattested side ------------------------------------------------- *)

let unattested_detail = function
  | Equivocate ->
    "nothing orders the leader's stream: each half adopts its proposal and \
     finds an f+1 quorum, committing different operations at slot 1"
  | Replay_stale ->
    "the leader rewinds its history and proposes slot 1 again later with \
     different content; the late half has no way to tell"
  | Reuse_attestation ->
    "the same signed proposal is replayed into a second slot while slot 1 \
     diverges — plain signatures bind content, not position"
  | Mismatched_vc ->
    "the leader hands each half a self-consistent certificate (proposal \
     plus its own commit vote) for conflicting operations"
  | Selective_send ->
    "a bare quorum commits one operation while the starved side is later \
     fed another; no counter gap exists to expose the omission"
  | Silent_then_lie ->
    "after the silent phase the comeback equivocation works exactly as at \
     time zero — without attested history, silence erases nothing"
  | Register_forge | Ack_forge | Stale_read | Withheld_append ->
    "not part of the unattested catalog"
  | Forged_checkpoint ->
    "nothing certifies the snapshot: the joiner installs the fabricated \
     state wholesale and its next read diverges from its peers"
  | Stale_transfer ->
    "the rolled-back snapshot erases a committed slot and the leader \
     rewrites it with different content; order diverges at the rewritten \
     slot"
  | Join_equivocation ->
    "each restarted replica is handed a different state; the next read \
     commits at one slot with different results on each"

let unattested_attacker ?network ~attack ~corrupt_at ~script
    (env : R.Ablation.Unattested.env) :
    R.Ablation.Unattested.wire E.behavior =
  Option.iter (fun s -> Thc_sim.Adversary.install s env.R.Ablation.Unattested.engine) script;
  install_network network env.R.Ablation.Unattested.engine
    ~replicas:env.R.Ablation.Unattested.n ~script;
  let module U = R.Ablation.Unattested in
  let send_to (ctx : _ E.ctx) group wire =
    List.iter (fun dst -> ctx.E.send dst wire) group
  in
  let phase1 = 777 and phase2 = 778 in
  let split ctx =
    send_to ctx env.U.group_a (U.prepare env ~seq:1 env.U.req_a);
    send_to ctx env.U.group_b (U.prepare env ~seq:1 env.U.req_b)
  in
  let arm (ctx : _ E.ctx) ~delay ~tag = ctx.E.set_timer ~delay ~tag in
  let on_timer ctx tag =
    match (attack, tag) with
    | Equivocate, t when t = phase1 -> split ctx
    | Replay_stale, t when t = phase1 ->
      send_to ctx env.U.group_a (U.prepare env ~seq:1 env.U.req_a)
    | Replay_stale, t when t = phase2 ->
      (* the "rewound" second proposal for an already-used slot *)
      send_to ctx env.U.group_b (U.prepare env ~seq:1 env.U.req_b)
    | Reuse_attestation, t when t = phase1 ->
      send_to ctx env.U.group_a (U.prepare env ~seq:1 env.U.req_a);
      send_to ctx env.U.group_b (U.prepare env ~seq:1 env.U.req_b);
      (* the slot-1 proposal reused verbatim as the slot-2 proposal *)
      send_to ctx env.U.group_b (U.prepare env ~seq:2 env.U.req_a)
    | Mismatched_vc, t when t = phase1 ->
      send_to ctx env.U.group_a (U.prepare env ~seq:1 env.U.req_a);
      send_to ctx env.U.group_a
        (U.commit env ~seq:1 ~digest:(U.digest env.U.req_a));
      send_to ctx env.U.group_b (U.prepare env ~seq:1 env.U.req_b);
      send_to ctx env.U.group_b
        (U.commit env ~seq:1 ~digest:(U.digest env.U.req_b))
    | Selective_send, t when t = phase1 ->
      send_to ctx env.U.group_a (U.prepare env ~seq:1 env.U.req_a)
    | Selective_send, t when t = phase2 ->
      send_to ctx env.U.group_b (U.prepare env ~seq:1 env.U.req_b)
    | Silent_then_lie, t when t = phase1 -> split ctx
    | _ -> ()
  in
  {
    init =
      (fun ctx ->
        (match attack with
        | Equivocate | Reuse_attestation | Mismatched_vc ->
          arm ctx ~delay:corrupt_at ~tag:phase1
        | Replay_stale | Selective_send ->
          arm ctx ~delay:corrupt_at ~tag:phase1;
          arm ctx ~delay:(Int64.add corrupt_at 20_000L) ~tag:phase2
        | Silent_then_lie ->
          arm ctx ~delay:(Int64.add corrupt_at 50_000L) ~tag:phase1
        | Register_forge | Ack_forge | Stale_read | Withheld_append
        | Forged_checkpoint | Stale_transfer | Join_equivocation ->
          ()));
    on_message = (fun _ ~src:_ _ -> ());
    on_timer;
  }

let run_unattested ?network ~attack ~f ~seed ~corrupt_at ~script ~until () =
  let r =
    R.Ablation.Unattested.run ~f ~seed
      ~attacker:(unattested_attacker ?network ~attack ~corrupt_at ~script)
      ~detail:(unattested_detail attack) ~until ()
  in
  {
    attack;
    target = Unattested;
    seed;
    corrupt_at;
    safety_violations = List.length r.R.Ablation.violations;
    distinct_ops_at_seq1 = r.R.Ablation.distinct_ops_at_seq1;
    commits = r.R.Ablation.commits;
    rejections = 0;
    trusted_ops = [];
    messages = r.R.Ablation.messages;
    duration_us = r.R.Ablation.duration_us;
    client_finished = false;
    detail = r.R.Ablation.detail;
    stalled_spans = [];
  }

(* --- the durability/checkpoint side --------------------------------------- *)

(* One shared timeline for the checkpoint rigs.  Checkpoints every 2 slots:
   the five pre-crash operations put the cluster at stable(4) with prev(2);
   the joiner crashes at 120ms, the attack window runs to the heal at 150ms,
   and the post-crash operations (slots 6..9) give the joiner two more
   certified boundaries to finish recovering against. *)
let ckpt_interval = 2

let ckpt_restart_at = 120_000L

let ckpt_heal_at = 150_000L

let ckpt_plan =
  [
    (0L, R.Kv_store.Put ("x", "1"));
    (10_000L, R.Kv_store.Put ("y", "2"));
    (20_000L, R.Kv_store.Put ("x", "3"));
    (30_000L, R.Kv_store.Put ("z", "4"));
    (40_000L, R.Kv_store.Put ("x", "5"));
    (150_000L, R.Kv_store.Put ("y", "6"));
    (160_000L, R.Kv_store.Put ("x", "7"));
    (170_000L, R.Kv_store.Put ("z", "8"));
    (180_000L, R.Kv_store.Get "x");
  ]

let ckpt_minbft_inject ~attack ~engine ~wrap ~trinket ~f ~(byz : R.Minbft.t)
    ~attacker_ident ~joiner () =
  let ctx = Wrap.raw_ctx wrap in
  rewind_probe trinket;
  (* The byz donor suppresses its own genuine replies to the joiner while
     the link script holds the honest donors' (see [run_ckpt_minbft]):
     during the window the only snapshots the joiner sees are the attack's.
     Everything opens again at the heal. *)
  Wrap.drop_to wrap joiner;
  E.at engine ckpt_heal_at (fun () -> Wrap.allow_all wrap);
  let inject_at offset build =
    E.at engine
      (Int64.add ckpt_restart_at offset)
      (fun () ->
        match build () with Some m -> ctx.E.send joiner m | None -> ())
  in
  List.iter
    (fun offset ->
      match attack with
      | Forged_checkpoint ->
        inject_at offset (fun () ->
            (* A fabricated boundary above the joiner's NVRAM floor, so only
               the certificate verification stands in the way. *)
            let upto = R.Minbft.stable_upto byz + ckpt_interval in
            let cert =
              List.init (f + 1) (fun owner ->
                  Trinc.counterfeit ~owner ~prev:(900 + owner)
                    ~counter:(901 + owner) ~message:"forged checkpoint vote"
                    ~tag:0L)
            in
            Some
              (R.Minbft.adversarial_snapshot ~upto ~digest:0xDEAD_BEEFL
                 ~exec_count:upto ~cert
                 ~state:[ ("x", "forged") ]
                 ~suffix:[]))
      | Stale_transfer ->
        inject_at offset (fun () -> R.Minbft.stale_snapshot byz)
      | Join_equivocation ->
        inject_at offset (fun () ->
            (* Genuine certificate and state, lying committed suffix: a
               validly-signed colluding-client batch at the slot right above
               the checkpoint, where the honest donors carry the real
               slot-5 batch. *)
            let forged =
              R.Command.make ~ident:attacker_ident ~rid:9_100
                (R.Kv_store.Put ("byz", "Z"))
            in
            R.Minbft.stable_snapshot byz
              ~suffix:[ (R.Minbft.stable_upto byz + 1, [ forged ]) ])
      | _ -> ())
    [ 6_000L; 12_000L; 18_000L ]

let run_ckpt_minbft ?network ~attack ~f ~seed ~corrupt_at ~script ~until () =
  let config =
    {
      (R.Minbft.default_config ~f) with
      R.Minbft.checkpoint_interval = ckpt_interval;
    }
  in
  let n = config.R.Minbft.n in
  (* Same pid layout as [run_minbft]: replicas 0..n-1, honest client n,
     colluding-client identity n+1.  The corrupted donor and the restarting
     joiner must differ, and the leader stays honest so the service keeps
     running through the window. *)
  let total = n + 2 in
  let byz_pid = 1 in
  let joiner = n - 1 in
  (* The rig needs the corruption in place before the crash it preys on. *)
  let corrupt_at = min corrupt_at 60_000L in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let world = Trinc.create_world rng ~n in
  let net =
    Thc_sim.Net.create ~n:total ~default:(Thc_sim.Delay.Uniform (50L, 500L))
  in
  let spans = Thc_obsv.Span.create () in
  let engine = E.create ~seed ~spans ~n:total ~net () in
  let trinkets = Array.init n (fun owner -> Trinc.trinket world ~owner) in
  let replicas =
    Array.init n (fun pid ->
        R.Minbft.create_replica ~config ~keyring ~world ~trinket:trinkets.(pid)
          ~self:pid)
  in
  let wrap = Wrap.create () in
  for pid = 0 to n - 1 do
    let honest =
      if pid = joiner then
        R.Minbft.replica ~restart_at:ckpt_restart_at replicas.(pid)
      else R.Minbft.replica replicas.(pid)
    in
    E.set_behavior engine pid
      (if pid = byz_pid then Wrap.behavior wrap honest else honest)
  done;
  E.set_behavior engine n
    (R.Minbft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:n)
       ~plan:ckpt_plan);
  let attacker_ident = Thc_crypto.Keyring.secret keyring ~pid:(n + 1) in
  E.on_corrupt engine ~pid:byz_pid (fun _ ->
      ckpt_minbft_inject ~attack ~engine ~wrap ~trinket:trinkets.(byz_pid) ~f
        ~byz:replicas.(byz_pid) ~attacker_ident ~joiner ());
  (* Corruption plus the delivery window: every honest donor's link to the
     joiner is held from the crash to the heal, so the byz donor's replies
     are the only snapshots arriving while the joiner awaits — the
     rejection is a deterministic fact of the rig, not a delivery race.  At
     the heal the held genuine snapshots flow and recovery completes. *)
  let window =
    List.filter_map
      (fun donor ->
        if donor = byz_pid || donor = joiner then None
        else
          Some
            {
              Thc_sim.Adversary.at = ckpt_restart_at;
              action = Thc_sim.Adversary.Block_link (donor, joiner);
            })
      (List.init n Fun.id)
  in
  Thc_sim.Adversary.install
    {
      Thc_sim.Adversary.events =
        ({
           Thc_sim.Adversary.at = corrupt_at;
           action =
             Thc_sim.Adversary.Corrupt { pid = byz_pid; attack = name attack };
         }
        :: window)
        @ [
            {
              Thc_sim.Adversary.at = ckpt_heal_at;
              action = Thc_sim.Adversary.Heal;
            };
          ];
      horizon = ckpt_heal_at;
    }
    engine;
  Option.iter (fun s -> Thc_sim.Adversary.install s engine) script;
  install_network network engine ~replicas:n ~script;
  Thc_obsv.Ledger.set_observer (Trinc.ledger world)
    (Thc_obsv.Span.attribute spans);
  let trace = E.run ~until engine in
  let ledger = Trinc.ledger world in
  ( {
      attack;
      target = Minbft;
      seed;
      corrupt_at;
      safety_violations =
        List.length (R.Smr_spec.check_safety trace ~replicas:n);
      distinct_ops_at_seq1 = distinct_ops_at_seq1 trace ~replicas:n;
      commits = R.Smr_spec.commits trace ~replicas:n;
      rejections = Thc_obsv.Ledger.rejections ledger;
      trusted_ops = Thc_obsv.Ledger.rows ledger;
      messages = Thc_sim.Trace.messages_sent trace;
      duration_us = trace.Thc_sim.Trace.end_time;
      client_finished =
        client_finished trace ~pid:n ~expected:(List.length ckpt_plan);
      detail = minbft_detail attack;
      stalled_spans =
        List.filter
          (fun v -> not (Thc_obsv.Span.complete v))
          (Thc_obsv.Span.views spans);
    },
    trace )

(* The same three attacks against the unattested strawman, where state
   transfer is the leader's unverifiable word.  The attacker is the leader:
   it runs a normal prefix (slots 1-2), waits out the scripted restarts,
   serves each joiner whatever snapshot the kind calls for, and then drives
   one more slot whose execution makes the divergence observable. *)
let ckpt_unattested_attacker ?network ~attack ~script ~joiners
    (env : R.Ablation.Unattested.env) : R.Ablation.Unattested.wire E.behavior =
  Option.iter
    (fun s -> Thc_sim.Adversary.install s env.R.Ablation.Unattested.engine)
    script;
  install_network network env.R.Ablation.Unattested.engine
    ~replicas:env.R.Ablation.Unattested.n ~script;
  let module U = R.Ablation.Unattested in
  let propose = 801 and serve = 802 and rewrite = 803 in
  let send_all (ctx : _ E.ctx) wire =
    List.iter (fun dst -> ctx.E.send dst wire) (env.U.group_a @ env.U.group_b)
  in
  let req_c () = U.request env ~rid:9_200 (R.Kv_store.Put ("k", "C")) in
  let on_timer (ctx : _ E.ctx) tag =
    if tag = propose then begin
      send_all ctx (U.prepare env ~seq:1 env.U.req_a);
      send_all ctx (U.prepare env ~seq:2 (req_c ()))
    end
    else if tag = serve then begin
      match attack with
      | Forged_checkpoint ->
        List.iter
          (fun j ->
            ctx.E.send j (U.snapshot env ~state:[ ("k", "forged") ] ~upto:2))
          joiners
      | Stale_transfer ->
        (* Roll the joiner back behind the committed slot 2. *)
        List.iter
          (fun j -> ctx.E.send j (U.snapshot env ~state:[ ("k", "A") ] ~upto:1))
          joiners
      | Join_equivocation ->
        List.iteri
          (fun i j ->
            ctx.E.send j
              (U.snapshot env
                 ~state:[ ("k", "fork" ^ string_of_int i) ]
                 ~upto:2))
          joiners
      | _ -> ()
    end
    else if tag = rewrite then begin
      (match attack with
      | Stale_transfer ->
        (* Rewrite the erased slot at the rolled-back joiner only. *)
        let req_d = U.request env ~rid:9_201 (R.Kv_store.Put ("k", "D")) in
        List.iter
          (fun j ->
            ctx.E.send j (U.prepare env ~seq:2 req_d);
            ctx.E.send j (U.commit env ~seq:2 ~digest:(U.digest req_d)))
          joiners
      | _ -> ());
      (* A read everyone commits: its result pins the divergence. *)
      send_all ctx (U.prepare env ~seq:3 (U.request env ~rid:9_202 (R.Kv_store.Get "k")))
    end
  in
  {
    init =
      (fun ctx ->
        ctx.E.set_timer ~delay:1_000L ~tag:propose;
        ctx.E.set_timer ~delay:55_000L ~tag:serve;
        ctx.E.set_timer ~delay:80_000L ~tag:rewrite);
    on_message = (fun _ ~src:_ _ -> ());
    on_timer;
  }

let ckpt_unattested_restart_at = 50_000L

let run_ckpt_unattested ?network ~attack ~f ~seed ~corrupt_at ~script ~until ()
    =
  let n = (2 * f) + 1 in
  let joiners =
    match attack with
    | Join_equivocation -> List.init (n - 1) (fun i -> i + 1)
    | _ -> [ n - 1 ]
  in
  let restarts = List.map (fun pid -> (pid, ckpt_unattested_restart_at)) joiners in
  let r =
    R.Ablation.Unattested.run ~f ~seed ~restarts
      ~attacker:(ckpt_unattested_attacker ?network ~attack ~script ~joiners)
      ~detail:(unattested_detail attack) ~until ()
  in
  {
    attack;
    target = Unattested;
    seed;
    corrupt_at;
    safety_violations = List.length r.R.Ablation.violations;
    distinct_ops_at_seq1 = r.R.Ablation.distinct_ops_at_seq1;
    commits = r.R.Ablation.commits;
    rejections = 0;
    trusted_ops = [];
    messages = r.R.Ablation.messages;
    duration_us = r.R.Ablation.duration_us;
    client_finished = false;
    detail = r.R.Ablation.detail;
    stalled_spans = [];
  }

(* --- the uBFT-sim side --------------------------------------------------- *)

let ubft_detail = function
  | Register_forge ->
    "both forged appends die on the ACL before touching memory \
     (swmr.append_denied); the doorbells point followers at a register \
     that never held the forgery"
  | Ack_forge ->
    "the foreign-register Ack append is refused (swmr.append_denied) and \
     the lying Ack_note is audited away: the leader re-reads the real \
     register and finds no digest-matching acks"
  | Stale_read ->
    "the frozen follower is a crash from the outside; the remaining 2f \
     replicas keep the f+1 reply quorum and coverage going"
  | Withheld_append ->
    "starved followers time out, plant register votes, and the new \
     leader re-publishes the recovered prefix under the next view"
  | Equivocate | Replay_stale | Reuse_attestation | Mismatched_vc
  | Selective_send | Silent_then_lie | Forged_checkpoint | Stale_transfer
  | Join_equivocation ->
    "not part of the register catalog"

(* Every corruption opens with the same probe pair: plant a forged Slot in
   the leader's register and a forged Ack in a peer follower's.  The ACL
   refuses both outright — where the TrInc attacker at least gets to ask
   its own trinket and be told no, here the write into another's history
   has no interface at all; the attempts land in the ledger as
   [swmr.append_denied].  The rest of each attack is the fallback once
   forgery is off the table. *)
let ubft_inject ~attack ~(registers : R.Ubft.registers) ~wrap ~replica
    ~attacker_ident ~byz_ident ~byz_pid ~n () =
  let ctx = Wrap.raw_ctx wrap in
  let view = R.Ubft.view_of replica in
  let leader = view mod n in
  let peer = (byz_pid + 1) mod n in
  let next_seq = R.Ubft.executed_upto replica + 1 in
  let forged_batch tag =
    [
      R.Command.make ~ident:attacker_ident ~rid:9_000
        (R.Kv_store.Put ("byz", tag));
    ]
  in
  let plant owner record =
    try Swmr.append registers.(owner) ~ident:byz_ident record
    with Thc_sharedmem.Acl.Violation _ -> ()
  in
  let forge_probe () =
    plant leader
      (R.Ubft.forged_slot ~view ~seq:next_seq ~batch:(forged_batch "A"));
    plant peer (R.Ubft.forged_ack ~view ~seq:next_seq ~digest:0L)
  in
  forge_probe ();
  match attack with
  | Register_forge ->
    (* Second conflicting slot for the same seq, then ring everyone: the
       doorbell is harmless because the register never held either. *)
    plant leader
      (R.Ubft.forged_slot ~view ~seq:next_seq ~batch:(forged_batch "B"));
    ctx.E.broadcast (R.Ubft.adversarial_notify ~view ~upto:next_seq)
  | Ack_forge ->
    ctx.E.send leader (R.Ubft.adversarial_ack_note ~view ~upto:(next_seq + 99))
  | Stale_read -> Wrap.mute wrap
  | Withheld_append -> Wrap.mute wrap
  | Equivocate | Replay_stale | Reuse_attestation | Mismatched_vc
  | Selective_send | Silent_then_lie | Forged_checkpoint | Stale_transfer
  | Join_equivocation ->
    ()

let run_ubft ?network ~attack ~f ~seed ~corrupt_at ~script ~until () =
  let config = R.Ubft.default_config ~f in
  let n = config.R.Ubft.n in
  (* Same pid layout as the MinBFT rig: replicas 0..n-1, honest client n,
     colluding-client identity n+1. *)
  let total = n + 2 in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let net =
    Thc_sim.Net.create ~n:total ~default:(Thc_sim.Delay.Uniform (50L, 500L))
  in
  let spans = Thc_obsv.Span.create () in
  let registers : R.Ubft.registers = Swmr.log_array ~n in
  let hw = Thc_obsv.Ledger.create () in
  Swmr.attach_ledger_all registers hw;
  Thc_obsv.Ledger.set_observer hw (Thc_obsv.Span.attribute spans);
  let engine = E.create ~seed ~spans ~n:total ~net () in
  (* The append-withholder must own the register followers read from; the
     other attackers corrupt a follower. *)
  let byz_pid = match attack with Withheld_append -> 0 | _ -> n - 1 in
  let replicas =
    Array.init n (fun pid ->
        R.Ubft.create_replica ~config ~keyring ~registers
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~self:pid)
  in
  let wrap = Wrap.create () in
  for pid = 0 to n - 1 do
    let honest = R.Ubft.replica replicas.(pid) in
    E.set_behavior engine pid
      (if pid = byz_pid then Wrap.behavior wrap honest else honest)
  done;
  let plan =
    [
      (0L, R.Kv_store.Put ("x", "1"));
      (10_000L, R.Kv_store.Put ("y", "2"));
      (40_000L, R.Kv_store.Put ("x", "3"));
      (90_000L, R.Kv_store.Get "x");
    ]
  in
  E.set_behavior engine n
    (R.Ubft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:n)
       ~plan);
  let attacker_ident = Thc_crypto.Keyring.secret keyring ~pid:(n + 1) in
  let byz_ident = Thc_crypto.Keyring.secret keyring ~pid:byz_pid in
  E.on_corrupt engine ~pid:byz_pid (fun _ ->
      ubft_inject ~attack ~registers ~wrap ~replica:replicas.(byz_pid)
        ~attacker_ident ~byz_ident ~byz_pid ~n ());
  Thc_sim.Adversary.install
    {
      Thc_sim.Adversary.events =
        [
          {
            Thc_sim.Adversary.at = corrupt_at;
            action =
              Thc_sim.Adversary.Corrupt { pid = byz_pid; attack = name attack };
          };
        ];
      horizon = corrupt_at;
    }
    engine;
  Option.iter (fun s -> Thc_sim.Adversary.install s engine) script;
  install_network network engine ~replicas:n ~script;
  let trace = E.run ~until engine in
  {
    attack;
    target = Ubft;
    seed;
    corrupt_at;
    safety_violations = List.length (R.Smr_spec.check_safety trace ~replicas:n);
    distinct_ops_at_seq1 = distinct_ops_at_seq1 trace ~replicas:n;
    commits = R.Smr_spec.commits trace ~replicas:n;
    rejections = Thc_obsv.Ledger.rejections hw;
    trusted_ops = Thc_obsv.Ledger.rows hw;
    messages = Thc_sim.Trace.messages_sent trace;
    duration_us = trace.Thc_sim.Trace.end_time;
    client_finished = client_finished trace ~pid:n ~expected:(List.length plan);
    detail = ubft_detail attack;
    stalled_spans =
      List.filter
        (fun v -> not (Thc_obsv.Span.complete v))
        (Thc_obsv.Span.views spans);
  }

let script_slack = function
  | None -> 0L
  | Some s -> s.Thc_sim.Adversary.horizon

let run ?(f = 1) ?(seed = 1L) ?(corrupt_at = 5_000L) ?script ?network ~target
    ~attack () =
  let corrupt_at = if corrupt_at < 1L then 1L else corrupt_at in
  let slack = script_slack script in
  let ckpt = List.mem attack ckpt_all in
  match target with
  | Minbft ->
    let until = Int64.add 500_000L (Int64.add corrupt_at slack) in
    if ckpt then
      fst (run_ckpt_minbft ?network ~attack ~f ~seed ~corrupt_at ~script ~until ())
    else fst (run_minbft ?network ~attack ~f ~seed ~corrupt_at ~script ~until ())
  | Unattested ->
    let until = Int64.add 1_000_000L (Int64.add corrupt_at slack) in
    if ckpt then
      run_ckpt_unattested ?network ~attack ~f ~seed ~corrupt_at ~script ~until ()
    else run_unattested ?network ~attack ~f ~seed ~corrupt_at ~script ~until ()
  | Ubft ->
    let until = Int64.add 500_000L (Int64.add corrupt_at slack) in
    run_ubft ?network ~attack ~f ~seed ~corrupt_at ~script ~until ()

let run_export ?(f = 1) ?(seed = 1L) ?(corrupt_at = 5_000L) ?script ?network
    ~attack () =
  let corrupt_at = if corrupt_at < 1L then 1L else corrupt_at in
  let until = Int64.add 500_000L (Int64.add corrupt_at (script_slack script)) in
  let result, trace =
    if List.mem attack ckpt_all then
      run_ckpt_minbft ?network ~attack ~f ~seed ~corrupt_at ~script ~until ()
    else run_minbft ?network ~attack ~f ~seed ~corrupt_at ~script ~until ()
  in
  (result, Thc_sim.Trace.to_jsonl ~encode_msg:Thc_util.Codec.encode trace)
