module J = Thc_obsv.Json

type cell = { result : Attack.result; holds : bool }

type t = {
  f : int;
  seeds : int64 list;
  timings : int64 list;
  attacks : Attack.kind list;
  targets : Attack.target list;
  network : Thc_network.Model.t option;
  cells : cell list;
}

let runner ?(f = 1) ?(seeds = [ 1L; 2L; 3L ])
    ?(timings = [ 2_000L; 5_000L; 20_000L ]) ?(attacks = Attack.all)
    ?(targets = [ Attack.Minbft; Attack.Unattested ]) ?network () =
  (* Keys in the documented cell order (target, attack, seed, timing); the
     pool merges results in key order, so the matrix is identical at every
     parallelism.  Attacks outside a target's catalog (trusted-log kinds vs
     register kinds) are skipped, not run. *)
  let keys =
    List.concat_map
      (fun target ->
        List.concat_map
          (fun attack ->
            if not (Attack.applies ~target ~attack) then []
            else
              List.concat_map
                (fun seed ->
                  List.map
                    (fun corrupt_at -> (target, attack, seed, corrupt_at))
                    timings)
                seeds)
          attacks)
      targets
  in
  {
    Thc_exec.Runner.name = "attack-matrix";
    keys;
    run_one =
      (fun (target, attack, seed, corrupt_at) ->
        let result =
          Attack.run ~f ~seed ~corrupt_at ?network ~target ~attack ()
        in
        { result; holds = Attack.holds result });
    summarize =
      (fun cells -> { f; seeds; timings; attacks; targets; network; cells });
  }

let sweep ?jobs ?stats ?f ?seeds ?timings ?attacks ?targets ?network () =
  Thc_exec.Runner.run ?jobs ?stats
    (runner ?f ?seeds ?timings ?attacks ?targets ?network ())

let all_hold t = List.for_all (fun c -> c.holds) t.cells

let tally t ~attack ~target =
  List.fold_left
    (fun (ok, total) c ->
      if c.result.Attack.attack = attack && c.result.Attack.target = target
      then ((if c.holds then ok + 1 else ok), total + 1)
      else (ok, total))
    (0, 0) t.cells

let pp ppf t =
  Format.fprintf ppf "@[<v>attack-sweep: f=%d, %d seeds x %d timings@,@,"
    t.f (List.length t.seeds) (List.length t.timings);
  Format.fprintf ppf "| %-15s |" "attack";
  List.iter
    (fun tgt -> Format.fprintf ppf " %-10s |" (Attack.target_name tgt))
    t.targets;
  Format.fprintf ppf "@,|-----------------|";
  List.iter (fun _ -> Format.fprintf ppf "------------|") t.targets;
  Format.fprintf ppf "@,";
  List.iter
    (fun attack ->
      (* A row appears only if the attack applies to at least one swept
         target; out-of-catalog cells render as "—". *)
      if List.exists (fun target -> Attack.applies ~target ~attack) t.targets
      then begin
        Format.fprintf ppf "| %-15s |" (Attack.name attack);
        List.iter
          (fun target ->
            let ok, total = tally t ~attack ~target in
            Format.fprintf ppf " %-10s |"
              (if total = 0 then "-"
               else
                 Printf.sprintf "%s %d/%d"
                   (if ok = total then "pass" else "FAIL")
                   ok total))
          t.targets;
        Format.fprintf ppf "@,"
      end)
    t.attacks;
  Format.fprintf ppf "@,%s@]"
    (if all_hold t then
       "every cell matches the paper's prediction (attested: safe + \
        rejection logged; unattested: divergent commit)"
     else "SOME CELLS DIVERGE FROM THE PREDICTION")

let cell_to_json c =
  let r = c.result in
  J.Obj
    [
      ("type", J.Str "cell");
      ("attack", J.Str (Attack.name r.Attack.attack));
      ("target", J.Str (Attack.target_name r.Attack.target));
      ("seed", J.Int (Int64.to_int r.Attack.seed));
      ("corrupt_at", J.Int (Int64.to_int r.Attack.corrupt_at));
      ("safety_violations", J.Int r.Attack.safety_violations);
      ("distinct_ops_at_seq1", J.Int r.Attack.distinct_ops_at_seq1);
      ("commits", J.Int r.Attack.commits);
      ("rejections", J.Int r.Attack.rejections);
      ("messages", J.Int r.Attack.messages);
      ("duration_us", J.Int (Int64.to_int r.Attack.duration_us));
      ("client_finished", J.Bool r.Attack.client_finished);
      ("holds", J.Bool c.holds);
    ]

let to_jsonl t =
  let header =
    (* The common envelope (schema id, campaign size, revision) plus the
       matrix-specific axes; [jobs] counts cells, never workers — exports
       must stay byte-identical across --jobs values. *)
    Thc_obsv.Envelope.header ~typ:"attack-sweep" ~schema:"thc-attack/v1"
      ~jobs:(List.length t.cells)
      ~git:(Thc_exec.Gitinfo.describe ())
      ~extra:
        ([
          ("f", J.Int t.f);
          ( "seeds",
            J.List (List.map (fun s -> J.Int (Int64.to_int s)) t.seeds) );
          ( "timings",
            J.List (List.map (fun s -> J.Int (Int64.to_int s)) t.timings) );
          ("attacks", J.Int (List.length t.attacks));
          ("targets", J.Int (List.length t.targets));
          ("cells", J.Int (List.length t.cells));
          ("all_hold", J.Bool (all_hold t));
        ]
        (* Network tag only when a model is set, so pre-S7 sweeps export
           the exact bytes they always did. *)
        @
        match t.network with
        | None -> []
        | Some m -> [ ("network", J.Str (Thc_network.Model.tag m)) ])
      ()
  in
  List.map J.to_string (header :: List.map cell_to_json t.cells)

let export t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_jsonl t))
