type route = To of int | Broadcast | Others

type 'm t = {
  mutable cached : ('m Thc_sim.Engine.ctx * 'm Thc_sim.Engine.ctx) option;
      (* (raw, filtered) — captured at the first engine upcall *)
  mutable muted : bool;
  mutable dropped : int list;
  mutable log : (route * 'm) list;  (* newest first *)
}

let create () = { cached = None; muted = false; dropped = []; log = [] }

let blocked t dst = t.muted || List.mem dst t.dropped

let filtered t (ctx : 'm Thc_sim.Engine.ctx) : 'm Thc_sim.Engine.ctx =
  {
    ctx with
    send =
      (fun dst msg ->
        t.log <- (To dst, msg) :: t.log;
        if not (blocked t dst) then ctx.send dst msg);
    broadcast =
      (fun msg ->
        t.log <- (Broadcast, msg) :: t.log;
        for dst = 0 to ctx.n - 1 do
          if not (blocked t dst) then ctx.send dst msg
        done);
    others =
      (fun msg ->
        t.log <- (Others, msg) :: t.log;
        for dst = 0 to ctx.n - 1 do
          if dst <> ctx.self && not (blocked t dst) then ctx.send dst msg
        done);
  }

let ctx_pair t ctx =
  match t.cached with
  | Some pair -> pair
  | None ->
    let pair = (ctx, filtered t ctx) in
    t.cached <- Some pair;
    pair

let behavior t (inner : 'm Thc_sim.Engine.behavior) : 'm Thc_sim.Engine.behavior
    =
  {
    init = (fun ctx -> inner.init (snd (ctx_pair t ctx)));
    on_message =
      (fun ctx ~src msg ->
        if not t.muted then inner.on_message (snd (ctx_pair t ctx)) ~src msg);
    on_timer = (fun ctx tag -> inner.on_timer (snd (ctx_pair t ctx)) tag);
  }

let raw_ctx t =
  match t.cached with
  | Some (raw, _) -> raw
  | None -> failwith "Wrap.raw_ctx: wrapped behavior not started yet"

let mute t = t.muted <- true

let unmute t = t.muted <- false

let drop_to t dst = if not (List.mem dst t.dropped) then t.dropped <- dst :: t.dropped

let allow_all t =
  t.dropped <- [];
  t.muted <- false

let sent t = List.rev t.log
