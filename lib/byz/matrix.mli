(** Attack-sweep matrix: every attack fanned across seeds and corruption
    timings, against both targets, with a pass/fail verdict per cell.

    A cell {e passes} when {!Attack.holds} — the paper's prediction for
    that (attack, target) pair came true.  The whole matrix passing is the
    strongest statement this repository makes about the systems payoff:
    it is not one lucky schedule; across every sampled seed and timing the
    attested protocol shrugs the attack off with an auditable hardware
    rejection while the unattested one forks.

    Exports as thc-attack/v1 JSONL: one header object
    [{"type":"attack-sweep","schema":"thc-attack/v1",...}] followed by one
    [{"type":"cell",...}] object per run.  The rendering is canonical and
    runs are deterministic, so the same sweep always produces
    byte-identical files (checked in CI). *)

type cell = { result : Attack.result; holds : bool }

type t = {
  f : int;
  seeds : int64 list;
  timings : int64 list;  (** Corruption times (virtual µs). *)
  attacks : Attack.kind list;
  targets : Attack.target list;
  network : Thc_network.Model.t option;
      (** Network model every cell ran under; [None] for the legacy
          uniform clique.  Recorded in the export envelope when set. *)
  cells : cell list;  (** Ordered: target, then attack, seed, timing. *)
}

val runner :
  ?f:int ->
  ?seeds:int64 list ->
  ?timings:int64 list ->
  ?attacks:Attack.kind list ->
  ?targets:Attack.target list ->
  ?network:Thc_network.Model.t ->
  unit ->
  (Attack.target * Attack.kind * int64 * int64, cell, t) Thc_exec.Runner.t
(** The matrix as the repository-wide runner shape: keys are the cross
    product in documented cell order — filtered through {!Attack.applies},
    so catalog-foreign (attack, target) pairs produce no cell — and
    [run_one] is one {!Attack.run}. *)

val sweep :
  ?jobs:int ->
  ?stats:(Thc_exec.Pool.stats -> unit) ->
  ?f:int ->
  ?seeds:int64 list ->
  ?timings:int64 list ->
  ?attacks:Attack.kind list ->
  ?targets:Attack.target list ->
  ?network:Thc_network.Model.t ->
  unit ->
  t
(** Run the full cross product ({!Attack.run} per cell).  Defaults: seeds
    1-3, corruption at 2ms/5ms/20ms, all attacks, both targets.  [jobs]
    fans cells out over worker processes; cells merge in key order, so
    the matrix — and its export — is byte-identical at every value. *)

val all_hold : t -> bool

val pp : Format.formatter -> t -> unit
(** The pass/fail matrix as a markdown-style table. *)

val to_jsonl : t -> string list
(** Header line plus one line per cell (thc-attack/v1). *)

val export : t -> string -> unit
(** Write {!to_jsonl} to a file. *)
