(** Behavior-wrapping combinator: corrupt an honest process in place.

    A Byzantine process in this catalog is not written from scratch — it is
    the {e honest} behavior, wrapped so that attack code can observe its
    traffic, gag or skew its outbound links, and inject messages of its own
    through the process's real capabilities.  This mirrors the threat
    model: the adversary takes over a correct replica mid-run and inherits
    exactly its state and credentials, nothing more.

    The wrapper starts fully transparent; attack code flips the switches
    at corruption time (typically from an {!Thc_sim.Engine.on_corrupt}
    handler fired by an adversary-script [Corrupt] event). *)

type route = To of int | Broadcast | Others
(** How the wrapped behavior addressed an outbound message. *)

type 'm t
(** Wrapper state: the traffic log and the current interference mode. *)

val create : unit -> 'm t

val behavior : 'm t -> 'm Thc_sim.Engine.behavior -> 'm Thc_sim.Engine.behavior
(** Wrap an honest behavior.  Every outbound message is recorded in the
    log (whether or not it is then let through); {!mute} additionally
    stops inbound delivery, so a muted process looks exactly like a
    crashed one from the outside while its timers keep running. *)

val raw_ctx : 'm t -> 'm Thc_sim.Engine.ctx
(** The unfiltered engine context of the wrapped process — the injection
    path for attack messages (works even while muted).  Raises [Failure]
    before the engine has started the process. *)

val mute : 'm t -> unit
(** Drop all outbound sends and inbound deliveries from now on. *)

val unmute : 'm t -> unit

val drop_to : 'm t -> int -> unit
(** Silently drop subsequent sends to one destination (selective-send:
    the process appears correct to everyone else). *)

val allow_all : 'm t -> unit
(** Clear every interference switch; the wrapper is transparent again. *)

val sent : 'm t -> (route * 'm) list
(** Everything the wrapped behavior tried to send, oldest first —
    including messages that were muted or dropped.  Replay attacks pick
    their ammunition here. *)
