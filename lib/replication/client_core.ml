let behavior ~rid_base ~n_replicas ~quorum ~ident ~plan ~wrap ~unwrap :
    'm Thc_sim.Engine.behavior =
  let plan = Array.of_list plan in
  let collector = Command.Collector.create ~quorum in
  let sent_at : (int, int64) Hashtbl.t = Hashtbl.create 32 in
  {
    init =
      (fun ctx ->
        Array.iteri (fun i (delay, _) -> ctx.set_timer ~delay ~tag:i) plan);
    on_message =
      (fun ctx ~src:_ m ->
        match unwrap m with
        | Some reply ->
          (match Command.Collector.add collector reply with
          | Some _result ->
            (match Hashtbl.find_opt sent_at reply.rid with
            | Some t0 ->
              if Thc_obsv.Span.enabled ctx.spans then
                Thc_obsv.Span.mark ctx.spans ~client:ctx.self ~rid:reply.rid
                  Thc_obsv.Span.Reply_done ~at:(ctx.now ());
              ctx.output
                (Thc_sim.Obs.Client_done
                   { rid = reply.rid; latency_us = Int64.sub (ctx.now ()) t0 })
            | None -> ())
          | None -> ())
        | None -> ());
    on_timer =
      (fun ctx tag ->
        if tag >= 0 && tag < Array.length plan then begin
          let _, op = plan.(tag) in
          let rid = rid_base + tag in
          let sr = Command.make ~ident ~rid op in
          Hashtbl.replace sent_at rid (ctx.now ());
          if Thc_obsv.Span.enabled ctx.spans then
            Thc_obsv.Span.mark ctx.spans ~client:ctx.self ~rid
              Thc_obsv.Span.Submit ~at:(ctx.now ());
          for replica = 0 to n_replicas - 1 do
            ctx.send replica (wrap sr)
          done
        end);
  }
