type t = (string, string) Hashtbl.t

type op = Get of string | Put of string * string | Delete of string | Incr of string

type result = Value of string option | Stored | Counter of int

let create () = Hashtbl.create 64

let apply t = function
  | Get key -> Value (Hashtbl.find_opt t key)
  | Put (key, value) ->
    Hashtbl.replace t key value;
    Stored
  | Delete key ->
    Hashtbl.remove t key;
    Stored
  | Incr key ->
    let current =
      match Hashtbl.find_opt t key with
      | Some s -> ( try int_of_string s with Failure _ -> 0)
      | None -> 0
    in
    let next = current + 1 in
    Hashtbl.replace t key (string_of_int next);
    Counter next

let digest t =
  (* XOR of per-binding digests: order-insensitive, collision-negligible at
     simulation scale. *)
  Hashtbl.fold
    (fun k v acc ->
      Int64.logxor acc (Thc_crypto.Digest.to_int64 (Thc_crypto.Digest.of_value (k, v))))
    t 0L

let size = Hashtbl.length

(* Sorted bindings, so two stores with equal contents snapshot to equal
   lists — state transfer ships these and verifies the digest after
   [restore]. *)
let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let restore bindings =
  let t = create () in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) bindings;
  t

let reset_to t bindings =
  Hashtbl.reset t;
  List.iter (fun (k, v) -> Hashtbl.replace t k v) bindings

let encode_op (o : op) = Thc_util.Codec.encode o
let decode_op s = (Thc_util.Codec.decode s : op)
let encode_result (r : result) = Thc_util.Codec.encode r
let decode_result s = (Thc_util.Codec.decode s : result)

let pp_op ppf = function
  | Get k -> Format.fprintf ppf "get(%s)" k
  | Put (k, v) -> Format.fprintf ppf "put(%s=%s)" k v
  | Delete k -> Format.fprintf ppf "del(%s)" k
  | Incr k -> Format.fprintf ppf "incr(%s)" k

let pp_result ppf = function
  | Value None -> Format.pp_print_string ppf "nil"
  | Value (Some v) -> Format.fprintf ppf "val(%s)" v
  | Stored -> Format.pp_print_string ppf "ok"
  | Counter n -> Format.fprintf ppf "ctr(%d)" n
