(** TrInc-attested ordered channels: the MinBFT transport discipline.

    MinBFT's central idea (Veronese et al., after Chun et al.'s A2M-PBFT)
    is that if every protocol message a replica sends carries the next
    {e dense} counter value of its trusted incrementer, then a Byzantine
    replica can neither equivocate (two messages with one counter are
    impossible) nor selectively hide messages (a gap in the counter chain
    is visible to every receiver) — each replica's outbound stream becomes
    a sequenced reliable broadcast, exactly the paper's trusted-log class.
    That is what lets commit quorums shrink from 2f+1-of-3f+1 to
    f+1-of-2f+1.

    [Out] seals outgoing payloads; [In] verifies and releases each peer's
    stream strictly in counter order.  The sealed attestation's [message]
    field is the payload itself, so a replica's full sent-log (used by the
    view change) is just the list of its attestations, checkable for
    density by anyone. *)

module Out : sig
  type t

  val create : Thc_hardware.Trinc.t -> t
  (** Wrap this replica's claimed trinket. *)

  val seal : t -> string -> Thc_hardware.Trinc.attestation
  (** Attest the payload with the next dense counter. *)

  val sent_log : t -> Thc_hardware.Trinc.attestation list
  (** Everything sealed so far, counter-ascending — the view-change
      evidence.  A correct replica ships this; a Byzantine one cannot forge
      an alternative (see {!check_log}). *)
end

module In : sig
  type t

  val create : world:Thc_hardware.Trinc.world -> n:int -> t

  val accept :
    t ->
    Thc_hardware.Trinc.attestation ->
    Thc_hardware.Trinc.attestation list
  (** Verify an attestation and absorb it into its owner's stream.  Returns
      the attestations newly released {e in counter order} from that stream
      (empty while a gap remains); their [message] fields are the payloads.
      Forwarded attestations are accepted from any transport source —
      attestations are self-certifying.

      Rejections are charged to the owning world's trusted-op ledger:
      ["link.reject_malformed"] (owner out of range or broken [prev] link),
      ["link.reject_forged"] (tag check failed — also visible as
      ["trinc.check_fail"]) and ["link.reject_replay"] (counter at or below
      the released watermark, or a duplicate of a pending counter).
      Out-of-order but fresh attestations are held silently — reordering is
      the network's doing, not an attack. *)

  val delivered_upto : t -> owner:int -> int
end

val check_log :
  world:Thc_hardware.Trinc.world ->
  owner:int ->
  Thc_hardware.Trinc.attestation list ->
  string list option
(** Validate a complete sent-log: counters 1, 2, ... with matching [prev]
    links and verifying tags, all from [owner].  Returns the payload
    sequence, or [None] on any gap/forgery — the view-change acceptance
    test. *)
