(** MinBFT-style replicated state machine on trusted counters
    (n = 2f+1; Veronese et al., "Efficient Byzantine fault tolerance").

    The motivating application of the whole trusted-hardware line the paper
    classifies: with every replica's outbound stream sealed by a trusted
    incrementer ({!Attested_link}), Byzantine replicas cannot equivocate or
    hide sent messages, so agreement needs only f+1-of-2f+1 quorums and two
    message phases — against PBFT's 2f+1-of-3f+1 and three phases
    ({!Pbft} is the baseline; bench group [smr/*] compares them).

    Normal case: the view's leader packs pending requests into batches (up
    to [batch_size] per slot, partial batches flushed after [batch_delay])
    and seals [Prepare(view, seq, batch)]; every replica that accepts it (in
    the leader's stream order) seals [Commit(view, seq, batch)]; a batch
    commits at a replica once f+1 distinct replicas' messages for it are in
    (the leader's Prepare counting as its commit).  One attestation covers
    the whole batch, so trusted ops per committed request fall as batches
    grow.  Execution applies batch members in order against {!Kv_store};
    replicas reply directly to each request's client, which waits for f+1
    matching replies.

    View change (the audited part that makes f+1 quorums safe): on request
    timeout a replica seals [Rvc(v+1)]; on f+1 matching Rvcs it seals
    [View_change(v+1, L)] where [L] is its {e complete} attested sent-log.
    Logs are dense and unforgeable, so a Byzantine replica cannot present a
    history omitting a Commit it sent: any f+1 valid view-change logs
    necessarily expose every possibly-committed request (commit quorum ∩
    view-change quorum ≥ 1, and even a Byzantine member's log is honest).
    The new leader re-proposes the recovered requests in the new view;
    every replica recomputes the recovery from the same evidence and votes
    only for matching re-proposals. *)

type msg

type config = {
  n : int;  (** Replicas (pids 0..n-1); clients live at pids ≥ n. *)
  f : int;  (** Fault bound; requires [n = 2f+1] (checked). *)
  request_timeout : int64;  (** µs before a pending request triggers Rvc. *)
  check_interval : int64;  (** µs between timeout scans. *)
  batch_size : int;
      (** Max requests the leader packs into one Prepare; each batch costs a
          single trusted-counter attestation, so larger batches amortize
          trusted ops across requests. *)
  batch_delay : int64;  (** µs a partial batch waits before being flushed. *)
  checkpoint_interval : int;
      (** Slots between attested checkpoints; [0] (the default) disables
          durability entirely — no Checkpoint traffic, no truncation — so
          pre-existing runs keep their traces byte-for-byte.  When positive,
          every replica seals a [Checkpoint(upto, digest, exec_count)] after
          executing each multiple of this many slots; f+1 matching
          attestations from distinct trinkets form a {e stable checkpoint
          certificate}, after which the consensus log up to that slot is
          truncated and state transfer can serve joiners from the snapshot
          (see {!Durability}). *)
}

val default_config : f:int -> config

type t
(** Replica state, kept by the harness for post-run inspection. *)

val create_replica :
  config:config ->
  keyring:Thc_crypto.Keyring.t ->
  world:Thc_hardware.Trinc.world ->
  trinket:Thc_hardware.Trinc.t ->
  self:int ->
  t

val replica : ?restart_at:int64 -> t -> msg Thc_sim.Engine.behavior
(** Emits [Obs.Committed] and [Obs.Executed] per operation.

    [restart_at] (µs of simulation time) models a crash-and-restart at that
    instant: the replica loses all volatile state — consensus log, store,
    execution indexes — keeping only its trusted hardware (trinket and
    attested links) and the latest stable checkpoint's {e metadata} (a tiny
    NVRAM record that makes stale state transfer detectable).  It then
    broadcasts [Fetch] until a donor's [Snapshot] passes certificate,
    digest and staleness verification, installs it, emits
    [Obs.Recovered], and resumes normal participation. *)

val client :
  rid_base:int ->
  config:config ->
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  plan:(int64 * Kv_store.op) list ->
  msg Thc_sim.Engine.behavior
(** Sends each planned request to all replicas at its time, waits for f+1
    matching replies, and emits [Obs.Client_done] with the end-to-end
    latency.  [rid_base] offsets request ids so concurrent
    clients keep disjoint rid ranges (see {!Client_core.behavior}). *)

val wrap_request : Command.signed_request -> msg
(** Wire-wrap a client request — lets external traffic generators (e.g.
    {!Thc_workload.Traffic}) drive the cluster without access to the
    concrete message type. *)

val unwrap_reply : msg -> Command.reply option
(** Inverse filter for client-side reply collection. *)

val view_of : t -> int
val executed_upto : t -> int
val store_digest : t -> int64

val durability : t -> Durability.stats
(** Live log size, its high-water-mark, the stable checkpoint boundary and
    the truncation count — all zero while [checkpoint_interval = 0]. *)

val stable_upto : t -> int
(** Highest slot covered by a stable checkpoint certificate (0 if none). *)

val adversarial_prepare :
  out:Attested_link.Out.t ->
  view:int ->
  seq:int ->
  request:Command.signed_request ->
  msg
(** Seal a Prepare on an arbitrary attested link and return the wire message
    — the strongest equivocation attempt a Byzantine leader can mount.  Used
    by the ablation experiments: even with this power, selective delivery
    only creates counter gaps that receivers refuse to process, so safety
    holds (see {!Ablation}). *)

val adversarial_wire : Thc_hardware.Trinc.attestation -> msg
(** Wrap any attestation as a wire message — lets tests inject replays,
    counterfeits and garbage payloads at the transport level. *)

val adversarial_view_change :
  out:Attested_link.Out.t ->
  new_view:int ->
  log:Thc_hardware.Trinc.attestation list ->
  msg
(** Seal a View_change carrying an arbitrary (e.g. counterfeit or
    truncated) sent-log — the mismatched-certificate attack.  The sealing
    itself is honest (the trinket will attest anything once), so receivers
    accept the envelope and the defense is {!Attested_link.check_log}
    rejecting the evidence inside. *)

val attack_out : t -> Attested_link.Out.t
(** The replica's own attested outbound link.  Handing it to attack code
    models full corruption of a replica that still cannot subvert its
    trinket: everything it seals stays on the one dense counter chain. *)

val attestation_of : msg -> Thc_hardware.Trinc.attestation option
(** The attestation inside a sealed wire message, if any — lets attack
    code lift a message it previously sent (or observed) back into material
    for replay and reuse attempts. *)

val stable_snapshot : ?suffix:(int * Command.batch) list -> t -> msg option
(** The replica's latest stable checkpoint packaged as a [Snapshot] wire
    message (suffix-free by default) — [None] until one is certified
    locally.  Attack rigs use it as the honest baseline and, with a
    fabricated [suffix], as the join-time-equivocation payload: a genuine
    certificate carrying a lying committed suffix.  The joiner's f+1
    distinct-donor suffix quorum is the defense. *)

val stale_snapshot : t -> msg option
(** The {e previous} stable checkpoint with its genuine — but superseded —
    certificate: exactly what a stale-state-transfer attacker replays at a
    joiner to roll the service back.  [None] until two checkpoints have
    stabilized. *)

val adversarial_snapshot :
  upto:int ->
  digest:int64 ->
  exec_count:int ->
  cert:Thc_hardware.Trinc.attestation list ->
  state:(string * string) list ->
  suffix:(int * Command.batch) list ->
  msg
(** Assemble an arbitrary [Snapshot] claim — forged certificates (e.g. from
    {!Thc_hardware.Trinc.counterfeit}), mismatched state, fabricated
    suffixes.  The joiner's verification is the only defense, which is the
    point of the forged-checkpoint attack family. *)

val snapshot_cert : msg -> Thc_hardware.Trinc.attestation list option
(** The certificate inside a [Snapshot] message, if any — lets attack rigs
    splice genuine certificates into forged payloads. *)

val classify_msg : msg -> string
(** Short label per wire-message kind (request/prepare/commit/...), for
    {!Thc_sim.Metrics.kind_counts} breakdowns. *)

val pp_msg : Format.formatter -> msg -> unit
