(** MinBFT-style replicated state machine on trusted counters
    (n = 2f+1; Veronese et al., "Efficient Byzantine fault tolerance").

    The motivating application of the whole trusted-hardware line the paper
    classifies: with every replica's outbound stream sealed by a trusted
    incrementer ({!Attested_link}), Byzantine replicas cannot equivocate or
    hide sent messages, so agreement needs only f+1-of-2f+1 quorums and two
    message phases — against PBFT's 2f+1-of-3f+1 and three phases
    ({!Pbft} is the baseline; bench group [smr/*] compares them).

    Normal case: the view's leader packs pending requests into batches (up
    to [batch_size] per slot, partial batches flushed after [batch_delay])
    and seals [Prepare(view, seq, batch)]; every replica that accepts it (in
    the leader's stream order) seals [Commit(view, seq, batch)]; a batch
    commits at a replica once f+1 distinct replicas' messages for it are in
    (the leader's Prepare counting as its commit).  One attestation covers
    the whole batch, so trusted ops per committed request fall as batches
    grow.  Execution applies batch members in order against {!Kv_store};
    replicas reply directly to each request's client, which waits for f+1
    matching replies.

    View change (the audited part that makes f+1 quorums safe): on request
    timeout a replica seals [Rvc(v+1)]; on f+1 matching Rvcs it seals
    [View_change(v+1, L)] where [L] is its {e complete} attested sent-log.
    Logs are dense and unforgeable, so a Byzantine replica cannot present a
    history omitting a Commit it sent: any f+1 valid view-change logs
    necessarily expose every possibly-committed request (commit quorum ∩
    view-change quorum ≥ 1, and even a Byzantine member's log is honest).
    The new leader re-proposes the recovered requests in the new view;
    every replica recomputes the recovery from the same evidence and votes
    only for matching re-proposals. *)

type msg

type config = {
  n : int;  (** Replicas (pids 0..n-1); clients live at pids ≥ n. *)
  f : int;  (** Fault bound; requires [n = 2f+1] (checked). *)
  request_timeout : int64;  (** µs before a pending request triggers Rvc. *)
  check_interval : int64;  (** µs between timeout scans. *)
  batch_size : int;
      (** Max requests the leader packs into one Prepare; each batch costs a
          single trusted-counter attestation, so larger batches amortize
          trusted ops across requests. *)
  batch_delay : int64;  (** µs a partial batch waits before being flushed. *)
}

val default_config : f:int -> config

type t
(** Replica state, kept by the harness for post-run inspection. *)

val create_replica :
  config:config ->
  keyring:Thc_crypto.Keyring.t ->
  world:Thc_hardware.Trinc.world ->
  trinket:Thc_hardware.Trinc.t ->
  self:int ->
  t

val replica : t -> msg Thc_sim.Engine.behavior
(** Emits [Obs.Committed] and [Obs.Executed] per operation. *)

val client :
  rid_base:int ->
  config:config ->
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  plan:(int64 * Kv_store.op) list ->
  msg Thc_sim.Engine.behavior
(** Sends each planned request to all replicas at its time, waits for f+1
    matching replies, and emits [Obs.Client_done] with the end-to-end
    latency.  [rid_base] offsets request ids so concurrent
    clients keep disjoint rid ranges (see {!Client_core.behavior}). *)

val wrap_request : Command.signed_request -> msg
(** Wire-wrap a client request — lets external traffic generators (e.g.
    {!Thc_workload.Traffic}) drive the cluster without access to the
    concrete message type. *)

val unwrap_reply : msg -> Command.reply option
(** Inverse filter for client-side reply collection. *)

val view_of : t -> int
val executed_upto : t -> int
val store_digest : t -> int64

val adversarial_prepare :
  out:Attested_link.Out.t ->
  view:int ->
  seq:int ->
  request:Command.signed_request ->
  msg
(** Seal a Prepare on an arbitrary attested link and return the wire message
    — the strongest equivocation attempt a Byzantine leader can mount.  Used
    by the ablation experiments: even with this power, selective delivery
    only creates counter gaps that receivers refuse to process, so safety
    holds (see {!Ablation}). *)

val adversarial_wire : Thc_hardware.Trinc.attestation -> msg
(** Wrap any attestation as a wire message — lets tests inject replays,
    counterfeits and garbage payloads at the transport level. *)

val adversarial_view_change :
  out:Attested_link.Out.t ->
  new_view:int ->
  log:Thc_hardware.Trinc.attestation list ->
  msg
(** Seal a View_change carrying an arbitrary (e.g. counterfeit or
    truncated) sent-log — the mismatched-certificate attack.  The sealing
    itself is honest (the trinket will attest anything once), so receivers
    accept the envelope and the defense is {!Attested_link.check_log}
    rejecting the evidence inside. *)

val attack_out : t -> Attested_link.Out.t
(** The replica's own attested outbound link.  Handing it to attack code
    models full corruption of a replica that still cannot subvert its
    trinket: everything it seals stays on the one dense counter chain. *)

val attestation_of : msg -> Thc_hardware.Trinc.attestation option
(** The attestation inside a sealed wire message, if any — lets attack
    code lift a message it previously sent (or observed) back into material
    for replay and reuse attempts. *)

val classify_msg : msg -> string
(** Short label per wire-message kind (request/prepare/commit/...), for
    {!Thc_sim.Metrics.kind_counts} breakdowns. *)

val pp_msg : Format.formatter -> msg -> unit
