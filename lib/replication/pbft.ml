type config = {
  n : int;
  f : int;
  request_timeout : int64;
  check_interval : int64;
  batch_size : int;
  batch_delay : int64;
}

let default_config ~f =
  {
    n = (3 * f) + 1;
    f;
    request_timeout = 30_000L;
    check_interval = 10_000L;
    batch_size = 1;
    batch_delay = 2_000L;
  }

type cert = {
  cview : int;
  cseq : int;
  cbatch : Command.batch;
  preprepare_sig : Thc_crypto.Signature.t;
  prepares : Thc_crypto.Signature.t list;  (* over ("prepare", view, seq, digest) *)
}

(* Proof that a batch actually committed: 2f+1 signatures over the Commit
   proto value.  Shipped in view changes so a new leader can neither reuse
   a committed sequence number nor lose a committed batch. *)
type final_cert = {
  fview : int;
  fseq : int;
  fbatch : Command.batch;
  commits : Thc_crypto.Signature.t list;
}

type proto =
  | Pre_prepare of { view : int; seq : int; batch : Command.batch }
  | Prepare of { view : int; seq : int; digest : int64 }
  | Commit of { view : int; seq : int; digest : int64 }
  | View_change of { new_view : int; certs : cert list; finals : final_cert list }
  | New_view of { new_view : int; view_changes : wire list }

and wire = proto Thc_crypto.Signature.signed

type msg =
  | Request of Command.signed_request
  | Signed of wire
  | Reply of Command.reply

let pp_proto ppf = function
  | Pre_prepare { view; seq; batch } ->
    Format.fprintf ppf "pre-prepare(v%d,s%d,%a)" view seq Command.pp_batch
      batch
  | Prepare { view; seq; _ } -> Format.fprintf ppf "prepare(v%d,s%d)" view seq
  | Commit { view; seq; _ } -> Format.fprintf ppf "commit(v%d,s%d)" view seq
  | View_change { new_view; certs; finals } ->
    Format.fprintf ppf "view-change(v%d,%d certs,%d finals)" new_view
      (List.length certs) (List.length finals)
  | New_view { new_view; view_changes } ->
    Format.fprintf ppf "new-view(v%d,%d vcs)" new_view (List.length view_changes)

let pp_msg ppf = function
  | Request sr -> Format.fprintf ppf "request(%a)" Command.pp sr.value
  | Signed w ->
    Format.fprintf ppf "signed(p%d,%a)" w.signature.signer pp_proto w.value
  | Reply r -> Format.fprintf ppf "reply(p%d,#%d)" r.replica r.rid

let check_timer_tag = 1_000_000

let batch_timer_tag = 1_000_001

type status = Normal | Changing of int

type t = {
  config : config;
  keyring : Thc_crypto.Keyring.t;
  ident : Thc_crypto.Keyring.secret;
  self : int;
  store : Kv_store.t;
  mutable view : int;
  mutable status : status;
  mutable next_seq : int;
  preprepares : (int * int, Command.batch * Thc_crypto.Signature.t) Hashtbl.t;
      (* (view, seq) -> first pre-prepare and the leader's signature *)
  prepare_votes : (int * int * int64, (int, Thc_crypto.Signature.t) Hashtbl.t) Hashtbl.t;
  commit_votes : (int * int * int64, (int, Thc_crypto.Signature.t) Hashtbl.t) Hashtbl.t;
  prepare_sent : (int * int, unit) Hashtbl.t;
  commit_sent : (int * int, unit) Hashtbl.t;
  mutable prepared : (int * int, cert) Hashtbl.t;
  committed : (int, Command.batch) Hashtbl.t;
  commit_certs : (int, final_cert) Hashtbl.t;
  mutable exec_upto : int;  (* highest executed slot *)
  mutable exec_count : int;  (* dense per-request execution index *)
  queue : Command.signed_request Queue.t;
  queued : (int * int, unit) Hashtbl.t;
  mutable batch_armed : bool;
  pending : (int * int, Command.signed_request * int64) Hashtbl.t;
  proposed_keys : (int * int, int) Hashtbl.t;
  executed : (int * int, string) Hashtbl.t;
  vc_store : (int, (int, wire) Hashtbl.t) Hashtbl.t;  (* new_view -> signer -> VC *)
  mutable max_vc_sent : int;
  mutable last_vc_at : int64;
  mutable recovered_bound : int;
  expected : (int, int64) Hashtbl.t;
  future_pp : (int, wire list) Hashtbl.t;
      (* Pre_prepares for views we have not adopted yet: the network does
         not order New_view before the re-proposals that follow it. *)
}

let create_replica ~config ~keyring ~ident ~self =
  if config.n <> (3 * config.f) + 1 then
    invalid_arg "Pbft: config requires n = 3f + 1";
  {
    config;
    keyring;
    ident;
    self;
    store = Kv_store.create ();
    view = 0;
    status = Normal;
    next_seq = 1;
    preprepares = Hashtbl.create 64;
    prepare_votes = Hashtbl.create 64;
    commit_votes = Hashtbl.create 64;
    prepare_sent = Hashtbl.create 64;
    commit_sent = Hashtbl.create 64;
    prepared = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    commit_certs = Hashtbl.create 64;
    exec_upto = 0;
    exec_count = 0;
    queue = Queue.create ();
    queued = Hashtbl.create 64;
    batch_armed = false;
    pending = Hashtbl.create 64;
    proposed_keys = Hashtbl.create 64;
    executed = Hashtbl.create 64;
    vc_store = Hashtbl.create 8;
    max_vc_sent = 0;
    last_vc_at = 0L;
    recovered_bound = 0;
    expected = Hashtbl.create 16;
    future_pp = Hashtbl.create 8;
  }

let view_of t = t.view

let executed_upto t = t.exec_upto

let store_digest t = Kv_store.digest t.store

let leader_of t view = view mod t.config.n

let send_signed t (ctx : msg Thc_sim.Engine.ctx) p =
  ctx.broadcast (Signed (Thc_crypto.Signature.seal t.ident p))

let batch_rids (batch : Command.batch) =
  List.map
    (fun (sr : Command.signed_request) -> sr.Thc_crypto.Signature.value.rid)
    batch

let table tbl key mk =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.add tbl key v;
    v

(* --- execution (same discipline as Minbft) ------------------------------ *)

let execute_one t (ctx : msg Thc_sim.Engine.ctx) (sr : Command.signed_request)
    =
  let key = Command.key sr.value in
  let result =
    match Hashtbl.find_opt t.executed key with
    | Some r -> r
    | None ->
      let r =
        Kv_store.encode_result
          (Kv_store.apply t.store (Kv_store.decode_op sr.value.op))
      in
      Hashtbl.replace t.executed key r;
      r
  in
  Hashtbl.remove t.pending key;
  t.exec_count <- t.exec_count + 1;
  if Thc_obsv.Span.enabled ctx.spans then
    Thc_obsv.Span.mark ctx.spans ~client:sr.value.client ~rid:sr.value.rid
      Thc_obsv.Span.Executed ~at:(ctx.now ());
  ctx.output
    (Thc_sim.Obs.Executed { seq = t.exec_count; op = sr.value.op; result });
  ctx.send sr.value.client
    (Reply { replica = t.self; rid = sr.value.rid; result })

let rec try_execute t (ctx : msg Thc_sim.Engine.ctx) =
  match Hashtbl.find_opt t.committed (t.exec_upto + 1) with
  | None -> ()
  | Some batch ->
    t.exec_upto <- t.exec_upto + 1;
    List.iter (execute_one t ctx) batch;
    try_execute t ctx

let committed_op (batch : Command.batch) =
  match batch with
  | [ sr ] -> sr.Thc_crypto.Signature.value.op
  | _ ->
    Thc_util.Codec.encode
      (List.map (fun (sr : Command.signed_request) -> sr.value.op) batch)

let try_commit t (ctx : msg Thc_sim.Engine.ctx) ~view ~seq ~digest =
  match Hashtbl.find_opt t.preprepares (view, seq) with
  | Some (batch, _) when Command.batch_digest batch = digest ->
    let votes = table t.commit_votes (view, seq, digest) (fun () -> Hashtbl.create 8) in
    if
      Hashtbl.length votes >= (2 * t.config.f) + 1
      && not (Hashtbl.mem t.committed seq)
    then begin
      Hashtbl.replace t.committed seq batch;
      if Thc_obsv.Span.enabled ctx.spans then
        Thc_obsv.Span.mark_all ctx.spans ~seq ~rids:(batch_rids batch)
          Thc_obsv.Span.Committed ~at:(ctx.now ());
      Hashtbl.replace t.commit_certs seq
        {
          fview = view;
          fseq = seq;
          fbatch = batch;
          commits = Hashtbl.fold (fun _ s acc -> s :: acc) votes [];
        };
      ctx.Thc_sim.Engine.output
        (Thc_sim.Obs.Committed { view; seq; op = committed_op batch });
      try_execute t ctx
    end
  | Some _ | None -> ()

let try_prepare t (ctx : msg Thc_sim.Engine.ctx) ~view ~seq ~digest =
  match Hashtbl.find_opt t.preprepares (view, seq) with
  | Some (batch, preprepare_sig) when Command.batch_digest batch = digest ->
    let votes = table t.prepare_votes (view, seq, digest) (fun () -> Hashtbl.create 8) in
    if
      Hashtbl.length votes >= 2 * t.config.f
      && not (Hashtbl.mem t.prepared (view, seq))
    then begin
      let prepares = Hashtbl.fold (fun _ s acc -> s :: acc) votes [] in
      Hashtbl.replace t.prepared (view, seq)
        { cview = view; cseq = seq; cbatch = batch; preprepare_sig; prepares };
      if not (Hashtbl.mem t.commit_sent (view, seq)) then begin
        Hashtbl.replace t.commit_sent (view, seq) ();
        if Thc_obsv.Span.enabled ctx.spans then
          Thc_obsv.Span.mark_all ctx.spans ~seq ~rids:(batch_rids batch)
            Thc_obsv.Span.Commit_send ~at:(ctx.now ());
        send_signed t ctx (Commit { view; seq; digest })
      end
    end
  | Some _ | None -> ()

let proposal_acceptable t ~seq ~(batch : Command.batch) =
  (match Hashtbl.find_opt t.committed seq with
  | Some b -> Command.batch_digest b = Command.batch_digest batch
  | None -> true)
  && (seq > t.recovered_bound
     ||
     match Hashtbl.find_opt t.expected seq with
     | Some d -> d = Command.batch_digest batch
     | None -> false)

(* --- leader batching (same discipline as Minbft) ------------------------ *)

let propose_batch t (ctx : msg Thc_sim.Engine.ctx) (batch : Command.batch) =
  if batch <> [] then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    List.iter
      (fun key -> Hashtbl.replace t.proposed_keys key seq)
      (Command.batch_keys batch);
    if Thc_obsv.Span.enabled ctx.spans then
      Thc_obsv.Span.mark_all ctx.spans ~seq ~rids:(batch_rids batch)
        Thc_obsv.Span.Propose ~at:(ctx.now ());
    send_signed t ctx (Pre_prepare { view = t.view; seq; batch })
  end

let rec take_batch t acc k =
  if k = 0 || Queue.is_empty t.queue then List.rev acc
  else begin
    let sr = Queue.pop t.queue in
    let key = Command.key sr.Thc_crypto.Signature.value in
    Hashtbl.remove t.queued key;
    if Hashtbl.mem t.proposed_keys key || Hashtbl.mem t.executed key then
      take_batch t acc k
    else take_batch t (sr :: acc) (k - 1)
  end

let rec flush_queue t ctx ~force =
  if
    Queue.length t.queue >= t.config.batch_size
    || (force && not (Queue.is_empty t.queue))
  then begin
    propose_batch t ctx (take_batch t [] t.config.batch_size);
    flush_queue t ctx ~force
  end

let arm_batch_timer t (ctx : msg Thc_sim.Engine.ctx) =
  if (not t.batch_armed) && not (Queue.is_empty t.queue) then begin
    t.batch_armed <- true;
    ctx.set_timer ~delay:t.config.batch_delay ~tag:batch_timer_tag
  end

let enqueue_request t ctx (sr : Command.signed_request) =
  let key = Command.key sr.Thc_crypto.Signature.value in
  if not (Hashtbl.mem t.queued key) then begin
    Hashtbl.replace t.queued key ();
    Queue.push sr t.queue
  end;
  flush_queue t ctx ~force:false;
  arm_batch_timer t ctx

(* --- view change -------------------------------------------------------- *)

let cert_valid t (c : cert) =
  let digest = Command.batch_digest c.cbatch in
  Command.batch_valid t.keyring c.cbatch
  && c.preprepare_sig.signer = leader_of t c.cview
  && Thc_crypto.Signature.verify_value t.keyring c.preprepare_sig
       (Pre_prepare { view = c.cview; seq = c.cseq; batch = c.cbatch })
  &&
  let valid_prepares =
    List.filter
      (fun (s : Thc_crypto.Signature.t) ->
        s.signer <> leader_of t c.cview
        && Thc_crypto.Signature.verify_value t.keyring s
             ("prepare", c.cview, c.cseq, digest))
      c.prepares
  in
  List.length
    (List.sort_uniq compare
       (List.map (fun (s : Thc_crypto.Signature.t) -> s.signer) valid_prepares))
  >= 2 * t.config.f

let final_valid t (c : final_cert) =
  let digest = Command.batch_digest c.fbatch in
  Command.batch_valid t.keyring c.fbatch
  &&
  let valid_commits =
    List.filter
      (fun (s : Thc_crypto.Signature.t) ->
        Thc_crypto.Signature.verify_value t.keyring s
          (Commit { view = c.fview; seq = c.fseq; digest }))
      c.commits
  in
  List.length
    (List.sort_uniq compare
       (List.map (fun (s : Thc_crypto.Signature.t) -> s.signer) valid_commits))
  >= (2 * t.config.f) + 1

let vc_valid t ~new_view (w : wire) =
  Thc_crypto.Signature.sealed_ok t.keyring w
  &&
  match w.value with
  | View_change { new_view = nv; certs; finals } ->
    nv = new_view
    && List.for_all (cert_valid t) certs
    && List.for_all (final_valid t) finals
  | Pre_prepare _ | Prepare _ | Commit _ | New_view _ -> false

let recover_from_vcs view_changes =
  let best : (int, int * Command.batch) Hashtbl.t = Hashtbl.create 32 in
  let consider ~view ~seq ~batch =
    match Hashtbl.find_opt best seq with
    | Some (v, _) when v >= view -> ()
    | Some _ | None -> Hashtbl.replace best seq (view, batch)
  in
  List.iter
    (fun (w : wire) ->
      match w.value with
      | View_change { certs; finals; _ } ->
        List.iter
          (fun c -> consider ~view:c.cview ~seq:c.cseq ~batch:c.cbatch)
          certs;
        (* Commit proofs are final: they outrank any prepared cert. *)
        List.iter
          (fun c -> consider ~view:max_int ~seq:c.fseq ~batch:c.fbatch)
          finals
      | Pre_prepare _ | Prepare _ | Commit _ | New_view _ -> ())
    view_changes;
  Hashtbl.fold (fun seq (_, batch) acc -> (seq, batch) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Forward reference: adopting a view replays buffered wires through the
   full dispatcher, which is defined below. *)
let handle_wire_ref : (t -> msg Thc_sim.Engine.ctx -> wire -> unit) ref =
  ref (fun _ _ _ -> ())

(* Prepared certificates need not cover a contiguous prefix: a replica can
   prepare seq s+1 without s.  The classic remedy is to fill recovery gaps
   with no-ops so execution cannot stall.  The no-op request is a pure
   function of (new_view, seq), so every replica computes the same expected
   digest and only the new leader's signed instance can pass validation. *)
let noop_request_value t ~new_view ~seq : Command.request =
  {
    client = leader_of t new_view;
    rid = -seq;
    op = Kv_store.encode_op (Kv_store.Get "__noop");
  }

let adopt_new_view t ctx ~new_view view_changes =
  let recovered = recover_from_vcs view_changes in
  t.view <- new_view;
  t.status <- Normal;
  (* Give the new view a full timeout before anyone escalates again: the
     stuck-request clocks restart at adoption. *)
  (let now = ctx.Thc_sim.Engine.now () in
   Hashtbl.filter_map_inplace (fun _ (r, _) -> Some (r, now)) t.pending);
  Hashtbl.reset t.expected;
  t.recovered_bound <-
    List.fold_left (fun acc (seq, _) -> max acc seq) 0 recovered;
  List.iter
    (fun (seq, (batch : Command.batch)) ->
      Hashtbl.replace t.expected seq (Command.batch_digest batch);
      List.iter
        (fun key -> Hashtbl.replace t.proposed_keys key seq)
        (Command.batch_keys batch))
    recovered;
  let gaps =
    List.filter
      (fun seq -> seq > t.exec_upto && not (Hashtbl.mem t.expected seq))
      (List.init t.recovered_bound (fun i -> i + 1))
  in
  List.iter
    (fun seq ->
      Hashtbl.replace t.expected seq
        (Command.batch_digest_of_requests [ noop_request_value t ~new_view ~seq ]))
    gaps;
  if t.self = leader_of t new_view then begin
    t.next_seq <- t.recovered_bound + 1;
    List.iter
      (fun (seq, batch) ->
        send_signed t ctx (Pre_prepare { view = new_view; seq; batch }))
      recovered;
    List.iter
      (fun seq ->
        let request =
          Thc_crypto.Signature.seal t.ident (noop_request_value t ~new_view ~seq)
        in
        send_signed t ctx
          (Pre_prepare { view = new_view; seq; batch = [ request ] }))
      gaps;
    let unproposed =
      Hashtbl.fold
        (fun key (request, _) acc ->
          if Hashtbl.mem t.proposed_keys key then acc
          else (key, request) :: acc)
        t.pending []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (key, sr) ->
        if not (Hashtbl.mem t.queued key) then begin
          Hashtbl.replace t.queued key ();
          Queue.push sr t.queue
        end)
      unproposed;
    flush_queue t ctx ~force:true
  end;
  (* Replay re-proposals that raced ahead of this New_view. *)
  match Hashtbl.find_opt t.future_pp new_view with
  | None -> ()
  | Some buffered ->
    Hashtbl.remove t.future_pp new_view;
    List.iter (fun w -> !handle_wire_ref t ctx w) (List.rev buffered)

let send_view_change t ctx ~new_view =
  t.status <- Changing new_view;
  let certs =
    Hashtbl.fold
      (fun (_, seq) c acc ->
        if not (Hashtbl.mem t.commit_certs seq) then c :: acc else acc)
      t.prepared []
  in
  let finals = Hashtbl.fold (fun _ c acc -> c :: acc) t.commit_certs [] in
  send_signed t ctx (View_change { new_view; certs; finals })

(* Full dispatch needs the wire (for the leader's signature). *)
let handle_wire t (ctx : msg Thc_sim.Engine.ctx) (w : wire) =
  if Thc_crypto.Signature.sealed_ok t.keyring w then begin
    let signer = w.signature.signer in
    match w.value with
    | Pre_prepare { view; seq; batch } ->
      if signer = leader_of t view && view > t.view then begin
        let buffered = Option.value ~default:[] (Hashtbl.find_opt t.future_pp view) in
        Hashtbl.replace t.future_pp view (w :: buffered)
      end;
      if
        signer = leader_of t view
        && view = t.view
        && t.status = Normal
        && Command.batch_valid t.keyring batch
        && (not (Hashtbl.mem t.preprepares (view, seq)))
        && proposal_acceptable t ~seq ~batch
      then begin
        Hashtbl.replace t.preprepares (view, seq) (batch, w.signature);
        List.iter
          (fun key -> Hashtbl.replace t.proposed_keys key seq)
          (Command.batch_keys batch);
        let digest = Command.batch_digest batch in
        if
          t.self <> leader_of t view
          && not (Hashtbl.mem t.prepare_sent (view, seq))
        then begin
          Hashtbl.replace t.prepare_sent (view, seq) ();
          send_signed t ctx (Prepare { view; seq; digest })
        end;
        try_prepare t ctx ~view ~seq ~digest;
        try_commit t ctx ~view ~seq ~digest
      end
    | Prepare { view; seq; digest } ->
      if signer <> leader_of t view then begin
        let votes =
          table t.prepare_votes (view, seq, digest) (fun () -> Hashtbl.create 8)
        in
        if not (Hashtbl.mem votes signer) then begin
          (* Keep the signature itself: it becomes certificate material. *)
          Hashtbl.replace votes signer w.signature;
          try_prepare t ctx ~view ~seq ~digest
        end
      end
    | Commit { view; seq; digest } ->
      let votes =
        table t.commit_votes (view, seq, digest) (fun () -> Hashtbl.create 8)
      in
      if not (Hashtbl.mem votes signer) then begin
        Hashtbl.replace votes signer w.signature;
        try_commit t ctx ~view ~seq ~digest
      end
    | View_change { new_view; _ } ->
      if new_view > t.view && vc_valid t ~new_view w then begin
        let tbl = table t.vc_store new_view (fun () -> Hashtbl.create 8) in
        Hashtbl.replace tbl signer w;
        (* Liveness join: f+1 view changes for a higher view pull us in. *)
        if Hashtbl.length tbl >= t.config.f + 1 && t.max_vc_sent < new_view
        then begin
          t.max_vc_sent <- new_view;
          send_view_change t ctx ~new_view
        end;
        if
          t.self = leader_of t new_view
          && Hashtbl.length tbl >= (2 * t.config.f) + 1
        then begin
          let vcs = Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] in
          send_signed t ctx (New_view { new_view; view_changes = vcs });
          adopt_new_view t ctx ~new_view vcs
        end
      end
    | New_view { new_view; view_changes } ->
      if
        signer = leader_of t new_view
        && new_view > t.view
        && List.for_all (vc_valid t ~new_view) view_changes
        &&
        let signers =
          List.sort_uniq compare
            (List.map (fun (v : wire) -> v.signature.signer) view_changes)
        in
        List.length signers >= (2 * t.config.f) + 1
      then adopt_new_view t ctx ~new_view view_changes
  end

let () = handle_wire_ref := handle_wire

let handle_request t (ctx : msg Thc_sim.Engine.ctx) sr =
  if Command.valid t.keyring sr then begin
    let key = Command.key sr.Thc_crypto.Signature.value in
    match Hashtbl.find_opt t.executed key with
    | Some result ->
      ctx.send sr.value.client
        (Reply { replica = t.self; rid = sr.value.rid; result })
    | None ->
      if not (Hashtbl.mem t.pending key) then
        Hashtbl.replace t.pending key (sr, ctx.now ());
      if
        t.self = leader_of t t.view
        && t.status = Normal
        && not (Hashtbl.mem t.proposed_keys key)
      then begin
        if Thc_obsv.Span.enabled ctx.spans then
          Thc_obsv.Span.mark ctx.spans ~client:sr.value.client
            ~rid:sr.value.rid Thc_obsv.Span.Ingress ~at:(ctx.now ());
        enqueue_request t ctx sr
      end
  end

let handle_check t (ctx : msg Thc_sim.Engine.ctx) =
  let now = ctx.now () in
  let stuck =
    Hashtbl.fold
      (fun _ (_, since) acc ->
        acc || Int64.sub now since > t.config.request_timeout)
      t.pending false
  in
  (if stuck then
     let fresh_attempt = t.max_vc_sent <= t.view in
     let timed_out = Int64.sub now t.last_vc_at > t.config.request_timeout in
     if fresh_attempt || timed_out then begin
       let target = max t.view t.max_vc_sent + 1 in
       t.max_vc_sent <- target;
       t.last_vc_at <- now;
       send_view_change t ctx ~new_view:target
     end);
  ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag

let replica t : msg Thc_sim.Engine.behavior =
  {
    init =
      (fun ctx ->
        ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag);
    on_message =
      (fun ctx ~src:_ m ->
        match m with
        | Request sr -> handle_request t ctx sr
        | Signed w -> handle_wire t ctx w
        | Reply _ -> ());
    on_timer =
      (fun ctx tag ->
        if tag = check_timer_tag then handle_check t ctx
        else if tag = batch_timer_tag then begin
          t.batch_armed <- false;
          if t.self = leader_of t t.view && t.status = Normal then
            flush_queue t ctx ~force:true
        end);
  }

let client ~rid_base ~config ~keyring:_ ~ident ~plan :
    msg Thc_sim.Engine.behavior =
  Client_core.behavior ~rid_base ~n_replicas:config.n ~quorum:(config.f + 1)
    ~ident ~plan
    ~wrap:(fun sr -> Request sr)
    ~unwrap:(function Reply r -> Some r | Request _ | Signed _ -> None)

let wrap_request sr = Request sr
let unwrap_reply = function Reply r -> Some r | Request _ | Signed _ -> None

let classify_msg = function
  | Request _ -> "request"
  | Reply _ -> "reply"
  | Signed w ->
    (match w.value with
    | Pre_prepare _ -> "pre-prepare"
    | Prepare _ -> "prepare"
    | Commit _ -> "commit"
    | View_change _ -> "view-change"
    | New_view _ -> "new-view")
