(** Safety/liveness monitors for the replicated state machines.

    Judged on [Obs.Executed] / [Obs.Client_done] observations, uniformly for
    {!Minbft} and {!Pbft}. *)

type violation = {
  property : [ `Order | `Result | `Liveness | `Replay ];
  info : string;
}
(** [`Order] — two correct replicas executed different operations at one
    sequence number; [`Result] — same op, different results (state machine
    divergence); [`Liveness] — an expected client request never completed;
    [`Replay] — a replica's recorded execution is not a dense sequential
    history of the KV machine (see {!check_state_determinism}). *)

val pp_violation : Format.formatter -> violation -> unit

val check_safety : 'm Thc_sim.Trace.t -> replicas:int -> violation list
(** Pairwise execution-prefix consistency across correct replicas
    (pids [0 .. replicas-1]). *)

val check_state_determinism : 'm Thc_sim.Trace.t -> replicas:int -> violation list
(** Single-writer-order assertion per replica (the linearizability half the
    pairwise check cannot see): the [Executed] stream must carry dense
    sequence numbers [1, 2, ...], and replaying its operations in that order
    against a fresh {!Kv_store} must reproduce every recorded result.
    Together with {!check_safety} (all replicas share one order) this pins
    the committed history to one sequential execution of the service. *)

val check_liveness :
  'm Thc_sim.Trace.t -> expected:(int * int list) list -> violation list
(** [expected] maps each client pid to the request ids it must have
    completed; one violation per missing [Client_done]. *)

val expect_range :
  clients:int -> per_client:int -> first_client_pid:int -> (int * int list) list
(** The {!check_liveness} expectation for the standard multi-client layout:
    client [i] (pid [first_client_pid + i]) owns the contiguous rid block
    [i * per_client .. (i+1) * per_client - 1]. *)

val client_latencies : 'm Thc_sim.Trace.t -> float list
(** All [Client_done] latencies, µs, across every client pid. *)

val latencies_by_client : 'm Thc_sim.Trace.t -> (int * float list) list
(** [Client_done] latencies grouped by the emitting client pid (sorted by
    pid, latencies in completion order). *)

val executed_count : 'm Thc_sim.Trace.t -> pid:int -> int

val commits : 'm Thc_sim.Trace.t -> replicas:int -> int
(** Distinct sequence numbers committed by at least one correct replica —
    the denominator of the trusted-ops-per-commit rate. *)
