(** The durability interface shared by the long-lived protocols.

    A service that runs forever needs three things on top of consensus:
    checkpoint certificates (so a prefix of the log can be declared stable
    by quorum, not by hope), log truncation to the last stable checkpoint
    (bounded memory), and state transfer (so a restarted or lagging
    replica can rejoin from a certified snapshot instead of replaying an
    unbounded log).  MinBFT attests its checkpoints with trusted counters;
    the unattested ablation carries plain-signed ones; uBFT's register
    truncation predates this module — all three report through the same
    {!stats} rows so harness outcomes, the soak workload and bench S8 read
    one vocabulary.

    The quorum rule lives here as a pure function over {!vote}s so its
    edge cases (f+1 boundary, duplicate signers, mismatched metadata) are
    directly testable without running a cluster. *)

type vote = { owner : int; upto : int; digest : int64; exec_count : int }
(** One replica's claim "after executing slots 1..[upto] my store digest
    is [digest] and my dense execution index is [exec_count]".  How the
    claim is authenticated (counter attestation, plain signature, register
    ownership) is the protocol's business; by the time votes reach the
    quorum rule they are assumed authentic. *)

val quorum : f:int -> int
(** [f + 1] — a stable checkpoint needs at least one correct signer. *)

val cert_stable : f:int -> vote list -> bool
(** Whether the votes certify their checkpoint: at least [f + 1]
    {e distinct} owners agreeing on the same [(upto, digest, exec_count)]
    metadata.  Duplicate owners count once; votes for other metadata do
    not help (and do not hurt). *)

type stats = {
  live : int;  (** Log entries currently held (slots not yet truncated). *)
  hwm : int;  (** High-water mark of [live] over the run. *)
  stable_upto : int;  (** Highest quorum-certified checkpoint. *)
  truncations : int;  (** Times the log was compacted. *)
}

val zero : stats

val merge : stats list -> stats
(** Cluster view of per-replica stats: max [live]/[hwm] (the bound must
    hold at the worst replica), min [stable_upto] (the laggard), summed
    [truncations]. *)

val rows : prefix:string -> stats -> (string * int) list
(** [[prefix ^ ".log_live"; ...]] — the observability rows harness
    outcomes and the soak report publish. *)

val bound : checkpoint_interval:int -> int
(** The truncation bound the soak workload asserts: with checkpointing
    every [checkpoint_interval] slots, a healthy replica's live log never
    exceeds [2 * checkpoint_interval] slots (one interval accumulating,
    one awaiting its certificate); [0] when checkpointing is disabled
    (no bound). *)

val bound_ok : checkpoint_interval:int -> stats -> bool
(** [hwm <= bound], vacuously true when disabled. *)
