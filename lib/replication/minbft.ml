type config = {
  n : int;
  f : int;
  request_timeout : int64;
  check_interval : int64;
  batch_size : int;
  batch_delay : int64;
  checkpoint_interval : int;
}

let default_config ~f =
  {
    n = (2 * f) + 1;
    f;
    request_timeout = 30_000L;
    check_interval = 10_000L;
    batch_size = 1;
    batch_delay = 2_000L;
    checkpoint_interval = 0;
  }

type proto =
  | Prepare of { view : int; seq : int; batch : Command.batch }
  | Commit of { view : int; seq : int; batch : Command.batch }
  | Rvc of { new_view : int }
  | View_change of {
      new_view : int;
      log : Thc_hardware.Trinc.attestation list;
    }
  | New_view of {
      new_view : int;
      evidence : Thc_hardware.Trinc.attestation list;
          (* f+1 View_change attestations *)
    }
  | Checkpoint of { upto : int; digest : int64; exec_count : int }
      (* appended last: encoded protos keep their bytes *)

(* What state transfer ships: the latest stable checkpoint (certificate of
   f+1 Checkpoint attestations over the same digest) plus the donor's
   committed suffix.  The payload itself is plain wire data — all trust
   comes from the joiner re-verifying the certificate against the trusted
   counters before installing anything. *)
type snapshot = {
  s_upto : int;
  s_digest : int64;
  s_exec_count : int;
  s_cert : Thc_hardware.Trinc.attestation list;
  s_state : (string * string) list;
  s_suffix : (int * Command.batch) list;
}

type msg =
  | Request of Command.signed_request
  | Sealed of Thc_hardware.Trinc.attestation  (* message field: encoded proto *)
  | Reply of Command.reply
  | Fetch of { have : int }  (* appended last; [have]: joiner's stable floor *)
  | Snapshot of snapshot

let pp_msg ppf = function
  | Request sr -> Format.fprintf ppf "request(%a)" Command.pp sr.value
  | Sealed a -> Format.fprintf ppf "sealed(p%d,c%d)" a.owner a.counter
  | Reply r -> Format.fprintf ppf "reply(p%d,#%d)" r.replica r.rid
  | Fetch { have } -> Format.fprintf ppf "fetch(s%d)" have
  | Snapshot s -> Format.fprintf ppf "snapshot(s%d,x%d)" s.s_upto s.s_exec_count

let check_timer_tag = 1_000_000

let batch_timer_tag = 1_000_001

let restart_timer_tag = 1_000_002

let fetch_timer_tag = 1_000_003

let fetch_retry_delay = 20_000L

type status = Normal | Changing of int

(* A certified checkpoint this replica holds.  [c_state] is [None] when the
   replica learned the certificate without having executed through [c_upto]
   itself (it can truncate against it but cannot serve state transfer). *)
type stable_ckpt = {
  c_upto : int;
  c_digest : int64;
  c_exec_count : int;
  c_cert : Thc_hardware.Trinc.attestation list;
  c_state : (string * string) list option;
}

type t = {
  config : config;
  keyring : Thc_crypto.Keyring.t;
  world : Thc_hardware.Trinc.world;
  self : int;
  out : Attested_link.Out.t;
  inbox : Attested_link.In.t;
  store : Kv_store.t;
  mutable view : int;
  mutable status : status;
  mutable next_seq : int;  (* leader: next sequence number to assign *)
  proposals : (int, Command.batch) Hashtbl.t;  (* seq -> accepted proposal *)
  votes : (int * int * int64, (int, unit) Hashtbl.t) Hashtbl.t;
      (* (view, seq, batch digest) -> voters *)
  commit_sent : (int * int, unit) Hashtbl.t;  (* (view, seq) voted already *)
  committed : (int, Command.batch) Hashtbl.t;
  mutable exec_upto : int;  (* highest executed slot *)
  mutable exec_count : int;  (* dense per-request execution index *)
  queue : Command.signed_request Queue.t;
      (* leader: requests accumulating into the next batch *)
  queued : (int * int, unit) Hashtbl.t;  (* request keys currently queued *)
  mutable batch_armed : bool;  (* batch flush timer outstanding *)
  pending : (int * int, Command.signed_request * int64) Hashtbl.t;
      (* request key -> (request, arrival time) *)
  proposed_keys : (int * int, int) Hashtbl.t;  (* request key -> seq (leader) *)
  executed : (int * int, string) Hashtbl.t;  (* request key -> result *)
  rvc_votes : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* new_view -> supporters *)
  mutable max_rvc_sent : int;
  mutable last_rvc_at : int64;
  vc_evidence : (int, (int, Thc_hardware.Trinc.attestation) Hashtbl.t) Hashtbl.t;
      (* new_view -> owner -> View_change attestation (new leader role) *)
  mutable recovered_bound : int;
      (* after a view change: highest recovered seq; re-proposals at or
         below it must match the recovery *)
  expected : (int, int64) Hashtbl.t;  (* seq -> required request digest *)
  (* --- durability (active only when config.checkpoint_interval > 0) --- *)
  mutable last_ckpt : int;  (* highest boundary we sealed a Checkpoint for *)
  ckpt_votes :
    (int * int64 * int, (int, Thc_hardware.Trinc.attestation) Hashtbl.t)
    Hashtbl.t;
      (* (upto, digest, exec_count) -> owner -> Checkpoint attestation *)
  own_snaps : (int, (string * string) list) Hashtbl.t;
      (* boundary -> store snapshot taken when we executed through it *)
  mutable stable : stable_ckpt option;  (* highest certified checkpoint *)
  mutable prev_stable : stable_ckpt option;  (* the one it superseded *)
  mutable truncated_upto : int;  (* log slots <= this have been dropped *)
  mutable truncations : int;
  mutable log_hwm : int;  (* high-water-mark of live committed slots *)
  mutable awaiting_fetch : bool;  (* restarted; waiting for a Snapshot *)
  suffix_votes : (int * int64, (int, unit) Hashtbl.t) Hashtbl.t;
      (* (seq, batch digest) -> donors vouching for it in a Snapshot suffix;
         a suffix slot installs only at f+1 distinct donors (one is correct) *)
  suffix_batches : (int * int64, Command.batch) Hashtbl.t;
}

let create_replica ~config ~keyring ~world ~trinket ~self =
  if config.n <> (2 * config.f) + 1 then
    invalid_arg "Minbft: config requires n = 2f + 1";
  {
    config;
    keyring;
    world;
    self;
    out = Attested_link.Out.create trinket;
    inbox = Attested_link.In.create ~world ~n:config.n;
    store = Kv_store.create ();
    view = 0;
    status = Normal;
    next_seq = 1;
    proposals = Hashtbl.create 64;
    votes = Hashtbl.create 64;
    commit_sent = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    exec_upto = 0;
    exec_count = 0;
    queue = Queue.create ();
    queued = Hashtbl.create 64;
    batch_armed = false;
    pending = Hashtbl.create 64;
    proposed_keys = Hashtbl.create 64;
    executed = Hashtbl.create 64;
    rvc_votes = Hashtbl.create 8;
    max_rvc_sent = 0;
    last_rvc_at = 0L;
    vc_evidence = Hashtbl.create 8;
    recovered_bound = 0;
    expected = Hashtbl.create 16;
    last_ckpt = 0;
    ckpt_votes = Hashtbl.create 16;
    own_snaps = Hashtbl.create 8;
    stable = None;
    prev_stable = None;
    truncated_upto = 0;
    truncations = 0;
    log_hwm = 0;
    awaiting_fetch = false;
    suffix_votes = Hashtbl.create 8;
    suffix_batches = Hashtbl.create 8;
  }

let view_of t = t.view

let executed_upto t = t.exec_upto

let store_digest t = Kv_store.digest t.store

let leader_of t view = view mod t.config.n

let encode_proto (p : proto) = Thc_util.Codec.encode p

let decode_proto s = (Thc_util.Codec.decode s : proto)

let batch_rids (batch : Command.batch) =
  List.map
    (fun (sr : Command.signed_request) -> sr.Thc_crypto.Signature.value.rid)
    batch

(* Which span phase a sealed protocol message belongs to, and on behalf of
   which requests — used to attribute the trusted ops the seal/accept
   charges (attest on the way out, counter checks on the way in). *)
let span_phase_of_proto = function
  | Prepare { batch; _ } -> (Thc_obsv.Span.Prepare_phase, batch_rids batch)
  | Commit { batch; _ } -> (Thc_obsv.Span.Commit_phase, batch_rids batch)
  | Rvc _ | View_change _ | New_view _ | Checkpoint _ ->
    (Thc_obsv.Span.Other_phase, [])

let seal_and_send t (ctx : msg Thc_sim.Engine.ctx) p =
  let a =
    if Thc_obsv.Span.enabled ctx.spans then begin
      let phase, rids = span_phase_of_proto p in
      Thc_obsv.Span.in_phase ctx.spans phase ~rids (fun () ->
          Attested_link.Out.seal t.out (encode_proto p))
    end
    else Attested_link.Out.seal t.out (encode_proto p)
  in
  ctx.broadcast (Sealed a)

let voters t key =
  match Hashtbl.find_opt t.votes key with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add t.votes key tbl;
    tbl

let rvc_supporters t nv =
  match Hashtbl.find_opt t.rvc_votes nv with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add t.rvc_votes nv tbl;
    tbl

(* --- execution --------------------------------------------------------- *)

(* Executing a slot applies every request of its batch in batch order.  The
   per-request [Executed] observations use a separate dense index
   ([exec_count]) so state-determinism replay keeps seeing consecutive
   sequence numbers even when slots carry more than one request. *)
let execute_one t (ctx : msg Thc_sim.Engine.ctx) (sr : Command.signed_request)
    =
  let key = Command.key sr.value in
  let result =
    match Hashtbl.find_opt t.executed key with
    | Some r -> r  (* duplicate commit of one request: do not re-apply *)
    | None ->
      let r =
        Kv_store.encode_result
          (Kv_store.apply t.store (Kv_store.decode_op sr.value.op))
      in
      Hashtbl.replace t.executed key r;
      r
  in
  Hashtbl.remove t.pending key;
  t.exec_count <- t.exec_count + 1;
  if Thc_obsv.Span.enabled ctx.spans then
    Thc_obsv.Span.mark ctx.spans ~client:sr.value.client ~rid:sr.value.rid
      Thc_obsv.Span.Executed ~at:(ctx.now ());
  ctx.output
    (Thc_sim.Obs.Executed { seq = t.exec_count; op = sr.value.op; result });
  ctx.send sr.value.client
    (Reply { replica = t.self; rid = sr.value.rid; result })

(* --- durability: checkpoints, truncation, state transfer --------------- *)

let stable_upto t = match t.stable with Some c -> c.c_upto | None -> 0

(* Drop consensus-log state for slots covered by the stable checkpoint (and
   already executed locally).  This is the compaction that keeps a
   long-lived replica's memory bounded by the checkpoint interval. *)
let truncate_log t =
  match t.stable with
  | None -> ()
  | Some c ->
    let bound = min c.c_upto t.exec_upto in
    if bound > t.truncated_upto then begin
      for seq = t.truncated_upto + 1 to bound do
        Hashtbl.remove t.committed seq;
        Hashtbl.remove t.proposals seq;
        Hashtbl.remove t.expected seq
      done;
      Hashtbl.filter_map_inplace
        (fun (_, seq, _) tbl -> if seq <= bound then None else Some tbl)
        t.votes;
      Hashtbl.filter_map_inplace
        (fun (_, seq) () -> if seq <= bound then None else Some ())
        t.commit_sent;
      (* Certificate votes and our retained snapshots below the stable
         boundary can never become a newer stable checkpoint. *)
      Hashtbl.filter_map_inplace
        (fun (upto, _, _) tbl -> if upto <= c.c_upto then None else Some tbl)
        t.ckpt_votes;
      Hashtbl.filter_map_inplace
        (fun upto s -> if upto < c.c_upto then None else Some s)
        t.own_snaps;
      Hashtbl.filter_map_inplace
        (fun (seq, _) tbl -> if seq <= bound then None else Some tbl)
        t.suffix_votes;
      Hashtbl.filter_map_inplace
        (fun (seq, _) b -> if seq <= bound then None else Some b)
        t.suffix_batches;
      t.truncated_upto <- bound;
      t.truncations <- t.truncations + 1
    end

(* f+1 matching Checkpoint attestations from distinct trinkets certify the
   boundary: at least one comes from a correct replica, so the digest is the
   real state and the prefix may be dropped everywhere. *)
let note_ckpt_vote t (ctx : msg Thc_sim.Engine.ctx)
    ~(att : Thc_hardware.Trinc.attestation) ~upto ~digest ~exec_count =
  if t.config.checkpoint_interval > 0 && upto > stable_upto t then begin
    let key = (upto, digest, exec_count) in
    let tbl =
      match Hashtbl.find_opt t.ckpt_votes key with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.add t.ckpt_votes key tbl;
        tbl
    in
    Hashtbl.replace tbl att.owner att;
    if Hashtbl.length tbl >= t.config.f + 1 then begin
      let cert =
        Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
        |> List.sort
             (fun (a : Thc_hardware.Trinc.attestation) b ->
               compare a.owner b.owner)
      in
      t.prev_stable <- t.stable;
      t.stable <-
        Some
          {
            c_upto = upto;
            c_digest = digest;
            c_exec_count = exec_count;
            c_cert = cert;
            c_state = Hashtbl.find_opt t.own_snaps upto;
          };
      truncate_log t;
      (* A certified boundary far ahead of our execution covers slots we can
         no longer obtain through ordinary commits — delivered while we were
         down, or withheld by an equivocating donor.  Re-enter state
         transfer: the certificate legitimizes jumping over the gap.  The
         two-interval slack keeps a merely-lagging replica (commits still in
         flight) from wiping progress it is about to make. *)
      if
        (not t.awaiting_fetch)
        && upto - t.exec_upto >= 2 * t.config.checkpoint_interval
        && not (Hashtbl.mem t.committed (t.exec_upto + 1))
      then begin
        t.awaiting_fetch <- true;
        ctx.others (Fetch { have = stable_upto t });
        ctx.set_timer ~delay:fetch_retry_delay ~tag:fetch_timer_tag
      end
    end
  end

(* Called right after executing a slot: on an interval boundary, snapshot
   the store and broadcast an attested Checkpoint (our own vote arrives via
   the broadcast-to-self inbox like every other sealed message). *)
let maybe_checkpoint t (ctx : msg Thc_sim.Engine.ctx) =
  let ival = t.config.checkpoint_interval in
  if ival > 0 && t.exec_upto mod ival = 0 && t.exec_upto > t.last_ckpt then begin
    t.last_ckpt <- t.exec_upto;
    Hashtbl.replace t.own_snaps t.exec_upto (Kv_store.snapshot t.store);
    seal_and_send t ctx
      (Checkpoint
         {
           upto = t.exec_upto;
           digest = Kv_store.digest t.store;
           exec_count = t.exec_count;
         })
  end

let rec try_execute t (ctx : msg Thc_sim.Engine.ctx) =
  (* A restarted replica's store is behind its commit log until a verified
     snapshot installs; executing meanwhile would emit divergent results.
     Commits still accumulate — installation drains them. *)
  if t.awaiting_fetch then ()
  else
  match Hashtbl.find_opt t.committed (t.exec_upto + 1) with
  | None -> ()
  | Some batch ->
    t.exec_upto <- t.exec_upto + 1;
    List.iter (execute_one t ctx) batch;
    maybe_checkpoint t ctx;
    try_execute t ctx

let record_commit t (ctx : msg Thc_sim.Engine.ctx) ~view ~seq
    ~(batch : Command.batch) ~voter =
  let digest = Command.batch_digest batch in
  let tbl = voters t (view, seq, digest) in
  Hashtbl.replace tbl voter ();
  if
    Hashtbl.length tbl >= t.config.f + 1
    && not (Hashtbl.mem t.committed seq)
  then begin
    Hashtbl.replace t.committed seq batch;
    t.log_hwm <- max t.log_hwm (Hashtbl.length t.committed);
    if Thc_obsv.Span.enabled ctx.spans then
      Thc_obsv.Span.mark_all ctx.spans ~seq ~rids:(batch_rids batch)
        Thc_obsv.Span.Committed ~at:(ctx.now ());
    let op =
      match batch with
      | [ sr ] -> sr.Thc_crypto.Signature.value.op
      | _ ->
        Thc_util.Codec.encode
          (List.map
             (fun (sr : Command.signed_request) -> sr.value.op)
             batch)
    in
    ctx.Thc_sim.Engine.output (Thc_sim.Obs.Committed { view; seq; op });
    try_execute t ctx
  end

(* --- state transfer ---------------------------------------------------- *)

(* A donor serves its latest stable checkpoint (it must hold the state, not
   just the certificate) plus whatever committed suffix it still has. *)
let handle_fetch t (ctx : msg Thc_sim.Engine.ctx) ~src ~have =
  if (not t.awaiting_fetch) && src <> t.self && src < t.config.n then
    match t.stable with
    | Some ({ c_state = Some state; _ } as c) when c.c_upto >= have ->
      let suffix =
        Hashtbl.fold
          (fun seq batch acc ->
            if seq > c.c_upto then (seq, batch) :: acc else acc)
          t.committed []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      ctx.send src
        (Snapshot
           {
             s_upto = c.c_upto;
             s_digest = c.c_digest;
             s_exec_count = c.c_exec_count;
             s_cert = c.c_cert;
             s_state = state;
             s_suffix = suffix;
           })
    | Some _ | None -> ()

(* The joiner trusts nothing in the Snapshot payload until the certificate
   checks out against the trusted counters: f+1 attestations from distinct
   trinkets, each passing [Trinc.check] and decoding to a Checkpoint over
   exactly the claimed (upto, digest, exec_count). *)
let snapshot_cert_valid t (s : snapshot) =
  let votes =
    List.filter_map
      (fun (att : Thc_hardware.Trinc.attestation) ->
        if Thc_hardware.Trinc.check t.world att ~id:att.owner then
          match decode_proto att.message with
          | Checkpoint { upto; digest; exec_count } ->
            Some { Durability.owner = att.owner; upto; digest; exec_count }
          | Prepare _ | Commit _ | Rvc _ | View_change _ | New_view _ -> None
          | exception _ -> None
        else None)
      s.s_cert
  in
  List.length votes = List.length s.s_cert
  && List.for_all
       (fun (v : Durability.vote) ->
         v.upto = s.s_upto && v.digest = s.s_digest
         && v.exec_count = s.s_exec_count)
       votes
  && Durability.cert_stable ~f:t.config.f votes

(* The certificate covers only the checkpoint itself; the committed suffix a
   donor attaches is its own unattested claim.  A single Byzantine donor
   could otherwise feed a joiner validly-signed batches that were never
   committed anywhere (join-time equivocation), so a suffix slot installs
   only once f+1 distinct donors vouch for the same batch — at least one of
   them is correct.  Slots that never reach that quorum are jumped over by
   the next certified checkpoint (see [note_ckpt_vote]). *)
let note_suffix_votes t (ctx : msg Thc_sim.Engine.ctx) ~donor (s : snapshot) =
  List.iter
    (fun (seq, (batch : Command.batch)) ->
      if
        seq > s.s_upto
        && seq > t.truncated_upto
        && (not (Hashtbl.mem t.committed seq))
        && Command.batch_valid t.keyring batch
      then begin
        let digest = Command.batch_digest batch in
        let conflict =
          Hashtbl.fold
            (fun (seq', d') _ acc -> acc || (seq' = seq && d' <> digest))
            t.suffix_votes false
        in
        if conflict then
          (* Two donors tell the joiner different histories for one slot:
             someone is equivocating at join time.  Neither claim installs
             until one side reaches f+1 donors. *)
          Thc_obsv.Ledger.bump
            (Thc_hardware.Trinc.ledger t.world)
            "ckpt.reject_suffix_equivocation";
        let tbl =
          match Hashtbl.find_opt t.suffix_votes (seq, digest) with
          | Some tbl -> tbl
          | None ->
            let tbl = Hashtbl.create 4 in
            Hashtbl.add t.suffix_votes (seq, digest) tbl;
            Hashtbl.replace t.suffix_batches (seq, digest) batch;
            tbl
        in
        Hashtbl.replace tbl donor ();
        if
          Hashtbl.length tbl >= t.config.f + 1
          && not (Hashtbl.mem t.committed seq)
        then begin
          Hashtbl.replace t.committed seq batch;
          t.log_hwm <- max t.log_hwm (Hashtbl.length t.committed)
        end
      end)
    s.s_suffix;
  try_execute t ctx

let install_snapshot t (ctx : msg Thc_sim.Engine.ctx) ~donor (s : snapshot) =
  Kv_store.reset_to t.store s.s_state;
  t.exec_upto <- s.s_upto;
  t.exec_count <- s.s_exec_count;
  t.last_ckpt <- max t.last_ckpt s.s_upto;
  t.truncated_upto <- max t.truncated_upto s.s_upto;
  t.stable <-
    Some
      {
        c_upto = s.s_upto;
        c_digest = s.s_digest;
        c_exec_count = s.s_exec_count;
        c_cert = s.s_cert;
        c_state = Some s.s_state;
      };
  t.awaiting_fetch <- false;
  ctx.output
    (Thc_sim.Obs.Recovered { upto = s.s_upto; exec_count = s.s_exec_count });
  note_suffix_votes t ctx ~donor s

(* Everything in the payload is distrusted until the certificate checks out
   and the shipped state hashes to what it certifies.  Valid snapshots that
   arrive after one already installed still contribute suffix votes: the
   f+1 donor quorum usually completes from those late replies. *)
let handle_snapshot t (ctx : msg Thc_sim.Engine.ctx) ~src (s : snapshot) =
  if src <> t.self && src < t.config.n then begin
    let hw = Thc_hardware.Trinc.ledger t.world in
    if not (snapshot_cert_valid t s) then begin
      if t.awaiting_fetch then Thc_obsv.Ledger.bump hw "ckpt.reject_forged"
    end
    else if Kv_store.digest (Kv_store.restore s.s_state) <> s.s_digest then begin
      (* Valid certificate, but the shipped state is not what it certifies. *)
      if t.awaiting_fetch then Thc_obsv.Ledger.bump hw "ckpt.reject_forged"
    end
    else if t.awaiting_fetch then
      if s.s_upto < stable_upto t then
        (* Behind the certified floor that survived our restart: installing
           it would roll the service back. *)
        Thc_obsv.Ledger.bump hw "ckpt.reject_stale"
      else install_snapshot t ctx ~donor:src s
    else note_suffix_votes t ctx ~donor:src s
  end

(* Crash-and-restart: everything volatile is lost.  The trinket, its
   attested links and the latest certified checkpoint *metadata* survive
   (the trusted counter plus a tiny NVRAM record — this floor is what makes
   stale state transfer detectable).  Service state comes back only via a
   verified Snapshot. *)
let restart t (ctx : msg Thc_sim.Engine.ctx) =
  Hashtbl.reset t.proposals;
  Hashtbl.reset t.votes;
  Hashtbl.reset t.commit_sent;
  Hashtbl.reset t.committed;
  Queue.clear t.queue;
  Hashtbl.reset t.queued;
  t.batch_armed <- false;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.proposed_keys;
  Hashtbl.reset t.executed;
  Hashtbl.reset t.rvc_votes;
  Hashtbl.reset t.vc_evidence;
  Hashtbl.reset t.expected;
  Hashtbl.reset t.ckpt_votes;
  Hashtbl.reset t.own_snaps;
  Hashtbl.reset t.suffix_votes;
  Hashtbl.reset t.suffix_batches;
  t.recovered_bound <- 0;
  Kv_store.reset_to t.store [];
  t.exec_upto <- 0;
  t.exec_count <- 0;
  t.truncated_upto <- 0;
  t.last_ckpt <- 0;
  t.status <- Normal;
  t.stable <-
    (match t.stable with
    | Some c -> Some { c with c_state = None }
    | None -> None);
  t.prev_stable <- None;
  t.awaiting_fetch <- true;
  ctx.others (Fetch { have = stable_upto t });
  ctx.set_timer ~delay:fetch_retry_delay ~tag:fetch_timer_tag

(* A replica votes for a proposal unless it contradicts what it committed or
   what the latest view change recovered. *)
let proposal_acceptable t ~seq ~(batch : Command.batch) =
  (match Hashtbl.find_opt t.committed seq with
  | Some b -> Command.batch_digest b = Command.batch_digest batch
  | None -> true)
  && (seq > t.recovered_bound
     ||
     match Hashtbl.find_opt t.expected seq with
     | Some d -> d = Command.batch_digest batch
     | None -> false)

let handle_prepare t (ctx : msg Thc_sim.Engine.ctx) ~owner ~view ~seq ~batch =
  if
    owner = leader_of t view
    && view = t.view
    && t.status = Normal
    && Command.batch_valid t.keyring batch
    && proposal_acceptable t ~seq ~batch
  then begin
    Hashtbl.replace t.proposals seq batch;
    List.iter
      (fun key -> Hashtbl.replace t.proposed_keys key seq)
      (Command.batch_keys batch);
    record_commit t ctx ~view ~seq ~batch ~voter:owner;
    if t.self <> owner && not (Hashtbl.mem t.commit_sent (view, seq)) then begin
      Hashtbl.replace t.commit_sent (view, seq) ();
      if Thc_obsv.Span.enabled ctx.spans then
        Thc_obsv.Span.mark_all ctx.spans ~seq ~rids:(batch_rids batch)
          Thc_obsv.Span.Commit_send ~at:(ctx.now ());
      seal_and_send t ctx (Commit { view; seq; batch })
    end
  end

(* --- leader batching --------------------------------------------------- *)

let propose_batch t (ctx : msg Thc_sim.Engine.ctx) (batch : Command.batch) =
  if batch <> [] then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    List.iter
      (fun key -> Hashtbl.replace t.proposed_keys key seq)
      (Command.batch_keys batch);
    if Thc_obsv.Span.enabled ctx.spans then
      Thc_obsv.Span.mark_all ctx.spans ~seq ~rids:(batch_rids batch)
        Thc_obsv.Span.Propose ~at:(ctx.now ());
    seal_and_send t ctx (Prepare { view = t.view; seq; batch })
  end

(* Pop up to [k] still-unproposed requests off the queue; requests proposed
   or executed meanwhile (e.g. recovered by a view change) are dropped. *)
let rec take_batch t acc k =
  if k = 0 || Queue.is_empty t.queue then List.rev acc
  else begin
    let sr = Queue.pop t.queue in
    let key = Command.key sr.Thc_crypto.Signature.value in
    Hashtbl.remove t.queued key;
    if Hashtbl.mem t.proposed_keys key || Hashtbl.mem t.executed key then
      take_batch t acc k
    else take_batch t (sr :: acc) (k - 1)
  end

(* Propose full batches; with [~force] also drain the partial remainder
   (batch-delay expiry or view-change adoption). *)
let rec flush_queue t ctx ~force =
  if
    Queue.length t.queue >= t.config.batch_size
    || (force && not (Queue.is_empty t.queue))
  then begin
    propose_batch t ctx (take_batch t [] t.config.batch_size);
    flush_queue t ctx ~force
  end

let arm_batch_timer t (ctx : msg Thc_sim.Engine.ctx) =
  if (not t.batch_armed) && not (Queue.is_empty t.queue) then begin
    t.batch_armed <- true;
    ctx.set_timer ~delay:t.config.batch_delay ~tag:batch_timer_tag
  end

let enqueue_request t ctx (sr : Command.signed_request) =
  let key = Command.key sr.Thc_crypto.Signature.value in
  if not (Hashtbl.mem t.queued key) then begin
    Hashtbl.replace t.queued key ();
    Queue.push sr t.queue
  end;
  flush_queue t ctx ~force:false;
  arm_batch_timer t ctx

(* --- view change ------------------------------------------------------- *)

(* Deterministic recovery from view-change evidence: for every sequence
   number, adopt the batch carried by the highest-view Prepare/Commit
   found in any of the validated logs. *)
let recover_from_evidence t evidence =
  let best : (int, int * Command.batch) Hashtbl.t = Hashtbl.create 32 in
  let consider ~view ~seq ~batch =
    match Hashtbl.find_opt best seq with
    | Some (v, _) when v >= view -> ()
    | Some _ | None -> Hashtbl.replace best seq (view, batch)
  in
  List.iter
    (fun (att : Thc_hardware.Trinc.attestation) ->
      match decode_proto att.message with
      | View_change { log; _ } ->
        (match Attested_link.check_log ~world:t.world ~owner:att.owner log with
        | None -> ()
        | Some payloads ->
          List.iter
            (fun payload ->
              match decode_proto payload with
              | Prepare { view; seq; batch } ->
                (* A Prepare is leader evidence only from that view's leader. *)
                if att.owner = leader_of t view then consider ~view ~seq ~batch
              | Commit { view; seq; batch } -> consider ~view ~seq ~batch
              | Rvc _ | View_change _ | New_view _ | Checkpoint _ -> ()
              | exception _ -> ())
            payloads)
      | Rvc _ | Prepare _ | Commit _ | New_view _ | Checkpoint _ -> ()
      | exception _ -> ())
    evidence;
  Hashtbl.fold (fun seq (_, batch) acc -> (seq, batch) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let evidence_valid t ~new_view evidence =
  let owners = Hashtbl.create 8 in
  List.for_all
    (fun (att : Thc_hardware.Trinc.attestation) ->
      Thc_hardware.Trinc.check t.world att ~id:att.owner
      &&
      match decode_proto att.message with
      | View_change { new_view = nv; log } ->
        nv = new_view
        && (not (Hashtbl.mem owners att.owner))
        && (Hashtbl.replace owners att.owner ();
            Attested_link.check_log ~world:t.world ~owner:att.owner log
            <> None)
      | Rvc _ | Prepare _ | Commit _ | New_view _ | Checkpoint _ -> false
      | exception _ -> false)
    evidence
  && Hashtbl.length owners >= t.config.f + 1

let adopt_new_view t ctx ~new_view evidence =
  let recovered = recover_from_evidence t evidence in
  t.view <- new_view;
  t.status <- Normal;
  (* Give the new view a full timeout before anyone escalates again: the
     stuck-request clocks restart at adoption. *)
  (let now = ctx.Thc_sim.Engine.now () in
   Hashtbl.filter_map_inplace (fun _ (r, _) -> Some (r, now)) t.pending);
  Hashtbl.reset t.expected;
  t.recovered_bound <-
    List.fold_left (fun acc (seq, _) -> max acc seq) 0 recovered;
  List.iter
    (fun (seq, (batch : Command.batch)) ->
      Hashtbl.replace t.expected seq (Command.batch_digest batch);
      List.iter
        (fun key -> Hashtbl.replace t.proposed_keys key seq)
        (Command.batch_keys batch))
    recovered;
  (* The new leader re-proposes everything recovered, then continues with
     fresh sequence numbers for still-pending requests (batched, drained
     immediately in deterministic key order). *)
  if t.self = leader_of t new_view then begin
    t.next_seq <- t.recovered_bound + 1;
    List.iter
      (fun (seq, batch) ->
        seal_and_send t ctx (Prepare { view = new_view; seq; batch }))
      recovered;
    let unproposed =
      Hashtbl.fold
        (fun key (request, _) acc ->
          if Hashtbl.mem t.proposed_keys key then acc
          else (key, request) :: acc)
        t.pending []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (key, sr) ->
        if not (Hashtbl.mem t.queued key) then begin
          Hashtbl.replace t.queued key ();
          Queue.push sr t.queue
        end)
      unproposed;
    flush_queue t ctx ~force:true
  end

let handle_proto t (ctx : msg Thc_sim.Engine.ctx) ~owner payload =
  match decode_proto payload with
  | Prepare { view; seq; batch } -> handle_prepare t ctx ~owner ~view ~seq ~batch
  | Commit { view; seq; batch } ->
    if Command.batch_valid t.keyring batch then
      record_commit t ctx ~view ~seq ~batch ~voter:owner
  | Rvc { new_view } ->
    if new_view > t.view then begin
      let tbl = rvc_supporters t new_view in
      Hashtbl.replace tbl owner ();
      (* Join a view-change attempt ahead of our own: keeps escalation
         targets aligned across replicas. *)
      if owner <> t.self && new_view > t.max_rvc_sent then begin
        t.max_rvc_sent <- new_view;
        seal_and_send t ctx (Rvc { new_view })
      end;
      if Hashtbl.length tbl >= t.config.f + 1 then begin
        let already_changing =
          match t.status with
          | Changing nv -> nv >= new_view
          | Normal -> false
        in
        if not already_changing then begin
          t.status <- Changing new_view;
          seal_and_send t ctx
            (View_change { new_view; log = Attested_link.Out.sent_log t.out })
        end
      end
    end
  | View_change _ | Checkpoint _ ->
    ()  (* handled with their attestations in handle_sealed *)
  | New_view { new_view; evidence } ->
    if
      owner = leader_of t new_view
      && new_view > t.view
      && evidence_valid t ~new_view evidence
    then adopt_new_view t ctx ~new_view evidence

let handle_sealed t (ctx : msg Thc_sim.Engine.ctx)
    (att : Thc_hardware.Trinc.attestation) =
  let released =
    (* Attribute the inbound verification ops (counter checks, replay/forge
       rejections) to the phase of the carried message.  The classifying
       decode happens only when spans are live; disabled runs keep the
       single decode they always had. *)
    if Thc_obsv.Span.enabled ctx.spans then begin
      let phase, rids =
        match span_phase_of_proto (decode_proto att.message) with
        | pr -> pr
        | exception _ -> (Thc_obsv.Span.Other_phase, [])
      in
      Thc_obsv.Span.in_phase ctx.spans phase ~rids (fun () ->
          Attested_link.In.accept t.inbox att)
    end
    else Attested_link.In.accept t.inbox att
  in
  List.iter
    (fun (a : Thc_hardware.Trinc.attestation) ->
      (* View_change needs the attestation itself (evidence); everything
         else is handled from the payload. *)
      (match decode_proto a.message with
      | View_change { new_view; log } ->
        if
          t.self = leader_of t new_view
          && new_view > t.view
          && Attested_link.check_log ~world:t.world ~owner:a.owner log <> None
        then begin
          let tbl =
            match Hashtbl.find_opt t.vc_evidence new_view with
            | Some tbl -> tbl
            | None ->
              let tbl = Hashtbl.create 8 in
              Hashtbl.add t.vc_evidence new_view tbl;
              tbl
          in
          Hashtbl.replace tbl a.owner a;
          if Hashtbl.length tbl >= t.config.f + 1 then begin
            let evidence = Hashtbl.fold (fun _ e acc -> e :: acc) tbl [] in
            seal_and_send t ctx (New_view { new_view; evidence });
            adopt_new_view t ctx ~new_view evidence
          end
        end
      | Checkpoint { upto; digest; exec_count } ->
        (* Like View_change, a Checkpoint is consumed together with its
           attestation: the attestation itself is the certificate share. *)
        note_ckpt_vote t ctx ~att:a ~upto ~digest ~exec_count
      | Prepare _ | Commit _ | Rvc _ | New_view _ ->
        handle_proto t ctx ~owner:a.owner a.message
      | exception _ -> ()))
    released

let handle_request t (ctx : msg Thc_sim.Engine.ctx) sr =
  (* While awaiting state transfer we cannot serve or even track requests:
     a stuck pending set would escalate view changes we can't help with.
     Clients retransmit; the f+1 up-to-date replicas carry the service. *)
  if (not t.awaiting_fetch) && Command.valid t.keyring sr then begin
    let key = Command.key sr.Thc_crypto.Signature.value in
    if not (Hashtbl.mem t.executed key) then begin
      if not (Hashtbl.mem t.pending key) then
        Hashtbl.replace t.pending key (sr, ctx.now ());
      if
        t.self = leader_of t t.view
        && t.status = Normal
        && not (Hashtbl.mem t.proposed_keys key)
      then begin
        if Thc_obsv.Span.enabled ctx.spans then
          Thc_obsv.Span.mark ctx.spans ~client:sr.value.client
            ~rid:sr.value.rid Thc_obsv.Span.Ingress ~at:(ctx.now ());
        enqueue_request t ctx sr
      end
    end
    else
      (* Already executed: re-reply (client retransmission). *)
      match Hashtbl.find_opt t.executed key with
      | Some result ->
        ctx.send sr.value.client
          (Reply { replica = t.self; rid = sr.value.rid; result })
      | None -> ()
  end

let handle_check t (ctx : msg Thc_sim.Engine.ctx) =
  let now = ctx.now () in
  let stuck =
    (not t.awaiting_fetch)
    && Hashtbl.fold
         (fun _ (_, since) acc ->
           acc || Int64.sub now since > t.config.request_timeout)
         t.pending false
  in
  (if stuck then
     (* Escalate at most once per request_timeout, so a slow view change is
        given time to complete before the target moves again. *)
     let fresh_attempt = t.max_rvc_sent <= t.view in
     let timed_out =
       Int64.sub now t.last_rvc_at > t.config.request_timeout
     in
     if fresh_attempt || timed_out then begin
       let target = max t.view t.max_rvc_sent + 1 in
       t.max_rvc_sent <- target;
       t.last_rvc_at <- now;
       seal_and_send t ctx (Rvc { new_view = target })
     end);
  ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag

let replica ?restart_at t : msg Thc_sim.Engine.behavior =
  {
    init =
      (fun ctx ->
        ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag;
        match restart_at with
        | Some delay -> ctx.set_timer ~delay ~tag:restart_timer_tag
        | None -> ());
    on_message =
      (fun ctx ~src m ->
        match m with
        | Request sr -> handle_request t ctx sr
        | Sealed att -> handle_sealed t ctx att
        | Reply _ -> ()
        | Fetch { have } -> handle_fetch t ctx ~src ~have
        | Snapshot s -> handle_snapshot t ctx ~src s);
    on_timer =
      (fun ctx tag ->
        if tag = check_timer_tag then handle_check t ctx
        else if tag = batch_timer_tag then begin
          t.batch_armed <- false;
          if t.self = leader_of t t.view && t.status = Normal then
            flush_queue t ctx ~force:true
        end
        else if tag = restart_timer_tag then restart t ctx
        else if tag = fetch_timer_tag && t.awaiting_fetch then begin
          ctx.others (Fetch { have = stable_upto t });
          ctx.set_timer ~delay:fetch_retry_delay ~tag:fetch_timer_tag
        end);
  }

let client ~rid_base ~config ~keyring:_ ~ident ~plan :
    msg Thc_sim.Engine.behavior =
  Client_core.behavior ~rid_base ~n_replicas:config.n ~quorum:(config.f + 1)
    ~ident ~plan
    ~wrap:(fun sr -> Request sr)
    ~unwrap:(function
      | Reply r -> Some r
      | Request _ | Sealed _ | Fetch _ | Snapshot _ -> None)

let wrap_request sr = Request sr

let unwrap_reply = function
  | Reply r -> Some r
  | Request _ | Sealed _ | Fetch _ | Snapshot _ -> None

let adversarial_prepare ~out ~view ~seq ~request =
  Sealed
    (Attested_link.Out.seal out
       (encode_proto (Prepare { view; seq; batch = [ request ] })))

let classify_msg = function
  | Request _ -> "request"
  | Reply _ -> "reply"
  | Fetch _ -> "fetch"
  | Snapshot _ -> "snapshot"
  | Sealed a ->
    (match decode_proto a.message with
    | Prepare _ -> "prepare"
    | Commit _ -> "commit"
    | Rvc _ -> "req-view-change"
    | View_change _ -> "view-change"
    | New_view _ -> "new-view"
    | Checkpoint _ -> "checkpoint"
    | exception _ -> "garbage")

let adversarial_wire a = Sealed a

let adversarial_view_change ~out ~new_view ~log =
  Sealed (Attested_link.Out.seal out (encode_proto (View_change { new_view; log })))

let attack_out t = t.out

let attestation_of = function
  | Sealed a -> Some a
  | Request _ | Reply _ | Fetch _ | Snapshot _ -> None

(* --- durability accessors and attack-rig helpers ----------------------- *)

let durability t =
  {
    Durability.live = Hashtbl.length t.committed;
    hwm = t.log_hwm;
    stable_upto = stable_upto t;
    truncations = t.truncations;
  }

let snapshot_of_stable (c : stable_ckpt) ~suffix =
  match c.c_state with
  | None -> None
  | Some state ->
    Some
      (Snapshot
         {
           s_upto = c.c_upto;
           s_digest = c.c_digest;
           s_exec_count = c.c_exec_count;
           s_cert = c.c_cert;
           s_state = state;
           s_suffix = suffix;
         })

let stable_snapshot ?(suffix = []) t = match t.stable with
  | Some c -> snapshot_of_stable c ~suffix
  | None -> None

(* The previous stable checkpoint with its genuine certificate — exactly
   what a stale-state-transfer attacker replays at a joiner. *)
let stale_snapshot t = match t.prev_stable with
  | Some c -> snapshot_of_stable c ~suffix:[]
  | None -> None

(* Arbitrary snapshot assembly for forged-certificate rigs: the payload is
   whatever the attacker claims; only the joiner's verification stands
   between it and installation. *)
let adversarial_snapshot ~upto ~digest ~exec_count ~cert ~state ~suffix =
  Snapshot
    {
      s_upto = upto;
      s_digest = digest;
      s_exec_count = exec_count;
      s_cert = cert;
      s_state = state;
      s_suffix = suffix;
    }

let snapshot_cert = function
  | Snapshot s -> Some s.s_cert
  | Request _ | Sealed _ | Reply _ | Fetch _ -> None
