type config = {
  n : int;
  f : int;
  request_timeout : int64;
  check_interval : int64;
  batch_size : int;
  batch_delay : int64;
  checkpoint_interval : int;
}

let default_config ~f =
  {
    n = (2 * f) + 1;
    f;
    request_timeout = 30_000L;
    check_interval = 10_000L;
    batch_size = 1;
    batch_delay = 2_000L;
    checkpoint_interval = 16;
  }

(* What lives in the SWMR registers.  The registers carry the protocol's
   whole data plane: slots (leader), acks (followers), view-change votes
   and checkpoint markers.  Wire messages below are only doorbells. *)
type record =
  | Slot of { view : int; seq : int; batch : Command.batch }
  | Ack of { view : int; seq : int; digest : int64 }
  | Vc of { new_view : int }
  | Checkpoint of { upto : int; state : int64 }

type registers = record Thc_sharedmem.Swmr.log array

type msg =
  | Request of Command.signed_request
  | Notify of { view : int; upto : int }
  | Ack_note of { view : int; upto : int }
  | Rvc of { new_view : int }
  | New_view_note of { new_view : int; upto : int }
  | Reply of Command.reply

let pp_msg ppf = function
  | Request sr -> Format.fprintf ppf "request(%a)" Command.pp sr.value
  | Notify { view; upto } -> Format.fprintf ppf "notify(v%d,<=%d)" view upto
  | Ack_note { view; upto } ->
    Format.fprintf ppf "ack-note(v%d,<=%d)" view upto
  | Rvc { new_view } -> Format.fprintf ppf "rvc(v%d)" new_view
  | New_view_note { new_view; upto } ->
    Format.fprintf ppf "new-view(v%d,<=%d)" new_view upto
  | Reply r -> Format.fprintf ppf "reply(p%d,#%d)" r.replica r.rid

let check_timer_tag = 1_000_000

let batch_timer_tag = 1_000_001

type status = Normal | Changing of int

type t = {
  config : config;
  keyring : Thc_crypto.Keyring.t;
  registers : registers;
  ident : Thc_crypto.Keyring.secret;
  self : int;
  store : Kv_store.t;
  mutable view : int;
  mutable status : status;
  mutable next_seq : int;  (* leader: next sequence number to assign *)
  slots : (int, Command.batch) Hashtbl.t;
      (* seq -> adopted batch (first valid Slot per seq wins, so every
         reader of the same register resolves identically) *)
  mutable exec_upto : int;  (* highest executed slot *)
  mutable exec_count : int;  (* dense per-request execution index *)
  queue : Command.signed_request Queue.t;
  queued : (int * int, unit) Hashtbl.t;
  mutable batch_armed : bool;
  pending : (int * int, Command.signed_request * int64) Hashtbl.t;
  proposed_keys : (int * int, int) Hashtbl.t;  (* request key -> seq *)
  executed : (int * int, string) Hashtbl.t;  (* request key -> result *)
  acked : int array;
      (* leader: per-follower ack frontier for the current view, verified
         against the follower's register on each Ack_note doorbell *)
  acked_keys : (int * int, unit) Hashtbl.t;  (* (view, seq) we acked *)
  rvc_votes : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable max_rvc_sent : int;
  mutable last_rvc_at : int64;
  mutable trunc_base : int;  (* own register pruned up to this slot *)
  mutable own_len : int;
      (* shadow of our register's entry count — kept in software so the
         durability report never spends a trusted register read *)
  mutable reg_hwm : int;  (* high-water-mark of own_len *)
  mutable truncations : int;
}

let create_replica ~config ~keyring ~registers ~ident ~self =
  if config.n <> (2 * config.f) + 1 then
    invalid_arg "Ubft: config requires n = 2f + 1";
  if Array.length registers <> config.n then
    invalid_arg "Ubft: one register per replica required";
  {
    config;
    keyring;
    registers;
    ident;
    self;
    store = Kv_store.create ();
    view = 0;
    status = Normal;
    next_seq = 1;
    slots = Hashtbl.create 64;
    exec_upto = 0;
    exec_count = 0;
    queue = Queue.create ();
    queued = Hashtbl.create 64;
    batch_armed = false;
    pending = Hashtbl.create 64;
    proposed_keys = Hashtbl.create 64;
    executed = Hashtbl.create 64;
    acked = Array.make config.n 0;
    acked_keys = Hashtbl.create 64;
    rvc_votes = Hashtbl.create 8;
    max_rvc_sent = 0;
    last_rvc_at = 0L;
    trunc_base = 0;
    own_len = 0;
    reg_hwm = 0;
    truncations = 0;
  }

let view_of t = t.view

let executed_upto t = t.exec_upto

let store_digest t = Kv_store.digest t.store

let register_len t = List.length (Thc_sharedmem.Swmr.read t.registers.(t.self))

(* uBFT's "log" is its own SWMR register; the truncate-on-checkpoint
   discipline plays the role MinBFT's checkpoint certificates play, so the
   same stats vocabulary applies (live entries, high-water-mark, pruned
   boundary, truncation count). *)
let durability t =
  {
    Durability.live = t.own_len;
    hwm = t.reg_hwm;
    stable_upto = t.trunc_base;
    truncations = t.truncations;
  }

let leader_of t view = view mod t.config.n

let batch_rids (batch : Command.batch) =
  List.map
    (fun (sr : Command.signed_request) -> sr.Thc_crypto.Signature.value.rid)
    batch

(* Append a record to our own register, attributing the register op (and
   any trusted-op charges the attached ledger raises) to a span phase. *)
let own_append t (ctx : msg Thc_sim.Engine.ctx) ~phase ~rids record =
  (if Thc_obsv.Span.enabled ctx.spans then
     Thc_obsv.Span.in_phase ctx.spans phase ~rids (fun () ->
         Thc_sharedmem.Swmr.append t.registers.(t.self) ~ident:t.ident record)
   else Thc_sharedmem.Swmr.append t.registers.(t.self) ~ident:t.ident record);
  t.own_len <- t.own_len + 1;
  if t.own_len > t.reg_hwm then t.reg_hwm <- t.own_len

let rvc_supporters t nv =
  match Hashtbl.find_opt t.rvc_votes nv with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add t.rvc_votes nv tbl;
    tbl

(* --- checkpoint truncation --------------------------------------------- *)

(* Highest slot a replica's register acknowledges: its own Slot appends if
   it leads, its Ack appends otherwise.  Registers are append-ordered, so
   the maximum is also the contiguous frontier. *)
let covered_upto t ~owner =
  List.fold_left
    (fun acc r ->
      match r with
      | Slot { seq; _ } | Ack { seq; _ } -> max acc seq
      | Checkpoint { upto; _ } -> max acc upto
      | Vc _ -> acc)
    0
    (Thc_sharedmem.Swmr.entries t.registers.(owner))

(* Rewrite our own register with everything at or below [upto] pruned,
   leaving one Checkpoint record as the oldest entry — the uBFT bounded
   per-register memory discipline.  The rewrite is one owner [write], so
   the ACL and write-count semantics are those of any other update. *)
let truncate_own t ~upto =
  if upto > t.trunc_base then begin
    t.trunc_base <- upto;
    let raw = Thc_sharedmem.Swmr.read t.registers.(t.self) in
    (* Our highest view-change vote must outlive truncation: the f+1
       registers holding Vc votes for an activated view are the evidence
       [higher_view_evidence] relies on to keep speculation safe. *)
    let max_vc =
      List.fold_left
        (fun acc r ->
          match r with Vc { new_view } -> max acc new_view | _ -> acc)
        0 raw
    in
    let keep =
      List.filter
        (fun r ->
          match r with
          | Slot { seq; _ } | Ack { seq; _ } -> seq > upto
          | Vc { new_view } -> new_view = max_vc || new_view > t.view
          | Checkpoint _ -> false)
        raw
    in
    Thc_sharedmem.Swmr.write t.registers.(t.self) ~ident:t.ident
      (keep @ [ Checkpoint { upto; state = Kv_store.digest t.store } ]);
    t.own_len <- List.length keep + 1;
    t.truncations <- t.truncations + 1;
    let stale =
      Hashtbl.fold
        (fun seq _ acc -> if seq <= upto then seq :: acc else acc)
        t.slots []
    in
    List.iter (Hashtbl.remove t.slots) stale;
    let stale_acks =
      Hashtbl.fold
        (fun ((_, seq) as key) _ acc -> if seq <= upto then key :: acc else acc)
        t.acked_keys []
    in
    List.iter (Hashtbl.remove t.acked_keys) stale_acks
  end

let maybe_checkpoint t ~seq =
  if seq mod t.config.checkpoint_interval = 0 then
    if t.self = leader_of t t.view then begin
      (* The leader prunes only slots every register covers.  A replica's
         ack frontier is also its adoption frontier, so nothing a live
         replica still needs ever disappears from the log it reads.
         (Real uBFT truncates at f+1 coverage and state-transfers
         laggards past the gap; the sim keeps every replica's replay
         dense instead, at the cost of a crashed replica stalling
         truncation.) *)
      let stable =
        ref (if t.config.n = 1 then t.exec_upto else max_int)
      in
      for owner = 0 to t.config.n - 1 do
        if owner <> t.self then
          stable := min !stable (covered_upto t ~owner)
      done;
      truncate_own t ~upto:(min !stable seq)
    end
    else
      (* Followers keep a full checkpoint interval of acknowledgements as
         recovery slack behind their execution frontier. *)
      truncate_own t ~upto:(seq - t.config.checkpoint_interval)

(* --- execution --------------------------------------------------------- *)

let execute_one t (ctx : msg Thc_sim.Engine.ctx) (sr : Command.signed_request)
    =
  let key = Command.key sr.value in
  let result =
    match Hashtbl.find_opt t.executed key with
    | Some r -> r
    | None ->
      let r =
        Kv_store.encode_result
          (Kv_store.apply t.store (Kv_store.decode_op sr.value.op))
      in
      Hashtbl.replace t.executed key r;
      r
  in
  Hashtbl.remove t.pending key;
  t.exec_count <- t.exec_count + 1;
  if Thc_obsv.Span.enabled ctx.spans then
    Thc_obsv.Span.mark ctx.spans ~client:sr.value.client ~rid:sr.value.rid
      Thc_obsv.Span.Executed ~at:(ctx.now ());
  ctx.output
    (Thc_sim.Obs.Executed { seq = t.exec_count; op = sr.value.op; result });
  ctx.send sr.value.client
    (Reply { replica = t.self; rid = sr.value.rid; result })

(* The leader executes (and replies) only once a slot is {e covered}: in
   f+1 registers counting its own Slot append, so a view change that
   gathers f+1 votes — silencing f+1 replicas' old-view acks — can never
   strand an executed slot outside recovery's reach.  Followers execute
   speculatively at adoption; [higher_view_evidence] keeps that safe. *)
let slot_covered t ~seq =
  let votes = ref 1 in
  Array.iteri
    (fun owner upto -> if owner <> t.self && upto >= seq then incr votes)
    t.acked;
  !votes >= t.config.f + 1

let rec try_execute t (ctx : msg Thc_sim.Engine.ctx) =
  match Hashtbl.find_opt t.slots (t.exec_upto + 1) with
  | None -> ()
  | Some batch
    when t.self = leader_of t t.view
         && not (slot_covered t ~seq:(t.exec_upto + 1)) ->
    ignore batch
  | Some batch ->
    let seq = t.exec_upto + 1 in
    t.exec_upto <- seq;
    if Thc_obsv.Span.enabled ctx.spans then
      Thc_obsv.Span.mark_all ctx.spans ~seq ~rids:(batch_rids batch)
        Thc_obsv.Span.Committed ~at:(ctx.now ());
    let op =
      match batch with
      | [ sr ] -> sr.Thc_crypto.Signature.value.op
      | _ ->
        Thc_util.Codec.encode
          (List.map
             (fun (sr : Command.signed_request) -> sr.value.op)
             batch)
    in
    ctx.Thc_sim.Engine.output (Thc_sim.Obs.Committed { view = t.view; seq; op });
    List.iter (execute_one t ctx) batch;
    maybe_checkpoint t ~seq;
    try_execute t ctx

(* --- fast path --------------------------------------------------------- *)

let adopt_slot t ~seq ~(batch : Command.batch) =
  Hashtbl.replace t.slots seq batch;
  List.iter
    (fun key -> Hashtbl.replace t.proposed_keys key seq)
    (Command.batch_keys batch)

(* Count registers carrying a view-change vote above our view.  An
   activated higher view necessarily left Vc votes in f+1 registers
   before its leader recovered (and truncation preserves the highest
   vote), so — handlers being atomic over linearizable registers — a
   scan seeing fewer than f+1 votes proves no higher view is active
   yet, and anything we adopt now is visible to any later recovery. *)
let higher_view_evidence t =
  let count = ref 0 in
  for owner = 0 to t.config.n - 1 do
    if
      List.exists
        (function Vc { new_view } -> new_view > t.view | _ -> false)
        (Thc_sharedmem.Swmr.entries t.registers.(owner))
    then incr count
  done;
  !count

(* Follower fast path: read the leader's register and adopt, in append
   order, the first valid Slot per sequence number of the current view.
   Every follower reads the same register, so first-valid-wins resolves
   identically everywhere — the non-equivocation the SWMR layer buys.
   Each adoption is acknowledged with an Ack append in our own register
   (the leader's coverage evidence, confirmed by one Ack_note doorbell),
   then executed speculatively in dense slot order. *)
let refresh t (ctx : msg Thc_sim.Engine.ctx) =
  if t.status = Normal && t.self <> leader_of t t.view then begin
    let lead = leader_of t t.view in
    let evidence =
      if Thc_obsv.Span.enabled ctx.spans then
        Thc_obsv.Span.in_phase ctx.spans Thc_obsv.Span.Other_phase ~rids:[]
          (fun () -> higher_view_evidence t)
      else higher_view_evidence t
    in
    if evidence < t.config.f + 1 then begin
      let log =
        if Thc_obsv.Span.enabled ctx.spans then
          Thc_obsv.Span.in_phase ctx.spans Thc_obsv.Span.Commit_phase ~rids:[]
            (fun () -> Thc_sharedmem.Swmr.entries t.registers.(lead))
        else Thc_sharedmem.Swmr.entries t.registers.(lead)
      in
      let acked_max = ref 0 in
      List.iter
        (fun r ->
          match r with
          | Slot { view; seq; batch }
            when view = t.view && seq > t.exec_upto
                 && (not (Hashtbl.mem t.acked_keys (view, seq)))
                 && Command.batch_valid t.keyring batch ->
            let adoptable =
              match Hashtbl.find_opt t.slots seq with
              | None ->
                adopt_slot t ~seq ~batch;
                true
              | Some prev ->
                (* Same slot re-published by a recovering leader: ack it
                   again under the new view.  A conflicting batch (never
                   reachable from a correct leader) is left unacked. *)
                Command.batch_digest prev = Command.batch_digest batch
            in
            if adoptable then begin
              Hashtbl.replace t.acked_keys (view, seq) ();
              acked_max := max !acked_max seq;
              let digest = Command.batch_digest batch in
              let rids = batch_rids batch in
              if Thc_obsv.Span.enabled ctx.spans then
                Thc_obsv.Span.mark_all ctx.spans ~seq ~rids
                  Thc_obsv.Span.Commit_send ~at:(ctx.now ());
              own_append t ctx ~phase:Thc_obsv.Span.Commit_phase ~rids
                (Ack { view = t.view; seq; digest })
            end
          | Slot _ | Ack _ | Vc _ | Checkpoint _ -> ())
        log;
      if !acked_max > 0 then
        ctx.send lead (Ack_note { view = t.view; upto = !acked_max });
      try_execute t ctx
    end
  end

(* Leader side of the ack doorbell: re-read the sender's register and
   advance its verified ack frontier — only acks whose digest matches
   our adopted slot count, so a forged Ack_note cannot fake coverage. *)
let handle_ack_note t (ctx : msg Thc_sim.Engine.ctx) ~src ~view =
  if
    view = t.view
    && t.self = leader_of t t.view
    && src <> t.self
    && src >= 0
    && src < t.config.n
  then begin
    let log =
      if Thc_obsv.Span.enabled ctx.spans then
        Thc_obsv.Span.in_phase ctx.spans Thc_obsv.Span.Commit_phase ~rids:[]
          (fun () -> Thc_sharedmem.Swmr.entries t.registers.(src))
      else Thc_sharedmem.Swmr.entries t.registers.(src)
    in
    let verified =
      List.fold_left
        (fun acc r ->
          match r with
          | Ack { view = v; seq; digest } when v = t.view ->
            let ok =
              match Hashtbl.find_opt t.slots seq with
              | Some batch -> Command.batch_digest batch = digest
              | None -> seq <= t.exec_upto
            in
            if ok then max acc seq else acc
          | Slot _ | Ack _ | Vc _ | Checkpoint _ -> acc)
        0 log
    in
    if verified > t.acked.(src) then begin
      t.acked.(src) <- verified;
      try_execute t ctx
    end
  end

(* --- leader batching --------------------------------------------------- *)

let propose_batch t (ctx : msg Thc_sim.Engine.ctx) (batch : Command.batch) =
  if batch <> [] then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let rids = batch_rids batch in
    if Thc_obsv.Span.enabled ctx.spans then begin
      let at = ctx.now () in
      Thc_obsv.Span.mark_all ctx.spans ~seq ~rids Thc_obsv.Span.Propose ~at;
      (* The append is proposal and commit vote in one: stamping
         Commit_send here makes the commit phase measure append-to-
         follower-adoption (one doorbell hop; the follower acks that
         arrive later are first-write-wins no-ops on this mark). *)
      Thc_obsv.Span.mark_all ctx.spans ~seq ~rids Thc_obsv.Span.Commit_send
        ~at
    end;
    (* One register append is the whole proposal: once it lands, the slot
       is in trusted memory and cannot be equivocated or withdrawn. *)
    own_append t ctx ~phase:Thc_obsv.Span.Prepare_phase ~rids
      (Slot { view = t.view; seq; batch });
    adopt_slot t ~seq ~batch
  end

let rec take_batch t acc k =
  if k = 0 || Queue.is_empty t.queue then List.rev acc
  else begin
    let sr = Queue.pop t.queue in
    let key = Command.key sr.Thc_crypto.Signature.value in
    Hashtbl.remove t.queued key;
    if Hashtbl.mem t.proposed_keys key || Hashtbl.mem t.executed key then
      take_batch t acc k
    else take_batch t (sr :: acc) (k - 1)
  end

let rec flush_slots t ctx ~force =
  if
    Queue.length t.queue >= t.config.batch_size
    || (force && not (Queue.is_empty t.queue))
  then begin
    propose_batch t ctx (take_batch t [] t.config.batch_size);
    flush_slots t ctx ~force
  end

(* Propose everything due and ring the doorbell once for the whole flush
   (followers learn the data from the register, not the message).  Our
   own execution waits for coverage — the try_execute here only drains
   slots already covered by earlier ack rounds. *)
let flush_queue t (ctx : msg Thc_sim.Engine.ctx) ~force =
  let before = t.next_seq in
  flush_slots t ctx ~force;
  if t.next_seq > before then begin
    ctx.others (Notify { view = t.view; upto = t.next_seq - 1 });
    try_execute t ctx
  end

let arm_batch_timer t (ctx : msg Thc_sim.Engine.ctx) =
  if (not t.batch_armed) && not (Queue.is_empty t.queue) then begin
    t.batch_armed <- true;
    ctx.set_timer ~delay:t.config.batch_delay ~tag:batch_timer_tag
  end

let enqueue_request t ctx (sr : Command.signed_request) =
  let key = Command.key sr.Thc_crypto.Signature.value in
  if not (Hashtbl.mem t.queued key) then begin
    Hashtbl.replace t.queued key ();
    Queue.push sr t.queue
  end;
  flush_queue t ctx ~force:false;
  arm_batch_timer t ctx

(* --- view change ------------------------------------------------------- *)

(* A view-change vote is authentic iff it sits in the voter's own register:
   ownership is the authentication, no signature or attestation needed. *)
let register_has_vc t ~owner ~new_view =
  List.exists
    (function Vc { new_view = nv } -> nv = new_view | _ -> false)
    (Thc_sharedmem.Swmr.entries t.registers.(owner))

let vc_support t ~new_view =
  let count = ref 0 in
  for owner = 0 to t.config.n - 1 do
    if register_has_vc t ~owner ~new_view then incr count
  done;
  !count

(* Recovery reads every register and, per sequence number, adopts the
   batch of the highest-view first-valid Slot found in that view's
   leader's register.  Any slot acknowledged by f+1 replicas survives in
   its proposer's register (truncation only prunes stable prefixes), so
   the recovery covers everything any replica may have executed. *)
let recover_from_registers t ~new_view =
  let best : (int, int * Command.batch) Hashtbl.t = Hashtbl.create 32 in
  for owner = 0 to t.config.n - 1 do
    let taken = Hashtbl.create 16 in
    List.iter
      (fun r ->
        match r with
        | Slot { view; seq; batch }
          when view < new_view
               && owner = view mod t.config.n
               && (not (Hashtbl.mem taken (view, seq)))
               && Command.batch_valid t.keyring batch ->
          Hashtbl.replace taken (view, seq) ();
          (match Hashtbl.find_opt best seq with
          | Some (v, _) when v >= view -> ()
          | Some _ | None -> Hashtbl.replace best seq (view, batch))
        | Slot _ | Ack _ | Vc _ | Checkpoint _ -> ())
      (Thc_sharedmem.Swmr.entries t.registers.(owner))
  done;
  Hashtbl.fold (fun seq (_, batch) acc -> (seq, batch) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let restart_pending_clocks t (ctx : msg Thc_sim.Engine.ctx) =
  let now = ctx.now () in
  Hashtbl.filter_map_inplace (fun _ (r, _) -> Some (r, now)) t.pending

(* New leader: recover from the registers, re-publish every recovered slot
   under the new view in our own register (giving followers one place to
   read), then drain still-pending requests behind the recovery. *)
let adopt_new_view t (ctx : msg Thc_sim.Engine.ctx) ~new_view =
  let recovered = recover_from_registers t ~new_view in
  t.view <- new_view;
  t.status <- Normal;
  Array.fill t.acked 0 (Array.length t.acked) 0;
  restart_pending_clocks t ctx;
  let bound =
    List.fold_left (fun acc (seq, _) -> max acc seq) t.exec_upto recovered
  in
  t.next_seq <- bound + 1;
  List.iter
    (fun (seq, (batch : Command.batch)) ->
      let rids = batch_rids batch in
      own_append t ctx ~phase:Thc_obsv.Span.Prepare_phase ~rids
        (Slot { view = new_view; seq; batch });
      if seq > t.exec_upto && not (Hashtbl.mem t.slots seq) then
        adopt_slot t ~seq ~batch)
    recovered;
  ctx.others (New_view_note { new_view; upto = t.next_seq - 1 });
  try_execute t ctx;
  let unproposed =
    Hashtbl.fold
      (fun key (request, _) acc ->
        if Hashtbl.mem t.proposed_keys key then acc
        else (key, request) :: acc)
      t.pending []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (key, sr) ->
      if not (Hashtbl.mem t.queued key) then begin
        Hashtbl.replace t.queued key ();
        Queue.push sr t.queue
      end)
    unproposed;
  flush_queue t ctx ~force:true

let announce_rvc t ctx ~new_view =
  t.max_rvc_sent <- new_view;
  own_append t ctx ~phase:Thc_obsv.Span.Other_phase ~rids:[] (Vc { new_view });
  Hashtbl.replace (rvc_supporters t new_view) t.self ();
  ctx.others (Rvc { new_view })

let note_vc_support t (ctx : msg Thc_sim.Engine.ctx) ~owner ~new_view =
  if new_view > t.view && register_has_vc t ~owner ~new_view then begin
    Hashtbl.replace (rvc_supporters t new_view) owner ();
    (* Join a view-change attempt ahead of our own: keeps escalation
       targets aligned across replicas. *)
    if owner <> t.self && new_view > t.max_rvc_sent then
      announce_rvc t ctx ~new_view;
    if Hashtbl.length (rvc_supporters t new_view) >= t.config.f + 1 then
      if t.self = leader_of t new_view then
        adopt_new_view t ctx ~new_view
      else begin
        let already_changing =
          match t.status with
          | Changing nv -> nv >= new_view
          | Normal -> false
        in
        if not already_changing then t.status <- Changing new_view
      end
  end

let handle_new_view_note t (ctx : msg Thc_sim.Engine.ctx) ~src ~new_view =
  if
    src = leader_of t new_view
    && new_view > t.view
    && vc_support t ~new_view >= t.config.f + 1
  then begin
    t.view <- new_view;
    t.status <- Normal;
    Array.fill t.acked 0 (Array.length t.acked) 0;
    t.max_rvc_sent <- max t.max_rvc_sent new_view;
    restart_pending_clocks t ctx;
    refresh t ctx
  end

let handle_request t (ctx : msg Thc_sim.Engine.ctx) sr =
  if Command.valid t.keyring sr then begin
    let key = Command.key sr.Thc_crypto.Signature.value in
    if not (Hashtbl.mem t.executed key) then begin
      if not (Hashtbl.mem t.pending key) then
        Hashtbl.replace t.pending key (sr, ctx.now ());
      if
        t.self = leader_of t t.view
        && t.status = Normal
        && not (Hashtbl.mem t.proposed_keys key)
      then begin
        if Thc_obsv.Span.enabled ctx.spans then
          Thc_obsv.Span.mark ctx.spans ~client:sr.value.client
            ~rid:sr.value.rid Thc_obsv.Span.Ingress ~at:(ctx.now ());
        enqueue_request t ctx sr
      end
    end
    else
      match Hashtbl.find_opt t.executed key with
      | Some result ->
        ctx.send sr.value.client
          (Reply { replica = t.self; rid = sr.value.rid; result })
      | None -> ()
  end

let handle_check t (ctx : msg Thc_sim.Engine.ctx) =
  let now = ctx.now () in
  let stuck =
    Hashtbl.fold
      (fun _ (_, since) acc ->
        acc || Int64.sub now since > t.config.request_timeout)
      t.pending false
  in
  (if stuck then
     let fresh_attempt = t.max_rvc_sent <= t.view in
     let timed_out =
       Int64.sub now t.last_rvc_at > t.config.request_timeout
     in
     if fresh_attempt || timed_out then begin
       let target = max t.view t.max_rvc_sent + 1 in
       t.last_rvc_at <- now;
       announce_rvc t ctx ~new_view:target;
       note_vc_support t ctx ~owner:t.self ~new_view:target
     end);
  ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag

let replica t : msg Thc_sim.Engine.behavior =
  {
    init =
      (fun ctx ->
        ctx.set_timer ~delay:t.config.check_interval ~tag:check_timer_tag);
    on_message =
      (fun ctx ~src m ->
        match m with
        | Request sr -> handle_request t ctx sr
        | Notify { view; upto = _ } ->
          if view = t.view && src = leader_of t view then refresh t ctx
        | Ack_note { view; upto = _ } -> handle_ack_note t ctx ~src ~view
        | Rvc { new_view } -> note_vc_support t ctx ~owner:src ~new_view
        | New_view_note { new_view; upto = _ } ->
          handle_new_view_note t ctx ~src ~new_view
        | Reply _ -> ());
    on_timer =
      (fun ctx tag ->
        if tag = check_timer_tag then handle_check t ctx
        else if tag = batch_timer_tag then begin
          t.batch_armed <- false;
          if t.self = leader_of t t.view && t.status = Normal then
            flush_queue t ctx ~force:true
        end);
  }

let client ~rid_base ~config ~keyring:_ ~ident ~plan :
    msg Thc_sim.Engine.behavior =
  Client_core.behavior ~rid_base ~n_replicas:config.n ~quorum:(config.f + 1)
    ~ident ~plan
    ~wrap:(fun sr -> Request sr)
    ~unwrap:(function
      | Reply r -> Some r
      | Request _ | Notify _ | Ack_note _ | Rvc _ | New_view_note _ -> None)

let wrap_request sr = Request sr

let unwrap_reply = function
  | Reply r -> Some r
  | Request _ | Notify _ | Ack_note _ | Rvc _ | New_view_note _ -> None

let classify_msg = function
  | Request _ -> "request"
  | Notify _ -> "notify"
  | Ack_note _ -> "ack-note"
  | Rvc _ -> "req-view-change"
  | New_view_note _ -> "new-view"
  | Reply _ -> "reply"

(* --- adversarial surface ----------------------------------------------- *)

let forged_slot ~view ~seq ~batch = Slot { view; seq; batch }

let forged_ack ~view ~seq ~digest = Ack { view; seq; digest }

let adversarial_notify ~view ~upto = Notify { view; upto }

let adversarial_ack_note ~view ~upto = Ack_note { view; upto }
