(** Ablation: what breaks when the trusted hardware is removed.

    The classification's systems-level payoff is that non-equivocation lets
    BFT replication run f+1-of-2f+1 quorums.  This module removes exactly
    that ingredient and keeps everything else fixed: the {e unattested}
    variant runs MinBFT's normal-case message flow (Prepare, Commit, f+1
    quorums, 2f+1 replicas) over plain signed messages, so a Byzantine
    leader can once again send different proposals to different halves.

    Two experiments, same attack:

    - {!equivocation_splits_unattested} — against the unattested variant the
      split succeeds: correct replicas execute different operations at one
      sequence number, and the safety monitor reports it.
    - {!equivocation_fails_against_minbft} — the identical attack against
      real MinBFT (the attacker even gets {!Minbft.adversarial_prepare}, the
      strongest thing its trinket will seal): selective delivery only
      creates counter gaps that receivers hold back, so at most one of the
      two proposals can ever commit.

    Together they certify that the hardware — not the quorum arithmetic —
    carries the safety argument. *)

type result = {
  violations : Smr_spec.violation list;
      (** Safety violations among correct replicas. *)
  distinct_ops_at_seq1 : int;
      (** How many different operations correct replicas executed at seq 1. *)
  messages : int;  (** Messages sent during the run. *)
  duration_us : int64;  (** Virtual end time. *)
  commits : int;  (** Distinct committed sequence numbers ({!Smr_spec.commits}). *)
  trusted_ops : (string * int) list;
      (** Hardware-op ledger rows; [[]] for the unattested variant, whose
          per-commit trusted-op cost is therefore exactly 0. *)
  detail : string;
}

val equivocation_splits_unattested : ?f:int -> ?seed:int64 -> unit -> result
(** Expected: [violations <> []] and [distinct_ops_at_seq1 = 2]. *)

val equivocation_fails_against_minbft : ?f:int -> ?seed:int64 -> unit -> result
(** Expected: [violations = []] and [distinct_ops_at_seq1 <= 1]. *)

val unattested_under_script :
  ?f:int ->
  ?network:Thc_network.Model.t ->
  seed:int64 -> script:Thc_sim.Adversary.t -> unit -> result
(** The unattested split attack under an additional scripted fault schedule
    — the known-bad target of the {!Thc_check} fault explorer.  The split
    succeeds under (almost) any admissible schedule; schedules that crash a
    victim replica before it adopts a proposal mask the violation, which is
    exactly what script shrinking strips away. *)

val pp_result : Format.formatter -> result -> unit

(** Scriptable attacker interface over the unattested protocol, for the
    [Thc_byz] attack catalog: the honest side (2f correct replicas, f+1
    quorums, plain signatures, fixed leader 0) is wired exactly as in the
    legacy runs above, but pid 0 runs an arbitrary caller-supplied behavior
    built from the leader's own signing capability. *)
module Unattested : sig
  type wire
  (** A signed protocol message; construct with {!prepare} / {!commit}. *)

  type env = {
    engine : wire Thc_sim.Engine.t;
    f : int;
    n : int;  (** Replica count [2f+1]; the leader under attack is pid 0. *)
    group_a : int list;  (** Replicas [1..f] — one side of a split. *)
    group_b : int list;  (** Replicas [f+1..2f] — the other side. *)
    req_a : Command.signed_request;  (** Client request writing ["A"]. *)
    req_b : Command.signed_request;  (** Conflicting request writing ["B"]. *)
    leader_ident : Thc_crypto.Keyring.secret;
    client_ident : Thc_crypto.Keyring.secret;
        (** A colluding client's signing key: lets the attacker mint
            arbitrary validly-signed requests (see {!request}). *)
  }
  (** What the attacker gets: exactly the leader's legitimate capabilities
      plus knowledge of two conflicting signed client requests. *)

  val prepare : env -> seq:int -> Command.signed_request -> wire
  (** A leader-signed proposal for slot [seq]. *)

  val commit : env -> seq:int -> digest:int64 -> wire
  (** A leader-signed commit vote. *)

  val request : env -> rid:int -> Kv_store.op -> Command.signed_request
  (** A fresh validly-signed request from the colluding client. *)

  val snapshot : env -> state:(string * string) list -> upto:int -> wire
  (** A leader-signed state-transfer reply carrying an arbitrary claim.
      Nothing in the unattested protocol certifies it: a restarted replica
      installs the first one it receives wholesale, which is what the
      checkpoint attack family exploits (compare the certificate, NVRAM
      floor and donor-quorum checks in {!Minbft}). *)

  val digest : Command.signed_request -> int64
  (** The digest replicas vote on for a request. *)

  val run :
    ?f:int ->
    ?spans:Thc_obsv.Span.t ->
    ?restarts:(int * int64) list ->
    seed:int64 ->
    attacker:(env -> wire Thc_sim.Engine.behavior) ->
    detail:string ->
    ?until:int64 ->
    unit ->
    result
  (** Run the unattested protocol with [attacker env] installed as pid 0
      (marked Byzantine for the monitors).  Deterministic in [seed].

      [restarts] maps replica pids to crash-and-restart times (µs): each
      listed replica wipes all state at its time and re-joins by asking the
      leader — i.e. the attacker — for a snapshot it must install blindly.

      [spans] (default {!Thc_obsv.Span.nop}) collects request spans from
      the correct replicas: [Propose] on proposal adoption, [Commit_send]
      on the first commit vote, [Committed] at quorum, [Executed] on apply.
      There is no client behavior in this rig, so [Submit]/[Ingress]/
      reply marks stay unset and only the prepare → commit → execute
      phases report — exactly the slice the S5 phase-breakdown bench
      compares against the attested protocols. *)
end
