(** PBFT-style replicated state machine (n = 3f+1) — the no-trusted-hardware
    baseline.

    Castro–Liskov structure in its public-key variant, without checkpoints:
    the leader packs pending requests into batches (up to [batch_size] per
    slot) and sends [PrePrepare(view, seq, batch)]; replicas send [Prepare]
    over the batch digest; a replica that holds the pre-prepare plus 2f
    matching prepares is {e prepared} and sends [Commit]; 2f+1 matching
    commits make the batch committed.  View changes carry prepared certificates
    (pre-prepare plus 2f prepare signatures) and need 2f+1 view-change
    messages; quorum intersection (any two 2f+1 quorums of 3f+1 share a
    correct replica) does the work trusted counters do in {!Minbft}.

    Exists to make the paper's motivation measurable: same client workload,
    same network, same fault bound f — but 3f+1 replicas, three message
    phases and O(n²) votes where MinBFT needs 2f+1 replicas and two phases
    (bench group [smr/*], experiment S1). *)

type msg

type config = {
  n : int;  (** Replicas; requires [n = 3f+1]. *)
  f : int;
  request_timeout : int64;
  check_interval : int64;
  batch_size : int;  (** Max requests per Pre_prepare slot. *)
  batch_delay : int64;  (** µs a partial batch waits before being flushed. *)
}

val default_config : f:int -> config

type t

val create_replica :
  config:config -> keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret -> self:int -> t

val replica : t -> msg Thc_sim.Engine.behavior

val client :
  rid_base:int ->
  config:config ->
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  plan:(int64 * Kv_store.op) list ->
  msg Thc_sim.Engine.behavior
(** [rid_base] offsets request ids so concurrent clients keep
    disjoint rid ranges (see {!Client_core.behavior}). *)

val wrap_request : Command.signed_request -> msg
(** Wire-wrap a client request for external traffic generators (see
    {!Minbft.wrap_request}). *)

val unwrap_reply : msg -> Command.reply option

val view_of : t -> int
val executed_upto : t -> int
val store_digest : t -> int64
val classify_msg : msg -> string
(** Short label per wire-message kind, for message-breakdown tables. *)

val pp_msg : Format.formatter -> msg -> unit
