module Out = struct
  type t = {
    trinket : Thc_hardware.Trinc.t;
    mutable log : Thc_hardware.Trinc.attestation list;  (* newest first *)
  }

  let create trinket = { trinket; log = [] }

  let seal t payload =
    let counter = Thc_hardware.Trinc.last_counter t.trinket + 1 in
    match Thc_hardware.Trinc.attest t.trinket ~counter ~message:payload with
    | Some a ->
      t.log <- a :: t.log;
      a
    | None -> assert false (* last + 1 is always attestable *)

  let sent_log t = List.rev t.log
end

module In = struct
  type stream = {
    pending : (int, Thc_hardware.Trinc.attestation) Hashtbl.t;
    mutable released : int;  (* last counter released *)
  }

  type t = { world : Thc_hardware.Trinc.world; streams : stream array }

  let create ~world ~n =
    {
      world;
      streams =
        Array.init n (fun _ -> { pending = Hashtbl.create 8; released = 0 });
    }

  let reject t label =
    Thc_obsv.Ledger.bump (Thc_hardware.Trinc.ledger t.world) label;
    []

  let accept t (a : Thc_hardware.Trinc.attestation) =
    if a.owner < 0 || a.owner >= Array.length t.streams || a.prev <> a.counter - 1
    then reject t "link.reject_malformed"
    else if not (Thc_hardware.Trinc.check t.world a ~id:a.owner) then
      reject t "link.reject_forged"
    else begin
      let s = t.streams.(a.owner) in
      if a.counter <= s.released || Hashtbl.mem s.pending a.counter then
        reject t "link.reject_replay"
      else begin
        Hashtbl.replace s.pending a.counter a;
        let out = ref [] in
        let rec drain () =
          match Hashtbl.find_opt s.pending (s.released + 1) with
          | Some next ->
            Hashtbl.remove s.pending next.counter;
            s.released <- next.counter;
            out := next :: !out;
            drain ()
          | None -> ()
        in
        drain ();
        List.rev !out
      end
    end

  let delivered_upto t ~owner = t.streams.(owner).released
end

let check_log ~world ~owner log =
  let rec go expected acc = function
    | [] -> Some (List.rev acc)
    | (a : Thc_hardware.Trinc.attestation) :: rest ->
      if
        a.counter = expected
        && a.prev = expected - 1
        && Thc_hardware.Trinc.check world a ~id:owner
      then go (expected + 1) (a.message :: acc) rest
      else None
  in
  go 1 [] log
