(** Client requests and replies shared by both replication protocols. *)

type request = {
  client : int;  (** Client pid (also the signer). *)
  rid : int;  (** Client-local request id. *)
  op : string;  (** Encoded {!Kv_store.op}. *)
}

type signed_request = request Thc_crypto.Signature.signed

val make :
  ident:Thc_crypto.Keyring.secret -> rid:int -> Kv_store.op -> signed_request

val valid : Thc_crypto.Keyring.t -> signed_request -> bool
(** Signature verifies and the signer is the request's client. *)

val digest : request -> int64
(** Binding digest used in votes/certificates. *)

val key : request -> int * int
(** Dedup key [(client, rid)]. *)

val pp : Format.formatter -> request -> unit

type batch = signed_request list
(** One consensus slot's worth of requests: the leader accumulates pending
    signed requests and proposes them as a single batch, amortizing one
    proposal (and, on MinBFT, one trusted-counter attestation) across every
    request in it.  Order within a batch is the committed execution order. *)

val batch_digest : batch -> int64
(** Binding digest over the member-request digests, in order.  Independent
    of the signatures, so any party that knows the request values (e.g. the
    deterministic no-op filler during a PBFT view change) can predict it. *)

val batch_digest_of_requests : request list -> int64
(** {!batch_digest} over bare (unsigned) request values. *)

val batch_valid : Thc_crypto.Keyring.t -> batch -> bool
(** Non-empty and every member request is {!valid}. *)

val batch_keys : batch -> (int * int) list
(** Dedup keys of the member requests, in batch order. *)

val pp_batch : Format.formatter -> batch -> unit

type reply = { replica : int; rid : int; result : string }
(** A replica's response; clients wait for matching replies from a quorum. *)

module Collector : sig
  type t
  (** Client-side reply matching: a request is complete when [quorum]
      replicas returned the same result for its [rid]. *)

  val create : quorum:int -> t

  val add : t -> reply -> string option
  (** [Some result] the first time [rid] reaches a quorum of matching
      results; [None] otherwise. *)

  val completed : t -> rid:int -> bool
end
