type violation = {
  property : [ `Order | `Result | `Liveness | `Replay ];
  info : string;
}

let pp_violation ppf v =
  let name =
    match v.property with
    | `Order -> "order"
    | `Result -> "result"
    | `Liveness -> "liveness"
    | `Replay -> "replay"
  in
  Format.fprintf ppf "SMR %s violation: %s" name v.info

let executions trace pid =
  List.filter_map
    (fun obs ->
      match (obs : Thc_sim.Obs.t) with
      | Executed { seq; op; result } -> Some (seq, (op, result))
      | _ -> None)
    (Thc_sim.Trace.outputs_of trace pid)

let check_safety trace ~replicas =
  let violations = ref [] in
  let add property info = violations := { property; info } :: !violations in
  let correct =
    List.filter (fun p -> p < replicas) (Thc_sim.Trace.correct_pids trace)
  in
  let execs = List.map (fun pid -> (pid, executions trace pid)) correct in
  List.iter
    (fun (p, ep) ->
      List.iter
        (fun (q, eq) ->
          if p < q then
            List.iter
              (fun (seq, (op, result)) ->
                match List.assoc_opt seq eq with
                | None -> ()  (* prefix difference is fine mid-run *)
                | Some (op', result') ->
                  if not (String.equal op op') then
                    add `Order
                      (Printf.sprintf "p%d/p%d differ at seq %d" p q seq)
                  else if not (String.equal result result') then
                    add `Result
                      (Printf.sprintf "p%d/p%d diverge at seq %d" p q seq))
              ep)
        execs)
    execs;
  List.rev !violations

let exec_events trace pid =
  List.filter_map
    (fun obs ->
      match (obs : Thc_sim.Obs.t) with
      | Executed { seq; op; result } -> Some (`Exec (seq, op, result))
      | Recovered { exec_count; _ } -> Some (`Recovered exec_count)
      | _ -> None)
    (Thc_sim.Trace.outputs_of trace pid)

let check_state_determinism trace ~replicas =
  let violations = ref [] in
  let add info = violations := { property = `Replay; info } :: !violations in
  List.iter
    (fun pid ->
      if pid < replicas then begin
        let store = Kv_store.create () in
        (* Stop at the first density break: replaying past a gap would only
           cascade spurious result mismatches.  A [Recovered] marker is a
           state transfer: the store jumped to the donor's checkpoint and
           the ops below it are compacted away, so from that point the
           replay can only check execution density — cross-replica result
           agreement past the jump is {!check_safety}'s job. *)
        let rec replay ~verify i = function
          | [] -> ()
          | `Recovered exec_count :: rest ->
            replay ~verify:false (exec_count + 1) rest
          | `Exec (seq, op, result) :: rest ->
            if seq <> i then
              add
                (Printf.sprintf "p%d executed seq %d at position %d (dense order broken)"
                   pid seq i)
            else begin
              if verify then begin
                let replayed =
                  Kv_store.encode_result (Kv_store.apply store (Kv_store.decode_op op))
                in
                if not (String.equal replayed result) then
                  add
                    (Printf.sprintf
                       "p%d seq %d: recorded result differs from sequential replay" pid seq)
              end;
              replay ~verify (i + 1) rest
            end
        in
        replay ~verify:true 1 (exec_events trace pid)
      end)
    (Thc_sim.Trace.correct_pids trace);
  List.rev !violations

let check_liveness trace ~expected =
  let violations = ref [] in
  List.iter
    (fun (client, rids) ->
      let done_rids =
        List.filter_map
          (fun obs ->
            match (obs : Thc_sim.Obs.t) with
            | Client_done { rid; _ } -> Some rid
            | _ -> None)
          (Thc_sim.Trace.outputs_of trace client)
      in
      List.iter
        (fun rid ->
          if not (List.mem rid done_rids) then
            violations :=
              {
                property = `Liveness;
                info =
                  Printf.sprintf "client p%d request #%d incomplete" client rid;
              }
              :: !violations)
        rids)
    expected;
  List.rev !violations

let expect_range ~clients ~per_client ~first_client_pid =
  List.init clients (fun i ->
      ( first_client_pid + i,
        List.init per_client (fun r -> (i * per_client) + r) ))

let latencies_by_client trace =
  let tbl : (int, float list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, pid, obs) ->
      match (obs : Thc_sim.Obs.t) with
      | Client_done { latency_us; _ } ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl pid) in
        Hashtbl.replace tbl pid (Int64.to_float latency_us :: prev)
      | _ -> ())
    (Thc_sim.Trace.outputs trace);
  Hashtbl.fold (fun pid ls acc -> (pid, List.rev ls) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let client_latencies trace =
  List.filter_map
    (fun (_, _, obs) ->
      match (obs : Thc_sim.Obs.t) with
      | Client_done { latency_us; _ } -> Some (Int64.to_float latency_us)
      | _ -> None)
    (Thc_sim.Trace.outputs trace)

let executed_count trace ~pid = List.length (executions trace pid)

let commits trace ~replicas =
  List.filter_map
    (fun (_, pid, obs) ->
      match (obs : Thc_sim.Obs.t) with
      | Committed { seq; _ } when pid < replicas && Thc_sim.Trace.correct trace pid
        ->
        Some seq
      | _ -> None)
    (Thc_sim.Trace.outputs trace)
  |> List.sort_uniq compare |> List.length
